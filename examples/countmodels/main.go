// countmodels counts the satisfying assignments of a 3CNF formula through
// the relational query engine, using Theorem 3's identity
//
//	a(G) = |φ_G(R_G)| − 7m − 1,
//
// and cross-checks against the direct #SAT counter. This is the paper's
// #P-hardness of result counting, run forwards: a hard counting problem
// answered by counting the tuples of a project–join query.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"relquery"
)

func main() {
	// Fixed showcase: the paper's example.
	g := relquery.PaperExample()
	report(g)

	// A padded copy: each fresh clause (w1+w2+w3) multiplies the model
	// count by exactly 7 — visible in both counters.
	padded, err := relquery.To3CNF(g) // no-op conversion, then pad below
	if err != nil {
		log.Fatal(err)
	}
	padded.NumVars += 3
	padded.Clauses = append(padded.Clauses,
		relquery.Clause{relquery.Lit(6), relquery.Lit(7), relquery.Lit(8)})
	report(padded)

	// Random sweep.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		f, err := randomFormula(rng)
		if err != nil {
			log.Fatal(err)
		}
		report(f)
	}
}

func randomFormula(rng *rand.Rand) (*relquery.Formula, error) {
	var clauses []relquery.Clause
	n := 5
	for j := 0; j < 4; j++ {
		vars := rng.Perm(n)[:3]
		c := make(relquery.Clause, 3)
		for i, v := range vars {
			l := relquery.Lit(v + 1)
			if rng.Intn(2) == 0 {
				l = -l
			}
			c[i] = l
		}
		clauses = append(clauses, c)
	}
	return relquery.NewFormula(n, clauses...)
}

func report(g *relquery.Formula) {
	viaQuery, err := relquery.CountModelsViaQuery(g)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := relquery.CountModels(g)
	if err != nil {
		log.Fatal(err)
	}
	status := "agree"
	if viaQuery != direct {
		// CountModelsViaQuery counts over the formula in reduction form
		// (padded to 3 clauses, unused variables compacted); the direct
		// count is over the formula as given. They agree exactly when the
		// formula is already in reduction form.
		status = fmt.Sprintf("differ (reduction normalizes the formula; direct count %d is over the raw formula)", direct)
	}
	fmt.Printf("G = %v\n  a(G) via |φ_G(R_G)| − 7m − 1: %d\n  a(G) via #SAT counter:        %d   [%s]\n\n",
		g, viaQuery, direct, status)
}
