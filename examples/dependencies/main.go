// dependencies tours the dependency-theory substrate surrounding the
// paper: join-dependency satisfaction (the co-NP-complete fixpoint test),
// lossless decomposition via the FD chase, acyclicity and Yannakakis
// evaluation, and universal-instance testing — the Maier–Sagiv–Yannakakis,
// Yannakakis and Honeyman–Ladner–Yannakakis results the paper cites and
// sharpens.
package main

import (
	"fmt"
	"log"

	"relquery"
)

func main() {
	// A relation that does NOT satisfy the join dependency *[AB, BC]:
	// recombining its projections invents tuples.
	r, err := relquery.FromRows(relquery.MustScheme("A", "B", "C"),
		[]string{"ann", "db", "mon"},
		[]string{"bob", "db", "tue"},
	)
	if err != nil {
		log.Fatal(err)
	}
	jd := relquery.JD{Components: []relquery.Scheme{
		relquery.MustScheme("A", "B"),
		relquery.MustScheme("B", "C"),
	}}
	holds, err := jd.HoldsIn(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JD %v holds in R: %v\n", jd, holds)
	_, witness, err := jd.Check(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  witness tuple invented by recombination: %v\n\n", witness)

	// Under the FD B→C the decomposition becomes lossless — decided
	// symbolically by the chase, with no data in sight.
	fd := relquery.FD{From: relquery.MustScheme("B"), To: relquery.MustScheme("C")}
	lossless, err := relquery.LosslessJoin(r.Scheme(), []relquery.FD{fd},
		jd.Components)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposition lossless under %v (chase): %v\n", fd, lossless)
	lossless, err = relquery.LosslessJoin(r.Scheme(), nil, jd.Components)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposition lossless with no FDs:     %v\n\n", lossless)

	// Acyclicity: the triangle hypergraph is cyclic, chains are acyclic.
	chain := relquery.Hypergraph{Edges: []relquery.Scheme{
		relquery.MustScheme("A", "B"),
		relquery.MustScheme("B", "C"),
		relquery.MustScheme("C", "D"),
	}}
	triangle := relquery.Hypergraph{Edges: []relquery.Scheme{
		relquery.MustScheme("A", "B"),
		relquery.MustScheme("B", "C"),
		relquery.MustScheme("A", "C"),
	}}
	chainAcyclic, _ := chain.IsAcyclic()
	triAcyclic, _ := triangle.IsAcyclic()
	fmt.Printf("chain acyclic: %v, triangle acyclic: %v\n\n", chainAcyclic, triAcyclic)

	// Universal instance: the classic pairwise-consistent but globally
	// inconsistent triangle database.
	ab, _ := relquery.FromRows(relquery.MustScheme("A", "B"), []string{"0", "0"}, []string{"1", "1"})
	bc, _ := relquery.FromRows(relquery.MustScheme("B", "C"), []string{"0", "1"}, []string{"1", "0"})
	ca, _ := relquery.FromRows(relquery.MustScheme("C", "A"), []string{"0", "0"}, []string{"1", "1"})
	rels := []*relquery.Relation{ab, bc, ca}
	pw, err := relquery.PairwiseConsistent(rels)
	if err != nil {
		log.Fatal(err)
	}
	global, err := relquery.Consistent(rels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangle database: pairwise consistent = %v, universal instance exists = %v\n",
		pw, global)
	fmt.Println("  (cyclic schemes are exactly where the two notions diverge)")
}
