// querycompare demonstrates the paper's Π₂ᵖ-completeness results
// (Theorems 4 and 5): comparing two queries over a fixed relation, or one
// query over two relations, is as hard as deciding a ∀∃ quantified
// Boolean sentence — and conversely, such a sentence can be decided by a
// query comparison.
//
// It also contrasts the paper's fixed-database containment with the
// classical Chandra–Merlin containment over ALL databases (NP-complete,
// decided by tableau homomorphism): two queries can coincide on one
// database while differing on another.
package main

import (
	"fmt"
	"log"

	"relquery"
)

func main() {
	// ∀x1 ∃x2 x3: (x1 + x2 + x3)(~x1 + x2 + ~x3)(x1 + ~x2 + x3): true —
	// for either value of x1, set x2 = 1, x3 = 0.
	g, err := relquery.ParseCNF("(x1 + x2 + x3)(~x1 + x2 + ~x3)(x1 + ~x2 + x3)")
	if err != nil {
		log.Fatal(err)
	}
	inst := &relquery.QBFInstance{G: g, Universal: []int{1}}

	direct, err := relquery.SolveQBF(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sentence: ∀x1 ∃x2 x3  %v\n", g)
	fmt.Printf("exhaustive QBF solver: %v (%d SAT-oracle calls)\n\n", direct.Holds, direct.OracleCalls)

	// Theorem 4 route: one relation R'_G, two queries.
	via4, err := relquery.Q3SATViaQueryComparison(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 4 (two queries, fixed relation): %v\n    %s\n", via4.Answer, via4.Route)

	// Theorem 5 route: one query, two relations.
	via5, err := relquery.Q3SATViaRelationComparison(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 5 (fixed query, two relations): %v\n    %s\n\n", via5.Answer, via5.Route)

	// A false sentence for contrast: ∀x1 x2 x3 (x1 + x2 + x3)(...).
	gf, err := relquery.ParseCNF("(x1 + x2 + x3)(x1 + x2 + x4)(x2 + x3 + x4)")
	if err != nil {
		log.Fatal(err)
	}
	falseInst := &relquery.QBFInstance{G: gf, Universal: []int{1, 2, 3, 4}}
	via4f, err := relquery.Q3SATViaQueryComparison(falseInst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-universal sentence over %v: %v\n    %s\n\n", gf, via4f.Answer, via4f.Route)

	// Fixed-database vs all-databases containment. Build two queries that
	// agree on a specific relation but are NOT equivalent in general.
	db := relquery.NewDatabase()
	r, err := relquery.FromRows(relquery.MustScheme("A", "B", "C"),
		[]string{"1", "x", "p"},
	)
	if err != nil {
		log.Fatal(err)
	}
	db.Put("T", r)
	q1, err := relquery.ParseExprForDatabase("pi[A C](T)", db)
	if err != nil {
		log.Fatal(err)
	}
	q2, err := relquery.ParseExprForDatabase("pi[A C](pi[A B](T) * pi[B C](T))", db)
	if err != nil {
		log.Fatal(err)
	}

	fixed, err := relquery.EquivalentFixedRelation(q1, q2, db, relquery.DecisionBudget{})
	if err != nil {
		log.Fatal(err)
	}
	t1, err := relquery.NewTableau(q1)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := relquery.NewTableau(q2)
	if err != nil {
		log.Fatal(err)
	}
	always, err := t1.EquivalentTo(t2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1 = %v\nQ2 = %v\n", q1, q2)
	fmt.Printf("equal on THIS database (Π₂ᵖ problem):     %v\n", fixed.Holds)
	fmt.Printf("equivalent on ALL databases (Chandra–Merlin): %v\n", always)
	fmt.Println("(a single-tuple relation cannot distinguish the queries, but a larger one can)")
}
