// satviaquery decides Boolean satisfiability through the relational query
// engine, exactly as the paper's Proposition 1 prescribes: build the
// gadget relation R_G and expression φ_G from a 3CNF formula G, and test
// whether the all-x tuple u_G shows up in π_Y(φ_G(R_G)). The answer is
// cross-checked against the direct DPLL solver.
//
// This is the NP-completeness of tuple membership (Yannakakis 1981, via
// the paper's construction) made executable.
package main

import (
	"fmt"
	"log"

	"relquery"
)

func main() {
	for _, src := range []string{
		// The paper's worked example — satisfiable.
		"(x1 + x2 + x3)(~x2 + x3 + ~x4)(~x3 + ~x4 + ~x5)",
		// All eight sign patterns over three variables — unsatisfiable.
		"(x1+x2+x3)(x1+x2+~x3)(x1+~x2+x3)(x1+~x2+~x3)" +
			"(~x1+x2+x3)(~x1+x2+~x3)(~x1+~x2+x3)(~x1+~x2+~x3)",
		// A forced chain — satisfiable with exactly one model on x1..x3.
		"(x1 + x1 + x2)(~x1 + x2 + x3)(~x2 + ~x2 + x3)",
	} {
		g, err := relquery.ParseCNF(src)
		if err != nil {
			// The third formula repeats variables inside clauses; convert
			// it to proper 3CNF first.
			log.Fatal(err)
		}
		// Bring the formula into the paper's reduction form (3 distinct
		// variables per clause) if needed.
		if !g.Is3CNF() {
			g, err = relquery.To3CNF(g)
			if err != nil {
				log.Fatal(err)
			}
		}

		res, err := relquery.SATViaMembership(g)
		if err != nil {
			log.Fatal(err)
		}
		direct, _, err := relquery.Satisfiable(g)
		if err != nil {
			log.Fatal(err)
		}
		status := "agree"
		if res.Answer != direct {
			status = "DISAGREE"
		}
		fmt.Printf("G = %v\n  query route: satisfiable=%v   via %s\n  dpll:        satisfiable=%v   [%s]\n\n",
			g, res.Answer, res.Route, direct, status)
	}

	// The dual co-NP view: G is unsatisfiable iff φ_G(R_G) = R_G, i.e. the
	// gadget relation is a fixpoint of its own project-join expression.
	g := relquery.PaperExample()
	fix, err := relquery.UNSATViaFixpoint(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("φ_G(R_G) = R_G for the paper example: %v (false because G is satisfiable)\n", fix.Answer)
}
