// Quickstart: build relations, project and join them, parse and evaluate
// a textual query, and peek at the tableau machinery.
package main

import (
	"fmt"
	"log"

	"relquery"
)

func main() {
	// A relation is a set of tuples over a scheme. Schemes are ordered for
	// printing but behave as sets: joins and comparisons ignore column
	// order.
	supplies, err := relquery.FromRows(
		relquery.MustScheme("Supplier", "Part"),
		[]string{"acme", "bolt"},
		[]string{"acme", "nut"},
		[]string{"bert", "bolt"},
	)
	if err != nil {
		log.Fatal(err)
	}
	uses, err := relquery.FromRows(
		relquery.MustScheme("Part", "Machine"),
		[]string{"bolt", "press"},
		[]string{"nut", "press"},
		[]string{"bolt", "lathe"},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Natural join on the shared attribute Part.
	joined, err := supplies.Join(uses)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("supplies * uses:")
	fmt.Print(relquery.RenderSorted(joined))

	// Projection (with set semantics: duplicates collapse).
	who, err := joined.Project(relquery.MustScheme("Supplier", "Machine"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npi[Supplier Machine](supplies * uses):")
	fmt.Print(relquery.RenderSorted(who))

	// The same query in the text syntax, evaluated against a database.
	db := relquery.NewDatabase()
	db.Put("Supplies", supplies)
	db.Put("Uses", uses)
	expr, err := relquery.ParseExprForDatabase("pi[Supplier Machine](Supplies * Uses)", db)
	if err != nil {
		log.Fatal(err)
	}
	result, err := relquery.Eval(expr, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparsed %q -> %d tuples (equal: %v)\n", expr, result.Len(), result.Equal(who))

	// Tableau-based membership (Proposition 2 of the paper): is a tuple in
	// the result, decided without materializing the query?
	nt, err := relquery.NewScheme("Supplier", "Machine")
	if err != nil {
		log.Fatal(err)
	}
	candidate := relquery.NamedTuple{Scheme: nt, Vals: relquery.TupleOf("bert", "lathe")}
	in, err := relquery.Member(candidate, expr, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("member (bert, lathe): %v\n", in)
}
