// Package relquery is a faithful, executable reproduction of
//
//	Stavros S. Cosmadakis, "The Complexity of Evaluating Relational
//	Queries", Information and Control 58, 101–112 (1983).
//
// It packages a relational-algebra engine for project–join queries
// (relations, expressions, parsing, three join algorithms, tableau-based
// streaming evaluation), the propositional substrate (3CNF, DPLL, #SAT,
// ∀∃-QBF), the paper's gadget constructions (R_G, φ_G and their
// Theorem 1–5 variants), and decision procedures for every problem whose
// complexity the paper pins down: result verification (Dᵖ), cardinality
// bounds (Dᵖ/NP/co-NP), result counting (#P), and query or relation
// comparison over fixed inputs (Π₂ᵖ).
//
// This root package is the stable facade: it re-exports the library's
// types and entry points so that downstream users never import internal
// packages. Examples live under examples/, command-line tools under cmd/,
// and the experiment suite reproducing the paper's results is
// RunExperiments (also available as cmd/experiments).
package relquery

import (
	"io"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/core"
	"relquery/internal/decide"
	"relquery/internal/deps"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/qbf"
	"relquery/internal/reduction"
	"relquery/internal/relation"
	"relquery/internal/sat"
	"relquery/internal/tableau"
)

// Relational model (see internal/relation).
type (
	// Attribute names a column of a relation.
	Attribute = relation.Attribute
	// Value is an uninterpreted attribute value.
	Value = relation.Value
	// Scheme is an ordered set of distinct attributes.
	Scheme = relation.Scheme
	// Tuple is a positional row of values.
	Tuple = relation.Tuple
	// NamedTuple pairs a tuple with the scheme naming its columns.
	NamedTuple = relation.NamedTuple
	// Relation is a finite set of tuples over a scheme.
	Relation = relation.Relation
	// Database maps relation names to relations.
	Database = relation.Database
	// RenderOptions controls table rendering.
	RenderOptions = relation.RenderOptions
)

var (
	// NewScheme builds a scheme from attributes, rejecting duplicates.
	NewScheme = relation.NewScheme
	// MustScheme is NewScheme that panics on error.
	MustScheme = relation.MustScheme
	// SchemeOf parses a whitespace-separated attribute list.
	SchemeOf = relation.SchemeOf
	// NewRelation returns an empty relation over the scheme.
	NewRelation = relation.New
	// FromRows builds a relation from string rows.
	FromRows = relation.FromRows
	// TupleOf builds a tuple from strings.
	TupleOf = relation.TupleOf
	// NewDatabase returns an empty database.
	NewDatabase = relation.NewDatabase
	// SingleRelation builds a one-relation database.
	SingleRelation = relation.Single
	// ReadDatabase parses the text format's relation blocks.
	ReadDatabase = relation.ReadDatabase
	// ReadRelation parses one relation (block or bare form).
	ReadRelation = relation.ReadRelation
	// WriteRelation writes a relation block.
	WriteRelation = relation.WriteRelation
	// WriteDatabase writes every relation in name order.
	WriteDatabase = relation.WriteDatabase
	// Render formats a relation as an aligned text table.
	Render = relation.Render
	// RenderSorted renders with deterministic row order.
	RenderSorted = relation.RenderSorted
)

// Project–join expressions (see internal/algebra).
type (
	// Expr is a project–join relational expression.
	Expr = algebra.Expr
	// Operand references a named database relation.
	Operand = algebra.Operand
	// Project is the projection operator π.
	Project = algebra.Project
	// Join is the natural-join operator ∗.
	Join = algebra.Join
	// Evaluator materializes expressions with pluggable join strategy.
	Evaluator = algebra.Evaluator
	// JoinStats accumulates intermediate-result statistics.
	//
	// Deprecated: attach a Collector to the Evaluator and read
	// Collector.Metrics instead; see internal/obs.
	JoinStats = join.Stats
)

// Observability (see internal/obs).
type (
	// Collector gathers an evaluation's span tree and metrics; attach one
	// to an Evaluator to trace it.
	Collector = obs.Collector
	// TraceSpan is one operator's trace record.
	TraceSpan = obs.Span
	// Trace is a finished evaluation's span tree plus metrics snapshot;
	// Trace.WriteJSON emits the cmd/relquery -trace format.
	Trace = obs.Trace
	// EvalMetrics is the per-evaluation atomic counter set.
	EvalMetrics = obs.Metrics
	// EvalMetricsSnapshot is a plain-value copy of EvalMetrics.
	EvalMetricsSnapshot = obs.MetricsSnapshot
)

var (
	// NewOperand builds an operand reference.
	NewOperand = algebra.NewOperand
	// NewProject builds π_onto(of), validating attributes.
	NewProject = algebra.NewProject
	// NewJoin builds an n-ary natural join (n ≥ 2).
	NewJoin = algebra.NewJoin
	// JoinAll joins expressions, passing single arguments through.
	JoinAll = algebra.JoinAll
	// ParseExpr parses the text syntax, e.g. "pi[A B](T) * pi[B C](T)".
	ParseExpr = algebra.Parse
	// ParseExprForDatabase parses with operand schemes from a database.
	ParseExprForDatabase = algebra.ParseForDatabase
	// Eval materializes e(db) with default settings.
	Eval = algebra.Eval
	// Optimize rewrites an expression with projection pushdown, cascade
	// elimination and join deduplication, preserving its value.
	Optimize = algebra.Optimize
	// Explain renders an expression's operator tree with actual node
	// cardinalities (it re-evaluates every subtree).
	Explain = algebra.Explain
	// ExplainAnalyze evaluates once under a tracing collector and renders
	// the executed tree annotated with observed cardinalities, wall time,
	// join algorithm, cache status and AGM size bounds.
	ExplainAnalyze = algebra.ExplainAnalyze
	// RenderTrace renders a collected Trace in the ExplainAnalyze format.
	RenderTrace = algebra.RenderTrace
	// AGMBound computes the Atserias–Grohe–Marx worst-case output-size
	// bound for a natural join of the given relations.
	AGMBound = join.AGMBoundOf
)

// Tableaux (see internal/tableau).
type (
	// Tableau is the Aho–Sagiv–Ullman tableau of an expression.
	Tableau = tableau.Tableau
)

var (
	// NewTableau builds the tableau of an expression. Tableau.Eval
	// materializes a query with space bounded by input and output;
	// Tableau.Member is the paper's Proposition 2 NP membership test;
	// Tableau.ContainedIn is Chandra–Merlin all-databases containment.
	NewTableau = tableau.New
)

// Propositional logic (see internal/cnf, internal/sat, internal/qbf).
type (
	// Lit is a CNF literal (±variable).
	Lit = cnf.Lit
	// Clause is a disjunction of literals.
	Clause = cnf.Clause
	// Formula is a CNF formula.
	Formula = cnf.Formula
	// Assignment is a truth assignment.
	Assignment = cnf.Assignment
	// QBFInstance is a ∀X ∃X′ G sentence.
	QBFInstance = qbf.Instance
)

var (
	// NewFormula builds a validated formula.
	NewFormula = cnf.New
	// ParseCNF parses "(x1 + ~x2 + x3)(...)" syntax.
	ParseCNF = cnf.Parse
	// ParseDIMACS parses DIMACS CNF.
	ParseDIMACS = cnf.ParseDIMACS
	// WriteDIMACS writes DIMACS CNF.
	WriteDIMACS = cnf.WriteDIMACS
	// To3CNF converts arbitrary CNF to equisatisfiable 3CNF.
	To3CNF = cnf.To3CNF
	// CompactCNF renumbers away variables that occur in no clause.
	CompactCNF = cnf.Compact
	// PaperExample returns the formula of the paper's worked example.
	PaperExample = cnf.PaperExample
	// Pigeonhole returns the PHP(n) unsatisfiable family in 3CNF.
	Pigeonhole = cnf.Pigeonhole
	// XorChain returns the parity-chain family in 3CNF.
	XorChain = cnf.XorChain
	// Satisfiable decides satisfiability with DPLL.
	Satisfiable = sat.Satisfiable
	// Solvers (sat.Solver implementations): recursive DPLL with unit
	// propagation and pure literals, iterative two-watched-literal DPLL,
	// and the brute-force reference.
	DPLLSolver    = sat.DPLL{}
	WatchedSolver = sat.WatchedDPLL{}
	BruteSolver   = sat.BruteForce{}
	// CountModels counts satisfying assignments (#SAT).
	CountModels = sat.CountModels
	// EnumerateModels visits every satisfying assignment.
	EnumerateModels = sat.Enumerate
	// SolveQBF decides ∀X ∃X′ G exhaustively.
	SolveQBF = qbf.Solve
)

// The paper's constructions (see internal/reduction).
type (
	// Construction is the gadget R_G (or a Theorem 4/5 variant) with its
	// attribute bookkeeping and expression builders.
	Construction = reduction.Construction
	// Theorem1Instance is the Dᵖ result-verification reduction.
	Theorem1Instance = reduction.Theorem1Instance
	// Theorem2Instance is the Dᵖ cardinality-window reduction.
	Theorem2Instance = reduction.Theorem2Instance
	// Theorem4Instance is the Π₂ᵖ fixed-relation reduction.
	Theorem4Instance = reduction.Theorem4Instance
	// Theorem5Instance is the Π₂ᵖ fixed-query reduction.
	Theorem5Instance = reduction.Theorem5Instance
)

var (
	// NewConstruction builds R_G and its bookkeeping for a formula in
	// reduction form.
	NewConstruction = reduction.New
	// Theorem1 builds the φ(R) = r instance for a formula pair.
	Theorem1 = reduction.Theorem1
	// Theorem2 builds the cardinality-window instance.
	Theorem2 = reduction.Theorem2
	// Theorem4 builds the fixed-relation comparison instance.
	Theorem4 = reduction.Theorem4
	// Theorem5 builds the fixed-query comparison instance.
	Theorem5 = reduction.Theorem5
	// PrepareQ3SAT applies Proposition 4 preprocessing.
	PrepareQ3SAT = reduction.PrepareQ3SAT
)

// Decision procedures (see internal/decide).
type (
	// DecisionBudget caps a decision procedure's streaming work.
	DecisionBudget = decide.Budget
	// Comparison reports a comparison outcome with a failure witness.
	Comparison = decide.Comparison
)

var (
	// Member tests t ∈ φ(db) — NP (Proposition 2).
	Member = decide.Member
	// ResultEquals tests φ(db) = r — Dᵖ (Theorem 1).
	ResultEquals = decide.ResultEquals
	// CardAtLeast tests d ≤ |φ(db)| — NP (Theorem 2).
	CardAtLeast = decide.CardAtLeast
	// CardAtMost tests |φ(db)| ≤ d — co-NP (Theorem 2).
	CardAtMost = decide.CardAtMost
	// CardBetween tests d₁ ≤ |φ(db)| ≤ d₂ — Dᵖ (Theorem 2).
	CardBetween = decide.CardBetween
	// CountResult computes |φ(db)| — #P-hard (Theorem 3).
	CountResult = decide.Count
	// EnumerateResult streams the distinct tuples of φ(db) lazily.
	EnumerateResult = decide.Enumerate
	// FirstResults returns up to n distinct tuples of φ(db).
	FirstResults = decide.First
	// ContainedFixedRelation tests φ₁(db) ⊆ φ₂(db) — Π₂ᵖ (Theorem 4).
	ContainedFixedRelation = decide.ContainedFixedRelation
	// EquivalentFixedRelation tests φ₁(db) = φ₂(db) — Π₂ᵖ (Theorem 4).
	EquivalentFixedRelation = decide.EquivalentFixedRelation
	// ContainedFixedQuery tests φ(db₁) ⊆ φ(db₂) — Π₂ᵖ (Theorem 5).
	ContainedFixedQuery = decide.ContainedFixedQuery
	// EquivalentFixedQuery tests φ(db₁) = φ(db₂) — Π₂ᵖ (Theorem 5).
	EquivalentFixedQuery = decide.EquivalentFixedQuery
)

// The complexity atlas (see internal/core): decide logic problems through
// the query reductions.
var (
	// SATViaMembership decides SAT via u_G ∈ π_Y(φ_G(R_G)).
	SATViaMembership = core.SATViaMembership
	// UNSATViaFixpoint decides UNSAT via φ_G(R_G) = R_G.
	UNSATViaFixpoint = core.UNSATViaFixpoint
	// SATAndUNSATViaResultEquals decides 3SAT-3UNSAT via Theorem 1.
	SATAndUNSATViaResultEquals = core.SATAndUNSATViaResultEquals
	// SATAndUNSATViaCardinality decides 3SAT-3UNSAT via Theorem 2.
	SATAndUNSATViaCardinality = core.SATAndUNSATViaCardinality
	// CountModelsViaQuery counts models via Theorem 3.
	CountModelsViaQuery = core.CountModelsViaQuery
	// Q3SATViaQueryComparison decides ∀∃ via Theorem 4.
	Q3SATViaQueryComparison = core.Q3SATViaQueryComparison
	// Q3SATViaRelationComparison decides ∀∃ via Theorem 5.
	Q3SATViaRelationComparison = core.Q3SATViaRelationComparison
	// VerifyLemma1 checks Lemma 1 on a formula.
	VerifyLemma1 = core.VerifyLemma1
)

// Dependency theory (see internal/deps).
type (
	// FD is a functional dependency From → To.
	FD = deps.FD
	// JD is a join dependency ∗[Y₁, …, Y_k]; JD.HoldsIn is the paper's
	// co-NP-complete fixpoint test ∗π_{Y_i}(R) = R.
	JD = deps.JD
	// Hypergraph is a join query's scheme hypergraph (GYO acyclicity).
	Hypergraph = deps.Hypergraph
)

var (
	// FDClosure computes attribute-set closure under FDs.
	FDClosure = deps.Closure
	// ChaseFDs chases a tableau with FDs (Aho–Sagiv–Ullman).
	ChaseFDs = deps.ChaseFDs
	// ContainedUnderFDs decides query containment under FDs via the chase.
	ContainedUnderFDs = deps.ContainedUnderFDs
	// EquivalentUnderFDs decides query equivalence under FDs.
	EquivalentUnderFDs = deps.EquivalentUnderFDs
	// LosslessJoin decides lossless decomposition via the chase.
	LosslessJoin = deps.LosslessJoin
	// AcyclicJoin evaluates an acyclic join with Yannakakis' algorithm.
	AcyclicJoin = deps.AcyclicJoin
	// FullReduce runs the Yannakakis full reducer (semijoin sweeps).
	FullReduce = deps.FullReduce
	// Semijoin computes r ⋉ s.
	Semijoin = deps.Semijoin
	// PairwiseConsistent tests pairwise database consistency.
	PairwiseConsistent = deps.PairwiseConsistent
	// Consistent tests for a universal instance (Honeyman–Ladner–
	// Yannakakis).
	Consistent = deps.Consistent
	// UniversalInstanceOf returns a universal-relation witness when one
	// exists.
	UniversalInstanceOf = deps.UniversalInstance
)

// ExperimentConfig parameterizes the experiment suite.
type ExperimentConfig = core.Config

// RunExperiments executes the EXPERIMENTS.md suite (all experiments when
// ids is empty), writing tables to out.
func RunExperiments(ids []string, out io.Writer, seed int64, quick bool) error {
	return core.Run(ids, &core.Config{Out: out, Seed: seed, Quick: quick})
}
