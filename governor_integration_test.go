package relquery_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/governor"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/reduction"
	"relquery/internal/relation"
)

// xorchain2Gadget builds the Lemma 1 gadget for the xorchain(2) formula —
// the paper's blow-up workload: φ_G(R_G) materializes thousands of
// intermediate rows under the greedy binary planner while input and
// output stay at a few dozen.
func xorchain2Gadget(t *testing.T) (algebra.Expr, relation.Database, *relation.Relation) {
	t.Helper()
	g, err := cnf.XorChain(2, true)
	if err != nil {
		t.Fatal(err)
	}
	g, _ = cnf.Compact(g)
	c, err := reduction.New(g)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ExpectedPhiResult()
	if err != nil {
		t.Fatal(err)
	}
	return phi, c.Database(), want
}

// TestXorChain2GovernorAcceptance is the end-to-end acceptance check for
// the resource governor on the paper's own hard case. With an
// intermediate-row budget strictly between the gadget's output size and
// the greedy planner's peak, the same query is:
//
//   - rejected pre-flight (governor.ErrAdmission) when admission control
//     is on and the node runs on the greedy binary planner,
//   - killed mid-flight with governor.ErrRowBudget — carrying the partial
//     span tree — when admission is overridden, and
//   - completed by the worst-case-optimal join under the identical
//     budget, because its peak is bounded by its own output.
func TestXorChain2GovernorAcceptance(t *testing.T) {
	phi, db, want := xorchain2Gadget(t)

	// Measure the ungoverned greedy peak; the budget sits strictly
	// between the final output and that peak.
	col := &obs.Collector{}
	ev := algebra.Evaluator{Order: join.Greedy, Collector: col}
	out, err := ev.Eval(phi, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(want) {
		t.Fatal("ungoverned evaluation violates Lemma 1")
	}
	peak := int(col.Metrics.Snapshot().MaxIntermediate)
	if peak != 3247 {
		t.Fatalf("greedy peak intermediate = %d rows, want the documented 3247", peak)
	}
	budget := peak / 3
	if budget <= out.Len() {
		t.Fatalf("budget %d does not separate output (%d rows) from peak (%d rows)", budget, out.Len(), peak)
	}

	t.Run("admission-rejects-greedy", func(t *testing.T) {
		col := &obs.Collector{}
		ev := algebra.Evaluator{
			Order:     join.Greedy,
			Admit:     true,
			Collector: col,
			Limits:    governor.Limits{MaxIntermediateRows: budget},
		}
		_, err := ev.Eval(phi, db)
		if !errors.Is(err, governor.ErrAdmission) {
			t.Fatalf("want governor.ErrAdmission, got %v", err)
		}
		// Pre-flight means the join itself never ran: φ_G's projection
		// legs are evaluated as operands before the join node's admission
		// gate, so a few dozen projected rows are observed — but no binary
		// join executed and nothing near the greedy blow-up materialized.
		snap := col.Metrics.Snapshot()
		if snap.Joins != 0 {
			t.Fatalf("rejection must be pre-flight, but %d binary joins ran", snap.Joins)
		}
		if int(snap.MaxIntermediate) >= budget {
			t.Fatalf("rejection materialized %d intermediate rows, at or above the %d budget", snap.MaxIntermediate, budget)
		}
	})

	t.Run("override-killed-mid-flight", func(t *testing.T) {
		col := &obs.Collector{}
		ev := algebra.Evaluator{
			Order:     join.Greedy,
			Admit:     false, // the override: run anyway, rely on mid-flight checkpoints
			Collector: col,
			Limits:    governor.Limits{MaxIntermediateRows: budget},
		}
		_, err := ev.Eval(phi, db)
		if !errors.Is(err, governor.ErrRowBudget) {
			t.Fatalf("want governor.ErrRowBudget, got %v", err)
		}
		trace := governor.TraceOf(err)
		if trace == nil {
			t.Fatal("row-budget kill must carry the partial span tree")
		}
		render := algebra.RenderTrace(trace)
		if !strings.Contains(render, "error=") {
			t.Fatalf("partial trace does not annotate the dying span:\n%s", render)
		}
	})

	t.Run("wcoj-completes-under-budget", func(t *testing.T) {
		ev := algebra.Evaluator{
			Order:     join.Greedy,
			Algorithm: join.Generic{},
			Admit:     true, // always admitted: the wcoj peak is output-bounded
			Limits:    governor.Limits{MaxIntermediateRows: budget},
		}
		got, err := ev.Eval(phi, db)
		if err != nil {
			t.Fatalf("wcoj must complete under the budget that kills greedy: %v", err)
		}
		if !got.Equal(want) {
			t.Fatal("wcoj result under budget violates Lemma 1")
		}
	})
}

// TestXorChain2ExplainAnalyzePartialTrace verifies the EXPLAIN ANALYZE
// side of the acceptance criteria: a budget-killed greedy evaluation
// returns a non-empty partial plan rendering alongside the typed error,
// and the wcoj evaluation renders a complete plan under the same budget.
func TestXorChain2ExplainAnalyzePartialTrace(t *testing.T) {
	phi, db, _ := xorchain2Gadget(t)
	limits := governor.Limits{MaxIntermediateRows: 1000}

	ev := algebra.Evaluator{Order: join.Greedy, Limits: limits}
	render, err := algebra.ExplainAnalyzeWith(&ev, phi, db)
	if !errors.Is(err, governor.ErrRowBudget) {
		t.Fatalf("want governor.ErrRowBudget from EXPLAIN ANALYZE, got %v", err)
	}
	if render == "" {
		t.Fatal("EXPLAIN ANALYZE returned no partial plan for the killed evaluation")
	}
	if !strings.Contains(render, "error=") {
		t.Fatalf("partial plan does not show where the budget died:\n%s", render)
	}

	evW := algebra.Evaluator{Order: join.Greedy, Algorithm: join.Generic{}, Limits: limits}
	render, err = algebra.ExplainAnalyzeWith(&evW, phi, db)
	if err != nil {
		t.Fatalf("wcoj EXPLAIN ANALYZE failed under budget: %v", err)
	}
	if !strings.Contains(render, "alg=wcoj") {
		t.Fatalf("completed plan does not record the wcoj strategy:\n%s", render)
	}
}

// TestXorChain2DeadlineKill puts an already-expired deadline on the
// gadget evaluation: every strategy must die with governor.ErrDeadline
// before materializing anything.
func TestXorChain2DeadlineKill(t *testing.T) {
	phi, db, _ := xorchain2Gadget(t)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	for _, tc := range []struct {
		name string
		ev   algebra.Evaluator
	}{
		{"greedy", algebra.Evaluator{Order: join.Greedy}},
		{"parallel", algebra.Evaluator{Order: join.Greedy, Parallelism: 4}},
		{"wcoj", algebra.Evaluator{Order: join.Greedy, Algorithm: join.Generic{}}},
		{"yannakakis", algebra.Evaluator{Order: join.Greedy, Algorithm: join.Yannakakis{}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			col := &obs.Collector{}
			tc.ev.Collector = col
			_, err := tc.ev.EvalContext(ctx, phi, db)
			if !errors.Is(err, governor.ErrDeadline) {
				t.Fatalf("want governor.ErrDeadline, got %v", err)
			}
			if snap := col.Metrics.Snapshot(); snap.MaxIntermediate != 0 {
				t.Fatalf("expired deadline still materialized %d intermediate rows", snap.MaxIntermediate)
			}
		})
	}
}
