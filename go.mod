module relquery

go 1.22
