// Benchmarks for the worst-case-optimal generic join on the Lemma 1
// blow-up families: the greedy binary plan materializes intermediates far
// above the final output, while the generic join materializes only the
// output the AGM bound already pays for. Recorded numbers live in
// BENCH_wcoj.txt (regenerate with `make wcoj-bench`); the shape that must
// hold is peak_rows collapsing to ≤ agm_bound under wcoj.
package relquery_test

import (
	"fmt"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/reduction"
	"relquery/internal/relation"
)

// BenchmarkWCOJLemma1 evaluates φ_G(R_G) on each gadget family with the
// greedy hash plan, the forced generic join, and the auto selector. Each
// configuration reports the peak materialized join cardinality
// (peak_rows) and the root join node's AGM bound (agm_bound) so the
// before/after collapse is visible in the benchmark output itself.
func BenchmarkWCOJLemma1(b *testing.B) {
	xor, err := cnf.XorChain(2, true)
	if err != nil {
		b.Fatal(err)
	}
	xor, _ = cnf.Compact(xor)
	php, err := cnf.Pigeonhole(1)
	if err != nil {
		b.Fatal(err)
	}
	php, _ = cnf.Compact(php)
	for _, fam := range []struct {
		name string
		g    *cnf.Formula
	}{
		{"xorchain2", xor},
		{"pigeonhole1", php},
	} {
		c, err := reduction.New(fam.g)
		if err != nil {
			b.Fatal(err)
		}
		phi, err := c.PhiG()
		if err != nil {
			b.Fatal(err)
		}
		db := c.Database()
		for _, cfg := range []struct {
			name string
			ev   func() algebra.Evaluator
		}{
			{"greedy", func() algebra.Evaluator {
				return algebra.Evaluator{Order: join.Greedy}
			}},
			{"wcoj", func() algebra.Evaluator {
				return algebra.Evaluator{Algorithm: join.Generic{}, Order: join.Greedy}
			}},
			{"auto", func() algebra.Evaluator {
				return algebra.Evaluator{Order: join.Greedy, AutoWCOJ: true}
			}},
		} {
			b.Run(fmt.Sprintf("%s/%s", fam.name, cfg.name), func(b *testing.B) {
				b.ReportAllocs()
				var peak int
				var bound float64
				for i := 0; i < b.N; i++ {
					col := &obs.Collector{}
					ev := cfg.ev()
					ev.Collector = col
					if _, err := ev.Eval(phi, db); err != nil {
						b.Fatal(err)
					}
					root := col.Trace().Root()
					peak = maxJoinRowsBench(root)
					bound = rootJoinAGMBound(root)
				}
				b.ReportMetric(float64(peak), "peak_rows")
				b.ReportMetric(bound, "agm_bound")
			})
		}
	}
}

// maxJoinRowsBench mirrors the test helper maxJoinRows without requiring
// a *testing.T.
func maxJoinRowsBench(sp *obs.Span) int {
	if sp == nil {
		return 0
	}
	best := 0
	if sp.Op == obs.OpJoin {
		best = sp.OutputRows
		if sp.MaxIntermediate > best {
			best = sp.MaxIntermediate
		}
	}
	for _, c := range sp.Children {
		if m := maxJoinRowsBench(c); m > best {
			best = m
		}
	}
	return best
}

// rootJoinAGMBound returns the AGM bound of the outermost join span.
func rootJoinAGMBound(sp *obs.Span) float64 {
	if sp == nil {
		return 0
	}
	if sp.Op == obs.OpJoin {
		return sp.AGMBound
	}
	for _, c := range sp.Children {
		if b := rootJoinAGMBound(c); b > 0 {
			return b
		}
	}
	return 0
}

// BenchmarkGenericJoinDirect measures the generic join head-to-head with
// the greedy binary plan on the materialized gadget legs, without the
// evaluator around it.
func BenchmarkGenericJoinDirect(b *testing.B) {
	xor, err := cnf.XorChain(2, true)
	if err != nil {
		b.Fatal(err)
	}
	xor, _ = cnf.Compact(xor)
	c, err := reduction.New(xor)
	if err != nil {
		b.Fatal(err)
	}
	legs, err := benchGadgetLegs(c)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("greedy-hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := join.Multi(legs, join.Hash{}, join.Greedy, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wcoj", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (join.Generic{}).JoinAll(legs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchGadgetLegs materializes φ_G's projection legs for direct joining.
func benchGadgetLegs(c *reduction.Construction) ([]*relation.Relation, error) {
	f, err := c.R.Project(c.FScheme())
	if err != nil {
		return nil, err
	}
	legs := []*relation.Relation{f}
	for j := 1; j <= c.M(); j++ {
		tj, err := c.TJScheme(j)
		if err != nil {
			return nil, err
		}
		leg, err := c.R.Project(tj)
		if err != nil {
			return nil, err
		}
		legs = append(legs, leg)
	}
	return legs, nil
}
