GO ?= go

.PHONY: build test race bench trace fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: the same smoke run CI performs. For real
# measurements raise -benchtime and pin -cpu.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Run the E7 blow-up experiment with tracing on, leaving the JSON
# evaluation trace (span tree + metrics) in trace_e7.json — the same
# artifact the CI trace job uploads.
trace:
	$(GO) run ./cmd/experiments -run E7 -quick -trace trace_e7.json

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi
	$(GO) vet ./...

# Everything the CI workflow gates on, runnable locally before a push.
ci: build fmt test race bench
