GO ?= go

.PHONY: build test race bench fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: the same smoke run CI performs. For real
# measurements raise -benchtime and pin -cpu.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi
	$(GO) vet ./...

# Everything the CI workflow gates on, runnable locally before a push.
ci: build fmt test race bench
