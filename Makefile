GO ?= go

.PHONY: build test race bench wcoj-bench acyclic-bench obs-bench bench-diff fault-bench stress trace serve fmt lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: the same smoke run CI performs. For real
# measurements raise -benchtime and pin -cpu.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Regenerate BENCH_wcoj.txt: the greedy-vs-wcoj comparison on the
# Lemma 1 blow-up families, with the per-configuration peak_rows and
# agm_bound metrics that show the intermediate collapse. CI uploads the
# file as an artifact.
wcoj-bench:
	{ \
	  echo "Worst-case-optimal generic join vs greedy binary plan (ISSUE 4)"; \
	  echo "================================================================"; \
	  echo; \
	  echo "Regenerate with: make wcoj-bench"; \
	  echo "peak_rows is the largest join cardinality any node materialized"; \
	  echo "(trace MaxIntermediate/OutputRows); agm_bound is the root join"; \
	  echo "node's AGM bound. The wcoj/auto rows must keep peak_rows at or"; \
	  echo "below the final output — never the greedy plan's blow-up."; \
	  echo; \
	  $(GO) test -run '^$$' -bench 'WCOJLemma1|GenericJoinDirect' -benchtime 10x -count 1 -benchmem .; \
	} | tee BENCH_wcoj.txt

# Regenerate BENCH_acyclic.txt: the greedy-vs-yannakakis comparison on
# the acyclic blow-up families (path, star, snowflake), with the same
# peak_rows/agm_bound metrics. CI uploads the file as an artifact and
# gates on regressions via cmd/benchdiff.
acyclic-bench:
	{ \
	  echo "Yannakakis full reducer vs greedy binary plan (ISSUE 6)"; \
	  echo "======================================================="; \
	  echo; \
	  echo "Regenerate with: make acyclic-bench"; \
	  echo "peak_rows is the largest join cardinality any node materialized"; \
	  echo "(trace MaxIntermediate/OutputRows); agm_bound is the root join"; \
	  echo "node's AGM bound. The yannakakis/auto rows must keep peak_rows"; \
	  echo "at or below output + largest input — never the greedy blow-up."; \
	  echo; \
	  $(GO) test -run '^$$' -bench 'AcyclicYannakakis|FullReducerDirect' -benchtime 10x -count 1 -benchmem .; \
	} | tee BENCH_acyclic.txt

# Regenerate BENCH_obs.txt: the observability layer's cost on the E9
# gadget families — the nil-collector fast path (sequential/parallel
# configs), tracing (-traced), and the process-wide telemetry registry
# publish (-registry, ISSUE 8). The zero-overhead contract says the
# untraced configurations must stay at the engine's raw speed; the
# registry variant bounds the per-evaluation cost of feeding /metrics.
obs-bench:
	{ \
	  echo "Observability overhead on the E9 families (ISSUE 3 / ISSUE 8 acceptance)"; \
	  echo "========================================================================"; \
	  echo; \
	  echo "Regenerate with: make obs-bench"; \
	  echo "sequential/parallel-* run with no Collector (the production"; \
	  echo "fast path); *-traced attach a fresh obs.Collector per eval;"; \
	  echo "parallel-8-registry additionally publishes every evaluation"; \
	  echo "into a process-wide obs.Registry (histograms + trace ring),"; \
	  echo "the path behind the telemetry server's /metrics endpoint."; \
	  echo; \
	  echo "RegistryObserveTraceRing is the steady-state cost of publishing"; \
	  echo "one trace into a full ring: the circular buffer (ISSUE 9) keeps"; \
	  echo "it O(1)/0 B regardless of capacity, where the old slice-trim"; \
	  echo "reallocated and copied the whole ring per eviction (1.1us/768B"; \
	  echo "at cap 32 up to 43.6us/82KB at cap 4096 before the fix)."; \
	  echo; \
	  $(GO) test -run '^$$' -bench 'E9ParallelEval' -benchtime 10x -count 1 -benchmem .; \
	  $(GO) test -run '^$$' -bench 'RegistryObserveTraceRing' -count 1 -benchmem ./internal/obs/; \
	} | tee BENCH_obs.txt

# Compare freshly-generated bench output against the committed baselines.
# peak_rows gates the join-strategy files at >20% (deterministic row
# counts); ns/op gates the obs/fault overhead files at >200% — wall time
# is machine-noisy, so the gate only catches contract-breaking changes
# (a lock or allocation on a nil fast path is a 10x+ jump, not 3x). This
# is the check the CI bench-regression job runs.
bench-diff:
	cp BENCH_wcoj.txt /tmp/bench_wcoj_base.txt
	cp BENCH_acyclic.txt /tmp/bench_acyclic_base.txt
	cp BENCH_obs.txt /tmp/bench_obs_base.txt
	cp BENCH_fault.txt /tmp/bench_fault_base.txt
	$(MAKE) wcoj-bench acyclic-bench obs-bench fault-bench
	$(GO) run ./cmd/benchdiff -metric peak_rows -max-regress 20 -report agm_bound /tmp/bench_wcoj_base.txt BENCH_wcoj.txt
	$(GO) run ./cmd/benchdiff -metric peak_rows -max-regress 20 -report agm_bound /tmp/bench_acyclic_base.txt BENCH_acyclic.txt
	$(GO) run ./cmd/benchdiff -metric ns/op -max-regress 200 /tmp/bench_obs_base.txt BENCH_obs.txt
	$(GO) run ./cmd/benchdiff -metric ns/op -max-regress 200 /tmp/bench_fault_base.txt BENCH_fault.txt

# Fault-injection stress matrix, race-enabled: the governor and fault
# harness suites in full, then every injected failure path — cancel
# mid-join, worker panic and drain, sticky-failure broadcast, graceful
# degradation, admission rejection, deadline kill — across all four
# join strategies, the three SAT solvers, and the xorchain2 Lemma 1
# acceptance gadget. CI runs this as its own job; `make stress`
# reproduces it locally.
stress:
	$(GO) test -race -count=1 ./internal/fault/ ./internal/governor/
	$(GO) test -race -count=1 \
	  -run 'Cancel|Panic|Degrad|Drain|Governor|Admission|Deadline|XorChain2|SolveContext|Satisfiable|Interrupted' \
	  ./internal/algebra/ ./internal/join/ ./internal/sat/ .

# Regenerate BENCH_fault.txt: the cost of a compiled-in injection site
# when no script is registered (the production configuration — must be
# indistinguishable from a nil check) and when a script is registered
# but no rule matches the point. Recorded alongside BENCH_obs.txt as
# the ISSUE 7 zero-overhead acceptance artifact.
fault-bench:
	{ \
	  echo "Fault-injection site overhead (ISSUE 7 acceptance check)"; \
	  echo "========================================================"; \
	  echo; \
	  echo "Regenerate with: make fault-bench"; \
	  echo "HitDisabled is the production path: no injector registered,"; \
	  echo "fault.Hit is one atomic load + nil check. HitEnabledNoMatch"; \
	  echo "is a registered script whose rules target a different point."; \
	  echo; \
	  $(GO) test -run '^$$' -bench 'HitDisabled|HitEnabledNoMatch' -count 3 -benchmem ./internal/fault/; \
	} | tee BENCH_fault.txt

# Run relqueryd locally with the example two-tenant configuration:
# acme's budget admits the example chain join, free's rejects it with
# 429 + the predicted-peak numbers. See examples/relqueryd/README.md
# for the curl session.
serve:
	$(GO) run ./cmd/relqueryd -addr :8080 \
	  -tenant acme:budget=10k,timeout=30s \
	  -tenant free:budget=500 \
	  -load acme=examples/relqueryd/catalog.rel \
	  -load free=examples/relqueryd/catalog.rel

# Run the E7 blow-up experiment with tracing on, leaving the JSON
# evaluation trace (span tree + metrics) in trace_e7.json — the same
# artifact the CI trace job uploads.
trace:
	$(GO) run ./cmd/experiments -run E7 -quick -trace trace_e7.json

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

# The full static-analysis gate: go vet, staticcheck (when installed —
# CI always installs it; locally the step is skipped with a notice so
# the target works offline), and relquery's own analyzer suite
# (cmd/relquerylint), run against the committed baseline ratchet: new
# findings fail, baselined findings warn, stale baseline entries fail
# until the baseline is regenerated (it can only shrink).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	$(GO) run ./cmd/relquerylint -baseline lint.baseline ./...

# Everything the CI workflow gates on, runnable locally before a push.
ci: build fmt lint test race stress bench
