// Command relqueryd serves the relquery engine over HTTP to multiple
// tenants: per-tenant catalogs and resource limits, pre-flight
// admission control against each tenant's intermediate-row budget, a
// shared cross-request subexpression cache, and the process telemetry
// surface (/metrics, /debug/traces, /debug/pprof) on the same port.
//
//	relqueryd -addr :8080 \
//	  -tenant acme:budget=100k,timeout=5s \
//	  -tenant free:budget=2k,timeout=500ms \
//	  -load acme=examples/relqueryd/catalog.rel
//
// Then:
//
//	curl -X POST --data-binary @query.txt localhost:8080/v1/tenants/acme/query
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relquery/internal/governor"
	"relquery/internal/relation"
	"relquery/internal/server"
)

// repeatable collects every occurrence of a repeatable string flag.
type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("relqueryd: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("relqueryd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		parallel   = fs.Int("parallel", 0, "per-evaluation worker count (<=1 sequential)")
		workers    = fs.Int("workers", 0, "max concurrently executing queries (0 default, <0 unbounded)")
		cache      = fs.Bool("cache", true, "shared cross-request subexpression cache")
		traceCap   = fs.Int("trace-cap", 0, "trace ring capacity (0 keeps the registry default)")
		defBudget  = fs.String("default-budget", "", "default intermediate-row budget (k/m/g suffixes)")
		defTimeout = fs.String("default-timeout", "", "default per-evaluation deadline (e.g. 2s)")
		defMaxRows = fs.String("default-max-rows", "", "default result-row cap")
		tenants    repeatable
		loads      repeatable
	)
	fs.Var(&tenants, "tenant", "tenant spec name:budget=10k,timeout=2s,max-rows=1m,mem=N (repeatable)")
	fs.Var(&loads, "load", "load a catalog file at startup, tenant=path (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := server.Config{
		Parallelism:   *parallel,
		MaxConcurrent: *workers,
		DisableCache:  !*cache,
		TraceCap:      *traceCap,
		Tenants:       make(map[string]governor.Limits),
	}
	var err error
	if *defBudget != "" {
		if cfg.DefaultLimits.MaxIntermediateRows, err = governor.ParseRows(*defBudget); err != nil {
			return fmt.Errorf("-default-budget: %w", err)
		}
	}
	if *defTimeout != "" {
		if cfg.DefaultLimits.Deadline, err = governor.ParseTimeout(*defTimeout); err != nil {
			return fmt.Errorf("-default-timeout: %w", err)
		}
	}
	if *defMaxRows != "" {
		if cfg.DefaultLimits.MaxRows, err = governor.ParseRows(*defMaxRows); err != nil {
			return fmt.Errorf("-default-max-rows: %w", err)
		}
	}
	for _, spec := range tenants {
		name, limits, err := server.ParseTenantSpec(spec)
		if err != nil {
			return err
		}
		cfg.Tenants[name] = limits
	}

	srv := server.New(cfg)
	for _, spec := range loads {
		if err := loadCatalog(srv, spec); err != nil {
			return err
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(out, "relqueryd listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(out, "relqueryd shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// loadCatalog parses one -load tenant=path flag and installs the file's
// relations into that tenant's catalog before the server starts.
func loadCatalog(srv *server.Server, spec string) error {
	name, path, ok := strings.Cut(spec, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("-load %q: want tenant=path", spec)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("-load %s: %w", spec, err)
	}
	defer f.Close()
	db, err := relation.ReadDatabase(f)
	if err != nil {
		return fmt.Errorf("-load %s: %w", spec, err)
	}
	srv.Load(name, db)
	log.Printf("loaded %d relations into tenant %q from %s", len(db), name, path)
	return nil
}
