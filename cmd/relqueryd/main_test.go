package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort reserves an ephemeral port and releases it for the server
// under test.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestRunEndToEnd boots the full binary path — flag parsing, tenant
// specs, startup catalog load, HTTP serving — fires the example
// two-tenant admission scenario at it, and shuts it down with SIGINT.
func TestRunEndToEnd(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", addr,
			"-tenant", "acme:budget=10k,timeout=30s",
			"-tenant", "free:budget=500",
			"-load", "acme=../../examples/relqueryd/catalog.rel",
			"-load", "free=../../examples/relqueryd/catalog.rel",
		}, os.Stdout)
	}()

	base := "http://" + addr
	var ready bool
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			ready = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ready {
		t.Fatal("server never became healthy")
	}

	query := "pi[A D](R1 * R2 * R3)"
	resp, err := http.Post(base+"/v1/tenants/acme/query?count=1", "text/plain", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "400" {
		t.Errorf("acme query: status %d body %q, want 200 / 400 rows", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/tenants/free/query", "text/plain", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("free query: status %d body %q, want 429", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "predicted_peak_rows") {
		t.Errorf("429 body missing predicted_peak_rows: %s", body)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"relquery_evals_total", "relqueryd_admission_rejects_total 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down after SIGINT")
	}
}

// TestRunFlagErrors checks bad flags fail before the server binds.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-tenant", ":budget=1"},
		{"-tenant", "x:nope=1"},
		{"-default-budget", "abc"},
		{"-default-timeout", "abc"},
		{"-load", "nope"},
		{"-load", "x=/does/not/exist.rel"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestExampleCatalogNumbers pins the example catalog to the admission
// numbers the README quotes (predicted peak 1600 > free's 500 budget,
// within acme's 10k).
func TestExampleCatalogNumbers(t *testing.T) {
	f, err := os.Open("../../examples/relqueryd/catalog.rel")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, _ := io.ReadAll(f)
	for _, rel := range []string{"relation R1", "relation R2", "relation R3"} {
		if !strings.Contains(string(b), rel) {
			t.Fatalf("example catalog missing %q", rel)
		}
	}
	if n := strings.Count(string(b), "\n"); n < 100 {
		t.Errorf("example catalog suspiciously small: %d lines", n)
	}
}
