package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEmitAndDecide(t *testing.T) {
	if err := run([]string{"-formula", "(x1+x2+x3)(~x2+x3+~x4)(~x3+~x4+~x5)", "-emit"}); err != nil {
		t.Error(err)
	}
	for _, decide := range []string{"sat", "unsat", "count"} {
		err := run([]string{"-formula", "(x1+x2+x3)(~x2+x3+~x4)(~x3+~x4+~x5)", "-decide", decide, "-check"})
		if err != nil {
			t.Errorf("decide %s: %v", decide, err)
		}
	}
}

func TestRunDIMACSFile(t *testing.T) {
	path := writeFile(t, "f.cnf", "p cnf 5 3\n1 2 3 0\n-2 3 -4 0\n-3 -4 -5 0\n")
	if err := run([]string{"-cnf", path, "-decide", "sat", "-check"}); err != nil {
		t.Error(err)
	}
}

func TestRunHumanFile(t *testing.T) {
	path := writeFile(t, "f.txt", "(x1 + x2 + x3)(~x1 + x2 + ~x3)(x1 + ~x2 + x3)\n")
	if err := run([]string{"-cnf", path, "-decide", "count", "-check"}); err != nil {
		t.Error(err)
	}
}

func TestRunShortFormulaIsPadded(t *testing.T) {
	// One clause: normalization pads to three clauses.
	if err := run([]string{"-formula", "(x1 + x2 + x3)", "-decide", "sat", "-check"}); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                         // neither -cnf nor -formula
		{"-formula", "(x1+x2+x3)"}, // nothing to do
		{"-formula", "(x1+x2"},     // parse error
		{"-formula", "(x1+x1+x1)", "-decide", "sat"}, // repeated var stays after padding? converts? -> reduction form error
		{"-cnf", "/does/not/exist", "-emit"},
		{"-formula", "(x1+x2+x3)", "-decide", "bogus"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}

func TestRunForall(t *testing.T) {
	err := run([]string{"-formula", "(x1+x2+x3)(~x1+x2+~x3)(x1+~x2+x3)", "-forall", "1", "-check"})
	if err != nil {
		t.Error(err)
	}
	if err := run([]string{"-formula", "(x1+x2+x3)(~x1+x2+~x3)(x1+~x2+x3)", "-forall", "zero"}); err == nil {
		t.Error("bad -forall accepted")
	}
}
