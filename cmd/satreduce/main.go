// Command satreduce builds the paper's gadget from a CNF formula and can
// decide satisfiability problems through the query engine, cross-checked
// against the direct DPLL solver.
//
// Usage:
//
//	satreduce -cnf formula.cnf -emit                 # print R_G and φ_G
//	satreduce -formula '(x1+x2+x3)(~x1+x2+~x3)(x1+~x2+x3)' -decide sat
//	satreduce -cnf formula.cnf -decide count -check
//
// The -cnf file may be DIMACS ("p cnf ...") or the human-readable clause
// syntax. Formulas are normalized into the paper's reduction form (3CNF,
// ≥ 3 clauses, every variable used) before the gadget is built.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"relquery/internal/cnf"
	"relquery/internal/core"
	"relquery/internal/governor"
	"relquery/internal/qbf"
	"relquery/internal/reduction"
	"relquery/internal/relation"
	"relquery/internal/sat"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "satreduce:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("satreduce", flag.ContinueOnError)
	var (
		cnfPath = fs.String("cnf", "", "path to a CNF file (DIMACS or clause syntax)")
		formula = fs.String("formula", "", "inline formula, e.g. '(x1 + ~x2 + x3)(...)'")
		emit    = fs.Bool("emit", false, "print the gadget relation R_G and expression φ_G")
		decide  = fs.String("decide", "", "decide through the query engine: sat, unsat or count")
		check   = fs.Bool("check", false, "cross-check the query answer against the direct solver")
		forall  = fs.String("forall", "", "comma-separated universal variables: decide the Q-3SAT sentence ∀X ∃rest G via Theorem 4")
		timeout = fs.String("timeout", "", "wall-clock deadline for the decision searches (duration like 250ms, 2s, or seconds; empty or 0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := governor.ParseTimeout(*timeout)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	g, err := loadFormula(*cnfPath, *formula)
	if err != nil {
		return err
	}
	normalized, err := normalize(g)
	if err != nil {
		return err
	}
	if !*emit && *decide == "" && *forall == "" {
		return fmt.Errorf("nothing to do: pass -emit, -decide and/or -forall")
	}

	if *forall != "" {
		universal, err := parseVars(*forall)
		if err != nil {
			return err
		}
		inst := &qbf.Instance{G: normalized, Universal: universal}
		res, err := core.Q3SATViaQueryComparisonContext(ctx, inst)
		if err != nil {
			return err
		}
		fmt.Printf("forall-exists(query route): %v   [%s]\n", res.Answer, res.Route)
		if *check {
			direct, err := qbf.Solve(inst)
			if err != nil {
				return err
			}
			if err := report(res.Answer == direct.Holds, fmt.Sprintf("qbf solver says %v", direct.Holds)); err != nil {
				return err
			}
		}
	}

	if *emit {
		c, err := reduction.New(normalized)
		if err != nil {
			return err
		}
		fmt.Printf("# G = %v\n# m = %d clauses, n = %d variables, |R_G| = %d\n",
			normalized, c.M(), c.N(), c.R.Len())
		if err := relation.WriteRelation(os.Stdout, c.OperandName(), c.R); err != nil {
			return err
		}
		phi, err := c.PhiG()
		if err != nil {
			return err
		}
		fmt.Printf("# φ_G:\n%s\n", phi)
	}

	switch *decide {
	case "":
	case "sat":
		res, err := core.SATViaMembershipContext(ctx, normalized)
		if err != nil {
			return err
		}
		fmt.Printf("satisfiable(query route): %v   [%s]\n", res.Answer, res.Route)
		if *check {
			direct, _, err := sat.SatisfiableContext(ctx, normalized)
			if err != nil {
				return err
			}
			return report(res.Answer == direct, fmt.Sprintf("dpll says %v", direct))
		}
	case "unsat":
		res, err := core.UNSATViaFixpointContext(ctx, normalized)
		if err != nil {
			return err
		}
		fmt.Printf("unsatisfiable(query route): %v   [%s]\n", res.Answer, res.Route)
		if *check {
			direct, _, err := sat.SatisfiableContext(ctx, normalized)
			if err != nil {
				return err
			}
			return report(res.Answer == !direct, fmt.Sprintf("dpll says satisfiable=%v", direct))
		}
	case "count":
		n, err := core.CountModelsViaQueryContext(ctx, normalized)
		if err != nil {
			return err
		}
		fmt.Printf("models(query route): %d   [a(G) = |φ_G(R_G)| − 7m − 1]\n", n)
		if *check {
			direct, err := sat.CountModels(normalized)
			if err != nil {
				return err
			}
			return report(n == direct, fmt.Sprintf("component counter says %d", direct))
		}
	default:
		return fmt.Errorf("unknown -decide %q (want sat, unsat or count)", *decide)
	}
	return nil
}

func loadFormula(path, inline string) (*cnf.Formula, error) {
	if (path == "") == (inline == "") {
		return nil, fmt.Errorf("exactly one of -cnf or -formula is required")
	}
	if inline != "" {
		return cnf.Parse(inline)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := strings.TrimSpace(string(data))
	if strings.HasPrefix(text, "p ") || strings.HasPrefix(text, "c ") || strings.HasPrefix(text, "c\n") {
		return cnf.ParseDIMACS(strings.NewReader(text))
	}
	return cnf.Parse(text)
}

// normalize mirrors the atlas' preprocessing: pad to three clauses and
// compact unused variables, then insist on reduction form.
func normalize(g *cnf.Formula) (*cnf.Formula, error) {
	g2, err := cnf.EnsureMinClauses(g, 3)
	if err != nil {
		return nil, err
	}
	g3, _ := cnf.Compact(g2)
	if err := g3.CheckReductionForm(); err != nil {
		return nil, err
	}
	return g3, nil
}

func report(agree bool, detail string) error {
	if agree {
		fmt.Printf("cross-check: agree (%s)\n", detail)
		return nil
	}
	return fmt.Errorf("cross-check FAILED: %s", detail)
}

// parseVars parses "1,3,5" into variable indices.
func parseVars(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "x"))
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad variable %q in -forall", part)
		}
		out = append(out, v)
	}
	return out, nil
}
