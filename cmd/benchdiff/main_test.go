package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseBench = `
Some header line
BenchmarkAcyclicYannakakis/path/greedy-8         10   180668 ns/op   289.0 agm_bound   257.0 peak_rows   97477 B/op   1848 allocs/op
BenchmarkAcyclicYannakakis/path/auto-8           10    38666 ns/op   289.0 agm_bound    17.00 peak_rows  29229 B/op    613 allocs/op
PASS
ok   relquery  0.024s
`

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseLine(t *testing.T) {
	name, metrics, ok := parseLine("BenchmarkX/a/b-16 \t 10 \t 123 ns/op \t 289.0 agm_bound \t 257.0 peak_rows")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if name != "BenchmarkX/a/b" {
		t.Errorf("name = %q, want CPU suffix stripped", name)
	}
	if metrics["peak_rows"] != 257 || metrics["agm_bound"] != 289 || metrics["ns/op"] != 123 {
		t.Errorf("metrics = %v", metrics)
	}
	for _, bad := range []string{"", "PASS", "ok   relquery  0.024s", "goos: linux", "peak_rows is the largest"} {
		if _, _, ok := parseLine(bad); ok {
			t.Errorf("non-benchmark line %q parsed", bad)
		}
	}
}

func TestRunNoRegression(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)
	// Within 20%: 257 → 300 is +16.7%.
	cur := writeBench(t, "cur.txt", strings.Replace(baseBench, "257.0 peak_rows", "300.0 peak_rows", 1))
	var out bytes.Buffer
	if err := run([]string{"-metric", "peak_rows", "-max-regress", "20", base, cur}, &out); err != nil {
		t.Fatalf("within-threshold diff failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no peak_rows regression") {
		t.Errorf("missing summary line:\n%s", out.String())
	}
}

func TestRunRegression(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)
	// 17 → 100 blows the 20% budget on the auto config.
	cur := writeBench(t, "cur.txt", strings.Replace(baseBench, "17.00 peak_rows", "100.0 peak_rows", 1))
	var out bytes.Buffer
	err := run([]string{"-metric", "peak_rows", "-max-regress", "20", "-report", "agm_bound", base, cur}, &out)
	if err == nil {
		t.Fatalf("regression not detected:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "path/auto") {
		t.Errorf("error %q does not name the regressed benchmark", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "agm_bound=289") {
		t.Errorf("diff output:\n%s", out.String())
	}
}

func TestRunMissingBenchmark(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)
	lines := strings.Split(baseBench, "\n")
	var kept []string
	for _, l := range lines {
		if !strings.Contains(l, "path/auto") {
			kept = append(kept, l)
		}
	}
	cur := writeBench(t, "cur.txt", strings.Join(kept, "\n"))
	var out bytes.Buffer
	err := run([]string{base, cur}, &out)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("dropped benchmark not reported: %v", err)
	}
}

func TestRunNewBenchmarkAllowed(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)
	cur := writeBench(t, "cur.txt", baseBench+
		"BenchmarkAcyclicYannakakis/star/auto-8 10 1 ns/op 5.0 peak_rows\n")
	var out bytes.Buffer
	if err := run([]string{base, cur}, &out); err != nil {
		t.Fatalf("new benchmark rejected: %v", err)
	}
	if !strings.Contains(out.String(), "new benchmark") {
		t.Errorf("new benchmark not announced:\n%s", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	base := writeBench(t, "base.txt", baseBench)
	empty := writeBench(t, "empty.txt", "PASS\n")
	var out bytes.Buffer
	cases := [][]string{
		{},
		{base},
		{"-max-regress", "-1", base, base},
		{empty, base}, // base holds no benchmark lines
		{filepath.Join(t.TempDir(), "absent.txt"), base},
	}
	for i, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}
