// Command benchdiff compares two Go benchmark output files on a custom
// ReportMetric column and fails when any benchmark regressed beyond a
// threshold. CI uses it to gate the wcoj and acyclic bench baselines:
//
//	benchdiff -metric peak_rows -max-regress 20 BENCH_wcoj.txt fresh.txt
//
// A regression is current > base·(1 + max-regress/100) on the watched
// metric. Benchmarks present only in the current file are reported as
// new; benchmarks that disappeared from the current file are an error —
// losing a baseline silently is how regressions sneak in.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		metric     = fs.String("metric", "peak_rows", "benchmark metric column to gate on")
		maxRegress = fs.Float64("max-regress", 20, "maximum allowed regression of the gated metric, in percent")
		report     = fs.String("report", "", "comma-separated extra metrics to print alongside the diff")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [flags] <base-file> <current-file>")
	}
	if *maxRegress < 0 {
		return fmt.Errorf("-max-regress must be non-negative, got %v", *maxRegress)
	}
	base, err := parseFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := parseFile(fs.Arg(1))
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("%s holds no benchmark lines with metric %q", fs.Arg(0), *metric)
	}

	var extras []string
	if *report != "" {
		extras = strings.Split(*report, ",")
	}
	var regressions, missing []string
	for _, name := range sortedNames(base) {
		bm, ok := base[name][*metric]
		if !ok {
			continue
		}
		cm, ok := cur[name][*metric]
		if !ok {
			missing = append(missing, name)
			continue
		}
		delta := 0.0
		if bm != 0 {
			delta = (cm - bm) / bm * 100
		} else if cm > 0 {
			delta = 100
		}
		status := "ok"
		if cm > bm*(1+*maxRegress/100) {
			status = "REGRESSED"
			regressions = append(regressions, name)
		}
		line := fmt.Sprintf("%-60s %s %12g -> %-12g (%+.1f%%) %s", name, *metric, bm, cm, delta, status)
		for _, ex := range extras {
			if v, ok := cur[name][strings.TrimSpace(ex)]; ok {
				line += fmt.Sprintf("  %s=%g", strings.TrimSpace(ex), v)
			}
		}
		fmt.Fprintln(out, line)
	}
	for _, name := range sortedNames(cur) {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(out, "%-60s new benchmark\n", name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("benchmarks missing from current run: %s", strings.Join(missing, ", "))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%s regressed beyond %g%% on: %s", *metric, *maxRegress, strings.Join(regressions, ", "))
	}
	fmt.Fprintf(out, "no %s regression beyond %g%%\n", *metric, *maxRegress)
	return nil
}

// parseFile reads Go benchmark output and returns, per benchmark name
// (iteration-count suffix stripped is not needed — names are the first
// field), the map of metric unit → value.
func parseFile(path string) (map[string]map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, metrics, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		out[name] = metrics
	}
	return out, sc.Err()
}

// parseLine decodes one "BenchmarkX-8  10  123 ns/op  257.0 peak_rows"
// line into its name (CPU suffix stripped) and unit → value map.
func parseLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	metrics := map[string]float64{}
	// fields[1] is the iteration count; then value/unit pairs follow.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

func sortedNames(m map[string]map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
