package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relquery/internal/obs"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testDB = `
relation T
A B C
1 x p
2 x q
2 y q
end
`

func TestRunEvaluatesQuery(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	for _, engine := range []string{"materialize", "tableau"} {
		err := run([]string{"-db", db, "-query", "pi[A C](pi[A B](T) * pi[B C](T))", "-engine", engine, "-count"})
		if err != nil {
			t.Errorf("engine %s: %v", engine, err)
		}
	}
}

func TestRunQueryFile(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	qf := writeFile(t, "q.txt", "pi[A](T)\n")
	if err := run([]string{"-db", db, "-query-file", qf}); err != nil {
		t.Error(err)
	}
}

func TestRunJoinAlgorithmsAndOrders(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	for _, alg := range []string{"hash", "sortmerge", "nestedloop", "yannakakis", "auto"} {
		for _, order := range []string{"greedy", "sequential"} {
			err := run([]string{"-db", db, "-query", "pi[A B](T) * pi[B C](T)",
				"-join", alg, "-order", order, "-stats", "-count"})
			if err != nil {
				t.Errorf("%s/%s: %v", alg, order, err)
			}
		}
	}
}

// TestRunUnknownJoinListsStrategies: a bogus -join value must fail with
// an error naming every valid strategy, including the auto selector.
func TestRunUnknownJoinListsStrategies(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	err := run([]string{"-db", db, "-query", "T", "-join", "bogus"})
	if err == nil {
		t.Fatal("unknown -join strategy accepted")
	}
	for _, want := range []string{"bogus", "hash", "wcoj", "yannakakis", "auto"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("-join error %q does not mention %q", err, want)
		}
	}
}

func TestRunBudget(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	// Budget of 1 tuple must trip on this query.
	err := run([]string{"-db", db, "-query", "pi[A B](T) * pi[B C](T)", "-budget", "1"})
	if err == nil {
		t.Error("budget violation not reported")
	}
}

func TestRunErrors(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	cases := [][]string{
		{},          // no db
		{"-db", db}, // no query
		{"-db", db, "-query", "a", "-query-file", "b"}, // both
		{"-db", db, "-query", "Z"},                     // unknown operand
		{"-db", db, "-query", "T", "-engine", "bogus"},
		{"-db", db, "-query", "T", "-join", "bogus"},
		{"-db", db, "-query", "T", "-order", "bogus"},
		{"-db", "/does/not/exist", "-query", "T"},
		{"-db", db, "-query", "T", "-parallel", "-1"},
		{"-db", db, "-query", "T", "-engine", "tableau", "-explain-analyze"},
		{"-db", db, "-query", "T", "-engine", "tableau", "-metrics"},
		{"-db", db, "-query", "T", "-engine", "tableau", "-trace", "-"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}

func TestRunExplain(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	if err := run([]string{"-db", db, "-query", "pi[A](pi[A B](T) * pi[B C](T))", "-explain"}); err != nil {
		t.Error(err)
	}
}

func TestRunOptimize(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	if err := run([]string{"-db", db, "-query", "pi[A](pi[A B](T) * pi[B C](T))", "-optimize", "-stats", "-count"}); err != nil {
		t.Error(err)
	}
}

func TestRunExplainAnalyze(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	if err := run([]string{"-db", db, "-query", "pi[A](pi[A B](T) * pi[B C](T))", "-explain-analyze"}); err != nil {
		t.Error(err)
	}
	// The parallel engine and caching must trace too.
	if err := run([]string{"-db", db, "-query", "pi[A B](T) * pi[B C](T)",
		"-parallel", "4", "-cache", "-explain-analyze"}); err != nil {
		t.Error(err)
	}
}

func TestRunTraceEmitsValidJSON(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-db", db, "-query", "pi[A C](pi[A B](T) * pi[B C](T))",
		"-trace", tracePath, "-metrics", "-count"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr obs.Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v\n%s", err, data)
	}
	root := tr.Root()
	if root == nil {
		t.Fatal("-trace output has no root span")
	}
	if root.Op != obs.OpProject || root.OutputRows == 0 {
		t.Errorf("root span = op=%s rows=%d, want a project with rows", root.Op, root.OutputRows)
	}
	if tr.Metrics.Joins == 0 {
		t.Error("-trace metrics recorded no joins")
	}
}

// TestRunTraceOnBudgetAbort: the trace file is written even when
// evaluation aborts, with the error recorded on a span.
func TestRunTraceOnBudgetAbort(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-db", db, "-query", "pi[A B](T) * pi[B C](T)",
		"-budget", "1", "-trace", tracePath}); err == nil {
		t.Fatal("budget violation not reported")
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("no trace written on budget abort: %v", err)
	}
	var tr obs.Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("abort trace is not valid JSON: %v", err)
	}
	if root := tr.Root(); root == nil || root.Err == "" {
		t.Errorf("abort trace root should carry the error, got %+v", root)
	}
}

func TestRunPprofWritesProfiles(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	prefix := filepath.Join(t.TempDir(), "rq")
	if err := run([]string{"-db", db, "-query", "pi[A B](T) * pi[B C](T)",
		"-pprof", prefix, "-count"}); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".mem.pprof"} {
		info, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Errorf("profile %s not written: %v", suffix, err)
		} else if info.Size() == 0 {
			t.Errorf("profile %s is empty", suffix)
		}
	}
}

func TestRunContains(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	if err := run([]string{"-db", db, "-query", "pi[A B](T)", "-contains", "1 x"}); err != nil {
		t.Error(err)
	}
	// Wrong arity.
	if err := run([]string{"-db", db, "-query", "pi[A B](T)", "-contains", "1"}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestRunTraceFormatChrome(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	tracePath := filepath.Join(t.TempDir(), "trace.chrome.json")
	if err := run([]string{"-db", db, "-query", "pi[A C](pi[A B](T) * pi[B C](T))",
		"-trace", tracePath, "-trace-format", "chrome", "-count"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("-trace-format=chrome output is not valid JSON: %v\n%s", err, data)
	}
	if len(decoded.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	var complete int
	for _, ev := range decoded.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete == 0 {
		t.Error("chrome trace has no complete (X) events")
	}
}

func TestRunServe(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	// Port 0 picks a free port; the run exercises the registry publish
	// and server lifecycle without an external scraper.
	if err := run([]string{"-db", db, "-query", "pi[A B](T) * pi[B C](T)",
		"-serve", "127.0.0.1:0", "-count"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTelemetryFlagErrors(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	cases := [][]string{
		{"-db", db, "-query", "T", "-trace", "-", "-trace-format", "bogus"},
		{"-db", db, "-query", "T", "-engine", "tableau", "-serve", "127.0.0.1:0"},
		{"-db", db, "-query", "T", "-serve-linger", "1s"}, // linger without serve
		{"-db", db, "-query", "T", "-serve", "127.0.0.1:0", "-serve-linger", "-1s"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}
