package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testDB = `
relation T
A B C
1 x p
2 x q
2 y q
end
`

func TestRunEvaluatesQuery(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	for _, engine := range []string{"materialize", "tableau"} {
		err := run([]string{"-db", db, "-query", "pi[A C](pi[A B](T) * pi[B C](T))", "-engine", engine, "-count"})
		if err != nil {
			t.Errorf("engine %s: %v", engine, err)
		}
	}
}

func TestRunQueryFile(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	qf := writeFile(t, "q.txt", "pi[A](T)\n")
	if err := run([]string{"-db", db, "-query-file", qf}); err != nil {
		t.Error(err)
	}
}

func TestRunJoinAlgorithmsAndOrders(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	for _, alg := range []string{"hash", "sortmerge", "nestedloop"} {
		for _, order := range []string{"greedy", "sequential"} {
			err := run([]string{"-db", db, "-query", "pi[A B](T) * pi[B C](T)",
				"-join", alg, "-order", order, "-stats", "-count"})
			if err != nil {
				t.Errorf("%s/%s: %v", alg, order, err)
			}
		}
	}
}

func TestRunBudget(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	// Budget of 1 tuple must trip on this query.
	err := run([]string{"-db", db, "-query", "pi[A B](T) * pi[B C](T)", "-budget", "1"})
	if err == nil {
		t.Error("budget violation not reported")
	}
}

func TestRunErrors(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	cases := [][]string{
		{},          // no db
		{"-db", db}, // no query
		{"-db", db, "-query", "a", "-query-file", "b"}, // both
		{"-db", db, "-query", "Z"},                     // unknown operand
		{"-db", db, "-query", "T", "-engine", "bogus"},
		{"-db", db, "-query", "T", "-join", "bogus"},
		{"-db", db, "-query", "T", "-order", "bogus"},
		{"-db", "/does/not/exist", "-query", "T"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}

func TestRunExplain(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	if err := run([]string{"-db", db, "-query", "pi[A](pi[A B](T) * pi[B C](T))", "-explain"}); err != nil {
		t.Error(err)
	}
}

func TestRunOptimize(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	if err := run([]string{"-db", db, "-query", "pi[A](pi[A B](T) * pi[B C](T))", "-optimize", "-stats", "-count"}); err != nil {
		t.Error(err)
	}
}

func TestRunContains(t *testing.T) {
	db := writeFile(t, "db.rel", testDB)
	if err := run([]string{"-db", db, "-query", "pi[A B](T)", "-contains", "1 x"}); err != nil {
		t.Error(err)
	}
	// Wrong arity.
	if err := run([]string{"-db", db, "-query", "pi[A B](T)", "-contains", "1"}); err == nil {
		t.Error("arity mismatch accepted")
	}
}
