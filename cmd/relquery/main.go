// Command relquery evaluates a project–join expression against relations
// loaded from a text file.
//
// Usage:
//
//	relquery -db data.rel -query 'pi[A C](pi[A B](T) * pi[B C](T))'
//
// The database file holds "relation <name> ... end" blocks (see package
// relation's codec). The query references relations by name; the engine
// flag selects the materializing evaluator (with pluggable join algorithm
// and order) or the space-bounded tableau engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"relquery/internal/algebra"
	"relquery/internal/governor"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/relation"
	"relquery/internal/tableau"
	"relquery/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "relquery:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("relquery", flag.ContinueOnError)
	var (
		dbPath    = fs.String("db", "", "path to the relations file (required)")
		query     = fs.String("query", "", "project-join expression, e.g. 'pi[A B](T) * pi[B C](T)'")
		queryFile = fs.String("query-file", "", "read the expression from a file instead")
		engine    = fs.String("engine", "materialize", "evaluation engine: materialize or tableau")
		algName   = fs.String("join", "hash", "join strategy for the materializing engine: "+strings.Join(join.StrategyNames(), ", ")+"; auto routes acyclic n-ary joins to yannakakis, blow-up-prone cyclic ones to wcoj, the rest to the binary default")
		orderName = fs.String("order", "greedy", "join order for the materializing engine: greedy or sequential")
		budget    = fs.Int("budget", 0, "abort if any intermediate relation exceeds this many tuples (0 = unlimited)")
		stats     = fs.Bool("stats", false, "print evaluation statistics to stderr")
		countOnly = fs.Bool("count", false, "print only the result cardinality")
		parallel  = fs.Int("parallel", 0, "worker count for the materializing engine: >1 evaluates join subtrees concurrently and uses the partitioned parallel hash join (unless -join is set explicitly); <=1 is sequential")
		cache     = fs.Bool("cache", false, "memoize repeated subexpressions (keyed by expression text and relation fingerprint)")
		optimize  = fs.Bool("optimize", false, "rewrite the expression (projection pushdown etc.) before evaluating")
		explain   = fs.Bool("explain", false, "print the operator tree with actual cardinalities instead of the result")
		analyze   = fs.Bool("explain-analyze", false, "evaluate once and print the executed operator tree annotated with observed stats and AGM bounds instead of the result")
		tracePath = fs.String("trace", "", "write a JSON evaluation trace (span tree + metrics) to this file, or \"-\" for stdout")
		metrics   = fs.Bool("metrics", false, "print per-evaluation metrics (tuple traffic, partitions, cache counters) to stderr")
		pprofPre  = fs.String("pprof", "", "capture profiles around evaluation into <prefix>.cpu.pprof and <prefix>.mem.pprof")
		contains  = fs.String("contains", "", "instead of evaluating, test whether this whitespace-separated tuple (in target-scheme order) is in the result")
		timeout   = fs.String("timeout", "", "wall-clock deadline for the materializing engine, as a duration (250ms, 2s, 1m30s) or seconds; empty or 0 = none")
		maxRows   = fs.String("max-rows", "", "abort when the final result exceeds this many rows (optional k/m/g suffix; 0 = unlimited)")
		admit     = fs.Bool("admit", false, "pre-flight admission control: reject a join whose predicted peak intermediate exceeds -budget instead of running it (output-bounded strategies are always admitted)")
		degrade   = fs.Bool("degrade", false, "graceful degradation: retry a failed wcoj/yannakakis join node once on the greedy binary path")
		serveAddr = fs.String("serve", "", "serve telemetry over HTTP on this address (host:port) for the duration of the run: /metrics (Prometheus text), /debug/pprof/, /debug/traces (Chrome trace-event JSON)")
		linger    = fs.Duration("serve-linger", 0, "keep the -serve endpoints up this long after evaluation finishes, so the final state can be scraped or loaded in Perfetto")
		traceFmt  = fs.String("trace-format", "json", "format for -trace output: json (span tree + metrics) or chrome (trace-event JSON loadable in Perfetto or chrome://tracing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return usageError(fs, "-db is required")
	}
	if (*query == "") == (*queryFile == "") {
		return usageError(fs, "exactly one of -query or -query-file is required")
	}
	// Validate engine knobs up front: a bad flag should fail with a usage
	// message before any file is read, not as a late engine error.
	if *parallel < 0 {
		return usageError(fs, "-parallel must be a non-negative worker count, got %d", *parallel)
	}
	// -join=auto keeps the default binary algorithm but turns on the
	// evaluator's three-way selector per n-ary join node: α-acyclic nodes
	// run Yannakakis' full reducer, cyclic nodes whose binary plan's
	// estimated peak intermediate exceeds the AGM bound run the
	// worst-case-optimal generic join, and the rest keep the binary plan.
	auto := *algName == "auto"
	var alg join.Algorithm
	if !auto {
		var err error
		alg, err = join.ByName(*algName)
		if err != nil {
			return usageError(fs, "-join: unknown strategy %q (valid strategies: %s)", *algName, strings.Join(join.StrategyNames(), ", "))
		}
	}
	order, err := join.OrderByName(*orderName)
	if err != nil {
		return usageError(fs, "-order: unknown order %q (want greedy or sequential)", *orderName)
	}
	if *engine != "materialize" && *engine != "tableau" {
		return usageError(fs, "-engine: unknown engine %q (want materialize or tableau)", *engine)
	}
	if *engine == "tableau" && (*analyze || *tracePath != "" || *metrics || *serveAddr != "") {
		return usageError(fs, "-explain-analyze, -trace, -metrics and -serve require -engine materialize")
	}
	if *traceFmt != "json" && *traceFmt != "chrome" {
		return usageError(fs, "-trace-format: unknown format %q (want json or chrome)", *traceFmt)
	}
	if *linger < 0 {
		return usageError(fs, "-serve-linger must be non-negative, got %v", *linger)
	}
	if *linger > 0 && *serveAddr == "" {
		return usageError(fs, "-serve-linger requires -serve")
	}
	if *engine == "tableau" && (*timeout != "" || *maxRows != "" || *admit || *degrade) {
		return usageError(fs, "-timeout, -max-rows, -admit and -degrade require -engine materialize")
	}
	limits, err := governor.ParseLimits(*timeout, *maxRows, 0, 0)
	if err != nil {
		return usageError(fs, "%v", err)
	}
	src := *query
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		src = strings.TrimSpace(string(data))
	}

	f, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := relation.ReadDatabase(f)
	if err != nil {
		return err
	}

	expr, err := algebra.ParseForDatabase(src, db)
	if err != nil {
		return err
	}
	if *optimize {
		rewritten, err := algebra.Optimize(expr)
		if err != nil {
			return err
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "optimized: %s\n", rewritten)
		}
		expr = rewritten
	}

	if *explain {
		ev := algebra.Evaluator{Algorithm: alg, Order: order, MaxIntermediate: *budget, AutoWCOJ: auto, AutoYannakakis: auto, Limits: limits, Admit: *admit, Degrade: *degrade}
		plan, err := algebra.ExplainWith(&ev, expr, db)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}

	if *contains != "" {
		vals := strings.Fields(*contains)
		target := expr.Scheme()
		if len(vals) != target.Len() {
			return fmt.Errorf("-contains: %d values for target scheme %v (arity %d)", len(vals), target, target.Len())
		}
		tb, err := tableau.New(expr)
		if err != nil {
			return err
		}
		nt := relation.NamedTuple{Scheme: target, Vals: relation.TupleOf(vals...)}
		// -timeout governs the membership search too: the valuation tree
		// is exponential in the worst case, so it polls at node
		// granularity like every other engine.
		ok, err := tb.MemberGov(nt, db, governor.New(context.Background(), limits))
		if err != nil {
			return err
		}
		fmt.Printf("member(%v in %v): %v\n", nt, expr, ok)
		return nil
	}

	var result *relation.Relation
	switch *engine {
	case "materialize":
		opts := algebra.EvalOptions{Parallelism: *parallel, Cache: *cache, AutoWCOJ: auto, AutoYannakakis: auto}
		// When the parallel engine is on and -join was left at its
		// default, let the evaluator pick the partitioned parallel hash
		// join; an explicit -join always wins.
		joinFlagSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "join" {
				joinFlagSet = true
			}
		})
		// Attach a collector only when some observability output was
		// requested: a nil collector keeps the engine on its
		// zero-overhead fast path. -serve implies one — the telemetry
		// endpoints are only interesting with metrics and traces behind
		// them.
		var collector *obs.Collector
		if *analyze || *tracePath != "" || *metrics || *stats || *serveAddr != "" {
			collector = &obs.Collector{}
		}
		ev := algebra.Evaluator{
			Algorithm:       alg,
			Order:           order,
			MaxIntermediate: *budget,
			Parallelism:     opts.Parallelism,
			Cache:           opts.Cache,
			AutoWCOJ:        opts.AutoWCOJ,
			AutoYannakakis:  opts.AutoYannakakis,
			Collector:       collector,
			Limits:          limits,
			Admit:           *admit,
			Degrade:         *degrade,
		}
		if opts.Parallelism > 1 && !joinFlagSet {
			ev.Algorithm = nil
		}
		if *serveAddr != "" {
			ev.Registry = obs.NewRegistry()
			srv, err := telemetry.Start(*serveAddr, ev.Registry)
			if err != nil {
				return fmt.Errorf("-serve: %w", err)
			}
			fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
			defer srv.Close()
			// Lingering runs before the deferred Close (LIFO), on success
			// and error paths alike — a governor kill is exactly when the
			// endpoints are worth a look.
			defer func() {
				if *linger > 0 {
					fmt.Fprintf(os.Stderr, "telemetry: lingering %s before shutdown\n", *linger)
					time.Sleep(*linger)
				}
			}()
		}
		stopProfiles, err := startProfiles(*pprofPre)
		if err != nil {
			return err
		}
		result, err = ev.Eval(expr, db)
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
		// The trace is worth emitting even when evaluation aborts (a
		// budget abort's partial spans show where the blow-up happened).
		if *tracePath != "" {
			if terr := writeTrace(*tracePath, *traceFmt, collector.Trace()); terr != nil && err == nil {
				err = terr
			}
		}
		if *metrics {
			fmt.Fprintln(os.Stderr, collector.Metrics.Snapshot().String())
		}
		if err != nil {
			// A governor kill still has a story to tell: render the spans
			// executed up to the abort, error annotations included, so the
			// user sees where the budget died.
			if *analyze {
				if t := governor.TraceOf(err); t != nil {
					fmt.Print(algebra.RenderTrace(t))
				}
			}
			return err
		}
		if *stats {
			snap := collector.Metrics.Snapshot()
			fmt.Fprintf(os.Stderr, "engine=materialize join=%s order=%s parallel=%d cache=%v joins=%d max_intermediate=%d intermediate_tuples=%d\n",
				ev.AlgorithmName(), order, opts.Parallelism, opts.Cache,
				snap.Joins, snap.MaxIntermediate, snap.IntermediateTuples)
		}
		if *analyze {
			fmt.Print(algebra.RenderTrace(collector.Trace()))
			return nil
		}
	case "tableau":
		tb, err := tableau.New(expr)
		if err != nil {
			return err
		}
		stopProfiles, err := startProfiles(*pprofPre)
		if err != nil {
			return err
		}
		result, err = tb.Eval(db)
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
		if err != nil {
			return err
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "engine=tableau rows=%d vars=%d\n", len(tb.Rows), len(tb.Vars()))
		}
	}

	if *countOnly {
		fmt.Println(result.Len())
		return nil
	}
	fmt.Printf("# %s\n# %d tuples over %v\n", expr, result.Len(), result.Scheme())
	fmt.Print(relation.RenderSorted(result))
	return nil
}

// usageError prints the flag set's usage to its output and returns the
// formatted error, so bad flag values fail fast with guidance instead of
// surfacing as late engine errors.
func usageError(fs *flag.FlagSet, format string, args ...any) error {
	fs.Usage()
	return fmt.Errorf(format, args...)
}

// writeTrace writes the trace to path ("-" for stdout) in the requested
// format: the native JSON span tree, or Chrome trace-event JSON.
func writeTrace(path, format string, t *obs.Trace) error {
	write := t.WriteJSON
	if format == "chrome" {
		write = func(w io.Writer) error {
			return telemetry.WriteChromeTrace(w, []*obs.Trace{t})
		}
	}
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startProfiles begins CPU profiling and returns a stop function that
// finishes the CPU profile and captures a heap profile. With an empty
// prefix both are no-ops.
func startProfiles(prefix string) (func() error, error) {
	if prefix == "" {
		return func() error { return nil }, nil
	}
	cf, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cf.Close(); err != nil {
			return err
		}
		mf, err := os.Create(prefix + ".mem.pprof")
		if err != nil {
			return err
		}
		runtime.GC() // settle the heap so the profile reflects retained memory
		if err := pprof.WriteHeapProfile(mf); err != nil {
			mf.Close()
			return err
		}
		return mf.Close()
	}, nil
}
