// Command relquery evaluates a project–join expression against relations
// loaded from a text file.
//
// Usage:
//
//	relquery -db data.rel -query 'pi[A C](pi[A B](T) * pi[B C](T))'
//
// The database file holds "relation <name> ... end" blocks (see package
// relation's codec). The query references relations by name; the engine
// flag selects the materializing evaluator (with pluggable join algorithm
// and order) or the space-bounded tableau engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"relquery/internal/algebra"
	"relquery/internal/join"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "relquery:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("relquery", flag.ContinueOnError)
	var (
		dbPath    = fs.String("db", "", "path to the relations file (required)")
		query     = fs.String("query", "", "project-join expression, e.g. 'pi[A B](T) * pi[B C](T)'")
		queryFile = fs.String("query-file", "", "read the expression from a file instead")
		engine    = fs.String("engine", "materialize", "evaluation engine: materialize or tableau")
		algName   = fs.String("join", "hash", "join algorithm for the materializing engine: "+strings.Join(join.Names(), ", "))
		orderName = fs.String("order", "greedy", "join order for the materializing engine: greedy or sequential")
		budget    = fs.Int("budget", 0, "abort if any intermediate relation exceeds this many tuples (0 = unlimited)")
		stats     = fs.Bool("stats", false, "print evaluation statistics to stderr")
		countOnly = fs.Bool("count", false, "print only the result cardinality")
		parallel  = fs.Int("parallel", 0, "worker count for the materializing engine: >1 evaluates join subtrees concurrently and uses the partitioned parallel hash join (unless -join is set explicitly); <=1 is sequential")
		cache     = fs.Bool("cache", false, "memoize repeated subexpressions (keyed by expression text and relation fingerprint)")
		optimize  = fs.Bool("optimize", false, "rewrite the expression (projection pushdown etc.) before evaluating")
		explain   = fs.Bool("explain", false, "print the operator tree with actual cardinalities instead of the result")
		contains  = fs.String("contains", "", "instead of evaluating, test whether this whitespace-separated tuple (in target-scheme order) is in the result")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return fmt.Errorf("-db is required")
	}
	if (*query == "") == (*queryFile == "") {
		return fmt.Errorf("exactly one of -query or -query-file is required")
	}
	src := *query
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		src = strings.TrimSpace(string(data))
	}

	f, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := relation.ReadDatabase(f)
	if err != nil {
		return err
	}

	expr, err := algebra.ParseForDatabase(src, db)
	if err != nil {
		return err
	}
	if *optimize {
		rewritten, err := algebra.Optimize(expr)
		if err != nil {
			return err
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "optimized: %s\n", rewritten)
		}
		expr = rewritten
	}

	if *explain {
		alg, err := join.ByName(*algName)
		if err != nil {
			return err
		}
		order, err := join.OrderByName(*orderName)
		if err != nil {
			return err
		}
		ev := algebra.Evaluator{Algorithm: alg, Order: order, MaxIntermediate: *budget}
		plan, err := algebra.ExplainWith(&ev, expr, db)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}

	if *contains != "" {
		vals := strings.Fields(*contains)
		target := expr.Scheme()
		if len(vals) != target.Len() {
			return fmt.Errorf("-contains: %d values for target scheme %v (arity %d)", len(vals), target, target.Len())
		}
		tb, err := tableau.New(expr)
		if err != nil {
			return err
		}
		nt := relation.NamedTuple{Scheme: target, Vals: relation.TupleOf(vals...)}
		ok, err := tb.Member(nt, db)
		if err != nil {
			return err
		}
		fmt.Printf("member(%v in %v): %v\n", nt, expr, ok)
		return nil
	}

	var result *relation.Relation
	switch *engine {
	case "materialize":
		alg, err := join.ByName(*algName)
		if err != nil {
			return err
		}
		order, err := join.OrderByName(*orderName)
		if err != nil {
			return err
		}
		opts := algebra.EvalOptions{Parallelism: *parallel, Cache: *cache}
		// When the parallel engine is on and -join was left at its
		// default, let the evaluator pick the partitioned parallel hash
		// join; an explicit -join always wins.
		joinFlagSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "join" {
				joinFlagSet = true
			}
		})
		var js join.Stats
		ev := algebra.Evaluator{
			Algorithm:       alg,
			Order:           order,
			Stats:           &js,
			MaxIntermediate: *budget,
			Parallelism:     opts.Parallelism,
			Cache:           opts.Cache,
		}
		if opts.Parallelism > 1 && !joinFlagSet {
			ev.Algorithm = nil
		}
		result, err = ev.Eval(expr, db)
		if err != nil {
			return err
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "engine=materialize join=%s order=%s parallel=%d cache=%v %s\n",
				ev.AlgorithmName(), order, opts.Parallelism, opts.Cache, js.String())
		}
	case "tableau":
		tb, err := tableau.New(expr)
		if err != nil {
			return err
		}
		result, err = tb.Eval(db)
		if err != nil {
			return err
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "engine=tableau rows=%d vars=%d\n", len(tb.Rows), len(tb.Vars()))
		}
	default:
		return fmt.Errorf("unknown engine %q (want materialize or tableau)", *engine)
	}

	if *countOnly {
		fmt.Println(result.Len())
		return nil
	}
	fmt.Printf("# %s\n# %d tuples over %v\n", expr, result.Len(), result.Scheme())
	fmt.Print(relation.RenderSorted(result))
	return nil
}
