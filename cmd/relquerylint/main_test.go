package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relquery/internal/analysis"
	"relquery/internal/analysis/framework"
)

// chdirModuleRoot moves the test into the module root (restored on
// cleanup) so ./... means the whole module, as it does for users.
func chdirModuleRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := framework.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Error(err)
		}
	})
}

// TestSuiteCleanOnModule is the self-run gate: the whole module must
// lint clean. A regression that reintroduces a banned pattern fails here
// (and in `make lint` / CI) with the offending position on stdout.
func TestSuiteCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	chdirModuleRoot(t)
	var out bytes.Buffer
	if code := run([]string{"./..."}, &out); code != 0 {
		t.Fatalf("relquerylint ./... = exit %d, want 0:\n%s", code, out.String())
	}
}

// TestSARIFOnModule checks the SARIF report shape on a clean run: one
// run, one rule per analyzer, zero results.
func TestSARIFOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	chdirModuleRoot(t)
	var out bytes.Buffer
	if code := run([]string{"-format", "sarif", "./..."}, &out); code != 0 {
		t.Fatalf("relquerylint -format=sarif ./... = exit %d, want 0:\n%s", code, out.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one SARIF 2.1.0 run, got version %q with %d runs", log.Version, len(log.Runs))
	}
	if got, want := len(log.Runs[0].Tool.Driver.Rules), len(analysis.All()); got != want {
		t.Errorf("SARIF rules = %d, want one per analyzer (%d)", got, want)
	}
	if n := len(log.Runs[0].Results); n != 0 {
		t.Errorf("clean module produced %d SARIF results, want 0", n)
	}
}

// TestBaselineRatchet: a stale baseline entry (recorded finding that no
// longer fires) must fail the run — the ledger only shrinks — and an
// empty baseline must pass a clean tree.
func TestBaselineRatchet(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	chdirModuleRoot(t)
	dir := t.TempDir()

	stale := filepath.Join(dir, "stale.baseline")
	content := "# relquerylint baseline v1\n" +
		"govloop\tinternal/join/join.go\trange over tuples has no reachable governor Tick/Check: long since fixed\n"
	if err := os.WriteFile(stale, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"-baseline", stale, "./..."}, &out); code != 1 {
		t.Errorf("stale baseline entry = exit %d, want 1 (ratchet must force regeneration)", code)
	}

	empty := filepath.Join(dir, "empty.baseline")
	if err := os.WriteFile(empty, []byte("# relquerylint baseline v1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-baseline", empty, "./..."}, &out); code != 0 {
		t.Errorf("empty baseline on clean tree = exit %d, want 0:\n%s", code, out.String())
	}
}

// TestWriteBaseline: -write-baseline round-trips — the written file
// loads, carries the version header, and (on a clean tree) records
// nothing.
func TestWriteBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	chdirModuleRoot(t)
	path := filepath.Join(t.TempDir(), "lint.baseline")
	var out bytes.Buffer
	if code := run([]string{"-baseline", path, "-write-baseline", "./..."}, &out); code != 0 {
		t.Fatalf("-write-baseline = exit %d, want 0:\n%s", code, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# relquerylint baseline v1") {
		t.Errorf("baseline missing version header:\n%s", data)
	}
	b, err := framework.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("clean tree wrote %d baseline entries, want 0", b.Len())
	}
}

func TestListFlag(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out); code != 0 {
		t.Fatalf("relquerylint -list = exit %d, want 0", code)
	}
	for _, name := range []string{"govloop", "nilrecv", "sentinelmap", "spanfield"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, nil); code != 2 {
		t.Fatalf("bad flag = exit %d, want 2", code)
	}
}

func TestBadFormat(t *testing.T) {
	if code := run([]string{"-format", "xml"}, nil); code != 2 {
		t.Fatalf("bad format = exit %d, want 2", code)
	}
}

func TestBadPattern(t *testing.T) {
	chdirModuleRoot(t)
	if code := run([]string{"./no/such/dir/..."}, nil); code != 2 {
		t.Fatalf("bad pattern = exit %d, want 2", code)
	}
}
