package main

import (
	"os"
	"testing"

	"relquery/internal/analysis/framework"
)

// chdirModuleRoot moves the test into the module root (restored on
// cleanup) so ./... means the whole module, as it does for users.
func chdirModuleRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := framework.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Error(err)
		}
	})
}

// TestSuiteCleanOnModule is the self-run gate: the whole module must
// lint clean. A regression that reintroduces a banned pattern fails here
// (and in `make lint` / CI) with the offending position on stdout.
func TestSuiteCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	chdirModuleRoot(t)
	if code := run([]string{"./..."}); code != 0 {
		t.Fatalf("relquerylint ./... = exit %d, want 0 (findings above)", code)
	}
}

func TestListFlag(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("relquerylint -list = exit %d, want 0", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-no-such-flag"}); code != 2 {
		t.Fatalf("bad flag = exit %d, want 2", code)
	}
}

func TestBadPattern(t *testing.T) {
	chdirModuleRoot(t)
	if code := run([]string{"./no/such/dir/..."}); code != 2 {
		t.Fatalf("bad pattern = exit %d, want 2", code)
	}
}
