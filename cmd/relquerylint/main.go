// Command relquerylint runs relquery's custom static-analysis suite
// over the module.
//
// Usage:
//
//	relquerylint [-list] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status: 0 when the tree is clean, 1 when any analyzer reported a
// diagnostic, 2 on a loading or internal error — the same convention as
// go vet, so CI can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"relquery/internal/analysis"
	"relquery/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	flags := flag.NewFlagSet("relquerylint", flag.ContinueOnError)
	list := flags.Bool("list", false, "list the analyzers in the suite and exit")
	flags.Usage = func() {
		fmt.Fprintln(flags.Output(), "usage: relquerylint [-list] [packages]")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "relquerylint:", err)
		return 2
	}
	prog, err := framework.LoadPackages(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relquerylint:", err)
		return 2
	}
	diags, err := prog.Run(analyzers...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relquerylint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
