// Command relquerylint runs relquery's custom static-analysis suite
// over the module.
//
// Usage:
//
//	relquerylint [-list] [-format text|sarif] [-baseline file] [-write-baseline] [packages]
//
// Packages default to ./... relative to the current directory. With
// -baseline, findings recorded in the baseline file are demoted to
// warnings (the debt ledger); new findings still fail, and stale
// entries — recorded findings that no longer fire — also fail, so the
// ledger can only shrink: regenerate it with -write-baseline to claim
// the progress. With -format=sarif the report is a SARIF 2.1.0 log on
// stdout (fresh findings level "error", baselined "warning") for
// upload to code-scanning UIs.
//
// Exit status: 0 when the tree is clean (or every finding is
// baselined), 1 when any fresh finding or stale baseline entry exists,
// 2 on a loading or internal error — the same convention as go vet, so
// CI can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"relquery/internal/analysis"
	"relquery/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	flags := flag.NewFlagSet("relquerylint", flag.ContinueOnError)
	list := flags.Bool("list", false, "list the analyzers in the suite and exit")
	format := flags.String("format", "text", "report format: text or sarif")
	baselinePath := flags.String("baseline", "", "baseline file: recorded findings warn instead of failing")
	writeBaseline := flags.Bool("write-baseline", false, "write current findings to the baseline file and exit")
	flags.Usage = func() {
		fmt.Fprintln(flags.Output(), "usage: relquerylint [-list] [-format text|sarif] [-baseline file] [-write-baseline] [packages]")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "relquerylint: unknown -format %q (want text or sarif)\n", *format)
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "relquerylint:", err)
		return 2
	}
	root, err := framework.ModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relquerylint:", err)
		return 2
	}
	prog, err := framework.LoadPackages(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relquerylint:", err)
		return 2
	}
	diags, err := prog.Run(analyzers...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relquerylint:", err)
		return 2
	}

	if *writeBaseline {
		path := *baselinePath
		if path == "" {
			path = "lint.baseline"
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "relquerylint:", err)
			return 2
		}
		werr := framework.WriteBaseline(f, diags, root)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "relquerylint:", werr)
			return 2
		}
		fmt.Fprintf(stdout, "relquerylint: wrote %d finding(s) to %s\n", len(diags), path)
		return 0
	}

	fresh, baselined, stale := diags, []framework.Diagnostic(nil), 0
	if *baselinePath != "" {
		b, err := framework.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "relquerylint:", err)
			return 2
		}
		fresh, baselined, stale = b.Apply(diags, root)
	}

	if *format == "sarif" {
		if err := framework.WriteSARIF(stdout, analyzers, fresh, baselined, root); err != nil {
			fmt.Fprintln(os.Stderr, "relquerylint:", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Fprintln(stdout, d.String())
		}
		for _, d := range baselined {
			fmt.Fprintf(stdout, "%s [baselined]\n", d.String())
		}
	}
	if stale > 0 {
		fmt.Fprintf(os.Stderr, "relquerylint: %d baseline entr%s no longer fire%s — the ratchet only shrinks; regenerate with -write-baseline\n",
			stale, plural(stale, "y", "ies"), plural(stale, "s", ""))
	}
	if len(fresh) > 0 || stale > 0 {
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
