package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Error(err)
	}
}

func TestRunSingleQuick(t *testing.T) {
	if err := run([]string{"-run", "E0", "-quick"}); err != nil {
		t.Error(err)
	}
}

func TestRunSelectionWithSpaces(t *testing.T) {
	if err := run([]string{"-run", "E0, E1", "-quick", "-seed", "5"}); err != nil {
		t.Error(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCatalog(t *testing.T) {
	if err := run([]string{"-catalog"}); err != nil {
		t.Error(err)
	}
}
