package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Error(err)
	}
}

func TestRunSingleQuick(t *testing.T) {
	if err := run([]string{"-run", "E0", "-quick"}); err != nil {
		t.Error(err)
	}
}

func TestRunSelectionWithSpaces(t *testing.T) {
	if err := run([]string{"-run", "E0, E1", "-quick", "-seed", "5"}); err != nil {
		t.Error(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCatalog(t *testing.T) {
	if err := run([]string{"-catalog"}); err != nil {
		t.Error(err)
	}
}

func TestRunE7WithTelemetry(t *testing.T) {
	// -serve with port 0 plus -metrics exercises the registry publish,
	// the server lifecycle and the stderr summary in one quick E7 run.
	if err := run([]string{"-run", "E7", "-quick", "-serve", "127.0.0.1:0", "-metrics"}); err != nil {
		t.Error(err)
	}
}

func TestRunTelemetryFlagErrors(t *testing.T) {
	if err := run([]string{"-run", "E0", "-quick", "-serve-linger", "1s"}); err == nil {
		t.Error("-serve-linger without -serve accepted")
	}
	if err := run([]string{"-run", "E0", "-quick", "-serve", "127.0.0.1:0", "-serve-linger", "-1s"}); err == nil {
		t.Error("negative -serve-linger accepted")
	}
}
