// Command experiments runs the EXPERIMENTS.md suite: one experiment per
// table, figure or theorem of the paper, printing paper-vs-measured
// tables.
//
// Usage:
//
//	experiments                        # run everything
//	experiments -run E1,E4,E7          # run a selection
//	experiments -quick -seed 7         # smaller sweeps, custom seed
//	experiments -run E7 -trace e7.json # write E7's evaluation trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"relquery/internal/core"
	"relquery/internal/governor"
	"relquery/internal/obs"
	"relquery/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runIDs  = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		seed    = fs.Int64("seed", 1983, "random seed (default honors the paper's year)")
		quick   = fs.Bool("quick", false, "smaller sweeps for a fast pass")
		list    = fs.Bool("list", false, "list experiments and exit")
		catalog = fs.Bool("catalog", false, "print the paper's complexity catalog and exit")
		trace   = fs.String("trace", "", "write a JSON evaluation trace from tracing-aware experiments (E7) to this file")
		timeout = fs.String("timeout", "", "wall-clock deadline per governed evaluation (duration or seconds; empty or 0 = none)")
		maxRows = fs.String("max-rows", "", "row budget per governed evaluation (optional k/m/g suffix; 0 = unlimited)")
		serve   = fs.String("serve", "", "serve telemetry over HTTP on this address (host:port) while the suite runs: /metrics, /debug/pprof/, /debug/traces")
		linger  = fs.Duration("serve-linger", 0, "keep the -serve endpoints up this long after the suite finishes")
		metrics = fs.Bool("metrics", false, "print the aggregated telemetry registry (evals, violation counters, cross-run totals) to stderr after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	limits, err := governor.ParseLimits(*timeout, *maxRows, 0, 0)
	if err != nil {
		return err
	}
	if *list {
		for _, e := range core.All() {
			fmt.Printf("%s  %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *catalog {
		for _, p := range core.Catalog() {
			fmt.Printf("%-20s %s\n", p.Name, p.Class)
			fmt.Printf("%20s %s\n", "", p.Statement)
			fmt.Printf("%20s %s; %s\n", "", p.PaperRef, p.Procedure)
		}
		return nil
	}
	var ids []string
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	cfg := &core.Config{Out: os.Stdout, Seed: *seed, Quick: *quick, Limits: limits}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Trace = f
	}
	if *linger < 0 {
		return fmt.Errorf("-serve-linger must be non-negative, got %v", *linger)
	}
	if *linger > 0 && *serve == "" {
		return fmt.Errorf("-serve-linger requires -serve")
	}
	if *serve != "" || *metrics {
		cfg.Registry = obs.NewRegistry()
	}
	if *serve != "" {
		srv, err := telemetry.Start(*serve, cfg.Registry)
		if err != nil {
			return fmt.Errorf("-serve: %w", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
		defer srv.Close()
		defer func() {
			if *linger > 0 {
				fmt.Fprintf(os.Stderr, "telemetry: lingering %s before shutdown\n", *linger)
				time.Sleep(*linger)
			}
		}()
	}
	err = core.Run(ids, cfg)
	if *metrics {
		s := cfg.Registry.Snapshot()
		fmt.Fprintf(os.Stderr, "registry: evals=%d traces=%d %s\n", s.Evals, s.TracesHeld, s.Metrics.String())
	}
	return err
}
