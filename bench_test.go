// Benchmarks regenerating the performance-shaped experiments of
// EXPERIMENTS.md: one benchmark (family) per table/figure. Absolute
// numbers are machine-specific; the shapes that must hold are spelled out
// per benchmark and recorded in EXPERIMENTS.md.
package relquery_test

import (
	"fmt"
	"math/rand"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/core"
	"relquery/internal/decide"
	"relquery/internal/deps"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/qbf"
	"relquery/internal/reduction"
	"relquery/internal/relation"
	"relquery/internal/sat"
	"relquery/internal/tableau"
)

// mustConstruction builds R_G for a formula already in reduction form.
func mustConstruction(b *testing.B, g *cnf.Formula) *reduction.Construction {
	b.Helper()
	c, err := reduction.New(g)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func satFormula(b *testing.B, seed int64) *cnf.Formula {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, _, err := cnf.PlantedSatisfiable3CNF(rng, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	g, _ = cnf.Compact(g)
	return g
}

func unsatFormula(b *testing.B, seed int64) *cnf.Formula {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := cnf.Unsatisfiable3CNF(rng, 3, 8)
	if err != nil {
		b.Fatal(err)
	}
	g, _ = cnf.Compact(g)
	return g
}

// BenchmarkE0PaperExample regenerates the paper's displayed table (E0):
// construction cost of R_G and φ_G for the worked example.
func BenchmarkE0PaperExample(b *testing.B) {
	g := cnf.PaperExample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := reduction.New(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.PhiG(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1Lemma1 evaluates φ_G(R_G) with the tableau engine across
// formula sizes (E1). Expected shape: cost grows with m and with a(G),
// not with the exponential intermediate sizes of naive evaluation.
func BenchmarkE1Lemma1(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []struct{ n, m int }{{4, 3}, {5, 4}, {6, 5}, {3, 8}} {
		g, err := cnf.Random3CNF(rng, size.n, size.m)
		if err != nil {
			b.Fatal(err)
		}
		g, _ = cnf.Compact(g)
		b.Run(fmt.Sprintf("n=%d,m=%d", size.n, size.m), func(b *testing.B) {
			c := mustConstruction(b, g)
			phi, err := c.PhiG()
			if err != nil {
				b.Fatal(err)
			}
			tb, err := tableau.New(phi)
			if err != nil {
				b.Fatal(err)
			}
			db := c.Database()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tb.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2TheoremDP runs the Dᵖ result-verification route (E2) on each
// satisfiability combination. Expected shape: (sat, unsat) — the positive
// instance — costs most, since equality must be verified exhaustively.
func BenchmarkE2TheoremDP(b *testing.B) {
	gSat := satFormula(b, 2)
	gUnsat := unsatFormula(b, 2)
	combos := []struct {
		name  string
		g, gp *cnf.Formula
	}{
		{"sat_sat", gSat, gSat},
		{"sat_unsat", gSat, gUnsat},
		{"unsat_sat", gUnsat, gSat},
		{"unsat_unsat", gUnsat, gUnsat},
	}
	for _, combo := range combos {
		b.Run(combo.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SATAndUNSATViaResultEquals(combo.g, combo.gp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Cardinality runs Theorem 2's cardinality-window route (E3).
func BenchmarkE3Cardinality(b *testing.B) {
	gSat := satFormula(b, 3)
	gUnsat := unsatFormula(b, 3)
	inst, err := reduction.Theorem2(gSat, gUnsat)
	if err != nil {
		b.Fatal(err)
	}
	db := inst.Database()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := decide.CardBetween(inst.Phi(), db, inst.D1, inst.D2, decide.Budget{})
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("window check failed")
		}
	}
}

// BenchmarkE4Counting compares the three #3SAT counters (E4): brute force,
// DPLL-with-components, and the Theorem 3 query route. Expected shape:
// component counting beats brute force; the query route costs more than
// both (it pays for the relational detour) but stays polynomial in the
// number of models.
func BenchmarkE4Counting(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g, err := cnf.Random3CNF(rng, 7, 5)
	if err != nil {
		b.Fatal(err)
	}
	g, _ = cnf.Compact(g)
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (sat.BruteCounter{}).Count(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("component", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (sat.ComponentCounter{}).Count(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CountModelsViaQuery(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchQ3SAT(b *testing.B, via func(*qbf.Instance) (core.Result, error)) {
	rng := rand.New(rand.NewSource(5))
	g, err := cnf.Random3CNF(rng, 5, 4)
	if err != nil {
		b.Fatal(err)
	}
	inst := &qbf.Instance{G: g, Universal: []int{1, 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := via(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Pi2Queries runs the Theorem 4 Π₂ᵖ route (E5).
func BenchmarkE5Pi2Queries(b *testing.B) {
	benchQ3SAT(b, core.Q3SATViaQueryComparison)
}

// BenchmarkE6Pi2Relations runs the Theorem 5 Π₂ᵖ route (E6).
func BenchmarkE6Pi2Relations(b *testing.B) {
	benchQ3SAT(b, core.Q3SATViaRelationComparison)
}

// BenchmarkE7Blowup contrasts materializing evaluation (whose intermediate
// results explode exponentially with padding clauses — the Introduction's
// claim) with tableau evaluation, whose space stays bounded (E7).
func BenchmarkE7Blowup(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	core8, err := cnf.Unsatisfiable3CNF(rng, 3, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, extra := range []int{0, 2, 4} {
		g, err := cnf.PadWithFreshClauses(core8, extra)
		if err != nil {
			b.Fatal(err)
		}
		g, _ = cnf.Compact(g)
		c := mustConstruction(b, g)
		phi, err := c.PhiG()
		if err != nil {
			b.Fatal(err)
		}
		db := c.Database()
		b.Run(fmt.Sprintf("materialize/m=%d", c.M()), func(b *testing.B) {
			ev := algebra.Evaluator{Order: join.Greedy}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(phi, db); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("tableau/m=%d", c.M()), func(b *testing.B) {
			tb, err := tableau.New(phi)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tb.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Acyclic contrasts the naive left-deep plan with Yannakakis
// full-reducer evaluation on the hub workload (E8). Expected shape: naive
// is quadratic in N, Yannakakis linear.
func BenchmarkE8Acyclic(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		rels := hubWorkload(n)
		b.Run(fmt.Sprintf("naive/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := join.Multi(rels, join.Hash{}, join.Sequential, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("yannakakis/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := deps.AcyclicJoin(rels); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// hubWorkload mirrors internal/core's E8 workload for benchmarking.
func hubWorkload(n int) []*relation.Relation {
	r1 := relation.New(relation.MustScheme("A", "B"))
	r2 := relation.New(relation.MustScheme("B", "C"))
	r3 := relation.New(relation.MustScheme("C", "D"))
	for j := 0; j < n; j++ {
		r1.MustAdd(relation.TupleOf(fmt.Sprintf("a%d", j), "hub"))
		r2.MustAdd(relation.TupleOf("hub", fmt.Sprintf("b%d", j)))
	}
	r3.MustAdd(relation.TupleOf("nomatch", "z"))
	return []*relation.Relation{r1, r2, r3}
}

// BenchmarkJoinAlgorithms compares the three binary join algorithms on a
// many-to-many workload. Expected shape: hash and sort-merge scale near-
// linearly in input+output, nested-loop quadratically.
func BenchmarkJoinAlgorithms(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	mk := func(scheme relation.Scheme, rows, keys int) *relation.Relation {
		r := relation.New(scheme)
		for i := 0; i < rows; i++ {
			r.MustAdd(relation.TupleOf(
				fmt.Sprintf("k%d", rng.Intn(keys)),
				fmt.Sprintf("v%d", i),
			))
		}
		return r
	}
	left := mk(relation.MustScheme("K", "A"), 500, 50)
	right := mk(relation.MustScheme("K", "B"), 500, 50)
	for _, name := range join.Names() {
		alg, err := join.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := alg.Join(left, right); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9ParallelEval compares the sequential materializing engine
// against the parallel engine (partitioned hash join + concurrent
// subtree evaluation) on cnf/families gadget workloads. Expected shape:
// parallelism 1 ≈ sequential (fallback overhead only); parallelism 8
// ahead of sequential on both families; the cached variant ahead again
// when the expression repeats subexpressions.
//
// The -traced variants re-run a configuration with a fresh obs.Collector
// per evaluation; comparing each pair measures the observability layer's
// overhead, which the nil-collector fast path must keep within noise
// (≤ 2%, see BENCH_obs.txt for the recorded before/after numbers).
func BenchmarkE9ParallelEval(b *testing.B) {
	xor, err := cnf.XorChain(2, true)
	if err != nil {
		b.Fatal(err)
	}
	xor, _ = cnf.Compact(xor)
	php, err := cnf.Pigeonhole(1)
	if err != nil {
		b.Fatal(err)
	}
	php, _ = cnf.Compact(php)
	for _, fam := range []struct {
		name string
		g    *cnf.Formula
	}{
		{"xorchain2", xor},
		{"pigeonhole1", php},
	} {
		c := mustConstruction(b, fam.g)
		phi, err := c.PhiG()
		if err != nil {
			b.Fatal(err)
		}
		db := c.Database()
		for _, cfg := range []struct {
			name     string
			opts     algebra.EvalOptions
			traced   bool
			registry bool
		}{
			{"sequential", algebra.EvalOptions{}, false, false},
			{"parallel-1", algebra.EvalOptions{Parallelism: 1}, false, false},
			{"parallel-8", algebra.EvalOptions{Parallelism: 8}, false, false},
			{"parallel-8-cache", algebra.EvalOptions{Parallelism: 8, Cache: true}, false, false},
			{"sequential-traced", algebra.EvalOptions{}, true, false},
			{"parallel-8-traced", algebra.EvalOptions{Parallelism: 8}, true, false},
			// The -registry variant adds the process-wide telemetry
			// publish (histograms + totals fold + trace ring) on top of
			// tracing — the cost of feeding /metrics, per evaluation.
			{"parallel-8-registry", algebra.EvalOptions{Parallelism: 8}, true, true},
		} {
			reg := obs.NewRegistry()
			b.Run(fmt.Sprintf("%s/%s", fam.name, cfg.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					opts := cfg.opts
					if cfg.traced {
						opts.Collector = &obs.Collector{}
					}
					if cfg.registry {
						opts.Registry = reg
					}
					ev := opts.NewEvaluator()
					ev.Order = join.Greedy
					if _, err := ev.Eval(phi, db); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMembership measures the Proposition 2 NP membership test on the
// gadget (tuple u_G in the projected query).
func BenchmarkMembership(b *testing.B) {
	for _, mk := range []struct {
		name string
		g    *cnf.Formula
	}{
		{"sat", satFormula(b, 9)},
		{"unsat", unsatFormula(b, 9)},
	} {
		b.Run(mk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SATViaMembership(mk.g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
