package relquery_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"relquery/internal/core"
	"relquery/internal/governor"
	"relquery/internal/obs"
	"relquery/internal/telemetry"
)

// TestTelemetryE7Smoke is the end-to-end telemetry path CI exercises: a
// real experiment run (E7, the blow-up workload) publishing into a
// registry behind a live telemetry server, scraped over HTTP. It pins
// the whole chain — evaluator → registry → Prometheus exposition →
// parser — and the /debug/traces Chrome export of the same run.
func TestTelemetryE7Smoke(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := telemetry.Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("telemetry.Start: %v", err)
	}
	defer srv.Close()

	cfg := &core.Config{
		Out:      io.Discard,
		Seed:     1983,
		Quick:    true,
		Registry: reg,
		// A row cap low enough that the padded workloads trip it even in
		// quick mode, so the violation counters are exercised end to end,
		// not just present.
		Limits: governor.Limits{MaxIntermediateRows: 500},
	}
	if err := core.Run([]string{"E7"}, cfg); err != nil {
		t.Fatalf("core.Run(E7): %v", err)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	m, err := telemetry.ParseMetrics(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text format: %v", err)
	}
	if m["relquery_evals_total"] == 0 {
		t.Error("evals_total = 0; E7's evaluations never reached the registry")
	}
	// Every governor sentinel must be present as a series, and the row
	// cap set above must actually have tripped.
	var violations float64
	for _, kind := range obs.ViolationKinds() {
		series := fmt.Sprintf("relquery_governor_violations_total{sentinel=%q}", kind)
		v, ok := m[series]
		if !ok {
			t.Fatalf("missing series %s\nhave: %v", series, telemetry.MetricNames(m))
		}
		violations += v
	}
	if violations == 0 {
		t.Error("no governor violations recorded despite the row cap")
	}
	if m[`relquery_eval_latency_seconds_bucket{le="+Inf"}`] != m["relquery_eval_latency_seconds_count"] {
		t.Error("latency histogram +Inf bucket disagrees with _count")
	}

	resp2, err := http.Get("http://" + srv.Addr() + "/debug/traces")
	if err != nil {
		t.Fatalf("GET /debug/traces: %v", err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("/debug/traces is not valid Chrome trace JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("/debug/traces has no events after an E7 run")
	}
	var sawJoin bool
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "join") {
			sawJoin = true
		}
	}
	if !sawJoin {
		t.Error("no join span in the exported trace events")
	}
}
