package relquery_test

import (
	"fmt"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/join"
	"relquery/internal/reduction"
	"relquery/internal/relation"
)

// lemma1Families returns the gadget workloads the parallel engine must
// reproduce exactly: the paper's worked example plus structured families
// from cnf (the CI race job runs this file under -race).
func lemma1Families(t *testing.T) map[string]*cnf.Formula {
	t.Helper()
	// Family sizes are deliberately small: materializing φ_G(R_G) blows
	// up exponentially in m (that is the paper's theorem), so XorChain(2)
	// (m=8) and Pigeonhole(1) (m=10) are already thousands of
	// intermediate tuples — plenty to exercise partitioning while
	// keeping the race-instrumented run fast.
	families := map[string]*cnf.Formula{
		"paper": cnf.PaperExample(),
	}
	xor, err := cnf.XorChain(2, true)
	if err != nil {
		t.Fatal(err)
	}
	xor, _ = cnf.Compact(xor)
	families["xorchain"] = xor
	php, err := cnf.Pigeonhole(1)
	if err != nil {
		t.Fatal(err)
	}
	php, _ = cnf.Compact(php)
	families["pigeonhole"] = php
	return families
}

// TestLemma1ParallelEngineIdentical evaluates φ_G(R_G) with the
// sequential engine and the parallel engine at parallelism 1, 2 and 8 on
// each gadget family, requiring byte-identical sorted renderings and —
// per Lemma 1 — equality with R_G ∪ R̃_G.
func TestLemma1ParallelEngineIdentical(t *testing.T) {
	for name, g := range lemma1Families(t) {
		t.Run(name, func(t *testing.T) {
			c, err := reduction.New(g)
			if err != nil {
				t.Fatal(err)
			}
			phi, err := c.PhiG()
			if err != nil {
				t.Fatal(err)
			}
			db := c.Database()

			seq := algebra.Evaluator{Order: join.Greedy}
			want, err := seq.Eval(phi, db)
			if err != nil {
				t.Fatal(err)
			}
			expected, err := c.ExpectedPhiResult()
			if err != nil {
				t.Fatal(err)
			}
			if !want.Equal(expected) {
				t.Fatal("sequential engine violates Lemma 1: φ_G(R_G) ≠ R_G ∪ R̃_G")
			}
			wantRender := relation.RenderSorted(want)

			for _, par := range []int{1, 2, 8} {
				ev := algebra.EvalOptions{Parallelism: par, Cache: true}.NewEvaluator()
				ev.Order = join.Greedy
				got, err := ev.Eval(phi, db)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				if !got.Equal(expected) {
					t.Fatalf("parallelism %d violates Lemma 1 (%d tuples, want %d)",
						par, got.Len(), expected.Len())
				}
				if relation.RenderSorted(got) != wantRender {
					t.Fatalf("parallelism %d: rendering not byte-identical to sequential engine", par)
				}
			}
		})
	}
}

// TestLemma1ParallelJoinIdentical drives the partitioned parallel hash
// join directly (not through the evaluator) on the materialized legs of
// φ_G — π_F(R_G) and each π_{T_j}(R_G) — folding them together with
// sequential order so the intermediates grow, and checks every
// intermediate against the sequential hash join.
func TestLemma1ParallelJoinIdentical(t *testing.T) {
	for name, g := range lemma1Families(t) {
		t.Run(name, func(t *testing.T) {
			legs := gadgetLegs(t, g)
			for _, workers := range []int{1, 2, 8} {
				par := join.Parallel{Workers: workers}
				accSeq, accPar := legs[0], legs[0]
				for i, leg := range legs[1:] {
					var err error
					accSeq, err = (join.Hash{}).Join(accSeq, leg)
					if err != nil {
						t.Fatal(err)
					}
					accPar, err = par.Join(accPar, leg)
					if err != nil {
						t.Fatal(err)
					}
					if !accPar.Equal(accSeq) {
						t.Fatalf("workers=%d: intermediate %d differs (%d vs %d tuples)",
							workers, i+1, accPar.Len(), accSeq.Len())
					}
				}
				if relation.RenderSorted(accPar) != relation.RenderSorted(accSeq) {
					t.Fatalf("workers=%d: final result not byte-identical", workers)
				}
			}
		})
	}
}

// gadgetLegs materializes the projection legs of φ_G(R_G).
func gadgetLegs(t *testing.T, g *cnf.Formula) []*relation.Relation {
	t.Helper()
	c, err := reduction.New(g)
	if err != nil {
		t.Fatal(err)
	}
	legs := []*relation.Relation{}
	f, err := c.R.Project(c.FScheme())
	if err != nil {
		t.Fatal(err)
	}
	legs = append(legs, f)
	for j := 1; j <= c.M(); j++ {
		tj, err := c.TJScheme(j)
		if err != nil {
			t.Fatal(err)
		}
		leg, err := c.R.Project(tj)
		if err != nil {
			t.Fatal(err)
		}
		legs = append(legs, leg)
	}
	if len(legs) < 2 {
		t.Fatal("gadget produced fewer than 2 legs")
	}
	return legs
}

// TestParallelEvalConcurrentEvaluators runs several parallel evaluators
// against the same database concurrently, sharing one subexpression
// cache — the shape a serving deployment has. Run under -race in CI.
func TestParallelEvalConcurrentEvaluators(t *testing.T) {
	g := cnf.PaperExample()
	c, err := reduction.New(g)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	db := c.Database()
	expected, err := c.ExpectedPhiResult()
	if err != nil {
		t.Fatal(err)
	}
	cache := algebra.NewSubexprCache()
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			ev := algebra.Evaluator{Order: join.Greedy, Parallelism: 1 + i%4, Cache: true, SharedCache: cache}
			got, err := ev.Eval(phi, db)
			if err != nil {
				errc <- err
				return
			}
			if !got.Equal(expected) {
				errc <- fmt.Errorf("evaluator %d: wrong result", i)
				return
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
