package relquery_test

import (
	"strings"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/reduction"
	"relquery/internal/relation"
)

// renderAs renders r with its columns permuted into s's order. The
// generic join emits the join node's declared trs(φ) column order
// (left-to-right union), while the greedy binary plan's column order
// follows its pairing choices; the schemes are set-equal, so projecting
// onto a shared order makes renderings byte-comparable.
func renderAs(t *testing.T, r *relation.Relation, s relation.Scheme) string {
	t.Helper()
	p, err := r.Project(s)
	if err != nil {
		t.Fatal(err)
	}
	return relation.RenderSorted(p)
}

// wcojSpans collects every join span the generic join executed.
func wcojSpans(sp *obs.Span) []*obs.Span {
	if sp == nil {
		return nil
	}
	var out []*obs.Span
	if sp.Op == obs.OpJoin && sp.Algorithm == "wcoj" {
		out = append(out, sp)
	}
	for _, c := range sp.Children {
		out = append(out, wcojSpans(c)...)
	}
	return out
}

// TestWCOJKillsLemma1Blowup is the tentpole's acceptance test: on the
// Lemma 1 blow-up families the greedy binary plan materializes a peak
// intermediate far above the final output, while -join=wcoj never
// materializes more than the join node's own AGM bound — and still
// produces a byte-identical result, including under parallelism 8 (the
// CI race job runs this file with -race).
func TestWCOJKillsLemma1Blowup(t *testing.T) {
	blowupFamilies := 0
	for name, g := range lemma1Families(t) {
		t.Run(name, func(t *testing.T) {
			c, err := reduction.New(g)
			if err != nil {
				t.Fatal(err)
			}
			phi, err := c.PhiG()
			if err != nil {
				t.Fatal(err)
			}
			db := c.Database()

			// Greedy binary reference, traced: establish the blow-up.
			refCol := &obs.Collector{}
			ref := algebra.Evaluator{Order: join.Greedy, Collector: refCol}
			want, err := ref.Eval(phi, db)
			if err != nil {
				t.Fatal(err)
			}
			greedyPeak := maxJoinRows(refCol.Trace().Root())

			// WCOJ evaluation, traced.
			col := &obs.Collector{}
			ev := algebra.Evaluator{Algorithm: join.Generic{}, Order: join.Greedy, Collector: col}
			got, err := ev.Eval(phi, db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("wcoj result differs from greedy hash plan (%d vs %d tuples)", got.Len(), want.Len())
			}
			if renderAs(t, got, want.Scheme()) != relation.RenderSorted(want) {
				t.Fatal("wcoj rendering not identical to sequential engine")
			}

			spans := wcojSpans(col.Trace().Root())
			if len(spans) == 0 {
				t.Fatal("forced wcoj evaluation produced no algorithm=wcoj join span")
			}
			for _, sp := range spans {
				if sp.AGMBound <= 0 {
					t.Errorf("wcoj span %q has no AGM bound", sp.Label)
					continue
				}
				// Worst-case optimality as the trace sees it: the generic
				// join's max materialization is its own output — no binary
				// intermediate — and the AGM bound dominates it.
				peak := sp.OutputRows
				if sp.MaxIntermediate > peak {
					peak = sp.MaxIntermediate
				}
				if float64(peak) > sp.AGMBound+1e-6 {
					t.Errorf("wcoj span %q materialized %d tuples, above its AGM bound %g",
						sp.Label, peak, sp.AGMBound)
				}
				if sp.Candidates == 0 || sp.Intersections == 0 {
					t.Errorf("wcoj span %q carries no search counters: candidates=%d intersections=%d",
						sp.Label, sp.Candidates, sp.Intersections)
				}
			}

			// The blow-up families demonstrate the fix: greedy's traced
			// peak exceeds the final output, wcoj's never does.
			if name != "paper" {
				if greedyPeak <= want.Len() {
					t.Fatalf("family lost its blow-up: greedy peak=%d, output=%d", greedyPeak, want.Len())
				}
				wcojPeak := maxJoinRows(col.Trace().Root())
				if wcojPeak > want.Len() {
					t.Errorf("wcoj materialized %d tuples, above the output %d", wcojPeak, want.Len())
				}
				if wcojPeak >= greedyPeak {
					t.Errorf("wcoj peak %d did not improve on greedy peak %d", wcojPeak, greedyPeak)
				}
				blowupFamilies++
			}

			// Parallelism 8: child subtrees evaluate concurrently while the
			// n-ary node still runs the generic join. Exercised under -race.
			par := algebra.Evaluator{Algorithm: join.Generic{}, Order: join.Greedy, Parallelism: 8, Collector: &obs.Collector{}}
			pgot, err := par.Eval(phi, db)
			if err != nil {
				t.Fatalf("parallelism 8: %v", err)
			}
			if renderAs(t, pgot, want.Scheme()) != relation.RenderSorted(want) {
				t.Fatal("parallelism 8 wcoj rendering differs from sequential engine")
			}
		})
	}
	if blowupFamilies < 2 {
		t.Fatalf("acceptance needs at least 2 blow-up families, exercised %d", blowupFamilies)
	}
}

// TestWCOJExplainAnalyzeAnnotations checks the rendered EXPLAIN ANALYZE
// advertises the generic join and its search counters.
func TestWCOJExplainAnalyzeAnnotations(t *testing.T) {
	c, err := reduction.New(lemma1Families(t)["xorchain"])
	if err != nil {
		t.Fatal(err)
	}
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	ev := algebra.Evaluator{Algorithm: join.Generic{}, Order: join.Greedy}
	text, err := algebra.ExplainAnalyzeWith(&ev, phi, c.Database())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"alg=wcoj", "candidates=", "intersections=", "agm≤"} {
		if !strings.Contains(text, want) {
			t.Errorf("ExplainAnalyze output missing %q:\n%s", want, text)
		}
	}
}

// TestWCOJVariantParity runs the forced generic join on Theorem 4's R'_G
// construction (falsifiers plus the U column) with its φ₂ query, checking
// exact parity with the sequential hash engine on a second gadget shape.
func TestWCOJVariantParity(t *testing.T) {
	for name, g := range lemma1Families(t) {
		t.Run(name, func(t *testing.T) {
			c, err := reduction.NewVariant(g, reduction.WithFalsifiersAndU)
			if err != nil {
				t.Fatal(err)
			}
			phi, err := c.PhiGWithU()
			if err != nil {
				t.Fatal(err)
			}
			db := c.Database()
			ref := algebra.Evaluator{Order: join.Greedy}
			want, err := ref.Eval(phi, db)
			if err != nil {
				t.Fatal(err)
			}
			ev := algebra.Evaluator{Algorithm: join.Generic{}, Order: join.Greedy}
			got, err := ev.Eval(phi, db)
			if err != nil {
				t.Fatal(err)
			}
			if renderAs(t, got, want.Scheme()) != relation.RenderSorted(want) {
				t.Fatalf("R'_G: wcoj differs from hash engine (%d vs %d tuples)", got.Len(), want.Len())
			}
		})
	}
}

// TestAutoWCOJSelection checks the -join=auto policy: with AutoWCOJ set
// the evaluator switches exactly the blow-up-prone n-ary nodes to the
// generic join (visible as algorithm=wcoj in the trace), keeps the result
// identical, and without the flag never selects it.
func TestAutoWCOJSelection(t *testing.T) {
	c, err := reduction.New(lemma1Families(t)["xorchain"])
	if err != nil {
		t.Fatal(err)
	}
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	db := c.Database()

	ref := algebra.Evaluator{Order: join.Greedy}
	want, err := ref.Eval(phi, db)
	if err != nil {
		t.Fatal(err)
	}

	col := &obs.Collector{}
	auto := algebra.Evaluator{Order: join.Greedy, AutoWCOJ: true, Collector: col}
	got, err := auto.Eval(phi, db)
	if err != nil {
		t.Fatal(err)
	}
	if renderAs(t, got, want.Scheme()) != relation.RenderSorted(want) {
		t.Fatal("auto-wcoj result differs from default engine")
	}
	spans := wcojSpans(col.Trace().Root())
	if len(spans) == 0 {
		t.Fatal("AutoWCOJ did not select the generic join on a blow-up workload")
	}
	for _, sp := range spans {
		peak := sp.OutputRows
		if sp.MaxIntermediate > peak {
			peak = sp.MaxIntermediate
		}
		if float64(peak) > sp.AGMBound+1e-6 {
			t.Errorf("auto-selected wcoj span %q materialized %d > AGM bound %g", sp.Label, peak, sp.AGMBound)
		}
	}

	// Default evaluators must not silently switch: the blow-up stays
	// observable unless the caller opts in.
	defCol := &obs.Collector{}
	def := algebra.Evaluator{Order: join.Greedy, Collector: defCol}
	if _, err := def.Eval(phi, db); err != nil {
		t.Fatal(err)
	}
	if n := len(wcojSpans(defCol.Trace().Root())); n != 0 {
		t.Errorf("default evaluator ran %d wcoj spans without opting in", n)
	}
}
