// Package cnf implements propositional formulas in conjunctive normal
// form, with the 3CNF specialization used by Cosmadakis (1983): every
// clause has exactly three literals over three distinct variables, and a
// formula has at least three clauses (the paper's standing assumptions for
// the R_G construction).
//
// The package provides literals, clauses, formulas, truth assignments,
// evaluation, DIMACS and human-readable parsing and printing, random
// instance generation (including planted-satisfiable and provably
// unsatisfiable families), satisfiability-preserving padding (used by
// Theorem 2), and conversion of arbitrary CNF to 3CNF.
package cnf

import (
	"fmt"
	"sort"
	"strings"
)

// Lit is a literal: +v is the variable x_v, -v is its negation ¬x_v.
// Variables are numbered from 1 (DIMACS convention). The zero Lit is
// invalid.
type Lit int

// Var returns the literal's variable index (always positive).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Pos reports whether the literal is positive.
func (l Lit) Pos() bool { return l > 0 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Sat reports whether the literal is true when its variable has the given
// value.
func (l Lit) Sat(value bool) bool { return l.Pos() == value }

// String renders the literal as "x3" or "~x3".
func (l Lit) String() string {
	if l < 0 {
		return fmt.Sprintf("~x%d", -l)
	}
	return fmt.Sprintf("x%d", int(l))
}

// Clause is a disjunction of literals.
type Clause []Lit

// Vars returns the distinct variables of the clause in order of first
// occurrence.
func (c Clause) Vars() []int {
	seen := make(map[int]bool, len(c))
	var out []int
	for _, l := range c {
		if !seen[l.Var()] {
			seen[l.Var()] = true
			out = append(out, l.Var())
		}
	}
	return out
}

// DistinctVars reports whether the clause's literals are over pairwise
// distinct variables — one of the paper's standing assumptions.
func (c Clause) DistinctVars() bool { return len(c.Vars()) == len(c) }

// Tautological reports whether the clause contains a literal and its
// negation (and is therefore satisfied by every assignment).
func (c Clause) Tautological() bool {
	seen := make(map[Lit]bool, len(c))
	for _, l := range c {
		if seen[l.Neg()] {
			return true
		}
		seen[l] = true
	}
	return false
}

// Eval reports whether the assignment satisfies the clause.
func (c Clause) Eval(a Assignment) bool {
	for _, l := range c {
		if l.Sat(a.Value(l.Var())) {
			return true
		}
	}
	return false
}

// Clone returns an independent copy.
func (c Clause) Clone() Clause {
	out := make(Clause, len(c))
	copy(out, c)
	return out
}

// String renders the clause as "(x1 + ~x2 + x3)".
func (c Clause) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, l := range c {
		if i > 0 {
			b.WriteString(" + ")
		}
		b.WriteString(l.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Formula is a conjunction of clauses over variables 1..NumVars.
type Formula struct {
	// NumVars is the number of variables; every literal's variable must be
	// in 1..NumVars. Variables need not all occur.
	NumVars int
	// Clauses is the conjunction, in order.
	Clauses []Clause
}

// New builds a formula, validating that every literal's variable is in
// range.
func New(numVars int, clauses ...Clause) (*Formula, error) {
	if numVars < 0 {
		return nil, fmt.Errorf("cnf: negative variable count %d", numVars)
	}
	f := &Formula{NumVars: numVars, Clauses: make([]Clause, len(clauses))}
	for i, c := range clauses {
		for _, l := range c {
			if l == 0 {
				return nil, fmt.Errorf("cnf: clause %d contains the zero literal", i+1)
			}
			if l.Var() > numVars {
				return nil, fmt.Errorf("cnf: clause %d literal %v exceeds variable count %d", i+1, l, numVars)
			}
		}
		f.Clauses[i] = c.Clone()
	}
	return f, nil
}

// MustNew is New for statically known formulas; it panics on error.
func MustNew(numVars int, clauses ...Clause) *Formula {
	f, err := New(numVars, clauses...)
	if err != nil {
		panic(err)
	}
	return f
}

// C builds a clause from literal values, a convenience for tests and
// examples: C(1, -2, 3) is (x1 + ~x2 + x3).
func C(lits ...int) Clause {
	c := make(Clause, len(lits))
	for i, l := range lits {
		c[i] = Lit(l)
	}
	return c
}

// NumClauses returns the paper's m.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Eval reports whether the assignment satisfies every clause.
func (f *Formula) Eval(a Assignment) bool {
	for _, c := range f.Clauses {
		if !c.Eval(a) {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the formula.
func (f *Formula) Clone() *Formula {
	out := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		out.Clauses[i] = c.Clone()
	}
	return out
}

// Is3CNF reports whether every clause has exactly three literals over
// three distinct variables.
func (f *Formula) Is3CNF() bool {
	for _, c := range f.Clauses {
		if len(c) != 3 || !c.DistinctVars() {
			return false
		}
	}
	return true
}

// CheckReductionForm validates the paper's standing assumptions for the
// R_G construction: the formula is in 3CNF with at least three clauses and
// distinct variables within each clause.
func (f *Formula) CheckReductionForm() error {
	if len(f.Clauses) < 3 {
		return fmt.Errorf("cnf: reduction requires at least 3 clauses, have %d", len(f.Clauses))
	}
	for i, c := range f.Clauses {
		if len(c) != 3 {
			return fmt.Errorf("cnf: clause %d has %d literals, want 3", i+1, len(c))
		}
		if !c.DistinctVars() {
			return fmt.Errorf("cnf: clause %d %v repeats a variable", i+1, c)
		}
	}
	return nil
}

// UsedVars returns the sorted list of variables that actually occur.
func (f *Formula) UsedVars() []int {
	seen := make(map[int]bool)
	for _, c := range f.Clauses {
		for _, l := range c {
			seen[l.Var()] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// String renders the formula as a product of clauses,
// "(x1 + x2 + x3)(~x2 + x3 + ~x4)".
func (f *Formula) String() string {
	if len(f.Clauses) == 0 {
		return "(true)"
	}
	var b strings.Builder
	for _, c := range f.Clauses {
		b.WriteString(c.String())
	}
	return b.String()
}

// Assignment is a truth assignment to variables 1..n: Value(v) is the
// value of x_v.
type Assignment []bool

// NewAssignment returns the all-false assignment over n variables.
func NewAssignment(n int) Assignment { return make(Assignment, n) }

// Value returns the value of variable v (1-indexed).
func (a Assignment) Value(v int) bool { return a[v-1] }

// Set sets the value of variable v (1-indexed).
func (a Assignment) Set(v int, value bool) { a[v-1] = value }

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// FromBits fills the assignment from the low bits of mask: variable v gets
// bit v-1. Useful for exhaustive enumeration over ≤ 63 variables.
func (a Assignment) FromBits(mask uint64) {
	for v := 1; v <= len(a); v++ {
		a[v-1] = mask&(1<<(v-1)) != 0
	}
}

// String renders the assignment as a 0/1 string, variable 1 first.
func (a Assignment) String() string {
	b := make([]byte, len(a))
	for i, v := range a {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// LocalAssignment is a truth assignment to the three variables of one
// 3CNF clause, aligned with the clause's literal order: Values[i] is the
// value of the variable of literal i. It is the paper's h_jk (satisfying)
// or ξ_j's assignment h_j (falsifying).
type LocalAssignment struct {
	Vars   [3]int
	Values [3]bool
}

// SatisfyingLocal returns the seven local assignments that satisfy the
// 3-literal clause c, in increasing order of the bit pattern
// (Values[0]<<2 | Values[1]<<1 | Values[2]). The clause must have three
// literals over distinct variables.
func SatisfyingLocal(c Clause) ([]LocalAssignment, error) {
	all, falsifier, err := localAssignments(c)
	if err != nil {
		return nil, err
	}
	out := make([]LocalAssignment, 0, 7)
	for i, a := range all {
		if i != falsifier {
			out = append(out, a)
		}
	}
	return out, nil
}

// FalsifyingLocal returns the unique local assignment that falsifies the
// 3-literal clause c: every literal evaluates false.
func FalsifyingLocal(c Clause) (LocalAssignment, error) {
	all, falsifier, err := localAssignments(c)
	if err != nil {
		return LocalAssignment{}, err
	}
	return all[falsifier], nil
}

func localAssignments(c Clause) (all [8]LocalAssignment, falsifier int, err error) {
	if len(c) != 3 {
		return all, 0, fmt.Errorf("cnf: clause %v has %d literals, want 3", c, len(c))
	}
	if !c.DistinctVars() {
		return all, 0, fmt.Errorf("cnf: clause %v repeats a variable", c)
	}
	vars := [3]int{c[0].Var(), c[1].Var(), c[2].Var()}
	for bits := 0; bits < 8; bits++ {
		la := LocalAssignment{Vars: vars}
		sat := false
		for i := 0; i < 3; i++ {
			val := bits&(1<<(2-i)) != 0
			la.Values[i] = val
			if c[i].Sat(val) {
				sat = true
			}
		}
		all[bits] = la
		if !sat {
			falsifier = bits
		}
	}
	return all, falsifier, nil
}
