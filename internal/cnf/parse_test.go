package cnf

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseDIMACS(t *testing.T) {
	input := `c example
p cnf 5 3
1 2 3 0
-2 3 -4 0
-3 -4 -5 0
`
	f, err := ParseDIMACS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := PaperExample()
	if f.NumVars != want.NumVars || f.String() != want.String() {
		t.Errorf("parsed %v, want %v", f, want)
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	input := "p cnf 3 1\n1\n2 3 0\n"
	f, err := ParseDIMACS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 1 || len(f.Clauses[0]) != 3 {
		t.Errorf("parsed %v", f)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []struct{ name, input string }{
		{"no header", "1 2 0\n"},
		{"bad header", "p sat 3 1\n1 0\n"},
		{"duplicate header", "p cnf 1 1\np cnf 1 1\n1 0\n"},
		{"bad literal", "p cnf 3 1\n1 a 0\n"},
		{"unterminated", "p cnf 3 1\n1 2 3\n"},
		{"count mismatch", "p cnf 3 2\n1 2 3 0\n"},
		{"variable overflow", "p cnf 2 1\n1 2 3 0\n"},
	}
	for _, tc := range cases {
		if _, err := ParseDIMACS(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := PaperExample()
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != f.String() || back.NumVars != f.NumVars {
		t.Errorf("round trip: %v", back)
	}
}

func TestParseHuman(t *testing.T) {
	f, err := Parse("(x1 + x2 + x3)(~x2 + x3 + ~x4)(~x3 + ~x4 + ~x5)")
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != PaperExample().String() {
		t.Errorf("parsed %v", f)
	}
	if f.NumVars != 5 {
		t.Errorf("NumVars = %d", f.NumVars)
	}
}

func TestParseHumanVariants(t *testing.T) {
	// '-' and '!' negation, bare numbers, arbitrary spacing.
	f, err := Parse(" ( 1 + -2 + !3 ) (X4+x5+~1) ")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.String(); got != "(x1 + ~x2 + ~x3)(x4 + x5 + ~x1)" {
		t.Errorf("parsed %q", got)
	}
	// Double negation cancels.
	g, err := Parse("(~~x1 + x2 + x3)")
	if err != nil {
		t.Fatal(err)
	}
	if g.Clauses[0][0] != Lit(1) {
		t.Errorf("double negation: %v", g.Clauses[0][0])
	}
}

func TestParseHumanErrors(t *testing.T) {
	cases := []string{
		"",
		"x1 + x2",
		"(x1 + x2",
		"(x1 ++ x2)",
		"(x0 + x1 + x2)",
		"(x1 + + x2)",
		"()",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: no error", src)
		}
	}
}

func TestParseHumanRoundTrip(t *testing.T) {
	f := MustNew(6, C(1, -2, 3), C(-4, 5, -6), C(2, 3, 4))
	back, err := Parse(f.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != f.String() {
		t.Errorf("round trip %q -> %q", f.String(), back.String())
	}
}
