package cnf

import (
	"testing"
)

func TestPigeonholeShapeAndUnsat(t *testing.T) {
	for holes := 1; holes <= 3; holes++ {
		f, err := Pigeonhole(holes)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.CheckReductionForm(); err != nil {
			t.Errorf("PHP(%d) not in reduction form: %v", holes, err)
		}
		if f.NumVars <= 20 {
			if bruteSat(f) {
				t.Errorf("PHP(%d) reported satisfiable", holes)
			}
		}
	}
	if _, err := Pigeonhole(0); err == nil {
		t.Error("PHP(0) accepted")
	}
}

func TestXorChainModels(t *testing.T) {
	for n := 2; n <= 5; n++ {
		for _, parity := range []bool{false, true} {
			f, err := XorChain(n, parity)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.CheckReductionForm(); err != nil {
				t.Errorf("XorChain(%d,%v) not in reduction form: %v", n, parity, err)
			}
			if !bruteSat(f) {
				t.Errorf("XorChain(%d,%v) unsatisfiable", n, parity)
				continue
			}
			// Model count: the x variables have 2^(n-1) solutions with the
			// requested parity; carries are determined; To3CNF may add
			// fresh variables whose values are forced or free — count via
			// projection: check only that every model has the right x
			// parity.
			count := 0
			a := NewAssignment(f.NumVars)
			for mask := uint64(0); mask < 1<<uint(f.NumVars) && f.NumVars <= 20; mask++ {
				a.FromBits(mask)
				if !f.Eval(a) {
					continue
				}
				count++
				p := false
				for v := 1; v <= n; v++ {
					if a.Value(v) {
						p = !p
					}
				}
				if p != parity {
					t.Fatalf("XorChain(%d,%v): model %v has wrong parity", n, parity, a)
				}
			}
			// 2^(n−1) x-assignments with the right parity; carries are
			// determined; the single converted unit clause contributes two
			// fresh variables that are free in every model (×4).
			want := 4 << uint(n-1)
			if f.NumVars <= 20 && count != want {
				t.Errorf("XorChain(%d,%v): %d models, want %d", n, parity, count, want)
			}
		}
	}
	if _, err := XorChain(1, true); err == nil {
		t.Error("XorChain(1) accepted")
	}
}
