package cnf

import "fmt"

// To3CNF converts an arbitrary CNF formula into an equisatisfiable 3CNF
// formula in the paper's reduction form: every clause has exactly three
// literals over distinct variables. Fresh variables are appended after
// f.NumVars. The transformation is the textbook one:
//
//   - a tautological clause (contains l and ¬l) is dropped;
//   - duplicate literals within a clause are collapsed;
//   - an empty clause makes the formula unsatisfiable, emitted as the
//     eight sign patterns over three fresh variables;
//   - a 1-literal clause (l) becomes four clauses (l + y₁ + y₂) over the
//     sign patterns of two fresh variables;
//   - a 2-literal clause (l₁ + l₂) becomes two clauses (l₁ + l₂ + y),
//     (l₁ + l₂ + ¬y) with one fresh variable;
//   - a k-literal clause, k > 3, is split with a chain of k−3 fresh
//     variables: (l₁ + l₂ + z₁)(¬z₁ + l₃ + z₂)…(¬z_{k−3} + l_{k−1} + l_k).
//
// Satisfiability is preserved exactly; model counts are not (each
// transformation multiplies or reshapes the solution space), which is why
// Theorem 2's padding uses PadWithFreshClauses instead.
//
// The result may still have fewer than three clauses; callers that feed
// the paper's reduction should apply EnsureMinClauses afterwards.
func To3CNF(f *Formula) (*Formula, error) {
	out := &Formula{NumVars: f.NumVars}
	fresh := func() Lit {
		out.NumVars++
		return Lit(out.NumVars)
	}
	for _, orig := range f.Clauses {
		if orig.Tautological() {
			continue
		}
		c := dedupe(orig)
		switch len(c) {
		case 0:
			// Unsatisfiable: emit the 8-clause core over fresh variables.
			a, b, d := fresh(), fresh(), fresh()
			for bits := 0; bits < 8; bits++ {
				cl := Clause{a, b, d}
				for i := range cl {
					if bits&(1<<i) != 0 {
						cl[i] = cl[i].Neg()
					}
				}
				out.Clauses = append(out.Clauses, cl)
			}
		case 1:
			y1, y2 := fresh(), fresh()
			for bits := 0; bits < 4; bits++ {
				cl := Clause{c[0], y1, y2}
				if bits&1 != 0 {
					cl[1] = cl[1].Neg()
				}
				if bits&2 != 0 {
					cl[2] = cl[2].Neg()
				}
				out.Clauses = append(out.Clauses, cl)
			}
		case 2:
			y := fresh()
			out.Clauses = append(out.Clauses,
				Clause{c[0], c[1], y},
				Clause{c[0], c[1], y.Neg()},
			)
		case 3:
			out.Clauses = append(out.Clauses, c.Clone())
		default:
			// Chain split.
			z := fresh()
			out.Clauses = append(out.Clauses, Clause{c[0], c[1], z})
			rest := c[2:]
			for len(rest) > 2 {
				z2 := fresh()
				out.Clauses = append(out.Clauses, Clause{z.Neg(), rest[0], z2})
				z = z2
				rest = rest[1:]
			}
			out.Clauses = append(out.Clauses, Clause{z.Neg(), rest[0], rest[1]})
		}
	}
	if err := validate3CNF(out); err != nil {
		return nil, err
	}
	return out, nil
}

// dedupe removes duplicate literals, preserving first-occurrence order.
// The clause must not be tautological.
func dedupe(c Clause) Clause {
	seen := make(map[Lit]bool, len(c))
	out := make(Clause, 0, len(c))
	for _, l := range c {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

func validate3CNF(f *Formula) error {
	for i, c := range f.Clauses {
		if len(c) != 3 || !c.DistinctVars() {
			return fmt.Errorf("cnf: internal error: converted clause %d = %v is not 3CNF", i+1, c)
		}
	}
	return nil
}

// Compact renumbers variables so that exactly the variables occurring in
// some clause remain, numbered 1..k in order of their original indices.
// It returns the renumbered formula and the old→new variable mapping.
//
// The paper's constructions assume every variable of G appears in the
// expression ("the variables appearing in the expression are x₁,…,x_n");
// reduction.New enforces that, and Compact establishes it. Note that
// compacting divides the model count by 2 for every removed variable
// (a variable in no clause is a free factor of 2).
func Compact(f *Formula) (*Formula, map[int]int) {
	used := f.UsedVars()
	remap := make(map[int]int, len(used))
	for i, v := range used {
		remap[v] = i + 1
	}
	out := &Formula{NumVars: len(used), Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		nc := make(Clause, len(c))
		for k, l := range c {
			nl := Lit(remap[l.Var()])
			if !l.Pos() {
				nl = nl.Neg()
			}
			nc[k] = nl
		}
		out.Clauses[i] = nc
	}
	return out, remap
}

// AllVarsUsed reports whether every variable 1..NumVars occurs in some
// clause.
func (f *Formula) AllVarsUsed() bool {
	return len(f.UsedVars()) == f.NumVars
}

// EnsureMinClauses pads f with trivially satisfiable fresh-variable
// clauses until it has at least min clauses, returning f itself when it is
// already long enough. Used to meet the paper's ≥ 3 clause assumption.
func EnsureMinClauses(f *Formula, min int) (*Formula, error) {
	if len(f.Clauses) >= min {
		return f, nil
	}
	return PadWithFreshClauses(f, min-len(f.Clauses))
}
