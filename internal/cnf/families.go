package cnf

import "fmt"

// Structured formula families used by the benchmark harness: classic
// instances with known satisfiability and known model counts, so
// experiment tables can state expectations instead of sampling.

// Pigeonhole returns PHP(holes): "holes+1 pigeons into `holes` holes",
// the canonical provably-hard unsatisfiable family for resolution-based
// solvers. Variable x_{p,h} (encoded as (p−1)·holes + h) says pigeon p
// sits in hole h. The raw encoding has clauses of width `holes` and 2, so
// the result is converted to the paper's 3CNF reduction form via To3CNF.
func Pigeonhole(holes int) (*Formula, error) {
	if holes < 1 {
		return nil, fmt.Errorf("cnf: pigeonhole needs at least 1 hole, got %d", holes)
	}
	pigeons := holes + 1
	v := func(p, h int) Lit { // 1-indexed pigeon and hole
		return Lit((p-1)*holes + h)
	}
	raw := &Formula{NumVars: pigeons * holes}
	// Every pigeon sits somewhere.
	for p := 1; p <= pigeons; p++ {
		clause := make(Clause, holes)
		for h := 1; h <= holes; h++ {
			clause[h-1] = v(p, h)
		}
		raw.Clauses = append(raw.Clauses, clause)
	}
	// No two pigeons share a hole.
	for h := 1; h <= holes; h++ {
		for p1 := 1; p1 <= pigeons; p1++ {
			for p2 := p1 + 1; p2 <= pigeons; p2++ {
				raw.Clauses = append(raw.Clauses, Clause{v(p1, h).Neg(), v(p2, h).Neg()})
			}
		}
	}
	out, err := To3CNF(raw)
	if err != nil {
		return nil, err
	}
	return EnsureMinClauses(out, 3)
}

// XorChain returns the 3CNF encoding of the parity chain
//
//	x₁ ⊕ x₂ ⊕ … ⊕ x_n = parity
//
// via the direct per-triple expansion: each constraint x_i ⊕ x_{i+1} = y_i
// over chain variables. The formula is satisfiable for either parity and
// has exactly 2^(n−1) models distributed over the chain's degrees of
// freedom — a family where component-free DPLL counting must branch.
// Concretely it emits, for each i, the four 3-literal clauses encoding
// z_{i+1} = z_i ⊕ x_{i+1} over carry variables z, pinning z₁ = x₁ and the
// final carry to the requested parity with padded unit clauses.
func XorChain(n int, parity bool) (*Formula, error) {
	if n < 2 {
		return nil, fmt.Errorf("cnf: xor chain needs at least 2 variables, got %d", n)
	}
	// Variables: x_1..x_n are 1..n; carries z_2..z_n are n+1..2n-1, with
	// z_i holding x_1 ⊕ … ⊕ x_i (z_1 is x_1 itself).
	raw := &Formula{NumVars: 2*n - 1}
	z := func(i int) Lit { // z_i for i ≥ 2
		return Lit(n + i - 1)
	}
	prev := Lit(1) // z_1 = x_1
	for i := 2; i <= n; i++ {
		xi, zi := Lit(i), z(i)
		// zi = prev ⊕ xi, as four clauses.
		raw.Clauses = append(raw.Clauses,
			Clause{prev.Neg(), xi.Neg(), zi.Neg()},
			Clause{prev.Neg(), xi, zi},
			Clause{prev, xi.Neg(), zi},
			Clause{prev, xi, zi.Neg()},
		)
		prev = zi
	}
	final := prev
	if !parity {
		final = final.Neg()
	}
	raw.Clauses = append(raw.Clauses, Clause{final})
	out, err := To3CNF(raw)
	if err != nil {
		return nil, err
	}
	return EnsureMinClauses(out, 3)
}
