package cnf

import (
	"fmt"
	"math/rand"
)

// Random3CNF draws a random 3CNF formula with n variables and m clauses.
// Each clause picks three distinct variables uniformly and negates each
// with probability 1/2, matching the paper's standing assumptions
// (distinct variables within every clause). n must be at least 3.
func Random3CNF(rng *rand.Rand, n, m int) (*Formula, error) {
	if n < 3 {
		return nil, fmt.Errorf("cnf: need at least 3 variables for 3CNF, got %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("cnf: negative clause count %d", m)
	}
	clauses := make([]Clause, m)
	for j := range clauses {
		clauses[j] = randomClause(rng, n)
	}
	return New(n, clauses...)
}

func randomClause(rng *rand.Rand, n int) Clause {
	vars := rng.Perm(n)[:3]
	c := make(Clause, 3)
	for i, v := range vars {
		l := Lit(v + 1)
		if rng.Intn(2) == 0 {
			l = l.Neg()
		}
		c[i] = l
	}
	return c
}

// PlantedSatisfiable3CNF draws a random 3CNF with n variables and m
// clauses that is guaranteed satisfiable: it first draws a hidden
// assignment, then redraws any clause the assignment falsifies (flipping
// one literal to agree). The returned assignment witnesses satisfiability.
func PlantedSatisfiable3CNF(rng *rand.Rand, n, m int) (*Formula, Assignment, error) {
	if n < 3 {
		return nil, nil, fmt.Errorf("cnf: need at least 3 variables, got %d", n)
	}
	hidden := NewAssignment(n)
	for v := 1; v <= n; v++ {
		hidden.Set(v, rng.Intn(2) == 0)
	}
	clauses := make([]Clause, m)
	for j := range clauses {
		c := randomClause(rng, n)
		if !c.Eval(hidden) {
			// Flip one literal's polarity so the hidden assignment
			// satisfies it.
			i := rng.Intn(3)
			c[i] = c[i].Neg()
		}
		clauses[j] = c
	}
	f, err := New(n, clauses...)
	if err != nil {
		return nil, nil, err
	}
	return f, hidden, nil
}

// Unsatisfiable3CNF draws a random 3CNF with n variables and m clauses
// that is guaranteed unsatisfiable: the first eight clauses are the eight
// sign patterns over three fixed distinct variables (jointly
// unsatisfiable), and the remaining m−8 clauses are random. m must be at
// least 8 and n at least 3.
func Unsatisfiable3CNF(rng *rand.Rand, n, m int) (*Formula, error) {
	if n < 3 {
		return nil, fmt.Errorf("cnf: need at least 3 variables, got %d", n)
	}
	if m < 8 {
		return nil, fmt.Errorf("cnf: unsatisfiable core needs at least 8 clauses, got %d", m)
	}
	core := rng.Perm(n)[:3]
	clauses := make([]Clause, 0, m)
	for bits := 0; bits < 8; bits++ {
		c := make(Clause, 3)
		for i, v := range core {
			l := Lit(v + 1)
			if bits&(1<<i) != 0 {
				l = l.Neg()
			}
			c[i] = l
		}
		clauses = append(clauses, c)
	}
	for len(clauses) < m {
		clauses = append(clauses, randomClause(rng, n))
	}
	return New(n, clauses...)
}

// PadWithFreshClauses returns a copy of f extended with extra clauses
// (w₁ + w₂ + w₃) over fresh variables, one triple per clause. This is the
// paper's Theorem 2 padding: it does not affect satisfiability (each added
// clause is trivially satisfiable independently) and multiplies the model
// count by exactly 7 per added clause.
func PadWithFreshClauses(f *Formula, extra int) (*Formula, error) {
	if extra < 0 {
		return nil, fmt.Errorf("cnf: negative padding %d", extra)
	}
	out := f.Clone()
	for k := 0; k < extra; k++ {
		base := out.NumVars
		out.NumVars += 3
		out.Clauses = append(out.Clauses, Clause{Lit(base + 1), Lit(base + 2), Lit(base + 3)})
	}
	return out, nil
}

// PaperExample returns the formula of the paper's Section 3 example,
//
//	G = (x1 + x2 + x3)(~x2 + x3 + ~x4)(~x3 + ~x4 + ~x5),
//
// whose relation R_G is displayed in full on page 106.
func PaperExample() *Formula {
	return MustNew(5,
		C(1, 2, 3),
		C(-2, 3, -4),
		C(-3, -4, -5),
	)
}
