package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a formula in DIMACS CNF format:
//
//	c a comment
//	p cnf <numVars> <numClauses>
//	1 -2 3 0
//	-1 2 -3 0
//
// Clauses may span lines; each is terminated by 0.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var (
		numVars, numClauses int
		haveHeader          bool
		clauses             []Clause
		current             Clause
	)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if haveHeader {
				return nil, fmt.Errorf("cnf: line %d: duplicate problem line", lineno)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: line %d: malformed problem line %q", lineno, line)
			}
			var err1, err2 error
			numVars, err1 = strconv.Atoi(fields[2])
			numClauses, err2 = strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || numVars < 0 || numClauses < 0 {
				return nil, fmt.Errorf("cnf: line %d: malformed problem line %q", lineno, line)
			}
			haveHeader = true
			continue
		}
		if !haveHeader {
			return nil, fmt.Errorf("cnf: line %d: clause before problem line", lineno)
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: line %d: bad literal %q", lineno, tok)
			}
			if v == 0 {
				clauses = append(clauses, current)
				current = nil
				continue
			}
			current = append(current, Lit(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !haveHeader {
		return nil, fmt.Errorf("cnf: missing problem line")
	}
	if len(current) > 0 {
		return nil, fmt.Errorf("cnf: last clause not terminated by 0")
	}
	if len(clauses) != numClauses {
		return nil, fmt.Errorf("cnf: problem line declares %d clauses, found %d", numClauses, len(clauses))
	}
	return New(numVars, clauses...)
}

// WriteDIMACS writes the formula in DIMACS CNF format.
func WriteDIMACS(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		for _, l := range c {
			fmt.Fprintf(bw, "%d ", int(l))
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}

// Parse reads the human-readable format used throughout the paper and this
// library: a product of parenthesized clauses, literals joined by "+",
// negation written "~" or "-" or "!":
//
//	(x1 + x2 + x3)(~x2 + x3 + ~x4)(~x3 + ~x4 + ~x5)
//
// Variable tokens are x<N> or plain <N>. NumVars is the largest variable
// mentioned.
func Parse(src string) (*Formula, error) {
	var clauses []Clause
	maxVar := 0
	i := 0
	skipSpace := func() {
		for i < len(src) && (src[i] == ' ' || src[i] == '\t' || src[i] == '\n' || src[i] == '\r') {
			i++
		}
	}
	for {
		skipSpace()
		if i >= len(src) {
			break
		}
		if src[i] != '(' {
			return nil, fmt.Errorf("cnf: offset %d: expected '(', got %q", i, src[i])
		}
		i++
		var clause Clause
		for {
			skipSpace()
			neg := false
			for i < len(src) && (src[i] == '~' || src[i] == '-' || src[i] == '!') {
				neg = !neg
				i++
				skipSpace()
			}
			if i < len(src) && (src[i] == 'x' || src[i] == 'X') {
				i++
			}
			start := i
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if start == i {
				return nil, fmt.Errorf("cnf: offset %d: expected variable number", i)
			}
			v, err := strconv.Atoi(src[start:i])
			if err != nil || v == 0 {
				return nil, fmt.Errorf("cnf: offset %d: bad variable %q", start, src[start:i])
			}
			if v > maxVar {
				maxVar = v
			}
			l := Lit(v)
			if neg {
				l = l.Neg()
			}
			clause = append(clause, l)
			skipSpace()
			if i < len(src) && src[i] == '+' {
				i++
				continue
			}
			break
		}
		if i >= len(src) || src[i] != ')' {
			return nil, fmt.Errorf("cnf: offset %d: expected ')' or '+'", i)
		}
		i++
		clauses = append(clauses, clause)
	}
	if len(clauses) == 0 {
		return nil, fmt.Errorf("cnf: empty formula text")
	}
	return New(maxVar, clauses...)
}
