package cnf

import (
	"strings"
	"testing"
)

func TestLitBasics(t *testing.T) {
	l := Lit(3)
	if l.Var() != 3 || !l.Pos() || l.Neg() != Lit(-3) {
		t.Errorf("Lit(3): var=%d pos=%v neg=%v", l.Var(), l.Pos(), l.Neg())
	}
	n := Lit(-7)
	if n.Var() != 7 || n.Pos() {
		t.Errorf("Lit(-7): var=%d pos=%v", n.Var(), n.Pos())
	}
	if !l.Sat(true) || l.Sat(false) {
		t.Error("positive literal satisfaction wrong")
	}
	if n.Sat(true) || !n.Sat(false) {
		t.Error("negative literal satisfaction wrong")
	}
	if l.String() != "x3" || n.String() != "~x7" {
		t.Errorf("String: %q %q", l.String(), n.String())
	}
}

func TestClauseBasics(t *testing.T) {
	c := C(1, -2, 3)
	if got := c.String(); got != "(x1 + ~x2 + x3)" {
		t.Errorf("String = %q", got)
	}
	if !c.DistinctVars() {
		t.Error("DistinctVars = false")
	}
	if C(1, -1, 2).DistinctVars() {
		t.Error("DistinctVars true for repeated variable")
	}
	if !C(1, -1, 2).Tautological() {
		t.Error("Tautological = false for x1 + ~x1")
	}
	if C(1, 1, 2).Tautological() {
		t.Error("Tautological = true for duplicate literal")
	}
	vars := C(2, -5, 2).Vars()
	if len(vars) != 2 || vars[0] != 2 || vars[1] != 5 {
		t.Errorf("Vars = %v", vars)
	}
}

func TestClauseEval(t *testing.T) {
	c := C(1, -2, 3)
	a := NewAssignment(3)
	// 000: x1=0 (false), ~x2 true -> satisfied.
	if !c.Eval(a) {
		t.Error("000 should satisfy (x1 + ~x2 + x3)")
	}
	a.Set(2, true) // 010: x1 false, ~x2 false, x3 false -> falsified.
	if c.Eval(a) {
		t.Error("010 should falsify (x1 + ~x2 + x3)")
	}
	a.Set(3, true)
	if !c.Eval(a) {
		t.Error("011 should satisfy")
	}
}

func TestFormulaEvalAndValidation(t *testing.T) {
	f := MustNew(4, C(1, 2, 3), C(-1, -2, 4))
	a := NewAssignment(4)
	a.Set(3, true)
	a.Set(4, true)
	if !f.Eval(a) {
		t.Error("0011 should satisfy")
	}
	a2 := NewAssignment(4)
	if f.Eval(a2) {
		t.Error("0000 should falsify first clause")
	}
	if _, err := New(2, C(1, 2, 3)); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative NumVars accepted")
	}
	if _, err := New(2, C(1, 0, 2)); err == nil {
		t.Error("zero literal accepted")
	}
}

func TestCheckReductionForm(t *testing.T) {
	good := MustNew(5, C(1, 2, 3), C(-2, 3, -4), C(-3, -4, -5))
	if err := good.CheckReductionForm(); err != nil {
		t.Errorf("paper example rejected: %v", err)
	}
	if err := MustNew(3, C(1, 2, 3)).CheckReductionForm(); err == nil {
		t.Error("2-clause shortfall accepted")
	}
	bad := MustNew(3, C(1, 2, 3), C(1, 2, 3), C(1, 2))
	if err := bad.CheckReductionForm(); err == nil {
		t.Error("2-literal clause accepted")
	}
	rep := MustNew(3, C(1, 2, 3), C(1, 2, 3), C(1, 1, 2))
	if err := rep.CheckReductionForm(); err == nil {
		t.Error("repeated-variable clause accepted")
	}
}

func TestAssignmentBits(t *testing.T) {
	a := NewAssignment(4)
	a.FromBits(0b1010)
	if a.Value(1) || !a.Value(2) || a.Value(3) || !a.Value(4) {
		t.Errorf("FromBits wrong: %v", a)
	}
	if a.String() != "0101" {
		t.Errorf("String = %q", a.String())
	}
	b := a.Clone()
	b.Set(1, true)
	if a.Value(1) {
		t.Error("Clone not independent")
	}
}

func TestSatisfyingLocal(t *testing.T) {
	c := C(1, -2, 3)
	sats, err := SatisfyingLocal(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(sats) != 7 {
		t.Fatalf("got %d satisfiers, want 7", len(sats))
	}
	fals, err := FalsifyingLocal(c)
	if err != nil {
		t.Fatal(err)
	}
	// The falsifier of (x1 + ~x2 + x3) is x1=0, x2=1, x3=0.
	if fals.Values != [3]bool{false, true, false} {
		t.Errorf("falsifier = %v", fals.Values)
	}
	if fals.Vars != [3]int{1, 2, 3} {
		t.Errorf("falsifier vars = %v", fals.Vars)
	}
	// Every satisfying local assignment actually satisfies the clause; the
	// falsifier doesn't; together they are all 8.
	seen := map[[3]bool]bool{fals.Values: true}
	for _, la := range sats {
		a := NewAssignment(3)
		for i, v := range la.Vars {
			a.Set(v, la.Values[i])
		}
		if !c.Eval(a) {
			t.Errorf("local assignment %v does not satisfy %v", la.Values, c)
		}
		if seen[la.Values] {
			t.Errorf("duplicate local assignment %v", la.Values)
		}
		seen[la.Values] = true
	}
	if len(seen) != 8 {
		t.Errorf("assignments cover %d patterns, want 8", len(seen))
	}
	// Errors on malformed clauses.
	if _, err := SatisfyingLocal(C(1, 2)); err == nil {
		t.Error("2-literal clause accepted")
	}
	if _, err := FalsifyingLocal(C(1, 1, 2)); err == nil {
		t.Error("repeated-variable clause accepted")
	}
}

func TestSatisfyingLocalOrdering(t *testing.T) {
	// The paper's example lists clause F1 = (x1+x2+x3) satisfiers in the
	// order 001, 010, 011, 100, 101, 110, 111 (falsifier 000 omitted).
	sats, err := SatisfyingLocal(C(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]bool{
		{false, false, true},
		{false, true, false},
		{false, true, true},
		{true, false, false},
		{true, false, true},
		{true, true, false},
		{true, true, true},
	}
	for i, la := range sats {
		if la.Values != want[i] {
			t.Errorf("satisfier %d = %v, want %v", i, la.Values, want[i])
		}
	}
}

func TestFormulaString(t *testing.T) {
	f := PaperExample()
	want := "(x1 + x2 + x3)(~x2 + x3 + ~x4)(~x3 + ~x4 + ~x5)"
	if got := f.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	empty := MustNew(0)
	if empty.String() != "(true)" {
		t.Errorf("empty String = %q", empty.String())
	}
}

func TestUsedVars(t *testing.T) {
	f := MustNew(10, C(5, -2, 9))
	got := f.UsedVars()
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Errorf("UsedVars = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	f := PaperExample()
	g := f.Clone()
	g.Clauses[0][0] = Lit(-1)
	if f.Clauses[0][0] != Lit(1) {
		t.Error("Clone shares clause storage")
	}
}

func TestPaperExampleShape(t *testing.T) {
	f := PaperExample()
	if f.NumVars != 5 || f.NumClauses() != 3 {
		t.Fatalf("n=%d m=%d", f.NumVars, f.NumClauses())
	}
	if err := f.CheckReductionForm(); err != nil {
		t.Fatal(err)
	}
	if !f.Is3CNF() {
		t.Error("Is3CNF = false")
	}
	if !strings.Contains(f.String(), "~x5") {
		t.Errorf("String = %q", f.String())
	}
}
