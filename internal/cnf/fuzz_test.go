package cnf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks that the clause-syntax parser never panics and that
// accepted formulas round-trip through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"(x1 + x2 + x3)",
		"(x1 + x2 + x3)(~x2 + x3 + ~x4)(~x3 + ~x4 + ~x5)",
		"(1 + -2 + !3)",
		"(~~x1 + x2)",
		"(x1 +",
		"()",
		"(x0 + x1)",
		"((x1))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		back, err := Parse(g.String())
		if err != nil {
			t.Fatalf("accepted %q but rejected rendering %q: %v", src, g.String(), err)
		}
		if back.String() != g.String() {
			t.Fatalf("round trip changed %q -> %q", g.String(), back.String())
		}
	})
}

// FuzzParseDIMACS checks that the DIMACS reader never panics and that
// accepted formulas survive a write/read cycle.
func FuzzParseDIMACS(f *testing.F) {
	seeds := []string{
		"p cnf 3 1\n1 2 3 0\n",
		"c comment\np cnf 5 3\n1 2 3 0\n-2 3 -4 0\n-3 -4 -5 0\n",
		"p cnf 0 0\n",
		"p cnf 2 1\n1\n2 0\n",
		"p cnf 1 1\n1 0 extra",
		"1 2 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseDIMACS(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("rejected own output: %v", err)
		}
		if back.NumVars != g.NumVars || back.String() != g.String() {
			t.Fatalf("round trip changed the formula")
		}
	})
}

// FuzzTo3CNF checks the 3CNF conversion on arbitrary parsed formulas: the
// output is always exactly-3-literal clauses over distinct variables, the
// conversion never errors on a valid formula, and — for formulas small
// enough to brute-force — satisfiability is preserved exactly (the
// equisatisfiability Lemma 1's reduction depends on).
func FuzzTo3CNF(f *testing.F) {
	seeds := []string{
		"(x1 + x2 + x3)",
		"(x1)",
		"(x1 + x2)",
		"(x1 + x2 + x3 + x4 + x5)",
		"(x1 + ~x1)",
		"(x1 + x1 + x2)",
		"(x1)(~x1)",
		"(x1 + x2 + x3)(~x2 + x3 + ~x4)(~x3 + ~x4 + ~x5)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		g3, err := To3CNF(g)
		if err != nil {
			t.Fatalf("To3CNF failed on valid formula %q: %v", g, err)
		}
		if !g3.Is3CNF() {
			t.Fatalf("To3CNF(%q) = %q is not 3CNF", g, g3)
		}
		for i, c := range g3.Clauses {
			if len(c) != 3 || !c.DistinctVars() {
				t.Fatalf("converted clause %d = %v has repeats or wrong width", i+1, c)
			}
		}
		// Fresh variables are appended, never renumbered.
		if g3.NumVars < g.NumVars {
			t.Fatalf("conversion dropped variables: %d -> %d", g.NumVars, g3.NumVars)
		}
		if g3.NumVars <= 16 && g.NumVars <= 16 && len(g.Clauses) <= 32 {
			if bruteSat(g) != bruteSat(g3) {
				t.Fatalf("satisfiability changed: %q sat=%v but %q sat=%v",
					g, bruteSat(g), g3, bruteSat(g3))
			}
		}
	})
}

// FuzzCompact checks variable renumbering on arbitrary parsed formulas:
// the output uses every variable, keeps every clause with signs intact
// under the returned mapping, is a fixpoint of Compact, and preserves
// satisfiability (a removed variable is a free factor, never a
// constraint).
func FuzzCompact(f *testing.F) {
	seeds := []string{
		"(x1 + x2 + x3)",
		"(x2 + x4)",
		"(x5)",
		"(x1 + x3 + x5)(~x3 + x5 + ~x7)",
		"(x1 + ~x1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		out, remap := Compact(g)
		if !out.AllVarsUsed() {
			t.Fatalf("Compact(%q) = %q still has unused variables", g, out)
		}
		if out.NumClauses() != g.NumClauses() {
			t.Fatalf("Compact changed clause count: %d -> %d", g.NumClauses(), out.NumClauses())
		}
		for i, c := range g.Clauses {
			nc := out.Clauses[i]
			if len(nc) != len(c) {
				t.Fatalf("clause %d changed width", i+1)
			}
			for k, l := range c {
				nl := nc[k]
				if remap[l.Var()] != nl.Var() || l.Pos() != nl.Pos() {
					t.Fatalf("clause %d literal %d: %v mapped to %v under %v", i+1, k+1, l, nl, remap)
				}
			}
		}
		again, remap2 := Compact(out)
		if again.String() != out.String() || again.NumVars != out.NumVars {
			t.Fatalf("Compact is not idempotent: %q -> %q", out, again)
		}
		for v, w := range remap2 {
			if v != w {
				t.Fatalf("second Compact renumbered %d -> %d", v, w)
			}
		}
		if g.NumVars <= 16 && len(g.Clauses) <= 32 {
			if bruteSat(g) != bruteSat(out) {
				t.Fatalf("satisfiability changed: %q vs %q", g, out)
			}
		}
	})
}
