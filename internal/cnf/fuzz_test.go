package cnf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks that the clause-syntax parser never panics and that
// accepted formulas round-trip through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"(x1 + x2 + x3)",
		"(x1 + x2 + x3)(~x2 + x3 + ~x4)(~x3 + ~x4 + ~x5)",
		"(1 + -2 + !3)",
		"(~~x1 + x2)",
		"(x1 +",
		"()",
		"(x0 + x1)",
		"((x1))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		back, err := Parse(g.String())
		if err != nil {
			t.Fatalf("accepted %q but rejected rendering %q: %v", src, g.String(), err)
		}
		if back.String() != g.String() {
			t.Fatalf("round trip changed %q -> %q", g.String(), back.String())
		}
	})
}

// FuzzParseDIMACS checks that the DIMACS reader never panics and that
// accepted formulas survive a write/read cycle.
func FuzzParseDIMACS(f *testing.F) {
	seeds := []string{
		"p cnf 3 1\n1 2 3 0\n",
		"c comment\np cnf 5 3\n1 2 3 0\n-2 3 -4 0\n-3 -4 -5 0\n",
		"p cnf 0 0\n",
		"p cnf 2 1\n1\n2 0\n",
		"p cnf 1 1\n1 0 extra",
		"1 2 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseDIMACS(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("rejected own output: %v", err)
		}
		if back.NumVars != g.NumVars || back.String() != g.String() {
			t.Fatalf("round trip changed the formula")
		}
	})
}
