package cnf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTo3CNFFixedCases(t *testing.T) {
	cases := []struct {
		name    string
		in      *Formula
		wantSat bool
	}{
		{"already 3cnf", PaperExample(), true},
		{"unit clause", MustNew(1, C(1)), true},
		{"contradicting units", MustNew(1, C(1), C(-1)), false},
		{"two-literal", MustNew(2, C(1, 2), C(-1, -2)), true},
		{"long clause", MustNew(6, C(1, 2, 3, 4, 5, 6)), true},
		{"long unsat pair", MustNew(4, C(1, 2, 3, 4), C(-1), C(-2), C(-3), C(-4)), false},
		{"tautology dropped", MustNew(2, C(1, -1, 2)), true},
		{"duplicate literal", MustNew(2, C(1, 1, 2)), true},
		{"empty clause", &Formula{NumVars: 1, Clauses: []Clause{{}}}, false},
	}
	for _, tc := range cases {
		out, err := To3CNF(tc.in)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !out.Is3CNF() {
			t.Errorf("%s: result not 3CNF: %v", tc.name, out)
		}
		for _, c := range out.Clauses {
			if !c.DistinctVars() {
				t.Errorf("%s: clause %v repeats variables", tc.name, c)
			}
		}
		if out.NumVars <= 20 {
			if got := bruteSat(out); got != tc.wantSat {
				t.Errorf("%s: sat = %v, want %v", tc.name, got, tc.wantSat)
			}
		}
	}
}

func TestTo3CNFPreservesOriginalModels(t *testing.T) {
	// Every model of the original extends to a model of the conversion,
	// and every model of the conversion restricts to a model of the
	// original. We check by comparing projected satisfiability counts is
	// too strong (conversion reshapes counts); instead check: orig sat
	// <=> converted sat, via brute force, on random small general CNF.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		m := 1 + rng.Intn(6)
		in := &Formula{NumVars: n}
		for j := 0; j < m; j++ {
			k := 1 + rng.Intn(5)
			c := make(Clause, k)
			for i := range c {
				l := Lit(1 + rng.Intn(n))
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				c[i] = l
			}
			in.Clauses = append(in.Clauses, c)
		}
		out, err := To3CNF(in)
		if err != nil || out.NumVars > 20 {
			return err == nil // skip giant conversions, accept no-error
		}
		return bruteSat(in) == bruteSat(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestEnsureMinClauses(t *testing.T) {
	f := MustNew(3, C(1, 2, 3))
	out, err := EnsureMinClauses(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumClauses() != 3 {
		t.Errorf("clauses = %d", out.NumClauses())
	}
	if err := out.CheckReductionForm(); err != nil {
		t.Errorf("reduction form: %v", err)
	}
	// Already long enough: returned unchanged.
	same, err := EnsureMinClauses(out, 2)
	if err != nil {
		t.Fatal(err)
	}
	if same != out {
		t.Error("EnsureMinClauses copied unnecessarily")
	}
	// Satisfiability preserved.
	if bruteSat(f) != bruteSat(out) {
		t.Error("padding changed satisfiability")
	}
}
