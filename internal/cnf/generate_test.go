package cnf

import (
	"math/rand"
	"testing"
)

// bruteSat is a tiny reference satisfiability check for ≤ 20 variables.
func bruteSat(f *Formula) bool {
	a := NewAssignment(f.NumVars)
	for mask := uint64(0); mask < 1<<uint(f.NumVars); mask++ {
		a.FromBits(mask)
		if f.Eval(a) {
			return true
		}
	}
	return false
}

// bruteCount counts models for ≤ 20 variables.
func bruteCount(f *Formula) int {
	a := NewAssignment(f.NumVars)
	count := 0
	for mask := uint64(0); mask < 1<<uint(f.NumVars); mask++ {
		a.FromBits(mask)
		if f.Eval(a) {
			count++
		}
	}
	return count
}

func TestRandom3CNFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		f, err := Random3CNF(rng, 6, 10)
		if err != nil {
			t.Fatal(err)
		}
		if f.NumVars != 6 || f.NumClauses() != 10 {
			t.Fatalf("shape n=%d m=%d", f.NumVars, f.NumClauses())
		}
		if err := f.CheckReductionForm(); err != nil {
			t.Fatalf("reduction form: %v", err)
		}
	}
	if _, err := Random3CNF(rng, 2, 3); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := Random3CNF(rng, 3, -1); err == nil {
		t.Error("m=-1 accepted")
	}
}

func TestPlantedSatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		f, hidden, err := PlantedSatisfiable3CNF(rng, 7, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Eval(hidden) {
			t.Fatalf("hidden assignment does not satisfy planted formula")
		}
		if err := f.CheckReductionForm(); err != nil {
			t.Fatalf("reduction form: %v", err)
		}
	}
	if _, _, err := PlantedSatisfiable3CNF(rng, 2, 3); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestUnsatisfiable3CNF(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		f, err := Unsatisfiable3CNF(rng, 6, 12)
		if err != nil {
			t.Fatal(err)
		}
		if bruteSat(f) {
			t.Fatalf("Unsatisfiable3CNF produced a satisfiable formula: %v", f)
		}
		if err := f.CheckReductionForm(); err != nil {
			t.Fatalf("reduction form: %v", err)
		}
	}
	if _, err := Unsatisfiable3CNF(rng, 6, 7); err == nil {
		t.Error("m=7 accepted (core needs 8)")
	}
	if _, err := Unsatisfiable3CNF(rng, 2, 8); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestPadWithFreshClauses(t *testing.T) {
	f := PaperExample()
	baseCount := bruteCount(f)
	padded, err := PadWithFreshClauses(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if padded.NumClauses() != 5 || padded.NumVars != 11 {
		t.Fatalf("padded shape m=%d n=%d", padded.NumClauses(), padded.NumVars)
	}
	// Padding multiplies the model count by 7 per clause.
	if got := bruteCount(padded); got != baseCount*49 {
		t.Errorf("padded count = %d, want %d", got, baseCount*49)
	}
	// Original untouched.
	if f.NumClauses() != 3 || f.NumVars != 5 {
		t.Error("PadWithFreshClauses mutated its input")
	}
	if _, err := PadWithFreshClauses(f, -1); err == nil {
		t.Error("negative padding accepted")
	}
}

func TestPaperExampleSatisfiable(t *testing.T) {
	f := PaperExample()
	if !bruteSat(f) {
		t.Fatal("paper example should be satisfiable")
	}
	// The example has 5 variables; count its models for later experiments.
	count := bruteCount(f)
	if count <= 0 || count >= 32 {
		t.Fatalf("model count = %d out of range", count)
	}
	t.Logf("paper example a(G) = %d", count)
}
