package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/deps"
	"relquery/internal/governor"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/reduction"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

// runE7 measures the Introduction's headline claim: for φ_G over an
// unsatisfiable G, the input R_G and the final result φ_G(R_G) = R_G both
// have 7m + 1 rows, yet any materializing evaluation grows an intermediate
// result that is exponentially larger. The workload is the 8-clause
// unsatisfiable core padded with fresh-variable clauses: every padding
// clause multiplies the space of partial (pre-constraint) combinations by
// 7 without changing input or output.
func runE7(cfg *Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	core8, err := cnf.Unsatisfiable3CNF(rng, 3, 8)
	if err != nil {
		return err
	}
	maxExtra := 4
	if cfg.Quick {
		maxExtra = 2
	}
	const budget = 2_000_000
	fmt.Fprintf(cfg.Out, "workload: 8-clause unsat core + k padding clauses; input = output = 7m+1 rows\n")
	t := newTable(cfg.Out, "m", "input_rows", "output_rows", "max_intermediate(seq)", "max_intermediate(greedy)", "blowup(greedy)", "tableau_ms")
	// The largest greedy evaluation's trace is kept for cfg.Trace: its span
	// tree pinpoints the join node where the intermediate blow-up happens.
	var lastTrace *obs.Trace
	for extra := 0; extra <= maxExtra; extra++ {
		g, err := cnf.PadWithFreshClauses(core8, extra)
		if err != nil {
			return err
		}
		g, _ = cnf.Compact(g)
		c, err := reduction.New(g)
		if err != nil {
			return err
		}
		phi, err := c.PhiG()
		if err != nil {
			return err
		}

		// Each measurement runs under its own obs.Collector and reads the
		// blow-up from the metrics snapshot; the span tree doubles as the
		// -trace artifact. (Earlier revisions read the deprecated
		// join.Stats here.)
		measure := func(order join.Order) (string, int, *obs.Trace) {
			col := &obs.Collector{}
			ev := algebra.Evaluator{Order: order, MaxIntermediate: budget, Collector: col, Limits: cfg.Limits, Registry: cfg.Registry}
			_, err := ev.Eval(phi, c.Database())
			if err != nil {
				if errors.Is(err, algebra.ErrBudgetExceeded) {
					return fmt.Sprintf(">%d", budget), budget, col.Trace()
				}
				if errors.Is(err, governor.ErrDeadline) {
					return "timeout", 0, col.Trace()
				}
				return "error", 0, col.Trace()
			}
			snap := col.Metrics.Snapshot()
			return fmt.Sprint(snap.MaxIntermediate), int(snap.MaxIntermediate), col.Trace()
		}
		seqStr, _, _ := measure(join.Sequential)
		greedyStr, greedyMax, greedyTrace := measure(join.Greedy)
		lastTrace = greedyTrace

		tb, err := tableau.New(phi)
		if err != nil {
			return err
		}
		start := time.Now()
		out, err := tb.Eval(c.Database())
		if err != nil {
			return err
		}
		tabDur := time.Since(start)
		blowup := "-"
		if greedyMax > 0 {
			blowup = fmt.Sprintf("%.1fx", float64(greedyMax)/float64(c.R.Len()))
		}
		t.row(c.M(), c.R.Len(), out.Len(), seqStr, greedyStr, blowup, tabDur.Milliseconds())
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "expected shape: input and output grow linearly in m; max intermediate grows ~7x per padding clause")
	if cfg.Trace != nil && lastTrace != nil {
		if err := lastTrace.WriteJSON(cfg.Trace); err != nil {
			return err
		}
	}
	return nil
}

// runE8 is the Yannakakis (1981) ablation: an acyclic join evaluated with
// full semijoin reduction never materializes more than O(input · output)
// tuples, while a naive left-deep plan can build a quadratic intermediate
// on the classic "hub" workload: R₁ = {(a_j, hub)}, R₂ = {(hub, b_j)},
// R₃ = one tuple matching none of the b_j. The naive plan materializes
// R₁ ∗ R₂ with N² tuples before the empty R₃ join collapses everything;
// the full reducer semijoins R₂ against R₃ first and never leaves O(N).
func runE8(cfg *Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := []int{25, 50, 100, 200}
	if cfg.Quick {
		sizes = []int{25, 50}
	}
	t := newTable(cfg.Out, "N", "input_rows", "|result|", "naive_max_intermediate", "reduced_rows_total", "naive_µs", "yannakakis_µs")
	for _, n := range sizes {
		rels := hubWorkload(n)

		var m obs.Metrics
		start := time.Now()
		naive, err := join.Multi(rels, join.Hash{Metrics: &m}, join.Sequential, nil)
		if err != nil {
			return err
		}
		naiveDur := time.Since(start)

		start = time.Now()
		smart, err := deps.AcyclicJoin(rels)
		if err != nil {
			return err
		}
		smartDur := time.Since(start)
		if !naive.Equal(smart) {
			return fmt.Errorf("N=%d: Yannakakis result disagrees with naive join", n)
		}
		reduced, err := deps.FullReduce(rels)
		if err != nil {
			return err
		}
		input, reducedTotal := 0, 0
		for i, r := range reduced {
			input += rels[i].Len()
			reducedTotal += r.Len()
		}
		t.row(n, input, naive.Len(), int(m.Snapshot().MaxIntermediate), reducedTotal,
			naiveDur.Microseconds(), smartDur.Microseconds())
	}
	if err := t.flush(); err != nil {
		return err
	}

	// Join-dependency satisfaction: the paper's co-NP-complete problem,
	// acyclic vs cyclic components.
	fmt.Fprintln(cfg.Out, "\njoin-dependency satisfaction on the paper's gadget: *[F,T1..Tm] holds in R_G ⇔ G unsatisfiable")
	t2 := newTable(cfg.Out, "formula", "m", "JD holds", "expected(unsat)", "agree")
	gSat, gUnsat, err := comboFormulas(rng)
	if err != nil {
		return err
	}
	for _, g := range []*cnf.Formula{gSat, gUnsat} {
		c, err := reduction.New(g)
		if err != nil {
			return err
		}
		jd, err := gadgetJD(c)
		if err != nil {
			return err
		}
		holds, err := jd.HoldsIn(c.R)
		if err != nil {
			return err
		}
		unsat := g == gUnsat
		t2.row(fmt.Sprintf("n=%d", g.NumVars), g.NumClauses(), yesNo(holds), yesNo(unsat), mark(holds == unsat))
	}
	return t2.flush()
}

// gadgetJD builds the join dependency ∗[F, T₁, …, T_m] over R_G's scheme.
func gadgetJD(c *reduction.Construction) (deps.JD, error) {
	comps := []relation.Scheme{c.FScheme()}
	for j := 1; j <= c.M(); j++ {
		tj, err := c.TJScheme(j)
		if err != nil {
			return deps.JD{}, err
		}
		comps = append(comps, tj)
	}
	// The F and T_j components cover every column except none — F covers
	// the F columns, each T_j covers its clause variables, Y{j,·} and S.
	// Every X column is covered because every variable occurs in a clause.
	return deps.JD{Components: comps}, nil
}

// hubWorkload builds the quadratic-intermediate trap: R₁(A B) fans N
// values into a single hub value of B, R₂(B C) fans the hub out to N
// values of C, and R₃(C D) holds one tuple joining with none of them, so
// the final result is empty while R₁ ∗ R₂ has N² tuples.
func hubWorkload(n int) []*relation.Relation {
	r1 := relation.New(relation.MustScheme("A", "B"))
	r2 := relation.New(relation.MustScheme("B", "C"))
	r3 := relation.New(relation.MustScheme("C", "D"))
	for j := 0; j < n; j++ {
		r1.MustAdd(relation.TupleOf(fmt.Sprintf("a%d", j), "hub"))
		r2.MustAdd(relation.TupleOf("hub", fmt.Sprintf("b%d", j)))
	}
	r3.MustAdd(relation.TupleOf("nomatch", "z"))
	return []*relation.Relation{r1, r2, r3}
}
