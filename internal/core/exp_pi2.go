package core

import (
	"math/rand"
	"time"

	"relquery/internal/cnf"
	"relquery/internal/qbf"
)

// randomQ3SAT draws a random Q-3SAT instance over small n, m with a
// universal set of size 1 or 2.
func randomQ3SAT(rng *rand.Rand) (*qbf.Instance, error) {
	n := 3 + rng.Intn(3)
	m := 3 + rng.Intn(3)
	g, err := cnf.Random3CNF(rng, n, m)
	if err != nil {
		return nil, err
	}
	r := 1 + rng.Intn(2)
	universal := rng.Perm(n)[:r]
	for i := range universal {
		universal[i]++
	}
	return &qbf.Instance{G: g, Universal: universal}, nil
}

// runPi2 drives E5/E6: decide random ∀∃ sentences with the exhaustive QBF
// solver and via the chosen query reduction, and compare.
func runPi2(cfg *Config, via func(*qbf.Instance) (Result, error)) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := 10
	if cfg.Quick {
		trials = 4
	}
	t := newTable(cfg.Out, "n", "m", "|X|", "∀∃ solver", "∀∃ query", "agree", "oracle_calls", "query_ms")
	for i := 0; i < trials; i++ {
		inst, err := randomQ3SAT(rng)
		if err != nil {
			return err
		}
		direct, err := qbf.Solve(inst)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := via(inst)
		if err != nil {
			return err
		}
		dur := time.Since(start)
		t.row(inst.G.NumVars, inst.G.NumClauses(), len(inst.Universal),
			yesNo(direct.Holds), yesNo(res.Answer), mark(direct.Holds == res.Answer),
			direct.OracleCalls, dur.Milliseconds())
	}
	return t.flush()
}

// runE5 reproduces Theorem 4 (two queries, fixed relation).
func runE5(cfg *Config) error {
	return runPi2(cfg, Q3SATViaQueryComparison)
}

// runE6 reproduces Theorem 5 (fixed query, two relations).
func runE6(cfg *Config) error {
	return runPi2(cfg, Q3SATViaRelationComparison)
}
