package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := &Config{Out: &buf, Seed: 99, Quick: true}
			if err := e.Run(cfg); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if strings.Contains(out, "MISMATCH") {
				t.Errorf("%s reported a mismatch:\n%s", e.ID, out)
			}
			if len(out) == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunSelection(t *testing.T) {
	var buf bytes.Buffer
	cfg := &Config{Out: &buf, Seed: 1, Quick: true}
	if err := Run([]string{"E0"}, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "=== E0") {
		t.Errorf("missing header:\n%s", buf.String())
	}
	if err := Run([]string{"E99"}, cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E4")
	if err != nil || e.ID != "E4" {
		t.Errorf("ByID(E4) = %+v, %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID(nope) succeeded")
	}
}

func TestE0MatchesPaperRowCount(t *testing.T) {
	var buf bytes.Buffer
	if err := runE0(&Config{Out: &buf, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "|R_G| = 22 rows") {
		t.Errorf("E0 output missing row count:\n%s", out)
	}
	// Spot-check the first data row and ν row of the paper's table.
	if !strings.Contains(out, "1   e   e   0   0   1   e   e   x") {
		t.Errorf("E0 output missing first table row:\n%s", out)
	}
	if !strings.Contains(out, "b") {
		t.Errorf("E0 output missing ν row:\n%s", out)
	}
}
