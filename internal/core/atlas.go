// Package core ties the library together into the paper's "complexity
// atlas": one entry point per result of Cosmadakis (1983), each deciding a
// logic problem purely through the query-side reduction — build the gadget
// relation and expression, run the generic decision procedure from
// internal/decide, and read the logical answer off the query answer. The
// direct solvers (internal/sat, internal/qbf) exist alongside so that
// every entry point can be cross-checked; the verification harness and the
// E0–E8 experiment drivers live here too.
package core

import (
	"context"
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/decide"
	"relquery/internal/qbf"
	"relquery/internal/reduction"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

// Result reports a query-side decision together with the work performed,
// so experiments can compare reduction routes against direct solvers.
type Result struct {
	// Answer is the decided predicate (its meaning depends on the entry
	// point: satisfiability, the Dᵖ conjunction, the ∀∃ sentence, ...).
	Answer bool
	// Route describes which theorem's reduction produced the answer.
	Route string
}

// normalize brings a formula into the paper's reduction form, padding to
// three clauses and compacting unused variables. It fails on formulas that
// are not 3CNF with distinct in-clause variables.
func normalize(g *cnf.Formula) (*cnf.Formula, error) {
	g2, err := cnf.EnsureMinClauses(g, 3)
	if err != nil {
		return nil, err
	}
	g3, _ := cnf.Compact(g2)
	if err := g3.CheckReductionForm(); err != nil {
		return nil, err
	}
	return g3, nil
}

// SATViaMembership decides satisfiability of g through Proposition 1 and
// Yannakakis' NP-complete membership problem: G is satisfiable iff
// u_G ∈ π_Y(φ_G(R_G)).
func SATViaMembership(g *cnf.Formula) (Result, error) {
	return SATViaMembershipContext(context.Background(), g)
}

// SATViaMembershipContext is SATViaMembership under a context: the NP
// valuation search polls the deadline/cancellation at node granularity
// and aborts with the governor sentinels.
func SATViaMembershipContext(ctx context.Context, g *cnf.Formula) (Result, error) {
	g, err := normalize(g)
	if err != nil {
		return Result{}, err
	}
	c, err := reduction.New(g)
	if err != nil {
		return Result{}, err
	}
	phi, err := c.PhiG()
	if err != nil {
		return Result{}, err
	}
	py, err := algebra.NewProject(c.YScheme(), phi)
	if err != nil {
		return Result{}, err
	}
	ok, err := decide.MemberBudget(c.UG(), py, c.Database(), decide.Budget{}.WithContext(ctx))
	if err != nil {
		return Result{}, err
	}
	return Result{Answer: ok, Route: "u_G ∈ π_Y(φ_G(R_G)) [Prop. 1, NP]"}, nil
}

// UNSATViaFixpoint decides unsatisfiability of g through the co-NP-
// complete fixpoint problem (after Maier–Sagiv–Yannakakis): G is
// unsatisfiable iff φ_G(R_G) = R_G, i.e. R_G satisfies the join
// dependency ∗[F, T₁, …, T_m].
func UNSATViaFixpoint(g *cnf.Formula) (Result, error) {
	return UNSATViaFixpointContext(context.Background(), g)
}

// UNSATViaFixpointContext is UNSATViaFixpoint under a context: the
// streaming decision honors ctx's deadline and cancellation via the
// resource governor, surfacing governor.ErrDeadline / ErrCanceled.
func UNSATViaFixpointContext(ctx context.Context, g *cnf.Formula) (Result, error) {
	g, err := normalize(g)
	if err != nil {
		return Result{}, err
	}
	c, err := reduction.New(g)
	if err != nil {
		return Result{}, err
	}
	phi, err := c.PhiG()
	if err != nil {
		return Result{}, err
	}
	cmp, err := decide.ResultEquals(phi, c.Database(), c.R, decide.Budget{}.WithContext(ctx))
	if err != nil {
		return Result{}, err
	}
	return Result{Answer: cmp.Holds, Route: "φ_G(R_G) = R_G [MSY, co-NP]"}, nil
}

// SATAndUNSATViaResultEquals decides "g satisfiable AND gPrime
// unsatisfiable" — the Dᵖ-complete 3SAT-3UNSAT problem — through
// Theorem 1: the conjunction holds iff φ_{G,G′}(R_{G,G′}) = r_{G,G′}.
func SATAndUNSATViaResultEquals(g, gPrime *cnf.Formula) (Result, error) {
	g, err := normalize(g)
	if err != nil {
		return Result{}, err
	}
	gPrime, err = normalize(gPrime)
	if err != nil {
		return Result{}, err
	}
	inst, err := reduction.Theorem1(g, gPrime)
	if err != nil {
		return Result{}, err
	}
	cmp, err := decide.ResultEquals(inst.Phi, inst.Database(), inst.Conjectured, decide.Budget{})
	if err != nil {
		return Result{}, err
	}
	return Result{Answer: cmp.Holds, Route: "φ(R) = r [Thm. 1, Dᵖ]"}, nil
}

// SATAndUNSATViaCardinality decides the same Dᵖ conjunction through
// Theorem 2's cardinality window: it holds iff
// β(β′+1)+1 ≤ |φ(R)| ≤ β(β′+1)+β′.
func SATAndUNSATViaCardinality(g, gPrime *cnf.Formula) (Result, error) {
	g, err := normalize(g)
	if err != nil {
		return Result{}, err
	}
	gPrime, err = normalize(gPrime)
	if err != nil {
		return Result{}, err
	}
	inst, err := reduction.Theorem2(g, gPrime)
	if err != nil {
		return Result{}, err
	}
	ok, err := decide.CardBetween(inst.Phi(), inst.Database(), inst.D1, inst.D2, decide.Budget{})
	if err != nil {
		return Result{}, err
	}
	return Result{Answer: ok, Route: "d₁ ≤ |φ(R)| ≤ d₂ [Thm. 2, Dᵖ]"}, nil
}

// CountModelsViaQuery counts the satisfying assignments of g through
// Theorem 3: a(G) = |φ_G(R_G)| − 7m − 1.
func CountModelsViaQuery(g *cnf.Formula) (int64, error) {
	return CountModelsViaQueryContext(context.Background(), g)
}

// CountModelsViaQueryContext is CountModelsViaQuery under a context (see
// UNSATViaFixpointContext).
func CountModelsViaQueryContext(ctx context.Context, g *cnf.Formula) (int64, error) {
	g, err := normalize(g)
	if err != nil {
		return 0, err
	}
	c, err := reduction.New(g)
	if err != nil {
		return 0, err
	}
	phi, err := c.PhiG()
	if err != nil {
		return 0, err
	}
	size, err := decide.Count(phi, c.Database(), decide.Budget{}.WithContext(ctx))
	if err != nil {
		return 0, err
	}
	return reduction.CountingIdentity(c, size), nil
}

// Q3SATViaQueryComparison decides ∀X ∃X′ G through Theorem 4: after
// Proposition 4 preprocessing, the sentence holds iff
// π_X(φ₁(R′_G)) ⊆ π_X(φ₂(R′_G)) over the single fixed relation R′_G.
func Q3SATViaQueryComparison(inst *qbf.Instance) (Result, error) {
	return Q3SATViaQueryComparisonContext(context.Background(), inst)
}

// Q3SATViaQueryComparisonContext is Q3SATViaQueryComparison under a
// context (see UNSATViaFixpointContext).
func Q3SATViaQueryComparisonContext(ctx context.Context, inst *qbf.Instance) (Result, error) {
	prepared, decided, holds, err := reduction.PrepareQ3SAT(inst)
	if err != nil {
		return Result{}, err
	}
	if decided {
		return Result{Answer: holds, Route: "Prop. 4 preprocessing (trivially false)"}, nil
	}
	th4, err := reduction.Theorem4(prepared)
	if err != nil {
		return Result{}, err
	}
	cmp, err := decide.ContainedFixedRelation(th4.Q1, th4.Q2, th4.Database(), decide.Budget{}.WithContext(ctx))
	if err != nil {
		return Result{}, err
	}
	return Result{Answer: cmp.Holds, Route: "Q₁(R′_G) ⊆ Q₂(R′_G) [Thm. 4, Π₂ᵖ]"}, nil
}

// Q3SATViaRelationComparison decides ∀X ∃X′ G through Theorem 5: the
// sentence holds iff π_X(φ_G)(R″_G) ⊆ π_X(φ_G)(R_G), one fixed query over
// two relations.
func Q3SATViaRelationComparison(inst *qbf.Instance) (Result, error) {
	prepared, decided, holds, err := reduction.PrepareQ3SAT(inst)
	if err != nil {
		return Result{}, err
	}
	if decided {
		return Result{Answer: holds, Route: "Prop. 4 preprocessing (trivially false)"}, nil
	}
	th5, err := reduction.Theorem5(prepared)
	if err != nil {
		return Result{}, err
	}
	dbDouble, dbPlain := th5.Databases()
	cmp, err := decide.ContainedFixedQuery(th5.Q, dbDouble, dbPlain, decide.Budget{})
	if err != nil {
		return Result{}, err
	}
	return Result{Answer: cmp.Holds, Route: "Q(R″_G) ⊆ Q(R_G) [Thm. 5, Π₂ᵖ]"}, nil
}

// VerifyLemma1 checks Lemma 1 on g by materializing φ_G(R_G) with the
// tableau engine and comparing against R_G ∪ R̃_G; it reports a
// descriptive error on any mismatch.
func VerifyLemma1(g *cnf.Formula) error {
	g, err := normalize(g)
	if err != nil {
		return err
	}
	c, err := reduction.New(g)
	if err != nil {
		return err
	}
	phi, err := c.PhiG()
	if err != nil {
		return err
	}
	tb, err := tableau.New(phi)
	if err != nil {
		return err
	}
	got, err := tb.Eval(c.Database())
	if err != nil {
		return err
	}
	want, err := c.ExpectedPhiResult()
	if err != nil {
		return err
	}
	if !got.Equal(want) {
		return fmt.Errorf("core: Lemma 1 violated for %v: |φ_G(R_G)| = %d, |R_G ∪ R̃_G| = %d", g, got.Len(), want.Len())
	}
	return nil
}

// VerifyProposition1 checks Proposition 1 on g: π_Y(φ_G(R_G)) equals
// π_Y(R_G), plus u_G exactly when G is satisfiable (satisfiability decided
// by the query route itself plus the SAT solver must agree; any
// disagreement is reported).
func VerifyProposition1(g *cnf.Formula, satisfiable bool) error {
	g, err := normalize(g)
	if err != nil {
		return err
	}
	c, err := reduction.New(g)
	if err != nil {
		return err
	}
	phi, err := c.PhiG()
	if err != nil {
		return err
	}
	py, err := algebra.NewProject(c.YScheme(), phi)
	if err != nil {
		return err
	}
	tb, err := tableau.New(py)
	if err != nil {
		return err
	}
	got, err := tb.Eval(c.Database())
	if err != nil {
		return err
	}
	want, err := c.R.Project(c.YScheme())
	if err != nil {
		return err
	}
	if satisfiable {
		ug := c.UG()
		aligned, err := ug.Project(want.Scheme())
		if err != nil {
			return err
		}
		if _, err := want.Add(aligned.Vals); err != nil {
			return err
		}
	}
	if !got.Equal(want) {
		return fmt.Errorf("core: Proposition 1 violated for %v (sat=%v): got %d tuples, want %d", g, satisfiable, got.Len(), want.Len())
	}
	return nil
}

// EvalGadget materializes φ_G(R_G) via the tableau engine, returning the
// construction for inspection. It is the shared workhorse of the
// experiment drivers.
func EvalGadget(g *cnf.Formula) (*reduction.Construction, *relation.Relation, error) {
	g, err := normalize(g)
	if err != nil {
		return nil, nil, err
	}
	c, err := reduction.New(g)
	if err != nil {
		return nil, nil, err
	}
	phi, err := c.PhiG()
	if err != nil {
		return nil, nil, err
	}
	tb, err := tableau.New(phi)
	if err != nil {
		return nil, nil, err
	}
	out, err := tb.Eval(c.Database())
	if err != nil {
		return nil, nil, err
	}
	return c, out, nil
}
