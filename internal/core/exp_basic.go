package core

import (
	"fmt"
	"math/rand"
	"time"

	"relquery/internal/cnf"
	"relquery/internal/decide"
	"relquery/internal/reduction"
	"relquery/internal/relation"
	"relquery/internal/sat"
)

// runE0 regenerates the paper's one displayed artifact: the relation R_G
// for G = (x1+x2+x3)(~x2+x3+~x4)(~x3+~x4+~x5), printed row-for-row in the
// paper's order, together with φ_G.
func runE0(cfg *Config) error {
	g := cnf.PaperExample()
	c, err := reduction.New(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "G = %v\n", g)
	fmt.Fprintf(cfg.Out, "|R_G| = %d rows (paper: 22), scheme %v\n\n", c.R.Len(), c.Scheme())
	fmt.Fprint(cfg.Out, relation.Render(c.R, relation.RenderOptions{}))
	phi, err := c.PhiG()
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nφ_G = %v\n", phi)
	if c.R.Len() != 22 {
		return fmt.Errorf("expected 22 rows, got %d", c.R.Len())
	}
	return nil
}

// runE1 sweeps random formulas, checking Lemma 1 and Proposition 1 and the
// join-dependency reading of unsatisfiability.
func runE1(cfg *Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := 12
	if cfg.Quick {
		trials = 4
	}
	t := newTable(cfg.Out, "n", "m", "|R_G|", "|φ_G(R_G)|", "a(G)", "sat", "lemma1", "prop1")
	for i := 0; i < trials; i++ {
		var g *cnf.Formula
		var err error
		switch i % 3 {
		case 0, 1:
			g, err = cnf.Random3CNF(rng, 4+rng.Intn(3), 3+rng.Intn(3))
		default:
			g, err = cnf.Unsatisfiable3CNF(rng, 3+rng.Intn(2), 8)
		}
		if err != nil {
			return err
		}
		g, _ = cnf.Compact(g)
		c, result, err := EvalGadget(g)
		if err != nil {
			return err
		}
		aG, err := sat.CountModels(c.G)
		if err != nil {
			return err
		}
		satisfiable := aG > 0
		lemmaOK := VerifyLemma1(c.G) == nil && reduction.CountingIdentity(c, result.Len()) == aG
		propOK := VerifyProposition1(c.G, satisfiable) == nil
		t.row(c.N(), c.M(), c.R.Len(), result.Len(), aG, yesNo(satisfiable), mark(lemmaOK), mark(propOK))
	}
	return t.flush()
}

// comboFormulas draws one formula per satisfiability outcome.
func comboFormulas(rng *rand.Rand) (gSat, gUnsat *cnf.Formula, err error) {
	gSat, _, err = cnf.PlantedSatisfiable3CNF(rng, 4, 3)
	if err != nil {
		return nil, nil, err
	}
	gSat, _ = cnf.Compact(gSat)
	gUnsat, err = cnf.Unsatisfiable3CNF(rng, 3, 8)
	if err != nil {
		return nil, nil, err
	}
	gUnsat, _ = cnf.Compact(gUnsat)
	return gSat, gUnsat, nil
}

// runE2 exercises Theorem 1 over all four (sat, unsat) combinations,
// comparing the query-side Dᵖ decision with the SAT solver.
func runE2(cfg *Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := 3
	if cfg.Quick {
		trials = 1
	}
	t := newTable(cfg.Out, "sat(G)", "sat(G')", "φ(R)=r", "expected", "agree", "query_ms", "solver_µs")
	for i := 0; i < trials; i++ {
		gSat, gUnsat, err := comboFormulas(rng)
		if err != nil {
			return err
		}
		for _, combo := range [][2]*cnf.Formula{
			{gSat, gSat}, {gSat, gUnsat}, {gUnsat, gSat}, {gUnsat, gUnsat},
		} {
			start := time.Now()
			res, err := SATAndUNSATViaResultEquals(combo[0], combo[1])
			if err != nil {
				return err
			}
			queryDur := time.Since(start)

			start = time.Now()
			s1, _, err := sat.Satisfiable(combo[0])
			if err != nil {
				return err
			}
			s2, _, err := sat.Satisfiable(combo[1])
			if err != nil {
				return err
			}
			solverDur := time.Since(start)
			expected := s1 && !s2
			t.row(yesNo(s1), yesNo(s2), yesNo(res.Answer), yesNo(expected),
				mark(res.Answer == expected), queryDur.Milliseconds(), solverDur.Microseconds())
		}
	}
	return t.flush()
}

// runE3 exercises Theorem 2's cardinality window on the same combinations,
// reporting β, β′ and the window.
func runE3(cfg *Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gSat, gUnsat, err := comboFormulas(rng)
	if err != nil {
		return err
	}
	t := newTable(cfg.Out, "sat(G)", "sat(G')", "β", "β'", "window", "|φ(R)|", "in_window", "expected", "agree")
	for _, combo := range [][2]*cnf.Formula{
		{gSat, gSat}, {gSat, gUnsat}, {gUnsat, gSat}, {gUnsat, gUnsat},
	} {
		inst, err := reduction.Theorem2(combo[0], combo[1])
		if err != nil {
			return err
		}
		size, err := decide.Count(inst.Phi(), inst.Database(), decide.Budget{})
		if err != nil {
			return err
		}
		inWindow := inst.D1 <= size && size <= inst.D2
		s1, _, err := sat.Satisfiable(combo[0])
		if err != nil {
			return err
		}
		s2, _, err := sat.Satisfiable(combo[1])
		if err != nil {
			return err
		}
		expected := s1 && !s2
		t.row(yesNo(s1), yesNo(s2), inst.Beta, inst.BetaPrime,
			fmt.Sprintf("[%d,%d]", inst.D1, inst.D2), size,
			yesNo(inWindow), yesNo(expected), mark(inWindow == expected))
	}
	if err := t.flush(); err != nil {
		return err
	}
	// Single-sided bounds (NP and co-NP halves).
	fmt.Fprintln(cfg.Out, "\nsingle-formula bounds (β = m+1): sat ⇔ β+1 ≤ |π_Y φ_G(R_G)|")
	t2 := newTable(cfg.Out, "formula", "β", "|π_Y φ(R)|", "β+1 ≤ |·|", "sat", "agree")
	for _, g := range []*cnf.Formula{gSat, gUnsat} {
		sc, err := reduction.NewSingleCardinality(g)
		if err != nil {
			return err
		}
		size, err := decide.Count(sc.Phi, sc.C.Database(), decide.Budget{})
		if err != nil {
			return err
		}
		s, _, err := sat.Satisfiable(g)
		if err != nil {
			return err
		}
		atLeast := size >= sc.Beta+1
		t2.row(fmt.Sprintf("m=%d", g.NumClauses()), sc.Beta, size, yesNo(atLeast), yesNo(s), mark(atLeast == s))
	}
	return t2.flush()
}

// runE4 cross-checks three #3SAT counters: brute force, DPLL-with-
// components, and the Theorem 3 query route.
func runE4(cfg *Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := 8
	if cfg.Quick {
		trials = 3
	}
	t := newTable(cfg.Out, "n", "m", "a(G) brute", "a(G) component", "a(G) query", "agree", "query_ms")
	for i := 0; i < trials; i++ {
		g, err := cnf.Random3CNF(rng, 4+rng.Intn(4), 3+rng.Intn(4))
		if err != nil {
			return err
		}
		g, _ = cnf.Compact(g)
		if err := g.CheckReductionForm(); err != nil {
			return err
		}
		brute, err := (sat.BruteCounter{}).Count(g)
		if err != nil {
			return err
		}
		comp, err := (sat.ComponentCounter{}).Count(g)
		if err != nil {
			return err
		}
		start := time.Now()
		query, err := CountModelsViaQuery(g)
		if err != nil {
			return err
		}
		dur := time.Since(start)
		t.row(g.NumVars, g.NumClauses(), brute, comp, query,
			mark(brute == comp && comp == query), dur.Milliseconds())
	}
	return t.flush()
}
