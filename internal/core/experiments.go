package core

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"relquery/internal/governor"
	"relquery/internal/obs"
)

// Config parameterizes an experiment run.
type Config struct {
	// Out receives the experiment's table.
	Out io.Writer
	// Seed drives every random generator, making runs reproducible.
	Seed int64
	// Quick shrinks sweeps for fast CI runs; the full sweeps are the ones
	// recorded in EXPERIMENTS.md.
	Quick bool
	// Trace, when non-nil, receives a JSON evaluation trace (obs span
	// tree + metrics) from experiments that support tracing — currently
	// E7, which traces its largest greedy-order evaluation. The CI
	// workflow uploads this as an artifact next to the benchmark numbers.
	Trace io.Writer
	// Limits bounds the materializing evaluations of governor-aware
	// experiments (currently E7) — a wall-clock deadline and row caps,
	// the CLI's -timeout / -max-rows. A killed measurement is reported
	// in the table ("timeout", ">budget") instead of failing the run.
	Limits governor.Limits
	// Registry, when non-nil, aggregates every materializing evaluation
	// of registry-aware experiments (currently E7) into process-wide
	// telemetry — latency and blow-up histograms, violation counters —
	// behind the CLI's -serve endpoints and -metrics summary.
	Registry *obs.Registry
}

// Experiment is one reproducible experiment from EXPERIMENTS.md.
type Experiment struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Title says what the experiment reproduces.
	Title string
	// Run executes the experiment, writing its table to cfg.Out.
	Run func(cfg *Config) error
}

// All returns every experiment in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E0", "Paper's worked example: R_G table and φ_G (p. 106)", runE0},
		{"E1", "Lemma 1 / Proposition 1 verification sweep", runE1},
		{"E2", "Theorem 1: φ(R) = r ⇔ SAT(G) ∧ UNSAT(G′) (Dᵖ)", runE2},
		{"E3", "Theorem 2: cardinality window ⇔ SAT ∧ UNSAT", runE3},
		{"E4", "Theorem 3: #3SAT via |φ_G(R_G)| − 7m − 1 (#P)", runE4},
		{"E5", "Theorem 4: Q-3SAT via query comparison, fixed relation (Π₂ᵖ)", runE5},
		{"E6", "Theorem 5: Q-3SAT via relation comparison, fixed query (Π₂ᵖ)", runE6},
		{"E7", "Intermediate-result blow-up (Introduction's claim)", runE7},
		{"E8", "Acyclic vs cyclic evaluation (Yannakakis 1981 ablation)", runE8},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

// Run executes the experiments with the given IDs (all of them when ids is
// empty), separated by headers.
func Run(ids []string, cfg *Config) error {
	var exps []Experiment
	if len(ids) == 0 {
		exps = All()
	} else {
		for _, id := range ids {
			e, err := ByID(id)
			if err != nil {
				return err
			}
			exps = append(exps, e)
		}
	}
	for i, e := range exps {
		if i > 0 {
			fmt.Fprintln(cfg.Out)
		}
		fmt.Fprintf(cfg.Out, "=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// table is a small helper for aligned experiment tables.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer, header ...string) *table {
	t := &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
	t.row(toAny(header)...)
	return t
}

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() error { return t.w.Flush() }

func mark(ok bool) string {
	if ok {
		return "ok"
	}
	return "MISMATCH"
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
