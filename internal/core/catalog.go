package core

// Problem describes one decision or enumeration problem whose complexity
// the paper settles, together with where its pieces live in this library.
type Problem struct {
	// Name is a short identifier, e.g. "result-verification".
	Name string
	// Statement is the problem in one sentence.
	Statement string
	// Class is the exact complexity class, e.g. "Dᵖ-complete".
	Class string
	// PaperRef cites the theorem/proposition establishing the class.
	PaperRef string
	// Procedure names the decision procedure implementing it.
	Procedure string
	// Reduction names the construction proving hardness.
	Reduction string
}

// Catalog returns the paper's complexity results in presentation order —
// the machine-readable version of DESIGN.md's results table.
func Catalog() []Problem {
	return []Problem{
		{
			Name:      "membership",
			Statement: "given R, project-join φ and tuple t, is t ∈ φ(R)?",
			Class:     "NP-complete",
			PaperRef:  "Proposition 2 + Proposition 1 (hardness after Yannakakis 1981)",
			Procedure: "decide.Member (tableau valuation search)",
			Reduction: "u_G ∈ π_Y(φ_G(R_G)) ⇔ G satisfiable",
		},
		{
			Name:      "fixpoint",
			Statement: "given R and schemes Y_i, is ∗π_{Y_i}(R) = R (a join dependency)?",
			Class:     "co-NP-complete",
			PaperRef:  "after Lemma 1 (hardness after Maier-Sagiv-Yannakakis 1981)",
			Procedure: "deps.JD.HoldsIn / decide.ResultEquals",
			Reduction: "φ_G(R_G) = R_G ⇔ G unsatisfiable",
		},
		{
			Name:      "result-verification",
			Statement: "given R, φ and conjectured r, is φ(R) = r?",
			Class:     "Dᵖ-complete",
			PaperRef:  "Theorem 1",
			Procedure: "decide.ResultEquals",
			Reduction: "reduction.Theorem1 (product gadget R_G ∗ R_{G'})",
		},
		{
			Name:      "cardinality-window",
			Statement: "given R, φ and unary d₁ ≤ d₂, is d₁ ≤ |φ(R)| ≤ d₂?",
			Class:     "Dᵖ-complete (≥ d₁ NP-complete; ≤ d₂ co-NP-complete)",
			PaperRef:  "Theorem 2",
			Procedure: "decide.CardBetween / CardAtLeast / CardAtMost",
			Reduction: "reduction.Theorem2 (β/β' window)",
		},
		{
			Name:      "result-counting",
			Statement: "given R and φ, how many tuples does φ(R) have?",
			Class:     "#P-hard (#P-complete for ∗π_{Y_i}(R))",
			PaperRef:  "Theorem 3 + Corollary",
			Procedure: "decide.Count",
			Reduction: "a(G) = |φ_G(R_G)| − 7m − 1",
		},
		{
			Name:      "query-comparison",
			Statement: "given R and φ₁, φ₂, is φ₁(R) ⊆ φ₂(R)? is φ₁(R) = φ₂(R)?",
			Class:     "Π₂ᵖ-complete",
			PaperRef:  "Theorem 4",
			Procedure: "decide.ContainedFixedRelation / EquivalentFixedRelation",
			Reduction: "reduction.Theorem4 (R'_G with falsifier rows and U column)",
		},
		{
			Name:      "relation-comparison",
			Statement: "given R₁, R₂ and φ, is φ(R₁) ⊆ φ(R₂)? is φ(R₁) = φ(R₂)?",
			Class:     "Π₂ᵖ-complete",
			PaperRef:  "Theorem 5",
			Procedure: "decide.ContainedFixedQuery / EquivalentFixedQuery",
			Reduction: "reduction.Theorem5 (R''_G vs R_G under π_X(φ_G))",
		},
	}
}
