package core

import (
	"math/rand"
	"strings"
	"testing"

	"relquery/internal/cnf"
	"relquery/internal/qbf"
	"relquery/internal/sat"
)

func testFormulas(t *testing.T, seed int64) (gSat, gUnsat *cnf.Formula) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gSat, _, err := cnf.PlantedSatisfiable3CNF(rng, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	gSat, _ = cnf.Compact(gSat)
	gUnsat, err = cnf.Unsatisfiable3CNF(rng, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	gUnsat, _ = cnf.Compact(gUnsat)
	return gSat, gUnsat
}

func TestSATViaMembership(t *testing.T) {
	gSat, gUnsat := testFormulas(t, 1)
	res, err := SATViaMembership(gSat)
	if err != nil || !res.Answer {
		t.Errorf("satisfiable formula: %+v %v", res, err)
	}
	res, err = SATViaMembership(gUnsat)
	if err != nil || res.Answer {
		t.Errorf("unsatisfiable formula: %+v %v", res, err)
	}
	if !strings.Contains(res.Route, "Prop. 1") {
		t.Errorf("route = %q", res.Route)
	}
}

func TestUNSATViaFixpoint(t *testing.T) {
	gSat, gUnsat := testFormulas(t, 2)
	res, err := UNSATViaFixpoint(gUnsat)
	if err != nil || !res.Answer {
		t.Errorf("unsat formula: %+v %v", res, err)
	}
	res, err = UNSATViaFixpoint(gSat)
	if err != nil || res.Answer {
		t.Errorf("sat formula: %+v %v", res, err)
	}
}

func TestSATAndUNSATRoutes(t *testing.T) {
	gSat, gUnsat := testFormulas(t, 3)
	combos := []struct {
		g, gp *cnf.Formula
		want  bool
	}{
		{gSat, gSat, false},
		{gSat, gUnsat, true},
		{gUnsat, gSat, false},
		{gUnsat, gUnsat, false},
	}
	for i, combo := range combos {
		res, err := SATAndUNSATViaResultEquals(combo.g, combo.gp)
		if err != nil {
			t.Fatalf("combo %d: %v", i, err)
		}
		if res.Answer != combo.want {
			t.Errorf("combo %d (Thm 1): got %v, want %v", i, res.Answer, combo.want)
		}
		res, err = SATAndUNSATViaCardinality(combo.g, combo.gp)
		if err != nil {
			t.Fatalf("combo %d: %v", i, err)
		}
		if res.Answer != combo.want {
			t.Errorf("combo %d (Thm 2): got %v, want %v", i, res.Answer, combo.want)
		}
	}
}

func TestCountModelsViaQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		g, err := cnf.Random3CNF(rng, 4+rng.Intn(3), 3+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		g, _ = cnf.Compact(g)
		want, err := sat.CountModels(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountModelsViaQuery(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("CountModelsViaQuery = %d, solver = %d for %v", got, want, g)
		}
	}
}

func TestQ3SATRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(3)
		m := 3 + rng.Intn(3)
		g, err := cnf.Random3CNF(rng, n, m)
		if err != nil {
			t.Fatal(err)
		}
		r := 1 + rng.Intn(2)
		universal := rng.Perm(n)[:r]
		for i := range universal {
			universal[i]++
		}
		inst := &qbf.Instance{G: g, Universal: universal}
		direct, err := qbf.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		via4, err := Q3SATViaQueryComparison(inst)
		if err != nil {
			t.Fatal(err)
		}
		if via4.Answer != direct.Holds {
			t.Errorf("Theorem 4 route: got %v, solver %v for %v", via4.Answer, direct.Holds, inst)
		}
		via5, err := Q3SATViaRelationComparison(inst)
		if err != nil {
			t.Fatal(err)
		}
		if via5.Answer != direct.Holds {
			t.Errorf("Theorem 5 route: got %v, solver %v for %v", via5.Answer, direct.Holds, inst)
		}
	}
}

func TestNormalizeHandlesShortAndGappyFormulas(t *testing.T) {
	// One clause, unused variable: normalize pads to 3 clauses and
	// compacts.
	g := cnf.MustNew(5, cnf.C(1, 2, 4))
	res, err := SATViaMembership(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer {
		t.Error("trivially satisfiable formula reported unsat")
	}
	// Non-3CNF is rejected.
	bad := cnf.MustNew(2, cnf.C(1, 2))
	if _, err := SATViaMembership(bad); err == nil {
		t.Error("2-literal clause accepted")
	}
}

func TestVerifiers(t *testing.T) {
	gSat, gUnsat := testFormulas(t, 6)
	for _, g := range []*cnf.Formula{gSat, gUnsat, cnf.PaperExample()} {
		if err := VerifyLemma1(g); err != nil {
			t.Errorf("VerifyLemma1(%v): %v", g, err)
		}
	}
	if err := VerifyProposition1(gSat, true); err != nil {
		t.Errorf("VerifyProposition1(sat): %v", err)
	}
	if err := VerifyProposition1(gUnsat, false); err != nil {
		t.Errorf("VerifyProposition1(unsat): %v", err)
	}
	// Wrong satisfiability claim must be detected.
	if err := VerifyProposition1(gSat, false); err == nil {
		t.Error("VerifyProposition1 accepted a wrong satisfiability claim")
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 7 {
		t.Fatalf("catalog has %d problems, want 7", len(cat))
	}
	seen := make(map[string]bool)
	for _, p := range cat {
		if p.Name == "" || p.Statement == "" || p.Class == "" || p.PaperRef == "" || p.Procedure == "" || p.Reduction == "" {
			t.Errorf("incomplete catalog entry %+v", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate problem %q", p.Name)
		}
		seen[p.Name] = true
	}
	// The headline result is present.
	if !seen["result-verification"] {
		t.Error("catalog missing result-verification")
	}
}
