package fault

import "time"

// Seeded derives a deterministic single-rule script from a seed: the
// fault lands on crossing 1 + (mix(seed) mod window) of point p. Matrix
// tests sweep seeds to move the same fault around a run without
// hand-picking crossing numbers; the same seed always produces the same
// script, keeping failures reproducible from the seed alone.
func Seeded(seed int64, p Point, window int64, act Action, delay time.Duration, fn func()) *Script {
	if window < 1 {
		window = 1
	}
	n := 1 + int64(mix(uint64(seed))%uint64(window))
	return NewScript(Rule{Point: p, N: n, Act: act, Delay: delay, Func: fn})
}

// mix is splitmix64's finalizer: a cheap, stdlib-only bijective hash
// spreading consecutive seeds across the window.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
