package fault

import (
	"sync"
	"testing"
	"time"
)

func TestHitDisabledIsNoOp(t *testing.T) {
	if Enabled() {
		t.Fatal("injector registered at test start")
	}
	Hit(JoinStart) // must not panic, sleep, or do anything observable
}

func TestSetRestore(t *testing.T) {
	s := NewScript()
	restore := Set(s)
	if !Enabled() {
		t.Fatal("Enabled() = false after Set")
	}
	Hit(JoinStart)
	if s.Count(JoinStart) != 1 {
		t.Fatalf("Count = %d, want 1", s.Count(JoinStart))
	}
	restore()
	if Enabled() {
		t.Fatal("Enabled() = true after restore")
	}
	Hit(JoinStart)
	if s.Count(JoinStart) != 1 {
		t.Fatal("Hit after restore still reached the script")
	}
}

func TestScriptPanicOnNth(t *testing.T) {
	s := NewScript(Rule{Point: WCOJSearch, N: 3, Act: Panic})
	restore := Set(s)
	defer restore()
	Hit(WCOJSearch)
	Hit(WCOJSearch)
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recover() = %v (%T), want *InjectedPanic", r, r)
		}
		if ip.Point != WCOJSearch || ip.N != 3 {
			t.Fatalf("InjectedPanic = %+v", ip)
		}
		if ip.String() == "" {
			t.Error("empty panic description")
		}
	}()
	Hit(WCOJSearch)
}

func TestScriptCallAndEvery(t *testing.T) {
	calls := 0
	s := NewScript(
		Rule{Point: Semijoin, N: 2, Act: Call, Func: func() { calls++ }},
		Rule{Point: JoinBatch, N: 3, Every: true, Act: Call, Func: func() { calls += 100 }},
	)
	restore := Set(s)
	defer restore()
	for i := 0; i < 4; i++ {
		Hit(Semijoin)
		Hit(JoinBatch)
	}
	// Semijoin fires once (crossing 2); JoinBatch fires on crossings 3
	// and 4.
	if calls != 1+200 {
		t.Fatalf("calls = %d, want 201", calls)
	}
}

func TestScriptSleep(t *testing.T) {
	s := NewScript(Rule{Point: JoinStart, N: 1, Act: Sleep, Delay: 30 * time.Millisecond})
	restore := Set(s)
	defer restore()
	start := time.Now()
	Hit(JoinStart)
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("slow-operator injection slept only %v", d)
	}
}

func TestScriptConcurrentCounters(t *testing.T) {
	s := NewScript()
	restore := Set(s)
	defer restore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				Hit(ParallelWorker)
			}
		}()
	}
	wg.Wait()
	if got := s.Count(ParallelWorker); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}

func TestSeededDeterminism(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Seeded(seed, JoinBatch, 50, Panic, 0, nil)
		b := Seeded(seed, JoinBatch, 50, Panic, 0, nil)
		if a.rules[0].N != b.rules[0].N {
			t.Fatalf("seed %d not deterministic: %d vs %d", seed, a.rules[0].N, b.rules[0].N)
		}
		if n := a.rules[0].N; n < 1 || n > 50 {
			t.Fatalf("seed %d landed outside window: %d", seed, n)
		}
	}
	// Different seeds should spread (not all land on the same crossing).
	seen := map[int64]bool{}
	for seed := int64(0); seed < 50; seed++ {
		seen[Seeded(seed, JoinBatch, 50, Panic, 0, nil).rules[0].N] = true
	}
	if len(seen) < 10 {
		t.Fatalf("50 seeds landed on only %d distinct crossings", len(seen))
	}
}

func TestPoints(t *testing.T) {
	pts := Points()
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	uniq := map[Point]bool{}
	for _, p := range pts {
		if uniq[p] {
			t.Fatalf("duplicate point %s", p)
		}
		uniq[p] = true
	}
}

// BenchmarkHitDisabled measures the cost of a compiled-in injection site
// with no injector registered — the zero-overhead claim recorded in
// BENCH_fault.txt. Expect sub-nanosecond per Hit (one atomic load).
func BenchmarkHitDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hit(JoinBatch)
	}
}

// BenchmarkHitEnabledNoMatch measures a registered script whose rules
// never match — the worst case a fault-injecting test pays on its
// non-faulting sites.
func BenchmarkHitEnabledNoMatch(b *testing.B) {
	restore := Set(NewScript(Rule{Point: JoinStart, N: 1 << 62, Act: Sleep}))
	defer restore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hit(JoinBatch)
	}
}

// TestFiringsCounted: crossings delivered to an injector increment the
// process-wide per-point firing counters; disabled crossings do not. The
// counters are global and monotonic, so the test asserts deltas.
func TestFiringsCounted(t *testing.T) {
	before := Firings()
	Hit(JoinBatch) // no injector: must not count
	restore := Set(NewScript())
	Hit(JoinBatch)
	Hit(JoinBatch)
	Hit(WCOJSearch)
	restore()
	Hit(JoinBatch) // injector gone again: must not count
	after := Firings()
	if got := after[JoinBatch] - before[JoinBatch]; got != 2 {
		t.Errorf("JoinBatch firings delta = %d, want 2", got)
	}
	if got := after[WCOJSearch] - before[WCOJSearch]; got != 1 {
		t.Errorf("WCOJSearch firings delta = %d, want 1", got)
	}
}
