// Package fault is a deterministic fault-injection harness for the query
// engine: named injection points compiled into the engines' failure-prone
// paths, and seed-keyed scripts that make the k-th crossing of a point
// sleep, panic, or cancel an evaluation's context.
//
// The package exists so every failure path the resource governor
// (internal/governor) promises to handle — cancel mid-join, panic inside
// a strategy, an operator that suddenly goes slow — is exercised by
// tests rather than hoped-for. Production code never registers an
// injector; tests register a Script, run the engine, and assert the
// typed error (or the graceful degradation) that must result.
//
// # Zero-overhead contract
//
// Mirroring internal/obs: with no injector registered, every Hit call is
// a single atomic bool load and branch — no map lookups, no locks, no
// allocation (see BenchmarkHitDisabled and BENCH_fault.txt). The
// injection sites therefore stay compiled into release binaries, where
// they cost nothing, instead of living behind build tags that would let
// the tested and the shipped code drift.
//
// Registration is process-global and test-only by design: Set installs
// an injector and returns a restore func, and tests that inject faults
// must not run in parallel with each other (they share the registry).
package fault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site compiled into the engine.
type Point string

// The engine's injection sites. Each is crossed at the granularity named
// in its comment; scripts key rules to (Point, occurrence count).
const (
	// JoinStart is crossed once per join invocation (binary or n-ary),
	// before any work.
	JoinStart Point = "join.start"
	// JoinBatch is crossed once per tuple batch inside the sequential
	// algorithms' hot loops (hash probe, nested-loop scan, sort-merge
	// emit).
	JoinBatch Point = "join.batch"
	// ParallelWorker is crossed by every parallel hash-join worker
	// goroutine as it starts a chunk or bucket.
	ParallelWorker Point = "parallel.worker"
	// WCOJSearch is crossed once per attribute-intersection pass of the
	// worst-case-optimal generic join.
	WCOJSearch Point = "wcoj.search"
	// Semijoin is crossed once per semijoin pass (Yannakakis sweeps and
	// the pairwise prefilter).
	Semijoin Point = "semijoin.pass"
	// EvalNode is crossed once per algebra operator evaluation.
	EvalNode Point = "algebra.node"
)

// Points lists every injection site, for matrix tests.
func Points() []Point {
	return []Point{JoinStart, JoinBatch, ParallelWorker, WCOJSearch, Semijoin, EvalNode}
}

// Injector reacts to the engine crossing an injection point. Fire runs
// on the engine goroutine that crossed the site: it may sleep (slow
// operator), panic (crash in strategy), or cancel a context it closes
// over (cancel mid-join). It must be safe for concurrent use — parallel
// workers cross sites concurrently.
type Injector interface {
	Fire(p Point)
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	current Injector
	// firings counts crossings delivered to an injector, per point
	// (Point -> *atomic.Int64). Process-global and monotonic, like the
	// registry itself; the telemetry exporter reads it so chaos runs show
	// where faults actually landed. Only the slow path touches it — with
	// no injector registered the counters stay frozen at zero cost.
	firings sync.Map
)

// Hit marks the engine crossing point p. With no injector registered it
// reduces to one atomic load; with one registered it forwards to the
// injector's Fire.
func Hit(p Point) {
	if !enabled.Load() {
		return
	}
	fire(p)
}

// fire is kept out of Hit so the fast path stays inlinable.
func fire(p Point) {
	mu.Lock()
	inj := current
	mu.Unlock()
	if inj != nil {
		v, _ := firings.LoadOrStore(p, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
		inj.Fire(p)
	}
}

// Firings snapshots the process-wide count of injection-point crossings
// delivered to an injector, per point. Points never crossed under an
// injector are absent. The counters are monotonic for the process
// lifetime — consumers needing a window take deltas.
func Firings() map[Point]int64 {
	out := map[Point]int64{}
	firings.Range(func(k, v any) bool {
		out[k.(Point)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Set installs inj as the process-wide injector and returns a func
// restoring the previous state. Passing nil disables injection. Tests
// must defer the restore and must not run fault-injecting tests in
// parallel.
func Set(inj Injector) (restore func()) {
	mu.Lock()
	prev := current
	current = inj
	enabled.Store(inj != nil)
	mu.Unlock()
	return func() {
		mu.Lock()
		current = prev
		enabled.Store(prev != nil)
		mu.Unlock()
	}
}

// Enabled reports whether an injector is registered (for tests that must
// skip when another harness is active).
func Enabled() bool { return enabled.Load() }

// Action is what a script rule does when it matches.
type Action int

const (
	// Sleep delays the crossing goroutine by the rule's Delay — the
	// "slow operator" fault.
	Sleep Action = iota
	// Panic panics with a *InjectedPanic — the "crash in strategy"
	// fault; the evaluator's recovery path must turn it into an error.
	Panic
	// Call invokes the rule's Func — the hook for "cancel mid-join"
	// (the func closes over a context.CancelFunc) and any custom fault.
	Call
)

// InjectedPanic is the payload of a Panic rule, so recovery paths can
// tell an injected crash from a genuine engine bug in test assertions.
// It implements error: recovery paths that wrap the panic value with %w
// keep it reachable through errors.As.
type InjectedPanic struct {
	Point Point
	N     int64
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic at %s (crossing %d)", p.Point, p.N)
}

// Error implements error.
func (p *InjectedPanic) Error() string { return p.String() }

// Rule makes the Nth crossing of Point perform Action (1-based; every
// crossing from the Nth on matches when Every is set).
type Rule struct {
	Point Point
	// N is the 1-based crossing count that triggers the rule. Zero
	// means the first crossing.
	N int64
	// Every, when true, fires on the Nth and every later crossing
	// (used for persistent slowdowns).
	Every bool
	// Act selects the fault.
	Act Action
	// Delay is the Sleep duration.
	Delay time.Duration
	// Func is the Call target.
	Func func()
}

// Script is a deterministic Injector: per-point atomic crossing counters
// matched against rules, so the same engine run under the same script
// fires the same faults regardless of goroutine interleaving within a
// point (counters are per-point and each crossing gets a unique count).
type Script struct {
	rules  []Rule
	counts sync.Map // Point -> *atomic.Int64
}

// NewScript builds a script from rules. Rules with N == 0 fire on the
// first crossing of their point.
func NewScript(rules ...Rule) *Script {
	s := &Script{rules: make([]Rule, len(rules))}
	copy(s.rules, rules)
	for i := range s.rules {
		if s.rules[i].N == 0 {
			s.rules[i].N = 1
		}
	}
	return s
}

// Count reports how many times p has been crossed under this script.
func (s *Script) Count(p Point) int64 {
	if s == nil {
		return 0
	}
	if v, ok := s.counts.Load(p); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// Fire implements Injector. A nil script injects nothing.
func (s *Script) Fire(p Point) {
	if s == nil {
		return
	}
	v, _ := s.counts.LoadOrStore(p, new(atomic.Int64))
	n := v.(*atomic.Int64).Add(1)
	for i := range s.rules {
		r := &s.rules[i]
		if r.Point != p {
			continue
		}
		if n != r.N && !(r.Every && n >= r.N) {
			continue
		}
		switch r.Act {
		case Sleep:
			time.Sleep(r.Delay)
		case Panic:
			panic(&InjectedPanic{Point: p, N: n})
		case Call:
			if r.Func != nil {
				r.Func()
			}
		}
	}
}

var _ Injector = (*Script)(nil)
