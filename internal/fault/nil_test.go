package fault

import "testing"

// TestNilScriptNoOp: a nil *Script is "no faults configured". Fire must
// swallow crossings and Count must report zero — the engine calls both
// unconditionally on whatever injector is installed.
func TestNilScriptNoOp(t *testing.T) {
	var s *Script
	for _, p := range Points() {
		s.Fire(p)
		if got := s.Count(p); got != 0 {
			t.Errorf("nil script Count(%s) = %d, want 0", p, got)
		}
	}
}
