package decide

import (
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/obs"
)

func TestMaterializeJoinTraced(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A C](pi[A B](T) * pi[B C](T))", db)
	want, err := algebra.Eval(phi, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 4} {
		got, tr, err := MaterializeJoinTraced(phi, db, algebra.EvalOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !got.Equal(want) {
			t.Fatalf("parallelism %d: traced result differs", par)
		}
		root := tr.Root()
		if root == nil || root.Op != obs.OpProject || root.OutputRows != want.Len() {
			t.Fatalf("parallelism %d: root span = %+v, want project with %d rows", par, root, want.Len())
		}
		if tr.Metrics.Joins == 0 {
			t.Fatalf("parallelism %d: no joins recorded", par)
		}
	}
}
