package decide

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"relquery/internal/algebra"
	"relquery/internal/relation"
)

func mkrel(t *testing.T, scheme string, rows ...string) *relation.Relation {
	t.Helper()
	s, err := relation.SchemeOf(scheme)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	for _, row := range rows {
		if _, err := r.Add(relation.TupleOf(strings.Fields(row)...)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func expr(t *testing.T, src string, db relation.Database) algebra.Expr {
	t.Helper()
	e, err := algebra.ParseForDatabase(src, db)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testDB(t *testing.T) relation.Database {
	t.Helper()
	return relation.Single("T", mkrel(t, "A B C",
		"1 x p",
		"2 x q",
		"2 y q",
	))
}

func TestMember(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A C](pi[A B](T) * pi[B C](T))", db)
	result, err := algebra.Eval(phi, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"1", "2"} {
		for _, c := range []string{"p", "q"} {
			nt := relation.NamedTuple{Scheme: relation.MustScheme("A", "C"), Vals: relation.TupleOf(a, c)}
			got, err := Member(nt, phi, db)
			if err != nil {
				t.Fatal(err)
			}
			if got != result.Contains(nt.Vals) {
				t.Errorf("Member(%s,%s) = %v", a, c, got)
			}
		}
	}
}

func TestResultEquals(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A B](T) * pi[B C](T)", db)
	truth, err := algebra.Eval(phi, db)
	if err != nil {
		t.Fatal(err)
	}

	// Exact conjecture.
	cmp, err := ResultEquals(phi, db, truth, Budget{})
	if err != nil || !cmp.Holds {
		t.Errorf("exact conjecture rejected: %+v %v", cmp, err)
	}
	// Conjecture missing a tuple: φ(R) ⊄ r, witness from the result side.
	smaller := truth.Clone()
	var removed relation.Tuple
	truth.Each(func(tp relation.Tuple) bool { removed = tp; return false })
	smallerTuples := relation.New(truth.Scheme())
	truth.Each(func(tp relation.Tuple) bool {
		if !tp.Equal(removed) {
			smallerTuples.MustAdd(tp)
		}
		return true
	})
	smaller = smallerTuples
	cmp, err = ResultEquals(phi, db, smaller, Budget{})
	if err != nil || cmp.Holds {
		t.Errorf("under-conjecture accepted: %+v %v", cmp, err)
	}
	if cmp.Witness == nil {
		t.Error("missing witness for under-conjecture")
	}
	// Conjecture with an extra alien tuple: r ⊄ φ(R).
	bigger := truth.Clone()
	bigger.MustAdd(relation.TupleOf("9", "9", "9"))
	cmp, err = ResultEquals(phi, db, bigger, Budget{})
	if err != nil || cmp.Holds {
		t.Errorf("over-conjecture accepted: %+v %v", cmp, err)
	}
	if cmp.Witness == nil || cmp.Witness[0] != "9" {
		t.Errorf("witness = %v, want the alien tuple", cmp.Witness)
	}
	// Scheme mismatch: immediately unequal.
	alien := mkrel(t, "A Z", "1 1")
	cmp, err = ResultEquals(phi, db, alien, Budget{})
	if err != nil || cmp.Holds {
		t.Errorf("scheme mismatch accepted: %+v %v", cmp, err)
	}
}

func TestResultEqualsColumnOrderInsensitive(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A B](T)", db)
	// Conjecture written with columns swapped.
	r := mkrel(t, "B A", "x 1", "x 2", "y 2")
	cmp, err := ResultEquals(phi, db, r, Budget{})
	if err != nil || !cmp.Holds {
		t.Errorf("reordered conjecture rejected: %+v %v", cmp, err)
	}
}

func TestCardinalityProcedures(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A B](T) * pi[B C](T)", db)
	truth, err := algebra.Eval(phi, db)
	if err != nil {
		t.Fatal(err)
	}
	n := truth.Len()

	count, err := Count(phi, db, Budget{})
	if err != nil || count != n {
		t.Errorf("Count = %d, %v; want %d", count, err, n)
	}
	for d := 0; d <= n+2; d++ {
		atLeast, err := CardAtLeast(phi, db, d, Budget{})
		if err != nil || atLeast != (d <= n) {
			t.Errorf("CardAtLeast(%d) = %v, %v", d, atLeast, err)
		}
		atMost, err := CardAtMost(phi, db, d, Budget{})
		if err != nil || atMost != (n <= d) {
			t.Errorf("CardAtMost(%d) = %v, %v", d, atMost, err)
		}
	}
	between, err := CardBetween(phi, db, n, n, Budget{})
	if err != nil || !between {
		t.Errorf("CardBetween(n,n) = %v, %v", between, err)
	}
	between, err = CardBetween(phi, db, n+1, n+5, Budget{})
	if err != nil || between {
		t.Errorf("CardBetween(n+1,n+5) = %v, %v", between, err)
	}
	if _, err := CardBetween(phi, db, 3, 2, Budget{}); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := CardAtMost(phi, db, -1, Budget{}); err == nil {
		t.Error("negative bound accepted")
	}
	// Materialized count agrees.
	mat, err := CountMaterialized(phi, db)
	if err != nil || mat != n {
		t.Errorf("CountMaterialized = %d, %v", mat, err)
	}
}

func TestBudgetExceeded(t *testing.T) {
	// A cross-product query with plenty of result tuples and a tiny budget.
	db := relation.NewDatabase()
	db.Put("L", mkrel(t, "A", "1", "2", "3", "4", "5"))
	db.Put("R", mkrel(t, "B", "1", "2", "3", "4", "5"))
	phi := expr(t, "L * R", db)
	_, err := Count(phi, db, Budget{MaxTuples: 5})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	empty := relation.New(relation.MustScheme("A", "B"))
	_, err = ResultSubset(phi, db, empty, Budget{MaxTuples: 3})
	if err == nil {
		// A witness may be found before the budget trips — the first
		// streamed tuple is already outside the empty conjecture, so this
		// must NOT be a budget error; it must be a clean "false".
		cmp, err2 := ResultSubset(phi, db, empty, Budget{MaxTuples: 3})
		if err2 != nil || cmp.Holds {
			t.Errorf("ResultSubset = %+v, %v", cmp, err2)
		}
	}
}

func TestContainedFixedRelation(t *testing.T) {
	db := testDB(t)
	small := expr(t, "pi[A B C](T)", db)
	big := expr(t, "pi[A B](T) * pi[B C](T)", db)
	cmp, err := ContainedFixedRelation(small, big, db, Budget{})
	if err != nil || !cmp.Holds {
		t.Errorf("T ⊆ relaxation failed: %+v %v", cmp, err)
	}
	cmp, err = ContainedFixedRelation(big, small, db, Budget{})
	if err != nil || cmp.Holds {
		t.Errorf("relaxation ⊆ T unexpectedly holds: %+v %v", cmp, err)
	}
	if cmp.Witness == nil {
		t.Error("missing witness")
	}
	eq, err := EquivalentFixedRelation(small, big, db, Budget{})
	if err != nil || eq.Holds {
		t.Errorf("equivalence unexpectedly holds: %+v %v", eq, err)
	}
	// Same expression: trivially equivalent.
	eq, err = EquivalentFixedRelation(big, big, db, Budget{})
	if err != nil || !eq.Holds {
		t.Errorf("self-equivalence failed: %+v %v", eq, err)
	}
}

func TestContainedDifferentSchemes(t *testing.T) {
	db := testDB(t)
	a := expr(t, "pi[A](T)", db)
	b := expr(t, "pi[B](T)", db)
	cmp, err := ContainedFixedRelation(a, b, db, Budget{})
	if err != nil || cmp.Holds {
		t.Errorf("different-scheme containment holds: %+v %v", cmp, err)
	}
	// Empty left side is contained in anything.
	dbEmpty := relation.Single("T", relation.New(relation.MustScheme("A", "B", "C")))
	cmp, err = ContainedFixedRelation(expr(t, "pi[A](T)", dbEmpty), expr(t, "pi[B](T)", dbEmpty), dbEmpty, Budget{})
	if err != nil || !cmp.Holds {
		t.Errorf("empty ⊆ anything failed: %+v %v", cmp, err)
	}
}

func TestContainedFixedQuery(t *testing.T) {
	phiSchemes := relation.Single("T", mkrel(t, "A B", "1 x"))
	phi := expr(t, "pi[A](T)", phiSchemes)
	db1 := relation.Single("T", mkrel(t, "A B", "1 x"))
	db2 := relation.Single("T", mkrel(t, "A B", "1 x", "2 y"))
	cmp, err := ContainedFixedQuery(phi, db1, db2, Budget{})
	if err != nil || !cmp.Holds {
		t.Errorf("monotone containment failed: %+v %v", cmp, err)
	}
	cmp, err = ContainedFixedQuery(phi, db2, db1, Budget{})
	if err != nil || cmp.Holds {
		t.Errorf("reverse containment holds: %+v %v", cmp, err)
	}
	eq, err := EquivalentFixedQuery(phi, db1, db1, Budget{})
	if err != nil || !eq.Holds {
		t.Errorf("self-equivalence failed: %+v %v", eq, err)
	}
}

func TestQuickProceduresMatchMaterialization(t *testing.T) {
	exprs := []string{
		"pi[A B](T) * pi[B C](T)",
		"pi[A](pi[A B](T) * pi[B C](T))",
		"pi[A C](T) * pi[B C](T)",
	}
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		scheme := relation.MustScheme("A", "B", "C")
		r := relation.New(scheme)
		alphabet := []string{"0", "1", "e"}
		for i, n := 0, rng.Intn(10); i < n; i++ {
			tp := make(relation.Tuple, 3)
			for j := range tp {
				tp[j] = relation.Value(alphabet[rng.Intn(3)])
			}
			r.MustAdd(tp)
		}
		db := relation.Single("T", r)
		e, err := algebra.Parse(exprs[int(pick)%len(exprs)], map[string]relation.Scheme{"T": scheme})
		if err != nil {
			return false
		}
		truth, err := algebra.Eval(e, db)
		if err != nil {
			return false
		}
		// Count agrees.
		n, err := Count(e, db, Budget{})
		if err != nil || n != truth.Len() {
			return false
		}
		// ResultEquals(truth) holds; with a mutated conjecture it fails.
		cmp, err := ResultEquals(e, db, truth, Budget{})
		if err != nil || !cmp.Holds {
			return false
		}
		mutated := truth.Clone()
		mutated.MustAdd(relation.TupleOf(make([]string, truth.Scheme().Len())...))
		cmp, err = ResultEquals(e, db, mutated, Budget{})
		if err != nil || cmp.Holds {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCompareGeneralForm(t *testing.T) {
	// The general two-query/two-database comparison that Theorems 4 and 5
	// specialize.
	db1 := relation.Single("T", mkrel(t, "A B", "1 x"))
	db2 := relation.Single("T", mkrel(t, "A B", "1 x", "2 y"))
	phi := expr(t, "pi[A](T)", db1)
	contained, equal, err := Compare(phi, db1, phi, db2, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !contained.Holds {
		t.Error("subset database not contained")
	}
	if equal.Holds {
		t.Error("unequal results reported equal")
	}
	if equal.Witness == nil {
		t.Error("missing witness for inequality")
	}
	// Equal case.
	contained, equal, err = Compare(phi, db2, phi, db2, Budget{})
	if err != nil || !contained.Holds || !equal.Holds {
		t.Errorf("self comparison: %+v %+v %v", contained, equal, err)
	}
	// Not contained: short-circuits with equal = contained.
	contained, equal, err = Compare(phi, db2, phi, db1, Budget{})
	if err != nil || contained.Holds || equal.Holds {
		t.Errorf("superset comparison: %+v %+v %v", contained, equal, err)
	}
}

func TestContainedBudget(t *testing.T) {
	db := relation.NewDatabase()
	db.Put("L", mkrel(t, "A", "1", "2", "3", "4", "5"))
	db.Put("R", mkrel(t, "B", "1", "2", "3", "4", "5"))
	big := expr(t, "L * R", db)
	_, err := ContainedFixedRelation(big, big, db, Budget{MaxTuples: 3})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestEquivalentFixedQueryAsymmetric(t *testing.T) {
	phi := expr(t, "pi[A](T)", relation.Single("T", mkrel(t, "A B", "1 x")))
	db1 := relation.Single("T", mkrel(t, "A B", "1 x"))
	db2 := relation.Single("T", mkrel(t, "A B", "1 x", "2 y"))
	// db1 ⊆ db2 so first containment passes, second fails — exercises the
	// second leg of EquivalentFixedQuery.
	eq, err := EquivalentFixedQuery(phi, db1, db2, Budget{})
	if err != nil || eq.Holds {
		t.Errorf("asymmetric equivalence: %+v %v", eq, err)
	}
}

func TestMemberPropagatesErrors(t *testing.T) {
	phi := expr(t, "pi[A](T)", relation.Single("T", mkrel(t, "A B", "1 x")))
	nt := relation.NamedTuple{Scheme: relation.MustScheme("A"), Vals: relation.TupleOf("1")}
	if _, err := Member(nt, phi, relation.NewDatabase()); err == nil {
		t.Error("missing operand accepted")
	}
}

func TestResultSubsetSchemeMismatch(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A](T)", db)
	other := mkrel(t, "Z", "1")
	cmp, err := ResultSubset(phi, db, other, Budget{})
	if err != nil || cmp.Holds {
		t.Errorf("mismatched schemes: %+v %v", cmp, err)
	}
}
