package decide

import (
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

// The cardinality procedures implement Theorem 2's problems. They stream
// tableau valuations and deduplicate on the fly, so space is bounded by
// the number of DISTINCT tuples seen (at most d+1 for the bounded
// variants), never by intermediate join sizes.

// CardAtLeast decides d ≤ |φ(db)| — NP-complete (guess d distinct tuples;
// here: enumerate until d distinct tuples have been seen).
func CardAtLeast(phi algebra.Expr, db relation.Database, d int, b Budget) (bool, error) {
	if d <= 0 {
		return true, nil
	}
	distinct, exhausted, err := streamDistinct(phi, db, d, b)
	if err != nil {
		return false, err
	}
	if distinct >= d {
		return true, nil
	}
	// streamDistinct stops early only on reaching d distinct tuples
	// (handled above) or on the budget (an error); fewer than d distinct
	// without exhausting the valuation tree would be a definitive "no"
	// the search cannot justify.
	if !exhausted {
		return false, fmt.Errorf("decide: internal error: bounded search stopped with %d < %d distinct tuples", distinct, d)
	}
	return false, nil
}

// CardAtMost decides |φ(db)| ≤ d — co-NP-complete (refute by finding d+1
// distinct tuples).
func CardAtMost(phi algebra.Expr, db relation.Database, d int, b Budget) (bool, error) {
	if d < 0 {
		return false, fmt.Errorf("decide: negative cardinality bound %d", d)
	}
	distinct, _, err := streamDistinct(phi, db, d+1, b)
	if err != nil {
		return false, err
	}
	return distinct <= d, nil
}

// CardBetween decides d1 ≤ |φ(db)| ≤ d2 — Dᵖ-complete (Theorem 2), the
// conjunction of an NP and a co-NP question.
func CardBetween(phi algebra.Expr, db relation.Database, d1, d2 int, b Budget) (bool, error) {
	if d1 > d2 {
		return false, fmt.Errorf("decide: empty window [%d, %d]", d1, d2)
	}
	atLeast, err := CardAtLeast(phi, db, d1, b)
	if err != nil || !atLeast {
		return false, err
	}
	return CardAtMost(phi, db, d2, b)
}

// Count computes |φ(db)| exactly — the #P-hard enumeration problem of
// Theorem 3 — by streaming all valuations and deduplicating.
func Count(phi algebra.Expr, db relation.Database, b Budget) (int, error) {
	distinct, exhausted, err := streamDistinct(phi, db, 0, b)
	if err != nil {
		return 0, err
	}
	if !exhausted {
		return 0, fmt.Errorf("decide: internal error: unbounded count stopped early")
	}
	return distinct, nil
}

// streamDistinct streams φ(db) counting distinct tuples, stopping once
// `stopAt` distinct tuples have been seen (0 = never stop early).
// exhausted reports whether the full valuation tree was explored.
func streamDistinct(phi algebra.Expr, db relation.Database, stopAt int, b Budget) (distinct int, exhausted bool, err error) {
	tb, err := tableau.New(phi)
	if err != nil {
		return 0, false, err
	}
	seen := make(map[string]struct{})
	bc := budgetCounter{limit: b.MaxTuples, gov: b.Gov}
	budgetHit := false
	stopped := false
	err = tb.StreamGov(db, b.Gov, func(tp relation.Tuple) bool {
		if !bc.tick() {
			budgetHit = true
			return false
		}
		key := tp.Key()
		if _, ok := seen[key]; !ok {
			seen[key] = struct{}{}
			if stopAt > 0 && len(seen) >= stopAt {
				stopped = true
				return false
			}
		}
		return true
	})
	if err != nil {
		return 0, false, err
	}
	if bc.err != nil {
		return 0, false, bc.err
	}
	if budgetHit {
		return 0, false, fmt.Errorf("%w: visited %d tuples counting |φ(R)|", ErrBudget, bc.visited)
	}
	return len(seen), !stopped, nil
}

// CountMaterialized computes |φ(db)| by materializing with the algebra
// evaluator — the naive comparison point for the benchmarks. It uses the
// evaluator's default sequential join strategy; CountMaterializedWith
// exposes the parallel engine.
func CountMaterialized(phi algebra.Expr, db relation.Database) (int, error) {
	return CountMaterializedWith(phi, db, algebra.EvalOptions{})
}

var _ = relation.Tuple(nil) // keep relation import for doc references
