package decide

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestBudgetBoundary pins the budget contract of the cardinality
// procedures: Budget{MaxTuples: k} answers definitively whenever k
// visited tuples suffice to decide, and otherwise returns a wrapped
// ErrBudget — never a definitive answer the truncated search cannot
// justify. Each case self-calibrates the deciding visit (the smallest
// sufficient budget) and then checks the three boundary budgets: exactly
// at, one below, one above.
func TestBudgetBoundary(t *testing.T) {
	db := testDB(t)
	// π_AC(π_AB(T) ∗ π_BC(T)) streams 5 valuation tuples, 4 distinct —
	// duplicates included, so early-deciding and exhaustion-requiring
	// cases have different deciding visits.
	phi := expr(t, "pi[A C](pi[A B](T) * pi[B C](T))", db)

	cases := []struct {
		name string
		run  func(b Budget) (any, error)
		want any
	}{
		{"CardAtLeast early yes", func(b Budget) (any, error) { return CardAtLeast(phi, db, 3, b) }, true},
		{"CardAtLeast exhaustive no", func(b Budget) (any, error) { return CardAtLeast(phi, db, 5, b) }, false},
		{"CardAtMost early no", func(b Budget) (any, error) { return CardAtMost(phi, db, 3, b) }, false},
		{"CardAtMost exhaustive yes", func(b Budget) (any, error) { return CardAtMost(phi, db, 4, b) }, true},
		{"CardBetween", func(b Budget) (any, error) { return CardBetween(phi, db, 2, 4, b) }, true},
		{"Count", func(b Budget) (any, error) { return Count(phi, db, b) }, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.run(Budget{})
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("unlimited budget: got %v, want %v", got, tc.want)
			}

			// Calibrate: the deciding visit is the smallest budget that
			// answers definitively. Every smaller budget must refuse
			// with ErrBudget (never decide, and in particular never
			// decide wrongly).
			deciding := -1
			for k := 1; k <= 64; k++ {
				g, err := tc.run(Budget{MaxTuples: k})
				if err == nil {
					if g != tc.want {
						t.Fatalf("MaxTuples=%d: definitive %v, want %v", k, g, tc.want)
					}
					deciding = k
					break
				}
				if !errors.Is(err, ErrBudget) {
					t.Fatalf("MaxTuples=%d: unexpected error %v", k, err)
				}
			}
			if deciding < 0 {
				t.Fatal("no budget up to 64 sufficed")
			}

			// One below: wrapped ErrBudget, no definitive answer.
			if deciding > 1 {
				if _, err := tc.run(Budget{MaxTuples: deciding - 1}); !errors.Is(err, ErrBudget) {
					t.Errorf("MaxTuples=%d (one below deciding): err = %v, want ErrBudget", deciding-1, err)
				}
			}
			// One above: still definitive with the same answer.
			g, err := tc.run(Budget{MaxTuples: deciding + 1})
			if err != nil {
				t.Errorf("MaxTuples=%d (one above deciding): %v", deciding+1, err)
			} else if g != tc.want {
				t.Errorf("MaxTuples=%d: got %v, want %v", deciding+1, g, tc.want)
			}
		})
	}
}

// TestBudgetErrorCountsOnlyExaminedTuples locks the tick ordering fix:
// the budget gate runs before the counter moves, so the error reports
// exactly the admitted visits — not the refused tuple.
func TestBudgetErrorCountsOnlyExaminedTuples(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A C](pi[A B](T) * pi[B C](T))", db)
	const k = 2
	_, err := Count(phi, db, Budget{MaxTuples: k})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("Count under budget %d: err = %v, want ErrBudget", k, err)
	}
	if want := fmt.Sprintf("visited %d tuples", k); !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not report %q", err, want)
	}
}

// TestStreamDistinctDecidesOnFinalVisit builds the sharpest boundary:
// the query's deciding tuple is its LAST valuation visit, so the
// sufficient budget equals the total stream length and one less must
// refuse.
func TestStreamDistinctDecidesOnFinalVisit(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A C](pi[A B](T) * pi[B C](T))", db)
	// Total visits = 5 (calibrated by Count's deciding budget, which
	// needs full exhaustion).
	total := -1
	for k := 1; k <= 64; k++ {
		if _, err := Count(phi, db, Budget{MaxTuples: k}); err == nil {
			total = k
			break
		}
	}
	if total < 0 {
		t.Fatal("count never decided")
	}
	// |φ(db)| = 4, so CardAtLeast(4) must visit until the 4th distinct
	// tuple appears — provably within the stream — and succeed with
	// exactly that many visits allowed.
	ok, err := CardAtLeast(phi, db, 4, Budget{MaxTuples: total})
	if err != nil || !ok {
		t.Fatalf("CardAtLeast(4) under budget %d: %v, %v", total, ok, err)
	}
}
