package decide

import (
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

// Enumerate streams the distinct tuples of φ(db) in first-discovery order,
// calling yield for each until yield returns false or the result is
// exhausted. Space grows with the number of distinct tuples seen (for
// deduplication), never with intermediate join sizes.
//
// This is the library's "lazy result" primitive: the Dᵖ and Π₂ᵖ deciders
// are built from exactly this shape of traversal, and callers can use it
// to peek at the first few tuples of a query whose full materialization
// would explode.
func Enumerate(phi algebra.Expr, db relation.Database, b Budget, yield func(relation.Tuple) bool) error {
	tb, err := tableau.New(phi)
	if err != nil {
		return err
	}
	seen := make(map[string]struct{})
	bc := budgetCounter{limit: b.MaxTuples, gov: b.Gov}
	budgetHit := false
	err = tb.StreamGov(db, b.Gov, func(tp relation.Tuple) bool {
		if !bc.tick() {
			budgetHit = true
			return false
		}
		key := tp.Key()
		if _, dup := seen[key]; dup {
			return true
		}
		seen[key] = struct{}{}
		return yield(tp.Clone())
	})
	if err != nil {
		return err
	}
	if bc.err != nil {
		return bc.err
	}
	if budgetHit {
		return errBudget("enumerating φ(R)", bc.visited)
	}
	return nil
}

// First returns up to n distinct tuples of φ(db), in discovery order, as a
// relation over the expression's target scheme.
func First(phi algebra.Expr, db relation.Database, n int, b Budget) (*relation.Relation, error) {
	if n < 0 {
		return nil, fmt.Errorf("decide: negative tuple count %d", n)
	}
	out := relation.New(phi.Scheme())
	var addErr error
	err := Enumerate(phi, db, b, func(tp relation.Tuple) bool {
		if out.Len() >= n {
			return false
		}
		if _, err := out.Add(tp); err != nil {
			addErr = err
			return false
		}
		return out.Len() < n
	})
	if err != nil {
		return nil, err
	}
	if addErr != nil {
		return nil, addErr
	}
	return out, nil
}

// Materialize computes φ(db) in full through the streaming engine —
// equivalent to tableau.Eval, exposed here so that decide's callers have
// one import for all result-space operations.
func Materialize(phi algebra.Expr, db relation.Database, b Budget) (*relation.Relation, error) {
	out := relation.New(phi.Scheme())
	var addErr error
	err := Enumerate(phi, db, b, func(tp relation.Tuple) bool {
		if _, err := out.Add(tp); err != nil {
			addErr = err
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if addErr != nil {
		return nil, addErr
	}
	return out, nil
}
