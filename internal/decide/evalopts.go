package decide

import (
	"relquery/internal/algebra"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// The materializing entry points below are the decide layer's bridge to
// the algebra engine. Unlike the streaming procedures in this package
// (whose space stays polynomial), these compute φ(db) by actually
// joining, so they inherit the paper's exponential intermediate blow-up
// — but they are the routes that benefit from algebra.EvalOptions:
// parallel partitioned joins, parallel subtree fan-out and subexpression
// caching.

// MaterializeJoin computes φ(db) with the materializing algebra engine
// configured by opts. The zero EvalOptions reproduces the sequential
// engine exactly; opts.Parallelism > 1 runs the partitioned parallel
// engine, which produces an identical relation (set semantics make the
// result order-independent).
func MaterializeJoin(phi algebra.Expr, db relation.Database, opts algebra.EvalOptions) (*relation.Relation, error) {
	return opts.NewEvaluator().Eval(phi, db)
}

// MaterializeJoinTraced is MaterializeJoin under a fresh obs.Collector:
// it returns the result together with the evaluation's trace (span tree
// plus metrics). The trace is returned even when evaluation fails — a
// budget abort's partial spans show which join node blew up. Any
// Collector already set in opts is superseded for this call.
func MaterializeJoinTraced(phi algebra.Expr, db relation.Database, opts algebra.EvalOptions) (*relation.Relation, *obs.Trace, error) {
	col := &obs.Collector{}
	opts.Collector = col
	r, err := opts.NewEvaluator().Eval(phi, db)
	return r, col.Trace(), err
}

// CountMaterializedWith computes |φ(db)| by materializing with the
// algebra engine configured by opts.
func CountMaterializedWith(phi algebra.Expr, db relation.Database, opts algebra.EvalOptions) (int, error) {
	r, err := MaterializeJoin(phi, db, opts)
	if err != nil {
		return 0, err
	}
	return r.Len(), nil
}
