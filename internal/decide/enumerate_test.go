package decide

import (
	"errors"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/relation"
)

func TestEnumerateDistinctAndOrder(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A](pi[A B](T) * pi[B C](T))", db)
	var got []string
	err := Enumerate(phi, db, Budget{}, func(tp relation.Tuple) bool {
		got = append(got, string(tp[0]))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("enumerated %v, want 2 distinct values", got)
	}
	seen := map[string]bool{}
	for _, v := range got {
		if seen[v] {
			t.Errorf("duplicate %q yielded", v)
		}
		seen[v] = true
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A B](T) * pi[B C](T)", db)
	count := 0
	err := Enumerate(phi, db, Budget{}, func(relation.Tuple) bool {
		count++
		return false
	})
	if err != nil || count != 1 {
		t.Errorf("count = %d, err = %v", count, err)
	}
}

func TestEnumerateBudget(t *testing.T) {
	db := relation.NewDatabase()
	db.Put("L", mkrel(t, "A", "1", "2", "3", "4"))
	db.Put("R", mkrel(t, "B", "1", "2", "3", "4"))
	phi := expr(t, "L * R", db)
	err := Enumerate(phi, db, Budget{MaxTuples: 3}, func(relation.Tuple) bool { return true })
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestFirst(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A B](T) * pi[B C](T)", db)
	full, err := algebra.Eval(phi, db)
	if err != nil {
		t.Fatal(err)
	}
	few, err := First(phi, db, 2, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if few.Len() != 2 {
		t.Fatalf("First(2) returned %d tuples", few.Len())
	}
	sub, err := few.SubsetOf(full)
	if err != nil || !sub {
		t.Errorf("First tuples not in the result: %v %v", sub, err)
	}
	// Asking for more than exist returns everything.
	all, err := First(phi, db, 100, Budget{})
	if err != nil || !all.Equal(full) {
		t.Errorf("First(100) = %v tuples, want %d", all.Len(), full.Len())
	}
	if _, err := First(phi, db, -1, Budget{}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestMaterializeMatchesEval(t *testing.T) {
	db := testDB(t)
	phi := expr(t, "pi[A C](pi[A B](T) * pi[B C](T))", db)
	want, err := algebra.Eval(phi, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Materialize(phi, db, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("Materialize = %v, want %v", got.Sorted(), want.Sorted())
	}
}
