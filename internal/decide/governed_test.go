package decide

import (
	"context"
	"errors"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/governor"
	"relquery/internal/reduction"
)

// pigeonholeGadget builds the Lemma 1 gadget for a pigeonhole formula:
// the membership and fixpoint searches over it are resolution-hard, so
// they are guaranteed to outlast the governor's 256-tick poll batch —
// the workload that exposed ungoverned valuation searches (a satreduce
// -timeout run that never fired).
func pigeonholeGadget(t *testing.T) (*reduction.Construction, error) {
	t.Helper()
	g, err := cnf.Pigeonhole(3)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := cnf.To3CNF(g)
	if err != nil {
		t.Fatal(err)
	}
	g3, _ = cnf.Compact(g3)
	return reduction.New(g3)
}

// TestMemberBudgetCanceledMidSearch covers the NP half: the u_G
// membership search (SAT via Proposition 1) under a dead context must
// abort with the typed sentinel instead of exhausting the exponential
// valuation tree.
func TestMemberBudgetCanceledMidSearch(t *testing.T) {
	c, err := pigeonholeGadget(t)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	py, err := algebra.NewProject(c.YScheme(), phi)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// u_G ∈ π_Y(φ_G(R_G)) is Proposition 1's SAT question; pigeonhole is
	// unsatisfiable, so an ungoverned search would refute it only after
	// exhausting the valuation tree.
	if _, err := MemberBudget(c.UG(), py, c.Database(), Budget{}.WithContext(ctx)); !errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("want governor.ErrCanceled from the membership search, got %v", err)
	}
}

// TestResultEqualsGovernedDeadline covers the fixpoint route (UNSAT via
// φ_G(R_G) = R_G): ConjecturedSubset's per-tuple membership searches
// run under the budget's governor, so an expired deadline kills the
// decision with governor.ErrDeadline — previously this half was
// entirely ungoverned and a hard instance hung forever.
func TestResultEqualsGovernedDeadline(t *testing.T) {
	c, err := pigeonholeGadget(t)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	<-ctx.Done()
	if _, err := ResultEquals(phi, c.Database(), c.R, Budget{}.WithContext(ctx)); !errors.Is(err, governor.ErrDeadline) {
		t.Fatalf("want governor.ErrDeadline from the fixpoint decision, got %v", err)
	}
}

// TestGovernedSearchesMatchUngoverned verifies the governed paths are
// pure plumbing: under a live background context every decision agrees
// with its ungoverned counterpart on the paper example's gadget.
func TestGovernedSearchesMatchUngoverned(t *testing.T) {
	g, err := cnf.Parse("(x1 + x2 + x3)(~x2 + x3 + ~x4)(~x3 + ~x4 + ~x5)")
	if err != nil {
		t.Fatal(err)
	}
	c, err := reduction.New(g)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	b := Budget{}.WithContext(context.Background())
	want, err := ResultEquals(phi, c.Database(), c.R, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ResultEquals(phi, c.Database(), c.R, b)
	if err != nil {
		t.Fatal(err)
	}
	if want.Holds != got.Holds {
		t.Fatalf("governed ResultEquals says %v, ungoverned says %v", got.Holds, want.Holds)
	}
}
