// Package decide implements the decision procedures whose complexity the
// paper characterizes, as exhaustive search over tableau valuations:
//
//	Member                  t ∈ φ(R)            NP       (Proposition 2)
//	ResultEquals            φ(R) = r            Dᵖ       (Theorem 1)
//	CardAtLeast/AtMost/...  d₁ ≤ |φ(R)| ≤ d₂    Dᵖ       (Theorem 2)
//	Count                   |φ(R)|              #P-hard  (Theorem 3)
//	ContainedFixedRelation  φ₁(R) ⊆ φ₂(R)       Π₂ᵖ      (Theorem 4)
//	ContainedFixedQuery     φ(R₁) ⊆ φ(R₂)       Π₂ᵖ      (Theorem 5)
//
// Each procedure mirrors the membership proof in the paper: an NP "guess"
// becomes a backtracking search for a valuation (tableau.Member), a co-NP
// refutation becomes a streaming search for a witness tuple, and a Π₂ᵖ
// test becomes a ∀-loop over one query's output with an NP-oracle call per
// tuple. Everything streams: no procedure ever materializes an
// intermediate join, so space stays polynomial while time may be
// exponential — the honest trade the paper's results allow.
package decide

import (
	"context"
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/governor"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

// Budget caps the work of a decision procedure. The zero Budget is
// unlimited.
type Budget struct {
	// MaxTuples, when positive, bounds how many (not necessarily
	// distinct) result tuples a streaming search may visit before giving
	// up with ErrBudget.
	MaxTuples int
	// Gov, when non-nil, is ticked on every visited tuple, so streaming
	// searches honor the resource governor's deadline and cancellation
	// (surfacing governor.ErrDeadline / governor.ErrCanceled) just like
	// the materializing engines. Row and memory budgets do not apply
	// here — streaming never materializes intermediates — so only the
	// clock and the context are consulted.
	Gov *governor.Governor
}

// WithContext returns the budget with a governor for ctx attached
// (replacing any present), so callers can bound a streaming decision by
// a deadline in one call: decide.Budget{...}.WithContext(ctx).
func (b Budget) WithContext(ctx context.Context) Budget {
	b.Gov = governor.New(ctx, governor.Limits{})
	return b
}

// ErrBudget is returned (wrapped) when a procedure exceeds its budget.
var ErrBudget = fmt.Errorf("decide: search budget exceeded")

type budgetCounter struct {
	limit   int
	visited int
	gov     *governor.Governor
	err     error // governor violation that stopped the search, if any
}

// tick admits one more visited tuple, refusing once the limit is
// reached or the governor reports a violation (latched in err). The gate
// runs before the counter moves, so a refused tuple is never counted:
// visited reports exactly how many tuples were examined, and a search
// that decides on its k-th visit succeeds under Budget{MaxTuples: k}.
func (b *budgetCounter) tick() bool {
	if err := b.gov.Tick(); err != nil {
		b.err = err
		return false
	}
	if b.limit > 0 && b.visited >= b.limit {
		return false
	}
	b.visited++
	return true
}

// Member reports whether the named tuple belongs to φ(db) — the paper's
// Proposition 2, in NP via tableau valuation guessing.
func Member(nt relation.NamedTuple, phi algebra.Expr, db relation.Database) (bool, error) {
	return MemberBudget(nt, phi, db, Budget{})
}

// MemberBudget is Member under a Budget's governor: the valuation
// search honors the deadline and cancellation at node granularity, so a
// hard instance aborts with governor.ErrDeadline/ErrCanceled instead of
// searching to exhaustion.
func MemberBudget(nt relation.NamedTuple, phi algebra.Expr, db relation.Database, b Budget) (bool, error) {
	tb, err := tableau.New(phi)
	if err != nil {
		return false, err
	}
	return tb.MemberGov(nt, db, b.Gov)
}

// Comparison is the outcome of a relation-valued comparison, carrying a
// witness when the comparison fails.
type Comparison struct {
	// Holds reports whether the tested relationship holds.
	Holds bool
	// Witness, when Holds is false, is a tuple demonstrating the failure
	// (e.g. a tuple of φ(R) missing from r). Nil when Holds.
	Witness relation.Tuple
	// WitnessScheme names the witness's columns.
	WitnessScheme relation.Scheme
}

// ResultEquals decides φ(db) = r — the paper's Theorem 1 problem. It
// decomposes exactly as the Dᵖ membership proof does:
//
//	(NP part)    r ⊆ φ(db): for every tuple of r, search a valuation;
//	(co-NP part) φ(db) ⊆ r: stream φ(db)'s tuples hunting for one
//	             outside r, succeeding when the search exhausts.
func ResultEquals(phi algebra.Expr, db relation.Database, r *relation.Relation, b Budget) (Comparison, error) {
	if !r.Scheme().Equal(phi.Scheme()) {
		// Schemes differ: never equal; any tuple of either side witnesses.
		return Comparison{Holds: false}, nil
	}
	sub, err := ConjecturedSubset(r, phi, db, b)
	if err != nil {
		return Comparison{}, err
	}
	if !sub.Holds {
		return sub, nil
	}
	return ResultSubset(phi, db, r, b)
}

// ConjecturedSubset decides r ⊆ φ(db) (the NP half of Theorem 1; this is
// also Yannakakis' membership problem iterated over r's tuples). Each
// membership search runs under the budget's governor — without that,
// one hard tuple's exponential valuation search could never be
// interrupted.
func ConjecturedSubset(r *relation.Relation, phi algebra.Expr, db relation.Database, b Budget) (Comparison, error) {
	tb, err := tableau.New(phi)
	if err != nil {
		return Comparison{}, err
	}
	out := Comparison{Holds: true}
	var loopErr error
	r.Each(func(tp relation.Tuple) bool {
		nt := relation.NamedTuple{Scheme: r.Scheme(), Vals: tp}
		ok, err := tb.MemberGov(nt, db, b.Gov)
		if err != nil {
			loopErr = err
			return false
		}
		if !ok {
			out = Comparison{Holds: false, Witness: tp, WitnessScheme: r.Scheme()}
			return false
		}
		return true
	})
	if loopErr != nil {
		return Comparison{}, loopErr
	}
	return out, nil
}

// ResultSubset decides φ(db) ⊆ r (the co-NP half of Theorem 1): it
// streams result tuples until one falls outside r.
func ResultSubset(phi algebra.Expr, db relation.Database, r *relation.Relation, b Budget) (Comparison, error) {
	if !r.Scheme().Equal(phi.Scheme()) {
		return Comparison{Holds: false}, nil
	}
	tb, err := tableau.New(phi)
	if err != nil {
		return Comparison{}, err
	}
	aligned, err := alignToTarget(r, phi.Scheme())
	if err != nil {
		return Comparison{}, err
	}
	bc := budgetCounter{limit: b.MaxTuples, gov: b.Gov}
	out := Comparison{Holds: true}
	budgetHit := false
	err = tb.StreamGov(db, b.Gov, func(tp relation.Tuple) bool {
		if !bc.tick() {
			budgetHit = true
			return false
		}
		if !aligned.Contains(tp) {
			out = Comparison{Holds: false, Witness: tp.Clone(), WitnessScheme: phi.Scheme()}
			return false
		}
		return true
	})
	if err != nil {
		return Comparison{}, err
	}
	if bc.err != nil {
		return Comparison{}, bc.err
	}
	if budgetHit {
		return Comparison{}, fmt.Errorf("%w: visited %d tuples deciding φ(R) ⊆ r", ErrBudget, bc.visited)
	}
	return out, nil
}

// alignToTarget rewrites r's tuples into the column order of target
// (set-equal schemes).
func alignToTarget(r *relation.Relation, target relation.Scheme) (*relation.Relation, error) {
	if r.Scheme().SameOrder(target) {
		return r, nil
	}
	return r.Project(target)
}

// errBudget builds a wrapped budget error.
func errBudget(doing string, visited int) error {
	return fmt.Errorf("%w: visited %d tuples %s", ErrBudget, visited, doing)
}
