package decide

import (
	"relquery/internal/algebra"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

// The comparison procedures implement Theorems 4 and 5: containment and
// equivalence with respect to a FIXED database. They realize the Π₂ᵖ
// membership proof (Proposition 3): enumerate the left side's tuples (the
// ∀ player, deduplicated on the fly) and, for each, ask the simulated NP
// oracle whether the right side produces it.

// ContainedFixedRelation decides φ₁(db) ⊆ φ₂(db) — Theorem 4's problem.
// The expressions' target schemes must be set-equal for containment to
// hold (a scheme mismatch yields false with no witness).
func ContainedFixedRelation(phi1, phi2 algebra.Expr, db relation.Database, b Budget) (Comparison, error) {
	return containedIn(phi1, db, phi2, db, b)
}

// EquivalentFixedRelation decides φ₁(db) = φ₂(db) — Theorem 4's
// equivalence form.
func EquivalentFixedRelation(phi1, phi2 algebra.Expr, db relation.Database, b Budget) (Comparison, error) {
	le, err := containedIn(phi1, db, phi2, db, b)
	if err != nil || !le.Holds {
		return le, err
	}
	return containedIn(phi2, db, phi1, db, b)
}

// ContainedFixedQuery decides φ(db1) ⊆ φ(db2) — Theorem 5's problem.
func ContainedFixedQuery(phi algebra.Expr, db1, db2 relation.Database, b Budget) (Comparison, error) {
	return containedIn(phi, db1, phi, db2, b)
}

// EquivalentFixedQuery decides φ(db1) = φ(db2) — Theorem 5's equivalence
// form.
func EquivalentFixedQuery(phi algebra.Expr, db1, db2 relation.Database, b Budget) (Comparison, error) {
	le, err := containedIn(phi, db1, phi, db2, b)
	if err != nil || !le.Holds {
		return le, err
	}
	return containedIn(phi, db2, phi, db1, b)
}

// Compare decides φ₁(db1) ⊆ φ₂(db2) and φ₁(db1) = φ₂(db2) in full
// generality (the paper phrases Theorems 4 and 5 as the two specializations
// Q₁ = Q₂ or db1 = db2 of this problem).
func Compare(phi1 algebra.Expr, db1 relation.Database, phi2 algebra.Expr, db2 relation.Database, b Budget) (contained, equal Comparison, err error) {
	contained, err = containedIn(phi1, db1, phi2, db2, b)
	if err != nil {
		return Comparison{}, Comparison{}, err
	}
	if !contained.Holds {
		return contained, contained, nil
	}
	equal, err = containedIn(phi2, db2, phi1, db1, b)
	if err != nil {
		return Comparison{}, Comparison{}, err
	}
	return contained, equal, nil
}

// containedIn decides φ₁(db1) ⊆ φ₂(db2) by streaming the left side and
// membership-testing each distinct tuple on the right.
func containedIn(phi1 algebra.Expr, db1 relation.Database, phi2 algebra.Expr, db2 relation.Database, b Budget) (Comparison, error) {
	s1, s2 := phi1.Scheme(), phi2.Scheme()
	if !s1.Equal(s2) {
		// Different attribute sets: containment can only hold when the
		// left side is empty.
		empty, err := isEmpty(phi1, db1, b)
		if err != nil {
			return Comparison{}, err
		}
		return Comparison{Holds: empty}, nil
	}
	t1, err := tableau.New(phi1)
	if err != nil {
		return Comparison{}, err
	}
	t2, err := tableau.New(phi2)
	if err != nil {
		return Comparison{}, err
	}
	bc := budgetCounter{limit: b.MaxTuples, gov: b.Gov}
	seen := make(map[string]struct{})
	out := Comparison{Holds: true}
	var innerErr error
	budgetHit := false
	err = t1.StreamGov(db1, b.Gov, func(tp relation.Tuple) bool {
		if !bc.tick() {
			budgetHit = true
			return false
		}
		key := tp.Key()
		if _, ok := seen[key]; ok {
			return true
		}
		seen[key] = struct{}{}
		nt := relation.NamedTuple{Scheme: s1, Vals: tp}
		ok, err := t2.MemberGov(nt, db2, b.Gov)
		if err != nil {
			innerErr = err
			return false
		}
		if !ok {
			out = Comparison{Holds: false, Witness: tp.Clone(), WitnessScheme: s1}
			return false
		}
		return true
	})
	if err != nil {
		return Comparison{}, err
	}
	if innerErr != nil {
		return Comparison{}, innerErr
	}
	if bc.err != nil {
		return Comparison{}, bc.err
	}
	if budgetHit {
		return Comparison{}, errBudget("deciding containment", bc.visited)
	}
	return out, nil
}

// isEmpty reports whether φ(db) has no tuples.
func isEmpty(phi algebra.Expr, db relation.Database, b Budget) (bool, error) {
	tb, err := tableau.New(phi)
	if err != nil {
		return false, err
	}
	empty := true
	err = tb.StreamGov(db, b.Gov, func(relation.Tuple) bool {
		empty = false
		return false
	})
	if err != nil {
		return false, err
	}
	return empty, nil
}
