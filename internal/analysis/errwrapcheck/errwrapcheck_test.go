package errwrapcheck_test

import (
	"testing"

	"relquery/internal/analysis/errwrapcheck"
	"relquery/internal/analysis/framework"
)

func TestErrWrapCheck(t *testing.T) {
	framework.RunFixtures(t, "testdata", errwrapcheck.Analyzer, "a", "govsent")
}
