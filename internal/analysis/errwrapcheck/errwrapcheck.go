// Package errwrapcheck flags error-handling that breaks wrapped error
// chains: == / != / switch comparisons against sentinel errors, and
// fmt.Errorf formatting an error value without %w.
//
// Invariant guarded: the decision procedures return their budget
// sentinel wrapped — decide.ErrBudget always arrives inside an
// fmt.Errorf("%w: visited %d tuples ...") chain, and
// algebra.ErrBudgetExceeded likewise — so callers that compare with ==
// never match and silently misclassify a truncated search as a hard
// error. That is precisely the bug class PR 4 fixed by hand in
// internal/decide; this pass makes the fix permanent. Dually, building
// an error with fmt.Errorf("...%v", err) instead of %w severs the chain
// for every caller downstream.
package errwrapcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"relquery/internal/analysis/framework"
)

// Analyzer is the errwrapcheck pass.
var Analyzer = &framework.Analyzer{
	Name: "errwrapcheck",
	Doc: "flags ==/!=/switch comparisons against sentinel errors (use " +
		"errors.Is) and fmt.Errorf calls that format an error without %w",
	Run: run,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface)
}

// sentinelName returns the rendered name of e when it denotes a
// package-level error variable named Err* — the sentinel convention —
// and "" otherwise.
func sentinelName(pass *framework.Pass, e ast.Expr) string {
	var id *ast.Ident
	prefix := ""
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		if x, ok := v.X.(*ast.Ident); ok {
			prefix = x.Name + "."
		}
		id = v.Sel
	default:
		return ""
	}
	obj, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || obj.IsField() || obj.Pkg() == nil {
		return ""
	}
	if obj.Parent() != obj.Pkg().Scope() || !strings.HasPrefix(obj.Name(), "Err") {
		return ""
	}
	if !isErrorType(obj.Type()) {
		return ""
	}
	return prefix + id.Name
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, v)
			case *ast.SwitchStmt:
				checkSwitch(pass, v)
			case *ast.CallExpr:
				checkErrorf(pass, v)
			}
			return true
		})
	}
	return nil
}

func checkComparison(pass *framework.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		sentinel, other := pair[0], pair[1]
		name := sentinelName(pass, sentinel)
		if name == "" || !isErrorType(pass.Info.TypeOf(other)) {
			continue
		}
		pass.Reportf(be.Pos(),
			"%s compared with %s: sentinel errors arrive wrapped — use errors.Is", name, be.Op)
		return
	}
}

func checkSwitch(pass *framework.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(pass.Info.TypeOf(sw.Tag)) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name := sentinelName(pass, e); name != "" {
				pass.Reportf(e.Pos(),
					"switch case compares %s with ==: sentinel errors arrive wrapped — use errors.Is", name)
			}
		}
	}
}

// checkErrorf flags fmt.Errorf calls whose error-typed arguments exceed
// the %w verbs in the format string: those errors are flattened to text
// and lost to errors.Is/errors.As.
func checkErrorf(pass *framework.Pass, call *ast.CallExpr) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || se.Sel.Name != "Errorf" {
		return
	}
	pkgID, ok := se.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Info.Uses[pkgID].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	wrapped := countWrapVerbs(constant.StringVal(tv.Value))
	errArgs := 0
	for _, arg := range call.Args[1:] {
		if isErrorType(pass.Info.TypeOf(arg)) {
			errArgs++
		}
	}
	if errArgs > wrapped {
		pass.Reportf(call.Pos(),
			"fmt.Errorf formats an error value without %%w: the wrapped chain is lost to errors.Is/errors.As")
	}
}

// countWrapVerbs counts %w verbs in a fmt format string, skipping %%.
func countWrapVerbs(format string) int {
	count := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision and argument indexes up to the
		// verb character.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] == 'w' {
			count++
		}
	}
	return count
}
