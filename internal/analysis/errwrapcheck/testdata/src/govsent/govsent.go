// Fixture for errwrapcheck against the real governor sentinels: every
// violation arrives wrapped in a *governor.Violation (and often a
// further fmt.Errorf layer), so == / != / switch comparisons against
// ErrDeadline, ErrRowBudget, ErrMemBudget, ErrCanceled or ErrAdmission
// never match — they must be errors.Is, and rewrapping must use %w.
package govsent

import (
	"errors"
	"fmt"

	"relquery/internal/governor"
)

func misclassify(err error) string {
	if err == governor.ErrDeadline { // want `governor\.ErrDeadline compared with ==`
		return "deadline"
	}
	if governor.ErrRowBudget != err { // want `governor\.ErrRowBudget compared with !=`
		return "not-rows"
	}
	switch err {
	case governor.ErrMemBudget: // want `switch case compares governor\.ErrMemBudget with ==`
		return "memory"
	case governor.ErrAdmission: // want `switch case compares governor\.ErrAdmission with ==`
		return "admission"
	}
	return "unknown"
}

func severChain(err error) error {
	return fmt.Errorf("query killed: %v", err) // want `fmt\.Errorf formats an error value without %w`
}

// classify is the sanctioned pattern: errors.Is sees through the
// Violation wrapper, and %w keeps the chain intact for callers.
func classify(err error) (string, error) {
	switch {
	case errors.Is(err, governor.ErrDeadline):
		return "deadline", fmt.Errorf("query killed: %w", err)
	case errors.Is(err, governor.ErrCanceled):
		return "canceled", fmt.Errorf("query killed: %w", err)
	case errors.Is(err, governor.ErrRowBudget), errors.Is(err, governor.ErrMemBudget):
		return "budget", fmt.Errorf("query killed: %w", err)
	case errors.Is(err, governor.ErrAdmission):
		return "rejected", fmt.Errorf("not started: %w", err)
	}
	return "", err
}

// inspect shows that reading the violation payload is fine — only the
// sentinel comparisons and chain-severing rewraps are flagged.
func inspect(err error) bool {
	var v *governor.Violation
	if errors.As(err, &v) {
		return governor.Violated(err) && governor.TraceOf(err) != nil
	}
	return false
}
