// Fixture for errwrapcheck: sentinel comparisons and fmt.Errorf wrapping.
package a

import (
	"errors"
	"fmt"
)

var ErrBudget = errors.New("budget exceeded")

var notSentinel = errors.New("unnamed convention")

func compare(err error) bool {
	if err == ErrBudget { // want `ErrBudget compared with ==`
		return true
	}
	if ErrBudget != err { // want `ErrBudget compared with !=`
		return false
	}
	if err == notSentinel { // only Err*-named package vars are sentinels
		return true
	}
	return errors.Is(err, ErrBudget)
}

func classify(err error) int {
	switch err {
	case ErrBudget: // want `switch case compares ErrBudget with ==`
		return 1
	case nil:
		return 0
	default:
		return 2
	}
}

func wrap(err error) error {
	return fmt.Errorf("evaluating: %v", err) // want `fmt\.Errorf formats an error value without %w`
}

func wrapOK(err error) error {
	return fmt.Errorf("evaluating: %w", err)
}

func wrapLiteralPercent(err error) error {
	return fmt.Errorf("100%% done: %w", err)
}

func noErrorArgs(n int) error {
	return fmt.Errorf("bad count %d", n)
}
