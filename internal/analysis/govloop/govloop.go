// Package govloop checks that tuple loops in the evaluation engine stay
// under governance. The resource governor's contract (DESIGN.md,
// "Resource governance") is that every loop whose trip count scales
// with relation cardinality polls the governor — Tick amortizes the
// poll to one atomic load per CheckEvery iterations — so cancellation
// latency and budget overshoot stay bounded by one batch. A
// cardinality-scaled loop with no reachable governor call reintroduces
// exactly the unbounded work the governor exists to bound, and no test
// catches it until a production query hangs past its deadline.
//
// The analyzer flags for/range loops over tuple collections (slices of
// relation.Tuple, and Relation.Each callbacks, whose bodies are loop
// bodies in all but syntax) inside the engine packages when the
// enclosing function has a governor in scope but the loop body cannot
// reach a governor method: directly, through same-package helpers, or
// by delegating the governor itself into a callee. Loops that are
// genuinely cardinality-bounded can be annotated
// `//lint:ungoverned <reason>` — the reason is required, so the waiver
// documents itself.
package govloop

import (
	"go/ast"
	"go/types"

	"relquery/internal/analysis/framework"
)

// enginePkgs are the package names govloop polices: the packages whose
// loops run once per tuple of user-controlled relations.
var enginePkgs = map[string]bool{
	"join":    true,
	"algebra": true,
	"decide":  true,
	"tableau": true,
}

// governorMethods are the *governor.Governor methods that count as a
// governance poll or charge.
var governorMethods = map[string]bool{
	"Tick":        true,
	"Check":       true,
	"CheckRows":   true,
	"CheckOutput": true,
	"ChargeBytes": true,
	"Admit":       true,
	"Fail":        true,
}

var Analyzer = &framework.Analyzer{
	Name: "govloop",
	Doc:  "tuple loops in engine packages must reach a governor Tick/Check or carry a //lint:ungoverned reason",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !enginePkgs[pass.Pkg.Name()] {
		return nil
	}
	reach := framework.NewReachability(pass, isGovernorMethod)
	for _, file := range pass.Files {
		dirs := framework.Directives(pass.Fset, file)
		c := &checker{pass: pass, reach: reach, dirs: dirs}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

// isGovernorMethod reports whether fn is a governance method on the
// governor type (matched by package and type name, so fixtures
// modeling the real package exercise the same logic).
func isGovernorMethod(fn *types.Func) bool {
	if !governorMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return framework.IsNamed(sig.Recv().Type(), "governor", "Governor")
}

func isGovernorPtr(t types.Type) bool {
	return t != nil && framework.IsNamed(t, "governor", "Governor")
}

type checker struct {
	pass  *framework.Pass
	reach *framework.Reachability
	dirs  map[int]framework.Directive
}

// checkFunc flags ungoverned tuple loops in one declared function. The
// check only applies when a governor is in scope — as a parameter, the
// receiver, or any expression mentioned in the body (an evaluator's
// Gov field, a local) — because without one there is nothing the loop
// could tick.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	if !c.governorInScope(fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if c.isTupleRange(x) {
				c.checkLoop(x, x.Body, "range over tuples")
			}
		case *ast.CallExpr:
			if body := eachCallbackBody(c.pass, x); body != nil {
				c.checkLoop(x, body, "Relation.Each callback")
			}
		}
		return true
	})
}

// governorInScope reports whether fd has a *governor.Governor reachable
// by name: in its signature (receiver included) or as any typed
// expression in its body.
func (c *checker) governorInScope(fd *ast.FuncDecl) bool {
	obj, ok := c.pass.Info.Defs[fd.Name].(*types.Func)
	if ok {
		sig := obj.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil && isGovernorPtr(recv.Type()) {
			return true
		}
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			if isGovernorPtr(params.At(i).Type()) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if isGovernorPtr(c.pass.Info.TypeOf(expr)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isTupleRange reports whether the range statement iterates a slice of
// relation.Tuple — the shape whose trip count is a relation cardinality.
// Ranging over one Tuple's attributes is width-bounded and exempt.
func (c *checker) isTupleRange(rng *ast.RangeStmt) bool {
	t := c.pass.Info.TypeOf(rng.X)
	if t == nil {
		return false
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return framework.IsNamed(slice.Elem(), "relation", "Tuple")
}

// eachCallbackBody returns the function-literal body of a
// Relation.Each(func(t Tuple) bool) call, or nil when call is not one.
func eachCallbackBody(pass *framework.Pass, call *ast.CallExpr) *ast.BlockStmt {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Each" || len(call.Args) != 1 {
		return nil
	}
	if !framework.IsNamed(pass.Info.TypeOf(sel.X), "relation", "Relation") {
		return nil
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit)
	if !ok {
		return nil
	}
	return lit.Body
}

// checkLoop reports loop (at node pos) unless its body reaches a
// governor method, hands the governor to a callee, or carries a
// reasoned //lint:ungoverned directive.
func (c *checker) checkLoop(at ast.Node, body *ast.BlockStmt, what string) {
	if d, ok := framework.DirectiveFor(c.pass.Fset, c.dirs, at, "ungoverned"); ok {
		if d.Reason == "" {
			c.pass.Reportf(at.Pos(), "//lint:ungoverned needs a reason: say why this %s is cardinality-bounded", what)
		}
		return
	}
	if c.reach.Reaches(body) || delegatesGovernor(c.pass, body) {
		return
	}
	c.pass.Reportf(at.Pos(), "%s has no reachable governor Tick/Check: tick per tuple, pass the governor down, or annotate //lint:ungoverned <reason>", what)
}

// delegatesGovernor reports whether any call or composite literal under
// n hands a *governor.Governor to other code — the engine's idiom for
// "the callee governs on our behalf" (sub-evaluators take Gov fields,
// helpers take governor parameters).
func delegatesGovernor(pass *framework.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch y := x.(type) {
		case *ast.CallExpr:
			for _, arg := range y.Args {
				if isGovernorPtr(pass.Info.TypeOf(arg)) {
					found = true
					return false
				}
			}
		case *ast.KeyValueExpr:
			if isGovernorPtr(pass.Info.TypeOf(y.Value)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
