package govloop_test

import (
	"testing"

	"relquery/internal/analysis/framework"
	"relquery/internal/analysis/govloop"
)

func TestGovloop(t *testing.T) {
	framework.RunFixtures(t, "testdata", govloop.Analyzer, "join")
}

// TestGovloopClean is the negative fixture: a fully governed engine
// package produces no findings (RunFixtures fails on any unexpected
// diagnostic).
func TestGovloopClean(t *testing.T) {
	framework.RunFixtures(t, "testdata", govloop.Analyzer, "algebra")
}
