// Fixture for govloop: tuple loops in an engine-named package, with and
// without reachable governance.
package join

import (
	"relquery/internal/governor"
	"relquery/internal/relation"
)

func Ungoverned(g *governor.Governor, rows []relation.Tuple) int {
	n := 0
	for range rows { // want `range over tuples has no reachable governor Tick/Check`
		n++
	}
	return n
}

func Ticked(g *governor.Governor, rows []relation.Tuple) error {
	for range rows {
		if err := g.Tick(); err != nil {
			return err
		}
	}
	return nil
}

func viaHelper(g *governor.Governor) error { return g.Check() }

// Transitive reaches Check through a same-package helper.
func Transitive(g *governor.Governor, rows []relation.Tuple) error {
	for range rows {
		if err := viaHelper(g); err != nil {
			return err
		}
	}
	return nil
}

// Delegated hands the governor to opaque code; the callee governs.
func Delegated(g *governor.Governor, rows []relation.Tuple, sink func(*governor.Governor) error) error {
	for range rows {
		if err := sink(g); err != nil {
			return err
		}
	}
	return nil
}

// NoGovernor has nothing to tick: exempt.
func NoGovernor(rows []relation.Tuple) int {
	n := 0
	for range rows {
		n++
	}
	return n
}

type hashJoin struct {
	Gov *governor.Governor
}

// FieldGovernor: the governor arrives via a struct field, so it is in
// scope even without a parameter.
func (h *hashJoin) emit(rows []relation.Tuple) {
	for _, t := range rows { // want `range over tuples has no reachable governor Tick/Check`
		_ = t
		_ = h.Gov
	}
}

func EachUngoverned(g *governor.Governor, r *relation.Relation) int {
	n := 0
	r.Each(func(t relation.Tuple) bool { // want `Relation\.Each callback has no reachable governor Tick/Check`
		n++
		return true
	})
	return n
}

func EachTicked(g *governor.Governor, r *relation.Relation) error {
	var err error
	r.Each(func(t relation.Tuple) bool {
		err = g.Tick()
		return err == nil
	})
	return err
}

// Waived documents why the loop is cardinality-bounded.
func Waived(g *governor.Governor, rows []relation.Tuple) {
	//lint:ungoverned fixture rows are bounded by construction
	for range rows {
	}
}

// WaivedNoReason forgets the why: the waiver itself is the finding.
func WaivedNoReason(g *governor.Governor, rows []relation.Tuple) {
	//lint:ungoverned
	for range rows { // want `//lint:ungoverned needs a reason`
	}
}

// AttrLoop ranges one tuple's attributes: width-bounded, exempt.
func AttrLoop(g *governor.Governor, t relation.Tuple) int {
	n := 0
	for range t {
		n++
	}
	return n
}
