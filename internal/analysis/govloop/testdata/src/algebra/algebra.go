// Negative fixture for govloop: an engine package whose every tuple
// loop is governed. No findings expected.
package algebra

import (
	"relquery/internal/governor"
	"relquery/internal/relation"
)

func Materialize(g *governor.Governor, rows []relation.Tuple) ([]relation.Tuple, error) {
	out := make([]relation.Tuple, 0, len(rows))
	for _, t := range rows {
		if err := g.Tick(); err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

func Copy(g *governor.Governor, r *relation.Relation) ([]relation.Tuple, error) {
	var out []relation.Tuple
	var err error
	r.Each(func(t relation.Tuple) bool {
		if err = g.Tick(); err != nil {
			return false
		}
		out = append(out, t)
		return true
	})
	return out, err
}
