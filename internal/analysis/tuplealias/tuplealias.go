// Package tuplealias flags writes into relation.Tuple values (and row
// slices) that a function received across a package boundary.
//
// Invariant guarded: a Tuple handed out by package relation — via
// Relation.Tuple, Tuples, Each callbacks, or any exported signature — is
// shared, not owned. The subexpression cache returns the *same* relation
// to every consumer, and the parallel evaluator fans the same relation
// out to concurrent workers; one in-place write through an aliased tuple
// silently corrupts every other reader (and, because Relation's dedup
// index hashes tuple contents, the owning relation's set semantics too).
// That breaks the Lemma 1 parity tests in the worst way: results change
// only under caching or parallelism. Mutating code must Clone first.
package tuplealias

import (
	"go/ast"
	"go/types"

	"relquery/internal/analysis/framework"
)

// Analyzer is the tuplealias pass.
var Analyzer = &framework.Analyzer{
	Name: "tuplealias",
	Doc: "flags writes into relation.Tuple values or row slices received " +
		"across a package boundary; shared tuples are immutable — Clone before mutating",
	Run: run,
}

// Ownership classes, in increasing order of concern. Classification is
// flow-sensitive in syntactic order: a re-assignment like t = t.Clone()
// downgrades t to owned for the statements after it.
const (
	unknown = iota
	owned
	// foreignCall: obtained from another package's function or read from
	// shared storage (struct field, package variable). The tuples inside
	// are shared; the slice header may be a defensive copy, so only
	// element-level writes are flagged.
	foreignCall
	// foreignParam: received as a parameter — both the tuples and the
	// slice itself belong to the caller.
	foreignParam
)

func run(pass *framework.Pass) error {
	if pass.Pkg.Name() == "relation" {
		// The defining package manages tuple ownership itself (its
		// constructors are exactly where fresh tuples come from).
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				check(pass, fd)
			}
		}
	}
	return nil
}

// isTuple reports whether t is relation.Tuple (behind aliases/pointers).
func isTuple(t types.Type) bool {
	return framework.IsNamed(t, "relation", "Tuple")
}

// isRowSlice reports whether t is a []relation.Tuple.
func isRowSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isTuple(s.Elem())
}

func tracked(t types.Type) bool {
	return t != nil && (isTuple(t) || isRowSlice(t))
}

type checker struct {
	pass  *framework.Pass
	class map[*types.Var]int
}

// check walks one function (closures included) in syntactic order,
// updating ownership on assignments and reporting violations as they
// appear.
func check(pass *framework.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, class: make(map[*types.Var]int)}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			// Only exported functions receive values across the package
			// boundary; an unexported builder initialising a tuple its
			// same-package caller just allocated is legitimate.
			if v.Name.IsExported() {
				c.seedParams(v.Type)
			}
		case *ast.FuncLit:
			// Closure parameters are foreign too: relation.Each hands its
			// callback borrowed tuples.
			c.seedParams(v.Type)
		case *ast.AssignStmt:
			c.assign(v)
		case *ast.RangeStmt:
			c.rangeStmt(v)
		case *ast.ValueSpec:
			c.valueSpec(v)
		case *ast.CallExpr:
			c.call(v)
		}
		return true
	})
}

func (c *checker) seedParams(ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj, ok := c.pass.Info.Defs[name].(*types.Var); ok && tracked(obj.Type()) {
				c.class[obj] = foreignParam
			}
		}
	}
}

func (c *checker) setClass(id *ast.Ident, cls int) {
	obj, ok := c.pass.Info.Defs[id].(*types.Var)
	if !ok {
		obj, ok = c.pass.Info.Uses[id].(*types.Var)
	}
	if ok && tracked(obj.Type()) {
		c.class[obj] = cls
	}
}

// assign reports violations on the left-hand sides, then updates
// ownership classes from the right-hand sides.
func (c *checker) assign(st *ast.AssignStmt) {
	for _, lhs := range st.Lhs {
		c.checkWrite(lhs)
	}
	// Retention: storing a foreign tuple into longer-lived storage
	// (struct field or package-level variable) keeps the alias alive
	// after the call returns.
	for i, lhs := range st.Lhs {
		if i < len(st.Rhs) {
			c.checkRetention(lhs, st.Rhs[i])
		}
	}
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		cls := c.classOf(st.Rhs[0])
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				c.setClass(id, cls)
			}
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		if id, ok := lhs.(*ast.Ident); ok {
			c.setClass(id, c.classOf(st.Rhs[i]))
		}
	}
}

func (c *checker) rangeStmt(st *ast.RangeStmt) {
	if st.Value == nil {
		return
	}
	if id, ok := st.Value.(*ast.Ident); ok {
		if cls := c.classOf(st.X); cls >= foreignCall {
			c.setClass(id, cls)
		}
	}
}

func (c *checker) valueSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			c.setClass(name, c.classOf(vs.Values[i]))
		}
	}
}

// checkWrite flags an element write through a foreign tuple or row
// slice appearing as an assignment target.
func (c *checker) checkWrite(lhs ast.Expr) {
	ie, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return
	}
	baseType := c.pass.Info.TypeOf(ie.X)
	switch {
	case isTuple(baseType):
		if c.classOf(ie.X) >= foreignCall {
			c.pass.Reportf(lhs.Pos(),
				"writes into a relation.Tuple received across a package boundary; tuples are shared — Clone before mutating")
		}
	case isRowSlice(baseType):
		if c.classOf(ie.X) == foreignParam {
			c.pass.Reportf(lhs.Pos(),
				"writes into a row slice received across a package boundary; copy the slice before mutating")
		}
	}
}

func (c *checker) checkRetention(lhs, rhs ast.Expr) {
	id, ok := rhs.(*ast.Ident)
	if !ok || !tracked(c.pass.Info.TypeOf(id)) || c.classOf(id) < foreignCall {
		return
	}
	switch target := lhs.(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.pass.Info.Selections[target]; ok && sel.Kind() == types.FieldVal {
			c.pass.Reportf(lhs.Pos(),
				"retains a borrowed relation.Tuple in a struct field; Clone it so later mutations cannot corrupt the owner")
		}
	case *ast.Ident:
		if obj, ok := c.pass.Info.Uses[target].(*types.Var); ok && obj.Parent() == c.pass.Pkg.Scope() {
			c.pass.Reportf(lhs.Pos(),
				"retains a borrowed relation.Tuple in a package-level variable; Clone it first")
		}
	}
}

// call flags the mutating builtins applied to foreign tuples.
func (c *checker) call(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	switch id.Name {
	case "copy":
		if isTuple(c.pass.Info.TypeOf(call.Args[0])) && c.classOf(call.Args[0]) >= foreignCall {
			c.pass.Reportf(call.Pos(),
				"copy into a relation.Tuple received across a package boundary overwrites shared data; Clone instead")
		}
	case "append":
		if isTuple(c.pass.Info.TypeOf(call.Args[0])) && c.classOf(call.Args[0]) >= foreignCall {
			c.pass.Reportf(call.Pos(),
				"append to a relation.Tuple received across a package boundary may write its shared backing array; Clone first")
		}
	}
}

// classOf computes the ownership class of an expression under the
// current classification.
func (c *checker) classOf(e ast.Expr) int {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := c.pass.Info.Uses[v].(*types.Var); ok {
			return c.class[obj]
		}
	case *ast.IndexExpr:
		// An element of a foreign slice is a foreign tuple regardless of
		// how the slice header itself is owned.
		if cls := c.classOf(v.X); cls >= foreignCall {
			return cls
		}
	case *ast.SliceExpr:
		return c.classOf(v.X)
	case *ast.SelectorExpr:
		if sel, ok := c.pass.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return foreignCall
		}
		if obj, ok := c.pass.Info.Uses[v.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Pkg() != c.pass.Pkg {
			return foreignCall
		}
	case *ast.CallExpr:
		return c.classOfCall(v)
	case *ast.CompositeLit:
		return owned
	}
	return unknown
}

func (c *checker) classOfCall(call *ast.CallExpr) int {
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: ownership follows the operand.
		if len(call.Args) == 1 {
			return c.classOf(call.Args[0])
		}
		return owned
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make", "new":
			return owned
		case "append":
			if len(call.Args) > 0 {
				return c.classOf(call.Args[0])
			}
			return owned
		}
		if obj := c.pass.Info.Uses[fun]; obj != nil && obj.Pkg() != nil && obj.Pkg() != c.pass.Pkg {
			return foreignCall
		}
		return owned
	case *ast.SelectorExpr:
		// Clone (on anything) yields an owned value; that is the whole
		// point of the convention.
		if fun.Sel.Name == "Clone" {
			return owned
		}
		if obj := c.pass.Info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg() != c.pass.Pkg {
			return foreignCall
		}
		return owned
	}
	return foreignCall
}
