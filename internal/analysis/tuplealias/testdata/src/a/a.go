// Fixture for tuplealias: consumers of the real relation package.
package a

import "relquery/internal/relation"

func Mutate(t relation.Tuple) {
	t[0] = "x" // want `writes into a relation\.Tuple received across a package boundary`
}

func MutateRows(rows []relation.Tuple) {
	rows[0] = relation.TupleOf("x") // want `writes into a row slice received across a package boundary`
	rows[1][0] = "y"                // want `writes into a relation\.Tuple received across a package boundary`
}

func CloneFirst(t relation.Tuple) relation.Tuple {
	t = t.Clone()
	t[0] = "x"
	return t
}

func FromAccessor(r *relation.Relation) {
	tu := r.Tuple(0)
	tu[0] = "x" // want `writes into a relation\.Tuple received across a package boundary`
}

func FromEach(r *relation.Relation) {
	r.Each(func(t relation.Tuple) bool {
		t[0] = "x" // want `writes into a relation\.Tuple received across a package boundary`
		return true
	})
}

func Owned() relation.Tuple {
	t := make(relation.Tuple, 2)
	t[0] = "x"
	return t
}

var saved relation.Tuple

func Retain(t relation.Tuple) {
	saved = t // want `retains a borrowed relation\.Tuple in a package-level variable`
}

type holder struct {
	row relation.Tuple
}

func (h *holder) Retain(t relation.Tuple) {
	h.row = t // want `retains a borrowed relation\.Tuple in a struct field`
}

func (h *holder) RetainClone(t relation.Tuple) {
	t = t.Clone()
	h.row = t
}

func CopyInto(t relation.Tuple) {
	copy(t, relation.TupleOf("x")) // want `copy into a relation\.Tuple received across a package boundary`
}

func Append(t relation.Tuple) relation.Tuple {
	return append(t, "x") // want `append to a relation\.Tuple received across a package boundary`
}
