package tuplealias_test

import (
	"testing"

	"relquery/internal/analysis/framework"
	"relquery/internal/analysis/tuplealias"
)

func TestTupleAlias(t *testing.T) {
	framework.RunFixtures(t, "testdata", tuplealias.Analyzer, "a")
}
