// Package spanfield enforces the canonical observability string table.
// Span-field keys and metric series names cross four renderers — the
// Chrome trace exporter, the Prometheus exposition, relqueryd's server
// metrics, and EXPLAIN ANALYZE — plus the dashboards and CI smoke
// tests that scrape them. A key spelled inline in one renderer drifts
// silently: rename the constant and the stray literal keeps emitting
// the old name, so a panel goes blank with no compile error and no
// failing test. internal/obs/fields.go (the Field* and Series*
// constants) is the single source of truth; this analyzer bans
// shadow spellings of those names in the rendering packages.
//
// Three literal shapes are flagged in non-test files of the obs,
// telemetry, algebra, and server packages: a string equal to a
// canonical field key (all keys in obs and telemetry, where every
// string in key position is observability vocabulary; only the
// unambiguous underscore-bearing keys elsewhere, so JSON field names
// like "error" stay usable), a string containing a `key=` token of the
// EXPLAIN format, and any string in the reserved relquery_/relqueryd_
// series namespaces. Import paths, struct tags, and the canonical
// table's own declarations are exempt.
package spanfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"relquery/internal/analysis/framework"
)

// renderPkgs are the package names whose literals are policed.
var renderPkgs = map[string]bool{
	"obs":       true,
	"telemetry": true,
	"algebra":   true,
	"server":    true,
}

var Analyzer = &framework.Analyzer{
	Name: "spanfield",
	Doc:  "span-field keys and metric series names in rendering packages must come from the canonical obs string table",
	Run:  run,
}

const (
	enginePrefix = "relquery_"
	serverPrefix = "relqueryd_"
)

func run(pass *framework.Pass) error {
	if !renderPkgs[pass.Pkg.Name()] {
		return nil
	}
	fields, series := reservedNames(pass)
	if len(fields) == 0 && len(series) == 0 {
		return nil
	}
	// In the vocabulary-owning packages every reserved key is banned as
	// a literal; elsewhere only underscore-bearing keys are unambiguous
	// enough to ban by equality.
	strictEquality := pass.Pkg.Name() == "obs" || pass.Pkg.Name() == "telemetry"
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		checkFile(pass, file, fields, series, strictEquality)
	}
	return nil
}

// reservedNames collects the canonical table: exported string constants
// named Field* (value → constant name) and Series* (value → constant
// name) from the obs-named package — the pass's own package when it is
// obs, its direct import otherwise.
func reservedNames(pass *framework.Pass) (fields, series map[string]string) {
	obsPkg := pass.Pkg
	if obsPkg.Name() != "obs" {
		obsPkg = nil
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == "obs" {
				obsPkg = imp
				break
			}
		}
	}
	if obsPkg == nil {
		return nil, nil
	}
	fields, series = map[string]string{}, map[string]string{}
	scope := obsPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() {
			continue
		}
		if b, ok := c.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
			continue
		}
		val := constString(c)
		switch {
		case strings.HasPrefix(name, "Field"):
			fields[val] = name
		case strings.HasPrefix(name, "Series"):
			series[val] = name
		}
	}
	return fields, series
}

func constString(c *types.Const) string {
	s := c.Val().ExactString()
	unq, err := strconv.Unquote(s)
	if err != nil {
		return s
	}
	return unq
}

func checkFile(pass *framework.Pass, file *ast.File, fields, series map[string]string, strictEquality bool) {
	framework.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if exemptPosition(lit, stack) {
			return true
		}
		v, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if name, ok := fields[v]; ok && (strictEquality || strings.Contains(v, "_")) {
			pass.Reportf(lit.Pos(), "span-field literal %q duplicates the canonical table: use obs.%s", v, name)
			return true
		}
		if name, ok := series[v]; ok {
			pass.Reportf(lit.Pos(), "series literal %q duplicates the canonical table: use obs.%s", v, name)
			return true
		}
		if strings.HasPrefix(v, enginePrefix) || strings.HasPrefix(v, serverPrefix) {
			pass.Reportf(lit.Pos(), "literal %q squats on the reserved series namespace: declare it as a Series* constant in the obs string table", v)
			return true
		}
		if key, name := formatToken(v, fields); key != "" {
			pass.Reportf(lit.Pos(), "format string hardcodes the %q span field: build the segment from obs.%s", key, name)
		}
		return true
	})
}

// exemptPosition reports whether the literal's context is outside the
// vocabulary: an import path, a struct tag, or the canonical table's
// own Field*/Series* constant declaration.
func exemptPosition(lit *ast.BasicLit, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.ImportSpec:
		return true
	case *ast.Field:
		return parent.Tag == lit
	case *ast.ValueSpec:
		for _, name := range parent.Names {
			if strings.HasPrefix(name.Name, "Field") || strings.HasPrefix(name.Name, "Series") {
				return true
			}
		}
	}
	return false
}

// formatToken returns the first (longest, for determinism) canonical
// key appearing in v as a `key=` format token — at the start or after
// a space, the EXPLAIN ANALYZE segment shape — with its constant name.
func formatToken(v string, fields map[string]string) (key, name string) {
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) > len(keys[j])
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		if strings.HasPrefix(v, k+"=") || strings.Contains(v, " "+k+"=") {
			return k, fields[k]
		}
	}
	return "", ""
}
