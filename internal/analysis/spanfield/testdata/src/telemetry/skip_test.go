package telemetry

// Test files may assert on rendered output verbatim: the analyzer
// skips them, so these literals produce no findings.
const rendered = "output_rows=3 workers=2 relquery_evals_total"
