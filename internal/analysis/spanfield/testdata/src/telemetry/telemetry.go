// Fixture for spanfield: a vocabulary-owning package (strict equality)
// with shadow spellings of the canonical table.
package telemetry

import "relquery/internal/obs"

// Canonical usage: constants, never literals.
var ok = map[string]any{
	obs.FieldCache:      "hit",
	obs.FieldOutputRows: 3,
}

var dup = map[string]any{
	"output_rows": 3, // want `span-field literal "output_rows" duplicates the canonical table: use obs\.FieldOutputRows`
	"workers":     2, // want `span-field literal "workers" duplicates the canonical table: use obs\.FieldWorkers`
}

// Series names are a reserved namespace, known or not.
const dupSeries = "relquery_evals_total" // want `series literal "relquery_evals_total" duplicates the canonical table: use obs\.SeriesEvals`

const newSeries = "relquery_bogus_total" // want `literal "relquery_bogus_total" squats on the reserved series namespace`

// Format strings carry the EXPLAIN segment shape.
const segment = " peak=%d" // want `format string hardcodes the "peak" span field: build the segment from obs\.FieldPeak`

// Unreserved words and non-key positions stay free.
var free = map[string]any{
	"name":    "eval",
	"joins":   1,
	"tenant=": "a", // tenant is not a reserved key
}
