// Fixture for spanfield outside the vocabulary-owning packages: only
// underscore-bearing keys are banned by equality, so plain JSON field
// names stay usable; tokens and series prefixes are banned everywhere.
package server

import "relquery/internal/obs"

var _ = obs.FieldRows

// Single-word keys double as ordinary JSON fields here: allowed.
var jsonFields = []string{"error", "cache", "workers"}

var dup = "max_intermediate" // want `span-field literal "max_intermediate" duplicates the canonical table: use obs\.FieldMaxIntermediate`

var series = "relqueryd_new_series" // want `literal "relqueryd_new_series" squats on the reserved series namespace`

var segment = " cache=%s" // want `format string hardcodes the "cache" span field: build the segment from obs\.FieldCache`

// Struct tags are schema, not rendering: exempt.
type payload struct {
	Peak int `json:"max_intermediate"`
}
