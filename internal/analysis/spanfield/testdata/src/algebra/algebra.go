// Negative fixture for spanfield: a rendering package built entirely
// from the canonical table. No findings expected.
package algebra

import (
	"fmt"
	"strings"

	"relquery/internal/obs"
)

func Render(rows, peak int) string {
	var b strings.Builder
	fmt.Fprintf(&b, obs.FieldRows+"=%d", rows)
	if peak > rows {
		fmt.Fprintf(&b, " "+obs.FieldPeak+"=%d", peak)
	}
	return b.String()
}
