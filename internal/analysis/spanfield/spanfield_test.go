package spanfield_test

import (
	"testing"

	"relquery/internal/analysis/framework"
	"relquery/internal/analysis/spanfield"
)

func TestSpanfieldStrict(t *testing.T) {
	framework.RunFixtures(t, "testdata", spanfield.Analyzer, "telemetry")
}

func TestSpanfieldLoose(t *testing.T) {
	framework.RunFixtures(t, "testdata", spanfield.Analyzer, "server")
}

// TestSpanfieldClean is the negative fixture: rendering from the
// canonical constants produces no findings.
func TestSpanfieldClean(t *testing.T) {
	framework.RunFixtures(t, "testdata", spanfield.Analyzer, "algebra")
}
