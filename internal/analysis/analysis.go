// Package analysis collects relquery's custom static-analysis passes.
//
// Each analyzer machine-checks one invariant that the paper-level
// guarantees rest on but the Go type system cannot express; DESIGN.md
// ("Machine-checked invariants") documents the mapping. The passes run
// on a small stdlib-only framework (see internal/analysis/framework)
// and are driven together by cmd/relquerylint.
package analysis

import (
	"relquery/internal/analysis/atomicobs"
	"relquery/internal/analysis/deprecatedban"
	"relquery/internal/analysis/errwrapcheck"
	"relquery/internal/analysis/framework"
	"relquery/internal/analysis/govloop"
	"relquery/internal/analysis/nilrecv"
	"relquery/internal/analysis/schemecanon"
	"relquery/internal/analysis/sentinelmap"
	"relquery/internal/analysis/spanfield"
	"relquery/internal/analysis/tuplealias"
)

// All returns every analyzer in the suite, in the order they report.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		atomicobs.Analyzer,
		deprecatedban.Analyzer,
		errwrapcheck.Analyzer,
		govloop.Analyzer,
		nilrecv.Analyzer,
		schemecanon.Analyzer,
		sentinelmap.Analyzer,
		spanfield.Analyzer,
		tuplealias.Analyzer,
	}
}
