// Package framework is a self-contained, standard-library-only analog of
// golang.org/x/tools/go/analysis, sized for this module's lint suite
// (cmd/relquerylint). It exists because the build environment is
// network-isolated: x/tools cannot be vendored, but everything the suite
// needs — parsed syntax, full type information, cross-package symbol
// metadata — is reachable with go/parser, go/types and the go command.
//
// The model mirrors go/analysis deliberately: an Analyzer is a named Run
// function over a Pass; a Pass carries one package's files, types and an
// aggregated view of module-wide facts (currently the deprecated-symbol
// registry); diagnostics are (position, message) pairs. Analyzer test
// fixtures use the analysistest convention: files under testdata/src/<pkg>
// annotated with `// want "regexp"` comments (see RunFixtures).
//
// Loading works without x/tools' go/packages: `go list -export -deps -test`
// supplies compiled export data for every dependency (standard library
// included), the packages under analysis are parsed and type-checked from
// source, and imports resolve through importer.ForCompiler's gc importer
// reading that export data. Test files are analyzed too: internal tests
// are type-checked together with their package, external _test packages
// separately.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run is invoked once per
// loaded package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output. By
	// convention it is a single lowercase word.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and why
	// violating it is a bug in this codebase.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// A Pass provides one package's syntax and types to an Analyzer.Run and
// collects its diagnostics.
type Pass struct {
	// Analyzer is the analyzer this pass runs.
	Analyzer *Analyzer
	// Fset maps positions for every file in the enclosing Program.
	Fset *token.FileSet
	// Path is the package's import path ("_test"-suffixed for external
	// test packages).
	Path string
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// Deprecated indexes every `// Deprecated:` symbol of the enclosing
	// program (module source plus fixtures), keyed by SymbolKey.
	Deprecated *Deprecations

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a resolved position, the analyzer that
// produced it, and the message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// WalkStack walks the AST in depth-first order like ast.Inspect, but
// additionally passes the stack of ancestor nodes (outermost first, not
// including n itself). Returning false prunes the subtree.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		// ast.Inspect sends the matching nil pop only when it descended,
		// so push exactly when descending.
		if ok {
			stack = append(stack, n)
		}
		return ok
	})
}

// Deprecations indexes the program's deprecated symbols. Keys are built
// by SymbolKey; values are the first line of the deprecation notice.
type Deprecations struct {
	byKey map[string]string
}

// Lookup returns the deprecation notice for key, if any.
func (d *Deprecations) Lookup(key string) (string, bool) {
	if d == nil {
		return "", false
	}
	msg, ok := d.byKey[key]
	return msg, ok
}

// add records one deprecated symbol.
func (d *Deprecations) add(key, msg string) {
	if d.byKey == nil {
		d.byKey = make(map[string]string)
	}
	if _, dup := d.byKey[key]; !dup {
		d.byKey[key] = msg
	}
}

// SymbolKey names a top-level symbol, method or struct field in a form
// stable across separate type-checks: "pkgpath.Name",
// "pkgpath.Type.Method" or "pkgpath.Type.Field". It returns "" for
// objects that cannot be keyed (builtins, locals, interface embeds).
func SymbolKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkg := obj.Pkg().Path()
	switch o := obj.(type) {
	case *types.Func:
		if recv := o.Type().(*types.Signature).Recv(); recv != nil {
			if named := namedOf(recv.Type()); named != nil {
				return pkg + "." + named.Obj().Name() + "." + o.Name()
			}
			return ""
		}
		return pkg + "." + o.Name()
	case *types.Var:
		if o.IsField() {
			// Field keys need the owning type, which the object alone
			// does not carry; callers key fields via FieldKey instead.
			return ""
		}
		return pkg + "." + o.Name()
	case *types.TypeName, *types.Const:
		return pkg + "." + obj.Name()
	}
	return ""
}

// FieldKey names a struct field given its owning named type.
func FieldKey(owner *types.Named, field string) string {
	if owner == nil || owner.Obj().Pkg() == nil {
		return ""
	}
	return owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + field
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return nil
		}
	}
}

// NamedOf is namedOf for analyzer use: the named type behind pointers
// and aliases, or nil.
func NamedOf(t types.Type) *types.Named { return namedOf(t) }

// IsNamed reports whether t (behind pointers/aliases) is the named type
// pkgName.typeName, matching the *package name* rather than path so that
// test fixtures mimicking a package (e.g. a fixture package "relation")
// exercise the same analyzer logic as the real one.
func IsNamed(t types.Type, pkgName, typeName string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// deprecationOf extracts the first "Deprecated:" line from a comment
// group, or "".
func deprecationOf(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, line := range strings.Split(g.Text(), "\n") {
			line = strings.TrimSpace(line)
			if strings.HasPrefix(line, "Deprecated:") {
				return line
			}
		}
	}
	return ""
}

// DeclDeprecated reports whether the top-level declaration enclosing pos
// in file carries a Deprecated: notice. Uses inside deprecated
// declarations are exempt from deprecation findings: a deprecated shim
// may reference other deprecated symbols.
func DeclDeprecated(file *ast.File, pos token.Pos) bool {
	for _, decl := range file.Decls {
		if decl.Pos() <= pos && pos <= decl.End() {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				return deprecationOf(d.Doc) != ""
			case *ast.GenDecl:
				if deprecationOf(d.Doc) != "" {
					return true
				}
				for _, spec := range d.Specs {
					if spec.Pos() <= pos && pos <= spec.End() {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							return deprecationOf(s.Doc, s.Comment) != ""
						case *ast.ValueSpec:
							return deprecationOf(s.Doc, s.Comment) != ""
						}
					}
				}
			}
			return false
		}
	}
	return false
}

// collectDeprecations scans one package's syntax for Deprecated: notices
// on top-level declarations, methods and struct fields, adding them to d
// under the given package path.
func collectDeprecations(d *Deprecations, pkgPath string, files []*ast.File) {
	for _, file := range files {
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				msg := deprecationOf(dd.Doc)
				if msg == "" {
					continue
				}
				if dd.Recv != nil && len(dd.Recv.List) == 1 {
					if recv := recvTypeName(dd.Recv.List[0].Type); recv != "" {
						d.add(pkgPath+"."+recv+"."+dd.Name.Name, msg)
					}
					continue
				}
				d.add(pkgPath+"."+dd.Name.Name, msg)
			case *ast.GenDecl:
				declMsg := deprecationOf(dd.Doc)
				for _, spec := range dd.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						msg := deprecationOf(s.Doc, s.Comment)
						if msg == "" {
							msg = declMsg
						}
						if msg != "" {
							d.add(pkgPath+"."+s.Name.Name, msg)
						}
						if st, ok := s.Type.(*ast.StructType); ok {
							collectFieldDeprecations(d, pkgPath, s.Name.Name, st)
						}
					case *ast.ValueSpec:
						msg := deprecationOf(s.Doc, s.Comment)
						if msg == "" {
							msg = declMsg
						}
						if msg == "" {
							continue
						}
						for _, name := range s.Names {
							d.add(pkgPath+"."+name.Name, msg)
						}
					}
				}
			}
		}
	}
}

func collectFieldDeprecations(d *Deprecations, pkgPath, typeName string, st *ast.StructType) {
	for _, f := range st.Fields.List {
		msg := deprecationOf(f.Doc, f.Comment)
		if msg == "" {
			continue
		}
		for _, name := range f.Names {
			d.add(pkgPath+"."+typeName+"."+name.Name, msg)
		}
	}
}

// recvTypeName extracts the receiver base type name from a receiver type
// expression (T, *T, T[P], *T[P]).
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}
