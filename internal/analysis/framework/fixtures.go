package framework

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// RunFixtures loads the fixture packages under testdata/src/<pkg> in the
// given order, runs the analyzer over each, and checks its diagnostics
// against `// want "regexp"` comments (the analysistest convention: each
// want comment names, by regexp, a diagnostic expected on its own line;
// lines without a want comment must produce none).
//
// Fixture packages may import each other (list dependencies first), the
// module's real packages, and the standard library. They are ordinary
// Go source that must type-check, but live under testdata so the go tool
// ignores them.
func RunFixtures(t *testing.T, testdata string, a *Analyzer, pkgs ...string) {
	t.Helper()
	prog, loaded, err := loadFixtures(testdata, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	for _, pkg := range loaded {
		pass := &Pass{
			Analyzer:   a,
			Fset:       prog.Fset,
			Path:       pkg.Path,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			Deprecated: prog.Deprecated,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: %s: %v", a.Name, pkg.Path, err)
		}
	}
	sortDiagnostics(diags)
	checkWants(t, prog.Fset, loaded, diags)
}

// moduleList caches one `go list -export -deps -test ./...` run (and the
// module deprecation registry built from parsed module sources) per test
// process: every fixture load shares the same export closure.
var moduleList struct {
	once       sync.Once
	err        error
	root       string
	exports    map[string]string
	deprecated *Deprecations
}

func loadModuleList() error {
	moduleList.once.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			moduleList.err = err
			return
		}
		root, err := ModuleRoot(wd)
		if err != nil {
			moduleList.err = err
			return
		}
		listed, err := goList(root, []string{"./..."})
		if err != nil {
			moduleList.err = err
			return
		}
		moduleList.root = root
		moduleList.exports = buildExports(listed)
		// Deprecation notices live in doc comments, which export data
		// does not carry: parse module sources (syntax only) to index
		// them, so fixtures can exercise bans on real module symbols.
		reg := &Deprecations{}
		fset := token.NewFileSet()
		for _, p := range listed {
			if p.Standard || p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
				continue
			}
			var files []*ast.File
			for _, name := range append(append([]string{}, p.GoFiles...), p.TestGoFiles...) {
				if f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments); err == nil {
					files = append(files, f)
				}
			}
			collectDeprecations(reg, p.ImportPath, files)
		}
		moduleList.deprecated = reg
	})
	return moduleList.err
}

// loadFixtures type-checks the fixture packages in order, resolving
// imports of earlier fixtures from source and everything else from
// export data.
func loadFixtures(testdata string, pkgs []string) (*Program, []*Package, error) {
	if err := loadModuleList(); err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(moduleList.exports))
	for k, v := range moduleList.exports {
		exports[k] = v
	}
	prog := &Program{
		Fset:       token.NewFileSet(),
		Deprecated: &Deprecations{},
		exports:    exports,
	}
	for k, v := range moduleList.deprecated.byKey {
		prog.Deprecated.add(k, v)
	}
	ei := newExportImporter(prog.Fset, moduleList.root, prog.exports)
	ei.overrides = make(map[string]*types.Package)
	prog.imp = ei

	var loaded []*Package
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(name))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		var fileNames []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				fileNames = append(fileNames, e.Name())
			}
		}
		if len(fileNames) == 0 {
			return nil, nil, fmt.Errorf("no Go files in fixture %s", dir)
		}
		pkg, err := prog.checkPackage(name, dir, fileNames)
		if err != nil {
			return nil, nil, err
		}
		ei.overrides[name] = pkg.Types
		collectDeprecations(prog.Deprecated, name, pkg.Files)
		prog.Pkgs = append(prog.Pkgs, pkg)
		loaded = append(loaded, pkg)
	}
	return prog, loaded, nil
}

// want is one expectation: a diagnostic matching rx on line (of file).
type want struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
	met  bool
}

var wantRE = regexp.MustCompile(`//\s*want\b(.*)$`)

// parseWants extracts `// want "rx" "rx"...` expectations from the
// fixture files.
func parseWants(fset *token.FileSet, pkgs []*Package) ([]*want, error) {
	var wants []*want
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					rest := strings.TrimSpace(m[1])
					if rest == "" {
						// A bare `// want` expects nothing, matching the
						// no-comment case exactly: the fixture would pass
						// vacuously whatever the analyzer does. Fail loudly
						// instead — a malformed expectation is a harness
						// bug, not a clean run.
						return nil, fmt.Errorf("%s: want comment carries no pattern (write `// want \"regexp\"`)", pos)
					}
					for rest != "" {
						quote := rest[0]
						if quote != '"' && quote != '`' {
							return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
						}
						end := 1
						for end < len(rest) && (rest[end] != quote || (quote == '"' && rest[end-1] == '\\')) {
							end++
						}
						if end == len(rest) {
							return nil, fmt.Errorf("%s: unterminated want pattern in %q", pos, c.Text)
						}
						lit := rest[:end+1]
						rest = strings.TrimSpace(rest[end+1:])
						unq, err := strconv.Unquote(lit)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want pattern %s: %w", pos, lit, err)
						}
						rx, err := regexp.Compile(unq)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want regexp %q: %w", pos, unq, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx, raw: unq})
					}
				}
			}
		}
	}
	return wants, nil
}

// checkWants matches diagnostics against expectations, failing the test
// on unmatched diagnostics or unmet expectations.
func checkWants(t *testing.T, fset *token.FileSet, pkgs []*Package, diags []Diagnostic) {
	t.Helper()
	wants, err := parseWants(fset, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.met || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
