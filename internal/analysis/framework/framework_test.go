package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestLoadAndRunOnModulePackage drives the whole loading pipeline (go
// list export closure, source type-check, importer) against a real
// module package and runs a trivial analyzer over it.
func TestLoadAndRunOnModulePackage(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := LoadPackages(root, "./internal/join/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	funcs := 0
	count := &Analyzer{
		Name: "count",
		Doc:  "counts function declarations",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if _, ok := d.(*ast.FuncDecl); ok {
						funcs++
					}
				}
			}
			return nil
		},
	}
	diags, err := prog.Run(count)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("counting analyzer reported %d diagnostics", len(diags))
	}
	if funcs == 0 {
		t.Error("no function declarations seen in internal/join")
	}
	// The deprecation registry is fed from the loaded sources, so it
	// must know the join.Stats shim.
	if _, ok := prog.Deprecated.Lookup("relquery/internal/join.Stats"); !ok {
		t.Error("deprecation registry is missing relquery/internal/join.Stats")
	}
}

// TestRunFixturesReporting checks the fixture harness end to end with an
// analyzer that flags functions named Bad.
func TestRunFixturesReporting(t *testing.T) {
	flagBad := &Analyzer{
		Name: "flagbad",
		Doc:  "flags functions named Bad",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "Bad" {
						pass.Reportf(fd.Pos(), "function named Bad")
					}
				}
			}
			return nil
		},
	}
	RunFixtures(t, "testdata", flagBad, "x")
}

func TestSortDiagnostics(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "b.go", Line: 1, Column: 1}, Analyzer: "z", Message: "m"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 1}, Analyzer: "z", Message: "m"},
		{Pos: token.Position{Filename: "a.go", Line: 1, Column: 5}, Analyzer: "z", Message: "m"},
		{Pos: token.Position{Filename: "a.go", Line: 1, Column: 5}, Analyzer: "a", Message: "m"},
		{Pos: token.Position{Filename: "a.go", Line: 1, Column: 2}, Analyzer: "z", Message: "m"},
	}
	sortDiagnostics(diags)
	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	want := []string{
		"a.go:1:2: m (z)",
		"a.go:1:5: m (a)",
		"a.go:1:5: m (z)",
		"a.go:2:1: m (z)",
		"b.go:1:1: m (z)",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

const stackSrc = `package p

func f() {
	if true {
		_ = 1
	}
}
`

func TestWalkStack(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", stackSrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	sawIf := false
	WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
		if len(stack) > 0 && stack[0] != file {
			t.Errorf("stack[0] = %T, want *ast.File", stack[0])
		}
		if _, ok := n.(*ast.IfStmt); ok {
			sawIf = true
			// File > FuncDecl > BlockStmt enclose the if.
			if len(stack) != 3 {
				t.Errorf("if statement stack depth = %d, want 3", len(stack))
			}
		}
		return true
	})
	if !sawIf {
		t.Error("walk never reached the if statement")
	}

	// Pruning a FuncDecl must skip its body without corrupting the stack.
	visited := 0
	WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
		visited++
		_, isFunc := n.(*ast.FuncDecl)
		return !isFunc
	})
	if visited != 3 { // file, ident (package name is not a Decl)... func decl
		// file, funcdecl, and the package name ident
		t.Errorf("pruned walk visited %d nodes, want 3", visited)
	}
}

const deprSrc = `package p

// Deprecated: use New instead.
type Old struct {
	// Deprecated: use Size instead.
	Count int
	Size  int
}

// Run runs.
//
// Deprecated: use Walk instead.
func (o *Old) Run() {}

// Deprecated: gone.
var V, W int

// Deprecated: use F.
func G() { V = 1 }

func F() {}
`

func TestCollectDeprecations(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", deprSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	d := &Deprecations{}
	collectDeprecations(d, "example.com/p", []*ast.File{file})
	for key, wantSub := range map[string]string{
		"example.com/p.Old":       "use New",
		"example.com/p.Old.Count": "use Size",
		"example.com/p.Old.Run":   "use Walk",
		"example.com/p.V":         "gone",
		"example.com/p.W":         "gone",
		"example.com/p.G":         "use F",
	} {
		msg, ok := d.Lookup(key)
		if !ok {
			t.Errorf("missing deprecation for %s", key)
			continue
		}
		if !strings.Contains(msg, wantSub) {
			t.Errorf("%s notice = %q, want substring %q", key, msg, wantSub)
		}
	}
	if _, ok := d.Lookup("example.com/p.Old.Size"); ok {
		t.Error("non-deprecated field Size indexed")
	}
	if _, ok := d.Lookup("example.com/p.F"); ok {
		t.Error("non-deprecated func F indexed")
	}

	// DeclDeprecated: a position inside G's body is inside a deprecated
	// declaration; one inside F is not.
	var gPos, fPos token.Pos
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			switch fd.Name.Name {
			case "G":
				gPos = fd.Body.Pos()
			case "F":
				fPos = fd.Body.Pos()
			}
		}
	}
	if !DeclDeprecated(file, gPos) {
		t.Error("body of deprecated G not recognized")
	}
	if DeclDeprecated(file, fPos) {
		t.Error("body of plain F misclassified as deprecated")
	}
}
