package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

func f(xs []int) {
	//lint:ungoverned bounded by the caller's batch size
	for range xs {
	}
	//lint:ungoverned
	for range xs {
	}
	for range xs { //lint:other same line, different verb
	}
}
`

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, file
}

func TestDirectives(t *testing.T) {
	fset, file := parseOne(t, directiveSrc)
	dirs := Directives(fset, file)
	if len(dirs) != 3 {
		t.Fatalf("parsed %d directives, want 3: %v", len(dirs), dirs)
	}

	var loops []*ast.RangeStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			loops = append(loops, r)
		}
		return true
	})
	if len(loops) != 3 {
		t.Fatalf("parsed %d loops, want 3", len(loops))
	}

	// Line above, with reason.
	d, ok := DirectiveFor(fset, dirs, loops[0], "ungoverned")
	if !ok || d.Reason != "bounded by the caller's batch size" {
		t.Errorf("loop 1: got %+v, %v; want ungoverned with reason", d, ok)
	}
	// Line above, reason missing: found, but empty — the analyzer's cue
	// to report the waiver itself.
	d, ok = DirectiveFor(fset, dirs, loops[1], "ungoverned")
	if !ok || d.Reason != "" {
		t.Errorf("loop 2: got %+v, %v; want ungoverned with empty reason", d, ok)
	}
	// Same line, but a different verb must not match.
	if _, ok := DirectiveFor(fset, dirs, loops[2], "ungoverned"); ok {
		t.Error("loop 3: verb 'other' matched lookup for 'ungoverned'")
	}
	if d, ok := DirectiveFor(fset, dirs, loops[2], "other"); !ok || d.Reason != "same line, different verb" {
		t.Errorf("loop 3: got %+v, %v; want same-line 'other' directive", d, ok)
	}
}

// TestDirectiveDistance: a directive two lines up covers nothing — a
// waiver cannot drift away from the construct it waives.
func TestDirectiveDistance(t *testing.T) {
	fset, file := parseOne(t, `package p

func f(xs []int) {
	//lint:ungoverned too far away

	for range xs {
	}
}
`)
	dirs := Directives(fset, file)
	var loop *ast.RangeStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			loop = r
		}
		return true
	})
	if _, ok := DirectiveFor(fset, dirs, loop, "ungoverned"); ok {
		t.Error("directive two lines above the loop matched; must only cover the line and line-1")
	}
}
