package framework

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// A Baseline is the committed debt ledger of the lint suite: findings
// recorded in it warn instead of failing, so an analyzer can land before
// its last paydown commit — but the ledger only ratchets down. A finding
// is keyed by analyzer, repository-relative file and message, never by
// line number: unrelated edits move lines, and a baseline that churns on
// every edit stops being reviewable. Identical findings in one file are
// counted, so adding a second instance of a baselined bug still fails.
type Baseline struct {
	counts map[string]int
}

// baselineHeader starts every baseline file; Load rejects files without
// it so a stray file cannot silently waive findings.
const baselineHeader = "# relquerylint baseline v1"

func baselineKey(analyzer, relPath, message string) string {
	return analyzer + "\t" + relPath + "\t" + message
}

// Len reports the number of baselined findings (counting duplicates).
func (b *Baseline) Len() int {
	n := 0
	if b != nil {
		for _, c := range b.counts {
			n += c
		}
	}
	return n
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline — the ratchet's natural starting point — not an error.
func LoadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBaseline(f)
}

// ReadBaseline parses the baseline format: the version header, then one
// finding per line as "analyzer\tfile\tmessage". Blank lines and #
// comments are ignored.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	b := &Baseline{counts: make(map[string]int)}
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if first {
			if text != baselineHeader {
				return nil, fmt.Errorf("baseline: missing %q header (got %q)", baselineHeader, text)
			}
			first = false
			continue
		}
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want analyzer\\tfile\\tmessage, got %q", line, text)
		}
		b.counts[baselineKey(parts[0], parts[1], parts[2])]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, fmt.Errorf("baseline: empty file (want %q header)", baselineHeader)
	}
	return b, nil
}

// Apply splits diagnostics against the baseline: fresh findings (must
// fail), baselined findings (warn), and the number of stale baseline
// entries that no longer fire (the ratchet's shrink signal — regenerate
// the file to claim the progress). Paths are keyed relative to root.
func (b *Baseline) Apply(diags []Diagnostic, root string) (fresh, baselined []Diagnostic, stale int) {
	remaining := make(map[string]int, len(b.counts))
	if b != nil {
		for k, c := range b.counts {
			remaining[k] = c
		}
	}
	for _, d := range diags {
		key := baselineKey(d.Analyzer, RelPath(root, d.Pos.Filename), d.Message)
		if remaining[key] > 0 {
			remaining[key]--
			baselined = append(baselined, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	for _, c := range remaining {
		stale += c
	}
	return fresh, baselined, stale
}

// WriteBaseline writes diagnostics in the baseline format, sorted for
// stable diffs, with paths relative to root.
func WriteBaseline(w io.Writer, diags []Diagnostic, root string) error {
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		msg := strings.ReplaceAll(d.Message, "\t", " ")
		lines = append(lines, d.Analyzer+"\t"+RelPath(root, d.Pos.Filename)+"\t"+msg)
	}
	sort.Strings(lines)
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, baselineHeader)
	fmt.Fprintln(bw, "# One waived finding per line: analyzer<TAB>file<TAB>message.")
	fmt.Fprintln(bw, "# The ratchet only shrinks: new findings fail, entries here warn.")
	fmt.Fprintln(bw, "# Regenerate with: go run ./cmd/relquerylint -write-baseline ./...")
	for _, l := range lines {
		fmt.Fprintln(bw, l)
	}
	return bw.Flush()
}
