package framework

import (
	"go/ast"
	"go/types"
)

// Reachability answers "can this piece of syntax reach one of the
// target functions?" for one package: a call reaches a target when its
// callee is a target itself, or is a same-package function whose body
// (transitively, through other same-package functions) calls one.
// Cross-package callees other than the targets are opaque — their
// bodies are not loaded — so reachability through them is not assumed;
// analyzers add their own domain rules for those (govloop, for example,
// treats passing a governor into a call as delegation).
//
// The relation is an over-approximation in the usual static sense: a
// call counts even when it sits on a conditionally-executed path.
type Reachability struct {
	pass     *Pass
	isTarget func(*types.Func) bool
	// reaches marks same-package functions (including methods) whose
	// bodies transitively contain a target call.
	reaches map[*types.Func]bool
}

// NewReachability builds the package-level closure for pass. isTarget
// classifies the interesting callees (typically by receiver type and
// method name).
func NewReachability(pass *Pass, isTarget func(*types.Func) bool) *Reachability {
	r := &Reachability{
		pass:     pass,
		isTarget: isTarget,
		reaches:  make(map[*types.Func]bool),
	}

	// Collect each declared function's direct same-package callees and
	// whether it calls a target directly. Calls inside function literals
	// count toward the enclosing declaration: a callback's body runs on
	// behalf of its creator.
	type node struct {
		direct  bool
		callees []*types.Func
	}
	graph := make(map[*types.Func]node)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var n node
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := r.Callee(call)
				if callee == nil {
					return true
				}
				if r.isTarget(callee) {
					n.direct = true
				} else if callee.Pkg() == pass.Pkg {
					n.callees = append(n.callees, callee)
				}
				return true
			})
			graph[fn] = n
		}
	}

	// Propagate to a fixpoint over the package-local call graph.
	for fn, n := range graph {
		if n.direct {
			r.reaches[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, n := range graph {
			if r.reaches[fn] {
				continue
			}
			for _, callee := range n.callees {
				if r.reaches[callee] {
					r.reaches[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return r
}

// Callee resolves a call expression to the *types.Func it invokes, or
// nil for indirect calls (function values, builtins, conversions).
func (r *Reachability) Callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := r.pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := r.pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CallReaches reports whether one call reaches a target: the callee is
// a target, or a same-package function that transitively calls one.
func (r *Reachability) CallReaches(call *ast.CallExpr) bool {
	callee := r.Callee(call)
	if callee == nil {
		return false
	}
	return r.isTarget(callee) || r.reaches[callee]
}

// Reaches reports whether any call under n reaches a target.
func (r *Reachability) Reaches(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && r.CallReaches(call) {
			found = true
			return false
		}
		return true
	})
	return found
}
