package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one //lint: suppression comment: a verb naming the
// check being waived ("ungoverned") and the mandatory human-readable
// reason that follows it. Analyzers honor directives only on the line
// of the construct they guard or on the line immediately above it, so a
// waiver cannot silently cover more code than its author saw.
type Directive struct {
	// Verb is the word after "lint:" ("ungoverned").
	Verb string
	// Reason is the rest of the comment, trimmed. Analyzers must reject
	// directives with an empty reason: a waiver without a why is a
	// finding of its own.
	Reason string
	// Pos is the directive comment's position.
	Pos token.Pos
	// Line is the resolved source line of the comment.
	Line int
}

// directivePrefix introduces a suppression comment. The space-less form
// mirrors //go:build and //nolint: a directive is machine syntax, not
// prose.
const directivePrefix = "//lint:"

// Directives extracts every //lint: comment from file, keyed by source
// line. A directive shares its line with the construct it waives (or
// sits on the line above it — see Directive).
func Directives(fset *token.FileSet, file *ast.File) map[int]Directive {
	var out map[int]Directive
	for _, group := range file.Comments {
		for _, c := range group.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			verb, reason, _ := strings.Cut(text, " ")
			pos := fset.Position(c.Pos())
			if out == nil {
				out = make(map[int]Directive)
			}
			out[pos.Line] = Directive{
				Verb:   verb,
				Reason: strings.TrimSpace(reason),
				Pos:    c.Pos(),
				Line:   pos.Line,
			}
		}
	}
	return out
}

// DirectiveFor looks up a directive with the given verb covering the
// node: on the node's starting line or the line immediately above it.
func DirectiveFor(fset *token.FileSet, dirs map[int]Directive, n ast.Node, verb string) (Directive, bool) {
	if len(dirs) == 0 {
		return Directive{}, false
	}
	line := fset.Position(n.Pos()).Line
	for _, l := range [2]int{line, line - 1} {
		if d, ok := dirs[l]; ok && d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}
