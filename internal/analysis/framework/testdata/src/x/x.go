// Fixture for the framework's own harness test.
package x

func Good() {}

func Bad() {} // want "function named Bad"
