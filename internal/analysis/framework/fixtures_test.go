package framework

import (
	"go/ast"
	"strings"
	"testing"
)

func wantsFor(t *testing.T, src string) ([]*want, error) {
	t.Helper()
	fset, file := parseOne(t, src)
	return parseWants(fset, []*Package{{Files: []*ast.File{file}}})
}

func TestParseWants(t *testing.T) {
	wants, err := wantsFor(t, `package p

var a = 1 // want "first" `+"`second (pattern)`"+`
var b = 2 // unrelated comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) != 2 {
		t.Fatalf("parsed %d wants, want 2", len(wants))
	}
	if wants[0].raw != "first" || wants[1].raw != "second (pattern)" {
		t.Errorf("patterns = %q, %q", wants[0].raw, wants[1].raw)
	}
	if wants[0].line != 3 || wants[1].line != 3 {
		t.Errorf("lines = %d, %d, want both 3", wants[0].line, wants[1].line)
	}
}

// TestParseWantsBareComment: a `// want` with no pattern expects
// nothing and would pass vacuously whatever the analyzer does — the
// harness must fail loudly instead of silently blessing the fixture.
func TestParseWantsBareComment(t *testing.T) {
	for _, src := range []string{
		"package p\n\nvar a = 1 // want\n",
		"package p\n\nvar a = 1 // want   \n",
	} {
		_, err := wantsFor(t, src)
		if err == nil {
			t.Errorf("bare want comment in %q parsed without error", src)
			continue
		}
		if !strings.Contains(err.Error(), "carries no pattern") {
			t.Errorf("bare want error = %v, want 'carries no pattern'", err)
		}
	}
}

// TestParseWantsMalformed: unquoted, unterminated, and non-compiling
// patterns are harness bugs, not clean runs.
func TestParseWantsMalformed(t *testing.T) {
	cases := map[string]string{
		"unquoted":     "package p\n\nvar a = 1 // want pattern-without-quotes\n",
		"unterminated": "package p\n\nvar a = 1 // want \"no closing quote\n",
		"bad regexp":   "package p\n\nvar a = 1 // want \"(unclosed\"\n",
	}
	for name, src := range cases {
		if _, err := wantsFor(t, src); err == nil {
			t.Errorf("%s want comment parsed without error", name)
		}
	}
}
