package framework

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteSARIF(t *testing.T) {
	analyzers := []*Analyzer{
		{Name: "govloop", Doc: "loops must tick"},
		{Name: "nilrecv", Doc: "guard the receiver"},
	}
	fresh := []Diagnostic{diag("govloop", "/repo/a.go", 10, "loop has no tick")}
	baselined := []Diagnostic{diag("nilrecv", "/repo/b.go", 5, "deref before guard")}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, analyzers, fresh, baselined, "/repo"); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("version %q schema %q, want SARIF 2.1.0 with schema", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "relquerylint" || len(run.Tool.Driver.Rules) != 2 {
		t.Errorf("driver %q with %d rules, want relquerylint with 2", run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	levels := map[string]string{}
	for _, r := range run.Results {
		levels[r.RuleID] = r.Level
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %s: ruleIndex %d does not point at its rule", r.RuleID, r.RuleIndex)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("uriBaseId = %q, want %%SRCROOT%%", loc.ArtifactLocation.URIBaseID)
		}
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine == 0 {
			t.Errorf("result %s missing location: %+v", r.RuleID, loc)
		}
	}
	if levels["govloop"] != "error" || levels["nilrecv"] != "warning" {
		t.Errorf("levels = %v, want fresh=error baselined=warning", levels)
	}
}

// TestWriteSARIFUnknownRule: diagnostics from outside the suite still
// get a rule so the log stays self-contained.
func TestWriteSARIFUnknownRule(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSARIF(&buf, nil, []Diagnostic{diag("mystery", "/r/a.go", 1, "m")}, nil, "/r")
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs[0].Tool.Driver.Rules) != 1 || log.Runs[0].Tool.Driver.Rules[0].ID != "mystery" {
		t.Errorf("unknown analyzer did not get an auto-added rule: %+v", log.Runs[0].Tool.Driver.Rules)
	}
}
