package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked unit under analysis: a module package
// together with its internal test files, or an external _test package.
type Package struct {
	// Path is the import path ("_test"-suffixed for external test
	// packages).
	Path string
	// Files is the parsed syntax, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds type-checker results for Files.
	Info *types.Info
}

// A Program is a loaded set of packages sharing one FileSet, one export
// map and one deprecated-symbol registry.
type Program struct {
	Fset       *token.FileSet
	Pkgs       []*Package
	Deprecated *Deprecations

	exports map[string]string
	imp     types.Importer
}

// listPackage is the subset of `go list -json` fields the loader reads.
type listPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	Export       string
	ForTest      string
	Standard     bool
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// goList runs `go list -export -deps -test -json` in dir over patterns
// and decodes the stream.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := []string{
		"list", "-export", "-deps", "-test",
		"-json=Dir,ImportPath,Name,Export,ForTest,Standard,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// baseImportPath strips go list's test-variant suffix:
// "p [q.test]" -> "p".
func baseImportPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// buildExports maps import paths to compiled export-data files. For
// module packages with tests it prefers the test-augmented variant
// (ForTest == its own base path): external test packages then see their
// package's test helpers, and every other consumer sees a strict
// superset of the plain package. Recompiled-for-test variants of
// *dependent* packages (ForTest set to a different path) are skipped —
// keyed by base path they would clash across test binaries.
func buildExports(pkgs []listPackage) map[string]string {
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export == "" || strings.HasSuffix(p.Name, "_test") {
			continue
		}
		base := baseImportPath(p.ImportPath)
		switch {
		case p.ForTest == base:
			exports[base] = p.Export // augmented variant wins
		case p.ForTest == "":
			if _, ok := exports[base]; !ok {
				exports[base] = p.Export
			}
		}
	}
	return exports
}

// exportImporter resolves imports from compiled export data, falling
// back to on-demand `go list -export` for paths outside the initial
// closure, with an override map consulted first (used by fixture loads
// to wire source-checked fixture dependencies).
type exportImporter struct {
	dir       string
	gc        types.ImporterFrom
	exports   map[string]string
	overrides map[string]*types.Package
}

func newExportImporter(fset *token.FileSet, dir string, exports map[string]string) *exportImporter {
	ei := &exportImporter{dir: dir, exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", ei.lookup).(types.ImporterFrom)
	return ei
}

func (ei *exportImporter) lookup(path string) (io.ReadCloser, error) {
	if e, ok := ei.exports[path]; ok {
		return os.Open(e)
	}
	// Outside the preloaded closure (e.g. a fixture importing a stdlib
	// package the module does not use): ask the go command for just this
	// package's export data.
	listed, err := goList(ei.dir, []string{path})
	if err != nil {
		return nil, fmt.Errorf("no export data for %q: %w", path, err)
	}
	for _, p := range listed {
		if p.Export != "" && baseImportPath(p.ImportPath) == path && p.ForTest == "" {
			ei.exports[path] = p.Export
			return os.Open(p.Export)
		}
	}
	return nil, fmt.Errorf("no export data for %q", path)
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if p, ok := ei.overrides[path]; ok {
		return p, nil
	}
	return ei.gc.ImportFrom(path, ei.dir, 0)
}

// LoadPackages loads, parses and type-checks every module package matched
// by patterns (run from dir, which must be inside the module), including
// test files, and builds the module-wide deprecated-symbol registry.
// Dependencies resolve from compiled export data, so only the matched
// packages are type-checked from source.
func LoadPackages(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       token.NewFileSet(),
		Deprecated: &Deprecations{},
		exports:    buildExports(listed),
	}
	prog.imp = newExportImporter(prog.Fset, dir, prog.exports)

	for _, p := range listed {
		if p.Standard || p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		srcFiles := append(append([]string{}, p.GoFiles...), p.TestGoFiles...)
		if len(srcFiles) > 0 {
			pkg, err := prog.checkPackage(p.ImportPath, p.Dir, srcFiles)
			if err != nil {
				return nil, err
			}
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
		if len(p.XTestGoFiles) > 0 {
			pkg, err := prog.checkPackage(p.ImportPath+"_test", p.Dir, p.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
	}
	for _, pkg := range prog.Pkgs {
		collectDeprecations(prog.Deprecated, pkg.Types.Path(), pkg.Files)
	}
	return prog, nil
}

// checkPackage parses and type-checks one package from source.
func (prog *Program) checkPackage(path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: prog.imp}
	tpkg, err := conf.Check(path, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}

// Run applies each analyzer to each loaded package and returns the
// findings sorted by position.
func (prog *Program) Run(analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       prog.Fset,
				Path:       pkg.Path,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				Deprecated: prog.Deprecated,
				diags:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
