package framework

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF 2.1.0 output: the minimal static-analysis interchange subset —
// one run, one rule per analyzer, one result per diagnostic — that
// GitHub code scanning and SARIF viewers accept. Fresh findings carry
// level "error"; findings matched by the committed baseline are demoted
// to "warning" so the ratchet's debt stays visible without failing the
// build.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// RelPath returns path relative to root in slash form, or path
// unchanged when it does not sit under root. Baseline keys and SARIF
// artifact URIs both use this form so reports are stable across
// checkouts.
func RelPath(root, path string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || rel == ".." || len(rel) > 1 && rel[:3] == ".."+string(filepath.Separator) {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}

// WriteSARIF writes fresh and baselined diagnostics as one SARIF 2.1.0
// run for the given analyzer suite. File paths are reported relative to
// root with uriBaseId %SRCROOT%, the SARIF convention for
// repository-relative locations.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, fresh, baselined []Diagnostic, root string) error {
	driver := sarifDriver{Name: "relquerylint"}
	ruleIndex := make(map[string]int, len(analyzers))
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}

	results := make([]sarifResult, 0, len(fresh)+len(baselined))
	add := func(d Diagnostic, level string) {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			// Diagnostics from analyzers outside the suite still get a
			// rule so the log stays self-contained.
			idx = len(driver.Rules)
			ruleIndex[d.Analyzer] = idx
			driver.Rules = append(driver.Rules, sarifRule{
				ID:               d.Analyzer,
				ShortDescription: sarifMessage{Text: d.Analyzer},
			})
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     level,
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       RelPath(root, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	for _, d := range fresh {
		add(d, "error")
	}
	for _, d := range baselined {
		add(d, "warning")
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	})
}
