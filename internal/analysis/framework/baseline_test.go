package framework

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

func diag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := "/repo"
	diags := []Diagnostic{
		diag("govloop", "/repo/internal/join/join.go", 10, "loop has no tick"),
		diag("govloop", "/repo/internal/join/join.go", 20, "loop has no tick"),
		diag("nilrecv", "/repo/internal/obs/trace.go", 5, "deref before guard"),
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, diags, root); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Fatalf("round-trip Len = %d, want 3", b.Len())
	}

	// Everything recorded: all baselined, nothing fresh or stale.
	fresh, baselined, stale := b.Apply(diags, root)
	if len(fresh) != 0 || len(baselined) != 3 || stale != 0 {
		t.Errorf("Apply(all recorded) = %d fresh, %d baselined, %d stale; want 0/3/0",
			len(fresh), len(baselined), stale)
	}
}

// TestBaselineRatchet: the key is analyzer+file+message with duplicate
// counting — a second instance of a baselined finding is fresh, and a
// fixed finding leaves a stale entry.
func TestBaselineRatchet(t *testing.T) {
	root := "/repo"
	recorded := []Diagnostic{
		diag("govloop", "/repo/a.go", 10, "loop has no tick"),
		diag("nilrecv", "/repo/b.go", 5, "deref before guard"),
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, recorded, root); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// The nilrecv finding is fixed; the govloop one now fires twice
	// (lines moved — only the count matters) plus a brand-new finding.
	now := []Diagnostic{
		diag("govloop", "/repo/a.go", 11, "loop has no tick"),
		diag("govloop", "/repo/a.go", 30, "loop has no tick"),
		diag("spanfield", "/repo/c.go", 1, "literal duplicates table"),
	}
	fresh, baselined, stale := b.Apply(now, root)
	if len(baselined) != 1 {
		t.Errorf("baselined = %d, want 1 (count, not line, matches)", len(baselined))
	}
	if len(fresh) != 2 {
		t.Errorf("fresh = %d, want 2 (duplicate instance + new analyzer)", len(fresh))
	}
	if stale != 1 {
		t.Errorf("stale = %d, want 1 (the fixed nilrecv entry)", stale)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline("testdata/does-not-exist.baseline")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("missing file Len = %d, want 0", b.Len())
	}
	fresh, baselined, stale := b.Apply([]Diagnostic{diag("x", "/f.go", 1, "m")}, "/")
	if len(fresh) != 1 || len(baselined) != 0 || stale != 0 {
		t.Errorf("empty baseline Apply = %d/%d/%d, want 1/0/0", len(fresh), len(baselined), stale)
	}
}

// TestBaselineRejectsHeaderless: a stray file must not silently waive
// findings.
func TestBaselineRejectsHeaderless(t *testing.T) {
	for _, content := range []string{
		"",
		"govloop\ta.go\tmessage\n",
		"# some other file\n",
	} {
		if _, err := ReadBaseline(strings.NewReader(content)); err == nil {
			t.Errorf("ReadBaseline(%q) accepted a file without the version header", content)
		}
	}
}

func TestBaselineRejectsMalformedLine(t *testing.T) {
	content := "# relquerylint baseline v1\nnot-three-fields\n"
	if _, err := ReadBaseline(strings.NewReader(content)); err == nil {
		t.Error("ReadBaseline accepted a line without analyzer\\tfile\\tmessage fields")
	}
}

func TestRelPath(t *testing.T) {
	cases := []struct{ root, path, want string }{
		{"/repo", "/repo/internal/a.go", "internal/a.go"},
		{"/repo", "/elsewhere/b.go", "/elsewhere/b.go"},
		{"", "/abs/c.go", "/abs/c.go"},
	}
	for _, c := range cases {
		if got := RelPath(c.root, c.path); got != c.want {
			t.Errorf("RelPath(%q, %q) = %q, want %q", c.root, c.path, got, c.want)
		}
	}
}
