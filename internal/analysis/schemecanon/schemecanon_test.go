package schemecanon_test

import (
	"testing"

	"relquery/internal/analysis/framework"
	"relquery/internal/analysis/schemecanon"
)

func TestSchemeCanon(t *testing.T) {
	framework.RunFixtures(t, "testdata", schemecanon.Analyzer, "relation")
}
