// Package schemecanon flags construction or mutation of relation.Scheme
// values that bypasses the canonicalizing constructor NewScheme (and its
// wrappers MustScheme/SchemeOf).
//
// Invariant guarded: a Scheme is an ordered sequence of *distinct,
// non-empty* attributes with a position index kept consistent with the
// attribute list. Everything downstream leans on that: the AGM bound's
// fractional cover treats each attribute as one LP dimension (a
// duplicate would double-count and break the wcoj-vs-greedy peak
// comparison), the generic join's trie ordering assumes Pos is a
// bijection, and projection arithmetic indexes tuples by Pos. A scheme
// literal — or a write to Scheme.attrs/Scheme.pos outside NewScheme —
// can violate any of these silently; only NewScheme validates.
package schemecanon

import (
	"go/ast"
	"go/types"

	"relquery/internal/analysis/framework"
)

// Analyzer is the schemecanon pass.
var Analyzer = &framework.Analyzer{
	Name: "schemecanon",
	Doc: "flags relation.Scheme values built or mutated outside the " +
		"canonicalizing constructor NewScheme (use NewScheme/MustScheme/SchemeOf)",
	Run: run,
}

func isScheme(t types.Type) bool {
	return framework.IsNamed(t, "relation", "Scheme")
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		framework.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch v := n.(type) {
			case *ast.CompositeLit:
				checkLiteral(pass, v, stack)
			case *ast.AssignStmt:
				checkFieldWrite(pass, v, stack)
			}
			return true
		})
	}
	return nil
}

// inConstructor reports whether the node sits inside NewScheme — the one
// function allowed to assemble a Scheme by hand.
func inConstructor(stack []ast.Node) bool {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd.Name.Name == "NewScheme"
		}
	}
	return false
}

// checkLiteral flags non-empty Scheme composite literals. The zero
// literal Scheme{} is the documented empty scheme and stays legal.
func checkLiteral(pass *framework.Pass, cl *ast.CompositeLit, stack []ast.Node) {
	if len(cl.Elts) == 0 || !isScheme(pass.Info.TypeOf(cl)) || inConstructor(stack) {
		return
	}
	pass.Reportf(cl.Pos(),
		"Scheme built ad hoc: construct schemes with NewScheme/MustScheme/SchemeOf so duplicate and empty attributes are rejected and the position index stays consistent")
}

// checkFieldWrite flags writes to Scheme fields (s.attrs = ...,
// s.pos[a] = ...) outside NewScheme.
func checkFieldWrite(pass *framework.Pass, st *ast.AssignStmt, stack []ast.Node) {
	if inConstructor(stack) {
		return
	}
	for _, lhs := range st.Lhs {
		se := schemeFieldSelector(pass, lhs)
		if se == nil {
			continue
		}
		pass.Reportf(lhs.Pos(),
			"write to Scheme.%s outside NewScheme breaks scheme canonicalization; build a new Scheme with NewScheme/MustScheme instead",
			se.Sel.Name)
	}
}

// schemeFieldSelector unwraps an assignment target down to a selector on
// a Scheme field: s.attrs, s.pos[a], s.attrs[i].
func schemeFieldSelector(pass *framework.Pass, e ast.Expr) *ast.SelectorExpr {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[v]; ok && sel.Kind() == types.FieldVal && isScheme(sel.Recv()) {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}
