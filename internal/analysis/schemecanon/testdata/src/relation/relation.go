// Fixture for schemecanon: mirrors the shape of relquery's
// internal/relation.Scheme (the analyzer matches by package and type
// name, so the fixture package is named relation).
package relation

type Attribute string

type Scheme struct {
	attrs []Attribute
	pos   map[Attribute]int
}

func NewScheme(attrs ...Attribute) Scheme {
	s := Scheme{attrs: attrs, pos: make(map[Attribute]int, len(attrs))}
	for i, a := range attrs {
		s.pos[a] = i
	}
	return s
}

func Ad(a, b Attribute) Scheme {
	s := Scheme{attrs: []Attribute{a, b}} // want `Scheme built ad hoc`
	s.pos = map[Attribute]int{a: 0, b: 1} // want `write to Scheme\.pos outside NewScheme`
	s.pos[b] = 1                          // want `write to Scheme\.pos outside NewScheme`
	s.attrs[0] = b                        // want `write to Scheme\.attrs outside NewScheme`
	return s
}

func Empty() Scheme {
	// The zero literal is the documented empty scheme.
	return Scheme{}
}

func Canonical(a, b Attribute) Scheme {
	return NewScheme(a, b)
}
