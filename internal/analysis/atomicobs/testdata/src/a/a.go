// Fixture for atomicobs: a metrics struct in the obs.Metrics mold.
package a

import "sync/atomic"

type Metrics struct {
	joins atomic.Int64
	peak  atomic.Int64
	name  string
}

func (m *Metrics) Observe() {
	m.joins.Add(1)
	for {
		cur := m.peak.Load()
		if cur >= 1 || m.peak.CompareAndSwap(cur, 1) {
			return
		}
	}
}

func (m *Metrics) Joins() int64 {
	return m.joins.Load()
}

func Copy(m *Metrics) int64 {
	v := m.joins // want `non-atomic access to atomic counter field Metrics\.joins`
	return v.Load()
}

func Assign(m *Metrics) {
	m.peak = atomic.Int64{} // want `non-atomic access to atomic counter field Metrics\.peak`
}

func Rename(m *Metrics) string {
	// Non-atomic fields stay untouched by the pass.
	m.name = "joins"
	return m.name
}

func Fork(m *Metrics) Metrics {
	return Metrics{joins: m.joins} // want `non-atomic access to atomic counter field Metrics\.joins`
}
