package atomicobs_test

import (
	"testing"

	"relquery/internal/analysis/atomicobs"
	"relquery/internal/analysis/framework"
)

func TestAtomicObs(t *testing.T) {
	framework.RunFixtures(t, "testdata", atomicobs.Analyzer, "a")
}
