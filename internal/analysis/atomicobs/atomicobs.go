// Package atomicobs flags non-atomic access to struct fields of
// sync/atomic types.
//
// Invariant guarded: obs.Metrics is the one counter set shared by every
// worker of a parallel evaluation, and its race-freedom rests entirely
// on each field being touched only through its atomic methods
// (Add/Load/CompareAndSwap/...). Copying such a field, assigning to it,
// or comparing it reads or writes the value non-atomically: the racy
// read may tear, and — worse — a copied counter silently forks the
// metric, which is exactly the mutex-plus-exported-fields bug class the
// deprecated join.Stats had and obs.Metrics was introduced to end. The
// check applies to any struct in the module with atomic-typed fields,
// so future metric sets inherit the rule.
package atomicobs

import (
	"go/ast"
	"go/types"

	"relquery/internal/analysis/framework"
)

// Analyzer is the atomicobs pass.
var Analyzer = &framework.Analyzer{
	Name: "atomicobs",
	Doc: "flags reads or writes of sync/atomic-typed struct fields outside " +
		"their atomic methods; counters shared across workers must never be " +
		"copied, assigned or compared directly",
	Run: run,
}

// atomicTypeNames are the sync/atomic wrapper types whose fields the
// pass protects.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func isAtomicType(t types.Type) bool {
	named := framework.NamedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync/atomic" && atomicTypeNames[named.Obj().Name()]
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		framework.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, ok := pass.Info.Selections[se]
			if !ok || sel.Kind() != types.FieldVal || !isAtomicType(sel.Obj().Type()) {
				return true
			}
			if methodCallOn(se, stack) {
				return true
			}
			owner := "struct"
			if named := framework.NamedOf(sel.Recv()); named != nil {
				owner = named.Obj().Name()
			}
			pass.Reportf(se.Pos(),
				"non-atomic access to atomic counter field %s.%s: use its atomic methods (Add/Load/...) only",
				owner, sel.Obj().Name())
			return true
		})
	}
	return nil
}

// methodCallOn reports whether se appears as the receiver of an
// immediate method call: parent is a selector `se.M` and grandparent
// calls it.
func methodCallOn(se *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || parent.X != se {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	return ok && call.Fun == parent
}
