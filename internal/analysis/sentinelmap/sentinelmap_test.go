package sentinelmap_test

import (
	"testing"

	"relquery/internal/analysis/framework"
	"relquery/internal/analysis/sentinelmap"
)

func TestSentinelmap(t *testing.T) {
	framework.RunFixtures(t, "testdata", sentinelmap.Analyzer, "srv")
}

// TestSentinelmapClean is the negative fixture: a complete mapping with
// ordered writes produces no findings.
func TestSentinelmapClean(t *testing.T) {
	framework.RunFixtures(t, "testdata", sentinelmap.Analyzer, "srvok")
}
