// Fixture for sentinelmap: an HTTP package mapping governor sentinels,
// with two of the five missing and a WriteHeader-after-write bug.
package srv

import (
	"errors"
	"fmt"
	"net/http"

	"relquery/internal/governor" // want `sentinel governor\.ErrMemBudget has no HTTP status mapping` `sentinel governor\.ErrRowBudget has no HTTP status mapping`
)

// WriteErr maps three of the five sentinels; the budget pair falls
// through to the catch-all.
func WriteErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, governor.ErrAdmission):
		w.WriteHeader(http.StatusTooManyRequests)
	case errors.Is(err, governor.ErrDeadline):
		w.WriteHeader(http.StatusGatewayTimeout)
	case errors.Is(err, governor.ErrCanceled):
		w.WriteHeader(499)
	default:
		w.WriteHeader(http.StatusBadRequest)
	}
}

// Late writes the body first: the mapped status never leaves the
// process.
func Late(w http.ResponseWriter, err error) {
	fmt.Fprintf(w, "error: %v", err)
	w.WriteHeader(http.StatusInternalServerError) // want `WriteHeader after a body write on w has no effect`
}

// Ordered is the correct shape.
func Ordered(w http.ResponseWriter, err error) {
	w.WriteHeader(http.StatusInternalServerError)
	fmt.Fprintf(w, "error: %v", err)
}

// Branched status writes are out of the sibling-order rule's scope.
func Branched(w http.ResponseWriter, ok bool) {
	if !ok {
		fmt.Fprint(w, "degraded")
		return
	}
	w.WriteHeader(http.StatusOK)
}
