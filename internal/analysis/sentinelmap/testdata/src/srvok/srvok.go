// Negative fixture for sentinelmap: every sentinel mapped, every write
// ordered. No findings expected.
package srvok

import (
	"errors"
	"fmt"
	"net/http"

	"relquery/internal/governor"
)

func WriteErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, governor.ErrAdmission):
		w.WriteHeader(http.StatusTooManyRequests)
	case errors.Is(err, governor.ErrDeadline):
		w.WriteHeader(http.StatusGatewayTimeout)
	case errors.Is(err, governor.ErrRowBudget), errors.Is(err, governor.ErrMemBudget):
		w.WriteHeader(http.StatusRequestEntityTooLarge)
	case errors.Is(err, governor.ErrCanceled):
		w.WriteHeader(499)
	default:
		w.WriteHeader(http.StatusBadRequest)
	}
	fmt.Fprintf(w, "error: %v", err)
}
