// Package sentinelmap keeps the governor's sentinel set and the HTTP
// boundary in lockstep. The governor fails an evaluation with exactly
// one of its exported Err* sentinels, and relqueryd's contract is that
// each sentinel maps to a distinct, deliberate status code (429
// admission, 504 deadline, 413 budget, 499 cancel) — a sentinel the
// handler never mentions falls through to the generic catch-all, so
// adding ErrNewBudget to the governor silently turns a resource
// rejection into a 400 "bad query" and clients retry work that can
// never succeed. The analyzer activates in any package that imports
// both a governor package and net/http, and reports each sentinel the
// package never references.
//
// It also checks handler write ordering: a statement list that calls
// w.Write (or fmt.Fprintf(w, ...)) and then w.WriteHeader later in the
// same list sends the mapped status nowhere — net/http commits 200 on
// the first body write and logs "superfluous WriteHeader" at runtime,
// where nobody is watching.
package sentinelmap

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"relquery/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "sentinelmap",
	Doc:  "HTTP packages using the governor must map every governor.Err* sentinel and never WriteHeader after a body write",
	Run:  run,
}

func run(pass *framework.Pass) error {
	gov, http := importedPackages(pass.Pkg)
	if gov == nil || !http {
		return nil
	}
	files := nonTestFiles(pass)
	if mappingSite(pass, files, gov) {
		checkSentinels(pass, files, gov)
	}
	checkWriteOrder(pass)
	return nil
}

// nonTestFiles returns the pass's production files. Tests reference
// whichever sentinels they exercise; only shipped mapping code owes the
// full set.
func nonTestFiles(pass *framework.Pass) []*ast.File {
	var out []*ast.File
	for _, file := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			out = append(out, file)
		}
	}
	return out
}

// mappingSite reports whether the package contains a sentinel→status
// mapping function: a declared function with an http.ResponseWriter
// parameter whose body references a governor sentinel. Packages that
// merely configure the governor next to an HTTP server (cmd wiring)
// are not mapping sites and owe nothing.
func mappingSite(pass *framework.Pass, files []*ast.File, gov *types.Package) bool {
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasResponseWriterParam(pass, fd) {
				continue
			}
			if len(sentinelUses(pass, fd.Body, gov)) > 0 {
				return true
			}
		}
	}
	return false
}

func hasResponseWriterParam(pass *framework.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if framework.IsNamed(pass.Info.TypeOf(field.Type), "http", "ResponseWriter") {
			return true
		}
	}
	return false
}

// sentinelUses collects the governor Err* objects referenced under n.
func sentinelUses(pass *framework.Pass, n ast.Node, gov *types.Package) map[types.Object]bool {
	used := make(map[types.Object]bool)
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil && isSentinel(obj, gov) {
			used[obj] = true
		}
		return true
	})
	return used
}

func isSentinel(obj types.Object, gov *types.Package) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() == gov && v.Exported() && strings.HasPrefix(v.Name(), "Err")
}

// importedPackages finds the direct import named "governor" and whether
// net/http is imported.
func importedPackages(pkg *types.Package) (gov *types.Package, http bool) {
	for _, imp := range pkg.Imports() {
		switch {
		case imp.Name() == "governor":
			gov = imp
		case imp.Path() == "net/http":
			http = true
		}
	}
	return gov, http
}

// checkSentinels reports every exported Err* variable of gov that the
// package's production files never reference.
func checkSentinels(pass *framework.Pass, files []*ast.File, gov *types.Package) {
	used := make(map[types.Object]bool)
	for _, file := range files {
		for obj := range sentinelUses(pass, file, gov) {
			used[obj] = true
		}
	}
	var missing []string
	scope := gov.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if isSentinel(obj, gov) && !used[obj] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) == 0 {
		return
	}
	pos := governorImportPos(pass, gov)
	for _, name := range missing {
		pass.Reportf(pos, "sentinel %s.%s has no HTTP status mapping in this package: every governor sentinel must map to a deliberate status", gov.Name(), name)
	}
}

// governorImportPos anchors sentinel findings on the governor import
// spec — the package-level fact being violated — falling back to the
// first file.
func governorImportPos(pass *framework.Pass, gov *types.Package) token.Pos {
	want := strconv.Quote(gov.Path())
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			if imp.Path.Value == want {
				return imp.Pos()
			}
		}
	}
	return pass.Files[0].Pos()
}

// checkWriteOrder walks every statement list in the package and flags a
// direct w.WriteHeader call preceded, in the same list, by a direct
// body write on the same ResponseWriter. Only sibling statements are
// compared: writes inside earlier branches (which usually return) are
// out of scope, so the check has no false positives on exclusive paths.
func checkWriteOrder(pass *framework.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch x := n.(type) {
			case *ast.BlockStmt:
				list = x.List
			case *ast.CaseClause:
				list = x.Body
			case *ast.CommClause:
				list = x.Body
			default:
				return true
			}
			written := make(map[types.Object]bool)
			for _, stmt := range list {
				es, ok := stmt.(*ast.ExprStmt)
				if !ok {
					continue
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					continue
				}
				if w := bodyWriteTarget(pass, call); w != nil {
					written[w] = true
				} else if w := writeHeaderTarget(pass, call); w != nil && written[w] {
					pass.Reportf(call.Pos(), "WriteHeader after a body write on %s has no effect: net/http already committed status 200 on the first write", w.Name())
				}
			}
			return true
		})
	}
}

// responseWriterObj resolves e to a variable of type
// net/http.ResponseWriter, or nil.
func responseWriterObj(pass *framework.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil || !framework.IsNamed(obj.Type(), "http", "ResponseWriter") {
		return nil
	}
	return obj
}

// bodyWriteTarget returns the ResponseWriter a call writes a body to:
// w.Write(...), fmt.Fprint*/io.WriteString(w, ...).
func bodyWriteTarget(pass *framework.Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if sel.Sel.Name == "Write" {
		return responseWriterObj(pass, sel.X)
	}
	// fmt.Fprint / fmt.Fprintf / fmt.Fprintln / io.WriteString with the
	// writer as first argument.
	if pkg, ok := ast.Unparen(sel.X).(*ast.Ident); ok && len(call.Args) > 0 {
		if _, isPkg := pass.Info.Uses[pkg].(*types.PkgName); isPkg {
			switch sel.Sel.Name {
			case "Fprint", "Fprintf", "Fprintln", "WriteString":
				return responseWriterObj(pass, call.Args[0])
			}
		}
	}
	return nil
}

// writeHeaderTarget returns the ResponseWriter of a w.WriteHeader(...)
// call, or nil.
func writeHeaderTarget(pass *framework.Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" {
		return nil
	}
	return responseWriterObj(pass, sel.X)
}
