package nilrecv_test

import (
	"testing"

	"relquery/internal/analysis/framework"
	"relquery/internal/analysis/nilrecv"
)

func TestNilrecv(t *testing.T) {
	framework.RunFixtures(t, "testdata", nilrecv.Analyzer, "obs")
}

// TestNilrecvClean is the negative fixture: a fully guarded contract
// type produces no findings.
func TestNilrecvClean(t *testing.T) {
	framework.RunFixtures(t, "testdata", nilrecv.Analyzer, "fault")
}
