// Package nilrecv proves the nil-receiver no-op contract. The
// observability and governance layers promise that their handles cost
// nothing when absent: a nil *obs.Collector is "tracing off", a nil
// *governor.Governor is "ungoverned", a nil *fault.Script is "no
// faults". The engine relies on this by calling methods on possibly-nil
// handles unconditionally — there is no `if gov != nil` at any call
// site — so a single method that dereferences its receiver before the
// nil guard turns every ungoverned evaluation into a panic, and only on
// the configuration (tracing off) that the test suite exercises least.
//
// For every exported pointer-receiver method on a contract type the
// analyzer requires one of: a leading `if recv == nil` guard (the
// leftmost operand of an || chain counts, so `if t == nil ||
// len(t.Roots) == 0` is a guard) before any receiver dereference, or a
// body that never dereferences the receiver at all — delegation-only
// methods, which forward recv to other nil-tolerant code, are the
// contract's base case.
package nilrecv

import (
	"go/ast"
	"go/token"
	"go/types"

	"relquery/internal/analysis/framework"
)

// contract lists the nil-receiver no-op types, keyed by package name
// then type name. Matching is by name so fixtures modeling the real
// packages exercise the same logic.
var contract = map[string]map[string]bool{
	"obs": {
		"Collector": true,
		"Metrics":   true,
		"Registry":  true,
		"Histogram": true,
		"Span":      true,
		"Trace":     true,
	},
	"governor":  {"Governor": true},
	"fault":     {"Script": true},
	"telemetry": {"Server": true},
}

var Analyzer = &framework.Analyzer{
	Name: "nilrecv",
	Doc:  "exported methods on nil-receiver no-op types must guard recv == nil before any receiver dereference",
	Run:  run,
}

func run(pass *framework.Pass) error {
	typeNames := contract[pass.Pkg.Name()]
	if typeNames == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			recv := receiverObj(pass, fd, typeNames)
			if recv == nil {
				continue
			}
			checkMethod(pass, fd, recv)
		}
	}
	return nil
}

// receiverObj returns the receiver variable when fd is a
// pointer-receiver method on a contract type (and the receiver is
// named — a blank receiver cannot be dereferenced), nil otherwise.
func receiverObj(pass *framework.Pass, fd *ast.FuncDecl, typeNames map[string]bool) *types.Var {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	name := fd.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	obj, ok := pass.Info.Defs[name].(*types.Var)
	if !ok {
		return nil
	}
	ptr, ok := obj.Type().(*types.Pointer)
	if !ok {
		return nil
	}
	named := framework.NamedOf(ptr.Elem())
	if named == nil || !typeNames[named.Obj().Name()] {
		return nil
	}
	return obj
}

// checkMethod scans the method body's top-level statements in order: a
// nil guard ends the scan (everything after runs with recv proven
// non-nil), a receiver dereference before one is the finding.
func checkMethod(pass *framework.Pass, fd *ast.FuncDecl, recv *types.Var) {
	typeName := recv.Type().(*types.Pointer).Elem().(*types.Named).Obj().Name()
	for _, stmt := range fd.Body.List {
		if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Init == nil {
			if isNilCheck(pass, ifs.Cond, recv, token.EQL) {
				return // guarded: if recv == nil [|| ...] { ... }
			}
			if isNilCheck(pass, ifs.Cond, recv, token.NEQ) {
				// if recv != nil { ... }: the then-body is safe; only an
				// else branch (the nil path) can still dereference.
				if ifs.Else == nil {
					continue
				}
				stmt = ifs.Else
			}
		}
		if bad := firstDeref(pass, stmt, recv); bad != nil {
			pass.Reportf(bad.Pos(),
				"(*%s).%s dereferences the receiver before the nil guard; the nil-receiver no-op contract requires `if %s == nil` first",
				typeName, fd.Name.Name, recv.Name())
			return
		}
	}
}

// isNilCheck reports whether cond's leftmost &&/|| operand is
// `recv <op> nil`. Later operands of the chain may dereference the
// receiver freely: short-circuit evaluation has already excluded (for
// ||, committed for &&) the nil case when they run.
func isNilCheck(pass *framework.Pass, cond ast.Expr, recv *types.Var, op token.Token) bool {
	for {
		bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if bin.Op == token.LOR || bin.Op == token.LAND {
			cond = bin.X
			continue
		}
		if bin.Op != op {
			return false
		}
		x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
		return (isObj(pass, x, recv) && isNil(pass, y)) || (isNil(pass, x) && isObj(pass, y, recv))
	}
}

func isObj(pass *framework.Pass, e ast.Expr, obj *types.Var) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

func isNil(pass *framework.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := pass.Info.Uses[id].(*types.Nil)
	return isNilConst
}

// firstDeref returns the first expression under n that dereferences
// recv: a field selection, an explicit *recv, or a call to one of its
// value-receiver methods (which copies through the pointer).
// Pointer-receiver method calls and passing recv as an argument are
// delegation — the callee owns the nil check — and storing or
// comparing the pointer itself never touches the pointee.
func firstDeref(pass *framework.Pass, n ast.Node, recv *types.Var) ast.Node {
	var bad ast.Node
	ast.Inspect(n, func(x ast.Node) bool {
		if bad != nil {
			return false
		}
		switch y := x.(type) {
		case *ast.StarExpr:
			if isObj(pass, ast.Unparen(y.X), recv) {
				bad = y
				return false
			}
		case *ast.SelectorExpr:
			if !isObj(pass, ast.Unparen(y.X), recv) {
				return true
			}
			sel, ok := pass.Info.Selections[y]
			if !ok {
				return true
			}
			switch sel.Kind() {
			case types.FieldVal:
				bad = y
				return false
			case types.MethodVal:
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return true
				}
				sig := fn.Type().(*types.Signature)
				if sig.Recv() != nil {
					if _, ptr := sig.Recv().Type().(*types.Pointer); !ptr {
						bad = y // value-receiver method: implicit *recv copy
						return false
					}
				}
			}
		}
		return true
	})
	return bad
}
