// Fixture for nilrecv: a package modeling the observability layer's
// nil-receiver no-op contract types.
package obs

type Collector struct {
	spans []int
	on    bool
}

// Guarded is the contract's canonical shape.
func (c *Collector) Guarded() int {
	if c == nil {
		return 0
	}
	return len(c.spans)
}

// Unguarded dereferences straight away.
func (c *Collector) Unguarded() int {
	return len(c.spans) // want `\(\*Collector\)\.Unguarded dereferences the receiver before the nil guard`
}

// ChainGuard: later || operands may dereference freely.
func (c *Collector) ChainGuard() int {
	if c == nil || len(c.spans) == 0 {
		return 0
	}
	return len(c.spans)
}

// WrapperGuard: the non-nil branch owns every dereference.
func (c *Collector) WrapperGuard() {
	if c != nil {
		c.on = true
	}
}

// DerefAfterWrapper leaks past the wrapper: c may still be nil on the
// return statement.
func (c *Collector) DerefAfterWrapper() bool {
	if c != nil {
		c.on = true
	}
	return c.on // want `\(\*Collector\)\.DerefAfterWrapper dereferences the receiver before the nil guard`
}

// ElseDeref dereferences on the proven-nil path.
func (c *Collector) ElseDeref() int {
	if c != nil {
		return len(c.spans)
	} else {
		return len(c.spans) // want `\(\*Collector\)\.ElseDeref dereferences the receiver before the nil guard`
	}
}

// Delegate only forwards the receiver: the callee owns the nil check.
func (c *Collector) Delegate() {
	use(c)
}

// Chained delegates to a pointer-receiver method, which guards itself.
func (c *Collector) Chained() int {
	return c.Guarded()
}

// unguardedInternal is unexported: outside the contract (callers inside
// the package guard for it).
func (c *Collector) unguardedInternal() int {
	return len(c.spans)
}

func use(c *Collector) {}

type Trace struct {
	id int
}

// ID has a value receiver: calling it auto-dereferences the pointer.
func (t Trace) ID() int { return t.id }

// Describe trips the implicit dereference of the value-receiver call.
func (t *Trace) Describe() int {
	return t.ID() // want `\(\*Trace\)\.Describe dereferences the receiver before the nil guard`
}

type Registry struct {
	n int
}

// Blank receivers cannot dereference: exempt.
func (*Registry) Kind() string { return "registry" }
