// Negative fixture for nilrecv: a contract type whose every exported
// method honors the nil-receiver no-op contract. No findings expected.
package fault

type Script struct {
	rules []string
	count int
}

func (s *Script) Count() int {
	if s == nil {
		return 0
	}
	return s.count
}

func (s *Script) Fire() {
	if s == nil {
		return
	}
	s.count++
}

func (s *Script) Rules() []string {
	if s == nil {
		return nil
	}
	return s.rules
}
