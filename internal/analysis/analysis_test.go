package analysis_test

import (
	"testing"

	"relquery/internal/analysis"
)

// TestAll checks the suite registry: every analyzer present exactly
// once, fully populated.
func TestAll(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("analyzer %s registered twice", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{
		"atomicobs", "deprecatedban", "errwrapcheck", "govloop", "nilrecv",
		"schemecanon", "sentinelmap", "spanfield", "tuplealias",
	} {
		if !seen[name] {
			t.Errorf("analyzer %s missing from suite", name)
		}
	}
}
