// Package deprecatedban flags uses of symbols carrying a "Deprecated:"
// notice anywhere in the module.
//
// Invariant guarded: a deprecated shim (today: join.Stats and the
// relquery.JoinStats alias) stays compilable while callers migrate, but
// must not gain new callers — otherwise the shim can never be deleted
// and two half-equivalent APIs drift apart (join.Stats really did drift
// from obs.Metrics until PR 2 made it a delegating shim). Uses are
// allowed in exactly two places: inside the symbol's defining package
// (the shim's own implementation and tests), and inside declarations
// that are themselves deprecated (a deprecated alias may reference a
// deprecated type).
package deprecatedban

import (
	"go/ast"
	"go/types"
	"strings"

	"relquery/internal/analysis/framework"
)

// Analyzer is the deprecatedban pass.
var Analyzer = &framework.Analyzer{
	Name: "deprecatedban",
	Doc: "flags uses of // Deprecated: symbols outside their defining " +
		"package (and outside other deprecated declarations)",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		f := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.Ident:
				checkObject(pass, f, v, pass.Info.Uses[v])
			case *ast.SelectorExpr:
				checkFieldSelection(pass, f, v)
			case *ast.CompositeLit:
				checkCompositeFields(pass, f, v)
			}
			return true
		})
	}
	return nil
}

// report flags one use unless it sits inside a deprecated declaration.
func report(pass *framework.Pass, file *ast.File, n ast.Node, key, msg string) {
	if framework.DeclDeprecated(file, n.Pos()) {
		return
	}
	short := strings.TrimSpace(strings.TrimPrefix(msg, "Deprecated:"))
	if i := strings.Index(short, ". "); i > 0 {
		short = short[:i+1]
	}
	pass.Reportf(n.Pos(), "use of deprecated %s: %s", key, short)
}

// foreign reports whether obj belongs to another package — uses inside
// the defining package are the shim's own implementation and tests.
func foreign(pass *framework.Pass, pkg *types.Package) bool {
	if pkg == nil || pkg == pass.Pkg {
		return false
	}
	// An external test package may exercise its own package's shim:
	// relquery_test covering relquery's deprecated alias is not a new
	// caller.
	return pass.Pkg.Path() != pkg.Path()+"_test"
}

// checkObject handles named objects: package-level symbols and methods,
// reached through plain or selector-qualified identifiers.
func checkObject(pass *framework.Pass, file *ast.File, id *ast.Ident, obj types.Object) {
	if obj == nil || !foreign(pass, obj.Pkg()) {
		return
	}
	key := framework.SymbolKey(obj)
	if key == "" {
		return
	}
	if msg, ok := pass.Deprecated.Lookup(key); ok {
		report(pass, file, id, key, msg)
	}
}

// checkFieldSelection handles struct field reads/writes (x.Field).
func checkFieldSelection(pass *framework.Pass, file *ast.File, se *ast.SelectorExpr) {
	sel, ok := pass.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal || !foreign(pass, sel.Obj().Pkg()) {
		return
	}
	owner := framework.NamedOf(sel.Recv())
	if owner == nil {
		return
	}
	key := framework.FieldKey(owner, sel.Obj().Name())
	if msg, ok := pass.Deprecated.Lookup(key); ok {
		report(pass, file, se.Sel, key, msg)
	}
}

// checkCompositeFields handles keyed struct literals (T{Field: v}).
func checkCompositeFields(pass *framework.Pass, file *ast.File, cl *ast.CompositeLit) {
	named := framework.NamedOf(pass.Info.TypeOf(cl))
	if named == nil || !foreign(pass, named.Obj().Pkg()) {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		id, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		key := framework.FieldKey(named, id.Name)
		if msg, ok := pass.Deprecated.Lookup(key); ok {
			report(pass, file, id, key, msg)
		}
	}
}
