package deprecatedban_test

import (
	"testing"

	"relquery/internal/analysis/deprecatedban"
	"relquery/internal/analysis/framework"
)

func TestDeprecatedBan(t *testing.T) {
	framework.RunFixtures(t, "testdata", deprecatedban.Analyzer, "dep", "a")
}
