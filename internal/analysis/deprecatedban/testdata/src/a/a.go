// Fixture for deprecatedban: a consumer of package dep.
package a

import "dep"

var x dep.OldThing // want `use of deprecated dep\.OldThing: use NewThing instead\.`

func use() int {
	t := dep.Old() // want `use of deprecated dep\.Old: use Make instead\.`
	n := t.Count   // want `use of deprecated dep\.OldThing\.Count: use Size instead\.`
	n += t.Size
	m := dep.Make()
	return n + m.Size
}

// legacyBridge feeds old callers; it references the deprecated shape in
// its own deprecated body, which is exempt.
//
// Deprecated: use dep.Make directly.
func legacyBridge() dep.OldThing {
	return dep.OldThing{Count: 1}
}
