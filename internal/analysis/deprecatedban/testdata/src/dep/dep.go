// Fixture dependency for deprecatedban: a package exporting deprecated
// and current symbols side by side.
package dep

// OldThing is the legacy shape.
//
// Deprecated: use NewThing instead.
type OldThing struct {
	// Deprecated: use Size instead.
	Count int
	Size  int
}

// NewThing replaces OldThing.
type NewThing struct{ Size int }

// Old builds the legacy shape.
//
// Deprecated: use Make instead.
func Old() OldThing { return OldThing{} }

// Make builds the current shape.
func Make() NewThing { return NewThing{} }

// samePackage may keep using its own deprecated symbols: the shim's
// implementation and tests live here.
func samePackage() OldThing {
	t := Old()
	t.Count++
	return t
}
