package reduction

import (
	"strings"
	"testing"

	"relquery/internal/cnf"
	"relquery/internal/qbf"
)

func TestBuildRequiresAllVarsUsed(t *testing.T) {
	// Variable x6 occurs in no clause.
	g := cnf.MustNew(6, cnf.PaperExample().Clauses...)
	_, err := New(g)
	if err == nil || !strings.Contains(err.Error(), "Compact") {
		t.Fatalf("err = %v, want pointer to cnf.Compact", err)
	}
	compacted, _ := cnf.Compact(g)
	if _, err := New(compacted); err != nil {
		t.Fatalf("compacted formula rejected: %v", err)
	}
}

func TestTheorem2RejectsBadFormulas(t *testing.T) {
	short := cnf.MustNew(3, cnf.C(1, 2, 3))
	if _, err := Theorem2(short, cnf.PaperExample()); err == nil {
		t.Error("short G accepted")
	}
	if _, err := Theorem2(cnf.PaperExample(), short); err == nil {
		t.Error("short G' accepted")
	}
}

func TestTheorem2PadsEqualSizes(t *testing.T) {
	g := cnf.PaperExample()
	inst, err := Theorem2(g, g)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Beta >= inst.BetaPrime {
		t.Errorf("padding failed: β=%d β'=%d", inst.Beta, inst.BetaPrime)
	}
	if inst.D1 > inst.D2 || inst.Exact < inst.D1 || inst.Exact > inst.D2 {
		t.Errorf("window malformed: [%d,%d] exact=%d", inst.D1, inst.D2, inst.Exact)
	}
}

func TestTheorem4RejectsUnpreparedInstances(t *testing.T) {
	g := cnf.PaperExample()
	// R1 violation: X ⊆ V1.
	if _, err := Theorem4(&qbf.Instance{G: g, Universal: []int{1, 2}}); err == nil {
		t.Error("R1-violating instance accepted")
	}
	// Empty X.
	if _, err := Theorem4(&qbf.Instance{G: g}); err == nil {
		t.Error("empty X accepted")
	}
	// Unused variable in the matrix.
	g6 := cnf.MustNew(6, g.Clauses...)
	if _, err := Theorem4(&qbf.Instance{G: g6, Universal: []int{1, 5}}); err == nil {
		t.Error("unused-variable matrix accepted")
	}
}

func TestTheorem5RejectsR2Violations(t *testing.T) {
	g := cnf.PaperExample()
	// X ⊇ V1 = {1,2,3} but not contained in any clause: R2 fails, R1 holds.
	inst := &qbf.Instance{G: g, Universal: []int{1, 2, 3, 5}}
	if _, err := Theorem5(inst); err == nil {
		t.Error("R2-violating instance accepted by Theorem 5")
	}
	// Theorem 4 does not need R2 and must accept it.
	if _, err := Theorem4(inst); err != nil {
		t.Errorf("Theorem 4 rejected an R1-satisfying instance: %v", err)
	}
}

func TestPrepareQ3SATPropagatesValidation(t *testing.T) {
	if _, _, _, err := PrepareQ3SAT(&qbf.Instance{G: cnf.PaperExample(), Universal: []int{9}}); err == nil {
		t.Error("invalid universal variable accepted")
	}
}

func TestConjecturedResultShape(t *testing.T) {
	inst, err := Theorem1(cnf.PaperExample(), cnf.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	// r_{G,G'} = (π_Y(R_G) ∪ {u_G}) × π_{Y'}(R_{G'}) has (m+2)(m'+1) rows.
	want := (3 + 2) * (3 + 1)
	if inst.Conjectured.Len() != want {
		t.Errorf("|r| = %d, want %d", inst.Conjectured.Len(), want)
	}
	// The conjectured scheme is Y ∪ Y'.
	if !inst.Conjectured.Scheme().Equal(inst.Phi.Scheme()) {
		t.Errorf("conjectured scheme %v differs from φ target %v",
			inst.Conjectured.Scheme(), inst.Phi.Scheme())
	}
	// Database holds the single combined relation.
	db := inst.Database()
	if _, err := db.Get(inst.OperandName); err != nil {
		t.Error(err)
	}
	if inst.R.Len() != 22*22 {
		t.Errorf("|R_G * R_G'| = %d, want %d", inst.R.Len(), 22*22)
	}
}

func TestVariantDatabaseAndSchemes(t *testing.T) {
	c, err := NewVariant(cnf.PaperExample(), WithFalsifiersAndU)
	if err != nil {
		t.Fatal(err)
	}
	phi2, err := c.PhiGWithU()
	if err != nil {
		t.Fatal(err)
	}
	// Every clause projection of φ₂ includes U.
	if !strings.Contains(phi2.String(), "U](T)") {
		t.Errorf("φ₂ missing U in projections: %s", phi2)
	}
	// φ₂'s target includes U; φ₁'s does not.
	phi1, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	if phi1.Scheme().Has(c.UAttr()) {
		t.Error("φ₁ target includes U")
	}
	if !phi2.Scheme().Has(c.UAttr()) {
		t.Error("φ₂ target missing U")
	}
}
