package reduction

import (
	"strings"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/relation"
	"relquery/internal/sat"
	"relquery/internal/tableau"
)

// paperTable is the example relation R_G printed in full on p. 106 of the
// paper, for G = (x1+x2+x3)(~x2+x3+~x4)(~x3+~x4+~x5).
var paperTable = []string{
	//F1 F2 F3 X1 X2 X3 X4 X5 Y12 Y13 Y23 S
	"1 e e 0 0 1 e e x x e a",
	"1 e e 0 1 0 e e x x e a",
	"1 e e 0 1 1 e e x x e a",
	"1 e e 1 0 0 e e x x e a",
	"1 e e 1 0 1 e e x x e a",
	"1 e e 1 1 0 e e x x e a",
	"1 e e 1 1 1 e e x x e a",
	"e 1 e e 0 0 0 e x e x a",
	"e 1 e e 0 0 1 e x e x a",
	"e 1 e e 0 1 0 e x e x a",
	"e 1 e e 0 1 1 e x e x a",
	"e 1 e e 1 0 0 e x e x a",
	"e 1 e e 1 1 0 e x e x a",
	"e 1 e e 1 1 1 e x e x a",
	"e e 1 e e 0 0 0 e x x a",
	"e e 1 e e 0 0 1 e x x a",
	"e e 1 e e 0 1 0 e x x a",
	"e e 1 e e 0 1 1 e x x a",
	"e e 1 e e 1 0 0 e x x a",
	"e e 1 e e 1 0 1 e x x a",
	"e e 1 e e 1 1 0 e x x a",
	"1 1 1 e e e e e e e e b",
}

func paperConstruction(t *testing.T) *Construction {
	t.Helper()
	c, err := New(cnf.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPaperExampleTable(t *testing.T) {
	c := paperConstruction(t)
	wantScheme := "F1 F2 F3 X1 X2 X3 X4 X5 Y{1,2} Y{1,3} Y{2,3} S"
	if got := c.Scheme().String(); got != wantScheme {
		t.Fatalf("scheme = %q, want %q", got, wantScheme)
	}
	if c.R.Len() != len(paperTable) {
		t.Fatalf("|R_G| = %d, want %d", c.R.Len(), len(paperTable))
	}
	// Row-for-row identity, in the paper's printed order.
	for i, row := range paperTable {
		want := relation.TupleOf(strings.Fields(row)...)
		got := c.R.Tuple(i)
		if !got.Equal(want) {
			t.Errorf("row %d = %v, want %v", i+1, got, want)
		}
	}
}

func TestPaperExampleExpression(t *testing.T) {
	c := paperConstruction(t)
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	want := "pi[F1 F2 F3](T)" +
		" * pi[F1 X1 X2 X3 Y{1,2} Y{1,3} S](T)" +
		" * pi[F2 X2 X3 X4 Y{1,2} Y{2,3} S](T)" +
		" * pi[F3 X3 X4 X5 Y{1,3} Y{2,3} S](T)"
	if got := phi.String(); got != want {
		t.Errorf("φ_G =\n%q, want\n%q", got, want)
	}
}

func TestConstructionShapes(t *testing.T) {
	c := paperConstruction(t)
	if c.M() != 3 || c.N() != 5 {
		t.Fatalf("m=%d n=%d", c.M(), c.N())
	}
	if got := c.FScheme().String(); got != "F1 F2 F3" {
		t.Errorf("F = %q", got)
	}
	if got := c.XScheme().String(); got != "X1 X2 X3 X4 X5" {
		t.Errorf("X = %q", got)
	}
	if got := c.YScheme().String(); got != "Y{1,2} Y{1,3} Y{2,3}" {
		t.Errorf("Y = %q", got)
	}
	if c.YAttr(3, 1) != c.YAttr(1, 3) {
		t.Error("YAttr not normalized")
	}
	tj, err := c.TJScheme(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := tj.String(); got != "F2 X2 X3 X4 Y{1,2} Y{2,3} S" {
		t.Errorf("T_2 = %q", got)
	}
	if _, err := c.TJScheme(0); err == nil {
		t.Error("TJScheme(0) accepted")
	}
	if _, err := c.TJScheme(4); err == nil {
		t.Error("TJScheme(4) accepted")
	}
	if c.OperandName() != "T" {
		t.Errorf("operand = %q", c.OperandName())
	}
}

func TestBuildRejectsBadFormulas(t *testing.T) {
	if _, err := New(cnf.MustNew(3, cnf.C(1, 2, 3))); err == nil {
		t.Error("formula with 1 clause accepted")
	}
	bad := cnf.MustNew(3, cnf.C(1, 2, 3), cnf.C(1, 2, 3), cnf.C(1, 1, 2))
	if _, err := New(bad); err == nil {
		t.Error("repeated-variable clause accepted")
	}
	if _, err := NewSuffixed(cnf.PaperExample(), "a b"); err == nil {
		t.Error("whitespace suffix accepted")
	}
	if _, err := NewSuffixed(cnf.PaperExample(), "["); err == nil {
		t.Error("bracket suffix accepted")
	}
}

func TestSuffixedConstruction(t *testing.T) {
	c, err := NewSuffixed(cnf.PaperExample(), "'")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.FAttr(1); got != "F1'" {
		t.Errorf("FAttr = %q", got)
	}
	if got := c.YAttr(1, 2); got != "Y{1,2}'" {
		t.Errorf("YAttr = %q", got)
	}
	if c.OperandName() != "T'" {
		t.Errorf("operand = %q", c.OperandName())
	}
	// Suffixed and plain schemes are disjoint — required by Theorem 1.
	p := paperConstruction(t)
	if !c.Scheme().Disjoint(p.Scheme()) {
		t.Error("primed scheme not disjoint from plain scheme")
	}
}

func TestVariantShapes(t *testing.T) {
	g := cnf.PaperExample()
	cd, err := NewVariant(g, WithFalsifiers)
	if err != nil {
		t.Fatal(err)
	}
	if cd.R.Len() != 7*3+1+3 {
		t.Errorf("|R''_G| = %d, want 25", cd.R.Len())
	}
	// Same scheme as plain (no U).
	cp := paperConstruction(t)
	if !cd.Scheme().SameOrder(cp.Scheme()) {
		t.Error("R''_G scheme differs from R_G scheme")
	}
	cu, err := NewVariant(g, WithFalsifiersAndU)
	if err != nil {
		t.Fatal(err)
	}
	if cu.R.Len() != 25 {
		t.Errorf("|R'_G| = %d, want 25", cu.R.Len())
	}
	if !cu.Scheme().Has(cu.UAttr()) {
		t.Error("R'_G missing U column")
	}
	// Falsifier rows carry distinct U values c1..cm; all others carry c.
	uPos, _ := cu.Scheme().Pos(cu.UAttr())
	counts := make(map[relation.Value]int)
	cu.R.Each(func(tp relation.Tuple) bool {
		counts[tp[uPos]]++
		return true
	})
	if counts["c"] != 22 || counts["c1"] != 1 || counts["c2"] != 1 || counts["c3"] != 1 {
		t.Errorf("U column distribution = %v", counts)
	}
	if got := Plain.String(); got != "R_G" {
		t.Errorf("Plain.String = %q", got)
	}
	if got := WithFalsifiers.String(); got != "R''_G" {
		t.Errorf("WithFalsifiers.String = %q", got)
	}
	if got := WithFalsifiersAndU.String(); got != "R'_G" {
		t.Errorf("WithFalsifiersAndU.String = %q", got)
	}
}

func TestPhiGWithURequiresVariant(t *testing.T) {
	c := paperConstruction(t)
	if _, err := c.PhiGWithU(); err == nil {
		t.Error("PhiGWithU on plain variant accepted")
	}
}

func TestLemma1OnPaperExample(t *testing.T) {
	c := paperConstruction(t)
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	got, err := algebra.Eval(phi, c.Database())
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ExpectedPhiResult()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("Lemma 1 fails on the paper example:\n got %d tuples\nwant %d tuples", got.Len(), want.Len())
	}
	// |φ_G(R_G)| = 7m + 1 + a(G): the example has a(G) models.
	aG, err := sat.CountModels(c.G)
	if err != nil {
		t.Fatal(err)
	}
	if int64(got.Len()) != int64(7*c.M()+1)+aG {
		t.Errorf("|φ_G(R_G)| = %d, want %d + %d", got.Len(), 7*c.M()+1, aG)
	}
}

func TestUG(t *testing.T) {
	c := paperConstruction(t)
	ug := c.UG()
	if got := ug.Scheme.String(); got != "Y{1,2} Y{1,3} Y{2,3}" {
		t.Errorf("u_G scheme = %q", got)
	}
	for _, v := range ug.Vals {
		if v != "x" {
			t.Errorf("u_G value = %q, want x", v)
		}
	}
}

func TestRTildeMatchesModels(t *testing.T) {
	c := paperConstruction(t)
	rt, err := c.RTilde()
	if err != nil {
		t.Fatal(err)
	}
	aG, err := sat.CountModels(c.G)
	if err != nil {
		t.Fatal(err)
	}
	if int64(rt.Len()) != aG {
		t.Errorf("|R̃_G| = %d, want %d", rt.Len(), aG)
	}
	// R̃_G rows: every F = 1, every Y = x, S = a, X spelling a model.
	fPos, _ := c.Scheme().Pos(c.FAttr(1))
	sPos, _ := c.Scheme().Pos(c.SAttr())
	rt.Each(func(tp relation.Tuple) bool {
		if tp[fPos] != "1" || tp[sPos] != "a" {
			t.Errorf("malformed R̃ row %v", tp)
		}
		return true
	})
	// R̃_G is disjoint from R_G (its rows have all F = 1 and S = a).
	inter, err := rt.Intersect(c.R)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Len() != 0 {
		t.Errorf("R̃_G ∩ R_G has %d tuples", inter.Len())
	}
}

func TestXSubScheme(t *testing.T) {
	c := paperConstruction(t)
	x, err := c.XSubScheme([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.String(); got != "X2 X4" {
		t.Errorf("XSubScheme = %q", got)
	}
	if _, err := c.XSubScheme([]int{0}); err == nil {
		t.Error("variable 0 accepted")
	}
	if _, err := c.XSubScheme([]int{6}); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

func TestPhiGTableauIsMinimal(t *testing.T) {
	// The gadget expression carries no redundant operand occurrences: the
	// minimal tableau of φ_G keeps all m + 1 rows (π_F plus one per
	// clause). A collapse here would mean the reduction could be shrunk —
	// and the paper's counting arguments would break.
	c := paperConstruction(t)
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := tableau.New(phi)
	if err != nil {
		t.Fatal(err)
	}
	min, err := tb.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Rows) != c.M()+1 {
		t.Errorf("minimal tableau has %d rows, want %d", len(min.Rows), c.M()+1)
	}
}
