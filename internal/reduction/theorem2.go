package reduction

import (
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/relation"
)

// Theorem 2 reuses the Theorem 1 product gadget to make *cardinality*
// questions hard: with β = |π_Y(φ_G(R_G))| when G is unsatisfiable and
// β + 1 when satisfiable (Proposition 1), and likewise β′ for G′,
//
//	|φ_{G,G′}(R_{G,G′})| = |π_Y(φ_G(R_G))| · |π_{Y′}(φ_{G′}(R_{G′}))|
//
// takes one of four values {β,β+1}·{β′,β′+1}. After padding G′ so that
// β < β′, the value (β+1)·β′ is isolated by the window
// [β(β′+1)+1, β(β′+1)+β′] and pins down "G satisfiable and G′
// unsatisfiable".
//
// Note on β: the paper's text sets β = 7m+1 = |R_G| but applies it to the
// Y-projected count. By Proposition 1 the projected count is m + 1 (each
// clause's seven rows share one Y-pattern, plus ν) or m + 2 when
// satisfiable; the counting argument is generic in β, so this package uses
// the projected value β = m + 1. The unprojected count |φ_G(R_G)| =
// 7m + 1 + a(G) is what Theorem 3 uses (see CountingIdentity).
type Theorem2Instance struct {
	// Inner is the Theorem 1 product instance after padding.
	Inner *Theorem1Instance
	// Beta and BetaPrime are |π_Y(R_G)| = m+1 and |π_{Y′}(R_{G′})| = m′+1,
	// with padding guaranteeing Beta < BetaPrime.
	Beta, BetaPrime int
	// D1 and D2 bound the window: G satisfiable and G′ unsatisfiable iff
	// D1 ≤ |Phi(R)| ≤ D2. D1 = β(β′+1)+1, D2 = β(β′+1)+β′.
	D1, D2 int
	// Exact is the single isolated value (β+1)·β′, usable as the paper's
	// d₁ = d₂ variant.
	Exact int
}

// Theorem2 builds the cardinality instance, padding gPrime with fresh
// trivially-satisfiable clauses until m < m′ (the paper's "β < β′").
func Theorem2(g, gPrime *cnf.Formula) (*Theorem2Instance, error) {
	if err := g.CheckReductionForm(); err != nil {
		return nil, fmt.Errorf("reduction: theorem 2, G: %w", err)
	}
	if err := gPrime.CheckReductionForm(); err != nil {
		return nil, fmt.Errorf("reduction: theorem 2, G': %w", err)
	}
	if g.NumClauses() >= gPrime.NumClauses() {
		padded, err := cnf.PadWithFreshClauses(gPrime, g.NumClauses()-gPrime.NumClauses()+1)
		if err != nil {
			return nil, err
		}
		gPrime = padded
	}
	inner, err := Theorem1(g, gPrime)
	if err != nil {
		return nil, err
	}
	beta := g.NumClauses() + 1
	betaPrime := gPrime.NumClauses() + 1
	return &Theorem2Instance{
		Inner:     inner,
		Beta:      beta,
		BetaPrime: betaPrime,
		D1:        beta*(betaPrime+1) + 1,
		D2:        beta*(betaPrime+1) + betaPrime,
		Exact:     (beta + 1) * betaPrime,
	}, nil
}

// Phi returns the instance's expression π_{Y Y′}(φ_G ∗ φ_{G′}).
func (inst *Theorem2Instance) Phi() algebra.Expr { return inst.Inner.Phi }

// Database returns the single-relation database.
func (inst *Theorem2Instance) Database() relation.Database { return inst.Inner.Database() }

// SingleCardinality is the one-formula form used for the NP- and co-NP-
// hardness halves of Theorem 2: with φ = π_Y(φ_G) and β = m + 1,
//
//	G satisfiable    ⇔  β + 1 ≤ |φ(R_G)|,
//	G unsatisfiable  ⇔  |φ(R_G)| ≤ β.
type SingleCardinality struct {
	// C is the underlying construction.
	C *Construction
	// Phi is π_Y(φ_G).
	Phi algebra.Expr
	// Beta is m + 1.
	Beta int
}

// NewSingleCardinality builds the one-formula cardinality gadget.
func NewSingleCardinality(g *cnf.Formula) (*SingleCardinality, error) {
	c, err := New(g)
	if err != nil {
		return nil, err
	}
	phi, err := c.PhiG()
	if err != nil {
		return nil, err
	}
	py, err := algebra.NewProject(c.YScheme(), phi)
	if err != nil {
		return nil, err
	}
	return &SingleCardinality{C: c, Phi: py, Beta: c.M() + 1}, nil
}

// CountingIdentity reports Theorem 3's identity for a construction:
// a(G) = |φ_G(R_G)| − 7m − 1. It relies on every variable occurring in
// some clause, which New enforces.
func CountingIdentity(c *Construction, phiResultSize int) int64 {
	return int64(phiResultSize - 7*c.M() - 1)
}
