package reduction

import (
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/relation"
)

// phiOver builds φ_G's shape — π_F(op) ∗ ∏*_j π_{T_j}(op) — against an
// arbitrary operand, used when the gadget is embedded in a larger relation
// (Theorem 1 joins the primed and unprimed gadgets into one relation over
// T ∪ T′).
func (c *Construction) phiOver(op *algebra.Operand) (algebra.Expr, error) {
	args := make([]algebra.Expr, 0, c.M()+1)
	pf, err := algebra.NewProject(c.FScheme(), op)
	if err != nil {
		return nil, err
	}
	args = append(args, pf)
	for j := 1; j <= c.M(); j++ {
		tj, err := c.TJScheme(j)
		if err != nil {
			return nil, err
		}
		pj, err := algebra.NewProject(tj, op)
		if err != nil {
			return nil, err
		}
		args = append(args, pj)
	}
	return algebra.NewJoin(args...)
}

// Theorem1Instance is the Dᵖ-completeness reduction of Theorem 1: from a
// pair (G, G′) of 3CNF formulas, a single relation R = R_G ∗ R_{G′} over
// the disjoint scheme T ∪ T′, the expression
// φ = π_{Y Y′}(φ_G ∗ φ_{G′}), and the conjectured result
// r = (π_Y(R_G) ∪ {u_G}) ∗ π_{Y′}(R_{G′}), such that
//
//	φ(R) = r  ⇔  G is satisfiable and G′ is unsatisfiable.
type Theorem1Instance struct {
	// G is the unprimed construction (satisfiability side) and GPrime the
	// primed one (unsatisfiability side).
	G, GPrime *Construction
	// OperandName names the single combined relation.
	OperandName string
	// R is R_{G,G′} = R_G ∗ R_{G′} (a cross product: the schemes are
	// disjoint).
	R *relation.Relation
	// Phi is φ_{G,G′} = π_{Y Y′}(φ_G ∗ φ_{G′}) over the combined operand.
	Phi algebra.Expr
	// Conjectured is r_{G,G′}; the Dᵖ question is whether Phi(R) equals it.
	Conjectured *relation.Relation
}

// Theorem1 builds the instance for the pair (g, gPrime). Both formulas
// must be in the paper's reduction form.
func Theorem1(g, gPrime *cnf.Formula) (*Theorem1Instance, error) {
	cg, err := New(g)
	if err != nil {
		return nil, fmt.Errorf("reduction: theorem 1, G: %w", err)
	}
	cgp, err := NewSuffixed(gPrime, "'")
	if err != nil {
		return nil, fmt.Errorf("reduction: theorem 1, G': %w", err)
	}

	combined, err := cg.R.Join(cgp.R)
	if err != nil {
		return nil, err
	}
	opName := "TT'"
	op, err := algebra.NewOperand(opName, combined.Scheme())
	if err != nil {
		return nil, err
	}

	phiG, err := cg.phiOver(op)
	if err != nil {
		return nil, err
	}
	phiGP, err := cgp.phiOver(op)
	if err != nil {
		return nil, err
	}
	inner, err := algebra.NewJoin(phiG, phiGP)
	if err != nil {
		return nil, err
	}
	yy := cg.YScheme().Union(cgp.YScheme())
	phi, err := algebra.NewProject(yy, inner)
	if err != nil {
		return nil, err
	}

	conjectured, err := conjecturedResult(cg, cgp)
	if err != nil {
		return nil, err
	}
	return &Theorem1Instance{
		G:           cg,
		GPrime:      cgp,
		OperandName: opName,
		R:           combined,
		Phi:         phi,
		Conjectured: conjectured,
	}, nil
}

// conjecturedResult computes r_{G,G′} = (π_Y(R_G) ∪ {u_G}) ∗ π_{Y′}(R_{G′}).
func conjecturedResult(cg, cgp *Construction) (*relation.Relation, error) {
	py, err := cg.R.Project(cg.YScheme())
	if err != nil {
		return nil, err
	}
	ug := cg.UG()
	aligned, err := ug.Project(py.Scheme())
	if err != nil {
		return nil, err
	}
	if _, err := py.Add(aligned.Vals); err != nil {
		return nil, err
	}
	pyPrime, err := cgp.R.Project(cgp.YScheme())
	if err != nil {
		return nil, err
	}
	return py.Join(pyPrime)
}

// Database returns the single-relation database of the instance.
func (inst *Theorem1Instance) Database() relation.Database {
	return relation.Single(inst.OperandName, inst.R)
}
