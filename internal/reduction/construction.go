// Package reduction implements the constructions of Cosmadakis (1983):
// the relation R_G and project–join expression φ_G built from a 3CNF
// formula G (Section 3), the satisfying-assignment relation R̃_G and tuple
// u_G of Lemma 1 and Proposition 1, the product instance of Theorems 1–2,
// and the variant relations R'_G (with per-clause falsifier rows and a U
// column) and R”_G of Theorems 4–5.
//
// Layout of R_G for G = F₁…F_m over variables x₁…x_n (paper p. 105):
//
//	columns  F1 … Fm | X1 … Xn | Y{1,2} … Y{1,m} … Y{m-1,m} | S
//
// For each clause F_j there are seven rows μ_jk, one per satisfying local
// assignment h_jk of the clause: F_j=1 and F_l=e (l≠j); X_{j_i}=h_jk(x_{j_i})
// and X_l=e for other variables; Y{i,l}=x when j ∈ {i,l}, else e; S=a.
// A final row ν has every F_j=1, S=b and e elsewhere. |R_G| = 7m + 1.
//
// The expression is φ_G = π_F(T) ∗ ∏*_j π_{T_j}(T) with
// T_j = F_j X_{j1} X_{j2} X_{j3} Y{j,1} … Y{j,m} S.
//
// Lemma 1: φ_G(R_G) = R_G ∪ R̃_G, where R̃_G holds one row per satisfying
// assignment of G (all F=1, all Y=x, S=a, X columns spelling the
// assignment). Every complexity result in the paper is a corollary.
package reduction

import (
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/relation"
	"relquery/internal/sat"
)

// Value symbols used by the construction. The paper remarks (p. 106) that
// reusing the same symbol in different columns is irrelevant, since values
// are only compared within a column.
const (
	val0 = relation.Value("0")
	val1 = relation.Value("1")
	valE = relation.Value("e")
	valX = relation.Value("x")
	valA = relation.Value("a")
	valB = relation.Value("b")
	valC = relation.Value("c") // U column of non-falsifier rows (Theorem 4)
)

// Variant selects which relation the construction builds.
type Variant int

const (
	// Plain is the paper's R_G: 7 satisfier rows per clause plus ν.
	Plain Variant = iota
	// WithFalsifiers is the paper's R''_G (Theorem 5): R_G plus one
	// falsifier row ξ_j per clause.
	WithFalsifiers
	// WithFalsifiersAndU is the paper's R'_G (Theorem 4): R''_G plus a U
	// column where ξ_j has the clause-specific value c_j and every other
	// row has c.
	WithFalsifiersAndU
)

// String returns the variant's paper name.
func (v Variant) String() string {
	switch v {
	case Plain:
		return "R_G"
	case WithFalsifiers:
		return "R''_G"
	case WithFalsifiersAndU:
		return "R'_G"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Construction packages a formula G with its gadget relation and the
// attribute bookkeeping needed to form the paper's expressions. Build it
// with New or NewVariant.
type Construction struct {
	// G is the source formula, in the paper's reduction form (3CNF, at
	// least three clauses, distinct variables per clause).
	G *cnf.Formula
	// Variant records which relation was built.
	Variant Variant
	// R is the constructed relation (R_G, R'_G or R''_G).
	R *relation.Relation

	suffix  string
	scheme  relation.Scheme
	operand string
}

// New builds the paper's R_G for f.
func New(f *cnf.Formula) (*Construction, error) {
	return build(f, Plain, "")
}

// NewVariant builds the chosen relation variant for f.
func NewVariant(f *cnf.Formula, v Variant) (*Construction, error) {
	return build(f, v, "")
}

// NewSuffixed builds R_G with every attribute (and the operand name)
// carrying the given suffix, e.g. "'" for the primed copy that Theorem 1
// joins with the unprimed one. Suffixes must not contain whitespace or the
// expression delimiters []()*.
func NewSuffixed(f *cnf.Formula, suffix string) (*Construction, error) {
	return build(f, Plain, suffix)
}

func build(f *cnf.Formula, v Variant, suffix string) (*Construction, error) {
	if err := f.CheckReductionForm(); err != nil {
		return nil, err
	}
	if !f.AllVarsUsed() {
		return nil, fmt.Errorf("reduction: every variable must occur in some clause (the paper defines x1..xn as the variables appearing in G); apply cnf.Compact first")
	}
	for _, r := range suffix {
		switch r {
		case ' ', '\t', '\n', '\r', '[', ']', '(', ')', '*':
			return nil, fmt.Errorf("reduction: suffix %q contains a reserved character", suffix)
		}
	}
	c := &Construction{G: f, Variant: v, suffix: suffix, operand: "T" + suffix}
	var err error
	c.scheme, err = c.buildScheme()
	if err != nil {
		return nil, err
	}
	c.R, err = c.buildRelation()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// M returns the clause count m.
func (c *Construction) M() int { return c.G.NumClauses() }

// N returns the variable count n.
func (c *Construction) N() int { return c.G.NumVars }

// OperandName returns the name ("T", possibly suffixed) under which R is
// installed in databases and referenced by the expressions.
func (c *Construction) OperandName() string { return c.operand }

// Scheme returns the full relation scheme T of R.
func (c *Construction) Scheme() relation.Scheme { return c.scheme }

// Database returns the single-relation database {OperandName: R}.
func (c *Construction) Database() relation.Database {
	return relation.Single(c.operand, c.R)
}

// FAttr returns the clause attribute F_j (1 ≤ j ≤ m).
func (c *Construction) FAttr(j int) relation.Attribute {
	return relation.Attribute(fmt.Sprintf("F%d%s", j, c.suffix))
}

// XAttr returns the variable attribute X_i (1 ≤ i ≤ n).
func (c *Construction) XAttr(i int) relation.Attribute {
	return relation.Attribute(fmt.Sprintf("X%d%s", i, c.suffix))
}

// YAttr returns the pair attribute Y{i,l}; the order of i and l is
// immaterial (the pair is normalized to i < l).
func (c *Construction) YAttr(i, l int) relation.Attribute {
	if i > l {
		i, l = l, i
	}
	return relation.Attribute(fmt.Sprintf("Y{%d,%d}%s", i, l, c.suffix))
}

// SAttr returns the S attribute.
func (c *Construction) SAttr() relation.Attribute {
	return relation.Attribute("S" + c.suffix)
}

// UAttr returns the U attribute of the WithFalsifiersAndU variant.
func (c *Construction) UAttr() relation.Attribute {
	return relation.Attribute("U" + c.suffix)
}

// FScheme returns the paper's F = F₁ … F_m.
func (c *Construction) FScheme() relation.Scheme {
	attrs := make([]relation.Attribute, c.M())
	for j := 1; j <= c.M(); j++ {
		attrs[j-1] = c.FAttr(j)
	}
	return relation.MustScheme(attrs...)
}

// XScheme returns X₁ … X_n.
func (c *Construction) XScheme() relation.Scheme {
	attrs := make([]relation.Attribute, c.N())
	for i := 1; i <= c.N(); i++ {
		attrs[i-1] = c.XAttr(i)
	}
	return relation.MustScheme(attrs...)
}

// XSubScheme returns the scheme {X_i : i ∈ vars}, in the given order.
func (c *Construction) XSubScheme(vars []int) (relation.Scheme, error) {
	attrs := make([]relation.Attribute, len(vars))
	for k, v := range vars {
		if v < 1 || v > c.N() {
			return relation.Scheme{}, fmt.Errorf("reduction: variable x%d out of range 1..%d", v, c.N())
		}
		attrs[k] = c.XAttr(v)
	}
	return relation.NewScheme(attrs...)
}

// YScheme returns the paper's Y = Y{1,2} … Y{1,m} … Y{m−1,m}, ordered
// lexicographically by pair, matching the example table.
func (c *Construction) YScheme() relation.Scheme {
	m := c.M()
	attrs := make([]relation.Attribute, 0, m*(m-1)/2)
	for i := 1; i < m; i++ {
		for l := i + 1; l <= m; l++ {
			attrs = append(attrs, c.YAttr(i, l))
		}
	}
	return relation.MustScheme(attrs...)
}

// TJScheme returns the paper's T_j = F_j X_{j1} X_{j2} X_{j3}
// Y{j,1} … Y{j,m} S (Y pairs normalized, listed with the partner index
// increasing).
func (c *Construction) TJScheme(j int) (relation.Scheme, error) {
	if j < 1 || j > c.M() {
		return relation.Scheme{}, fmt.Errorf("reduction: clause index %d out of range 1..%d", j, c.M())
	}
	clause := c.G.Clauses[j-1]
	attrs := []relation.Attribute{c.FAttr(j)}
	for _, l := range clause {
		attrs = append(attrs, c.XAttr(l.Var()))
	}
	for l := 1; l <= c.M(); l++ {
		if l != j {
			attrs = append(attrs, c.YAttr(j, l))
		}
	}
	attrs = append(attrs, c.SAttr())
	return relation.NewScheme(attrs...)
}

// buildScheme assembles T = F X Y S (plus U for the Theorem 4 variant).
func (c *Construction) buildScheme() (relation.Scheme, error) {
	attrs := c.FScheme().Attrs()
	attrs = append(attrs, c.XScheme().Attrs()...)
	attrs = append(attrs, c.YScheme().Attrs()...)
	attrs = append(attrs, c.SAttr())
	if c.Variant == WithFalsifiersAndU {
		attrs = append(attrs, c.UAttr())
	}
	return relation.NewScheme(attrs...)
}

// buildRelation constructs the tuples of R_G (plus variant extras), in the
// paper's row order: clause 1's satisfiers, clause 2's, …, then ν, then
// (for variants) ξ₁ … ξ_m.
func (c *Construction) buildRelation() (*relation.Relation, error) {
	r := relation.New(c.scheme)
	m := c.M()
	for j := 1; j <= m; j++ {
		sats, err := cnf.SatisfyingLocal(c.G.Clauses[j-1])
		if err != nil {
			return nil, err
		}
		for _, la := range sats {
			if _, err := r.Add(c.clauseRow(j, la, valC)); err != nil {
				return nil, err
			}
		}
	}
	if _, err := r.Add(c.nuRow()); err != nil {
		return nil, err
	}
	if c.Variant == WithFalsifiers || c.Variant == WithFalsifiersAndU {
		for j := 1; j <= m; j++ {
			la, err := cnf.FalsifyingLocal(c.G.Clauses[j-1])
			if err != nil {
				return nil, err
			}
			u := relation.Value(fmt.Sprintf("c%d", j))
			if _, err := r.Add(c.clauseRow(j, la, u)); err != nil {
				return nil, err
			}
		}
	}
	want := 7*m + 1
	if c.Variant != Plain {
		want += m
	}
	if r.Len() != want {
		return nil, fmt.Errorf("reduction: internal error: built %d rows, want %d", r.Len(), want)
	}
	return r, nil
}

// clauseRow builds the row for clause j carrying the local assignment la
// (a μ_jk when la satisfies the clause, the ξ_j when it falsifies it).
// uValue fills the U column when present.
func (c *Construction) clauseRow(j int, la cnf.LocalAssignment, uValue relation.Value) relation.Tuple {
	t := make(relation.Tuple, c.scheme.Len())
	for i := range t {
		t[i] = valE
	}
	c.set(t, c.FAttr(j), val1)
	for k, v := range la.Vars {
		if la.Values[k] {
			c.set(t, c.XAttr(v), val1)
		} else {
			c.set(t, c.XAttr(v), val0)
		}
	}
	for l := 1; l <= c.M(); l++ {
		if l != j {
			c.set(t, c.YAttr(j, l), valX)
		}
	}
	c.set(t, c.SAttr(), valA)
	if c.Variant == WithFalsifiersAndU {
		c.set(t, c.UAttr(), uValue)
	}
	return t
}

// nuRow builds ν: every F_j = 1, S = b, e elsewhere (U = c when present).
func (c *Construction) nuRow() relation.Tuple {
	t := make(relation.Tuple, c.scheme.Len())
	for i := range t {
		t[i] = valE
	}
	for j := 1; j <= c.M(); j++ {
		c.set(t, c.FAttr(j), val1)
	}
	c.set(t, c.SAttr(), valB)
	if c.Variant == WithFalsifiersAndU {
		c.set(t, c.UAttr(), valC)
	}
	return t
}

func (c *Construction) set(t relation.Tuple, a relation.Attribute, v relation.Value) {
	i, ok := c.scheme.Pos(a)
	if !ok {
		panic(fmt.Sprintf("reduction: attribute %q not in scheme %v", a, c.scheme))
	}
	t[i] = v
}

// assignmentRow builds the Lemma 1 tuple for a full satisfying assignment:
// every F_j = 1, every Y = x, S = a, X_i spelling the assignment, and (for
// variants) U = c.
func (c *Construction) assignmentRow(a cnf.Assignment) relation.Tuple {
	t := make(relation.Tuple, c.scheme.Len())
	for i := range t {
		t[i] = valE
	}
	for j := 1; j <= c.M(); j++ {
		c.set(t, c.FAttr(j), val1)
	}
	for i := 1; i <= c.N(); i++ {
		if a.Value(i) {
			c.set(t, c.XAttr(i), val1)
		} else {
			c.set(t, c.XAttr(i), val0)
		}
	}
	for i := 1; i < c.M(); i++ {
		for l := i + 1; l <= c.M(); l++ {
			c.set(t, c.YAttr(i, l), valX)
		}
	}
	c.set(t, c.SAttr(), valA)
	if c.Variant == WithFalsifiersAndU {
		c.set(t, c.UAttr(), valC)
	}
	return t
}

// PhiG returns the paper's expression φ_G = π_F(T) ∗ ∏*_j π_{T_j}(T),
// referencing the construction's operand name. For variant relations the
// projections still omit U — this is exactly the paper's φ₁ of Theorem 4
// (which "considers G as a tautology" on R'_G).
func (c *Construction) PhiG() (algebra.Expr, error) {
	op, err := algebra.NewOperand(c.operand, c.scheme)
	if err != nil {
		return nil, err
	}
	return c.phiOver(op)
}

// PhiGWithU returns Theorem 4's φ₂: like φ_G but every clause projection
// also keeps the U column, so falsifier rows cannot combine across
// clauses. Only valid for the WithFalsifiersAndU variant.
func (c *Construction) PhiGWithU() (algebra.Expr, error) {
	if c.Variant != WithFalsifiersAndU {
		return nil, fmt.Errorf("reduction: PhiGWithU requires the %v variant, have %v", WithFalsifiersAndU, c.Variant)
	}
	op, err := algebra.NewOperand(c.operand, c.scheme)
	if err != nil {
		return nil, err
	}
	args := make([]algebra.Expr, 0, c.M()+1)
	pf, err := algebra.NewProject(c.FScheme(), op)
	if err != nil {
		return nil, err
	}
	args = append(args, pf)
	for j := 1; j <= c.M(); j++ {
		tj, err := c.TJScheme(j)
		if err != nil {
			return nil, err
		}
		withU, err := relation.NewScheme(append(tj.Attrs(), c.UAttr())...)
		if err != nil {
			return nil, err
		}
		pj, err := algebra.NewProject(withU, op)
		if err != nil {
			return nil, err
		}
		args = append(args, pj)
	}
	return algebra.NewJoin(args...)
}

// RTilde computes Lemma 1's R̃_G by enumerating the satisfying assignments
// of G with the SAT substrate: one row per model, over the construction's
// scheme.
func (c *Construction) RTilde() (*relation.Relation, error) {
	out := relation.New(c.scheme)
	err := sat.Enumerate(c.G, func(a cnf.Assignment) bool {
		out.MustAdd(c.assignmentRow(a))
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExpectedPhiResult returns Lemma 1's right-hand side R_G ∪ R̃_G. For the
// Plain variant this is exactly φ_G(R_G); verifying that equality is
// experiment E1.
func (c *Construction) ExpectedPhiResult() (*relation.Relation, error) {
	rt, err := c.RTilde()
	if err != nil {
		return nil, err
	}
	return c.R.Union(rt)
}

// UG returns Proposition 1's tuple u_G over the Y scheme: every Y{i,l} = x.
// G is satisfiable iff u_G ∈ π_Y(φ_G(R_G)).
func (c *Construction) UG() relation.NamedTuple {
	y := c.YScheme()
	vals := make(relation.Tuple, y.Len())
	for i := range vals {
		vals[i] = valX
	}
	return relation.NamedTuple{Scheme: y, Vals: vals}
}
