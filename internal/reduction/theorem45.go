package reduction

import (
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/qbf"
	"relquery/internal/relation"
)

// Theorems 4 and 5 reduce Q-3SAT (∀X ∃X′ G) to query comparison over a
// fixed relation (two expressions) and to relation comparison under a
// fixed query (two relations), respectively. Both require Proposition 4's
// technical restrictions; see ValidateQ3SAT.

// ValidateQ3SAT checks that the instance meets the preconditions of the
// Theorem 4/5 constructions:
//
//   - the matrix is in the paper's reduction form,
//   - X is nonempty,
//   - every variable occurs in some clause (the paper's formulas mention
//     all their variables by definition; a variable in no clause would
//     leave its X column identically e and break Lemma 1's accounting),
//   - restriction R1 (X ⊄ V_j for all j), and, when needR2 is set,
//   - restriction R2 (V_j ⊄ X for all j).
//
// qbf.Enforce, plus dropping vacuous universal variables, establishes all
// of these without changing the instance's truth value.
func ValidateQ3SAT(inst *qbf.Instance, needR2 bool) error {
	if err := inst.G.CheckReductionForm(); err != nil {
		return err
	}
	if err := inst.Validate(); err != nil {
		return err
	}
	if len(inst.Universal) == 0 {
		return fmt.Errorf("reduction: Q-3SAT instance has empty universal set X")
	}
	if !inst.G.AllVarsUsed() {
		return fmt.Errorf("reduction: every variable must occur in some clause; apply PrepareQ3SAT or cnf.Compact first")
	}
	r1, r2, err := qbf.CheckRestrictions(inst)
	if err != nil {
		return err
	}
	if !r1 {
		return fmt.Errorf("reduction: restriction R1 violated: X is contained in some clause's variables (apply qbf.Enforce first)")
	}
	if needR2 && !r2 {
		return fmt.Errorf("reduction: restriction R2 violated: some clause's variables are all universal (apply qbf.Enforce first)")
	}
	return nil
}

// PrepareQ3SAT brings an arbitrary Q-3SAT instance into reduction form:
// it compacts away variables that occur in no clause (quantifying over a
// variable the matrix never mentions is vacuous, so dropping it — whether
// universal or existential — preserves the truth value) and applies
// Proposition 4's transformation. The returned instance satisfies
// ValidateQ3SAT with needR2; when the preprocessing already decides the
// answer (R2 violation ⇒ false), decided is true.
func PrepareQ3SAT(inst *qbf.Instance) (prepared *qbf.Instance, decided, holds bool, err error) {
	if err := inst.Validate(); err != nil {
		return nil, false, false, err
	}
	compacted, remap := cnf.Compact(inst.G)
	kept := make([]int, 0, len(inst.Universal))
	for _, v := range inst.Universal {
		if nv, ok := remap[v]; ok {
			kept = append(kept, nv)
		}
	}
	res, err := qbf.Enforce(&qbf.Instance{G: compacted, Universal: kept})
	if err != nil {
		return nil, false, false, err
	}
	if res.Decided {
		return nil, true, res.Holds, nil
	}
	if err := ValidateQ3SAT(res.Instance, true); err != nil {
		return nil, false, false, fmt.Errorf("reduction: internal error: prepared instance invalid: %w", err)
	}
	return res.Instance, false, false, nil
}

// Theorem4Instance is the Π₂ᵖ reduction to query comparison over a fixed
// relation: one relation R′_G and two expressions Q₁ = π_X(φ₁),
// Q₂ = π_X(φ₂) such that
//
//	∀X ∃X′ G  ⇔  Q₁(R′_G) ⊆ Q₂(R′_G)  ⇔  Q₁(R′_G) = Q₂(R′_G).
//
// φ₁ ignores the U column (so the falsifier rows make every assignment
// look satisfying — "G as a tautology"); φ₂ carries U through every clause
// projection (so falsifier rows, each with a unique U value, can never
// join across clauses — it "picks out the satisfying truth assignments").
// The reverse containment Q₂(R′_G) ⊆ Q₁(R′_G) holds unconditionally.
type Theorem4Instance struct {
	// C is the WithFalsifiersAndU construction over R′_G.
	C *Construction
	// Q1 and Q2 are the two queries compared over the fixed relation.
	Q1, Q2 algebra.Expr
	// X is the universal-variable scheme both queries project onto.
	X relation.Scheme
}

// Theorem4 builds the instance. The Q-3SAT instance must satisfy
// ValidateQ3SAT without R2 (use PrepareQ3SAT when unsure).
func Theorem4(inst *qbf.Instance) (*Theorem4Instance, error) {
	if err := ValidateQ3SAT(inst, false); err != nil {
		return nil, err
	}
	c, err := NewVariant(inst.G, WithFalsifiersAndU)
	if err != nil {
		return nil, err
	}
	x, err := c.XSubScheme(sortedCopy(inst.Universal))
	if err != nil {
		return nil, err
	}
	phi1, err := c.PhiG()
	if err != nil {
		return nil, err
	}
	phi2, err := c.PhiGWithU()
	if err != nil {
		return nil, err
	}
	q1, err := algebra.NewProject(x, phi1)
	if err != nil {
		return nil, err
	}
	q2, err := algebra.NewProject(x, phi2)
	if err != nil {
		return nil, err
	}
	return &Theorem4Instance{C: c, Q1: q1, Q2: q2, X: x}, nil
}

// Database returns the instance's single-relation database.
func (inst *Theorem4Instance) Database() relation.Database { return inst.C.Database() }

// Theorem5Instance is the Π₂ᵖ reduction to relation comparison under a
// fixed query: two relations R″_G (with falsifier rows) and R_G over the
// same scheme, and one query Q = π_X(φ_G), such that
//
//	∀X ∃X′ G  ⇔  Q(R″_G) ⊆ Q(R_G)  ⇔  Q(R″_G) = Q(R_G).
//
// The reverse containment Q(R_G) ⊆ Q(R″_G) holds unconditionally.
type Theorem5Instance struct {
	// RDouble is the construction of R″_G and RPlain that of R_G; both
	// share the scheme T and operand name, so Q applies to either.
	RDouble, RPlain *Construction
	// Q is the fixed query π_X(φ_G).
	Q algebra.Expr
	// X is the universal-variable scheme.
	X relation.Scheme
}

// Theorem5 builds the instance. The Q-3SAT instance must satisfy
// ValidateQ3SAT including R2 (use PrepareQ3SAT when unsure).
func Theorem5(inst *qbf.Instance) (*Theorem5Instance, error) {
	if err := ValidateQ3SAT(inst, true); err != nil {
		return nil, err
	}
	cd, err := NewVariant(inst.G, WithFalsifiers)
	if err != nil {
		return nil, err
	}
	cp, err := New(inst.G)
	if err != nil {
		return nil, err
	}
	x, err := cp.XSubScheme(sortedCopy(inst.Universal))
	if err != nil {
		return nil, err
	}
	phi, err := cp.PhiG()
	if err != nil {
		return nil, err
	}
	q, err := algebra.NewProject(x, phi)
	if err != nil {
		return nil, err
	}
	return &Theorem5Instance{RDouble: cd, RPlain: cp, Q: q, X: x}, nil
}

// Databases returns the two single-relation databases (R″_G first).
func (inst *Theorem5Instance) Databases() (dbDouble, dbPlain relation.Database) {
	return inst.RDouble.Database(), inst.RPlain.Database()
}

func sortedCopy(vars []int) []int {
	out := append([]int(nil), vars...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
