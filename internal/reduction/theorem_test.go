package reduction

import (
	"math/rand"
	"testing"

	"relquery/internal/algebra"
	"relquery/internal/cnf"
	"relquery/internal/qbf"
	"relquery/internal/relation"
	"relquery/internal/sat"
	"relquery/internal/tableau"
)

// evalExpr materializes an expression via the tableau engine, whose space
// stays bounded by input and output — the paper's gadgets are exactly the
// queries whose intermediate joins explode.
func evalExpr(t *testing.T, e algebra.Expr, db relation.Database) *relation.Relation {
	t.Helper()
	tb, err := tableau.New(e)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tb.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// evalPhi materializes φ_G(R_G) for a construction.
func evalPhi(t *testing.T, c *Construction) int {
	t.Helper()
	phi, err := c.PhiG()
	if err != nil {
		t.Fatal(err)
	}
	got := evalExpr(t, phi, c.Database())
	want, err := c.ExpectedPhiResult()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("Lemma 1 violated for %v (|got|=%d |want|=%d)", c.G, got.Len(), want.Len())
	}
	return got.Len()
}

func TestLemma1RandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(4)
		m := 3 + rng.Intn(4)
		g, err := cnf.Random3CNF(rng, n, m)
		if err != nil {
			t.Fatal(err)
		}
		g, _ = cnf.Compact(g)
		c, err := New(g)
		if err != nil {
			t.Fatal(err)
		}
		size := evalPhi(t, c)
		// Theorem 3 identity: a(G) = |φ_G(R_G)| − 7m − 1.
		aG, err := sat.CountModels(g)
		if err != nil {
			t.Fatal(err)
		}
		if CountingIdentity(c, size) != aG {
			t.Errorf("counting identity: got %d, a(G)=%d for %v", CountingIdentity(c, size), aG, g)
		}
	}
}

func TestProposition1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(g *cnf.Formula, wantSat bool) {
		t.Helper()
		c, err := New(g)
		if err != nil {
			t.Fatal(err)
		}
		phi, err := c.PhiG()
		if err != nil {
			t.Fatal(err)
		}
		py, err := algebra.NewProject(c.YScheme(), phi)
		if err != nil {
			t.Fatal(err)
		}
		got := evalExpr(t, py, c.Database())
		base, err := c.R.Project(c.YScheme())
		if err != nil {
			t.Fatal(err)
		}
		if wantSat {
			withU := base.Clone()
			withU.MustAdd(c.UG().Vals)
			if !got.Equal(withU) {
				t.Errorf("Prop 1 (sat): π_Y φ_G(R_G) ≠ π_Y(R_G) ∪ {u_G} for %v", g)
			}
		} else {
			if !got.Equal(base) {
				t.Errorf("Prop 1 (unsat): π_Y φ_G(R_G) ≠ π_Y(R_G) for %v", g)
			}
		}
		// β = m + 1 reading of the projected cardinality.
		wantLen := c.M() + 1
		if wantSat {
			wantLen++
		}
		if got.Len() != wantLen {
			t.Errorf("|π_Y φ_G(R_G)| = %d, want %d", got.Len(), wantLen)
		}
	}
	for trial := 0; trial < 4; trial++ {
		gSat, _, err := cnf.PlantedSatisfiable3CNF(rng, 5, 4+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		gSat, _ = cnf.Compact(gSat)
		check(gSat, true)
		gUnsat, err := cnf.Unsatisfiable3CNF(rng, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		gUnsat, _ = cnf.Compact(gUnsat)
		check(gUnsat, false)
	}
}

// fourCombos returns formula pairs covering (sat,sat), (sat,unsat),
// (unsat,sat), (unsat,unsat).
func fourCombos(t *testing.T, rng *rand.Rand) [][2]*cnf.Formula {
	t.Helper()
	mk := func(satisfiable bool) *cnf.Formula {
		if satisfiable {
			g, _, err := cnf.PlantedSatisfiable3CNF(rng, 4, 3)
			if err != nil {
				t.Fatal(err)
			}
			g, _ = cnf.Compact(g)
			return g
		}
		g, err := cnf.Unsatisfiable3CNF(rng, 3, 8)
		if err != nil {
			t.Fatal(err)
		}
		g, _ = cnf.Compact(g)
		return g
	}
	return [][2]*cnf.Formula{
		{mk(true), mk(true)},
		{mk(true), mk(false)},
		{mk(false), mk(true)},
		{mk(false), mk(false)},
	}
}

func TestTheorem1Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 3; trial++ {
		for comboIdx, pair := range fourCombos(t, rng) {
			g, gp := pair[0], pair[1]
			inst, err := Theorem1(g, gp)
			if err != nil {
				t.Fatal(err)
			}
			got := evalExpr(t, inst.Phi, inst.Database())
			satG, _, err := sat.Satisfiable(g)
			if err != nil {
				t.Fatal(err)
			}
			satGP, _, err := sat.Satisfiable(gp)
			if err != nil {
				t.Fatal(err)
			}
			wantEqual := satG && !satGP
			if got.Equal(inst.Conjectured) != wantEqual {
				t.Errorf("combo %d: φ(R) = r is %v, want %v (sat(G)=%v sat(G')=%v)",
					comboIdx, got.Equal(inst.Conjectured), wantEqual, satG, satGP)
			}
		}
	}
}

func TestTheorem1RejectsBadInput(t *testing.T) {
	short := cnf.MustNew(3, cnf.C(1, 2, 3))
	if _, err := Theorem1(short, cnf.PaperExample()); err == nil {
		t.Error("short G accepted")
	}
	if _, err := Theorem1(cnf.PaperExample(), short); err == nil {
		t.Error("short G' accepted")
	}
}

func TestTheorem2Window(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2; trial++ {
		for comboIdx, pair := range fourCombos(t, rng) {
			g, gp := pair[0], pair[1]
			inst, err := Theorem2(g, gp)
			if err != nil {
				t.Fatal(err)
			}
			if inst.Beta >= inst.BetaPrime {
				t.Fatalf("padding failed: β=%d β'=%d", inst.Beta, inst.BetaPrime)
			}
			n := evalExpr(t, inst.Phi(), inst.Database()).Len()
			satG, _, err := sat.Satisfiable(g)
			if err != nil {
				t.Fatal(err)
			}
			satGP, _, err := sat.Satisfiable(gp)
			if err != nil {
				t.Fatal(err)
			}
			want := satG && !satGP
			inWindow := inst.D1 <= n && n <= inst.D2
			if inWindow != want {
				t.Errorf("combo %d: |φ(R)|=%d window=[%d,%d] in=%v want=%v",
					comboIdx, n, inst.D1, inst.D2, inWindow, want)
			}
			if (n == inst.Exact) != want {
				t.Errorf("combo %d: |φ(R)|=%d exact=%d", comboIdx, n, inst.Exact)
			}
		}
	}
}

func TestSingleCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	gSat, _, err := cnf.PlantedSatisfiable3CNF(rng, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	gSat, _ = cnf.Compact(gSat)
	gUnsat, err := cnf.Unsatisfiable3CNF(rng, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	gUnsat, _ = cnf.Compact(gUnsat)
	for _, tc := range []struct {
		g    *cnf.Formula
		want bool // satisfiable
	}{{gSat, true}, {gUnsat, false}} {
		sc, err := NewSingleCardinality(tc.g)
		if err != nil {
			t.Fatal(err)
		}
		got := evalExpr(t, sc.Phi, sc.C.Database())
		// sat ⇔ β+1 ≤ |φ(R)|; unsat ⇔ |φ(R)| ≤ β.
		if (got.Len() >= sc.Beta+1) != tc.want {
			t.Errorf("|π_Y φ_G| = %d, β = %d, sat = %v", got.Len(), sc.Beta, tc.want)
		}
	}
}

// randomPreparedQ3SAT draws a Q-3SAT instance and brings it into reduction
// form with PrepareQ3SAT; decided instances are skipped by returning nil.
func randomPreparedQ3SAT(t *testing.T, rng *rand.Rand) (*qbf.Instance, bool) {
	t.Helper()
	n := 3 + rng.Intn(3)
	m := 3 + rng.Intn(3)
	g, err := cnf.Random3CNF(rng, n, m)
	if err != nil {
		t.Fatal(err)
	}
	r := 1 + rng.Intn(2)
	universal := rng.Perm(n)[:r]
	for i := range universal {
		universal[i]++
	}
	raw := &qbf.Instance{G: g, Universal: universal}
	prepared, decided, holds, err := PrepareQ3SAT(raw)
	if err != nil {
		t.Fatal(err)
	}
	if decided {
		// Cross-check the trivial answer, then skip.
		res, err := qbf.Solve(raw)
		if err != nil {
			t.Fatal(err)
		}
		if res.Holds != holds {
			t.Fatalf("PrepareQ3SAT trivial answer %v disagrees with solver %v", holds, res.Holds)
		}
		return nil, false
	}
	return prepared, true
}

func TestTheorem4Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tested := 0
	for trial := 0; trial < 12 && tested < 6; trial++ {
		inst, ok := randomPreparedQ3SAT(t, rng)
		if !ok {
			continue
		}
		tested++
		th4, err := Theorem4(inst)
		if err != nil {
			t.Fatal(err)
		}
		db := th4.Database()
		r1 := evalExpr(t, th4.Q1, db)
		r2 := evalExpr(t, th4.Q2, db)
		// Q2(R) ⊆ Q1(R) always.
		sub, err := r2.SubsetOf(r1)
		if err != nil || !sub {
			t.Errorf("unconditional containment Q2 ⊆ Q1 failed: %v %v", sub, err)
		}
		want, err := qbf.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		gotContained, err := r1.SubsetOf(r2)
		if err != nil {
			t.Fatal(err)
		}
		if gotContained != want.Holds {
			t.Errorf("Theorem 4: Q1 ⊆ Q2 is %v, ∀∃ is %v for %v", gotContained, want.Holds, inst)
		}
		if r1.Equal(r2) != want.Holds {
			t.Errorf("Theorem 4: Q1 = Q2 is %v, ∀∃ is %v", r1.Equal(r2), want.Holds)
		}
	}
	if tested == 0 {
		t.Fatal("no undecided instances generated")
	}
}

func TestTheorem5Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tested := 0
	for trial := 0; trial < 12 && tested < 6; trial++ {
		inst, ok := randomPreparedQ3SAT(t, rng)
		if !ok {
			continue
		}
		tested++
		th5, err := Theorem5(inst)
		if err != nil {
			t.Fatal(err)
		}
		dbD, dbP := th5.Databases()
		rD := evalExpr(t, th5.Q, dbD)
		rP := evalExpr(t, th5.Q, dbP)
		// Q(R_G) ⊆ Q(R''_G) always (R_G ⊆ R''_G).
		sub, err := rP.SubsetOf(rD)
		if err != nil || !sub {
			t.Errorf("unconditional containment failed: %v %v", sub, err)
		}
		want, err := qbf.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		gotContained, err := rD.SubsetOf(rP)
		if err != nil {
			t.Fatal(err)
		}
		if gotContained != want.Holds {
			t.Errorf("Theorem 5: Q(R'') ⊆ Q(R) is %v, ∀∃ is %v for %v", gotContained, want.Holds, inst)
		}
		if rD.Equal(rP) != want.Holds {
			t.Errorf("Theorem 5: equality is %v, ∀∃ is %v", rD.Equal(rP), want.Holds)
		}
	}
	if tested == 0 {
		t.Fatal("no undecided instances generated")
	}
}

func TestValidateQ3SAT(t *testing.T) {
	g := cnf.PaperExample()
	// Empty X.
	if err := ValidateQ3SAT(&qbf.Instance{G: g}, false); err == nil {
		t.Error("empty X accepted")
	}
	// X contained in a clause (R1 violation): X = {1,2} ⊆ V1.
	if err := ValidateQ3SAT(&qbf.Instance{G: g, Universal: []int{1, 2}}, false); err == nil {
		t.Error("R1 violation accepted")
	}
	// R2 violation: X ⊇ V1 = {1,2,3}, with extra var to avoid R1.
	if err := ValidateQ3SAT(&qbf.Instance{G: g, Universal: []int{1, 2, 3, 5}}, true); err == nil {
		t.Error("R2 violation accepted when needR2")
	}
	// Same X fine when R2 not needed.
	if err := ValidateQ3SAT(&qbf.Instance{G: g, Universal: []int{1, 2, 3, 5}}, false); err != nil {
		t.Errorf("R1-satisfying instance rejected: %v", err)
	}
	// Vacuous universal variable.
	g6 := cnf.MustNew(6, g.Clauses...)
	if err := ValidateQ3SAT(&qbf.Instance{G: g6, Universal: []int{1, 6}}, false); err == nil {
		t.Error("vacuous universal variable accepted")
	}
}

func TestPrepareQ3SATDropsVacuous(t *testing.T) {
	g := cnf.MustNew(6, cnf.PaperExample().Clauses...)
	inst := &qbf.Instance{G: g, Universal: []int{1, 6}} // x6 vacuous
	prepared, decided, _, err := PrepareQ3SAT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if decided {
		t.Fatal("unexpectedly decided")
	}
	if !prepared.G.AllVarsUsed() {
		t.Error("prepared matrix still has vacuous variables")
	}
	// Original X was {x1, vacuous x6}; prepared X = {x1} plus the two
	// Proposition 4 fresh variables.
	if len(prepared.Universal) != 3 {
		t.Errorf("prepared X = %v, want 3 variables", prepared.Universal)
	}
	if err := ValidateQ3SAT(prepared, true); err != nil {
		t.Errorf("prepared instance invalid: %v", err)
	}
	// Preparation preserves the answer.
	want, err := qbf.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := qbf.Solve(prepared)
	if err != nil {
		t.Fatal(err)
	}
	if got.Holds != want.Holds {
		t.Errorf("preparation changed the answer: %v -> %v", want.Holds, got.Holds)
	}
}
