package obs

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkRegistryObserveTraceRing measures the steady-state cost of
// publishing one traced evaluation into a full trace ring — the path
// relqueryd drives once per query. Before the circular buffer the trim
// reallocated and copied the whole ring on every Observe (O(cap)); the
// circular buffer makes it a single slot store, so the cost must be flat
// across capacities.
func BenchmarkRegistryObserveTraceRing(b *testing.B) {
	for _, ringCap := range []int{32, 512, 4096} {
		// "cap32", not "cap-32": benchdiff strips a trailing -N as the Go
		// GOMAXPROCS suffix, which would collapse the capacities into one key.
		b.Run(fmt.Sprintf("cap%d", ringCap), func(b *testing.B) {
			reg := NewRegistry()
			reg.SetTraceCap(ringCap)
			tr := &Trace{
				Roots:   []*Span{{Op: OpJoin, OutputRows: 8, MaxIntermediate: 16, AGMBound: 32}},
				Metrics: MetricsSnapshot{Joins: 1, MaxIntermediate: 16},
			}
			// Fill the ring so every timed Observe exercises the full-ring
			// replacement path, not the growth path.
			for i := 0; i < ringCap; i++ {
				reg.Observe(tr, time.Microsecond)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reg.Observe(tr, time.Microsecond)
			}
		})
	}
}
