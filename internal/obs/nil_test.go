package obs_test

import (
	"io"
	"reflect"
	"testing"

	"relquery/internal/obs"
)

// callAllOnNil invokes every exported method of the typed-nil pointer v
// with zero-value arguments (io.Writer arguments get io.Discard so a
// nil-interface write cannot mask a receiver bug) and fails on any
// panic. This is the nil-receiver no-op contract's runtime face: the
// nilrecv analyzer proves the guard exists, this proves the behavior —
// and keeps proving it for methods added later, since reflection
// enumerates the method set fresh on every run.
func callAllOnNil(t *testing.T, v any) {
	t.Helper()
	rv := reflect.ValueOf(v)
	rt := rv.Type()
	writer := reflect.TypeOf((*io.Writer)(nil)).Elem()
	for i := 0; i < rt.NumMethod(); i++ {
		name := rt.Method(i).Name
		m := rv.Method(i)
		mt := m.Type()
		var args []reflect.Value
		n := mt.NumIn()
		if mt.IsVariadic() {
			n--
		}
		for j := 0; j < n; j++ {
			in := mt.In(j)
			if in == writer {
				args = append(args, reflect.ValueOf(io.Discard))
			} else {
				args = append(args, reflect.Zero(in))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("(%s).%s panicked on nil receiver: %v", rt, name, r)
				}
			}()
			m.Call(args)
		}()
	}
}

func TestNilReceiversNoOp(t *testing.T) {
	callAllOnNil(t, (*obs.Collector)(nil))
	callAllOnNil(t, (*obs.Metrics)(nil))
	callAllOnNil(t, (*obs.Registry)(nil))
	callAllOnNil(t, (*obs.Histogram)(nil))
	callAllOnNil(t, (*obs.Span)(nil))
	callAllOnNil(t, (*obs.Trace)(nil))
}

// TestNilCollectorChain exercises the idiomatic call chain the engine
// runs with tracing off: every link must absorb the nil.
func TestNilCollectorChain(t *testing.T) {
	var c *obs.Collector
	sp := c.Start("join", "R ⋈ S")
	if sp != nil {
		t.Fatalf("nil collector Start = %v, want nil span", sp)
	}
	child := sp.Child("select", "σ")
	if child != nil {
		t.Fatalf("nil span Child = %v, want nil", child)
	}
	sp.Begin()
	sp.SetAlgorithm("hash", 4)
	sp.ObservePeak(100)
	sp.Finish(10)
	if got := sp.Wall(); got != 0 {
		t.Errorf("nil span Wall = %v, want 0", got)
	}
	if m := c.M(); m != nil {
		t.Errorf("nil collector M = %v, want nil", m)
	}
	if tr := c.Trace(); tr != nil {
		t.Errorf("nil collector Trace = %v, want nil", tr)
	}

	var m *obs.Metrics
	m.ObserveJoin(5)
	m.Violation("deadline")
	if snap := m.Snapshot(); snap.Joins != 0 {
		t.Errorf("nil metrics Snapshot.Joins = %d, want 0", snap.Joins)
	}

	var r *obs.Registry
	r.Observe(nil, 0)
	if snap := r.Snapshot(); snap.Evals != 0 {
		t.Errorf("nil registry Snapshot.Evals = %d, want 0", snap.Evals)
	}
}
