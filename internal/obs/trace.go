package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span operator kinds, mirroring the algebra's node types.
const (
	OpScan    = "scan"    // base-relation lookup
	OpProject = "project" // projection π
	OpJoin    = "join"    // natural join ∗ (one span per n-ary node)
)

// Span cache statuses. Empty means caching was off for the node.
const (
	CacheHit  = "hit"
	CacheMiss = "miss"
)

// Span join-hypergraph structures, recorded when the evaluator ran GYO
// ear removal over a join node. Empty means the structure was not
// examined (binary algorithm chosen without detection).
const (
	StructureAcyclic = "acyclic"
	StructureCyclic  = "cyclic"
)

// Span is one operator's execution record. A span tree mirrors the
// evaluated expression tree: a join span's children are its argument
// subtrees, a projection span's child is its input. A node served from a
// cache gets a span with Cache == CacheHit and no children — the subtree
// was not executed.
//
// Spans are created by the evaluator strictly in argument order (before
// any worker goroutine starts), so Children order is deterministic even
// under parallel evaluation; concurrent mutation of a span's fields is
// confined to the single goroutine evaluating that node.
//
// All methods are nil-safe no-ops, per the package's zero-overhead
// contract.
type Span struct {
	// Op is the operator kind: OpScan, OpProject or OpJoin.
	Op string `json:"op"`
	// Label is the operator's display label (relation name, projection
	// scheme, join arity).
	Label string `json:"label"`
	// SchemeWidth is the number of attributes of the node's output scheme.
	SchemeWidth int `json:"scheme_width,omitempty"`
	// InputRows holds the observed cardinality of each input, in argument
	// order.
	InputRows []int `json:"input_rows,omitempty"`
	// OutputRows is the observed output cardinality.
	OutputRows int `json:"output_rows"`
	// StartNanos is the node's wall-clock start as Unix nanoseconds,
	// recorded by Begin. It places the span on an absolute timeline for
	// the Chrome trace-event export; 0 means the span never began
	// (cache hit) or predates this field (old serialized traces).
	StartNanos int64 `json:"start_ns,omitempty"`
	// WallNanos is the node's wall-clock evaluation time, including its
	// subtree.
	WallNanos int64 `json:"wall_ns"`
	// Algorithm names the binary-join algorithm used (join spans only).
	Algorithm string `json:"algorithm,omitempty"`
	// Workers is the parallel worker count in effect (join spans, parallel
	// engine only).
	Workers int `json:"workers,omitempty"`
	// Cache is CacheHit or CacheMiss when subexpression caching was on.
	Cache string `json:"cache,omitempty"`
	// AGMBound is the Atserias–Grohe–Marx worst-case output bound for a
	// join span, computed from the observed input cardinalities and
	// schemes: no instance with these input sizes can join to more tuples.
	// Comparing OutputRows against it shows how close the workload sits to
	// the theoretical blow-up ceiling.
	AGMBound float64 `json:"agm_bound,omitempty"`
	// MaxIntermediate is the largest binary-join output materialized while
	// evaluating this n-ary join span. This is where the paper's blow-up
	// shows: on the gadget queries it dwarfs the span's OutputRows.
	MaxIntermediate int `json:"max_intermediate,omitempty"`
	// Candidates counts the candidate attribute values enumerated by a
	// worst-case-optimal generic join (algorithm=wcoj spans only).
	Candidates int `json:"candidates,omitempty"`
	// Intersections counts the attribute-level intersection passes of a
	// worst-case-optimal generic join (algorithm=wcoj spans only).
	Intersections int `json:"intersections,omitempty"`
	// Structure is the GYO verdict on the join node's hypergraph
	// (StructureAcyclic or StructureCyclic), when detection ran.
	Structure string `json:"structure,omitempty"`
	// Semijoins counts the semijoin passes of a Yannakakis full reduction
	// (algorithm=yannakakis spans only).
	Semijoins int `json:"semijoins,omitempty"`
	// ReducedRows totals the input cardinalities surviving the full
	// reducer; InputRows' sum minus this is the dangling tuples removed.
	ReducedRows int `json:"reduced_rows,omitempty"`
	// Degraded marks a join span whose original strategy (wcoj or
	// yannakakis) failed and whose result came from a greedy-binary
	// retry; Algorithm then names the fallback that actually ran.
	Degraded bool `json:"degraded,omitempty"`
	// Err records the node's evaluation error, if any (budget aborts show
	// up here).
	Err string `json:"error,omitempty"`
	// Children are the executed child operators, in argument order.
	Children []*Span `json:"children,omitempty"`

	mu    sync.Mutex
	start time.Time
}

// Child appends and returns a new child span. Callers must create the
// children of one span from a single goroutine (the evaluator creates
// them before fanning out workers).
func (s *Span) Child(op, label string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Op: op, Label: label}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// Begin marks the start of the node's evaluation.
func (s *Span) Begin() {
	if s == nil {
		return
	}
	s.start = time.Now()
	s.StartNanos = s.start.UnixNano()
}

// Finish records the node's wall time and observed output cardinality.
func (s *Span) Finish(outputRows int) {
	if s == nil {
		return
	}
	s.WallNanos = time.Since(s.start).Nanoseconds()
	s.OutputRows = outputRows
}

// SetSchemeWidth records the node's output-scheme width.
func (s *Span) SetSchemeWidth(w int) {
	if s == nil {
		return
	}
	s.SchemeWidth = w
}

// SetInputs records the observed input cardinalities in argument order.
func (s *Span) SetInputs(rows []int) {
	if s == nil {
		return
	}
	s.InputRows = rows
}

// SetAlgorithm records the join algorithm and parallel worker count.
func (s *Span) SetAlgorithm(name string, workers int) {
	if s == nil {
		return
	}
	s.Algorithm = name
	s.Workers = workers
}

// SetCache records the node's cache status (CacheHit or CacheMiss).
func (s *Span) SetCache(status string) {
	if s == nil {
		return
	}
	s.Cache = status
}

// ObservePeak folds one binary-join output cardinality into the span's
// MaxIntermediate. Called from the single goroutine evaluating the node.
func (s *Span) ObservePeak(rows int) {
	if s == nil {
		return
	}
	if rows > s.MaxIntermediate {
		s.MaxIntermediate = rows
	}
}

// SetWCOJ records a worst-case-optimal generic join's search counters:
// candidate values enumerated and attribute intersections performed.
func (s *Span) SetWCOJ(candidates, intersections int) {
	if s == nil {
		return
	}
	s.Candidates = candidates
	s.Intersections = intersections
}

// SetStructure records the GYO verdict on the join node's hypergraph.
func (s *Span) SetStructure(structure string) {
	if s == nil {
		return
	}
	s.Structure = structure
}

// SetYannakakis records a full reduction's semijoin pass count and
// surviving input cardinality.
func (s *Span) SetYannakakis(semijoins, reducedRows int) {
	if s == nil {
		return
	}
	s.Semijoins = semijoins
	s.ReducedRows = reducedRows
}

// SetDegraded marks the span as served by a graceful-degradation retry.
func (s *Span) SetDegraded() {
	if s == nil {
		return
	}
	s.Degraded = true
}

// SetAGMBound records the AGM worst-case output bound for a join span.
func (s *Span) SetAGMBound(bound float64) {
	if s == nil {
		return
	}
	s.AGMBound = bound
}

// SetErr records the node's evaluation error.
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.Err = err.Error()
}

// Wall returns the span's wall time as a duration.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.WallNanos)
}

// Collector gathers one (or more) evaluations' spans and metrics. The
// zero value is ready to use; a nil *Collector is a valid "tracing off"
// collector on which every method no-ops. A Collector must not be reused
// across concurrent Eval calls that should produce separate traces — use
// one Collector per traced evaluation.
type Collector struct {
	// Metrics accumulates the evaluation-wide counters.
	Metrics Metrics

	mu    sync.Mutex
	roots []*Span
}

// Start opens a root span for one evaluation and returns it.
func (c *Collector) Start(op, label string) *Span {
	if c == nil {
		return nil
	}
	s := &Span{Op: op, Label: label}
	c.mu.Lock()
	c.roots = append(c.roots, s)
	c.mu.Unlock()
	return s
}

// M returns the collector's metrics, or nil for a nil collector, so
// instrumented code can call metric methods unconditionally.
func (c *Collector) M() *Metrics {
	if c == nil {
		return nil
	}
	return &c.Metrics
}

// Trace snapshots the collector into a serializable Trace. The span
// pointers are shared, not copied: take the trace after evaluation
// finishes (or accept in-flight spans).
func (c *Collector) Trace() *Trace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	roots := make([]*Span, len(c.roots))
	copy(roots, c.roots)
	c.mu.Unlock()
	return &Trace{Roots: roots, Metrics: c.Metrics.Snapshot()}
}

// Trace is a finished evaluation's span tree plus its metrics, the
// payload of cmd/relquery -trace.
type Trace struct {
	// Roots holds one span tree per Eval call observed by the collector
	// (usually exactly one).
	Roots []*Span `json:"trace"`
	// Metrics is the counters snapshot taken with the trace.
	Metrics MetricsSnapshot `json:"metrics"`
}

// Root returns the first (usually only) root span, or nil.
func (t *Trace) Root() *Span {
	if t == nil || len(t.Roots) == 0 {
		return nil
	}
	return t.Roots[0]
}

// WriteJSON writes the trace as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
