package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log₂ histogram buckets: bucket i holds
// observations v with 2^(i-histZeroExp-1) < v ≤ 2^(i-histZeroExp), so the
// covered range is (2^-33, 2^31] — fine enough for sub-microsecond
// latencies in seconds and wide enough for multi-billion-row peaks. The
// first bucket also absorbs everything at or below its bound (including
// zero), the last everything above.
const (
	histBuckets = 64
	histZeroExp = 32
)

// Histogram is a fixed-size log₂-bucketed histogram with atomic counters:
// concurrent Observe calls from parallel evaluations need no lock, and a
// Snapshot taken mid-run is race-free. The zero Histogram is ready to
// use; all methods are nil-safe no-ops, per the package's zero-overhead
// contract.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps an observation to its bucket: the smallest i whose
// upper bound 2^(i-histZeroExp) is ≥ v, clamped to the array.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	if frac == 0.5 {
		exp--
	}
	i := exp + histZeroExp
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBound is bucket i's inclusive upper bound.
func bucketBound(i int) float64 { return math.Ldexp(1, i-histZeroExp) }

// Observe folds one observation into the histogram. NaN is ignored;
// non-positive values land in the lowest bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns a plain-value copy of the histogram. Like
// Metrics.Snapshot, each field is read atomically; a mid-run snapshot may
// be mutually skewed by in-flight updates. The zero snapshot is returned
// for a nil receiver.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: bucketBound(i), Count: n})
		}
	}
	return s
}

// HistogramSnapshot is a plain-value copy of a Histogram: only non-empty
// buckets, in increasing upper-bound order, with per-bucket (not
// cumulative) counts. Exporters derive cumulative le-series from it.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
	// Buckets holds the non-empty buckets in increasing bound order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one non-empty histogram bucket.
type HistogramBucket struct {
	// UpperBound is the bucket's inclusive upper bound (a power of two).
	UpperBound float64 `json:"le"`
	// Count is the number of observations in this bucket alone.
	Count int64 `json:"count"`
}

// DefaultTraceCap is how many recent evaluation traces a Registry retains
// for the /debug/traces export when no explicit cap is set.
const DefaultTraceCap = 32

// Registry aggregates observability across evaluations: summed metrics
// snapshots, distributions (latency, peak intermediate rows, observed
// peak / AGM bound ratio), and a bounded ring of recent span trees. One
// process-wide Registry backs the telemetry server's /metrics and
// /debug/traces endpoints while per-evaluation Collectors come and go.
//
// The zero Registry is ready to use. All methods are nil-safe no-ops, per
// the package's zero-overhead contract: an evaluator with no registry
// attached pays only nil checks.
type Registry struct {
	// latency distributes evaluation wall time, in seconds.
	latency Histogram
	// peakRows distributes each evaluation's largest intermediate
	// cardinality — the paper's blow-up number, per evaluation.
	peakRows Histogram
	// agmRatio distributes each evaluation's worst observed-peak/AGM-bound
	// ratio: how close the workload sits to the theoretical ceiling, and
	// the number that shows whether the AGM-guided selector keeps peaks
	// near the bound across a workload.
	agmRatio Histogram

	mu     sync.Mutex
	evals  int64
	totals MetricsSnapshot
	// traces is a circular buffer of the most recent span trees: it grows
	// by append until it reaches the effective cap, after which each new
	// trace overwrites the oldest slot in place — a single store per
	// evaluation, never a reallocation (see BenchmarkRegistryObserveTraceRing).
	traces []*Trace
	// head indexes the oldest retained trace once the buffer is full;
	// while the buffer is still growing it stays 0 (slot 0 is the oldest).
	head     int
	traceCap int // 0 means DefaultTraceCap
}

// NewRegistry returns a Registry with the default trace retention.
func NewRegistry() *Registry { return &Registry{} }

// SetTraceCap bounds the trace ring to the n most recent evaluations
// (n <= 0 disables retention). Existing excess traces are dropped oldest
// first.
func (r *Registry) SetTraceCap(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 {
		r.traceCap = -1
		r.traces, r.head = nil, 0
		return
	}
	r.traceCap = n
	// Rebuild the ring in oldest-first order, trimmed to the new cap.
	// Resizing is a rare operator action; Observe never pays this copy.
	ordered := r.orderedLocked()
	if len(ordered) > n {
		ordered = ordered[len(ordered)-n:]
	}
	r.traces, r.head = append([]*Trace(nil), ordered...), 0
}

// orderedLocked returns the retained traces oldest first; callers hold
// r.mu. The returned slice aliases r.traces only when the ring has not
// wrapped (head 0), which every caller immediately copies or replaces.
func (r *Registry) orderedLocked() []*Trace {
	if r.head == 0 {
		return r.traces
	}
	out := make([]*Trace, 0, len(r.traces))
	out = append(out, r.traces[r.head:]...)
	return append(out, r.traces[:r.head]...)
}

// ringCap resolves the effective ring capacity; callers hold r.mu.
func (r *Registry) ringCap() int {
	switch {
	case r.traceCap < 0:
		return 0
	case r.traceCap == 0:
		return DefaultTraceCap
	default:
		return r.traceCap
	}
}

// Observe folds one finished (or aborted) evaluation into the registry:
// wall time into the latency histogram and, when a trace was collected,
// its metrics into the totals, its peak into the distributions, and the
// span tree into the ring. A nil trace still counts the evaluation —
// collector-less evaluations contribute latency only.
func (r *Registry) Observe(t *Trace, wall time.Duration) {
	if r == nil {
		return
	}
	r.latency.Observe(wall.Seconds())
	if t != nil {
		r.peakRows.Observe(float64(t.Metrics.MaxIntermediate))
		if ratio := maxAGMRatio(t.Roots); ratio > 0 {
			r.agmRatio.Observe(ratio)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evals++
	if t == nil {
		return
	}
	r.totals.fold(t.Metrics)
	switch n := r.ringCap(); {
	case n <= 0:
		// Retention disabled.
	case len(r.traces) < n:
		r.traces = append(r.traces, t)
	default:
		// Full ring: overwrite the oldest slot in place and advance —
		// O(1) per evaluation regardless of the cap.
		r.traces[r.head] = t
		r.head = (r.head + 1) % len(r.traces)
	}
}

// maxAGMRatio walks span trees and returns the largest ratio of a join
// span's observed peak (its own output or an intermediate binary join
// inside it) to its AGM bound, or 0 when no span carries a bound.
func maxAGMRatio(roots []*Span) float64 {
	best := 0.0
	var walk func(sp *Span)
	walk = func(sp *Span) {
		if sp == nil {
			return
		}
		if sp.AGMBound > 0 {
			observed := sp.OutputRows
			if sp.MaxIntermediate > observed {
				observed = sp.MaxIntermediate
			}
			if ratio := float64(observed) / sp.AGMBound; ratio > best {
				best = ratio
			}
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, root := range roots {
		walk(root)
	}
	return best
}

// Snapshot returns a plain-value copy of the registry's aggregates. The
// zero snapshot is returned for a nil receiver.
func (r *Registry) Snapshot() RegistrySnapshot {
	if r == nil {
		return RegistrySnapshot{}
	}
	r.mu.Lock()
	evals, totals, held := r.evals, r.totals, len(r.traces)
	r.mu.Unlock()
	return RegistrySnapshot{
		Evals:      evals,
		Metrics:    totals,
		Latency:    r.latency.Snapshot(),
		PeakRows:   r.peakRows.Snapshot(),
		AGMRatio:   r.agmRatio.Snapshot(),
		TracesHeld: held,
	}
}

// Traces returns the retained span trees, oldest first. The trace
// pointers are shared with past Observe callers, like Collector.Trace.
func (r *Registry) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, len(r.traces))
	copy(out, r.orderedLocked())
	return out
}

// RegistrySnapshot is a plain-value copy of a Registry, ready for JSON
// encoding or Prometheus exposition.
type RegistrySnapshot struct {
	// Evals counts the evaluations observed.
	Evals int64 `json:"evals"`
	// Metrics holds the counters summed across evaluations
	// (MaxIntermediate is the maximum, not a sum).
	Metrics MetricsSnapshot `json:"metrics"`
	// Latency distributes evaluation wall time, in seconds.
	Latency HistogramSnapshot `json:"latency_seconds"`
	// PeakRows distributes each evaluation's largest intermediate
	// cardinality.
	PeakRows HistogramSnapshot `json:"peak_intermediate_rows"`
	// AGMRatio distributes each evaluation's worst observed-peak/AGM-bound
	// ratio.
	AGMRatio HistogramSnapshot `json:"peak_agm_ratio"`
	// TracesHeld is the number of span trees currently retained for
	// /debug/traces.
	TracesHeld int `json:"traces_held"`
}
