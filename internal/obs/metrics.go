// Package obs is the query-evaluation observability layer: per-evaluation
// metrics counters and a span tree tracing every operator of a
// project–join evaluation.
//
// The package exists because the paper's central phenomenon — intermediate
// results exponentially larger than input and output (Cosmadakis 1983,
// Introduction) — is invisible from a query's result alone. A Collector
// attached to an algebra.Evaluator records, per operator, the observed
// cardinalities, wall time, join algorithm, cache status and worker count,
// and accumulates evaluation-wide counters (tuples built/probed/emitted,
// partitions, broadcast and sequential fallbacks, cache hits/misses).
// algebra.ExplainAnalyze renders the span tree; cmd/relquery -trace emits
// it as JSON.
//
// # Zero-overhead contract
//
// Every method in this package is safe to call on a nil receiver and does
// nothing there. Instrumented code therefore needs no conditionals: it
// threads a possibly-nil *Collector (or *Span, or *Metrics) through and
// calls methods unconditionally. With no collector attached the entire
// layer reduces to nil checks — no allocation, no clock reads, no atomics
// — which is what keeps the instrumented engine within noise of the
// uninstrumented one (see BenchmarkE9ParallelEval and BENCH_obs.txt).
//
// obs sits below every engine package: it imports only the standard
// library, so internal/join, internal/algebra and internal/decide can all
// report into it without cycles.
package obs

import (
	"fmt"
	"sync/atomic"
)

// Metrics accumulates evaluation-wide counters. All updates are atomic, so
// one Metrics can be shared by the parallel evaluator's workers and — the
// fix over the old mutex-plus-exported-fields join.Stats — snapshotted
// race-free while evaluation is still running.
//
// All methods are nil-safe no-ops, per the package's zero-overhead
// contract.
type Metrics struct {
	joins              atomic.Int64
	maxIntermediate    atomic.Int64
	intermediateTuples atomic.Int64

	tuplesBuilt   atomic.Int64
	tuplesProbed  atomic.Int64
	tuplesEmitted atomic.Int64

	partitionedJoins    atomic.Int64
	partitions          atomic.Int64
	broadcastJoins      atomic.Int64
	sequentialFallbacks atomic.Int64

	wcojJoins         atomic.Int64
	wcojCandidates    atomic.Int64
	wcojIntersections atomic.Int64

	yannakakisJoins atomic.Int64
	semijoins       atomic.Int64
	semijoinRows    atomic.Int64

	degradedEvals atomic.Int64

	violationDeadline  atomic.Int64
	violationCanceled  atomic.Int64
	violationRowBudget atomic.Int64
	violationMemBudget atomic.Int64
	violationAdmission atomic.Int64

	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cacheInvalidations atomic.Int64
}

// Governor-violation kinds, one per sentinel in internal/governor. The
// strings double as the Prometheus label values of
// relquery_governor_violations_total. They live here — not in
// internal/governor — because governor imports obs, never the reverse.
const (
	ViolationDeadline  = "deadline"
	ViolationCanceled  = "canceled"
	ViolationRowBudget = "row_budget"
	ViolationMemBudget = "mem_budget"
	ViolationAdmission = "admission"
)

// ViolationKinds lists every violation kind in exposition order, so
// exporters emit a stable, complete set of series even when all counts
// are zero.
func ViolationKinds() []string {
	return []string{ViolationDeadline, ViolationCanceled, ViolationRowBudget, ViolationMemBudget, ViolationAdmission}
}

// Violation records one governance violation of the given kind (a
// Violation* constant). The governor calls it exactly once per
// evaluation — when its sticky failure latch first trips — so the
// counters read as "evaluations killed, by sentinel". Unknown kinds are
// ignored: the governor's Fail broadcast also carries non-governance
// engine errors, which are not violations.
func (m *Metrics) Violation(kind string) {
	if m == nil {
		return
	}
	switch kind {
	case ViolationDeadline:
		m.violationDeadline.Add(1)
	case ViolationCanceled:
		m.violationCanceled.Add(1)
	case ViolationRowBudget:
		m.violationRowBudget.Add(1)
	case ViolationMemBudget:
		m.violationMemBudget.Add(1)
	case ViolationAdmission:
		m.violationAdmission.Add(1)
	}
}

// ObserveJoin records one binary join producing out tuples: it counts the
// join and folds the output size into the intermediate-result statistics.
func (m *Metrics) ObserveJoin(out int) {
	if m == nil {
		return
	}
	m.joins.Add(1)
	m.observeIntermediate(out)
}

// ObserveIntermediate folds an intermediate relation's cardinality (a
// projection output, or a join node's passthrough input) into
// MaxIntermediate and IntermediateTuples without counting a join.
func (m *Metrics) ObserveIntermediate(rows int) {
	if m == nil {
		return
	}
	m.observeIntermediate(rows)
}

func (m *Metrics) observeIntermediate(rows int) {
	n := int64(rows)
	m.intermediateTuples.Add(n)
	for {
		cur := m.maxIntermediate.Load()
		if n <= cur || m.maxIntermediate.CompareAndSwap(cur, n) {
			return
		}
	}
}

// JoinWork records one binary join's tuple traffic. The exact meaning of
// built/probed is per algorithm (hash: build-side and probe-side rows;
// nested loop: 0 and pairs examined; sort-merge: rows sorted and rows
// merged); emitted is always the output cardinality.
func (m *Metrics) JoinWork(built, probed, emitted int) {
	if m == nil {
		return
	}
	m.tuplesBuilt.Add(int64(built))
	m.tuplesProbed.Add(int64(probed))
	m.tuplesEmitted.Add(int64(emitted))
}

// Partitioned records that a parallel join ran the partitioned strategy
// over the given number of buckets.
func (m *Metrics) Partitioned(buckets int) {
	if m == nil {
		return
	}
	m.partitionedJoins.Add(1)
	m.partitions.Add(int64(buckets))
}

// Broadcast records that a parallel join fell back to the broadcast
// strategy (shared build table, chunked probe side).
func (m *Metrics) Broadcast() {
	if m == nil {
		return
	}
	m.broadcastJoins.Add(1)
}

// SequentialFallback records that a parallel join delegated to the
// sequential hash join (tiny inputs or no shared attributes).
func (m *Metrics) SequentialFallback() {
	if m == nil {
		return
	}
	m.sequentialFallbacks.Add(1)
}

// WCOJ records one worst-case-optimal generic join with its search
// counters: candidate values enumerated and attribute intersections
// performed.
func (m *Metrics) WCOJ(candidates, intersections int) {
	if m == nil {
		return
	}
	m.wcojJoins.Add(1)
	m.wcojCandidates.Add(int64(candidates))
	m.wcojIntersections.Add(int64(intersections))
}

// Semijoin records one semijoin pass producing out tuples (the full
// reducer's sweeps and the pairwise fixpoint prefilter both report here).
func (m *Metrics) Semijoin(out int) {
	if m == nil {
		return
	}
	m.semijoins.Add(1)
	m.semijoinRows.Add(int64(out))
}

// Yannakakis records one acyclic n-ary join evaluated by the full
// reducer. Per-pass semijoin counts arrive separately via Semijoin.
func (m *Metrics) Yannakakis() {
	if m == nil {
		return
	}
	m.yannakakisJoins.Add(1)
}

// Degraded records one graceful degradation: a wcoj or yannakakis join
// node failed (engine error or recovered panic) and was retried on the
// greedy binary path.
func (m *Metrics) Degraded() {
	if m == nil {
		return
	}
	m.degradedEvals.Add(1)
}

// CacheHit records a subexpression served from a cache (the per-call memo
// or the shared fingerprint-keyed cache) without re-evaluation.
func (m *Metrics) CacheHit() {
	if m == nil {
		return
	}
	m.cacheHits.Add(1)
}

// CacheMiss records a subexpression that had to be evaluated.
func (m *Metrics) CacheMiss() {
	if m == nil {
		return
	}
	m.cacheMisses.Add(1)
}

// CacheInvalidated records n cache entries dropped (shared-cache reset or
// fingerprint change).
func (m *Metrics) CacheInvalidated(n int) {
	if m == nil {
		return
	}
	m.cacheInvalidations.Add(int64(n))
}

// Snapshot returns a consistent-enough copy of the counters: each field is
// read atomically, so reading concurrently with a running evaluation is
// race-free (fields may be mutually skewed by in-flight updates, which is
// inherent to any non-stop-the-world snapshot). The zero snapshot is
// returned for a nil receiver.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		Joins:               m.joins.Load(),
		MaxIntermediate:     m.maxIntermediate.Load(),
		IntermediateTuples:  m.intermediateTuples.Load(),
		TuplesBuilt:         m.tuplesBuilt.Load(),
		TuplesProbed:        m.tuplesProbed.Load(),
		TuplesEmitted:       m.tuplesEmitted.Load(),
		PartitionedJoins:    m.partitionedJoins.Load(),
		Partitions:          m.partitions.Load(),
		BroadcastJoins:      m.broadcastJoins.Load(),
		SequentialFallbacks: m.sequentialFallbacks.Load(),
		WCOJJoins:           m.wcojJoins.Load(),
		WCOJCandidates:      m.wcojCandidates.Load(),
		WCOJIntersections:   m.wcojIntersections.Load(),
		YannakakisJoins:     m.yannakakisJoins.Load(),
		Semijoins:           m.semijoins.Load(),
		SemijoinRows:        m.semijoinRows.Load(),
		DegradedEvals:       m.degradedEvals.Load(),
		ViolationsDeadline:  m.violationDeadline.Load(),
		ViolationsCanceled:  m.violationCanceled.Load(),
		ViolationsRowBudget: m.violationRowBudget.Load(),
		ViolationsMemBudget: m.violationMemBudget.Load(),
		ViolationsAdmission: m.violationAdmission.Load(),
		CacheHits:           m.cacheHits.Load(),
		CacheMisses:         m.cacheMisses.Load(),
		CacheInvalidations:  m.cacheInvalidations.Load(),
	}
}

// MetricsSnapshot is a plain-value copy of a Metrics, ready for JSON
// encoding or printing.
type MetricsSnapshot struct {
	// Joins is the number of binary joins performed.
	Joins int64 `json:"joins"`
	// MaxIntermediate is the largest cardinality of any intermediate
	// relation produced (including the final result) — the paper's
	// headline number.
	MaxIntermediate int64 `json:"max_intermediate"`
	// IntermediateTuples totals the cardinalities of all intermediate
	// results.
	IntermediateTuples int64 `json:"intermediate_tuples"`
	// TuplesBuilt counts rows inserted into build-side structures.
	TuplesBuilt int64 `json:"tuples_built"`
	// TuplesProbed counts rows scanned against build-side structures.
	TuplesProbed int64 `json:"tuples_probed"`
	// TuplesEmitted counts rows emitted by binary joins.
	TuplesEmitted int64 `json:"tuples_emitted"`
	// PartitionedJoins counts parallel joins that ran partitioned.
	PartitionedJoins int64 `json:"partitioned_joins"`
	// Partitions totals the buckets used by partitioned joins.
	Partitions int64 `json:"partitions"`
	// BroadcastJoins counts parallel joins that ran broadcast.
	BroadcastJoins int64 `json:"broadcast_joins"`
	// SequentialFallbacks counts parallel joins that delegated to the
	// sequential hash join.
	SequentialFallbacks int64 `json:"sequential_fallbacks"`
	// WCOJJoins counts n-ary joins run by the worst-case-optimal generic
	// join.
	WCOJJoins int64 `json:"wcoj_joins"`
	// WCOJCandidates totals the candidate attribute values the generic
	// join enumerated.
	WCOJCandidates int64 `json:"wcoj_candidates"`
	// WCOJIntersections totals the attribute-level intersection passes
	// the generic join performed.
	WCOJIntersections int64 `json:"wcoj_intersections"`
	// YannakakisJoins counts n-ary joins evaluated by the Yannakakis
	// full reducer over an acyclic join tree.
	YannakakisJoins int64 `json:"yannakakis_joins"`
	// Semijoins counts semijoin passes (full-reducer sweeps and the
	// pairwise fixpoint prefilter).
	Semijoins int64 `json:"semijoins"`
	// SemijoinRows totals the output cardinalities of all semijoin
	// passes — the per-pass cardinality trail of the full reducer.
	SemijoinRows int64 `json:"semijoin_rows"`
	// DegradedEvals counts join nodes whose wcoj/yannakakis strategy
	// failed and was retried on the greedy binary path.
	DegradedEvals int64 `json:"degraded_evals"`
	// ViolationsDeadline counts evaluations killed by the wall-clock
	// deadline (governor.ErrDeadline).
	ViolationsDeadline int64 `json:"violations_deadline"`
	// ViolationsCanceled counts evaluations killed by context
	// cancellation (governor.ErrCanceled).
	ViolationsCanceled int64 `json:"violations_canceled"`
	// ViolationsRowBudget counts evaluations killed by the row budget
	// (governor.ErrRowBudget — intermediate or final-result cap).
	ViolationsRowBudget int64 `json:"violations_row_budget"`
	// ViolationsMemBudget counts evaluations killed by the estimated
	// memory budget (governor.ErrMemBudget).
	ViolationsMemBudget int64 `json:"violations_mem_budget"`
	// ViolationsAdmission counts evaluations rejected pre-flight by
	// admission control (governor.ErrAdmission).
	ViolationsAdmission int64 `json:"violations_admission"`
	// CacheHits counts subexpressions served from a cache.
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts subexpressions that were evaluated.
	CacheMisses int64 `json:"cache_misses"`
	// CacheInvalidations counts cache entries dropped.
	CacheInvalidations int64 `json:"cache_invalidations"`
}

// ViolationCount is one (kind, count) pair of the governor-violation
// counters, for exporters and footers that enumerate them.
type ViolationCount struct {
	// Kind is a Violation* constant.
	Kind string
	// Count is how many evaluations died on that sentinel.
	Count int64
}

// ViolationCounts returns the violation counters in the ViolationKinds
// order, including zero counts.
func (s MetricsSnapshot) ViolationCounts() []ViolationCount {
	return []ViolationCount{
		{ViolationDeadline, s.ViolationsDeadline},
		{ViolationCanceled, s.ViolationsCanceled},
		{ViolationRowBudget, s.ViolationsRowBudget},
		{ViolationMemBudget, s.ViolationsMemBudget},
		{ViolationAdmission, s.ViolationsAdmission},
	}
}

// ViolationsTotal sums the violation counters across sentinels.
func (s MetricsSnapshot) ViolationsTotal() int64 {
	return s.ViolationsDeadline + s.ViolationsCanceled + s.ViolationsRowBudget +
		s.ViolationsMemBudget + s.ViolationsAdmission
}

// fold accumulates another snapshot into s: counters add, the peak
// intermediate takes the maximum. It is the Registry's cross-evaluation
// aggregation step.
func (s *MetricsSnapshot) fold(o MetricsSnapshot) {
	if o.MaxIntermediate > s.MaxIntermediate {
		s.MaxIntermediate = o.MaxIntermediate
	}
	s.Joins += o.Joins
	s.IntermediateTuples += o.IntermediateTuples
	s.TuplesBuilt += o.TuplesBuilt
	s.TuplesProbed += o.TuplesProbed
	s.TuplesEmitted += o.TuplesEmitted
	s.PartitionedJoins += o.PartitionedJoins
	s.Partitions += o.Partitions
	s.BroadcastJoins += o.BroadcastJoins
	s.SequentialFallbacks += o.SequentialFallbacks
	s.WCOJJoins += o.WCOJJoins
	s.WCOJCandidates += o.WCOJCandidates
	s.WCOJIntersections += o.WCOJIntersections
	s.YannakakisJoins += o.YannakakisJoins
	s.Semijoins += o.Semijoins
	s.SemijoinRows += o.SemijoinRows
	s.DegradedEvals += o.DegradedEvals
	s.ViolationsDeadline += o.ViolationsDeadline
	s.ViolationsCanceled += o.ViolationsCanceled
	s.ViolationsRowBudget += o.ViolationsRowBudget
	s.ViolationsMemBudget += o.ViolationsMemBudget
	s.ViolationsAdmission += o.ViolationsAdmission
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheInvalidations += o.CacheInvalidations
}

// String renders the snapshot as a single stats line.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf(
		"joins=%d "+FieldMaxIntermediate+"=%d intermediate_tuples=%d "+
			"built=%d probed=%d emitted=%d "+
			"partitioned=%d partitions=%d broadcast=%d seq_fallback=%d "+
			"wcoj=%d wcoj_candidates=%d wcoj_intersections=%d "+
			"yannakakis=%d "+FieldSemijoins+"=%d semijoin_rows=%d "+FieldDegraded+"=%d "+
			"viol_deadline=%d viol_canceled=%d viol_row_budget=%d viol_mem_budget=%d viol_admission=%d "+
			"cache_hits=%d cache_misses=%d cache_invalidations=%d",
		s.Joins, s.MaxIntermediate, s.IntermediateTuples,
		s.TuplesBuilt, s.TuplesProbed, s.TuplesEmitted,
		s.PartitionedJoins, s.Partitions, s.BroadcastJoins, s.SequentialFallbacks,
		s.WCOJJoins, s.WCOJCandidates, s.WCOJIntersections,
		s.YannakakisJoins, s.Semijoins, s.SemijoinRows, s.DegradedEvals,
		s.ViolationsDeadline, s.ViolationsCanceled, s.ViolationsRowBudget,
		s.ViolationsMemBudget, s.ViolationsAdmission,
		s.CacheHits, s.CacheMisses, s.CacheInvalidations)
}
