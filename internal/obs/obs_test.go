package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every method on nil receivers: the zero-overhead
// contract says instrumented code may call them unconditionally.
func TestNilSafety(t *testing.T) {
	var c *Collector
	if sp := c.Start(OpJoin, "x"); sp != nil {
		t.Fatalf("nil Collector.Start = %v, want nil", sp)
	}
	if m := c.M(); m != nil {
		t.Fatalf("nil Collector.M = %v, want nil", m)
	}
	if tr := c.Trace(); tr != nil {
		t.Fatalf("nil Collector.Trace = %v, want nil", tr)
	}

	var m *Metrics
	m.ObserveJoin(3)
	m.ObserveIntermediate(5)
	m.JoinWork(1, 2, 3)
	m.Partitioned(8)
	m.Broadcast()
	m.SequentialFallback()
	m.WCOJ(3, 4)
	m.Semijoin(5)
	m.Yannakakis()
	m.CacheHit()
	m.CacheMiss()
	m.CacheInvalidated(2)
	m.Degraded()
	m.Violation(ViolationDeadline)
	m.Violation("not-a-kind")
	if snap := m.Snapshot(); snap != (MetricsSnapshot{}) {
		t.Fatalf("nil Metrics.Snapshot = %+v, want zero", snap)
	}

	var reg *Registry
	reg.Observe(&Trace{}, time.Second)
	reg.Observe(nil, 0)
	reg.SetTraceCap(4)
	if tr := reg.Traces(); tr != nil {
		t.Fatalf("nil Registry.Traces = %v, want nil", tr)
	}
	if snap := reg.Snapshot(); snap.Evals != 0 || snap.TracesHeld != 0 {
		t.Fatalf("nil Registry.Snapshot = %+v, want zero", snap)
	}

	var h *Histogram
	h.Observe(1)
	h.Observe(-3)
	if snap := h.Snapshot(); snap.Count != 0 || snap.Sum != 0 || snap.Buckets != nil {
		t.Fatalf("nil Histogram.Snapshot = %+v, want zero", snap)
	}

	var sp *Span
	if child := sp.Child(OpScan, "T"); child != nil {
		t.Fatalf("nil Span.Child = %v, want nil", child)
	}
	sp.Begin()
	sp.Finish(7)
	sp.SetSchemeWidth(2)
	sp.SetInputs([]int{1, 2})
	sp.SetAlgorithm("hash", 4)
	sp.SetCache(CacheHit)
	sp.SetAGMBound(64)
	sp.ObservePeak(9)
	sp.SetWCOJ(3, 4)
	sp.SetStructure(StructureAcyclic)
	sp.SetYannakakis(4, 12)
	sp.SetErr(errors.New("boom"))
	if sp.Wall() != 0 {
		t.Fatalf("nil Span.Wall = %v, want 0", sp.Wall())
	}
}

func TestMetricsCounters(t *testing.T) {
	var m Metrics
	m.ObserveJoin(10)
	m.ObserveJoin(40)
	m.ObserveIntermediate(25)
	m.JoinWork(3, 7, 50)
	m.Partitioned(8)
	m.Partitioned(8)
	m.Broadcast()
	m.SequentialFallback()
	m.WCOJ(6, 11)
	m.Semijoin(3)
	m.Semijoin(0)
	m.Yannakakis()
	m.CacheHit()
	m.CacheMiss()
	m.CacheMiss()
	m.CacheInvalidated(4)
	m.Violation(ViolationRowBudget)
	m.Violation(ViolationRowBudget)
	m.Violation(ViolationAdmission)
	m.Violation("unknown") // non-sentinel failures are not violations

	got := m.Snapshot()
	want := MetricsSnapshot{
		Joins:               2,
		MaxIntermediate:     40,
		IntermediateTuples:  75,
		TuplesBuilt:         3,
		TuplesProbed:        7,
		TuplesEmitted:       50,
		PartitionedJoins:    2,
		Partitions:          16,
		BroadcastJoins:      1,
		SequentialFallbacks: 1,
		WCOJJoins:           1,
		WCOJCandidates:      6,
		WCOJIntersections:   11,
		YannakakisJoins:     1,
		Semijoins:           2,
		SemijoinRows:        3,
		ViolationsRowBudget: 2,
		ViolationsAdmission: 1,
		CacheHits:           1,
		CacheMisses:         2,
		CacheInvalidations:  4,
	}
	if got != want {
		t.Fatalf("Snapshot = %+v, want %+v", got, want)
	}
}

// TestSnapshotConcurrent snapshots while writers are running: the atomic
// counters must stay race-free (run under -race) and the final snapshot
// must be exact.
func TestSnapshotConcurrent(t *testing.T) {
	var m Metrics
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = m.Snapshot() // mid-run snapshot, the old join.Stats race
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.ObserveJoin(w*perWorker + i)
				m.JoinWork(1, 1, 1)
				m.CacheMiss()
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	snap := m.Snapshot()
	if snap.Joins != workers*perWorker {
		t.Errorf("Joins = %d, want %d", snap.Joins, workers*perWorker)
	}
	if want := int64(workers*perWorker - 1); snap.MaxIntermediate != want {
		t.Errorf("MaxIntermediate = %d, want %d", snap.MaxIntermediate, want)
	}
	if snap.TuplesEmitted != workers*perWorker {
		t.Errorf("TuplesEmitted = %d, want %d", snap.TuplesEmitted, workers*perWorker)
	}
}

func TestSpanTreeAndJSON(t *testing.T) {
	c := &Collector{}
	root := c.Start(OpProject, "pi[A C]")
	root.Begin()
	root.SetSchemeWidth(2)
	j := root.Child(OpJoin, "* (natural join, 2 inputs)")
	j.Begin()
	l := j.Child(OpScan, "L")
	r := j.Child(OpScan, "R")
	l.Begin()
	l.Finish(3)
	r.Begin()
	r.Finish(4)
	j.SetInputs([]int{3, 4})
	j.SetAlgorithm("hash", 0)
	j.SetAGMBound(12)
	j.Finish(5)
	root.SetInputs([]int{5})
	root.Finish(2)
	c.M().ObserveJoin(5)

	tr := c.Trace()
	if tr.Root() != root {
		t.Fatalf("Trace.Root = %v, want the started root", tr.Root())
	}
	if got := len(root.Children); got != 1 {
		t.Fatalf("root has %d children, want 1", got)
	}
	if got := root.Children[0].Children; len(got) != 2 || got[0] != l || got[1] != r {
		t.Fatalf("join children = %v, want [L R] in order", got)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded struct {
		Trace []struct {
			Op       string `json:"op"`
			Label    string `json:"label"`
			Children []struct {
				Op        string  `json:"op"`
				Algorithm string  `json:"algorithm"`
				AGMBound  float64 `json:"agm_bound"`
				InputRows []int   `json:"input_rows"`
			} `json:"children"`
		} `json:"trace"`
		Metrics MetricsSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(decoded.Trace) != 1 || decoded.Trace[0].Op != OpProject {
		t.Fatalf("decoded roots = %+v, want one project root", decoded.Trace)
	}
	jd := decoded.Trace[0].Children[0]
	if jd.Op != OpJoin || jd.Algorithm != "hash" || jd.AGMBound != 12 {
		t.Errorf("decoded join span = %+v", jd)
	}
	if len(jd.InputRows) != 2 || jd.InputRows[0] != 3 || jd.InputRows[1] != 4 {
		t.Errorf("decoded InputRows = %v, want [3 4]", jd.InputRows)
	}
	if decoded.Metrics.Joins != 1 {
		t.Errorf("decoded metrics joins = %d, want 1", decoded.Metrics.Joins)
	}
}

func TestSpanErrAndCache(t *testing.T) {
	sp := &Span{Op: OpJoin, Label: "*"}
	sp.SetErr(nil)
	if sp.Err != "" {
		t.Errorf("SetErr(nil) set Err = %q", sp.Err)
	}
	sp.SetErr(errors.New("budget exceeded"))
	if sp.Err != "budget exceeded" {
		t.Errorf("Err = %q", sp.Err)
	}
	sp.SetCache(CacheMiss)
	if sp.Cache != CacheMiss {
		t.Errorf("Cache = %q", sp.Cache)
	}
}
