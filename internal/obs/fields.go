package obs

// This file is the canonical string table for every observability name
// that crosses a package boundary: span/metric field keys (rendered by
// EXPLAIN ANALYZE in internal/algebra and exported as Chrome trace-event
// args by internal/telemetry) and Prometheus series names (written by
// internal/telemetry and internal/server, scraped by dashboards and the
// CI smoke tests). Exactly one declaration exists per name; the
// spanfield analyzer (internal/analysis/spanfield) bans stray literals
// of these names — and of anything in the relquery_*/relqueryd_* series
// namespaces — in the rendering packages, so a renamed or mistyped key
// is a build break, not a silently broken dashboard.

// Span field keys: the long forms are the JSON/trace-arg names (matching
// Span's json tags), the short forms are EXPLAIN ANALYZE's compact
// tokens. A long and short form naming the same quantity must keep
// rendering the same underlying Span field.
const (
	FieldOutputRows      = "output_rows"
	FieldSchemeWidth     = "scheme_width"
	FieldInputRows       = "input_rows"
	FieldAlgorithm       = "algorithm"
	FieldWorkers         = "workers"
	FieldCache           = "cache"
	FieldAGMBound        = "agm_bound"
	FieldMaxIntermediate = "max_intermediate"
	FieldCandidates      = "candidates"
	FieldIntersections   = "intersections"
	FieldStructure       = "structure"
	FieldSemijoins       = "semijoins"
	FieldReducedRows     = "reduced_rows"
	FieldDegraded        = "degraded"
	FieldError           = "error"

	// EXPLAIN ANALYZE short tokens.
	FieldRows    = "rows"
	FieldWidth   = "width"
	FieldWall    = "wall"
	FieldInputs  = "in"
	FieldAlg     = "alg"
	FieldReduced = "reduced"
	FieldPeak    = "peak"
	FieldAGM     = "agm"
)

// Prometheus series of the engine registry (internal/telemetry's
// /metrics exposition). SeriesGovernorViolations carries the sentinel
// label; SeriesFaultFirings the injection-point label.
const (
	SeriesEvals               = "relquery_evals_total"
	SeriesJoins               = "relquery_joins_total"
	SeriesIntermediateTuples  = "relquery_intermediate_tuples_total"
	SeriesTuplesBuilt         = "relquery_tuples_built_total"
	SeriesTuplesProbed        = "relquery_tuples_probed_total"
	SeriesTuplesEmitted       = "relquery_tuples_emitted_total"
	SeriesPartitionedJoins    = "relquery_partitioned_joins_total"
	SeriesPartitions          = "relquery_partitions_total"
	SeriesBroadcastJoins      = "relquery_broadcast_joins_total"
	SeriesSequentialFallbacks = "relquery_sequential_fallbacks_total"
	SeriesWCOJJoins           = "relquery_wcoj_joins_total"
	SeriesWCOJCandidates      = "relquery_wcoj_candidates_total"
	SeriesWCOJIntersections   = "relquery_wcoj_intersections_total"
	SeriesYannakakisJoins     = "relquery_yannakakis_joins_total"
	SeriesSemijoins           = "relquery_semijoins_total"
	SeriesSemijoinRows        = "relquery_semijoin_rows_total"
	SeriesDegradedEvals       = "relquery_degraded_evals_total"
	SeriesCacheHits           = "relquery_cache_hits_total"
	SeriesCacheMisses         = "relquery_cache_misses_total"
	SeriesCacheInvalidations  = "relquery_cache_invalidations_total"
	SeriesGovernorViolations  = "relquery_governor_violations_total"
	SeriesFaultFirings        = "relquery_fault_firings_total"
	SeriesPeakGauge           = "relquery_peak_intermediate_rows_gauge"
	SeriesLatencyHist         = "relquery_eval_latency_seconds"
	SeriesPeakRowsHist        = "relquery_peak_intermediate_rows"
	SeriesAGMRatioHist        = "relquery_peak_agm_ratio"
)

// Prometheus series of the relqueryd query server (internal/server
// appends these to the engine exposition).
const (
	SeriesServerRequests          = "relqueryd_requests_total"
	SeriesServerAdmissionRejects  = "relqueryd_admission_rejects_total"
	SeriesServerInflight          = "relqueryd_inflight_queries"
	SeriesServerTenantEvals       = "relqueryd_tenant_evals_total"
	SeriesServerPlanCacheHits     = "relqueryd_plan_cache_hits_total"
	SeriesServerPlanCacheMisses   = "relqueryd_plan_cache_misses_total"
	SeriesServerPlanCacheEntries  = "relqueryd_plan_cache_entries"
	SeriesServerSharedCacheHits   = "relqueryd_shared_cache_hits_total"
	SeriesServerSharedCacheMisses = "relqueryd_shared_cache_misses_total"
	SeriesServerSharedCacheInval  = "relqueryd_shared_cache_invalidations_total"
	SeriesServerSharedCacheSize   = "relqueryd_shared_cache_entries"
	SeriesServerCatalogRelations  = "relqueryd_catalog_relations"
)
