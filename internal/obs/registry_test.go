package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0, -1, 0.5, 1, 1.5, 2, 1024, math.NaN(), 1e30} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 { // NaN ignored
		t.Fatalf("Count = %d, want 8", s.Count)
	}
	wantSum := 0.0 + -1 + 0.5 + 1 + 1.5 + 2 + 1024 + 1e30
	if s.Sum != wantSum {
		t.Fatalf("Sum = %g, want %g", s.Sum, wantSum)
	}
	// Per-bucket expectations: 0 and -1 land in the lowest bucket,
	// 0.5 and 1 in their exact power-of-two buckets, 1.5 and 2 in le=2,
	// 1024 in le=1024, 1e30 in the overflow bucket.
	counts := map[float64]int64{}
	for _, b := range s.Buckets {
		counts[b.UpperBound] = b.Count
	}
	if got := counts[bucketBound(0)]; got != 2 {
		t.Errorf("lowest bucket = %d, want 2 (zero and negative)", got)
	}
	if got := counts[0.5]; got != 1 {
		t.Errorf("le=0.5 bucket = %d, want 1", got)
	}
	if got := counts[1]; got != 1 {
		t.Errorf("le=1 bucket = %d, want 1", got)
	}
	if got := counts[2]; got != 2 {
		t.Errorf("le=2 bucket = %d, want 2", got)
	}
	if got := counts[1024]; got != 1 {
		t.Errorf("le=1024 bucket = %d, want 1", got)
	}
	if got := counts[bucketBound(histBuckets-1)]; got != 1 {
		t.Errorf("overflow bucket = %d, want 1", got)
	}
	// Buckets must come out in increasing bound order with no empties.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].UpperBound <= s.Buckets[i-1].UpperBound {
			t.Fatalf("bucket bounds not increasing: %v", s.Buckets)
		}
	}
	for _, b := range s.Buckets {
		if b.Count == 0 {
			t.Fatalf("empty bucket in snapshot: %v", s.Buckets)
		}
	}
}

// TestHistogramBucketIndexExact pins the boundary convention: a power of
// two is the *upper* bound of its bucket (le is inclusive, Prometheus
// style).
func TestHistogramBucketIndexExact(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want float64 // expected upper bound
	}{
		{1, 1}, {1.0001, 2}, {2, 2}, {0.25, 0.25}, {0.3, 0.5}, {3, 4}, {4, 4}, {5, 8},
	} {
		if got := bucketBound(bucketIndex(tc.v)); got != tc.want {
			t.Errorf("bucketBound(bucketIndex(%g)) = %g, want %g", tc.v, got, tc.want)
		}
	}
}

func TestRegistryObserve(t *testing.T) {
	reg := NewRegistry()

	// Two traced evaluations and one collector-less one.
	t1 := &Trace{
		Roots: []*Span{{
			Op: OpJoin, OutputRows: 10, MaxIntermediate: 50, AGMBound: 100,
		}},
		Metrics: MetricsSnapshot{Joins: 2, MaxIntermediate: 50, ViolationsRowBudget: 1},
	}
	t2 := &Trace{
		Roots: []*Span{{
			Op: OpProject, OutputRows: 3,
			Children: []*Span{{Op: OpJoin, OutputRows: 8, AGMBound: 10}},
		}},
		Metrics: MetricsSnapshot{Joins: 1, MaxIntermediate: 8, ViolationsAdmission: 2},
	}
	reg.Observe(t1, 10*time.Millisecond)
	reg.Observe(t2, 20*time.Millisecond)
	reg.Observe(nil, 5*time.Millisecond)

	s := reg.Snapshot()
	if s.Evals != 3 {
		t.Fatalf("Evals = %d, want 3", s.Evals)
	}
	if s.Metrics.Joins != 3 {
		t.Errorf("total Joins = %d, want 3", s.Metrics.Joins)
	}
	if s.Metrics.MaxIntermediate != 50 {
		t.Errorf("MaxIntermediate = %d, want max-fold 50", s.Metrics.MaxIntermediate)
	}
	if s.Metrics.ViolationsRowBudget != 1 || s.Metrics.ViolationsAdmission != 2 {
		t.Errorf("violations = %+v, want row_budget=1 admission=2", s.Metrics.ViolationCounts())
	}
	if s.Metrics.ViolationsTotal() != 3 {
		t.Errorf("ViolationsTotal = %d, want 3", s.Metrics.ViolationsTotal())
	}
	if s.Latency.Count != 3 {
		t.Errorf("Latency.Count = %d, want 3 (nil-trace evals still time)", s.Latency.Count)
	}
	if s.PeakRows.Count != 2 {
		t.Errorf("PeakRows.Count = %d, want 2", s.PeakRows.Count)
	}
	// t1's worst ratio is 50/100 = 0.5; t2's is 8/10 = 0.8.
	if s.AGMRatio.Count != 2 {
		t.Errorf("AGMRatio.Count = %d, want 2", s.AGMRatio.Count)
	}
	if got := s.AGMRatio.Sum; math.Abs(got-1.3) > 1e-9 {
		t.Errorf("AGMRatio.Sum = %g, want 1.3", got)
	}
	if s.TracesHeld != 2 {
		t.Errorf("TracesHeld = %d, want 2", s.TracesHeld)
	}
	if traces := reg.Traces(); len(traces) != 2 || traces[0] != t1 || traces[1] != t2 {
		t.Errorf("Traces() = %v, want [t1 t2] oldest first", traces)
	}
}

func TestRegistryTraceRingBounded(t *testing.T) {
	reg := NewRegistry()
	reg.SetTraceCap(3)
	var want []*Trace
	for i := 0; i < 10; i++ {
		tr := &Trace{Metrics: MetricsSnapshot{Joins: int64(i)}}
		want = append(want, tr)
		reg.Observe(tr, time.Millisecond)
	}
	got := reg.Traces()
	if len(got) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(got))
	}
	for i, tr := range got {
		if tr != want[7+i] {
			t.Fatalf("ring[%d] = joins %d, want the 3 newest traces", i, tr.Metrics.Joins)
		}
	}
	// Shrinking the cap drops oldest first; disabling clears.
	reg.SetTraceCap(1)
	if got := reg.Traces(); len(got) != 1 || got[0] != want[9] {
		t.Fatalf("after SetTraceCap(1): %v", got)
	}
	reg.SetTraceCap(0)
	if got := reg.Traces(); len(got) != 0 {
		t.Fatalf("after SetTraceCap(0): %d traces retained", len(got))
	}
	reg.Observe(&Trace{}, 0)
	if got := reg.Traces(); len(got) != 0 {
		t.Fatalf("retention disabled but trace stored")
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines while
// snapshots are being taken — the cross-evaluation analogue of
// TestSnapshotConcurrent, run under -race by CI.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 200
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Snapshot()
				_ = reg.Traces()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr := &Trace{Metrics: MetricsSnapshot{Joins: 1, MaxIntermediate: int64(w*perWorker + i)}}
				reg.Observe(tr, time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	s := reg.Snapshot()
	if s.Evals != workers*perWorker {
		t.Errorf("Evals = %d, want %d", s.Evals, workers*perWorker)
	}
	if s.Metrics.Joins != workers*perWorker {
		t.Errorf("Joins = %d, want %d", s.Metrics.Joins, workers*perWorker)
	}
	if want := int64(workers*perWorker - 1); s.Metrics.MaxIntermediate != want {
		t.Errorf("MaxIntermediate = %d, want %d", s.Metrics.MaxIntermediate, want)
	}
	if s.Latency.Count != workers*perWorker {
		t.Errorf("Latency.Count = %d, want %d", s.Latency.Count, workers*perWorker)
	}
	if s.TracesHeld != DefaultTraceCap {
		t.Errorf("TracesHeld = %d, want the default cap %d", s.TracesHeld, DefaultTraceCap)
	}
}

// TestHistogramConcurrent checks the CAS-accumulated sum under contention.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(2)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("Count = %d, want %d", s.Count, workers*perWorker)
	}
	if s.Sum != 2*workers*perWorker {
		t.Errorf("Sum = %g, want %d", s.Sum, 2*workers*perWorker)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].UpperBound != 2 || s.Buckets[0].Count != workers*perWorker {
		t.Errorf("Buckets = %v, want all in le=2", s.Buckets)
	}
}

func TestViolationKindsMatchCounts(t *testing.T) {
	var m Metrics
	for i, kind := range ViolationKinds() {
		for j := 0; j <= i; j++ {
			m.Violation(kind)
		}
	}
	counts := m.Snapshot().ViolationCounts()
	if len(counts) != len(ViolationKinds()) {
		t.Fatalf("ViolationCounts has %d entries, want %d", len(counts), len(ViolationKinds()))
	}
	for i, vc := range counts {
		if vc.Kind != ViolationKinds()[i] {
			t.Errorf("counts[%d].Kind = %q, want %q", i, vc.Kind, ViolationKinds()[i])
		}
		if vc.Count != int64(i+1) {
			t.Errorf("counts[%d] (%s) = %d, want %d", i, vc.Kind, vc.Count, i+1)
		}
	}
	if got, want := m.Snapshot().ViolationsTotal(), int64(1+2+3+4+5); got != want {
		t.Errorf("ViolationsTotal = %d, want %d", got, want)
	}
	// The stats line renders every sentinel.
	line := m.Snapshot().String()
	for i, kind := range ViolationKinds() {
		if want := fmt.Sprintf("viol_%s=%d", kind, i+1); !strings.Contains(line, want) {
			t.Errorf("String() missing %q: %s", want, line)
		}
	}
}
