package algebra

import (
	"strings"
	"testing"

	"relquery/internal/relation"
)

func testSchemes() map[string]relation.Scheme {
	return map[string]relation.Scheme{
		"T":  relation.MustScheme("A", "B", "C"),
		"U":  relation.MustScheme("C", "D"),
		"pi": relation.MustScheme("P"),
	}
}

func TestParseOperand(t *testing.T) {
	e, err := Parse("T", testSchemes())
	if err != nil {
		t.Fatal(err)
	}
	o, ok := e.(*Operand)
	if !ok || o.Name() != "T" {
		t.Fatalf("parsed %T %v", e, e)
	}
}

func TestParseProjection(t *testing.T) {
	e, err := Parse("pi[A C](T)", testSchemes())
	if err != nil {
		t.Fatal(err)
	}
	p, ok := e.(*Project)
	if !ok {
		t.Fatalf("parsed %T", e)
	}
	if p.Onto().String() != "A C" {
		t.Errorf("onto = %v", p.Onto())
	}
	// "project" keyword is an alias.
	e2, err := Parse("project[A C](T)", testSchemes())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(e, e2) {
		t.Error("pi and project parse differently")
	}
}

func TestParseJoinChain(t *testing.T) {
	e, err := Parse("pi[A B](T) * pi[B C](T) * U", testSchemes())
	if err != nil {
		t.Fatal(err)
	}
	j, ok := e.(*Join)
	if !ok || len(j.Args()) != 3 {
		t.Fatalf("parsed %T with %d args", e, len(j.Args()))
	}
	if got := j.Scheme().String(); got != "A B C D" {
		t.Errorf("scheme = %q", got)
	}
}

func TestParseParentheses(t *testing.T) {
	e, err := Parse("(T * U)", testSchemes())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*Join); !ok {
		t.Fatalf("parsed %T", e)
	}
	// Projection of a parenthesized join.
	e2, err := Parse("pi[A D](T * U)", testSchemes())
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Scheme().String(); got != "A D" {
		t.Errorf("scheme = %q", got)
	}
}

func TestParseSubscriptedAttributes(t *testing.T) {
	schemes := map[string]relation.Scheme{
		"T": relation.MustScheme("F1", "X1", "Y{1,2}", "S"),
	}
	e, err := Parse("pi[F1 Y{1,2} S](T)", schemes)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Scheme().String(); got != "F1 Y{1,2} S" {
		t.Errorf("scheme = %q", got)
	}
}

func TestParsePiAsOperandName(t *testing.T) {
	// "pi" not followed by '[' is an ordinary operand name.
	e, err := Parse("pi * T", testSchemes())
	if err != nil {
		t.Fatal(err)
	}
	j, ok := e.(*Join)
	if !ok {
		t.Fatalf("parsed %T", e)
	}
	if o, ok := j.Args()[0].(*Operand); !ok || o.Name() != "pi" {
		t.Errorf("first arg = %v", j.Args()[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
		wantMsg   string
	}{
		{"unknown operand", "Z", "unknown operand"},
		{"trailing junk", "T T", "unexpected"},
		{"dangling star", "T *", "expected expression"},
		{"unclosed paren", "(T", "')'"},
		{"unclosed bracket", "pi[A(T)", "']'"},
		{"missing paren after pi", "pi[A] T", "'('"},
		{"empty input", "", "expected expression"},
		{"foreign projection attr", "pi[Z](T)", "not in target scheme"},
		{"duplicate projection attr", "pi[A A](T)", "duplicate"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src, testSchemes())
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantMsg)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	srcs := []string{
		"T",
		"pi[A B](T)",
		"pi[A B](T) * pi[B C](T)",
		"pi[A](pi[A B](T) * pi[B C](T) * U)",
		"T * U * pi[C](T)",
	}
	for _, src := range srcs {
		e, err := Parse(src, testSchemes())
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		back, err := Parse(e.String(), testSchemes())
		if err != nil {
			t.Errorf("%q: reparse of %q: %v", src, e.String(), err)
			continue
		}
		if !Equal(e, back) {
			t.Errorf("%q: round trip changed expression: %q", src, back.String())
		}
	}
}

func TestParseForDatabase(t *testing.T) {
	db := relation.NewDatabase()
	s := relation.MustScheme("A", "B")
	db.Put("R", relation.New(s))
	e, err := ParseForDatabase("pi[A](R)", db)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Scheme().String(); got != "A" {
		t.Errorf("scheme = %q", got)
	}
}

func TestParseEvalIntegration(t *testing.T) {
	db := relation.NewDatabase()
	r := mkrel(t, "A B C", "1 x p", "2 x q")
	db.Put("T", r)
	e, err := ParseForDatabase("pi[A](pi[A B](T) * pi[B C](T))", db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(mkrel(t, "A", "1", "2")) {
		t.Errorf("Eval = %v", got.Sorted())
	}
}
