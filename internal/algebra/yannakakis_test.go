package algebra

import (
	"errors"
	"fmt"
	"testing"

	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// spansWith collects every join span evaluated with the given algorithm.
func spansWith(sp *obs.Span, alg string) []*obs.Span {
	if sp == nil {
		return nil
	}
	var out []*obs.Span
	if sp.Op == obs.OpJoin && sp.Algorithm == alg {
		out = append(out, sp)
	}
	for _, c := range sp.Children {
		out = append(out, spansWith(c, alg)...)
	}
	return out
}

// danglingPath builds the acyclic blow-up family over schemes
// A B / B C / C D: every relation has n+1 tuples, so the greedy planner's
// size products all tie and its first-pair tie-break joins R1 ⋈ R2 —
// materializing n²+1 tuples of which the C D leg keeps only one chain —
// while the full reducer deletes the n dangling tuples on each side first
// and never materializes more than max(input, output) = n+1.
func danglingPath(t *testing.T, n int) (relation.Database, Expr) {
	t.Helper()
	r1 := relation.New(relation.MustScheme("A", "B"))
	r2 := relation.New(relation.MustScheme("B", "C"))
	r3 := relation.New(relation.MustScheme("C", "D"))
	for i := 0; i < n; i++ {
		r1.MustAdd(relation.TupleOf(fmt.Sprintf("a%d", i), "b0"))
		r2.MustAdd(relation.TupleOf("b0", fmt.Sprintf("c%d", i)))
		r3.MustAdd(relation.TupleOf("c*", fmt.Sprintf("d%d", i)))
	}
	r1.MustAdd(relation.TupleOf("a*", "b1"))
	r2.MustAdd(relation.TupleOf("b1", "c*"))
	r3.MustAdd(relation.TupleOf("c*", fmt.Sprintf("d%d", n)))
	db := relation.NewDatabase()
	db.Put("R1", r1)
	db.Put("R2", r2)
	db.Put("R3", r3)
	e, err := JoinAll(
		MustOperand("R1", r1.Scheme()),
		MustOperand("R2", r2.Scheme()),
		MustOperand("R3", r3.Scheme()),
	)
	if err != nil {
		t.Fatal(err)
	}
	return db, e
}

// TestAutoYannakakisSelectsAcyclic is the selector's core contract: on an
// acyclic node with dangling tuples, -join=auto runs Yannakakis, the span
// says so, and the peak materialization collapses from greedy's n²+1 to
// at most output + largest input.
func TestAutoYannakakisSelectsAcyclic(t *testing.T) {
	const n = 8
	db, e := danglingPath(t, n)

	refCol := &obs.Collector{}
	ref := Evaluator{Order: join.Greedy, Collector: refCol}
	want, err := ref.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	greedyPeak := int(refCol.Metrics.Snapshot().MaxIntermediate)
	if greedyPeak != n*n+1 {
		t.Fatalf("family lost its blow-up: greedy peak = %d, want %d", greedyPeak, n*n+1)
	}
	if want.Len() != n+1 {
		t.Fatalf("output = %d tuples, want %d", want.Len(), n+1)
	}

	col := &obs.Collector{}
	auto := Evaluator{Order: join.Greedy, AutoWCOJ: true, AutoYannakakis: true, Collector: col}
	got, err := auto.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("auto result differs from greedy engine (%d vs %d tuples)", got.Len(), want.Len())
	}
	spans := spansWith(col.Trace().Root(), "yannakakis")
	if len(spans) != 1 {
		t.Fatalf("auto selected %d yannakakis spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Structure != obs.StructureAcyclic {
		t.Errorf("structure = %q, want %q", sp.Structure, obs.StructureAcyclic)
	}
	if sp.Semijoins != 4 {
		t.Errorf("semijoins = %d, want 4", sp.Semijoins)
	}
	if sp.ReducedRows != 2+(n+1) { // one surviving tuple in R1 and R2, all of R3
		t.Errorf("reduced rows = %d, want %d", sp.ReducedRows, 2+n+1)
	}
	peak := sp.MaxIntermediate
	if sp.OutputRows > peak {
		peak = sp.OutputRows
	}
	if limit := want.Len() + (n + 1); peak > limit {
		t.Errorf("yannakakis peak %d exceeds output+largest input %d", peak, limit)
	}
	if peak >= greedyPeak {
		t.Errorf("yannakakis peak %d did not improve on greedy peak %d", peak, greedyPeak)
	}
}

// TestAutoCyclicRouting pins the selector's other two arms: a cyclic node
// whose predicted greedy peak exceeds the AGM bound goes to wcoj, and a
// cyclic node below the bound keeps the binary algorithm — both marked
// structure=cyclic.
func TestAutoCyclicRouting(t *testing.T) {
	t.Run("blowup to wcoj", func(t *testing.T) {
		// Triangle, 3 rows each: the first greedy accumulator's AGM bound
		// is 9, above the triangle bound 3^1.5 ≈ 5.2.
		db := relation.NewDatabase()
		db.Put("R", mkrel(t, "A B", "1 1", "2 2", "3 3"))
		db.Put("S", mkrel(t, "B C", "1 1", "2 2", "3 3"))
		db.Put("U", mkrel(t, "A C", "1 1", "2 2", "3 3"))
		e, err := JoinAll(
			MustOperand("R", relation.MustScheme("A", "B")),
			MustOperand("S", relation.MustScheme("B", "C")),
			MustOperand("U", relation.MustScheme("A", "C")),
		)
		if err != nil {
			t.Fatal(err)
		}
		col := &obs.Collector{}
		auto := Evaluator{Order: join.Greedy, AutoWCOJ: true, AutoYannakakis: true, Collector: col}
		got, err := auto.Eval(e, db)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 3 {
			t.Fatalf("triangle join = %d tuples, want 3", got.Len())
		}
		spans := spansWith(col.Trace().Root(), "wcoj")
		if len(spans) != 1 {
			t.Fatalf("cyclic blow-up node ran %d wcoj spans, want 1", len(spans))
		}
		if spans[0].Structure != obs.StructureCyclic {
			t.Errorf("structure = %q, want %q", spans[0].Structure, obs.StructureCyclic)
		}
	})
	t.Run("no blowup stays binary", func(t *testing.T) {
		// A 4-cycle's first greedy accumulator has the same AGM bound as
		// the whole node (N²), so the blow-up predicate does not fire.
		db := relation.NewDatabase()
		db.Put("R", mkrel(t, "A B", "1 1", "2 2"))
		db.Put("S", mkrel(t, "B C", "1 1", "2 2"))
		db.Put("U", mkrel(t, "C D", "1 1", "2 2"))
		db.Put("V", mkrel(t, "D A", "1 1", "2 2"))
		e, err := JoinAll(
			MustOperand("R", relation.MustScheme("A", "B")),
			MustOperand("S", relation.MustScheme("B", "C")),
			MustOperand("U", relation.MustScheme("C", "D")),
			MustOperand("V", relation.MustScheme("D", "A")),
		)
		if err != nil {
			t.Fatal(err)
		}
		col := &obs.Collector{}
		auto := Evaluator{Order: join.Greedy, AutoWCOJ: true, AutoYannakakis: true, Collector: col}
		if _, err := auto.Eval(e, db); err != nil {
			t.Fatal(err)
		}
		root := col.Trace().Root()
		if n := len(spansWith(root, "wcoj")) + len(spansWith(root, "yannakakis")); n != 0 {
			t.Fatalf("cyclic no-blow-up node left the binary path (%d special spans)", n)
		}
		spans := spansWith(root, "hash")
		if len(spans) != 1 || spans[0].Structure != obs.StructureCyclic {
			t.Errorf("binary span missing structure=cyclic: %+v", spans)
		}
	})
}

// TestForcedYannakakis covers -join=yannakakis: acyclic nodes run the
// full reducer, cyclic nodes fall back to the binary planner over the
// strategy's pairwise-reduced joins — same result either way.
func TestForcedYannakakis(t *testing.T) {
	db, e := danglingPath(t, 4)
	want, err := (&Evaluator{Order: join.Greedy}).Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	forced := Evaluator{Algorithm: join.Yannakakis{}, Order: join.Greedy, Collector: col}
	got, err := forced.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("forced yannakakis differs from greedy engine")
	}
	if len(spansWith(col.Trace().Root(), "yannakakis")) != 1 {
		t.Fatal("forced yannakakis did not produce a yannakakis span")
	}

	// Cyclic: forced strategy is still sound via pairwise fallback.
	tri := relation.NewDatabase()
	tri.Put("R", mkrel(t, "A B", "1 1", "1 2"))
	tri.Put("S", mkrel(t, "B C", "1 1", "2 1"))
	tri.Put("U", mkrel(t, "A C", "1 1"))
	te, err := JoinAll(
		MustOperand("R", relation.MustScheme("A", "B")),
		MustOperand("S", relation.MustScheme("B", "C")),
		MustOperand("U", relation.MustScheme("A", "C")),
	)
	if err != nil {
		t.Fatal(err)
	}
	twant, err := (&Evaluator{Order: join.Greedy}).Eval(te, tri)
	if err != nil {
		t.Fatal(err)
	}
	tcol := &obs.Collector{}
	tforced := Evaluator{Algorithm: join.Yannakakis{}, Order: join.Greedy, Collector: tcol}
	tgot, err := tforced.Eval(te, tri)
	if err != nil {
		t.Fatal(err)
	}
	if !tgot.Equal(twant) {
		t.Fatal("forced yannakakis on cyclic query differs from greedy engine")
	}
	spans := spansWith(tcol.Trace().Root(), "yannakakis")
	if len(spans) != 1 || spans[0].Structure != obs.StructureCyclic {
		t.Fatalf("cyclic forced span not marked: %+v", spans)
	}
}

// TestAutoSelectorEdgeCases routes the GYO edge shapes through
// -join=auto: single atoms, self-joins on one relation symbol, and
// disconnected hypergraphs with cartesian-product components.
func TestAutoSelectorEdgeCases(t *testing.T) {
	auto := func(col *obs.Collector) Evaluator {
		return Evaluator{Order: join.Greedy, AutoWCOJ: true, AutoYannakakis: true, Collector: col}
	}
	t.Run("single atom", func(t *testing.T) {
		r := mkrel(t, "A B", "1 x", "2 y")
		db := relation.Single("T", r)
		ev := auto(nil)
		got, err := ev.Eval(MustOperand("T", r.Scheme()), db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(r) {
			t.Errorf("single atom = %v", got.Sorted())
		}
	})
	t.Run("self-join same symbol", func(t *testing.T) {
		r := mkrel(t, "A B", "1 x", "2 y")
		db := relation.Single("T", r)
		op := MustOperand("T", r.Scheme())
		e, err := JoinAll(op, op, op)
		if err != nil {
			t.Fatal(err)
		}
		col := &obs.Collector{}
		ev := auto(col)
		got, err := ev.Eval(e, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(r) { // T ∗ T ∗ T = T
			t.Errorf("self-join = %v", got.Sorted())
		}
		spans := spansWith(col.Trace().Root(), "yannakakis")
		if len(spans) != 1 || spans[0].Structure != obs.StructureAcyclic {
			t.Errorf("self-join not routed to yannakakis: %+v", spans)
		}
	})
	t.Run("cartesian components", func(t *testing.T) {
		db := relation.NewDatabase()
		db.Put("R", mkrel(t, "A B", "1 x", "2 dead"))
		db.Put("S", mkrel(t, "B C", "x p"))
		db.Put("U", mkrel(t, "D E", "d1 e", "d2 e"))
		e, err := JoinAll(
			MustOperand("R", relation.MustScheme("A", "B")),
			MustOperand("S", relation.MustScheme("B", "C")),
			MustOperand("U", relation.MustScheme("D", "E")),
		)
		if err != nil {
			t.Fatal(err)
		}
		want, err := (&Evaluator{Order: join.Greedy}).Eval(e, db)
		if err != nil {
			t.Fatal(err)
		}
		col := &obs.Collector{}
		ev := auto(col)
		got, err := ev.Eval(e, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) || got.Len() != 2 {
			t.Errorf("cartesian components = %v, want %v", got.Sorted(), want.Sorted())
		}
		spans := spansWith(col.Trace().Root(), "yannakakis")
		if len(spans) != 1 || spans[0].Structure != obs.StructureAcyclic {
			t.Errorf("disconnected query not routed to yannakakis: %+v", spans)
		}
	})
}

// TestYannakakisBudgetEnforced checks the evaluation budget reaches into
// the full reducer's materializations.
func TestYannakakisBudgetEnforced(t *testing.T) {
	db, e := danglingPath(t, 8)
	ev := Evaluator{Algorithm: join.Yannakakis{}, Order: join.Greedy, MaxIntermediate: 2}
	_, err := ev.Eval(e, db)
	if err == nil {
		t.Fatal("budget 2 not enforced under yannakakis")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("error is not ErrBudgetExceeded: %v", err)
	}
}
