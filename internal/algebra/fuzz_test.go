package algebra

import (
	"testing"

	"relquery/internal/relation"
)

// FuzzParse checks that the expression parser never panics and that
// anything it accepts round-trips through String and re-parses to a
// structurally equal expression.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"T",
		"pi[A B](T)",
		"pi[A B](T) * pi[B C](T)",
		"pi[A](pi[A B](T) * pi[B C](T))",
		"((T))",
		"pi[Y{1,2} S](T)",
		"pi[](T)",
		"pi[A(T)",
		"T * * T",
		"project[A]((T))",
		"pi * T",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schemes := map[string]relation.Scheme{
		"T":  relation.MustScheme("A", "B", "C", "Y{1,2}", "S"),
		"pi": relation.MustScheme("P"),
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src, schemes)
		if err != nil {
			return
		}
		back, err := Parse(e.String(), schemes)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", src, e.String(), err)
		}
		if !Equal(e, back) {
			t.Fatalf("round trip changed %q -> %q", e.String(), back.String())
		}
	})
}
