// Package algebra implements project–join relational expressions: the
// query language studied by Cosmadakis (1983). An expression is built from
// relation-scheme operands using only projection (π) and natural join (∗);
// it denotes a function from databases to relations, whose output scheme is
// the paper's "target relation scheme" trs(φ).
//
// The package provides a validating AST, an evaluator with pluggable join
// algorithms and execution statistics, and a text syntax with a parser and
// printer:
//
//	pi[F1 F2 F3](T) * pi[F1 X1 X2 X3 Y{1,2} Y{1,3} S](T)
//
// Attribute tokens may contain any characters except whitespace and the
// delimiters "[", "]", "(", ")" and "*", so the paper's subscripted
// attributes such as Y{1,2} are ordinary tokens.
package algebra

import (
	"fmt"
	"strings"

	"relquery/internal/relation"
)

// Expr is a project–join relational expression. Implementations are
// Operand, Project and Join. An Expr is immutable after construction.
type Expr interface {
	// Scheme returns the target relation scheme trs(e) of the expression.
	Scheme() relation.Scheme
	// Operands reports the distinct operand names referenced, in first-use
	// order.
	Operands() []string
	// String renders the expression in the package's text syntax.
	String() string

	appendOperands(seen map[string]bool, out *[]string)
	write(b *strings.Builder, parenthesizeJoin bool)
}

// Operand is a reference to a named database relation over a known scheme
// (the paper's relation-scheme operand).
type Operand struct {
	name   string
	scheme relation.Scheme
}

// NewOperand builds an operand reference. The name must be non-empty.
func NewOperand(name string, scheme relation.Scheme) (*Operand, error) {
	if name == "" {
		return nil, fmt.Errorf("algebra: operand name must be non-empty")
	}
	return &Operand{name: name, scheme: scheme}, nil
}

// MustOperand is NewOperand for statically known operands; it panics on
// error.
func MustOperand(name string, scheme relation.Scheme) *Operand {
	o, err := NewOperand(name, scheme)
	if err != nil {
		panic(err)
	}
	return o
}

// Name returns the operand's relation name.
func (o *Operand) Name() string { return o.name }

// Scheme implements Expr.
func (o *Operand) Scheme() relation.Scheme { return o.scheme }

// Operands implements Expr.
func (o *Operand) Operands() []string { return []string{o.name} }

func (o *Operand) appendOperands(seen map[string]bool, out *[]string) {
	if !seen[o.name] {
		seen[o.name] = true
		*out = append(*out, o.name)
	}
}

// String implements Expr.
func (o *Operand) String() string { return o.name }

func (o *Operand) write(b *strings.Builder, _ bool) { b.WriteString(o.name) }

// Project is the projection π_onto(of).
type Project struct {
	onto relation.Scheme
	of   Expr
}

// NewProject builds π_onto(of), checking that every attribute of onto
// occurs in of's target scheme.
func NewProject(onto relation.Scheme, of Expr) (*Project, error) {
	if of == nil {
		return nil, fmt.Errorf("algebra: projection of nil expression")
	}
	child := of.Scheme()
	for _, a := range onto.Attrs() {
		if !child.Has(a) {
			return nil, fmt.Errorf("algebra: cannot project onto %q: not in target scheme %v", a, child)
		}
	}
	return &Project{onto: onto, of: of}, nil
}

// MustProject is NewProject for statically valid projections; it panics on
// error.
func MustProject(onto relation.Scheme, of Expr) *Project {
	p, err := NewProject(onto, of)
	if err != nil {
		panic(err)
	}
	return p
}

// Onto returns the projection's target scheme.
func (p *Project) Onto() relation.Scheme { return p.onto }

// Of returns the projected expression.
func (p *Project) Of() Expr { return p.of }

// Scheme implements Expr.
func (p *Project) Scheme() relation.Scheme { return p.onto }

// Operands implements Expr.
func (p *Project) Operands() []string { return operandsOf(p) }

func (p *Project) appendOperands(seen map[string]bool, out *[]string) {
	p.of.appendOperands(seen, out)
}

// String implements Expr.
func (p *Project) String() string { return render(p) }

func (p *Project) write(b *strings.Builder, _ bool) {
	b.WriteString("pi[")
	b.WriteString(p.onto.String())
	b.WriteString("](")
	p.of.write(b, false)
	b.WriteString(")")
}

// Join is the natural join of two or more expressions, written
// e₁ ∗ e₂ ∗ … ∗ e_k. Nested joins are kept flat: the constructor splices
// Join arguments into the argument list, which is semantically transparent
// because natural join is associative.
type Join struct {
	args   []Expr
	scheme relation.Scheme
}

// NewJoin builds the join of the given expressions. At least two arguments
// are required; use the expressions directly for fewer.
func NewJoin(args ...Expr) (*Join, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("algebra: join needs at least 2 arguments, got %d", len(args))
	}
	flat := make([]Expr, 0, len(args))
	for i, a := range args {
		if a == nil {
			return nil, fmt.Errorf("algebra: join argument %d is nil", i)
		}
		if j, ok := a.(*Join); ok {
			flat = append(flat, j.args...)
		} else {
			flat = append(flat, a)
		}
	}
	scheme := flat[0].Scheme()
	for _, a := range flat[1:] {
		scheme = scheme.Union(a.Scheme())
	}
	return &Join{args: flat, scheme: scheme}, nil
}

// MustJoin is NewJoin for statically valid joins; it panics on error.
func MustJoin(args ...Expr) *Join {
	j, err := NewJoin(args...)
	if err != nil {
		panic(err)
	}
	return j
}

// JoinAll joins the expressions, returning the single expression unchanged
// when len(args) == 1.
func JoinAll(args ...Expr) (Expr, error) {
	switch len(args) {
	case 0:
		return nil, fmt.Errorf("algebra: JoinAll of zero expressions")
	case 1:
		return args[0], nil
	default:
		return NewJoin(args...)
	}
}

// Args returns the join's arguments (not a copy; do not modify).
func (j *Join) Args() []Expr { return j.args }

// Scheme implements Expr.
func (j *Join) Scheme() relation.Scheme { return j.scheme }

// Operands implements Expr.
func (j *Join) Operands() []string { return operandsOf(j) }

func (j *Join) appendOperands(seen map[string]bool, out *[]string) {
	for _, a := range j.args {
		a.appendOperands(seen, out)
	}
}

// String implements Expr.
func (j *Join) String() string { return render(j) }

func (j *Join) write(b *strings.Builder, parenthesize bool) {
	if parenthesize {
		b.WriteString("(")
	}
	for i, a := range j.args {
		if i > 0 {
			b.WriteString(" * ")
		}
		a.write(b, true)
	}
	if parenthesize {
		b.WriteString(")")
	}
}

func operandsOf(e Expr) []string {
	var out []string
	e.appendOperands(make(map[string]bool), &out)
	return out
}

func render(e Expr) string {
	var b strings.Builder
	e.write(&b, false)
	return b.String()
}

// Equal reports structural equality of two expressions: same shape, same
// operand names and schemes (in order), same projection schemes (in
// order). Join argument order is significant, matching the written form.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case *Operand:
		y, ok := b.(*Operand)
		return ok && x.name == y.name && x.scheme.SameOrder(y.scheme)
	case *Project:
		y, ok := b.(*Project)
		return ok && x.onto.SameOrder(y.onto) && Equal(x.of, y.of)
	case *Join:
		y, ok := b.(*Join)
		if !ok || len(x.args) != len(y.args) {
			return false
		}
		for i := range x.args {
			if !Equal(x.args[i], y.args[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Size returns the number of AST nodes, a convenient measure of query
// complexity for the experiment tables.
func Size(e Expr) int {
	switch x := e.(type) {
	case *Operand:
		return 1
	case *Project:
		return 1 + Size(x.of)
	case *Join:
		n := 1
		for _, a := range x.args {
			n += Size(a)
		}
		return n
	default:
		return 0
	}
}
