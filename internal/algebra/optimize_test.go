package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relquery/internal/relation"
)

func optSchemes() map[string]relation.Scheme {
	return map[string]relation.Scheme{
		"T": relation.MustScheme("A", "B", "C", "D"),
		"U": relation.MustScheme("C", "E"),
	}
}

func mustParse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src, optSchemes())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOptimizeCascade(t *testing.T) {
	e := mustParse(t, "pi[A](pi[A B](pi[A B C](T)))")
	opt, err := Optimize(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.String(); got != "pi[A](T)" {
		t.Errorf("Optimize = %q, want pi[A](T)", got)
	}
}

func TestOptimizeNoOpProjection(t *testing.T) {
	e := mustParse(t, "pi[A B C D](T)")
	opt, err := Optimize(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.String(); got != "T" {
		t.Errorf("Optimize = %q, want T", got)
	}
}

func TestOptimizeJoinDeduplication(t *testing.T) {
	e := mustParse(t, "pi[A B](T) * pi[A B](T)")
	opt, err := Optimize(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.String(); got != "pi[A B](T)" {
		t.Errorf("Optimize = %q, want pi[A B](T)", got)
	}
}

func TestOptimizePushdown(t *testing.T) {
	e := mustParse(t, "pi[A E](T * U)")
	opt, err := Optimize(e)
	if err != nil {
		t.Fatal(err)
	}
	// T narrows to A and the join key C; U keeps C and E (no change: it
	// already only has C E).
	want := "pi[A E](pi[A C](T) * U)"
	if got := opt.String(); got != want {
		t.Errorf("Optimize = %q, want %q", got, want)
	}
}

func TestOptimizePushdownStable(t *testing.T) {
	// Optimizing an already-optimized expression changes nothing.
	e := mustParse(t, "pi[A E](T * U)")
	once, err := Optimize(e)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Optimize(once)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(once, twice) {
		t.Errorf("not a fixpoint: %q then %q", once, twice)
	}
}

func TestOptimizeTargetSchemeSetPreserved(t *testing.T) {
	srcs := []string{
		"pi[A E](T * U)",
		"pi[B](pi[A B](T))",
		"T * T * U",
		"pi[A B C D](T) * U",
	}
	for _, src := range srcs {
		e := mustParse(t, src)
		opt, err := Optimize(e)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if !opt.Scheme().Equal(e.Scheme()) {
			t.Errorf("%q: target changed from %v to %v", src, e.Scheme(), opt.Scheme())
		}
	}
}

func TestQuickOptimizePreservesSemantics(t *testing.T) {
	srcs := []string{
		"pi[A E](T * U)",
		"pi[A](pi[A B](pi[A B C](T)))",
		"pi[A B](T) * pi[B C](T) * pi[A B](T)",
		"pi[A D](pi[A B](T) * pi[B C](T) * pi[C D](T))",
		"pi[E](T * U)",
		"T * U",
		"pi[A C E](pi[A B C D](T) * U * pi[C](U))",
	}
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		src := srcs[int(pick)%len(srcs)]
		e, err := Parse(src, optSchemes())
		if err != nil {
			return false
		}
		opt, err := Optimize(e)
		if err != nil {
			return false
		}
		db := relation.NewDatabase()
		alphabet := []string{"0", "1", "e"}
		for name, scheme := range optSchemes() {
			r := relation.New(scheme)
			for i, n := 0, rng.Intn(10); i < n; i++ {
				tp := make(relation.Tuple, scheme.Len())
				for j := range tp {
					tp[j] = relation.Value(alphabet[rng.Intn(3)])
				}
				r.MustAdd(tp)
			}
			db.Put(name, r)
		}
		before, err := Eval(e, db)
		if err != nil {
			return false
		}
		after, err := Eval(opt, db)
		if err != nil {
			return false
		}
		return before.Equal(after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeShrinksGadgetIntermediates(t *testing.T) {
	// On a wide relation, pushdown must reduce the join argument widths.
	e := mustParse(t, "pi[A](T * U)")
	opt, err := Optimize(e)
	if err != nil {
		t.Fatal(err)
	}
	if Size(opt) <= Size(e) && opt.String() == e.String() {
		t.Errorf("no rewrite applied: %q", opt)
	}
	// The join arguments must now be projections narrower than T.
	p, ok := opt.(*Project)
	if !ok {
		t.Fatalf("optimized root = %T", opt)
	}
	j, ok := p.Of().(*Join)
	if !ok {
		t.Fatalf("optimized child = %T", p.Of())
	}
	for _, a := range j.Args() {
		if a.Scheme().Len() >= 4 {
			t.Errorf("argument not narrowed: %v", a)
		}
	}
}
