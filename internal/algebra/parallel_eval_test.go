package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"relquery/internal/obs"
	"relquery/internal/relation"
)

// randomWideRel builds a relation over the given attributes with enough
// rows to push intermediate joins over join.MinParallelRows.
func randomWideRel(t *testing.T, seed int64, attrs []string, rows, vals int) *relation.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s, err := relation.SchemeOf(joinStrings(attrs))
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	for i := 0; i < rows; i++ {
		row := make([]string, len(attrs))
		for j := range row {
			row[j] = fmt.Sprintf("v%d", rng.Intn(vals))
		}
		r.MustAdd(relation.TupleOf(row...))
	}
	return r
}

func joinStrings(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}

// legsExpr builds the paper-shaped query ∗_i π_{Y_i}(T): one projection
// leg per attribute pair, joined.
func legsExpr(t *testing.T, op *Operand, pairs [][]string) Expr {
	t.Helper()
	legs := make([]Expr, len(pairs))
	for i, p := range pairs {
		s, err := relation.SchemeOf(joinStrings(p))
		if err != nil {
			t.Fatal(err)
		}
		legs[i] = MustProject(s, op)
	}
	e, err := JoinAll(legs...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestParallelEvalMatchesSequential runs the same project–join query
// through the sequential engine and the parallel engine at parallelism
// 1, 2 and 8, requiring set-equal results and byte-identical sorted
// renderings.
func TestParallelEvalMatchesSequential(t *testing.T) {
	r := randomWideRel(t, 42, []string{"A", "B", "C", "D"}, 500, 12)
	db := relation.Single("T", r)
	op := MustOperand("T", r.Scheme())
	e := legsExpr(t, op, [][]string{{"A", "B"}, {"B", "C"}, {"C", "D"}})

	seq := Evaluator{}
	want, err := seq.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		ev := EvalOptions{Parallelism: par, Cache: true}.NewEvaluator()
		got, err := ev.Eval(e, db)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !got.Equal(want) {
			t.Fatalf("parallelism %d: result differs (%d vs %d tuples)", par, got.Len(), want.Len())
		}
		if relation.RenderSorted(got) != relation.RenderSorted(want) {
			t.Fatalf("parallelism %d: sorted rendering differs", par)
		}
	}
}

// TestParallelEvalStats checks that a collector shared across the
// parallel workers survives concurrent observation and counts the same
// number of joins as sequential evaluation.
func TestParallelEvalStats(t *testing.T) {
	r := randomWideRel(t, 7, []string{"A", "B", "C"}, 400, 10)
	db := relation.Single("T", r)
	op := MustOperand("T", r.Scheme())
	e := legsExpr(t, op, [][]string{{"A", "B"}, {"B", "C"}, {"A", "C"}})

	seqCol := &obs.Collector{}
	if _, err := (&Evaluator{Collector: seqCol}).Eval(e, db); err != nil {
		t.Fatal(err)
	}
	parCol := &obs.Collector{}
	ev := Evaluator{Parallelism: 8, Collector: parCol}
	if _, err := ev.Eval(e, db); err != nil {
		t.Fatal(err)
	}
	seqJoins := seqCol.Metrics.Snapshot().Joins
	parJoins := parCol.Metrics.Snapshot().Joins
	if seqJoins != parJoins {
		t.Fatalf("join count differs: sequential %d, parallel %d", seqJoins, parJoins)
	}
}

// TestMemoComputeOnceUnderParallelism verifies the per-call memo's
// compute-once guarantee: with duplicated legs evaluated concurrently,
// each distinct subexpression must be evaluated exactly once.
func TestMemoComputeOnceUnderParallelism(t *testing.T) {
	r := randomWideRel(t, 9, []string{"A", "B", "C"}, 400, 10)
	db := relation.Single("T", r)
	op := MustOperand("T", r.Scheme())
	leg := MustProject(relation.MustScheme("A", "B"), op)
	other := MustProject(relation.MustScheme("B", "C"), op)
	// The same leg appears three times; flattening keeps the duplicates.
	e := MustJoin(leg, other, leg, leg)

	// Compute-once is observable through the shared cache: each distinct
	// composite subexpression misses exactly once even though the
	// duplicated leg is requested three times by concurrent workers.
	cache := NewSubexprCache()
	ev2 := Evaluator{Parallelism: 4, Cache: true, SharedCache: cache}
	if _, err := ev2.Eval(e, db); err != nil {
		t.Fatal(err)
	}
	_, misses, entries := cache.Stats()
	// Distinct composite subexpressions: the two projection legs and the
	// top-level join = 3.
	if misses != 3 || entries != 3 {
		t.Fatalf("cache misses=%d entries=%d, want 3 and 3", misses, entries)
	}
	// Re-evaluating against the unchanged database is all hits.
	if _, err := ev2.Eval(e, db); err != nil {
		t.Fatal(err)
	}
	hits, misses2, _ := cache.Stats()
	if misses2 != 3 {
		t.Fatalf("second eval recomputed: misses %d", misses2)
	}
	if hits == 0 {
		t.Fatal("second eval produced no cache hits")
	}
}

// TestSharedCacheInvalidation: mutating a referenced relation changes
// its fingerprint, so the cache must miss rather than serve stale data.
func TestSharedCacheInvalidation(t *testing.T) {
	r := mkrel(t, "A B", "1 x", "2 y")
	db := relation.Single("T", r)
	op := MustOperand("T", r.Scheme())
	e := MustJoin(
		MustProject(relation.MustScheme("A"), op),
		MustProject(relation.MustScheme("B"), op),
	)
	cache := NewSubexprCache()
	ev := Evaluator{Cache: true, SharedCache: cache}
	first, err := ev.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if first.Len() != 4 {
		t.Fatalf("first eval: %d tuples, want 4", first.Len())
	}
	// Mutate T: the cached legs are now stale.
	r.MustAdd(relation.TupleOf("3", "z"))
	second, err := ev.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if second.Len() != 9 {
		t.Fatalf("after mutation: %d tuples, want 9 (stale cache?)", second.Len())
	}
}

// TestParallelEvalBudget: the intermediate-size budget must abort
// parallel evaluation just as it does sequential.
func TestParallelEvalBudget(t *testing.T) {
	r := randomWideRel(t, 11, []string{"A", "B", "C"}, 500, 8)
	db := relation.Single("T", r)
	op := MustOperand("T", r.Scheme())
	e := legsExpr(t, op, [][]string{{"A", "B"}, {"B", "C"}})
	ev := Evaluator{Parallelism: 8, MaxIntermediate: 10}
	if _, err := ev.Eval(e, db); err == nil {
		t.Fatal("budget 10 not enforced under parallel evaluation")
	}
}
