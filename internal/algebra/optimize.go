package algebra

import (
	"relquery/internal/relation"
)

// Optimize rewrites a project–join expression into an equivalent one that
// evaluates with smaller intermediates, applying three classical rules to
// fixpoint:
//
//	cascade      π_X(π_Y(e))        → π_X(e)
//	pushdown     π_X(e₁ ∗ … ∗ e_k)  → π_X(π_{N₁}(e₁) ∗ … ∗ π_{N_k}(e_k))
//	             where N_i = scheme(e_i) ∩ (X ∪ J) and J is the set of
//	             attributes shared by at least two join arguments
//	idempotence  e ∗ e              → e   (structurally equal arguments)
//
// plus removal of no-op projections (π onto the child's exact scheme, in
// order). The rewrite preserves the query's value on every database — the
// result relation may list its columns in a different order, which the
// library's set-semantics comparisons ignore. Optimization cannot make the
// paper's gadget queries tractable (their blow-up is inherent — that is
// the point of the paper), but it prunes the easy fat.
func Optimize(e Expr) (Expr, error) {
	for {
		rewritten, changed, err := rewrite(e)
		if err != nil {
			return nil, err
		}
		if !changed {
			return rewritten, nil
		}
		e = rewritten
	}
}

// rewrite applies one bottom-up pass of the rules.
func rewrite(e Expr) (Expr, bool, error) {
	switch x := e.(type) {
	case *Operand:
		return x, false, nil

	case *Project:
		child, changed, err := rewrite(x.Of())
		if err != nil {
			return nil, false, err
		}
		// Cascade: collapse directly nested projections.
		if inner, ok := child.(*Project); ok {
			merged, err := NewProject(x.Onto(), inner.Of())
			if err != nil {
				return nil, false, err
			}
			return merged, true, nil
		}
		// No-op: projecting a child onto its own scheme, same order.
		if x.Onto().SameOrder(child.Scheme()) {
			return child, true, nil
		}
		// Pushdown into a join.
		if j, ok := child.(*Join); ok {
			pushed, didPush, err := pushProjection(x.Onto(), j)
			if err != nil {
				return nil, false, err
			}
			if didPush {
				return pushed, true, nil
			}
		}
		if changed {
			p, err := NewProject(x.Onto(), child)
			if err != nil {
				return nil, false, err
			}
			return p, true, nil
		}
		return x, false, nil

	case *Join:
		args := make([]Expr, 0, len(x.Args()))
		changed := false
		for _, a := range x.Args() {
			ra, c, err := rewrite(a)
			if err != nil {
				return nil, false, err
			}
			changed = changed || c
			args = append(args, ra)
		}
		// Idempotence: drop structurally duplicate arguments.
		deduped := args[:0:0]
		for _, a := range args {
			dup := false
			for _, kept := range deduped {
				if Equal(a, kept) {
					dup = true
					break
				}
			}
			if dup {
				changed = true
				continue
			}
			deduped = append(deduped, a)
		}
		out, err := JoinAll(deduped...)
		if err != nil {
			return nil, false, err
		}
		if changed {
			return out, true, nil
		}
		return x, false, nil

	default:
		return e, false, nil
	}
}

// pushProjection rewrites π_X(j) by narrowing each join argument to the
// attributes it must keep: those in X plus those shared with another
// argument (needed as join keys). It reports didPush=false when no
// argument would actually shrink (to guarantee termination).
func pushProjection(onto relation.Scheme, j *Join) (Expr, bool, error) {
	args := j.Args()
	// Count attribute occurrences across argument schemes.
	occ := make(map[relation.Attribute]int)
	for _, a := range args {
		for _, attr := range a.Scheme().Attrs() {
			occ[attr]++
		}
	}
	keep := func(arg Expr) relation.Scheme {
		var attrs []relation.Attribute
		for _, attr := range arg.Scheme().Attrs() {
			if onto.Has(attr) || occ[attr] >= 2 {
				attrs = append(attrs, attr)
			}
		}
		return relation.MustScheme(attrs...)
	}

	shrunk := false
	newArgs := make([]Expr, len(args))
	for i, a := range args {
		n := keep(a)
		if n.Len() == a.Scheme().Len() {
			newArgs[i] = a
			continue
		}
		p, err := NewProject(n, a)
		if err != nil {
			return nil, false, err
		}
		newArgs[i] = p
		shrunk = true
	}
	if !shrunk {
		return nil, false, nil
	}
	inner, err := JoinAll(newArgs...)
	if err != nil {
		return nil, false, err
	}
	outer, err := NewProject(onto, inner)
	if err != nil {
		return nil, false, err
	}
	return outer, true, nil
}
