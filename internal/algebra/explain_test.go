package algebra

import (
	"strings"
	"testing"

	"relquery/internal/relation"
)

func TestExplainShape(t *testing.T) {
	r := mkrel(t, "A B C", "1 x p", "2 x q", "2 y q")
	db := relation.Single("T", r)
	e, err := ParseForDatabase("pi[A C](pi[A B](T) * pi[B C](T))", db)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Explain(e, db)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // pi, join, pi, T, pi, T
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "pi[A C]") || !strings.Contains(lines[0], "rows=") {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "natural join") {
		t.Errorf("join line = %q", lines[1])
	}
	// The join node's count (5) exceeds the projection above it (4) —
	// the shape Explain is meant to surface.
	if !strings.Contains(lines[0], "rows=4") || !strings.Contains(lines[1], "rows=5") {
		t.Errorf("row counts wrong:\n%s", out)
	}
	// Tree connectors present.
	if !strings.Contains(out, "├─") || !strings.Contains(out, "└─") {
		t.Errorf("missing connectors:\n%s", out)
	}
}

func TestExplainOperandOnly(t *testing.T) {
	r := mkrel(t, "A", "1", "2")
	db := relation.Single("T", r)
	e, err := ParseForDatabase("T", db)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Explain(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "T") || !strings.Contains(out, "rows=2") {
		t.Errorf("Explain = %q", out)
	}
}

func TestExplainPropagatesErrors(t *testing.T) {
	e := MustOperand("Missing", relation.MustScheme("A"))
	if _, err := Explain(e, relation.NewDatabase()); err == nil {
		t.Error("missing operand accepted")
	}
}

func TestExplainWithBudget(t *testing.T) {
	db := relation.NewDatabase()
	db.Put("L", mkrel(t, "A", "1", "2", "3"))
	db.Put("R", mkrel(t, "B", "1", "2", "3"))
	e := MustJoin(
		MustOperand("L", relation.MustScheme("A")),
		MustOperand("R", relation.MustScheme("B")),
	)
	ev := Evaluator{MaxIntermediate: 2}
	if _, err := ExplainWith(&ev, e, db); err == nil {
		t.Error("budget violation not propagated")
	}
}
