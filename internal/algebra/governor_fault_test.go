package algebra

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"relquery/internal/fault"
	"relquery/internal/governor"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// chainWorkload builds an acyclic three-relation chain join
// R1(A,B) ∗ R2(B,C) ∗ R3(C,D) large enough that every strategy crosses
// many governor tick batches (governor.CheckEvery) and several fault
// injection points: ~12k output tuples from ~1.4k input tuples. Being a
// chain it is α-acyclic, so the same expression drives the greedy binary,
// parallel, wcoj and yannakakis strategies.
func chainWorkload(t testing.TB) (Expr, relation.Database) {
	t.Helper()
	r1 := relation.New(relation.MustScheme("A", "B"))
	r2 := relation.New(relation.MustScheme("B", "C"))
	r3 := relation.New(relation.MustScheme("C", "D"))
	for i := 0; i < 600; i++ {
		r1.MustAdd(relation.TupleOf(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%20)))
	}
	for j := 0; j < 400; j++ {
		r2.MustAdd(relation.TupleOf(fmt.Sprintf("b%d", j%20), fmt.Sprintf("c%d", j)))
		r3.MustAdd(relation.TupleOf(fmt.Sprintf("c%d", j), fmt.Sprintf("d%d", j)))
	}
	db := relation.NewDatabase()
	db.Put("R1", r1)
	db.Put("R2", r2)
	db.Put("R3", r3)
	e := MustJoin(
		MustOperand("R1", r1.Scheme()),
		MustOperand("R2", r2.Scheme()),
		MustOperand("R3", r3.Scheme()),
	)
	return e, db
}

// evalStrategy pairs one evaluation strategy with the fault point its
// hot loop crosses, so cancellation and panic can be injected mid-join
// (not merely before the join starts).
type evalStrategy struct {
	name  string
	point fault.Point
	mk    func() *Evaluator
}

// evalStrategies returns the four join strategies the governor must
// interrupt: greedy binary hash, parallel hash, worst-case-optimal
// generic, and Yannakakis.
func evalStrategies() []evalStrategy {
	return []evalStrategy{
		{"greedy-hash", fault.JoinBatch, func() *Evaluator {
			return &Evaluator{Order: join.Greedy}
		}},
		{"parallel", fault.ParallelWorker, func() *Evaluator {
			return &Evaluator{Order: join.Greedy, Parallelism: 4}
		}},
		{"wcoj", fault.WCOJSearch, func() *Evaluator {
			return &Evaluator{Order: join.Greedy, Algorithm: join.Generic{}}
		}},
		{"yannakakis", fault.Semijoin, func() *Evaluator {
			return &Evaluator{Order: join.Greedy, Algorithm: join.Yannakakis{}}
		}},
	}
}

// chainBaselines evaluates the workload ungoverned once per strategy and
// returns each strategy's reference rendering, cross-checked for set
// equality against the greedy engine (strategies may emit a different —
// but fixed — column order, so byte-identity only holds within one
// strategy).
func chainBaselines(t *testing.T, e Expr, db relation.Database) map[string]string {
	t.Helper()
	ref, err := (&Evaluator{Order: join.Greedy}).Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Len() == 0 {
		t.Fatal("chain workload produced an empty join")
	}
	out := make(map[string]string, len(evalStrategies()))
	for _, st := range evalStrategies() {
		got, err := st.mk().Eval(e, db)
		if err != nil {
			t.Fatalf("%s baseline: %v", st.name, err)
		}
		if !got.Equal(ref) {
			t.Fatalf("%s baseline disagrees with the greedy engine", st.name)
		}
		out[st.name] = relation.RenderSorted(got)
	}
	return out
}

// TestCancelMidJoinParity is the cancellation parity suite: for each of
// the four strategies, a fault rule cancels the evaluation's context from
// inside the strategy's own hot loop. The evaluation must die with the
// typed governor.ErrCanceled sentinel, must not poison the shared
// subexpression cache with a partial relation, and a rerun against the
// same cache must be byte-identical to the ungoverned baseline.
func TestCancelMidJoinParity(t *testing.T) {
	e, db := chainWorkload(t)
	baselines := chainBaselines(t, e, db)
	for _, st := range evalStrategies() {
		t.Run(st.name, func(t *testing.T) {
			cache := NewSubexprCache()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			restore := fault.Set(fault.NewScript(fault.Rule{
				Point: st.point, N: 2, Act: fault.Call, Func: cancel,
			}))
			ev := st.mk()
			ev.Cache = true
			ev.SharedCache = cache
			out, err := ev.EvalContext(ctx, e, db)
			restore()
			if err == nil {
				t.Fatalf("evaluation survived a context cancel injected at %s (got %d rows)", st.point, out.Len())
			}
			if !errors.Is(err, governor.ErrCanceled) {
				t.Fatalf("want governor.ErrCanceled in chain, got %v", err)
			}
			if !governor.Violated(err) {
				t.Fatalf("cancellation must register as a governor violation: %v", err)
			}

			// Byte-identical rerun over the same shared cache: an aborted
			// evaluation must not have stored partial results.
			ev2 := st.mk()
			ev2.Cache = true
			ev2.SharedCache = cache
			got, err := ev2.Eval(e, db)
			if err != nil {
				t.Fatalf("rerun after cancel failed: %v", err)
			}
			if relation.RenderSorted(got) != baselines[st.name] {
				t.Fatalf("%s: rerun after cancel is not byte-identical to the baseline", st.name)
			}
		})
	}
}

// TestCancelBetweenOperatorsIsTyped cancels at an algebra-node boundary
// (fault.EvalNode) rather than inside a join loop: the per-node governor
// checkpoint must surface the same typed sentinel.
func TestCancelBetweenOperatorsIsTyped(t *testing.T) {
	e, db := chainWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	restore := fault.Set(fault.NewScript(fault.Rule{
		Point: fault.EvalNode, N: 2, Act: fault.Call, Func: cancel,
	}))
	defer restore()
	ev := &Evaluator{Order: join.Greedy}
	if _, err := ev.EvalContext(ctx, e, db); !errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("want governor.ErrCanceled from node checkpoint, got %v", err)
	}
}

// TestPreCanceledContext verifies the fastest kill: a context canceled
// before evaluation starts dies at the first node checkpoint under every
// strategy, before any join work.
func TestPreCanceledContext(t *testing.T) {
	e, db := chainWorkload(t)
	for _, st := range evalStrategies() {
		t.Run(st.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			col := &obs.Collector{}
			ev := st.mk()
			ev.Collector = col
			_, err := ev.EvalContext(ctx, e, db)
			if !errors.Is(err, governor.ErrCanceled) {
				t.Fatalf("want governor.ErrCanceled, got %v", err)
			}
			if snap := col.Metrics.Snapshot(); snap.MaxIntermediate != 0 {
				t.Fatalf("pre-canceled evaluation still materialized %d intermediate rows", snap.MaxIntermediate)
			}
		})
	}
}

// TestInjectedPanicSurfacesAsError is the panic-recovery half of the
// fault matrix: a panic injected into each strategy's hot loop must
// surface as an error that preserves the *fault.InjectedPanic payload
// through errors.As — never crash the process, and never masquerade as a
// governor violation. The engine must stay usable afterwards.
func TestInjectedPanicSurfacesAsError(t *testing.T) {
	e, db := chainWorkload(t)
	baselines := chainBaselines(t, e, db)
	points := make(map[string]fault.Point, len(evalStrategies())+1)
	for _, st := range evalStrategies() {
		points[st.name] = st.point
	}
	for _, st := range evalStrategies() {
		t.Run(st.name, func(t *testing.T) {
			restore := fault.Set(fault.NewScript(fault.Rule{
				Point: points[st.name], Act: fault.Panic,
			}))
			ev := st.mk()
			_, err := ev.EvalContext(context.Background(), e, db)
			restore()
			if err == nil {
				t.Fatalf("injected panic at %s did not surface as an error", points[st.name])
			}
			var ip *fault.InjectedPanic
			if !errors.As(err, &ip) {
				t.Fatalf("recovered panic lost its payload: %v", err)
			}
			if ip.Point != points[st.name] {
				t.Fatalf("payload names point %s, injected at %s", ip.Point, points[st.name])
			}
			if governor.Violated(err) {
				t.Fatalf("a strategy crash must not register as a governor violation: %v", err)
			}

			// The process-global harness is restored: the same evaluator
			// configuration must now succeed.
			ev2 := st.mk()
			got, err := ev2.Eval(e, db)
			if err != nil {
				t.Fatalf("rerun after injected panic failed: %v", err)
			}
			if relation.RenderSorted(got) != baselines[st.name] {
				t.Fatalf("%s: rerun after injected panic is not byte-identical to the baseline", st.name)
			}
		})
	}
}

// TestGracefulDegradation injects a panic into the wcoj and yannakakis
// strategies with Degrade on: the node must be retried once on the greedy
// binary hash path, produce the exact baseline result, count one
// degraded_evals metric, and mark the span so EXPLAIN ANALYZE shows the
// downgrade.
func TestGracefulDegradation(t *testing.T) {
	e, db := chainWorkload(t)
	ref, err := (&Evaluator{Order: join.Greedy}).Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		point fault.Point
		alg   join.Algorithm
	}{
		{"wcoj", fault.WCOJSearch, join.Generic{}},
		{"yannakakis", fault.Semijoin, join.Yannakakis{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			restore := fault.Set(fault.NewScript(fault.Rule{
				Point: tc.point, Act: fault.Panic,
			}))
			defer restore()
			col := &obs.Collector{}
			ev := &Evaluator{Order: join.Greedy, Algorithm: tc.alg, Degrade: true, Collector: col}
			got, err := ev.Eval(e, db)
			if err != nil {
				t.Fatalf("degraded evaluation failed: %v", err)
			}
			if !got.Equal(ref) {
				t.Fatal("degraded retry produced a different result than the baseline")
			}
			if n := col.Metrics.Snapshot().DegradedEvals; n != 1 {
				t.Fatalf("degraded_evals = %d, want 1", n)
			}
			render := RenderTrace(col.Trace())
			if !strings.Contains(render, " degraded") {
				t.Fatalf("trace rendering does not mark the degraded span:\n%s", render)
			}
		})
	}
}

// TestDegradeOffPropagatesStrategyFailure is the Degrade=false control
// for the degradation ladder: the same injected crash must propagate.
func TestDegradeOffPropagatesStrategyFailure(t *testing.T) {
	e, db := chainWorkload(t)
	restore := fault.Set(fault.NewScript(fault.Rule{Point: fault.WCOJSearch, Act: fault.Panic}))
	defer restore()
	col := &obs.Collector{}
	ev := &Evaluator{Order: join.Greedy, Algorithm: join.Generic{}, Collector: col}
	_, err := ev.Eval(e, db)
	var ip *fault.InjectedPanic
	if !errors.As(err, &ip) {
		t.Fatalf("want the injected panic to propagate with Degrade off, got %v", err)
	}
	if n := col.Metrics.Snapshot().DegradedEvals; n != 0 {
		t.Fatalf("degraded_evals = %d with Degrade off, want 0", n)
	}
}

// TestGovernorViolationNeverDegrades kills a wcoj evaluation with the row
// budget and verifies Degrade does not retry it on the greedier binary
// path: a budget violation would only dig deeper there.
func TestGovernorViolationNeverDegrades(t *testing.T) {
	e, db := chainWorkload(t)
	col := &obs.Collector{}
	ev := &Evaluator{
		Order:     join.Greedy,
		Algorithm: join.Generic{},
		Degrade:   true,
		Collector: col,
		Limits:    governor.Limits{MaxIntermediateRows: 100},
	}
	_, err := ev.Eval(e, db)
	if !errors.Is(err, governor.ErrRowBudget) {
		t.Fatalf("want governor.ErrRowBudget, got %v", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("historical alias ErrBudgetExceeded must match the same chain: %v", err)
	}
	if n := col.Metrics.Snapshot().DegradedEvals; n != 0 {
		t.Fatalf("a row-budget kill degraded %d times, want 0", n)
	}
}

// TestAdmissionControlChain verifies pre-flight admission on the chain
// workload: with a budget below the binary planner's predicted peak the
// greedy path is rejected before any join work, while the forced wcoj
// path — whose peak is bounded by its own output — is admitted and
// completes under the same budget.
func TestAdmissionControlChain(t *testing.T) {
	e, db := chainWorkload(t)
	ev := Evaluator{Order: join.Greedy}
	out, err := ev.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	args := make([]*relation.Relation, 0, 3)
	for _, name := range []string{"R1", "R2", "R3"} {
		r, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		args = append(args, r)
	}
	predicted := max(join.PredictedPeakGreedy(args), join.WorstCasePeakGreedy(args))
	budget := out.Len() + 1
	if float64(budget) >= predicted {
		t.Fatalf("workload cannot separate admission from output: budget %d, predicted peak %.0f", budget, predicted)
	}

	t.Run("greedy-rejected", func(t *testing.T) {
		col := &obs.Collector{}
		ev := &Evaluator{Order: join.Greedy, Admit: true, Collector: col,
			Limits: governor.Limits{MaxIntermediateRows: budget}}
		_, err := ev.Eval(e, db)
		if !errors.Is(err, governor.ErrAdmission) {
			t.Fatalf("want governor.ErrAdmission, got %v", err)
		}
		if snap := col.Metrics.Snapshot(); snap.MaxIntermediate != 0 {
			t.Fatalf("admission rejection came after materializing %d rows; must be pre-flight", snap.MaxIntermediate)
		}
	})
	t.Run("wcoj-admitted", func(t *testing.T) {
		ev := &Evaluator{Order: join.Greedy, Algorithm: join.Generic{}, Admit: true,
			Limits: governor.Limits{MaxIntermediateRows: budget}}
		got, err := ev.Eval(e, db)
		if err != nil {
			t.Fatalf("output-bounded strategy must be admitted under the same budget: %v", err)
		}
		if !got.Equal(out) {
			t.Fatal("wcoj result under budget differs from ungoverned result")
		}
	})
}
