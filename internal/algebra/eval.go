package algebra

import (
	"fmt"

	"relquery/internal/join"
	"relquery/internal/relation"
)

// Evaluator materializes project–join expressions against a database. The
// zero value is ready to use: hash joins, greedy join ordering, no
// statistics.
type Evaluator struct {
	// Algorithm performs each binary join; nil means join.Hash.
	Algorithm join.Algorithm
	// Order sequences n-ary joins (join.Greedy or join.Sequential).
	Order join.Order
	// Stats, when non-nil, accumulates intermediate-result statistics
	// across Eval calls. The paper's hardness results manifest as
	// Stats.MaxIntermediate exploding while inputs and outputs stay small.
	Stats *join.Stats
	// MaxIntermediate, when positive, aborts evaluation with
	// ErrBudgetExceeded as soon as any intermediate relation exceeds that
	// many tuples. It is the guard rail for exponential blow-up.
	MaxIntermediate int
	// SemijoinPrefilter, when true, runs pairwise semijoin reduction to
	// fixpoint over each n-ary join's inputs before joining. The filter is
	// always sound; it is complete (removes every dangling tuple) exactly
	// for acyclic joins. It cannot tame the paper's gadget queries — their
	// intermediate blow-up arises from recombination, not dangling tuples.
	SemijoinPrefilter bool
	// Cache, when true, memoizes structurally identical subexpressions
	// within one Eval call (common-subexpression elimination), keyed by
	// the rendered expression text. The memo does not outlive the call —
	// the database may change between calls.
	Cache bool
}

// ErrBudgetExceeded is returned (wrapped) when evaluation exceeds the
// Evaluator's MaxIntermediate budget.
var ErrBudgetExceeded = fmt.Errorf("algebra: intermediate result exceeds evaluation budget")

func (ev *Evaluator) algorithm() join.Algorithm {
	if ev.Algorithm == nil {
		return join.Hash{}
	}
	return ev.Algorithm
}

func (ev *Evaluator) check(r *relation.Relation) error {
	if ev.MaxIntermediate > 0 && r.Len() > ev.MaxIntermediate {
		return fmt.Errorf("%w: %d tuples > budget %d", ErrBudgetExceeded, r.Len(), ev.MaxIntermediate)
	}
	return nil
}

// Eval computes e(db). Operand references are checked against the
// database: the named relation must exist and its scheme must be set-equal
// to the operand's declared scheme.
func (ev *Evaluator) Eval(e Expr, db relation.Database) (*relation.Relation, error) {
	var memo map[string]*relation.Relation
	if ev.Cache {
		memo = make(map[string]*relation.Relation)
	}
	return ev.eval(e, db, memo)
}

func (ev *Evaluator) eval(e Expr, db relation.Database, memo map[string]*relation.Relation) (*relation.Relation, error) {
	var key string
	if memo != nil {
		// Operands are cheap lookups; only memoize composite nodes.
		if _, isOp := e.(*Operand); !isOp {
			key = e.String()
			if cached, ok := memo[key]; ok {
				return cached, nil
			}
		}
	}
	out, err := ev.evalNode(e, db, memo)
	if err != nil {
		return nil, err
	}
	if memo != nil && key != "" {
		memo[key] = out
	}
	return out, nil
}

func (ev *Evaluator) evalNode(e Expr, db relation.Database, memo map[string]*relation.Relation) (*relation.Relation, error) {
	switch x := e.(type) {
	case *Operand:
		r, err := db.Get(x.Name())
		if err != nil {
			return nil, err
		}
		if !r.Scheme().Equal(x.Scheme()) {
			return nil, fmt.Errorf("algebra: operand %q declared over %v but database relation has scheme %v",
				x.Name(), x.Scheme(), r.Scheme())
		}
		return r, nil

	case *Project:
		child, err := ev.eval(x.Of(), db, memo)
		if err != nil {
			return nil, err
		}
		out, err := child.Project(x.Onto())
		if err != nil {
			return nil, err
		}
		ev.Stats.Observe(out)
		if err := ev.check(out); err != nil {
			return nil, err
		}
		return out, nil

	case *Join:
		args := make([]*relation.Relation, len(x.Args()))
		for i, a := range x.Args() {
			r, err := ev.eval(a, db, memo)
			if err != nil {
				return nil, err
			}
			args[i] = r
		}
		out, err := ev.multi(args)
		if err != nil {
			return nil, err
		}
		return out, nil

	default:
		return nil, fmt.Errorf("algebra: unknown expression type %T", e)
	}
}

// multi joins args, aborting mid-plan as soon as any binary join result
// exceeds the budget.
func (ev *Evaluator) multi(args []*relation.Relation) (*relation.Relation, error) {
	if ev.SemijoinPrefilter && len(args) > 1 {
		reduced, _, err := join.ReduceFixpoint(args)
		if err != nil {
			return nil, err
		}
		args = reduced
	}
	alg := ev.algorithm()
	if ev.MaxIntermediate > 0 {
		alg = budgetAlgorithm{inner: alg, max: ev.MaxIntermediate}
	}
	return join.Multi(args, alg, ev.Order, ev.Stats)
}

// budgetAlgorithm wraps an Algorithm and fails when any join result
// exceeds the budget.
type budgetAlgorithm struct {
	inner join.Algorithm
	max   int
}

func (b budgetAlgorithm) Name() string { return b.inner.Name() }

func (b budgetAlgorithm) Join(l, r *relation.Relation) (*relation.Relation, error) {
	out, err := b.inner.Join(l, r)
	if err != nil {
		return nil, err
	}
	if out.Len() > b.max {
		return nil, fmt.Errorf("%w: %d tuples > budget %d", ErrBudgetExceeded, out.Len(), b.max)
	}
	return out, nil
}

// Eval evaluates e(db) with default settings (hash join, greedy order).
func Eval(e Expr, db relation.Database) (*relation.Relation, error) {
	ev := Evaluator{}
	return ev.Eval(e, db)
}

// EvalSingle evaluates an expression whose operands all name the same
// single relation — the common case for the paper's constructions, where
// every query runs against one relation R.
func EvalSingle(e Expr, name string, r *relation.Relation) (*relation.Relation, error) {
	return Eval(e, relation.Single(name, r))
}
