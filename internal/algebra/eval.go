package algebra

import (
	"context"
	"fmt"
	"sync"
	"time"

	"relquery/internal/fault"
	"relquery/internal/governor"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// EvalOptions is the engine-tuning knob threaded from the CLI and the
// decide layer down to the evaluator. The zero value selects the
// sequential engine with no caching — exactly the pre-parallel behavior.
type EvalOptions struct {
	// Parallelism > 1 turns on the parallel engine: independent
	// subtrees of each join node evaluate concurrently on a worker pool
	// of this size, and binary joins default to the partitioned parallel
	// hash join (join.Parallel) with this many workers. Values <= 1 mean
	// fully sequential evaluation.
	Parallelism int
	// Cache memoizes structurally identical subexpressions within each
	// Eval call (see Evaluator.Cache).
	Cache bool
	// SharedCache, when non-nil, memoizes subexpression results across
	// Eval calls and callers, keyed by expression text plus relation
	// fingerprints (see Evaluator.SharedCache). relqueryd threads one
	// process-wide cache through every request here.
	SharedCache *SubexprCache
	// AutoWCOJ lets blow-up-prone n-ary join nodes switch to the
	// worst-case-optimal generic join (see Evaluator.AutoWCOJ).
	AutoWCOJ bool
	// AutoYannakakis routes α-acyclic n-ary join nodes to Yannakakis'
	// algorithm (see Evaluator.AutoYannakakis).
	AutoYannakakis bool
	// Collector, when non-nil, traces the evaluation (see
	// Evaluator.Collector).
	Collector *obs.Collector
	// Registry, when non-nil, receives each evaluation's outcome for
	// process-wide telemetry (see Evaluator.Registry).
	Registry *obs.Registry
	// Limits bounds the evaluation — deadline, row budgets, memory model
	// (see Evaluator.Limits). The zero Limits is unlimited.
	Limits governor.Limits
	// Admit turns on pre-flight admission control (see Evaluator.Admit).
	Admit bool
	// Degrade turns on graceful degradation (see Evaluator.Degrade).
	Degrade bool
}

// NewEvaluator returns an evaluator configured by the options, with
// default join algorithm and order.
func (o EvalOptions) NewEvaluator() *Evaluator {
	return &Evaluator{
		Parallelism:    o.Parallelism,
		Cache:          o.Cache,
		SharedCache:    o.SharedCache,
		AutoWCOJ:       o.AutoWCOJ,
		AutoYannakakis: o.AutoYannakakis,
		Collector:      o.Collector,
		Registry:       o.Registry,
		Limits:         o.Limits,
		Admit:          o.Admit,
		Degrade:        o.Degrade,
	}
}

// Evaluator materializes project–join expressions against a database. The
// zero value is ready to use: hash joins, greedy join ordering, no
// statistics.
type Evaluator struct {
	// Algorithm performs each binary join; nil means join.Hash.
	Algorithm join.Algorithm
	// Order sequences n-ary joins (join.Greedy or join.Sequential).
	Order join.Order
	// MaxIntermediate, when positive, aborts evaluation with
	// ErrBudgetExceeded as soon as any intermediate relation exceeds that
	// many tuples. It is the guard rail for exponential blow-up.
	//
	// The field predates Limits and is folded into
	// Limits.MaxIntermediateRows (the tighter of the two wins); new code
	// should set Limits directly.
	MaxIntermediate int
	// Limits bounds the evaluation with the resource governor: a
	// wall-clock deadline, a final-result row cap, the intermediate-row
	// budget and an estimated-memory budget. Every join strategy checks
	// the governor cooperatively at tuple-batch granularity, so
	// violations abort mid-join with a typed sentinel (governor.ErrDeadline,
	// ErrRowBudget, ErrMemBudget, ErrCanceled) rather than after
	// materializing. The zero Limits (with a background context) keeps the
	// engine on its ungoverned zero-overhead path.
	Limits governor.Limits
	// Admit, when true, turns on pre-flight admission control: before a
	// join node runs on the greedy binary planner, its predicted peak
	// intermediate (the larger of the System R estimate and the
	// worst-case greedy AGM peak) is compared against the
	// intermediate-row budget, and the node is rejected with
	// governor.ErrAdmission instead of being killed mid-flight. Join
	// nodes routed to the output-bounded strategies (wcoj, yannakakis)
	// are always admitted — the row budget still guards them during
	// execution. False (the default) is the override: mis-predicted
	// queries run and the mid-flight checkpoints catch real violations.
	Admit bool
	// Degrade, when true, retries a join node once on the greedy binary
	// path (hash join, greedy order) when its wcoj or yannakakis strategy
	// fails with an engine error or a recovered panic. Governor
	// violations never degrade — retrying after a deadline or budget kill
	// on a strategy with *weaker* guarantees would only dig deeper. Each
	// retry is recorded in the degraded_evals metric and marks the span.
	Degrade bool
	// AutoWCOJ, when true, lets each n-ary join node of three or more
	// inputs switch to the worst-case-optimal generic join (join.Generic)
	// when the greedy binary planner's estimated peak intermediate
	// (join.PredictedPeakGreedy) exceeds the node's AGM output bound —
	// the regime of the paper's Lemma 1 gadgets, where every binary plan
	// is predicted to materialize more than the n-ary output justifies.
	// Nodes below that threshold keep the configured binary algorithm.
	// Set Algorithm to join.Generic{} to force the generic join on every
	// join node instead.
	AutoWCOJ bool
	// AutoYannakakis, when true, runs GYO ear removal over each n-ary
	// join node's scheme hypergraph and evaluates α-acyclic nodes with
	// Yannakakis' algorithm (join.Yannakakis): full semijoin reduction
	// along the join tree, then joins that never outgrow the output — the
	// Durand–Grandjean tractable frontier. Cyclic nodes fall through to
	// AutoWCOJ (if set) and the binary planner; together the two flags are
	// the -join=auto three-way selector: acyclic → yannakakis, cyclic with
	// predicted blow-up → wcoj, else greedy binary. Set Algorithm to
	// join.Yannakakis{} to force the strategy on every join node instead
	// (cyclic nodes then use its pairwise-reduced binary fallback).
	AutoYannakakis bool
	// SemijoinPrefilter, when true, runs pairwise semijoin reduction to
	// fixpoint over each n-ary join's inputs before joining. The filter is
	// always sound; it is complete (removes every dangling tuple) exactly
	// for acyclic joins. It cannot tame the paper's gadget queries — their
	// intermediate blow-up arises from recombination, not dangling tuples.
	SemijoinPrefilter bool
	// Cache, when true, memoizes structurally identical subexpressions
	// within one Eval call (common-subexpression elimination), keyed by
	// the rendered expression text. The memo does not outlive the call —
	// the database may change between calls. The memo is compute-once
	// even under parallel evaluation.
	Cache bool
	// Parallelism, when > 1, evaluates independent join subtrees
	// concurrently on a worker pool of this size and makes the default
	// join algorithm the partitioned parallel hash join
	// (join.Parallel{Workers: Parallelism}). Results are identical to
	// sequential evaluation: relations are sets, every operator is
	// order-deterministic, and the Collector's metrics are atomic. <= 1
	// means sequential — the zero value preserves pre-parallel behavior.
	Parallelism int
	// SharedCache, when non-nil, memoizes subexpression results across
	// Eval calls, keyed by expression text plus the content fingerprints
	// of the referenced relations (relation.Fingerprint), so entries
	// survive only as long as the underlying relations are unchanged.
	SharedCache *SubexprCache
	// Collector, when non-nil, records a span per operator (cardinalities,
	// scheme width, wall time, join algorithm, cache status, worker count,
	// AGM bound) and evaluation-wide counters into an obs trace. Nil — the
	// zero value — keeps the engine on its uninstrumented fast path: span
	// and metric calls reduce to nil checks, with no allocation or clock
	// reads (see BenchmarkE9ParallelEval's traced/untraced pairs).
	//
	// Collector supersedes the removed Stats field (and the deprecated
	// join.Stats shim): it observes everything Stats did and more, with
	// race-free mid-run snapshots (Collector.Metrics.Snapshot).
	Collector *obs.Collector
	// Registry, when non-nil, aggregates every EvalContext outcome —
	// success or violation — into process-wide telemetry: wall time into
	// the latency histogram and, when a Collector is also attached, the
	// trace's metrics and span tree into the cross-evaluation totals and
	// the /debug/traces ring. Nil (the zero value) publishes nothing and
	// costs one nil check per evaluation.
	Registry *obs.Registry
}

// ErrBudgetExceeded is returned (wrapped) when evaluation exceeds the
// Evaluator's intermediate-row budget. It is the governor's row-budget
// sentinel under its historical algebra name, so errors.Is works with
// either spelling; match with errors.Is, never ==.
var ErrBudgetExceeded = governor.ErrRowBudget

// AlgorithmName names the binary-join algorithm the evaluator will
// actually use, resolving the nil default ("hash", or "parallel" when
// Parallelism > 1).
func (ev *Evaluator) AlgorithmName() string { return ev.algorithm().Name() }

func (ev *Evaluator) algorithm() join.Algorithm {
	if ev.Algorithm != nil {
		return ev.Algorithm
	}
	if ev.Parallelism > 1 {
		return join.Parallel{Workers: ev.Parallelism}
	}
	return join.Hash{}
}

// limits resolves the evaluation's effective limits, folding the legacy
// MaxIntermediate field into the governor's intermediate-row budget (the
// tighter of the two wins).
func (ev *Evaluator) limits() governor.Limits {
	l := ev.Limits
	if ev.MaxIntermediate > 0 && (l.MaxIntermediateRows == 0 || ev.MaxIntermediate < l.MaxIntermediateRows) {
		l.MaxIntermediateRows = ev.MaxIntermediate
	}
	return l
}

// observeGoverned enforces the governor's row and memory budgets against
// one materialized relation.
func observeGoverned(gov *governor.Governor, r *relation.Relation) error {
	if gov == nil {
		return nil
	}
	if err := gov.CheckRows(r.Len()); err != nil {
		return err
	}
	return gov.ChargeBytes(relationBytes(r))
}

// relationBytes is the governor's memory model for one materialized
// relation: a coarse per-value estimate (string header + small payload)
// plus per-tuple overhead. Deliberately simple and deterministic — the
// budget bounds an estimate of cumulative materialization, not RSS.
func relationBytes(r *relation.Relation) int64 {
	const bytesPerValue, bytesPerTuple = 24, 48
	return int64(r.Len()) * int64(r.Scheme().Len()*bytesPerValue+bytesPerTuple)
}

// Eval computes e(db). Operand references are checked against the
// database: the named relation must exist and its scheme must be set-equal
// to the operand's declared scheme.
func (ev *Evaluator) Eval(e Expr, db relation.Database) (*relation.Relation, error) {
	return ev.EvalContext(context.Background(), e, db)
}

// EvalContext is Eval under a context and the evaluator's Limits: the
// governor carries both through every join strategy, which check it
// cooperatively at tuple-batch granularity. Cancellation, deadlines and
// budget violations surface as errors.Is-able governor sentinels; when a
// collector is attached, the error also carries the partial span tree
// (governor.TraceOf) so EXPLAIN ANALYZE can render where the budget
// died. A background context with zero Limits keeps the whole governance
// layer on its nil fast path.
func (ev *Evaluator) EvalContext(ctx context.Context, e Expr, db relation.Database) (*relation.Relation, error) {
	var start time.Time
	if ev.Registry != nil {
		start = time.Now() // clock read only when telemetry is on
	}
	gov := governor.New(ctx, ev.limits()).WithMetrics(ev.Collector.M())
	var memo *memoTable
	if ev.Cache {
		memo = newMemoTable()
	}
	r, err := ev.eval(e, db, memo, ev.newSpan(nil, e), gov)
	if err == nil {
		err = gov.CheckOutput(r.Len())
	}
	if ev.Registry != nil {
		ev.Registry.Observe(ev.Collector.Trace(), time.Since(start))
	}
	if err != nil {
		return nil, ev.violation(err)
	}
	return r, nil
}

// violation annotates a governor violation with the partial span tree
// captured at the time of death. Non-violations and collector-less
// evaluations pass through unchanged, as do errors already annotated.
func (ev *Evaluator) violation(err error) error {
	if ev.Collector == nil || !governor.Violated(err) || governor.TraceOf(err) != nil {
		return err
	}
	return &governor.Violation{Err: err, Trace: ev.Collector.Trace()}
}

// newSpan opens the span for node e under parent (a root span when parent
// is nil). It returns nil — and allocates nothing — when no collector is
// attached. Spans for a join's arguments are created sequentially before
// the parallel fan-out, so Children order always matches argument order.
func (ev *Evaluator) newSpan(parent *obs.Span, e Expr) *obs.Span {
	if ev.Collector == nil {
		return nil
	}
	op := spanOp(e)
	label := nodeLabel(e)
	var sp *obs.Span
	if parent == nil {
		sp = ev.Collector.Start(op, label)
	} else {
		sp = parent.Child(op, label)
	}
	sp.SetSchemeWidth(e.Scheme().Len())
	return sp
}

func spanOp(e Expr) string {
	switch e.(type) {
	case *Operand:
		return obs.OpScan
	case *Project:
		return obs.OpProject
	case *Join:
		return obs.OpJoin
	default:
		return fmt.Sprintf("%T", e)
	}
}

// eval computes one node, recording its span (sp may be nil: tracing
// off). A node served from the per-call memo or the shared cache gets a
// span with cache status "hit" and no children — its subtree was not
// executed. Every node is a governor checkpoint, so cancellation reaches
// even join-free expressions; only *successful* node results enter the
// caches (both cache layers skip storing errors), so an aborted
// evaluation can never poison a cache with a partial relation.
func (ev *Evaluator) eval(e Expr, db relation.Database, memo *memoTable, sp *obs.Span, gov *governor.Governor) (*relation.Relation, error) {
	sp.Begin()
	fault.Hit(fault.EvalNode)
	if err := gov.Check(); err != nil {
		return ev.finishSpan(sp, "", nil, err)
	}
	// Operands are cheap lookups; only memoize composite nodes.
	if _, isOp := e.(*Operand); isOp || (memo == nil && ev.SharedCache == nil) {
		r, err := ev.evalNode(e, db, memo, sp, gov)
		return ev.finishSpan(sp, "", r, err)
	}
	cacheStatus := obs.CacheMiss
	compute := func() (*relation.Relation, error) {
		if ev.SharedCache != nil {
			r, hit, err := ev.SharedCache.do(e, db, func() (*relation.Relation, error) {
				return ev.evalNode(e, db, memo, sp, gov)
			})
			if hit {
				cacheStatus = obs.CacheHit
			}
			return r, err
		}
		return ev.evalNode(e, db, memo, sp, gov)
	}
	var r *relation.Relation
	var err error
	if memo != nil {
		var hit bool
		r, hit, err = memo.do(e.String(), compute)
		if hit {
			cacheStatus = obs.CacheHit
		}
	} else {
		r, err = compute()
	}
	if cacheStatus == obs.CacheHit {
		ev.Collector.M().CacheHit()
	} else {
		ev.Collector.M().CacheMiss()
	}
	return ev.finishSpan(sp, cacheStatus, r, err)
}

// finishSpan closes sp with the node's outcome and passes the result
// through.
func (ev *Evaluator) finishSpan(sp *obs.Span, cacheStatus string, r *relation.Relation, err error) (*relation.Relation, error) {
	if sp != nil {
		sp.SetCache(cacheStatus)
		sp.SetErr(err)
		rows := 0
		if r != nil {
			rows = r.Len()
		}
		sp.Finish(rows)
	}
	if err != nil {
		return nil, err
	}
	return r, nil
}

func (ev *Evaluator) evalNode(e Expr, db relation.Database, memo *memoTable, sp *obs.Span, gov *governor.Governor) (*relation.Relation, error) {
	switch x := e.(type) {
	case *Operand:
		r, err := db.Get(x.Name())
		if err != nil {
			return nil, err
		}
		if !r.Scheme().Equal(x.Scheme()) {
			return nil, fmt.Errorf("algebra: operand %q declared over %v but database relation has scheme %v",
				x.Name(), x.Scheme(), r.Scheme())
		}
		return r, nil

	case *Project:
		child, err := ev.eval(x.Of(), db, memo, ev.newSpan(sp, x.Of()), gov)
		if err != nil {
			return nil, err
		}
		if sp != nil {
			sp.SetInputs([]int{child.Len()})
		}
		out, err := child.Project(x.Onto())
		if err != nil {
			return nil, err
		}
		ev.Collector.M().ObserveIntermediate(out.Len())
		if err := observeGoverned(gov, out); err != nil {
			return nil, err
		}
		return out, nil

	case *Join:
		args, err := ev.evalArgs(x.Args(), db, memo, sp, gov)
		if err != nil {
			return nil, err
		}
		out, err := ev.multi(args, sp, gov)
		if err != nil {
			return nil, err
		}
		return out, nil

	default:
		return nil, fmt.Errorf("algebra: unknown expression type %T", e)
	}
}

// evalArgs evaluates a join node's argument subtrees — concurrently on a
// worker pool of ev.Parallelism when the parallel engine is on, else in
// order. The pool bounds this node's fan-out; nested join nodes each get
// their own pool, so total goroutines can exceed Parallelism briefly,
// but every worker makes progress (the memo's waiting is well-founded on
// the expression tree) so there is no deadlock.
func (ev *Evaluator) evalArgs(exprs []Expr, db relation.Database, memo *memoTable, sp *obs.Span, gov *governor.Governor) ([]*relation.Relation, error) {
	args := make([]*relation.Relation, len(exprs))
	if ev.Parallelism <= 1 || len(exprs) < 2 {
		for i, a := range exprs {
			r, err := ev.eval(a, db, memo, ev.newSpan(sp, a), gov)
			if err != nil {
				return nil, err
			}
			args[i] = r
		}
		return args, nil
	}
	// Child spans are created here, in argument order, before any worker
	// starts: the trace's child order stays deterministic under
	// concurrency.
	spans := make([]*obs.Span, len(exprs))
	for i, a := range exprs {
		spans[i] = ev.newSpan(sp, a)
	}
	sem := make(chan struct{}, ev.Parallelism)
	errs := make([]error, len(exprs))
	var wg sync.WaitGroup
	for i, a := range exprs {
		wg.Add(1)
		go func(i int, a Expr) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			args[i], errs[i] = ev.eval(a, db, memo, spans[i], gov)
		}(i, a)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return args, nil
}

// multi joins args, aborting mid-plan — and, under a governor, mid-join —
// as soon as any checkpoint trips.
func (ev *Evaluator) multi(args []*relation.Relation, sp *obs.Span, gov *governor.Governor) (*relation.Relation, error) {
	if sp != nil {
		ins := make([]int, len(args))
		for i, a := range args {
			ins[i] = a.Len()
		}
		sp.SetInputs(ins)
	}
	if ev.SemijoinPrefilter && len(args) > 1 {
		reduced, _, err := join.ReduceFixpoint(args)
		if err != nil {
			return nil, err
		}
		args = reduced
	}
	alg := ev.algorithm()
	if m := ev.Collector.M(); m != nil {
		if ma, ok := alg.(join.Metered); ok {
			alg = ma.WithMetrics(m)
		}
		if len(args) == 1 {
			// join.Multi passes a single input through without a binary
			// join; fold it into the intermediate statistics anyway.
			m.ObserveIntermediate(args[0].Len())
		}
	}
	if gov != nil {
		if ga, ok := alg.(join.Governed); ok {
			alg = ga.WithGovernor(gov)
		}
	}
	if len(args) > 1 {
		y, forcedY := alg.(join.Yannakakis)
		if forcedY || (ev.AutoYannakakis && len(args) > 2) {
			// A binary join's only intermediate is its own output, so the
			// full reducer has nothing to save there — auto mode runs GYO
			// detection on 3+-ary nodes only. Forced mode always detects:
			// two edges are trivially acyclic.
			if join.Acyclic(join.SchemesOf(args)) {
				if !forcedY {
					y = join.Yannakakis{Metrics: ev.Collector.M(), Gov: gov}
				}
				return ev.multiYannakakis(y, args, sp, gov)
			}
			// Cyclic: record the verdict and fall through — to the AGM
			// blow-up check under auto, or (forced) to the binary planner
			// over the algorithm's pairwise-reduced joins.
			sp.SetStructure(obs.StructureCyclic)
		}
		if g, forced := alg.(join.Generic); forced {
			return ev.multiGeneric(g, args, sp, gov)
		}
		if ev.AutoWCOJ && len(args) > 2 {
			// Binary joins cannot exceed their own AGM bound, so only
			// 3+-ary nodes can blow up past the n-ary bound. The peak is
			// predicted two ways: System R estimates (catches workloads
			// whose statistics already promise large intermediates) and
			// the worst-case AGM bound of each greedy accumulator
			// (catches the Lemma 1 gadgets, whose correlations defeat
			// the independence assumption behind the estimates).
			if bound := join.AGMBoundOf(args); bound > 0 {
				peak := max(join.PredictedPeakGreedy(args), join.WorstCasePeakGreedy(args))
				if peak > bound {
					return ev.multiGeneric(join.Generic{Metrics: ev.Collector.M(), Gov: gov}, args, sp, gov)
				}
			}
		}
	}
	return ev.multiBinary(args, sp, gov, alg, ev.Order)
}

// multiBinary runs the binary-join planner tail of multi: the admission
// gate, span annotation, per-join governance, and the plan itself, with
// strategy panics recovered to errors. It is also the graceful-degradation
// retry target.
func (ev *Evaluator) multiBinary(args []*relation.Relation, sp *obs.Span, gov *governor.Governor, alg join.Algorithm, order join.Order) (*relation.Relation, error) {
	if ev.Admit && len(args) > 1 {
		// Pre-flight admission: reject before any join work when the
		// binary planner's predicted peak intermediate already exceeds
		// the budget. The output-bounded strategies never reach here —
		// their peak is capped by their own output, so they are admitted
		// and guarded mid-flight by the row budget instead.
		peak := max(join.PredictedPeakGreedy(args), join.WorstCasePeakGreedy(args))
		if err := gov.Admit(peak, 0); err != nil {
			return nil, err
		}
	}
	if sp != nil {
		// The AGM bound is a function of the joined inputs (post
		// prefilter — those are the relations actually joined).
		sp.SetAGMBound(join.AGMBoundOf(args))
		workers := 0
		if p, ok := alg.(join.Parallel); ok {
			workers = p.EffectiveWorkers()
		}
		sp.SetAlgorithm(alg.Name(), workers)
		// Record every binary-join output inside this n-ary node: the
		// paper's blow-up lives in these intermediates, not in the node's
		// final output. Wrapped inside the budget guard so a blown-up
		// intermediate is recorded even when it aborts evaluation.
		alg = spanObserver{inner: alg, sp: sp}
	}
	if gov != nil {
		alg = governedAlgorithm{inner: alg, gov: gov}
	}
	return safeJoin("binary join plan", func() (*relation.Relation, error) {
		return join.Multi(args, alg, order, nil)
	})
}

// safeJoin runs one join strategy with panic recovery: a crash inside a
// strategy (or injected by the fault harness) surfaces as an error —
// preserving error payloads for errors.As — instead of killing the
// process.
func safeJoin(what string, fn func() (*relation.Relation, error)) (out *relation.Relation, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				err = fmt.Errorf("algebra: %s panicked: %w", what, e)
			} else {
				err = fmt.Errorf("algebra: %s panicked: %v", what, rec)
			}
			out = nil
		}
	}()
	return fn()
}

// degrade is the graceful-degradation ladder: when a wcoj or yannakakis
// strategy fails with a genuine engine error (never a governor
// violation — retrying after a deadline or budget kill would only dig
// deeper), and the evaluator opts in via Degrade, the node is retried
// once on the greedy binary path with the default hash join. The retry
// is recorded in the degraded_evals metric and on the span; its own
// failure (including a budget kill of the greedier plan) propagates.
func (ev *Evaluator) degrade(cause error, args []*relation.Relation, sp *obs.Span, gov *governor.Governor) (*relation.Relation, error, bool) {
	if !ev.Degrade || governor.Violated(cause) {
		return nil, nil, false
	}
	ev.Collector.M().Degraded()
	sp.SetDegraded()
	var alg join.Algorithm = join.Hash{Metrics: ev.Collector.M(), Gov: gov}
	out, err := ev.multiBinary(args, sp, gov, alg, join.Greedy)
	if err != nil {
		return nil, fmt.Errorf("algebra: degraded retry failed: %w (original failure: %w)", err, cause), true
	}
	return out, nil, true
}

// multiGeneric evaluates an n-ary join node with the worst-case-optimal
// generic join: one attribute-at-a-time pass, no binary intermediates, so
// the node's peak materialization is its own output — by construction at
// most the AGM bound the span records. A strategy failure (engine error
// or recovered panic) degrades to the greedy binary path when the
// evaluator opts in.
func (ev *Evaluator) multiGeneric(g join.Generic, args []*relation.Relation, sp *obs.Span, gov *governor.Governor) (*relation.Relation, error) {
	if sp != nil {
		sp.SetAGMBound(join.AGMBoundOf(args))
		sp.SetAlgorithm(g.Name(), 0)
	}
	var gs join.GenericStats
	out, err := safeJoin("wcoj strategy", func() (*relation.Relation, error) {
		var err error
		out, stats, err := g.JoinAllStats(args)
		gs = stats
		return out, err
	})
	if err != nil {
		if dout, derr, degraded := ev.degrade(err, args, sp, gov); degraded {
			return dout, derr
		}
		return nil, err
	}
	if sp != nil {
		sp.ObservePeak(out.Len())
		sp.SetWCOJ(gs.Candidates, gs.Intersections)
	}
	if err := observeGoverned(gov, out); err != nil {
		return nil, err
	}
	return out, nil
}

// multiYannakakis evaluates an α-acyclic n-ary join node with Yannakakis'
// algorithm: full semijoin reduction along the GYO join tree, then joins
// that never outgrow the output. Every relation the algorithm
// materializes — each semijoin result and each tree join — is folded into
// the span's MaxIntermediate and checked against the budget, so the
// output-boundedness claim is visible in (and enforced on) the trace.
func (ev *Evaluator) multiYannakakis(y join.Yannakakis, args []*relation.Relation, sp *obs.Span, gov *governor.Governor) (*relation.Relation, error) {
	if sp != nil {
		sp.SetAGMBound(join.AGMBoundOf(args))
		sp.SetAlgorithm(y.Name(), 0)
		sp.SetStructure(obs.StructureAcyclic)
	}
	observe := func(r *relation.Relation) error {
		sp.ObservePeak(r.Len())
		return observeGoverned(gov, r)
	}
	var ys join.YannakakisStats
	out, err := safeJoin("yannakakis strategy", func() (*relation.Relation, error) {
		var err error
		out, stats, err := y.JoinAllStats(args, observe)
		ys = stats
		return out, err
	})
	if err != nil {
		if dout, derr, degraded := ev.degrade(err, args, sp, gov); degraded {
			return dout, derr
		}
		return nil, err
	}
	if sp != nil {
		sp.ObservePeak(out.Len())
		sp.SetYannakakis(ys.Semijoins, ys.ReducedRows)
	}
	return out, nil
}

// spanObserver wraps an Algorithm and folds every binary-join output into
// the owning join span's MaxIntermediate.
type spanObserver struct {
	inner join.Algorithm
	sp    *obs.Span
}

func (s spanObserver) Name() string { return s.inner.Name() }

func (s spanObserver) Join(l, r *relation.Relation) (*relation.Relation, error) {
	out, err := s.inner.Join(l, r)
	if err != nil {
		return nil, err
	}
	s.sp.ObservePeak(out.Len())
	return out, nil
}

// governedAlgorithm wraps an Algorithm and enforces the governor's row
// and memory budgets on every binary-join result. The join algorithms
// also check the row budget mid-join at batch granularity; this wrapper
// is the authoritative post-join check (the batch checks can trail the
// last partial batch) and the memory-accounting point.
type governedAlgorithm struct {
	inner join.Algorithm
	gov   *governor.Governor
}

func (ga governedAlgorithm) Name() string { return ga.inner.Name() }

func (ga governedAlgorithm) Join(l, r *relation.Relation) (*relation.Relation, error) {
	out, err := ga.inner.Join(l, r)
	if err != nil {
		return nil, err
	}
	if err := observeGoverned(ga.gov, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Eval evaluates e(db) with default settings (hash join, greedy order).
func Eval(e Expr, db relation.Database) (*relation.Relation, error) {
	ev := Evaluator{}
	return ev.Eval(e, db)
}

// EvalSingle evaluates an expression whose operands all name the same
// single relation — the common case for the paper's constructions, where
// every query runs against one relation R.
func EvalSingle(e Expr, name string, r *relation.Relation) (*relation.Relation, error) {
	return Eval(e, relation.Single(name, r))
}
