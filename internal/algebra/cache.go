package algebra

import (
	"strings"
	"sync"

	"relquery/internal/relation"
)

// SubexprCache memoizes evaluated subexpressions across Eval calls. The
// key is the canonicalized expression text plus the content fingerprints
// (relation.Fingerprint) of every database relation the expression
// references, so a hit is sound even when the database has been mutated
// between calls: a changed relation changes its fingerprint and misses.
//
// This is what makes the repeated legs of the paper's gadget queries
// cheap: φ_G = π_F(T) ∗ ∏*_j π_{T_j}(T) projects the same relation m+1
// times, and every decider that re-evaluates φ_G against an unchanged
// R_G reuses each leg instead of recomputing it.
//
// A SubexprCache is safe for concurrent use; the parallel evaluator's
// workers share one. Only successful evaluations are cached (errors may
// depend on per-call budgets). The zero value is not ready — use
// NewSubexprCache.
type SubexprCache struct {
	mu            sync.Mutex
	entries       map[string]*relation.Relation
	hits          int
	misses        int
	invalidations int
}

// NewSubexprCache returns an empty cache.
func NewSubexprCache() *SubexprCache {
	return &SubexprCache{entries: make(map[string]*relation.Relation)}
}

// key builds the cache key for evaluating e against db.
func (c *SubexprCache) key(e Expr, db relation.Database) string {
	var b strings.Builder
	b.WriteString(e.String())
	b.WriteByte('\x00')
	b.WriteString(relation.FingerprintDatabase(db, e.Operands()))
	return b.String()
}

// Do returns the cached result for (e, db) or computes, stores and
// returns it. Concurrent callers with the same key may both compute (the
// per-call memo already collapses duplicates within one evaluation); the
// last writer wins, which is harmless because equal keys imply equal
// results.
func (c *SubexprCache) Do(e Expr, db relation.Database, compute func() (*relation.Relation, error)) (*relation.Relation, error) {
	r, _, err := c.do(e, db, compute)
	return r, err
}

// do is Do exposing whether the result was served from the cache, for
// the evaluator's trace spans and metrics.
func (c *SubexprCache) do(e Expr, db relation.Database, compute func() (*relation.Relation, error)) (*relation.Relation, bool, error) {
	k := c.key(e, db)
	c.mu.Lock()
	if r, ok := c.entries[k]; ok {
		c.hits++
		c.mu.Unlock()
		return r, true, nil
	}
	c.misses++
	c.mu.Unlock()
	r, err := compute()
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.entries[k] = r
	c.mu.Unlock()
	return r, false, nil
}

// Stats reports cache hits, misses and resident entries.
func (c *SubexprCache) Stats() (hits, misses, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// Counters reports the cache's lifetime counters: hits, misses, entries
// invalidated by Reset, and resident entries. Unlike the per-evaluation
// obs.Metrics cache counters (which also count per-call memo hits), these
// describe only this shared cache.
func (c *SubexprCache) Counters() (hits, misses, invalidations, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.invalidations, len(c.entries)
}

// Reset drops every entry, keeping the hit/miss counters and counting the
// dropped entries as invalidations. It returns the number of entries
// dropped.
func (c *SubexprCache) Reset() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := len(c.entries)
	c.invalidations += dropped
	c.entries = make(map[string]*relation.Relation)
	return dropped
}

// memoTable is the per-Eval-call memo: concurrency-safe and
// compute-once. When two parallel workers request the same subexpression
// the second blocks until the first finishes, so each distinct
// subexpression is evaluated exactly once per call.
type memoTable struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
}

type memoEntry struct {
	done chan struct{}
	r    *relation.Relation
	err  error
}

func newMemoTable() *memoTable {
	return &memoTable{entries: make(map[string]*memoEntry)}
}

// do returns the memoized result for key, computing it via compute on
// first request, and reports whether the result was served from the memo
// (true exactly when this call did not run compute). Safe for concurrent
// use; deadlock-free because the compute graph follows the expression
// tree (a computation only ever waits on strictly smaller
// subexpressions). Compute-once even under parallel evaluation: the
// second requester of a key blocks on the first's channel, so hit/miss
// counts derived from the returned flag are deterministic.
func (m *memoTable) do(key string, compute func() (*relation.Relation, error)) (*relation.Relation, bool, error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.done
		return e.r, true, e.err
	}
	e := &memoEntry{done: make(chan struct{})}
	m.entries[key] = e
	m.mu.Unlock()
	e.r, e.err = compute()
	close(e.done)
	return e.r, false, e.err
}
