package algebra

import (
	"errors"
	"strings"
	"testing"

	"relquery/internal/governor"
	"relquery/internal/obs"
)

// TestEvaluatorRegistry: an attached registry sees each evaluation —
// latency always, metrics and the span tree when a collector rides
// along.
func TestEvaluatorRegistry(t *testing.T) {
	e, db := chainQuery(t)
	reg := obs.NewRegistry()
	col := &obs.Collector{}
	ev := Evaluator{Collector: col, Registry: reg}
	if _, err := ev.Eval(e, db); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if s.Evals != 1 {
		t.Fatalf("Evals = %d, want 1", s.Evals)
	}
	if s.Metrics.Joins != 1 {
		t.Errorf("registry Joins = %d, want 1", s.Metrics.Joins)
	}
	if s.Latency.Count != 1 {
		t.Errorf("Latency.Count = %d, want 1", s.Latency.Count)
	}
	if s.PeakRows.Count != 1 {
		t.Errorf("PeakRows.Count = %d, want 1", s.PeakRows.Count)
	}
	// chainQuery's join peaks at 3 rows under AGM bound 6: ratio 0.5.
	if s.AGMRatio.Count != 1 || s.AGMRatio.Sum != 0.5 {
		t.Errorf("AGMRatio count=%d sum=%g, want 1/0.5", s.AGMRatio.Count, s.AGMRatio.Sum)
	}
	if s.TracesHeld != 1 {
		t.Errorf("TracesHeld = %d, want 1", s.TracesHeld)
	}

	// A second evaluation folds on top.
	if _, err := ev.Eval(e, db); err != nil {
		t.Fatal(err)
	}
	if s := reg.Snapshot(); s.Evals != 2 || s.Metrics.Joins != 3 {
		// The collector is reused, so its cumulative snapshot (2 joins)
		// folds in on top of the first (1 join).
		t.Errorf("after second eval: evals=%d joins=%d, want 2/3", s.Evals, s.Metrics.Joins)
	}
}

// TestEvaluatorRegistryWithoutCollector: a registry alone (no collector)
// still counts evaluations and latency — the trace-dependent histograms
// stay empty.
func TestEvaluatorRegistryWithoutCollector(t *testing.T) {
	e, db := chainQuery(t)
	reg := obs.NewRegistry()
	ev := Evaluator{Registry: reg}
	if _, err := ev.Eval(e, db); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Evals != 1 || s.Latency.Count != 1 {
		t.Errorf("evals=%d latency count=%d, want 1/1", s.Evals, s.Latency.Count)
	}
	if s.PeakRows.Count != 0 || s.TracesHeld != 0 {
		t.Errorf("collector-less eval contributed traces: %+v", s)
	}
}

// TestEvaluatorRegistryObservesViolation: a governed evaluation that
// trips its budget still reaches the registry — with the violation
// counted by sentinel — so /metrics shows failures, not only successes.
func TestEvaluatorRegistryObservesViolation(t *testing.T) {
	e, db := chainQuery(t)
	reg := obs.NewRegistry()
	col := &obs.Collector{}
	ev := Evaluator{
		Collector: col,
		Registry:  reg,
		Limits:    governor.Limits{MaxIntermediateRows: 1},
	}
	_, err := ev.Eval(e, db)
	if !errors.Is(err, governor.ErrRowBudget) {
		t.Fatalf("err = %v, want ErrRowBudget", err)
	}
	s := reg.Snapshot()
	if s.Evals != 1 {
		t.Fatalf("Evals = %d, want 1 (failed evaluations count)", s.Evals)
	}
	if s.Metrics.ViolationsRowBudget != 1 {
		t.Errorf("ViolationsRowBudget = %d, want 1", s.Metrics.ViolationsRowBudget)
	}
	if s.TracesHeld != 1 {
		t.Errorf("TracesHeld = %d, want 1 (partial trace of the death)", s.TracesHeld)
	}
}

// TestRenderTraceGovernorFooter: the footer appears only when the
// governor intervened, so clean EXPLAIN ANALYZE output is unchanged.
func TestRenderTraceGovernorFooter(t *testing.T) {
	e, db := chainQuery(t)
	col := &obs.Collector{}
	ev := Evaluator{Collector: col}
	if _, err := ev.Eval(e, db); err != nil {
		t.Fatal(err)
	}
	if clean := RenderTrace(col.Trace()); strings.Contains(clean, "governor:") {
		t.Fatalf("clean trace grew a governor footer:\n%s", clean)
	}

	col2 := &obs.Collector{}
	ev2 := Evaluator{Collector: col2, Limits: governor.Limits{MaxIntermediateRows: 1}}
	_, err := ev2.Eval(e, db)
	if !errors.Is(err, governor.ErrRowBudget) {
		t.Fatalf("err = %v, want ErrRowBudget", err)
	}
	render := RenderTrace(col2.Trace())
	if !strings.Contains(render, "governor: violations") ||
		!strings.Contains(render, "row_budget=1") ||
		!strings.Contains(render, "degraded=0") {
		t.Fatalf("violation trace missing governor footer:\n%s", render)
	}
}
