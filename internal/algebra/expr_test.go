package algebra

import (
	"strings"
	"testing"

	"relquery/internal/relation"
)

var testScheme = relation.MustScheme("A", "B", "C")

func opT() *Operand { return MustOperand("T", testScheme) }

func TestOperandBasics(t *testing.T) {
	o := opT()
	if o.Name() != "T" || o.String() != "T" {
		t.Errorf("operand = %q / %q", o.Name(), o.String())
	}
	if !o.Scheme().SameOrder(testScheme) {
		t.Errorf("scheme = %v", o.Scheme())
	}
	if got := o.Operands(); len(got) != 1 || got[0] != "T" {
		t.Errorf("Operands = %v", got)
	}
	if _, err := NewOperand("", testScheme); err == nil {
		t.Error("empty operand name accepted")
	}
}

func TestProjectValidation(t *testing.T) {
	p, err := NewProject(relation.MustScheme("A", "C"), opT())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Scheme().String(); got != "A C" {
		t.Errorf("Scheme = %q", got)
	}
	if _, err := NewProject(relation.MustScheme("A", "Z"), opT()); err == nil {
		t.Error("projection onto foreign attribute accepted")
	}
	if _, err := NewProject(relation.MustScheme("A"), nil); err == nil {
		t.Error("projection of nil accepted")
	}
}

func TestJoinSchemeAndFlattening(t *testing.T) {
	u := MustOperand("U", relation.MustScheme("C", "D"))
	v := MustOperand("V", relation.MustScheme("D", "E"))
	inner := MustJoin(opT(), u)
	outer := MustJoin(inner, v)
	if got := outer.Scheme().String(); got != "A B C D E" {
		t.Errorf("Scheme = %q", got)
	}
	// Nested joins flatten.
	if len(outer.Args()) != 3 {
		t.Errorf("Args = %d, want 3 (flattened)", len(outer.Args()))
	}
	if _, err := NewJoin(opT()); err == nil {
		t.Error("1-ary join accepted")
	}
	if _, err := NewJoin(opT(), nil); err == nil {
		t.Error("nil join argument accepted")
	}
}

func TestJoinAll(t *testing.T) {
	if _, err := JoinAll(); err == nil {
		t.Error("JoinAll() accepted")
	}
	single, err := JoinAll(opT())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := single.(*Operand); !ok {
		t.Errorf("JoinAll(x) = %T, want *Operand", single)
	}
	double, err := JoinAll(opT(), opT())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := double.(*Join); !ok {
		t.Errorf("JoinAll(x,y) = %T, want *Join", double)
	}
}

func TestOperandsDeduplicated(t *testing.T) {
	u := MustOperand("U", relation.MustScheme("C", "D"))
	e := MustJoin(
		MustProject(relation.MustScheme("A"), opT()),
		MustProject(relation.MustScheme("B"), opT()),
		u,
	)
	got := e.Operands()
	if len(got) != 2 || got[0] != "T" || got[1] != "U" {
		t.Errorf("Operands = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	e := MustJoin(
		MustProject(relation.MustScheme("A", "B"), opT()),
		MustProject(relation.MustScheme("B", "C"), opT()),
	)
	want := "pi[A B](T) * pi[B C](T)"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	// Projection of a join parenthesizes nothing extra; join inside join
	// would, but joins flatten so it cannot occur from constructors.
	p := MustProject(relation.MustScheme("A"), e)
	if got := p.String(); got != "pi[A](pi[A B](T) * pi[B C](T))" {
		t.Errorf("String = %q", got)
	}
}

func TestEqualAndSize(t *testing.T) {
	a := MustJoin(MustProject(relation.MustScheme("A"), opT()), opT())
	b := MustJoin(MustProject(relation.MustScheme("A"), opT()), opT())
	c := MustJoin(opT(), MustProject(relation.MustScheme("A"), opT()))
	if !Equal(a, b) {
		t.Error("identical expressions unequal")
	}
	if Equal(a, c) {
		t.Error("argument order ignored")
	}
	if Equal(a, opT()) {
		t.Error("different shapes equal")
	}
	if got := Size(a); got != 4 { // join + project + operand + operand
		t.Errorf("Size = %d, want 4", got)
	}
}

func TestPaperExampleExpressionRendering(t *testing.T) {
	// φ_G for the paper's example formula, built by hand; checks that
	// subscripted attributes survive rendering.
	ts := relation.MustScheme(
		"F1", "F2", "F3", "X1", "X2", "X3", "X4", "X5",
		"Y{1,2}", "Y{1,3}", "Y{2,3}", "S",
	)
	tOp := MustOperand("T", ts)
	phi := MustJoin(
		MustProject(relation.MustScheme("F1", "F2", "F3"), tOp),
		MustProject(relation.MustScheme("F1", "X1", "X2", "X3", "Y{1,2}", "Y{1,3}", "S"), tOp),
		MustProject(relation.MustScheme("F2", "X2", "X3", "X4", "Y{1,2}", "Y{2,3}", "S"), tOp),
		MustProject(relation.MustScheme("F3", "X3", "X4", "X5", "Y{1,3}", "Y{2,3}", "S"), tOp),
	)
	s := phi.String()
	if !strings.Contains(s, "pi[F1 X1 X2 X3 Y{1,2} Y{1,3} S](T)") {
		t.Errorf("rendered φ_G missing clause projection: %s", s)
	}
	// trs(φ_G) covers the whole scheme of T (as a set; the written order
	// follows first occurrence across the join arguments).
	if !phi.Scheme().Equal(ts) {
		t.Errorf("trs(φ_G) = %q, want all of %q", phi.Scheme(), ts)
	}
}
