package algebra

import (
	"errors"
	"strings"
	"testing"

	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

func mkrel(t *testing.T, scheme string, rows ...string) *relation.Relation {
	t.Helper()
	s, err := relation.SchemeOf(scheme)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	for _, row := range rows {
		if _, err := r.Add(relation.TupleOf(strings.Fields(row)...)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestEvalOperand(t *testing.T) {
	r := mkrel(t, "A B", "1 2")
	db := relation.Single("T", r)
	e := MustOperand("T", r.Scheme())
	got, err := Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Errorf("Eval(T) = %v", got.Sorted())
	}
	// Missing operand.
	if _, err := Eval(MustOperand("U", r.Scheme()), db); err == nil {
		t.Error("missing operand evaluated")
	}
	// Scheme mismatch.
	bad := MustOperand("T", relation.MustScheme("A", "Z"))
	if _, err := Eval(bad, db); err == nil {
		t.Error("mismatched operand scheme evaluated")
	}
}

func TestEvalProjectJoin(t *testing.T) {
	r := mkrel(t, "A B C",
		"1 x p",
		"2 x q",
		"2 y q",
	)
	db := relation.Single("T", r)
	op := MustOperand("T", r.Scheme())
	// pi[A B](T) * pi[B C](T)
	e := MustJoin(
		MustProject(relation.MustScheme("A", "B"), op),
		MustProject(relation.MustScheme("B", "C"), op),
	)
	got, err := Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	want := mkrel(t, "A B C",
		"1 x p", "1 x q",
		"2 x p", "2 x q",
		"2 y q",
	)
	if !got.Equal(want) {
		t.Errorf("Eval = %v, want %v", got.Sorted(), want.Sorted())
	}
	// The expression is "lossy at recombination": the original relation is
	// always a subset of the project-join of its projections.
	sub, err := r.SubsetOf(got)
	if err != nil || !sub {
		t.Errorf("R ⊆ π(R)*π(R) violated: %v %v", sub, err)
	}
}

func TestEvalAllAlgorithmsAndOrders(t *testing.T) {
	r := mkrel(t, "A B C", "1 x p", "2 x q", "2 y q", "3 z r")
	db := relation.Single("T", r)
	op := MustOperand("T", r.Scheme())
	e := MustJoin(
		MustProject(relation.MustScheme("A", "B"), op),
		MustProject(relation.MustScheme("B", "C"), op),
		MustProject(relation.MustScheme("A", "C"), op),
	)
	ref, err := Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, algName := range join.Names() {
		alg, err := join.ByName(algName)
		if err != nil {
			t.Fatal(err)
		}
		for _, order := range []join.Order{join.Sequential, join.Greedy} {
			ev := Evaluator{Algorithm: alg, Order: order}
			got, err := ev.Eval(e, db)
			if err != nil {
				t.Fatalf("%s/%v: %v", algName, order, err)
			}
			if !got.Equal(ref) {
				t.Errorf("%s/%v disagrees with default", algName, order)
			}
		}
	}
}

func TestEvalStats(t *testing.T) {
	r := mkrel(t, "A B C", "1 x p", "2 x q")
	db := relation.Single("T", r)
	op := MustOperand("T", r.Scheme())
	e := MustProject(relation.MustScheme("A"),
		MustJoin(
			MustProject(relation.MustScheme("A", "B"), op),
			MustProject(relation.MustScheme("B", "C"), op),
		))
	col := &obs.Collector{}
	ev := Evaluator{Collector: col}
	got, err := ev.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("result = %v", got.Sorted())
	}
	snap := col.Metrics.Snapshot()
	if snap.Joins != 1 {
		t.Errorf("Joins = %d", snap.Joins)
	}
	// Join result has 4 tuples (both A's match both C's via B=x).
	if snap.MaxIntermediate != 4 {
		t.Errorf("MaxIntermediate = %d, want 4", snap.MaxIntermediate)
	}
}

func TestEvalBudget(t *testing.T) {
	// Cross product of two 4-tuple relations = 16 tuples > budget 10.
	db := relation.NewDatabase()
	db.Put("L", mkrel(t, "A", "1", "2", "3", "4"))
	db.Put("R", mkrel(t, "B", "1", "2", "3", "4"))
	e := MustJoin(
		MustOperand("L", relation.MustScheme("A")),
		MustOperand("R", relation.MustScheme("B")),
	)
	ev := Evaluator{MaxIntermediate: 10}
	_, err := ev.Eval(e, db)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
	ev = Evaluator{MaxIntermediate: 16}
	if _, err := ev.Eval(e, db); err != nil {
		t.Errorf("budget 16 failed: %v", err)
	}
}

func TestEvalBudgetOnProjection(t *testing.T) {
	db := relation.Single("T", mkrel(t, "A B", "1 1", "2 2", "3 3"))
	e := MustProject(relation.MustScheme("A"), MustOperand("T", relation.MustScheme("A", "B")))
	ev := Evaluator{MaxIntermediate: 2}
	if _, err := ev.Eval(e, db); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestEvalSingle(t *testing.T) {
	r := mkrel(t, "A B", "1 2")
	e := MustProject(relation.MustScheme("B"), MustOperand("R", r.Scheme()))
	got, err := EvalSingle(e, "R", r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(mkrel(t, "B", "2")) {
		t.Errorf("EvalSingle = %v", got.Sorted())
	}
}

func TestEvalMultiRelationDatabase(t *testing.T) {
	db := relation.NewDatabase()
	db.Put("R", mkrel(t, "A B", "1 x", "2 y"))
	db.Put("S", mkrel(t, "B C", "x p", "y q"))
	e := MustJoin(
		MustOperand("R", relation.MustScheme("A", "B")),
		MustOperand("S", relation.MustScheme("B", "C")),
	)
	got, err := Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(mkrel(t, "A B C", "1 x p", "2 y q")) {
		t.Errorf("Eval = %v", got.Sorted())
	}
}

func TestEvalSemijoinPrefilter(t *testing.T) {
	// Hub workload: without the prefilter the first join materializes all
	// pairs; with it, the empty-matching third relation empties everything
	// first.
	db := relation.NewDatabase()
	l := mkrel(t, "A B")
	r := mkrel(t, "B C")
	for i := 0; i < 20; i++ {
		l.MustAdd(relation.TupleOf(string(rune('a'+i)), "hub"))
		r.MustAdd(relation.TupleOf("hub", string(rune('A'+i))))
	}
	db.Put("L", l)
	db.Put("R", r)
	db.Put("S", mkrel(t, "C D", "nomatch z"))
	e := MustJoin(
		MustOperand("L", relation.MustScheme("A", "B")),
		MustOperand("R", relation.MustScheme("B", "C")),
		MustOperand("S", relation.MustScheme("C", "D")),
	)
	plain, filtered := &obs.Collector{}, &obs.Collector{}
	evPlain := Evaluator{Order: join.Sequential, Collector: plain}
	got1, err := evPlain.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	evFiltered := Evaluator{Order: join.Sequential, Collector: filtered, SemijoinPrefilter: true}
	got2, err := evFiltered.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got1.Equal(got2) {
		t.Fatal("prefilter changed the result")
	}
	if got1.Len() != 0 {
		t.Fatalf("result = %d tuples, want 0", got1.Len())
	}
	if maxI := plain.Metrics.Snapshot().MaxIntermediate; maxI < 400 {
		t.Errorf("plain max intermediate = %d, expected the 20x20 blowup", maxI)
	}
	if maxI := filtered.Metrics.Snapshot().MaxIntermediate; maxI != 0 {
		t.Errorf("filtered max intermediate = %d, want 0", maxI)
	}
}

func TestEvalCacheSharesSubexpressions(t *testing.T) {
	r := mkrel(t, "A B C", "1 x p", "2 x q", "2 y q")
	db := relation.Single("T", r)
	op := MustOperand("T", r.Scheme())
	inner := MustJoin(
		MustProject(relation.MustScheme("A", "B"), op),
		MustProject(relation.MustScheme("B", "C"), op),
	)
	// Two projections of the SAME join: with caching the join runs once.
	e := MustJoin(
		MustProject(relation.MustScheme("A"), inner),
		MustProject(relation.MustScheme("C"), inner),
	)
	plain, cached := &obs.Collector{}, &obs.Collector{}
	evPlain := Evaluator{Collector: plain}
	want, err := evPlain.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	evCached := Evaluator{Collector: cached, Cache: true}
	got, err := evCached.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("cache changed the result")
	}
	if joins := plain.Metrics.Snapshot().Joins; joins != 3 { // inner twice + outer
		t.Errorf("plain Joins = %d, want 3", joins)
	}
	if joins := cached.Metrics.Snapshot().Joins; joins != 2 { // inner once + outer
		t.Errorf("cached Joins = %d, want 2", joins)
	}
}
