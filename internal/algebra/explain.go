package algebra

import (
	"context"
	"fmt"
	"strings"
	"time"

	"relquery/internal/governor"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// Explain evaluates the expression bottom-up and renders its operator tree
// with the actual cardinality of every node — the library's EXPLAIN
// ANALYZE. The tree makes the paper's phenomenon visible at a glance: on
// the gadget queries the join node's row count dwarfs both its inputs and
// the projection above it.
//
//	pi[A C]                                   rows=4
//	└─ *                                      rows=5
//	   ├─ pi[A B](T)                          rows=3
//	   └─ pi[B C](T)                          rows=3
//
// Explain materializes every node with the Evaluator's defaults; use a
// budgeted Evaluator and ExplainWith when the query may blow up.
func Explain(e Expr, db relation.Database) (string, error) {
	ev := Evaluator{}
	return ExplainWith(&ev, e, db)
}

// ExplainWith is Explain under a caller-configured evaluator (budget, join
// algorithm, prefilter).
func ExplainWith(ev *Evaluator, e Expr, db relation.Database) (string, error) {
	var b strings.Builder
	if _, err := explainNode(ev, e, db, &b, "", ""); err != nil {
		return "", err
	}
	return b.String(), nil
}

// explainNode renders one node and returns its materialized value.
func explainNode(ev *Evaluator, e Expr, db relation.Database, b *strings.Builder, prefix, childPrefix string) (*relation.Relation, error) {
	label := nodeLabel(e)
	var children []Expr
	switch x := e.(type) {
	case *Project:
		children = []Expr{x.Of()}
	case *Join:
		children = x.Args()
	}

	// Evaluate children first (post-order), collecting their relations,
	// but print this node before its subtree for the usual EXPLAIN shape.
	// Two passes: compute sizes via a single evaluation of this node and
	// recursion for children.
	rel, err := ev.Eval(e, db)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(b, "%s%-42s "+obs.FieldRows+"=%d\n", prefix, label, rel.Len())
	for i, c := range children {
		connector, nextIndent := "├─ ", "│  "
		if i == len(children)-1 {
			connector, nextIndent = "└─ ", "   "
		}
		if _, err := explainNode(ev, c, db, b, childPrefix+connector, childPrefix+nextIndent); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// ExplainAnalyze evaluates the expression once under a tracing collector
// and renders the executed operator tree annotated with observed
// statistics: per-node cardinality, scheme width, wall time, join
// algorithm and worker count, cache status, and — for join nodes — the
// AGM worst-case size bound next to the observed size. On the paper's
// gadget queries the join node's rows dwarf the tree above and below it,
// and the AGM column shows how close the blow-up sits to the theoretical
// ceiling:
//
//	pi[A C]                                   rows=4 width=2 wall=41µs
//	└─ * (natural join, 2 inputs)             rows=5 width=3 wall=28µs in=[3 3] alg=hash agm≤9
//	   ├─ pi[A B]                             rows=3 width=2 wall=12µs in=[3]
//	   │  └─ T                                rows=3 width=3 wall=1µs
//	   └─ pi[B C]                             rows=3 width=2 wall=9µs in=[3]
//	      └─ T                                rows=3 width=3 wall=1µs
//
// Unlike Explain — which re-evaluates every subtree and renders the
// syntactic tree — ExplainAnalyze evaluates the query exactly once and
// renders what actually executed: a subtree served from a cache appears
// as a single node marked cache=hit with no children. An n-ary join node
// whose intermediate binary joins grew past its final output also shows
// peak=N, the paper's blow-up number for that node.
func ExplainAnalyze(e Expr, db relation.Database) (string, error) {
	ev := Evaluator{}
	return ExplainAnalyzeWith(&ev, e, db)
}

// ExplainAnalyzeWith is ExplainAnalyze under a caller-configured
// evaluator (budget, join algorithm, order, parallelism, caching). The
// evaluator's Collector is replaced for the duration of the call.
//
// When evaluation dies on a resource-governor violation (deadline, row
// or memory budget, cancellation), the error is returned together with
// the partial span tree executed up to the abort: the span carrying the
// violation is annotated error=..., so the rendering shows exactly
// where the budget died. Callers distinguish the two outcomes by the
// error value — a non-empty string with a non-nil error is a partial
// trace, not a completed plan.
func ExplainAnalyzeWith(ev *Evaluator, e Expr, db relation.Database) (string, error) {
	return ExplainAnalyzeContext(context.Background(), ev, e, db)
}

// ExplainAnalyzeContext is ExplainAnalyzeWith under a caller context, so
// EXPLAIN ANALYZE itself honors deadlines and cancellation. On a
// governor violation it returns the partial span tree alongside the
// error (see ExplainAnalyzeWith).
func ExplainAnalyzeContext(ctx context.Context, ev *Evaluator, e Expr, db relation.Database) (string, error) {
	saved := ev.Collector
	c := &obs.Collector{}
	ev.Collector = c
	_, err := ev.EvalContext(ctx, e, db)
	ev.Collector = saved
	if err != nil {
		if t := governor.TraceOf(err); t != nil {
			return RenderTrace(t), err
		}
		return "", err
	}
	return RenderTrace(c.Trace()), nil
}

// RenderTrace renders a trace's span tree in the EXPLAIN ANALYZE text
// format (see ExplainAnalyze). Every root span gets its own tree.
func RenderTrace(t *obs.Trace) string {
	var b strings.Builder
	if t == nil {
		return ""
	}
	for _, root := range t.Roots {
		renderSpan(&b, root, "", "")
	}
	// Governance footer, only when the governor actually intervened —
	// clean evaluations keep the classic tree-only output.
	if m := t.Metrics; m.ViolationsTotal()+m.DegradedEvals > 0 {
		b.WriteString("governor: violations")
		for _, vc := range m.ViolationCounts() {
			fmt.Fprintf(&b, " %s=%d", vc.Kind, vc.Count)
		}
		fmt.Fprintf(&b, " "+obs.FieldDegraded+"=%d\n", m.DegradedEvals)
	}
	return b.String()
}

// renderSpan renders one span and recurses over its children.
func renderSpan(b *strings.Builder, sp *obs.Span, prefix, childPrefix string) {
	if sp == nil {
		return
	}
	fmt.Fprintf(b, "%s%-42s "+obs.FieldRows+"=%d "+obs.FieldWidth+"=%d "+obs.FieldWall+"=%s",
		prefix, sp.Label, sp.OutputRows, sp.SchemeWidth,
		sp.Wall().Round(time.Microsecond))
	if len(sp.InputRows) > 0 {
		fmt.Fprintf(b, " "+obs.FieldInputs+"=%v", sp.InputRows)
	}
	if sp.Algorithm != "" {
		fmt.Fprintf(b, " "+obs.FieldAlg+"=%s", sp.Algorithm)
	}
	if sp.Workers > 0 {
		fmt.Fprintf(b, " "+obs.FieldWorkers+"=%d", sp.Workers)
	}
	if sp.Structure != "" {
		fmt.Fprintf(b, " "+obs.FieldStructure+"=%s", sp.Structure)
	}
	if sp.Candidates > 0 || sp.Intersections > 0 {
		fmt.Fprintf(b, " "+obs.FieldCandidates+"=%d "+obs.FieldIntersections+"=%d", sp.Candidates, sp.Intersections)
	}
	if sp.Semijoins > 0 {
		fmt.Fprintf(b, " "+obs.FieldSemijoins+"=%d "+obs.FieldReduced+"=%d", sp.Semijoins, sp.ReducedRows)
	}
	if sp.MaxIntermediate > sp.OutputRows {
		fmt.Fprintf(b, " "+obs.FieldPeak+"=%d", sp.MaxIntermediate)
	}
	if sp.AGMBound > 0 {
		fmt.Fprintf(b, " "+obs.FieldAGM+"≤%.4g", sp.AGMBound)
	}
	if sp.Cache != "" {
		fmt.Fprintf(b, " "+obs.FieldCache+"=%s", sp.Cache)
	}
	if sp.Degraded {
		b.WriteString(" " + obs.FieldDegraded)
	}
	if sp.Err != "" {
		fmt.Fprintf(b, " "+obs.FieldError+"=%q", sp.Err)
	}
	b.WriteByte('\n')
	for i, c := range sp.Children {
		connector, nextIndent := "├─ ", "│  "
		if i == len(sp.Children)-1 {
			connector, nextIndent = "└─ ", "   "
		}
		renderSpan(b, c, childPrefix+connector, childPrefix+nextIndent)
	}
}

// nodeLabel renders a node header without descending into subtrees.
func nodeLabel(e Expr) string {
	switch x := e.(type) {
	case *Operand:
		return x.Name()
	case *Project:
		return "pi[" + x.Onto().String() + "]"
	case *Join:
		return fmt.Sprintf("* (natural join, %d inputs)", len(x.Args()))
	default:
		return fmt.Sprintf("%T", e)
	}
}
