package algebra

import (
	"fmt"
	"strings"

	"relquery/internal/relation"
)

// Explain evaluates the expression bottom-up and renders its operator tree
// with the actual cardinality of every node — the library's EXPLAIN
// ANALYZE. The tree makes the paper's phenomenon visible at a glance: on
// the gadget queries the join node's row count dwarfs both its inputs and
// the projection above it.
//
//	pi[A C]                                   rows=4
//	└─ *                                      rows=5
//	   ├─ pi[A B](T)                          rows=3
//	   └─ pi[B C](T)                          rows=3
//
// Explain materializes every node with the Evaluator's defaults; use a
// budgeted Evaluator and ExplainWith when the query may blow up.
func Explain(e Expr, db relation.Database) (string, error) {
	ev := Evaluator{}
	return ExplainWith(&ev, e, db)
}

// ExplainWith is Explain under a caller-configured evaluator (budget, join
// algorithm, prefilter).
func ExplainWith(ev *Evaluator, e Expr, db relation.Database) (string, error) {
	var b strings.Builder
	if _, err := explainNode(ev, e, db, &b, "", ""); err != nil {
		return "", err
	}
	return b.String(), nil
}

// explainNode renders one node and returns its materialized value.
func explainNode(ev *Evaluator, e Expr, db relation.Database, b *strings.Builder, prefix, childPrefix string) (*relation.Relation, error) {
	label := nodeLabel(e)
	var children []Expr
	switch x := e.(type) {
	case *Project:
		children = []Expr{x.Of()}
	case *Join:
		children = x.Args()
	}

	// Evaluate children first (post-order), collecting their relations,
	// but print this node before its subtree for the usual EXPLAIN shape.
	// Two passes: compute sizes via a single evaluation of this node and
	// recursion for children.
	rel, err := ev.Eval(e, db)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(b, "%s%-42s rows=%d\n", prefix, label, rel.Len())
	for i, c := range children {
		connector, nextIndent := "├─ ", "│  "
		if i == len(children)-1 {
			connector, nextIndent = "└─ ", "   "
		}
		if _, err := explainNode(ev, c, db, b, childPrefix+connector, childPrefix+nextIndent); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// nodeLabel renders a node header without descending into subtrees.
func nodeLabel(e Expr) string {
	switch x := e.(type) {
	case *Operand:
		return x.Name()
	case *Project:
		return "pi[" + x.Onto().String() + "]"
	case *Join:
		return fmt.Sprintf("* (natural join, %d inputs)", len(x.Args()))
	default:
		return fmt.Sprintf("%T", e)
	}
}
