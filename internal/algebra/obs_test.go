package algebra

import (
	"strings"
	"testing"

	"relquery/internal/obs"
	"relquery/internal/relation"
)

// chainQuery builds pi[A C](pi[A B](T) * pi[B C](T)) over a tiny T with
// hand-checkable cardinalities: legs 3 and 2 rows, join 3, result 3,
// AGM bound 3·2 = 6 (a chain join must fully cover both relations).
func chainQuery(t *testing.T) (Expr, relation.Database) {
	t.Helper()
	r := mkrel(t, "A B C", "1 x p", "2 x p", "2 y q")
	op := MustOperand("T", r.Scheme())
	e := MustProject(relation.MustScheme("A", "C"), MustJoin(
		MustProject(relation.MustScheme("A", "B"), op),
		MustProject(relation.MustScheme("B", "C"), op),
	))
	return e, relation.Single("T", r)
}

func TestEvalTraceSpans(t *testing.T) {
	e, db := chainQuery(t)
	col := &obs.Collector{}
	ev := Evaluator{Collector: col}
	out, err := ev.Eval(e, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("result has %d tuples, want 3", out.Len())
	}

	root := col.Trace().Root()
	if root == nil {
		t.Fatal("no root span collected")
	}
	if root.Op != obs.OpProject || root.OutputRows != 3 || root.SchemeWidth != 2 {
		t.Errorf("root span = op=%s rows=%d width=%d, want project/3/2", root.Op, root.OutputRows, root.SchemeWidth)
	}
	if len(root.InputRows) != 1 || root.InputRows[0] != 3 {
		t.Errorf("root InputRows = %v, want [3]", root.InputRows)
	}
	if len(root.Children) != 1 {
		t.Fatalf("root has %d children, want 1", len(root.Children))
	}
	j := root.Children[0]
	if j.Op != obs.OpJoin || j.OutputRows != 3 {
		t.Errorf("join span = op=%s rows=%d, want join/3", j.Op, j.OutputRows)
	}
	if len(j.InputRows) != 2 || j.InputRows[0] != 3 || j.InputRows[1] != 2 {
		t.Errorf("join InputRows = %v, want [3 2]", j.InputRows)
	}
	if j.AGMBound != 6 {
		t.Errorf("join AGMBound = %g, want 6", j.AGMBound)
	}
	if j.Algorithm != "hash" {
		t.Errorf("join Algorithm = %q, want hash", j.Algorithm)
	}
	if len(j.Children) != 2 {
		t.Fatalf("join has %d children, want 2", len(j.Children))
	}
	for i, c := range j.Children {
		if c.Op != obs.OpProject {
			t.Errorf("join child %d op = %s, want project", i, c.Op)
		}
		if len(c.Children) != 1 || c.Children[0].Op != obs.OpScan || c.Children[0].OutputRows != 3 {
			t.Errorf("join child %d should scan T (3 rows), got %+v", i, c.Children)
		}
	}

	snap := col.Metrics.Snapshot()
	if snap.Joins != 1 {
		t.Errorf("metrics Joins = %d, want 1", snap.Joins)
	}
	if snap.MaxIntermediate != 3 {
		t.Errorf("metrics MaxIntermediate = %d, want 3", snap.MaxIntermediate)
	}
}

// TestTraceParallelMatchesSequential: the span tree collected under the
// parallel engine has the same shape and per-node cardinalities as the
// sequential engine's (child order is pinned to argument order).
func TestTraceParallelMatchesSequential(t *testing.T) {
	r := randomWideRel(t, 5, []string{"A", "B", "C", "D"}, 400, 10)
	db := relation.Single("T", r)
	op := MustOperand("T", r.Scheme())
	e := legsExpr(t, op, [][]string{{"A", "B"}, {"B", "C"}, {"C", "D"}})

	trace := func(par int) *obs.Span {
		col := &obs.Collector{}
		ev := Evaluator{Parallelism: par, Collector: col}
		if _, err := ev.Eval(e, db); err != nil {
			t.Fatal(err)
		}
		return col.Trace().Root()
	}
	seq, par := trace(0), trace(8)
	var compare func(path string, a, b *obs.Span)
	compare = func(path string, a, b *obs.Span) {
		if a.Op != b.Op || a.Label != b.Label {
			t.Fatalf("%s: node mismatch: %s %q vs %s %q", path, a.Op, a.Label, b.Op, b.Label)
		}
		if a.OutputRows != b.OutputRows {
			t.Errorf("%s (%s): rows %d (seq) vs %d (parallel)", path, a.Label, a.OutputRows, b.OutputRows)
		}
		if len(a.Children) != len(b.Children) {
			t.Fatalf("%s: child count %d vs %d", path, len(a.Children), len(b.Children))
		}
		for i := range a.Children {
			compare(path+"/"+a.Children[i].Label, a.Children[i], b.Children[i])
		}
	}
	compare("root", seq, par)
}

func TestExplainAnalyzeFormat(t *testing.T) {
	e, db := chainQuery(t)
	out, err := ExplainAnalyze(e, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pi[A C]", "* (natural join, 2 inputs)", "pi[A B]", "pi[B C]",
		"rows=3", "width=2", "wall=", "in=[3 2]", "alg=hash", "agm≤6",
		"└─ ", "├─ ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 6 {
		t.Errorf("ExplainAnalyze rendered %d lines, want 6 (one per executed node):\n%s", lines, out)
	}
}

// TestExplainAnalyzeCacheHit: under a shared cache a re-analyzed query is
// served from the cache — the root span says cache=hit and has no
// children, because the subtree never executed.
func TestExplainAnalyzeCacheHit(t *testing.T) {
	e, db := chainQuery(t)
	ev := Evaluator{Cache: true, SharedCache: NewSubexprCache()}
	if _, err := ev.Eval(e, db); err != nil {
		t.Fatal(err)
	}
	out, err := ExplainAnalyzeWith(&ev, e, db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cache=hit") {
		t.Errorf("re-analyzed query not served from cache:\n%s", out)
	}
	if strings.Contains(out, "└─") {
		t.Errorf("cache-hit root should have no executed children:\n%s", out)
	}
	if ev.Collector != nil {
		t.Error("ExplainAnalyzeWith leaked its collector into the evaluator")
	}
}

func TestExplainAnalyzeError(t *testing.T) {
	e, db := chainQuery(t)
	ev := Evaluator{MaxIntermediate: 1}
	if _, err := ExplainAnalyzeWith(&ev, e, db); err == nil {
		t.Fatal("budget 1 should have failed ExplainAnalyze")
	}
}

// TestCacheCounters: the shared cache's hit/miss/invalidation counters.
func TestCacheCounters(t *testing.T) {
	e, db := chainQuery(t)
	cache := NewSubexprCache()
	ev := Evaluator{Cache: true, SharedCache: cache}
	if _, err := ev.Eval(e, db); err != nil {
		t.Fatal(err)
	}
	// Composite nodes: root projection, join, two legs = 4 distinct.
	if hits, misses, inval, entries := cache.Counters(); hits != 0 || misses != 4 || inval != 0 || entries != 4 {
		t.Fatalf("after first eval: hits=%d misses=%d invalidations=%d entries=%d, want 0/4/0/4",
			hits, misses, inval, entries)
	}
	if _, err := ev.Eval(e, db); err != nil {
		t.Fatal(err)
	}
	// The second eval is served at the root: one hit, nothing recomputed.
	if hits, misses, _, _ := cache.Counters(); hits != 1 || misses != 4 {
		t.Fatalf("after second eval: hits=%d misses=%d, want 1/4", hits, misses)
	}
	if dropped := cache.Reset(); dropped != 4 {
		t.Fatalf("Reset dropped %d entries, want 4", dropped)
	}
	if _, _, inval, entries := cache.Counters(); inval != 4 || entries != 0 {
		t.Fatalf("after Reset: invalidations=%d entries=%d, want 4/0", inval, entries)
	}
}

// TestComputeOnceCountersUnderParallelism is the compute-once regression
// test expressed through the observability counters: with a triplicated
// leg evaluated at parallelism 8, the metrics must show exactly one miss
// per distinct composite node and one hit per duplicate request —
// deterministically, because the per-call memo blocks duplicate
// requesters instead of racing them.
func TestComputeOnceCountersUnderParallelism(t *testing.T) {
	r := randomWideRel(t, 9, []string{"A", "B", "C"}, 400, 10)
	db := relation.Single("T", r)
	op := MustOperand("T", r.Scheme())
	leg := MustProject(relation.MustScheme("A", "B"), op)
	other := MustProject(relation.MustScheme("B", "C"), op)
	e := MustJoin(leg, other, leg, leg)

	for run := 0; run < 5; run++ {
		col := &obs.Collector{}
		ev := Evaluator{Parallelism: 8, Cache: true, Collector: col}
		if _, err := ev.Eval(e, db); err != nil {
			t.Fatal(err)
		}
		snap := col.Metrics.Snapshot()
		// Cached (composite) evaluations: join ×1, leg ×3, other ×1.
		// Distinct: 3 misses; the two duplicate leg requests must hit.
		if snap.CacheMisses != 3 || snap.CacheHits != 2 {
			t.Fatalf("run %d: cache hits=%d misses=%d, want 2/3 (leg recomputed?)",
				run, snap.CacheHits, snap.CacheMisses)
		}
	}
}
