package algebra

import (
	"fmt"
	"strings"

	"relquery/internal/relation"
)

// The expression text syntax:
//
//	expr := term ( '*' term )*
//	term := ('pi' | 'project') '[' attr* ']' '(' expr ')'
//	      | '(' expr ')'
//	      | operand-name
//
// Attribute names and operand names are runs of characters other than
// whitespace and the delimiters []()*. The parser resolves operand names
// against a caller-supplied scheme map, so Y{1,2}-style attributes parse
// unquoted.

type tokenKind int

const (
	tokName tokenKind = iota
	tokStar
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) describe() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		default:
			start := i
			for i < len(src) && !strings.ContainsRune(" \t\n\r*[]()", rune(src[i])) {
				i++
			}
			toks = append(toks, token{tokName, src[start:i], start})
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

type parser struct {
	toks    []token
	i       int
	schemes map[string]relation.Scheme
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return token{}, fmt.Errorf("algebra: parse error at offset %d: expected %s, got %s", t.pos, what, t.describe())
	}
	return t, nil
}

func (p *parser) parseExpr() (Expr, error) {
	first, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	args := []Expr{first}
	for p.peek().kind == tokStar {
		p.next()
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		args = append(args, t)
	}
	return JoinAll(args...)
}

func (p *parser) parseTerm() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil

	case tokName:
		// "pi"/"project" are keywords only when followed by '[', so a
		// relation that happens to be named pi still parses as an operand.
		if (t.text == "pi" || t.text == "project") && p.peek().kind == tokLBracket {
			return p.parseProjection(t)
		}
		scheme, ok := p.schemes[t.text]
		if !ok {
			return nil, fmt.Errorf("algebra: parse error at offset %d: unknown operand %q (known: %s)",
				t.pos, t.text, knownNames(p.schemes))
		}
		return NewOperand(t.text, scheme)

	default:
		return nil, fmt.Errorf("algebra: parse error at offset %d: expected expression, got %s", t.pos, t.describe())
	}
}

func (p *parser) parseProjection(kw token) (Expr, error) {
	if _, err := p.expect(tokLBracket, "'[' after "+kw.text); err != nil {
		return nil, err
	}
	var attrs []relation.Attribute
	for p.peek().kind == tokName {
		attrs = append(attrs, relation.Attribute(p.next().text))
	}
	if _, err := p.expect(tokRBracket, "']' closing attribute list"); err != nil {
		return nil, err
	}
	onto, err := relation.NewScheme(attrs...)
	if err != nil {
		return nil, fmt.Errorf("algebra: parse error at offset %d: %w", kw.pos, err)
	}
	if _, err := p.expect(tokLParen, "'(' after projection list"); err != nil {
		return nil, err
	}
	of, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')' closing projection"); err != nil {
		return nil, err
	}
	proj, err := NewProject(onto, of)
	if err != nil {
		return nil, fmt.Errorf("algebra: parse error at offset %d: %w", kw.pos, err)
	}
	return proj, nil
}

func knownNames(schemes map[string]relation.Scheme) string {
	if len(schemes) == 0 {
		return "none"
	}
	names := make([]string, 0, len(schemes))
	for n := range schemes {
		names = append(names, n)
	}
	// Deterministic error messages.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}

// Parse parses an expression in the package's text syntax, resolving
// operand names against the given schemes.
func Parse(src string, schemes map[string]relation.Scheme) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, schemes: schemes}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("algebra: parse error at offset %d: unexpected %s after expression", t.pos, t.describe())
	}
	return e, nil
}

// ParseForDatabase parses an expression whose operand schemes come from
// the relations of db.
func ParseForDatabase(src string, db relation.Database) (Expr, error) {
	schemes := make(map[string]relation.Scheme, len(db))
	for name, r := range db {
		schemes[name] = r.Scheme()
	}
	return Parse(src, schemes)
}
