package deps

import (
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

// Universal-instance testing, after Honeyman, Ladner and Yannakakis
// (1980), one of the hardness precursors the paper builds on: a database
// {R₁, …, R_k} is (globally) consistent when some universal relation U
// over the union scheme has π_{Xᵢ}(U) = Rᵢ for every i. HLY's key
// observation makes the test effective: if ANY witness exists, the join
// ∗Rᵢ is one, so consistency is exactly
//
//	π_{Xᵢ}(∗R) = Rᵢ  for every i.
//
// Testing this is co-NP-hard in general (it embeds the paper's fixpoint
// problem); for pairwise-consistent ACYCLIC databases it is automatic —
// another face of the acyclicity dividend measured in experiment E8.

// PairwiseConsistent reports whether every pair of relations agrees on its
// shared attributes: π_{Xᵢ∩Xⱼ}(Rᵢ) = π_{Xᵢ∩Xⱼ}(Rⱼ). This is a necessary,
// polynomial-time condition for global consistency, and a sufficient one
// when the scheme hypergraph is acyclic (Beeri–Fagin–Maier–Yannakakis).
func PairwiseConsistent(rels []*relation.Relation) (bool, error) {
	for i := 0; i < len(rels); i++ {
		for j := i + 1; j < len(rels); j++ {
			shared := rels[i].Scheme().Intersect(rels[j].Scheme())
			pi, err := rels[i].Project(shared)
			if err != nil {
				return false, err
			}
			pj, err := rels[j].Project(shared)
			if err != nil {
				return false, err
			}
			if !pi.Equal(pj) {
				return false, nil
			}
		}
	}
	return true, nil
}

// Consistent reports whether the database has a universal instance. The
// relations' schemes may overlap arbitrarily. The check streams the join
// ∗Rᵢ through the tableau engine (space bounded by input and output) and
// tests π_{Xᵢ}(∗R) = Rᵢ in both directions:
//
//   - Rᵢ ⊆ π_{Xᵢ}(∗R): a tableau membership search per tuple (NP side);
//   - π_{Xᵢ}(∗R) ⊆ Rᵢ: automatic, since every join tuple projects into
//     the relation it came from.
func Consistent(rels []*relation.Relation) (bool, error) {
	if len(rels) == 0 {
		return true, nil
	}
	db := relation.NewDatabase()
	args := make([]algebra.Expr, len(rels))
	for i, r := range rels {
		name := fmt.Sprintf("R%d", i+1)
		db.Put(name, r)
		op, err := algebra.NewOperand(name, r.Scheme())
		if err != nil {
			return false, err
		}
		args[i] = op
	}
	joinQ, err := algebra.JoinAll(args...)
	if err != nil {
		return false, err
	}
	for _, r := range rels {
		proj, err := algebra.NewProject(r.Scheme(), joinQ)
		if err != nil {
			return false, err
		}
		tb, err := tableau.New(proj)
		if err != nil {
			return false, err
		}
		ok := true
		var innerErr error
		r.Each(func(tp relation.Tuple) bool {
			nt := relation.NamedTuple{Scheme: r.Scheme(), Vals: tp}
			member, err := tb.Member(nt, db)
			if err != nil {
				innerErr = err
				return false
			}
			if !member {
				ok = false
				return false
			}
			return true
		})
		if innerErr != nil {
			return false, innerErr
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// UniversalInstance returns a universal relation witnessing consistency
// (the join of the relations), or reports inconsistency. Unlike
// Consistent, it materializes the join, so use it only when the join is
// known to be small.
func UniversalInstance(rels []*relation.Relation) (*relation.Relation, bool, error) {
	ok, err := Consistent(rels)
	if err != nil || !ok {
		return nil, false, err
	}
	if len(rels) == 0 {
		return relation.New(relation.MustScheme()), true, nil
	}
	u := rels[0]
	for _, r := range rels[1:] {
		u, err = u.Join(r)
		if err != nil {
			return nil, false, err
		}
	}
	return u, true, nil
}
