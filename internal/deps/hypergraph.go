package deps

import (
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/join"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

// Hypergraph is the scheme hypergraph of a join query: one hyperedge per
// joined relation scheme.
type Hypergraph struct {
	Edges []relation.Scheme
}

// JoinTree is the output of a successful GYO reduction — an alias for
// join.JoinTree, where the reduction now lives so the planner can run it
// without importing deps (deps sits above join in the package hierarchy).
type JoinTree = join.JoinTree

// IsAcyclic reports whether the hypergraph is α-acyclic, via the
// Graham–Yu–Özsoyoğlu (GYO) reduction: repeatedly (1) delete attributes
// that occur in exactly one edge, and (2) delete edges contained in
// another edge, recording the container as the parent. The hypergraph is
// acyclic iff everything reduces away. When acyclic, the returned JoinTree
// drives Yannakakis' algorithm. It delegates to join.JoinTreeOf.
func (h Hypergraph) IsAcyclic() (bool, *JoinTree) {
	tree, ok := join.JoinTreeOf(h.Edges)
	if !ok {
		return false, nil
	}
	return true, tree
}

// Semijoin computes r ⋉ s: the tuples of r that join with at least one
// tuple of s. It delegates to the join package's implementation.
func Semijoin(r, s *relation.Relation) (*relation.Relation, error) {
	return join.Semijoin(r, s)
}

// FullReduce runs Yannakakis' full reducer over an acyclic join: a
// leaf-to-root semijoin sweep followed by a root-to-leaf sweep, after
// which every tuple of every relation participates in at least one join
// result (global consistency). It reports an error when the relations'
// scheme hypergraph is cyclic. It delegates to join.FullReduce, where the
// reducer now lives as part of the join.Yannakakis strategy.
func FullReduce(rels []*relation.Relation) ([]*relation.Relation, error) {
	out, _, err := join.FullReduce(rels)
	if err != nil {
		return nil, fmt.Errorf("deps: %w", err)
	}
	return out, nil
}

// AcyclicJoin evaluates the natural join of an acyclic collection of
// relations with Yannakakis' algorithm: full reduction, then joins along
// the join tree from leaves to root. After full reduction every
// intermediate join result joins losslessly with the remaining relations,
// so intermediate sizes are bounded by |output| · max |input| instead of
// exploding. It reports an error when the scheme hypergraph is cyclic —
// unlike join.Yannakakis, which quietly falls back to a binary plan
// there, this wrapper is for callers that rely on acyclicity.
func AcyclicJoin(rels []*relation.Relation) (*relation.Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("deps: AcyclicJoin of zero relations")
	}
	edges := join.SchemesOf(rels)
	if !join.Acyclic(edges) {
		return nil, fmt.Errorf("deps: acyclic join requires an acyclic hypergraph (schemes %v)", edges)
	}
	return join.Yannakakis{}.JoinAll(rels)
}

// HoldsIn reports whether the relation satisfies the join dependency:
// ∗π_{Y_i}(R) = R. Since R ⊆ ∗π_{Y_i}(R) always holds (every tuple of R
// rejoins from its own projections), only the reverse containment is
// checked. For acyclic JDs the check runs in polynomial time via
// Yannakakis evaluation; for cyclic JDs it streams the join of projections
// through a tableau search, hunting for a recombined tuple outside R —
// space stays bounded, but time may be exponential: the problem is
// co-NP-complete in general, as the paper (after Maier–Sagiv–Yannakakis)
// proves.
func (jd JD) HoldsIn(r *relation.Relation) (bool, error) {
	holds, _, err := jd.Check(r)
	return holds, err
}

// Check is HoldsIn returning, on failure, a witness tuple of
// ∗π_{Y_i}(R) \ R over r's scheme.
func (jd JD) Check(r *relation.Relation) (holds bool, witness relation.Tuple, err error) {
	if err := jd.Validate(r.Scheme()); err != nil {
		return false, nil, err
	}
	if acyclic, _ := jd.Hypergraph().IsAcyclic(); acyclic {
		projections := make([]*relation.Relation, len(jd.Components))
		for i, c := range jd.Components {
			p, err := r.Project(c)
			if err != nil {
				return false, nil, err
			}
			projections[i] = p
		}
		joined, err := AcyclicJoin(projections)
		if err != nil {
			return false, nil, err
		}
		// |∗π(R)| ≥ |R| always; a size excess means some tuple is new.
		if joined.Len() == r.Len() {
			return true, nil, nil
		}
		aligned, err := joined.Project(r.Scheme())
		if err != nil {
			return false, nil, err
		}
		diff, err := aligned.Difference(r)
		if err != nil {
			return false, nil, err
		}
		return false, diff.Tuple(0), nil
	}
	return jd.checkCyclic(r)
}

// checkCyclic streams the join of projections via a tableau valuation
// search, stopping at the first recombined tuple outside r.
func (jd JD) checkCyclic(r *relation.Relation) (bool, relation.Tuple, error) {
	const operand = "R"
	op, err := algebra.NewOperand(operand, r.Scheme())
	if err != nil {
		return false, nil, err
	}
	args := make([]algebra.Expr, len(jd.Components))
	for i, c := range jd.Components {
		p, err := algebra.NewProject(c, op)
		if err != nil {
			return false, nil, err
		}
		args[i] = p
	}
	join, err := algebra.JoinAll(args...)
	if err != nil {
		return false, nil, err
	}
	tb, err := tableau.New(join)
	if err != nil {
		return false, nil, err
	}
	db := relation.Single(operand, r)
	// The join's target scheme is set-equal to r's scheme (the JD's
	// components cover it) but may order columns differently; witnesses
	// are realigned to r's column order before being returned.
	var witness relation.Tuple
	err = tb.Stream(db, func(tp relation.Tuple) bool {
		nt := relation.NamedTuple{Scheme: tb.Target, Vals: tp}
		if !r.ContainsNamed(nt) {
			aligned, perr := nt.Project(r.Scheme())
			if perr == nil {
				witness = aligned.Vals
			} else {
				witness = tp.Clone()
			}
			return false
		}
		return true
	})
	if err != nil {
		return false, nil, err
	}
	return witness == nil, witness, nil
}
