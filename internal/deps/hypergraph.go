package deps

import (
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/join"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

// Hypergraph is the scheme hypergraph of a join query: one hyperedge per
// joined relation scheme.
type Hypergraph struct {
	Edges []relation.Scheme
}

// JoinTree is the output of a successful GYO reduction: Parent[i] is the
// index of edge i's parent (the edge that witnessed its removal as an
// ear), or -1 for the root. Order is the ear-removal order, ending with
// the root; visiting Order[0], Order[1], … therefore performs a
// leaf-to-root semijoin sweep.
type JoinTree struct {
	Parent []int
	Order  []int
}

// IsAcyclic reports whether the hypergraph is α-acyclic, via the
// Graham–Yu–Özsoyoğlu (GYO) reduction: repeatedly (1) delete attributes
// that occur in exactly one edge, and (2) delete edges contained in
// another edge, recording the container as the parent. The hypergraph is
// acyclic iff everything reduces away. When acyclic, the returned JoinTree
// drives Yannakakis' algorithm.
func (h Hypergraph) IsAcyclic() (bool, *JoinTree) {
	n := len(h.Edges)
	if n == 0 {
		return true, &JoinTree{}
	}
	// Work on mutable attribute sets.
	edges := make([]map[relation.Attribute]bool, n)
	for i, e := range h.Edges {
		edges[i] = make(map[relation.Attribute]bool, e.Len())
		for _, a := range e.Attrs() {
			edges[i][a] = true
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	tree := &JoinTree{Parent: make([]int, n)}
	for i := range tree.Parent {
		tree.Parent[i] = -1
	}
	aliveCount := n

	for aliveCount > 1 {
		progressed := false

		// Rule 1: remove attributes occurring in exactly one live edge.
		count := make(map[relation.Attribute]int)
		for i, e := range edges {
			if !alive[i] {
				continue
			}
			for a := range e {
				count[a]++
			}
		}
		for i, e := range edges {
			if !alive[i] {
				continue
			}
			for a := range e {
				if count[a] == 1 {
					delete(e, a)
					progressed = true
				}
			}
		}

		// Rule 2: remove edges contained in another live edge.
		for i := 0; i < n && aliveCount > 1; i++ {
			if !alive[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j || !alive[j] {
					continue
				}
				if containsSet(edges[j], edges[i]) {
					alive[i] = false
					aliveCount--
					tree.Parent[i] = j
					tree.Order = append(tree.Order, i)
					progressed = true
					break
				}
			}
		}

		if !progressed {
			return false, nil
		}
	}
	// The last live edge is the root.
	for i := range alive {
		if alive[i] {
			tree.Order = append(tree.Order, i)
		}
	}
	return true, tree
}

// containsSet reports whether sub ⊆ super.
func containsSet(super, sub map[relation.Attribute]bool) bool {
	if len(sub) > len(super) {
		return false
	}
	for a := range sub {
		if !super[a] {
			return false
		}
	}
	return true
}

// Semijoin computes r ⋉ s: the tuples of r that join with at least one
// tuple of s. It delegates to the join package's implementation.
func Semijoin(r, s *relation.Relation) (*relation.Relation, error) {
	return join.Semijoin(r, s)
}

// FullReduce runs Yannakakis' full reducer over an acyclic join: a
// leaf-to-root semijoin sweep followed by a root-to-leaf sweep, after
// which every tuple of every relation participates in at least one join
// result (global consistency). It reports an error when the relations'
// scheme hypergraph is cyclic.
func FullReduce(rels []*relation.Relation) ([]*relation.Relation, error) {
	h := Hypergraph{Edges: make([]relation.Scheme, len(rels))}
	for i, r := range rels {
		h.Edges[i] = r.Scheme()
	}
	acyclic, tree := h.IsAcyclic()
	if !acyclic {
		return nil, fmt.Errorf("deps: full reduction requires an acyclic join (schemes %v)", h.Edges)
	}
	out := make([]*relation.Relation, len(rels))
	copy(out, rels)

	// Leaf to root: parent ⋉ child, in removal order.
	for _, i := range tree.Order {
		p := tree.Parent[i]
		if p < 0 {
			continue
		}
		reduced, err := Semijoin(out[p], out[i])
		if err != nil {
			return nil, err
		}
		out[p] = reduced
	}
	// Root to leaf: child ⋉ parent, in reverse order.
	for k := len(tree.Order) - 1; k >= 0; k-- {
		i := tree.Order[k]
		p := tree.Parent[i]
		if p < 0 {
			continue
		}
		reduced, err := Semijoin(out[i], out[p])
		if err != nil {
			return nil, err
		}
		out[i] = reduced
	}
	return out, nil
}

// AcyclicJoin evaluates the natural join of an acyclic collection of
// relations with Yannakakis' algorithm: full reduction, then joins along
// the join tree from leaves to root. After full reduction every
// intermediate join result joins losslessly with the remaining relations,
// so intermediate sizes are bounded by |output| · max |input| instead of
// exploding. It reports an error when the scheme hypergraph is cyclic.
func AcyclicJoin(rels []*relation.Relation) (*relation.Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("deps: AcyclicJoin of zero relations")
	}
	reduced, err := FullReduce(rels)
	if err != nil {
		return nil, err
	}
	h := Hypergraph{Edges: make([]relation.Scheme, len(rels))}
	for i, r := range rels {
		h.Edges[i] = r.Scheme()
	}
	_, tree := h.IsAcyclic()
	// Join children into parents, leaves first.
	acc := make([]*relation.Relation, len(reduced))
	copy(acc, reduced)
	root := -1
	for _, i := range tree.Order {
		p := tree.Parent[i]
		if p < 0 {
			root = i
			continue
		}
		joined, err := acc[p].Join(acc[i])
		if err != nil {
			return nil, err
		}
		acc[p] = joined
	}
	if root < 0 {
		return nil, fmt.Errorf("deps: internal error: join tree has no root")
	}
	return acc[root], nil
}

// HoldsIn reports whether the relation satisfies the join dependency:
// ∗π_{Y_i}(R) = R. Since R ⊆ ∗π_{Y_i}(R) always holds (every tuple of R
// rejoins from its own projections), only the reverse containment is
// checked. For acyclic JDs the check runs in polynomial time via
// Yannakakis evaluation; for cyclic JDs it streams the join of projections
// through a tableau search, hunting for a recombined tuple outside R —
// space stays bounded, but time may be exponential: the problem is
// co-NP-complete in general, as the paper (after Maier–Sagiv–Yannakakis)
// proves.
func (jd JD) HoldsIn(r *relation.Relation) (bool, error) {
	holds, _, err := jd.Check(r)
	return holds, err
}

// Check is HoldsIn returning, on failure, a witness tuple of
// ∗π_{Y_i}(R) \ R over r's scheme.
func (jd JD) Check(r *relation.Relation) (holds bool, witness relation.Tuple, err error) {
	if err := jd.Validate(r.Scheme()); err != nil {
		return false, nil, err
	}
	if acyclic, _ := jd.Hypergraph().IsAcyclic(); acyclic {
		projections := make([]*relation.Relation, len(jd.Components))
		for i, c := range jd.Components {
			p, err := r.Project(c)
			if err != nil {
				return false, nil, err
			}
			projections[i] = p
		}
		joined, err := AcyclicJoin(projections)
		if err != nil {
			return false, nil, err
		}
		// |∗π(R)| ≥ |R| always; a size excess means some tuple is new.
		if joined.Len() == r.Len() {
			return true, nil, nil
		}
		aligned, err := joined.Project(r.Scheme())
		if err != nil {
			return false, nil, err
		}
		diff, err := aligned.Difference(r)
		if err != nil {
			return false, nil, err
		}
		return false, diff.Tuple(0), nil
	}
	return jd.checkCyclic(r)
}

// checkCyclic streams the join of projections via a tableau valuation
// search, stopping at the first recombined tuple outside r.
func (jd JD) checkCyclic(r *relation.Relation) (bool, relation.Tuple, error) {
	const operand = "R"
	op, err := algebra.NewOperand(operand, r.Scheme())
	if err != nil {
		return false, nil, err
	}
	args := make([]algebra.Expr, len(jd.Components))
	for i, c := range jd.Components {
		p, err := algebra.NewProject(c, op)
		if err != nil {
			return false, nil, err
		}
		args[i] = p
	}
	join, err := algebra.JoinAll(args...)
	if err != nil {
		return false, nil, err
	}
	tb, err := tableau.New(join)
	if err != nil {
		return false, nil, err
	}
	db := relation.Single(operand, r)
	// The join's target scheme is set-equal to r's scheme (the JD's
	// components cover it) but may order columns differently; witnesses
	// are realigned to r's column order before being returned.
	var witness relation.Tuple
	err = tb.Stream(db, func(tp relation.Tuple) bool {
		nt := relation.NamedTuple{Scheme: tb.Target, Vals: tp}
		if !r.ContainsNamed(nt) {
			aligned, perr := nt.Project(r.Scheme())
			if perr == nil {
				witness = aligned.Vals
			} else {
				witness = tp.Clone()
			}
			return false
		}
		return true
	})
	if err != nil {
		return false, nil, err
	}
	return witness == nil, witness, nil
}
