package deps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relquery/internal/algebra"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

func abcExpr(t *testing.T, src string) algebra.Expr {
	t.Helper()
	e, err := algebra.Parse(src, map[string]relation.Scheme{
		"T": relation.MustScheme("A", "B", "C"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestChaseUnifiesUnderFD(t *testing.T) {
	// π_AB(T) * π_BC(T) under B→C: the chase must unify the two rows' C
	// variables.
	e := abcExpr(t, "pi[A B](T) * pi[B C](T)")
	tb, err := tableau.New(e)
	if err != nil {
		t.Fatal(err)
	}
	fd := FD{From: sc(t, "B"), To: sc(t, "C")}
	chased, err := ChaseFDs(tb, "T", []FD{fd})
	if err != nil {
		t.Fatal(err)
	}
	cPos, _ := chased.Rows[0].Scheme.Pos("C")
	cPos2, _ := chased.Rows[1].Scheme.Pos("C")
	if chased.Rows[0].Vars[cPos] != chased.Rows[1].Vars[cPos2] {
		t.Errorf("C variables not unified:\n%s", chased)
	}
	// The original tableau is untouched.
	if tb.Rows[0].Vars[cPos] == tb.Rows[1].Vars[cPos2] {
		t.Error("ChaseFDs mutated its input")
	}
}

func TestContainedUnderFDsClassicEquivalence(t *testing.T) {
	// Under B→C, the lossy recombination π_AB(T)*π_BC(T) becomes
	// equivalent to T itself (the classical lossless-join fact).
	joinQ := abcExpr(t, "pi[A B](T) * pi[B C](T)")
	identity := abcExpr(t, "pi[A B C](T)")
	fd := FD{From: sc(t, "B"), To: sc(t, "C")}

	// Without the FD: strict containment, no equivalence.
	eq, err := EquivalentUnderFDs(joinQ, identity, "T", nil)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("equivalent without dependencies")
	}
	// With the FD: equivalent.
	eq, err = EquivalentUnderFDs(joinQ, identity, "T", []FD{fd})
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("not equivalent under B→C")
	}
	// The FD A→B does not rescue the decomposition on B.
	eq, err = EquivalentUnderFDs(joinQ, identity, "T", []FD{{From: sc(t, "A"), To: sc(t, "B")}})
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("equivalent under irrelevant FD")
	}
}

func TestLosslessJoinChase(t *testing.T) {
	scheme := sc(t, "A B C")
	comps := []relation.Scheme{sc(t, "A B"), sc(t, "B C")}
	ok, err := LosslessJoin(scheme, []FD{{From: sc(t, "B"), To: sc(t, "C")}}, comps)
	if err != nil || !ok {
		t.Errorf("lossless under B→C: %v %v", ok, err)
	}
	ok, err = LosslessJoin(scheme, nil, comps)
	if err != nil || ok {
		t.Errorf("lossless without FDs: %v %v", ok, err)
	}
	// Agreement with the binary closure test.
	binary, err := LosslessSplit(scheme, []FD{{From: sc(t, "B"), To: sc(t, "C")}}, comps[0], comps[1])
	if err != nil || !binary {
		t.Errorf("binary test disagrees: %v %v", binary, err)
	}
	// Three-way decomposition: A→B, B→C make AB/BC/AC lossless? AB ∗ BC
	// is already all of ABC under the FDs, so adding AC keeps it lossless.
	ok, err = LosslessJoin(scheme,
		[]FD{{From: sc(t, "A"), To: sc(t, "B")}, {From: sc(t, "B"), To: sc(t, "C")}},
		[]relation.Scheme{sc(t, "A B"), sc(t, "B C"), sc(t, "A C")})
	if err != nil || !ok {
		t.Errorf("three-way lossless: %v %v", ok, err)
	}
	// Validation errors propagate.
	if _, err := LosslessJoin(scheme, nil, []relation.Scheme{sc(t, "A B")}); err == nil {
		t.Error("non-covering decomposition accepted")
	}
}

func TestContainedUnderFDsValidatesOperands(t *testing.T) {
	e := abcExpr(t, "pi[A B](T)")
	if _, err := ContainedUnderFDs(e, e, "U", nil); err == nil {
		t.Error("wrong operand name accepted")
	}
	// FD over attributes missing from the scheme.
	bad := FD{From: sc(t, "Z"), To: sc(t, "A")}
	if _, err := ContainedUnderFDs(e, e, "T", []FD{bad}); err == nil {
		t.Error("foreign FD accepted")
	}
}

// TestQuickChaseSoundness: if ContainedUnderFDs says q1 ⊑_Σ q2, then on
// every random database satisfying Σ, q1's result is contained in q2's.
func TestQuickChaseSoundness(t *testing.T) {
	scheme := relation.MustScheme("A", "B", "C")
	schemes := map[string]relation.Scheme{"T": scheme}
	fd := FD{From: relation.MustScheme("B"), To: relation.MustScheme("C")}
	pairs := [][2]string{
		{"pi[A B](T) * pi[B C](T)", "pi[A B C](T)"},
		{"pi[A](pi[A B](T) * pi[B C](T))", "pi[A](T)"},
		{"pi[A C](T)", "pi[A C](pi[A B](T) * pi[B C](T))"},
	}
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := pairs[int(pick)%len(pairs)]
		q1, err := algebra.Parse(p[0], schemes)
		if err != nil {
			return false
		}
		q2, err := algebra.Parse(p[1], schemes)
		if err != nil {
			return false
		}
		contained, err := ContainedUnderFDs(q1, q2, "T", []FD{fd})
		if err != nil {
			return false
		}
		if !contained {
			return true // soundness only
		}
		// Build a random relation SATISFYING B→C: value of C derived
		// deterministically from B.
		r := relation.New(scheme)
		for i, n := 0, rng.Intn(12); i < n; i++ {
			bVal := rng.Intn(4)
			r.MustAdd(relation.TupleOf(
				string(rune('a'+rng.Intn(4))),
				string(rune('p'+bVal)),
				string(rune('x'+bVal%3)), // function of B
			))
		}
		holds, err := fd.HoldsIn(r)
		if err != nil || !holds {
			return false
		}
		db := relation.Single("T", r)
		r1, err := algebra.Eval(q1, db)
		if err != nil {
			return false
		}
		r2, err := algebra.Eval(q2, db)
		if err != nil {
			return false
		}
		sub, err := r1.SubsetOf(r2)
		return err == nil && sub
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
