package deps

import (
	"fmt"

	"relquery/internal/algebra"
	"relquery/internal/relation"
	"relquery/internal/tableau"
)

// The FD chase on tableaux (Aho–Sagiv–Ullman 1979): repeatedly, whenever
// two rows of the same operand agree variable-for-variable on an FD's
// left side, unify their right-side variables. The chase terminates (each
// step removes a variable) and yields a tableau equivalent to the original
// on every database satisfying the dependencies. It upgrades
// Chandra–Merlin containment to containment under dependencies:
//
//	Q₁ ⊑_Σ Q₂  ⇔  hom( tableau(Q₂) → chase_Σ(tableau(Q₁)) ).

// ChaseFDs returns the chase of t under the FDs, which are understood to
// hold in the relation bound to the given operand name. Rows of other
// operands are untouched. The input tableau is not modified.
func ChaseFDs(t *tableau.Tableau, operand string, fds []FD) (*tableau.Tableau, error) {
	out := t.Clone()
	for _, fd := range fds {
		for _, row := range out.Rows {
			if row.Operand != operand {
				continue
			}
			if err := fd.Validate(row.Scheme); err != nil {
				return nil, fmt.Errorf("deps: chase: %w", err)
			}
			break // schemes of one operand's rows coincide; validate once
		}
	}
	for {
		changed := false
		for _, fd := range fds {
			for i := 0; i < len(out.Rows); i++ {
				if out.Rows[i].Operand != operand {
					continue
				}
				for j := i + 1; j < len(out.Rows); j++ {
					if out.Rows[j].Operand != operand {
						continue
					}
					if applyFD(out, fd, i, j) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return out, nil
		}
	}
}

// applyFD equates the To-variables of rows i and j when they agree on
// every From-variable, returning whether anything changed.
func applyFD(t *tableau.Tableau, fd FD, i, j int) bool {
	ri, rj := t.Rows[i], t.Rows[j]
	for _, a := range fd.From.Attrs() {
		pi, _ := ri.Scheme.Pos(a)
		pj, _ := rj.Scheme.Pos(a)
		if ri.Vars[pi] != rj.Vars[pj] {
			return false
		}
	}
	changed := false
	for _, a := range fd.To.Attrs() {
		pi, _ := ri.Scheme.Pos(a)
		pj, _ := rj.Scheme.Pos(a)
		vi, vj := ri.Vars[pi], rj.Vars[pj]
		if vi == vj {
			continue
		}
		// Unify toward the smaller variable for determinism.
		from, to := vi, vj
		if from < to {
			from, to = to, from
		}
		t.Unify(from, to)
		changed = true
	}
	return changed
}

// ContainedUnderFDs decides containment of project–join queries over a
// single relation under a set of FDs on that relation: q1 ⊑_Σ q2 on every
// database whose relation satisfies the FDs. Both queries must reference
// only the given operand.
func ContainedUnderFDs(q1, q2 algebra.Expr, operand string, fds []FD) (bool, error) {
	if err := singleOperand(q1, operand); err != nil {
		return false, err
	}
	if err := singleOperand(q2, operand); err != nil {
		return false, err
	}
	t1, err := tableau.New(q1)
	if err != nil {
		return false, err
	}
	t2, err := tableau.New(q2)
	if err != nil {
		return false, err
	}
	chased, err := ChaseFDs(t1, operand, fds)
	if err != nil {
		return false, err
	}
	return t2.HomomorphismTo(chased)
}

// EquivalentUnderFDs decides equivalence under the FDs.
func EquivalentUnderFDs(q1, q2 algebra.Expr, operand string, fds []FD) (bool, error) {
	le, err := ContainedUnderFDs(q1, q2, operand, fds)
	if err != nil || !le {
		return false, err
	}
	return ContainedUnderFDs(q2, q1, operand, fds)
}

func singleOperand(q algebra.Expr, operand string) error {
	ops := q.Operands()
	if len(ops) != 1 || ops[0] != operand {
		return fmt.Errorf("deps: query must reference exactly the operand %q, got %v", operand, ops)
	}
	return nil
}

// LosslessJoin decides, via the chase, whether decomposing a relation over
// `scheme` into the given component schemes is lossless under the FDs:
// the decomposition is lossless iff ∗π_{Yᵢ}(R) = R for every R over
// `scheme` satisfying the FDs, iff chase_Σ(tableau(∗π_{Yᵢ}(T))) maps
// homomorphically into the single-row tableau of T — equivalently, iff
// the join query is equivalent to the identity under Σ. This generalizes
// the binary LosslessSplit test to any number of components.
func LosslessJoin(scheme relation.Scheme, fds []FD, components []relation.Scheme) (bool, error) {
	jd := JD{Components: components}
	if err := jd.Validate(scheme); err != nil {
		return false, err
	}
	const operand = "T"
	op, err := algebra.NewOperand(operand, scheme)
	if err != nil {
		return false, err
	}
	args := make([]algebra.Expr, len(components))
	for i, c := range components {
		p, err := algebra.NewProject(c, op)
		if err != nil {
			return false, err
		}
		args[i] = p
	}
	joinQ, err := algebra.JoinAll(args...)
	if err != nil {
		return false, err
	}
	identity, err := algebra.NewProject(scheme, op)
	if err != nil {
		return false, err
	}
	// R ⊆ ∗π(R) always; lossless means the reverse under Σ.
	return ContainedUnderFDs(joinQ, identity, operand, fds)
}
