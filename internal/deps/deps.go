// Package deps implements the dependency-theory substrate surrounding the
// paper: functional and join dependencies with satisfaction tests (the
// paper's co-NP-complete problem "is ∗π_{Y_i}(R) = R" is exactly join-
// dependency satisfaction, after Maier, Sagiv and Yannakakis 1981),
// attribute-set closure under FDs, hypergraph acyclicity via the GYO
// reduction, semijoins, and Yannakakis-style full reduction and acyclic
// join evaluation (the tractable counterpoint cited from Yannakakis 1981:
// acyclic project–join queries evaluate in polynomial time, while the
// paper's cyclic gadget queries provably do not, unless P = NP).
package deps

import (
	"fmt"
	"strings"

	"relquery/internal/relation"
)

// FD is a functional dependency From → To.
type FD struct {
	From, To relation.Scheme
}

// String renders the FD as "A B -> C".
func (fd FD) String() string {
	return fmt.Sprintf("%v -> %v", fd.From, fd.To)
}

// Validate checks that both sides live inside the given scheme.
func (fd FD) Validate(scheme relation.Scheme) error {
	if !scheme.ContainsAll(fd.From) {
		return fmt.Errorf("deps: FD %v: left side not within %v", fd, scheme)
	}
	if !scheme.ContainsAll(fd.To) {
		return fmt.Errorf("deps: FD %v: right side not within %v", fd, scheme)
	}
	return nil
}

// HoldsIn reports whether the relation satisfies the FD: any two tuples
// agreeing on From agree on To.
func (fd FD) HoldsIn(r *relation.Relation) (bool, error) {
	if err := fd.Validate(r.Scheme()); err != nil {
		return false, err
	}
	keyProj, err := projector(r.Scheme(), fd.From)
	if err != nil {
		return false, err
	}
	valProj, err := projector(r.Scheme(), fd.To)
	if err != nil {
		return false, err
	}
	seen := make(map[string]string, r.Len())
	holds := true
	r.Each(func(t relation.Tuple) bool {
		k := keyProj(t).Key()
		v := valProj(t).Key()
		if prev, ok := seen[k]; ok && prev != v {
			holds = false
			return false
		}
		seen[k] = v
		return true
	})
	return holds, nil
}

// Closure computes the closure of attrs under the FDs (the standard
// fixpoint algorithm).
func Closure(attrs relation.Scheme, fds []FD) relation.Scheme {
	closure := attrs
	for {
		grew := false
		for _, fd := range fds {
			if closure.ContainsAll(fd.From) && !closure.ContainsAll(fd.To) {
				closure = closure.Union(fd.To)
				grew = true
			}
		}
		if !grew {
			return closure
		}
	}
}

// Implies reports whether the FDs imply From → To (via closure).
func Implies(fds []FD, candidate FD) bool {
	return Closure(candidate.From, fds).ContainsAll(candidate.To)
}

// LosslessSplit reports whether decomposing a relation over scheme into
// s1 and s2 is lossless-join under the FDs — the classical binary test:
// (s1 ∩ s2) → s1 or (s1 ∩ s2) → s2 must be implied.
func LosslessSplit(scheme relation.Scheme, fds []FD, s1, s2 relation.Scheme) (bool, error) {
	if !scheme.ContainsAll(s1) || !scheme.ContainsAll(s2) {
		return false, fmt.Errorf("deps: decomposition schemes must be within %v", scheme)
	}
	if !s1.Union(s2).Equal(scheme) {
		return false, fmt.Errorf("deps: decomposition %v, %v does not cover %v", s1, s2, scheme)
	}
	shared := s1.Intersect(s2)
	cl := Closure(shared, fds)
	return cl.ContainsAll(s1) || cl.ContainsAll(s2), nil
}

// JD is a join dependency ∗[Y₁, …, Y_k]: the relation must equal the join
// of its projections onto the components.
type JD struct {
	Components []relation.Scheme
}

// String renders the JD as "*[A B, B C]".
func (jd JD) String() string {
	parts := make([]string, len(jd.Components))
	for i, c := range jd.Components {
		parts[i] = c.String()
	}
	return "*[" + strings.Join(parts, ", ") + "]"
}

// Validate checks that the components cover the scheme exactly.
func (jd JD) Validate(scheme relation.Scheme) error {
	if len(jd.Components) == 0 {
		return fmt.Errorf("deps: JD with no components")
	}
	cover := jd.Components[0]
	for _, c := range jd.Components[1:] {
		cover = cover.Union(c)
	}
	for _, c := range jd.Components {
		if !scheme.ContainsAll(c) {
			return fmt.Errorf("deps: JD component %v not within %v", c, scheme)
		}
	}
	if !cover.Equal(scheme) {
		return fmt.Errorf("deps: JD %v does not cover scheme %v", jd, scheme)
	}
	return nil
}

// Hypergraph returns the JD's scheme hypergraph.
func (jd JD) Hypergraph() Hypergraph {
	return Hypergraph{Edges: append([]relation.Scheme(nil), jd.Components...)}
}

// projector builds a fast projection closure from src onto onto.
func projector(src, onto relation.Scheme) (func(relation.Tuple) relation.Tuple, error) {
	pos := make([]int, onto.Len())
	for i := 0; i < onto.Len(); i++ {
		p, ok := src.Pos(onto.Attr(i))
		if !ok {
			return nil, fmt.Errorf("deps: attribute %q not in scheme %v", onto.Attr(i), src)
		}
		pos[i] = p
	}
	return func(t relation.Tuple) relation.Tuple {
		out := make(relation.Tuple, len(pos))
		for i, p := range pos {
			out[i] = t[p]
		}
		return out
	}, nil
}
