package deps

import (
	"strings"
	"testing"

	"relquery/internal/relation"
)

func mkrel(t *testing.T, scheme string, rows ...string) *relation.Relation {
	t.Helper()
	s, err := relation.SchemeOf(scheme)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	for _, row := range rows {
		if _, err := r.Add(relation.TupleOf(strings.Fields(row)...)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func sc(t *testing.T, spec string) relation.Scheme {
	t.Helper()
	s, err := relation.SchemeOf(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFDHoldsIn(t *testing.T) {
	r := mkrel(t, "A B C",
		"1 x p",
		"1 x q", // same A, same B: fine for A->B
		"2 y p",
	)
	fd := FD{From: sc(t, "A"), To: sc(t, "B")}
	ok, err := fd.HoldsIn(r)
	if err != nil || !ok {
		t.Errorf("A->B: %v %v", ok, err)
	}
	fd2 := FD{From: sc(t, "A"), To: sc(t, "C")}
	ok, err = fd2.HoldsIn(r)
	if err != nil || ok {
		t.Errorf("A->C should fail: %v %v", ok, err)
	}
	bad := FD{From: sc(t, "Z"), To: sc(t, "A")}
	if _, err := bad.HoldsIn(r); err == nil {
		t.Error("foreign attribute accepted")
	}
	if got := fd.String(); got != "A -> B" {
		t.Errorf("String = %q", got)
	}
}

func TestClosureAndImplies(t *testing.T) {
	fds := []FD{
		{From: sc(t, "A"), To: sc(t, "B")},
		{From: sc(t, "B"), To: sc(t, "C")},
		{From: sc(t, "C D"), To: sc(t, "E")},
	}
	cl := Closure(sc(t, "A"), fds)
	if !cl.Equal(sc(t, "A B C")) {
		t.Errorf("closure(A) = %v", cl)
	}
	cl = Closure(sc(t, "A D"), fds)
	if !cl.Equal(sc(t, "A B C D E")) {
		t.Errorf("closure(AD) = %v", cl)
	}
	if !Implies(fds, FD{From: sc(t, "A"), To: sc(t, "C")}) {
		t.Error("A->C not implied")
	}
	if Implies(fds, FD{From: sc(t, "B"), To: sc(t, "A")}) {
		t.Error("B->A implied")
	}
}

func TestLosslessSplit(t *testing.T) {
	scheme := sc(t, "A B C")
	fds := []FD{{From: sc(t, "B"), To: sc(t, "C")}}
	ok, err := LosslessSplit(scheme, fds, sc(t, "A B"), sc(t, "B C"))
	if err != nil || !ok {
		t.Errorf("split on B with B->C should be lossless: %v %v", ok, err)
	}
	ok, err = LosslessSplit(scheme, nil, sc(t, "A B"), sc(t, "B C"))
	if err != nil || ok {
		t.Errorf("split without FDs should not be provably lossless: %v %v", ok, err)
	}
	if _, err := LosslessSplit(scheme, nil, sc(t, "A"), sc(t, "B")); err == nil {
		t.Error("non-covering decomposition accepted")
	}
	if _, err := LosslessSplit(scheme, nil, sc(t, "A Z"), sc(t, "B C")); err == nil {
		t.Error("foreign attribute accepted")
	}
}

func TestGYOAcyclic(t *testing.T) {
	cases := []struct {
		name    string
		edges   []string
		acyclic bool
	}{
		{"chain", []string{"A B", "B C", "C D"}, true},
		{"star", []string{"A B", "A C", "A D"}, true},
		{"triangle", []string{"A B", "B C", "A C"}, false},
		{"single", []string{"A B C"}, true},
		{"contained", []string{"A B C", "A B"}, true},
		{"cycle with cover", []string{"A B", "B C", "A C", "A B C"}, true}, // the big edge covers the triangle
		{"empty", nil, true},
	}
	for _, tc := range cases {
		h := Hypergraph{}
		for _, e := range tc.edges {
			h.Edges = append(h.Edges, sc(t, e))
		}
		acyclic, tree := h.IsAcyclic()
		if acyclic != tc.acyclic {
			t.Errorf("%s: acyclic = %v, want %v", tc.name, acyclic, tc.acyclic)
		}
		if acyclic && len(tc.edges) > 0 {
			if tree == nil || len(tree.Order) != len(tc.edges) {
				t.Errorf("%s: malformed join tree %+v", tc.name, tree)
			}
		}
	}
}

func TestSemijoin(t *testing.T) {
	r := mkrel(t, "A B", "1 x", "2 y", "3 z")
	s := mkrel(t, "B C", "x p", "y q")
	out, err := Semijoin(r, s)
	if err != nil {
		t.Fatal(err)
	}
	want := mkrel(t, "A B", "1 x", "2 y")
	if !out.Equal(want) {
		t.Errorf("Semijoin = %v", out.Sorted())
	}
	// Disjoint schemes: nonempty s keeps everything.
	out, err = Semijoin(r, mkrel(t, "D", "1"))
	if err != nil || out.Len() != 3 {
		t.Errorf("disjoint semijoin = %v, %v", out, err)
	}
	// Empty s removes everything.
	out, err = Semijoin(r, relation.New(sc(t, "B")))
	if err != nil || out.Len() != 0 {
		t.Errorf("empty semijoin = %v, %v", out, err)
	}
}

func TestFullReduceAndAcyclicJoin(t *testing.T) {
	// Chain join with dangling tuples on both ends.
	r1 := mkrel(t, "A B", "1 x", "9 dead")
	r2 := mkrel(t, "B C", "x p", "dead2 q")
	r3 := mkrel(t, "C D", "p 7", "q 8")
	reduced, err := FullReduce([]*relation.Relation{r1, r2, r3})
	if err != nil {
		t.Fatal(err)
	}
	// After full reduction every tuple participates in the join.
	if reduced[0].Len() != 1 || reduced[1].Len() != 1 || reduced[2].Len() != 1 {
		t.Errorf("reduced sizes = %d %d %d, want 1 1 1",
			reduced[0].Len(), reduced[1].Len(), reduced[2].Len())
	}
	joined, err := AcyclicJoin([]*relation.Relation{r1, r2, r3})
	if err != nil {
		t.Fatal(err)
	}
	// Compare with naive join.
	naive, err := r1.Join(r2)
	if err != nil {
		t.Fatal(err)
	}
	naive, err = naive.Join(r3)
	if err != nil {
		t.Fatal(err)
	}
	if !joined.Equal(naive) {
		t.Errorf("AcyclicJoin = %v, naive = %v", joined.Sorted(), naive.Sorted())
	}
}

func TestAcyclicJoinRejectsCycles(t *testing.T) {
	r1 := mkrel(t, "A B", "1 1")
	r2 := mkrel(t, "B C", "1 1")
	r3 := mkrel(t, "A C", "1 1")
	if _, err := AcyclicJoin([]*relation.Relation{r1, r2, r3}); err == nil {
		t.Error("cyclic join accepted")
	}
	if _, err := FullReduce([]*relation.Relation{r1, r2, r3}); err == nil {
		t.Error("cyclic full reduction accepted")
	}
	if _, err := AcyclicJoin(nil); err == nil {
		t.Error("empty join accepted")
	}
}

func TestJDValidate(t *testing.T) {
	scheme := sc(t, "A B C")
	good := JD{Components: []relation.Scheme{sc(t, "A B"), sc(t, "B C")}}
	if err := good.Validate(scheme); err != nil {
		t.Errorf("valid JD rejected: %v", err)
	}
	if got := good.String(); got != "*[A B, B C]" {
		t.Errorf("String = %q", got)
	}
	if err := (JD{}).Validate(scheme); err == nil {
		t.Error("empty JD accepted")
	}
	uncovering := JD{Components: []relation.Scheme{sc(t, "A B")}}
	if err := uncovering.Validate(scheme); err == nil {
		t.Error("non-covering JD accepted")
	}
	foreign := JD{Components: []relation.Scheme{sc(t, "A B"), sc(t, "B C"), sc(t, "Z")}}
	if err := foreign.Validate(scheme); err == nil {
		t.Error("foreign-attribute JD accepted")
	}
}

func TestJDHoldsIn(t *testing.T) {
	// R = {ax p, ay q} decomposes losslessly on nothing; the classic
	// failing case: projections recombine to extra tuples.
	r := mkrel(t, "A B C",
		"1 x p",
		"2 x q",
	)
	jd := JD{Components: []relation.Scheme{sc(t, "A B"), sc(t, "B C")}}
	ok, err := jd.HoldsIn(r)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("JD should fail: recombination adds (1 x q) and (2 x p)")
	}
	// Closing R under the recombination makes the JD hold.
	closed := mkrel(t, "A B C",
		"1 x p", "1 x q", "2 x p", "2 x q",
	)
	ok, err = jd.HoldsIn(closed)
	if err != nil || !ok {
		t.Errorf("closed relation: %v %v", ok, err)
	}
}

func TestJDHoldsInCyclic(t *testing.T) {
	// Triangle JD — exercises the cyclic fallback path.
	r := mkrel(t, "A B C", "1 1 1", "2 2 2")
	jd := JD{Components: []relation.Scheme{sc(t, "A B"), sc(t, "B C"), sc(t, "A C")}}
	ok, err := jd.HoldsIn(r)
	if err != nil || !ok {
		t.Errorf("diagonal relation satisfies the triangle JD: %v %v", ok, err)
	}
	// Add a tuple pattern that recombines into a missing triangle.
	r2 := mkrel(t, "A B C", "1 1 1", "1 2 2", "2 1 2")
	// Projections contain AB={11,12,21}, BC={11,22,12}, AC={11,12,22};
	// join contains (1 1 2)? AB has 11? (A=1,B=1); BC has (B=1,C=2)? BC
	// tuples: (1,1),(2,2),(1,2) — yes (1,2); AC has (1,2) — yes. So
	// (1,1,2) is in the join but not in r2: JD fails.
	ok, err = jd.HoldsIn(r2)
	if err != nil || ok {
		t.Errorf("triangle JD should fail: %v %v", ok, err)
	}
}

func TestFullReduceEmptyInput(t *testing.T) {
	out, err := FullReduce(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("FullReduce(nil) = %v, %v", out, err)
	}
}
