package deps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relquery/internal/relation"
)

func TestPairwiseConsistent(t *testing.T) {
	r1 := mkrel(t, "A B", "1 x", "2 y")
	r2 := mkrel(t, "B C", "x p", "y q")
	ok, err := PairwiseConsistent([]*relation.Relation{r1, r2})
	if err != nil || !ok {
		t.Errorf("consistent pair: %v %v", ok, err)
	}
	// r3 mentions B value "z" that r1 lacks.
	r3 := mkrel(t, "B C", "x p", "z q")
	ok, err = PairwiseConsistent([]*relation.Relation{r1, r3})
	if err != nil || ok {
		t.Errorf("inconsistent pair: %v %v", ok, err)
	}
	// Disjoint schemes are vacuously pairwise consistent... unless one is
	// empty and the other not: π_∅ distinguishes empty from nonempty.
	r4 := mkrel(t, "D", "7")
	ok, err = PairwiseConsistent([]*relation.Relation{r1, r4})
	if err != nil || !ok {
		t.Errorf("disjoint pair: %v %v", ok, err)
	}
	empty := relation.New(relation.MustScheme("E"))
	ok, err = PairwiseConsistent([]*relation.Relation{r1, empty})
	if err != nil || ok {
		t.Errorf("nonempty vs empty should be inconsistent (no universal instance): %v %v", ok, err)
	}
}

func TestConsistentAcyclic(t *testing.T) {
	// Acyclic and pairwise consistent: globally consistent.
	r1 := mkrel(t, "A B", "1 x", "2 y")
	r2 := mkrel(t, "B C", "x p", "y q")
	ok, err := Consistent([]*relation.Relation{r1, r2})
	if err != nil || !ok {
		t.Errorf("Consistent = %v, %v", ok, err)
	}
	u, ok, err := UniversalInstance([]*relation.Relation{r1, r2})
	if err != nil || !ok {
		t.Fatalf("UniversalInstance: %v %v", ok, err)
	}
	// The witness projects back onto both relations.
	p1, err := u.Project(r1.Scheme())
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(r1) {
		t.Errorf("witness projection differs from R1")
	}
}

func TestConsistentCyclicCounterexample(t *testing.T) {
	// The classic triangle: pairwise consistent but globally inconsistent.
	// Each pair of relations agrees on shared columns, yet no single
	// relation over {A,B,C} projects onto all three.
	ab := mkrel(t, "A B", "0 0", "1 1")
	bc := mkrel(t, "B C", "0 1", "1 0")
	ca := mkrel(t, "C A", "0 0", "1 1")
	rels := []*relation.Relation{ab, bc, ca}
	pw, err := PairwiseConsistent(rels)
	if err != nil || !pw {
		t.Fatalf("triangle should be pairwise consistent: %v %v", pw, err)
	}
	ok, err := Consistent(rels)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("triangle reported globally consistent")
	}
	if _, witness, err := UniversalInstance(rels); err != nil || witness {
		t.Errorf("UniversalInstance = %v, %v", witness, err)
	}
}

func TestConsistentEmptyInput(t *testing.T) {
	ok, err := Consistent(nil)
	if err != nil || !ok {
		t.Errorf("Consistent(nil) = %v, %v", ok, err)
	}
	u, ok, err := UniversalInstance(nil)
	if err != nil || !ok || u == nil {
		t.Errorf("UniversalInstance(nil) = %v %v %v", u, ok, err)
	}
}

// TestQuickProjectionsAlwaysConsistent: projections of one relation are
// always globally consistent (the source relation is a witness... its join
// may be larger, but HLY's criterion uses the join, which still projects
// back correctly).
func TestQuickProjectionsAlwaysConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scheme := relation.MustScheme("A", "B", "C")
		r := relation.New(scheme)
		alphabet := []string{"0", "1"}
		for i, n := 0, 1+rng.Intn(8); i < n; i++ {
			tp := make(relation.Tuple, 3)
			for j := range tp {
				tp[j] = relation.Value(alphabet[rng.Intn(2)])
			}
			r.MustAdd(tp)
		}
		p1, err := r.Project(relation.MustScheme("A", "B"))
		if err != nil {
			return false
		}
		p2, err := r.Project(relation.MustScheme("B", "C"))
		if err != nil {
			return false
		}
		ok, err := Consistent([]*relation.Relation{p1, p2})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickAcyclicPairwiseImpliesGlobal checks the Beeri–Fagin–Maier–
// Yannakakis direction on random acyclic (chain-schemed) databases:
// pairwise consistency implies global consistency.
func TestQuickAcyclicPairwiseImpliesGlobal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1 := relation.New(relation.MustScheme("A", "B"))
		r2 := relation.New(relation.MustScheme("B", "C"))
		vals := []string{"0", "1", "2"}
		for i, n := 0, rng.Intn(8); i < n; i++ {
			r1.MustAdd(relation.TupleOf(vals[rng.Intn(3)], vals[rng.Intn(3)]))
		}
		for i, n := 0, rng.Intn(8); i < n; i++ {
			r2.MustAdd(relation.TupleOf(vals[rng.Intn(3)], vals[rng.Intn(3)]))
		}
		rels := []*relation.Relation{r1, r2}
		pw, err := PairwiseConsistent(rels)
		if err != nil {
			return false
		}
		global, err := Consistent(rels)
		if err != nil {
			return false
		}
		if pw && !global {
			return false // acyclic: pairwise must imply global
		}
		if global && !pw {
			return false // global always implies pairwise
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
