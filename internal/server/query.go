package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"relquery/internal/algebra"
	"relquery/internal/governor"
	"relquery/internal/join"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// StatusClientClosedRequest is the nginx-convention status for a client
// that went away mid-evaluation; the governor surfaces it as
// ErrCanceled. The write usually reaches nobody, but logs and tests see
// a distinct code.
const StatusClientClosedRequest = 499

// TenantHeader names the query's tenant on the un-scoped /v1/query
// route; the ?tenant= query parameter and the tenant-scoped route
// override it.
const TenantHeader = "X-Relquery-Tenant"

// queryRequest is one parsed query submission.
type queryRequest struct {
	src      string
	strategy string // -join equivalent: hash, sortmerge, nestedloop, parallel, wcoj, yannakakis, auto
	order    join.Order
	timeout  time.Duration
	analyze  bool // EXPLAIN ANALYZE output instead of tuples
	count    bool // cardinality only
	optimize bool
}

// parseQueryRequest decodes the body (raw expression text) and the
// tuning query parameters.
func parseQueryRequest(r *http.Request) (*queryRequest, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxQueryBytes))
	if err != nil {
		return nil, fmt.Errorf("reading query body: %w", err)
	}
	q := &queryRequest{
		src:      strings.TrimSpace(string(body)),
		strategy: "auto",
		order:    join.Greedy,
	}
	if q.src == "" {
		return nil, errors.New("empty query body (POST the expression text, e.g. pi[A C](pi[A B](T) * pi[B C](T)))")
	}
	params := r.URL.Query()
	if v := params.Get("strategy"); v != "" {
		if v != "auto" {
			if _, err := join.ByName(v); err != nil {
				return nil, fmt.Errorf("strategy: %w (valid: %s)", err, strings.Join(join.StrategyNames(), ", "))
			}
		}
		q.strategy = v
	}
	if v := params.Get("order"); v != "" {
		order, err := join.OrderByName(v)
		if err != nil {
			return nil, fmt.Errorf("order: %w", err)
		}
		q.order = order
	}
	if v := params.Get("timeout"); v != "" {
		d, err := governor.ParseTimeout(v)
		if err != nil {
			return nil, err
		}
		q.timeout = d
	}
	switch v := params.Get("explain"); v {
	case "", "none":
	case "analyze":
		q.analyze = true
	default:
		return nil, fmt.Errorf("explain: unknown mode %q (want analyze)", v)
	}
	q.count = params.Get("count") != ""
	q.optimize = params.Get("optimize") != ""
	return q, nil
}

// limitsFor tightens the tenant's limits with the request's own timeout:
// a request may shorten its deadline, never extend the tenant's.
func (q *queryRequest) limitsFor(t *tenant) governor.Limits {
	l := t.limits
	if q.timeout > 0 && (l.Deadline == 0 || q.timeout < l.Deadline) {
		l.Deadline = q.timeout
	}
	return l
}

// admissionReject is the HTTP 429 body: the predicted-peak and AGM
// numbers the budget decision was made on, so a rejected tenant can see
// exactly how far over budget the query was.
type admissionReject struct {
	Error         string  `json:"error"`
	Tenant        string  `json:"tenant"`
	PredictedPeak float64 `json:"predicted_peak_rows"`
	AGMBound      float64 `json:"agm_bound_rows"`
	Budget        int     `json:"budget_intermediate_rows"`
}

// handleQuery serves POST /v1/query, resolving the tenant from the
// ?tenant= parameter or the X-Relquery-Tenant header.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("tenant")
	if name == "" {
		name = r.Header.Get(TenantHeader)
	}
	s.serveQuery(w, r, s.tenant(name))
}

// handleTenantQuery serves POST /v1/tenants/{tenant}/query.
func (s *Server) handleTenantQuery(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, s.tenant(r.PathValue("tenant")))
}

// serveQuery runs one query for one tenant: parse (plan cache), admit
// (tenant budget vs predicted peak), queue (worker pool), evaluate
// (parallel engine + shared subexpression cache, published to the
// registry), stream the result.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, t *tenant) {
	s.metrics.requests.Add(1)
	q, err := parseQueryRequest(r)
	if err != nil {
		bodyError(w, err)
		return
	}
	db := t.snapshot()
	expr, err := s.plans.get(q.src, db, q.optimize)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limits := q.limitsFor(t)

	// Pre-flight admission on the base relations the expression touches:
	// the same max(PredictedPeakGreedy, WorstCasePeakGreedy) threshold
	// the engine's per-node gate uses, applied before any work runs. The
	// n-ary AGM bound passes output-bounded strategies (wcoj, yannakakis,
	// and auto — which routes blow-ups to them) under the bounded-peak
	// rule of governor.Admit.
	if rejected := s.admit(w, q, expr, db, t, limits); rejected {
		return
	}

	// Worker pool: bound concurrently executing evaluations. Waiters hold
	// no engine resources; a context that dies in the queue costs 503.
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable, "queued too long for a worker slot: %v", r.Context().Err())
			return
		}
	}
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	collector := &obs.Collector{}
	ev := algebra.EvalOptions{
		Parallelism:    s.cfg.Parallelism,
		Cache:          true,
		SharedCache:    s.shared,
		AutoWCOJ:       q.strategy == "auto",
		AutoYannakakis: q.strategy == "auto",
		Collector:      collector,
		Registry:       s.reg,
		Limits:         limits,
		Admit:          true,
	}.NewEvaluator()
	ev.Order = q.order
	if q.strategy != "auto" {
		alg, err := join.ByName(q.strategy)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		ev.Algorithm = alg
	}

	start := time.Now()
	out, err := ev.EvalContext(r.Context(), expr, db)
	wall := time.Since(start)
	s.metrics.evalDone(t.name)
	if err != nil {
		s.writeEvalError(w, q, t, err)
		return
	}

	w.Header().Set("X-Relquery-Rows", fmt.Sprint(out.Len()))
	w.Header().Set("X-Relquery-Wall", wall.String())
	w.Header().Set("X-Relquery-Strategy", q.strategy)
	snap := collector.Metrics.Snapshot()
	w.Header().Set("X-Relquery-Cache-Hits", fmt.Sprint(snap.CacheHits))
	switch {
	case q.analyze:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, algebra.RenderTrace(collector.Trace()))
	case q.count:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%d\n", out.Len())
	default:
		streamResult(w, expr, out)
	}
}

// admit runs the server-level admission gate and, when the query is
// over budget, writes the 429 and reports true. The gate also charges
// the rejection to the registry (violation counter + latency) so
// /metrics shows rejected load next to executed load.
func (s *Server) admit(w http.ResponseWriter, q *queryRequest, expr algebra.Expr, db relation.Database, t *tenant, limits governor.Limits) bool {
	budget := limits.MaxIntermediateRows
	if budget <= 0 {
		return false
	}
	var args []*relation.Relation
	for _, name := range dedupe(expr.Operands()) {
		if r, ok := db[name]; ok {
			args = append(args, r)
		}
	}
	predicted := max(join.PredictedPeakGreedy(args), join.WorstCasePeakGreedy(args))
	agm := join.AGMBoundOf(args)
	bounded := 0.0
	switch q.strategy {
	case "wcoj", "yannakakis", "auto":
		// Output-bounded strategies never materialize past the n-ary AGM
		// bound; auto routes predicted blow-ups to them.
		bounded = agm
	}
	collector := &obs.Collector{}
	gov := governor.New(context.Background(), limits).WithMetrics(collector.M())
	start := time.Now()
	err := gov.Admit(predicted, bounded)
	if err == nil {
		return false
	}
	s.metrics.admissionRejects.Add(1)
	s.metrics.evalDone(t.name)
	s.reg.Observe(collector.Trace(), time.Since(start))
	writeJSON(w, http.StatusTooManyRequests, admissionReject{
		Error:         err.Error(),
		Tenant:        t.name,
		PredictedPeak: predicted,
		AGMBound:      agm,
		Budget:        budget,
	})
	return true
}

// writeEvalError maps a failed evaluation to a status code: governor
// sentinels carry resource semantics (429 admission, 504 deadline, 413
// row/memory budget, 499 client cancel); everything else is the
// client's 400 — the engine rejected the query, not the server.
func (s *Server) writeEvalError(w http.ResponseWriter, q *queryRequest, t *tenant, err error) {
	switch {
	case errors.Is(err, governor.ErrAdmission):
		s.metrics.admissionRejects.Add(1)
		writeJSON(w, http.StatusTooManyRequests, admissionReject{
			Error:  err.Error(),
			Tenant: t.name,
			Budget: t.limits.MaxIntermediateRows,
		})
	case errors.Is(err, governor.ErrDeadline):
		writeError(w, http.StatusGatewayTimeout, "%v", err)
	case errors.Is(err, governor.ErrRowBudget), errors.Is(err, governor.ErrMemBudget):
		writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
	case errors.Is(err, governor.ErrCanceled):
		writeError(w, StatusClientClosedRequest, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// streamResult writes the result in the relation codec's block form —
// reloadable through the same upload path — flushing every flushEvery
// rows so large results stream instead of buffering whole.
func streamResult(w http.ResponseWriter, expr algebra.Expr, out *relation.Relation) {
	const flushEvery = 1024
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n# %d tuples over %v\n", expr, out.Len(), out.Scheme())
	fmt.Fprintln(bw, "relation result")
	fmt.Fprintln(bw, out.Scheme().String())
	for i, t := range out.Sorted() {
		for j, v := range t {
			if j > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(string(v))
		}
		bw.WriteByte('\n')
		if flusher != nil && (i+1)%flushEvery == 0 {
			_ = bw.Flush()
			flusher.Flush()
		}
	}
	fmt.Fprintln(bw, "end")
	_ = bw.Flush()
}

// dedupe returns names with duplicates removed, order preserved.
func dedupe(names []string) []string {
	seen := make(map[string]struct{}, len(names))
	out := names[:0:0]
	for _, n := range names {
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	return out
}
