package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"relquery/internal/relation"
)

// writeJSON renders v with a status code; encoding errors are ignored
// (headers are already out).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the JSON error envelope every failing route returns.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// bodyError maps an upload decode failure to a status: an oversized
// body (http.MaxBytesError) is 413, anything else is the client's 400.
func bodyError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	type tenantInfo struct {
		Name      string `json:"name"`
		Relations int    `json:"relations"`
		Budget    int    `json:"budget_intermediate_rows,omitempty"`
		Timeout   string `json:"timeout,omitempty"`
		MaxRows   int    `json:"max_rows,omitempty"`
		MaxMemory int64  `json:"max_memory_bytes,omitempty"`
	}
	out := []tenantInfo{}
	for _, t := range s.tenantList() {
		info := tenantInfo{
			Name:      t.name,
			Relations: t.size(),
			Budget:    t.limits.MaxIntermediateRows,
			MaxRows:   t.limits.MaxRows,
			MaxMemory: t.limits.MaxMemoryBytes,
		}
		if t.limits.Deadline > 0 {
			info.Timeout = t.limits.Deadline.String()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleListRelations(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(r.PathValue("tenant"))
	writeJSON(w, http.StatusOK, t.listing())
}

// handlePutRelation uploads one relation in the codec text format —
// either bare (scheme line + tuples) or a "relation <name> ... end"
// block. The URL path names the relation; a block header's own name is
// ignored in favor of the path, so the same file can be uploaded under
// several names.
func (s *Server) handlePutRelation(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(r.PathValue("tenant"))
	name := r.PathValue("name")
	_, rel, err := relation.ReadRelation(http.MaxBytesReader(w, r.Body, s.maxBody()))
	if err != nil {
		bodyError(w, err)
		return
	}
	t.put(name, rel)
	writeJSON(w, http.StatusOK, relationInfo{
		Name:        name,
		Rows:        rel.Len(),
		Scheme:      rel.Scheme().String(),
		Fingerprint: relation.Fingerprint(rel),
	})
}

func (s *Server) handleGetRelation(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(r.PathValue("tenant"))
	name := r.PathValue("name")
	rel, ok := t.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "tenant %q has no relation %q", t.name, name)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = relation.WriteRelation(w, name, rel)
}

func (s *Server) handleDropRelation(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(r.PathValue("tenant"))
	name := r.PathValue("name")
	if !t.drop(name) {
		writeError(w, http.StatusNotFound, "tenant %q has no relation %q", t.name, name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleLoadCatalog loads a whole database file ("relation ... end"
// blocks) into the tenant's catalog in one request.
func (s *Server) handleLoadCatalog(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(r.PathValue("tenant"))
	db, err := relation.ReadDatabase(http.MaxBytesReader(w, r.Body, s.maxBody()))
	if err != nil {
		bodyError(w, err)
		return
	}
	t.loadAll(db)
	writeJSON(w, http.StatusOK, t.listing())
}

// handleCacheReset drops every shared-cache entry (an operator action
// after bulk reloads; entries are fingerprint-keyed so this is about
// memory, not soundness).
func (s *Server) handleCacheReset(w http.ResponseWriter, r *http.Request) {
	dropped := 0
	if s.shared != nil {
		dropped = s.shared.Reset()
	}
	writeJSON(w, http.StatusOK, map[string]int{"dropped": dropped})
}
