package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentQueriesAndScrapes hammers the server from three sides
// at once — admitted queries, rejected queries, and telemetry scrapes
// (/metrics, /debug/traces, catalog listings) — and checks every
// response is well-formed. Run under -race this is the data-race proof
// for the shared plan cache, the shared subexpression cache, the tenant
// catalogs and the trace ring's circular buffer.
func TestConcurrentQueriesAndScrapes(t *testing.T) {
	_, ts := newTestServer(t)
	const rounds = 8

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(ts.URL+"/v1/tenants/acme/query?count=1", "text/plain", strings.NewReader(chainQuery))
				if err != nil {
					report("acme query: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "12000" {
					report("acme query: status %d body %q", resp.StatusCode, body)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			resp, err := http.Post(ts.URL+"/v1/tenants/free/query", "text/plain", strings.NewReader(chainQuery))
			if err != nil {
				report("free query: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusTooManyRequests {
				report("free query: status %d, want 429", resp.StatusCode)
				return
			}
		}
	}()

	// Upload churn: replace a relation in an unrelated tenant while
	// queries run, exercising catalog locking against snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			body := fmt.Sprintf("A B\n%d %d\n", i, i)
			req, _ := http.NewRequest("PUT", ts.URL+"/v1/tenants/churn/relations/X", strings.NewReader(body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				report("churn PUT: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	for _, path := range []string{"/metrics", "/debug/traces", "/v1/tenants", "/v1/tenants/acme/relations"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds*2; i++ {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					report("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					report("GET %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
