// Package server implements relqueryd, the multi-tenant query server:
// named per-tenant catalogs managed over HTTP with the relation codec,
// query submission with per-request strategy selection, and streamed
// text results — all running on the production layers the repo already
// owns. Every request is threaded through per-tenant governor.Limits
// with pre-flight admission control (the AGM-bound budget the paper
// motivates), a bounded worker pool over the parallel engine, a shared
// cross-request subexpression cache made sound by collision-resistant
// relation fingerprints, and a process-wide obs.Registry served by the
// embedded telemetry mux.
//
// The package closes ROADMAP item 3: Cosmadakis' hardness results are
// about arbitrary queries hitting a shared engine, and this is the
// shared engine — admission rejects the queries whose predicted peak
// (max of the System R greedy simulation and the worst-case AGM greedy
// peak) already exceeds the tenant's intermediate-row budget, before
// any join runs, with HTTP 429 carrying the numbers.
package server

import (
	"net/http"
	"sync"

	"relquery/internal/algebra"
	"relquery/internal/governor"
	"relquery/internal/obs"
	"relquery/internal/relation"
	"relquery/internal/telemetry"
)

// DefaultMaxConcurrent bounds concurrently executing evaluations when
// Config.MaxConcurrent is zero. Queued requests wait for a slot (or
// their context); the bound keeps a burst of heavy tenants from
// multiplying peak memory by the request count.
const DefaultMaxConcurrent = 8

// DefaultMaxBodyBytes caps catalog upload bodies when
// Config.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 64 << 20

// maxQueryBytes caps query text bodies: expressions are small; anything
// larger is a mistake or abuse.
const maxQueryBytes = 1 << 20

// Config assembles a Server. The zero value serves: anonymous requests
// fall to the "default" tenant with unlimited Limits, the worker pool
// defaults to DefaultMaxConcurrent, and a fresh registry is created.
type Config struct {
	// DefaultLimits governs tenants with no explicit entry in Tenants.
	// The zero Limits is unlimited.
	DefaultLimits governor.Limits
	// Tenants maps tenant names to their resource limits. Tenants not
	// listed here are created on first use with DefaultLimits.
	Tenants map[string]governor.Limits
	// Parallelism is the per-evaluation worker count handed to the
	// parallel engine (algebra.EvalOptions.Parallelism); <= 1 evaluates
	// sequentially.
	Parallelism int
	// MaxConcurrent bounds concurrently executing evaluations across all
	// tenants; 0 means DefaultMaxConcurrent, negative means unbounded.
	MaxConcurrent int
	// DisableCache turns off the shared cross-request subexpression
	// cache (on by default — it is the plan-cache half of ROADMAP item 3
	// and is sound because cache keys carry relation fingerprints).
	DisableCache bool
	// Registry receives every evaluation for /metrics and /debug/traces;
	// nil creates a fresh one.
	Registry *obs.Registry
	// TraceCap, when non-zero, bounds the registry's trace ring.
	TraceCap int
	// MaxBodyBytes caps catalog upload bodies; 0 means
	// DefaultMaxBodyBytes.
	MaxBodyBytes int
}

// Server is the relqueryd HTTP server state: tenant catalogs, the
// shared caches, the worker-pool semaphore, and the telemetry registry.
// Create one with New; mount Handler on any net/http server.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	shared *algebra.SubexprCache
	plans  *planCache
	sem    chan struct{}

	mu      sync.RWMutex
	tenants map[string]*tenant

	metrics serverMetrics
}

// New builds a Server from cfg. Tenants named in cfg.Tenants exist
// immediately (so /v1/tenants lists them before any upload); others
// appear on first use.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.TraceCap != 0 {
		reg.SetTraceCap(cfg.TraceCap)
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		plans:   newPlanCache(),
		tenants: make(map[string]*tenant),
	}
	if !cfg.DisableCache {
		s.shared = algebra.NewSubexprCache()
	}
	if n := cfg.MaxConcurrent; n >= 0 {
		if n == 0 {
			n = DefaultMaxConcurrent
		}
		s.sem = make(chan struct{}, n)
	}
	for name, limits := range cfg.Tenants {
		s.tenants[name] = newTenant(name, limits)
	}
	return s
}

// Registry exposes the server's telemetry registry (for embedding the
// server into a process that also evaluates directly).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Load installs every relation of db into the named tenant's catalog.
// It backs the CLI's startup -load flag; runtime uploads go through the
// HTTP routes.
func (s *Server) Load(tenant string, db relation.Database) {
	s.tenant(tenant).loadAll(db)
}

// tenant returns the named tenant, creating it with the default limits
// on first use. An empty name resolves to "default".
func (s *Server) tenant(name string) *tenant {
	if name == "" {
		name = "default"
	}
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t != nil {
		return t
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.tenants[name]; t != nil {
		return t
	}
	limits, ok := s.cfg.Tenants[name]
	if !ok {
		limits = s.cfg.DefaultLimits
	}
	t = newTenant(name, limits)
	s.tenants[name] = t
	return t
}

// tenantNames returns the known tenants in sorted order.
func (s *Server) tenantList() []*tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	return out
}

// maxBody resolves the catalog upload cap.
func (s *Server) maxBody() int64 {
	if s.cfg.MaxBodyBytes > 0 {
		return int64(s.cfg.MaxBodyBytes)
	}
	return DefaultMaxBodyBytes
}

// Handler returns the relqueryd mux: the /v1 catalog and query routes
// plus the embedded telemetry surface (/metrics with relqueryd's own
// series appended, /debug/traces, /debug/pprof/*).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("GET /v1/tenants/{tenant}/relations", s.handleListRelations)
	mux.HandleFunc("PUT /v1/tenants/{tenant}/relations/{name}", s.handlePutRelation)
	mux.HandleFunc("GET /v1/tenants/{tenant}/relations/{name}", s.handleGetRelation)
	mux.HandleFunc("DELETE /v1/tenants/{tenant}/relations/{name}", s.handleDropRelation)
	mux.HandleFunc("POST /v1/tenants/{tenant}/catalog", s.handleLoadCatalog)
	mux.HandleFunc("POST /v1/tenants/{tenant}/query", s.handleTenantQuery)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/cache/reset", s.handleCacheReset)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// The telemetry surface shares the port: /metrics is wrapped so the
	// server's own series ride along; the debug endpoints pass through.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("/debug/", telemetry.NewHandler(s.reg))
	mux.HandleFunc("GET /{$}", s.handleIndex)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(`<html><body><h1>relqueryd</h1><ul>
<li>PUT /v1/tenants/{tenant}/relations/{name} — upload a relation (codec text)</li>
<li>POST /v1/tenants/{tenant}/catalog — load a whole database file</li>
<li>GET /v1/tenants/{tenant}/relations — list the catalog</li>
<li>POST /v1/tenants/{tenant}/query — evaluate (body: expression text)</li>
<li><a href="/metrics">/metrics</a> — Prometheus text format</li>
<li><a href="/debug/traces">/debug/traces</a> — Chrome trace-event JSON</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>
</ul></body></html>
`))
}
