package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"relquery/internal/fault"
	"relquery/internal/telemetry"
)

// serverMetrics holds relqueryd's own counters, appended to the /metrics
// exposition after the engine registry's series. Counters are atomics;
// the per-tenant map takes a small lock on the query path only.
type serverMetrics struct {
	requests         atomic.Int64
	admissionRejects atomic.Int64
	inflight         atomic.Int64

	mu          sync.Mutex
	tenantEvals map[string]int64
}

func (m *serverMetrics) evalDone(tenant string) {
	m.mu.Lock()
	if m.tenantEvals == nil {
		m.tenantEvals = make(map[string]int64)
	}
	m.tenantEvals[tenant]++
	m.mu.Unlock()
}

func (m *serverMetrics) tenantCounts() (names []string, counts map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts = make(map[string]int64, len(m.tenantEvals))
	for name, n := range m.tenantEvals {
		names = append(names, name)
		counts[name] = n
	}
	sort.Strings(names)
	return names, counts
}

// handleMetrics serves the engine registry's Prometheus exposition with
// relqueryd's server-level series appended, so one scrape covers the
// whole process.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.WriteMetrics(w, s.reg.Snapshot(), fault.Firings())
	s.writeServerMetrics(w)
}

func (s *Server) writeServerMetrics(w io.Writer) {
	header := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	header("relqueryd_requests_total", "counter", "HTTP requests handled by the query endpoint.")
	fmt.Fprintf(w, "relqueryd_requests_total %d\n", s.metrics.requests.Load())

	header("relqueryd_admission_rejects_total", "counter", "Queries rejected pre-flight by the tenant budget (HTTP 429).")
	fmt.Fprintf(w, "relqueryd_admission_rejects_total %d\n", s.metrics.admissionRejects.Load())

	header("relqueryd_inflight_queries", "gauge", "Queries currently holding a worker-pool slot.")
	fmt.Fprintf(w, "relqueryd_inflight_queries %d\n", s.metrics.inflight.Load())

	header("relqueryd_tenant_evals_total", "counter", "Completed evaluations by tenant.")
	names, counts := s.metrics.tenantCounts()
	for _, name := range names {
		fmt.Fprintf(w, "relqueryd_tenant_evals_total{tenant=%q} %d\n", name, counts[name])
	}

	ph, pm, pe := s.plans.counters()
	header("relqueryd_plan_cache_hits_total", "counter", "Plan cache hits (parsed expression reused).")
	fmt.Fprintf(w, "relqueryd_plan_cache_hits_total %d\n", ph)
	header("relqueryd_plan_cache_misses_total", "counter", "Plan cache misses.")
	fmt.Fprintf(w, "relqueryd_plan_cache_misses_total %d\n", pm)
	header("relqueryd_plan_cache_entries", "gauge", "Resident parsed plans.")
	fmt.Fprintf(w, "relqueryd_plan_cache_entries %d\n", pe)

	if s.shared != nil {
		hits, misses, invalidations, entries := s.shared.Counters()
		header("relqueryd_shared_cache_hits_total", "counter", "Shared subexpression cache hits across requests.")
		fmt.Fprintf(w, "relqueryd_shared_cache_hits_total %d\n", hits)
		header("relqueryd_shared_cache_misses_total", "counter", "Shared subexpression cache misses.")
		fmt.Fprintf(w, "relqueryd_shared_cache_misses_total %d\n", misses)
		header("relqueryd_shared_cache_invalidations_total", "counter", "Shared cache entries dropped by /v1/cache/reset.")
		fmt.Fprintf(w, "relqueryd_shared_cache_invalidations_total %d\n", invalidations)
		header("relqueryd_shared_cache_entries", "gauge", "Resident shared cache entries.")
		fmt.Fprintf(w, "relqueryd_shared_cache_entries %d\n", entries)
	}

	header("relqueryd_catalog_relations", "gauge", "Relations resident per tenant catalog.")
	for _, t := range s.tenantList() {
		fmt.Fprintf(w, "relqueryd_catalog_relations{tenant=%q} %d\n", t.name, t.size())
	}
}
