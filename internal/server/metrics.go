package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"relquery/internal/fault"
	"relquery/internal/obs"
	"relquery/internal/telemetry"
)

// serverMetrics holds relqueryd's own counters, appended to the /metrics
// exposition after the engine registry's series. Counters are atomics;
// the per-tenant map takes a small lock on the query path only.
type serverMetrics struct {
	requests         atomic.Int64
	admissionRejects atomic.Int64
	inflight         atomic.Int64

	mu          sync.Mutex
	tenantEvals map[string]int64
}

func (m *serverMetrics) evalDone(tenant string) {
	m.mu.Lock()
	if m.tenantEvals == nil {
		m.tenantEvals = make(map[string]int64)
	}
	m.tenantEvals[tenant]++
	m.mu.Unlock()
}

func (m *serverMetrics) tenantCounts() (names []string, counts map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts = make(map[string]int64, len(m.tenantEvals))
	for name, n := range m.tenantEvals {
		names = append(names, name)
		counts[name] = n
	}
	sort.Strings(names)
	return names, counts
}

// handleMetrics serves the engine registry's Prometheus exposition with
// relqueryd's server-level series appended, so one scrape covers the
// whole process.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.WriteMetrics(w, s.reg.Snapshot(), fault.Firings())
	s.writeServerMetrics(w)
}

func (s *Server) writeServerMetrics(w io.Writer) {
	header := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	sample := func(name string, v any) {
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	header(obs.SeriesServerRequests, "counter", "HTTP requests handled by the query endpoint.")
	sample(obs.SeriesServerRequests, s.metrics.requests.Load())

	header(obs.SeriesServerAdmissionRejects, "counter", "Queries rejected pre-flight by the tenant budget (HTTP 429).")
	sample(obs.SeriesServerAdmissionRejects, s.metrics.admissionRejects.Load())

	header(obs.SeriesServerInflight, "gauge", "Queries currently holding a worker-pool slot.")
	sample(obs.SeriesServerInflight, s.metrics.inflight.Load())

	header(obs.SeriesServerTenantEvals, "counter", "Completed evaluations by tenant.")
	names, counts := s.metrics.tenantCounts()
	for _, name := range names {
		fmt.Fprintf(w, "%s{tenant=%q} %d\n", obs.SeriesServerTenantEvals, name, counts[name])
	}

	ph, pm, pe := s.plans.counters()
	header(obs.SeriesServerPlanCacheHits, "counter", "Plan cache hits (parsed expression reused).")
	sample(obs.SeriesServerPlanCacheHits, ph)
	header(obs.SeriesServerPlanCacheMisses, "counter", "Plan cache misses.")
	sample(obs.SeriesServerPlanCacheMisses, pm)
	header(obs.SeriesServerPlanCacheEntries, "gauge", "Resident parsed plans.")
	sample(obs.SeriesServerPlanCacheEntries, pe)

	if s.shared != nil {
		hits, misses, invalidations, entries := s.shared.Counters()
		header(obs.SeriesServerSharedCacheHits, "counter", "Shared subexpression cache hits across requests.")
		sample(obs.SeriesServerSharedCacheHits, hits)
		header(obs.SeriesServerSharedCacheMisses, "counter", "Shared subexpression cache misses.")
		sample(obs.SeriesServerSharedCacheMisses, misses)
		header(obs.SeriesServerSharedCacheInval, "counter", "Shared cache entries dropped by /v1/cache/reset.")
		sample(obs.SeriesServerSharedCacheInval, invalidations)
		header(obs.SeriesServerSharedCacheSize, "gauge", "Resident shared cache entries.")
		sample(obs.SeriesServerSharedCacheSize, entries)
	}

	header(obs.SeriesServerCatalogRelations, "gauge", "Relations resident per tenant catalog.")
	for _, t := range s.tenantList() {
		fmt.Fprintf(w, "%s{tenant=%q} %d\n", obs.SeriesServerCatalogRelations, t.name, t.size())
	}
}
