package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"relquery/internal/governor"
	"relquery/internal/relation"
)

// tenant is one named catalog plus its resource limits. Relations are
// immutable once loaded — uploads replace the map entry, never mutate a
// *Relation — so a query evaluates against a cheap shallow snapshot of
// the map while uploads proceed.
type tenant struct {
	name   string
	limits governor.Limits

	mu sync.RWMutex
	db relation.Database
}

func newTenant(name string, limits governor.Limits) *tenant {
	return &tenant{name: name, limits: limits, db: relation.NewDatabase()}
}

// snapshot returns a shallow copy of the catalog: the evaluation sees a
// consistent set of relation pointers regardless of concurrent uploads.
func (t *tenant) snapshot() relation.Database {
	t.mu.RLock()
	defer t.mu.RUnlock()
	db := make(relation.Database, len(t.db))
	for name, r := range t.db {
		db[name] = r
	}
	return db
}

func (t *tenant) put(name string, r *relation.Relation) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.db.Put(name, r)
}

func (t *tenant) get(name string) (*relation.Relation, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.db[name]
	return r, ok
}

func (t *tenant) drop(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.db[name]; !ok {
		return false
	}
	delete(t.db, name)
	return true
}

func (t *tenant) size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.db)
}

// loadAll installs every relation of db into the catalog.
func (t *tenant) loadAll(db relation.Database) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for name, r := range db {
		t.db.Put(name, r)
	}
}

// ParseTenantSpec parses one -tenant flag value:
//
//	name:budget=10k,timeout=2s,max-rows=1m,mem=64000000
//
// where budget caps intermediate rows (the admission threshold), timeout
// is the per-evaluation deadline, max-rows caps the final result, and
// mem caps estimated materialized bytes. Every key is optional; row
// values accept the k/m/g (×1000) suffixes of governor.ParseRows.
func ParseTenantSpec(spec string) (string, governor.Limits, error) {
	name, opts, ok := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", governor.Limits{}, fmt.Errorf("server: tenant spec %q: empty tenant name", spec)
	}
	var l governor.Limits
	if !ok || strings.TrimSpace(opts) == "" {
		return name, l, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return "", governor.Limits{}, fmt.Errorf("server: tenant spec %q: %q is not key=value", spec, kv)
		}
		var err error
		switch key {
		case "budget":
			l.MaxIntermediateRows, err = governor.ParseRows(val)
		case "timeout":
			l.Deadline, err = governor.ParseTimeout(val)
		case "max-rows":
			l.MaxRows, err = governor.ParseRows(val)
		case "mem":
			var n int
			n, err = governor.ParseRows(val)
			l.MaxMemoryBytes = int64(n)
		default:
			err = fmt.Errorf("unknown key %q (want budget, timeout, max-rows or mem)", key)
		}
		if err != nil {
			return "", governor.Limits{}, fmt.Errorf("server: tenant spec %q: %w", spec, err)
		}
	}
	return name, l, nil
}

// relationInfo is one catalog listing entry.
type relationInfo struct {
	Name        string `json:"name"`
	Rows        int    `json:"rows"`
	Scheme      string `json:"scheme"`
	Fingerprint string `json:"fingerprint"`
}

// listing renders the catalog in name order.
func (t *tenant) listing() []relationInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]relationInfo, 0, len(t.db))
	for name, r := range t.db {
		out = append(out, relationInfo{
			Name:        name,
			Rows:        r.Len(),
			Scheme:      r.Scheme().String(),
			Fingerprint: relation.Fingerprint(r),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
