package server

import (
	"strings"
	"sync"

	"relquery/internal/algebra"
	"relquery/internal/relation"
)

// planCacheMax bounds resident plans; past it the cache is dropped
// wholesale. Parsed plans are tiny, the bound only guards against an
// adversarial stream of distinct query texts.
const planCacheMax = 4096

// planCache memoizes parsed (and optionally optimized) expressions
// across requests and tenants. Parsing depends only on the query text
// and the schemes of the relations it references, so the key is the
// text plus the catalog's scheme signature — content changes don't
// invalidate a plan, schema changes do. Expressions are immutable after
// parse, so one *Expr is safely shared by concurrent evaluations; result
// soundness is the shared subexpression cache's job (fingerprint keys),
// not the plan cache's.
type planCache struct {
	mu      sync.Mutex
	entries map[string]algebra.Expr
	hits    int64
	misses  int64
}

func newPlanCache() *planCache {
	return &planCache{entries: make(map[string]algebra.Expr)}
}

// schemeSignature renders the catalog's relation names and schemes in
// name order — the part of the database a parse depends on.
func schemeSignature(db relation.Database) string {
	var b strings.Builder
	for _, name := range db.Names() {
		b.WriteString(name)
		b.WriteByte('(')
		b.WriteString(db[name].Scheme().String())
		b.WriteString(");")
	}
	return b.String()
}

// get returns the cached plan for (src, db's schemes, optimize) or
// parses, stores and returns it.
func (c *planCache) get(src string, db relation.Database, optimize bool) (algebra.Expr, error) {
	key := schemeSignature(db) + "\x00" + src
	if optimize {
		key = "O\x00" + key
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return e, nil
	}
	c.misses++
	c.mu.Unlock()
	e, err := algebra.ParseForDatabase(src, db)
	if err != nil {
		return nil, err
	}
	if optimize {
		if e, err = algebra.Optimize(e); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	if len(c.entries) >= planCacheMax {
		c.entries = make(map[string]algebra.Expr)
	}
	c.entries[key] = e
	c.mu.Unlock()
	return e, nil
}

// counters reports lifetime hits, misses and resident plans.
func (c *planCache) counters() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
