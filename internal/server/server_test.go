package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relquery/internal/governor"
	"relquery/internal/relation"
	"relquery/internal/telemetry"
)

// chainDB builds the three-relation chain R1(A,B) ∗ R2(B,C) ∗ R3(C,D)
// used throughout the engine's governor tests: predicted greedy peak
// 12k rows, worst-case greedy peak 160k, AGM bound 240k, 12k output
// tuples — big enough that tenant budgets on either side of those
// numbers separate cleanly.
func chainDB() relation.Database {
	r1 := relation.New(relation.MustScheme("A", "B"))
	r2 := relation.New(relation.MustScheme("B", "C"))
	r3 := relation.New(relation.MustScheme("C", "D"))
	for i := 0; i < 600; i++ {
		r1.MustAdd(relation.TupleOf(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%20)))
	}
	for j := 0; j < 400; j++ {
		r2.MustAdd(relation.TupleOf(fmt.Sprintf("b%d", j%20), fmt.Sprintf("c%d", j)))
		r3.MustAdd(relation.TupleOf(fmt.Sprintf("c%d", j), fmt.Sprintf("d%d", j)))
	}
	db := relation.NewDatabase()
	db.Put("R1", r1)
	db.Put("R2", r2)
	db.Put("R3", r3)
	return db
}

const chainQuery = "R1 * R2 * R3"

// newTestServer starts a relqueryd with two tenants on opposite sides
// of the chain workload's predicted peak — acme's budget admits it,
// free's rejects it — plus a "slow" tenant whose deadline is
// unmeetable. Every tenant gets the same catalog.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{
		Tenants: map[string]governor.Limits{
			"acme": {MaxIntermediateRows: 1_000_000},
			"free": {MaxIntermediateRows: 2_000},
			"slow": {Deadline: time.Nanosecond},
		},
	})
	db := chainDB()
	for _, tenant := range []string{"acme", "free", "slow"} {
		s.Load(tenant, db)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t *testing.T, ts *httptest.Server, tenant, query, params string) *http.Response {
	t.Helper()
	url := ts.URL + "/v1/tenants/" + tenant + "/query"
	if params != "" {
		url += "?" + params
	}
	resp, err := http.Post(url, "text/plain", strings.NewReader(query))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response body: %v", err)
	}
	return string(b)
}

// TestTwoTenantAdmission is the headline multi-tenancy property: the
// same query against the same data is admitted for the tenant whose
// intermediate-row budget covers its predicted peak and rejected
// pre-flight with 429 — carrying the numbers — for the tenant whose
// budget does not.
func TestTwoTenantAdmission(t *testing.T) {
	_, ts := newTestServer(t)

	resp := postQuery(t, ts, "acme", chainQuery, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acme (budget 1m): status %d, want 200; body: %s", resp.StatusCode, readBody(t, resp))
	}
	if rows := resp.Header.Get("X-Relquery-Rows"); rows != "12000" {
		t.Errorf("acme X-Relquery-Rows = %q, want 12000", rows)
	}

	resp = postQuery(t, ts, "free", chainQuery, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("free (budget 2k): status %d, want 429; body: %s", resp.StatusCode, readBody(t, resp))
	}
	var reject admissionReject
	if err := json.NewDecoder(resp.Body).Decode(&reject); err != nil {
		t.Fatalf("decoding 429 body: %v", err)
	}
	if reject.Tenant != "free" {
		t.Errorf("429 tenant = %q, want free", reject.Tenant)
	}
	if reject.Budget != 2_000 {
		t.Errorf("429 budget = %d, want 2000", reject.Budget)
	}
	if reject.PredictedPeak <= float64(reject.Budget) {
		t.Errorf("429 predicted_peak_rows = %v, want > budget %d", reject.PredictedPeak, reject.Budget)
	}
	if reject.AGMBound <= 0 {
		t.Errorf("429 agm_bound_rows = %v, want > 0", reject.AGMBound)
	}
	if !strings.Contains(reject.Error, "predicted peak") {
		t.Errorf("429 error %q does not mention the predicted peak", reject.Error)
	}
}

// TestRepeatedQueryHitsSharedCache submits the same query twice and
// checks the shared cross-request subexpression cache served the second
// evaluation, both in the response header and in /metrics.
func TestRepeatedQueryHitsSharedCache(t *testing.T) {
	_, ts := newTestServer(t)

	first := postQuery(t, ts, "acme", chainQuery, "")
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first query: status %d: %s", first.StatusCode, readBody(t, first))
	}
	firstBody := readBody(t, first)
	second := postQuery(t, ts, "acme", chainQuery, "")
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second query: status %d: %s", second.StatusCode, readBody(t, second))
	}
	if got := readBody(t, second); got != firstBody {
		t.Errorf("second response differs from first (%d vs %d bytes)", len(got), len(firstBody))
	}
	if hits := second.Header.Get("X-Relquery-Cache-Hits"); hits == "0" || hits == "" {
		t.Errorf("second query X-Relquery-Cache-Hits = %q, want > 0", hits)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	metrics, err := telemetry.ParseMetrics(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	if metrics["relquery_cache_hits_total"] <= 0 {
		t.Errorf("relquery_cache_hits_total = %v, want > 0 after a repeated query", metrics["relquery_cache_hits_total"])
	}
	if metrics["relqueryd_shared_cache_hits_total"] <= 0 {
		t.Errorf("relqueryd_shared_cache_hits_total = %v, want > 0", metrics["relqueryd_shared_cache_hits_total"])
	}
	if metrics["relqueryd_plan_cache_hits_total"] <= 0 {
		t.Errorf("relqueryd_plan_cache_hits_total = %v, want > 0 (same text parsed once)", metrics["relqueryd_plan_cache_hits_total"])
	}
	if metrics["relquery_evals_total"] < 2 {
		t.Errorf("relquery_evals_total = %v, want >= 2", metrics["relquery_evals_total"])
	}
	if metrics[`relqueryd_tenant_evals_total{tenant="acme"}`] < 2 {
		t.Errorf("tenant eval counter = %v, want >= 2", metrics[`relqueryd_tenant_evals_total{tenant="acme"}`])
	}
}

// TestDeadlineMapsToGatewayTimeout checks the governor's ErrDeadline
// surfaces as HTTP 504.
func TestDeadlineMapsToGatewayTimeout(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postQuery(t, ts, "slow", chainQuery, "")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow (1ns deadline): status %d, want 504; body: %s", resp.StatusCode, readBody(t, resp))
	}
	if body := readBody(t, resp); !strings.Contains(body, "deadline") {
		t.Errorf("504 body %q does not mention the deadline", body)
	}
}

// TestRequestTimeoutTightensOnly checks a request ?timeout= may shorten
// the tenant deadline but never extend it.
func TestRequestTimeoutTightensOnly(t *testing.T) {
	_, ts := newTestServer(t)
	// acme has no deadline: a tiny request timeout applies and kills the query.
	resp := postQuery(t, ts, "acme", chainQuery, "timeout=1ns")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("acme with ?timeout=1ns: status %d, want 504", resp.StatusCode)
	}
	// slow has a 1ns deadline: a generous request timeout must not extend it.
	resp = postQuery(t, ts, "slow", chainQuery, "timeout=10s")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow with ?timeout=10s: status %d, want 504 (request timeout must not extend tenant deadline)", resp.StatusCode)
	}
}

// TestQueryVariants exercises count, explain=analyze and strategy
// selection on an admitted tenant.
func TestQueryVariants(t *testing.T) {
	_, ts := newTestServer(t)

	resp := postQuery(t, ts, "acme", chainQuery, "count=1")
	if body := strings.TrimSpace(readBody(t, resp)); body != "12000" {
		t.Errorf("count body = %q, want 12000", body)
	}

	resp = postQuery(t, ts, "acme", chainQuery, "explain=analyze")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain=analyze: status %d", resp.StatusCode)
	}
	if body := readBody(t, resp); !strings.Contains(body, "join") {
		t.Errorf("EXPLAIN ANALYZE output does not mention a join:\n%s", body)
	}

	for _, strategy := range []string{"hash", "sortmerge", "yannakakis", "wcoj"} {
		resp := postQuery(t, ts, "acme", chainQuery, "strategy="+strategy+"&count=1")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("strategy=%s: status %d: %s", strategy, resp.StatusCode, readBody(t, resp))
		}
		if body := strings.TrimSpace(readBody(t, resp)); body != "12000" {
			t.Errorf("strategy=%s count = %q, want 12000", strategy, body)
		}
	}

	resp = postQuery(t, ts, "acme", chainQuery, "strategy=nosuch")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("strategy=nosuch: status %d, want 400", resp.StatusCode)
	}
}

// TestQueryErrors checks parse failures and empty bodies map to 400.
func TestQueryErrors(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postQuery(t, ts, "acme", "R1 * Nope", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown relation: status %d, want 400", resp.StatusCode)
	}
	resp = postQuery(t, ts, "acme", "", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body: status %d, want 400", resp.StatusCode)
	}
	resp = postQuery(t, ts, "acme", "pi[", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("syntax error: status %d, want 400", resp.StatusCode)
	}
}

// TestUnscopedQueryRoute checks /v1/query resolves the tenant from the
// header or the ?tenant= parameter, defaulting to "default".
func TestUnscopedQueryRoute(t *testing.T) {
	_, ts := newTestServer(t)

	req, _ := http.NewRequest("POST", ts.URL+"/v1/query", strings.NewReader(chainQuery))
	req.Header.Set(TenantHeader, "free")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("header tenant=free: status %d, want 429", resp.StatusCode)
	}

	resp2, err := http.Post(ts.URL+"/v1/query?tenant=acme", "text/plain", strings.NewReader(chainQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("?tenant=acme: status %d, want 200", resp2.StatusCode)
	}
}

// TestCatalogCRUD drives the relation lifecycle over HTTP: upload, list,
// download (round-trips through the codec), drop, 404.
func TestCatalogCRUD(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/tenants/crud/relations"

	put := func(name, body string) *http.Response {
		req, _ := http.NewRequest("PUT", base+"/"+name, strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := put("T", "A B\n1 2\n3 4\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT bare relation: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var info relationInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Rows != 2 || info.Scheme != "A B" || info.Fingerprint == "" {
		t.Errorf("PUT response = %+v, want 2 rows over A B with a fingerprint", info)
	}

	resp = put("T2", "relation ignored\nA B\n5 6\nend\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT block relation: status %d: %s", resp.StatusCode, readBody(t, resp))
	}

	listResp, err := http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var listing []relationInfo
	if err := json.NewDecoder(listResp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing) != 2 || listing[0].Name != "T" || listing[1].Name != "T2" {
		t.Errorf("listing = %+v, want [T T2]", listing)
	}

	getResp, err := http.Get(base + "/T")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	_, rel, err := relation.ReadRelation(getResp.Body)
	if err != nil {
		t.Fatalf("downloaded relation does not round-trip: %v", err)
	}
	if rel.Len() != 2 {
		t.Errorf("downloaded relation has %d rows, want 2", rel.Len())
	}

	req, _ := http.NewRequest("DELETE", base+"/T", nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE: status %d, want 204", delResp.StatusCode)
	}
	missing, err := http.Get(base + "/T")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("GET after DELETE: status %d, want 404", missing.StatusCode)
	}

	resp = put("bad", "A B\n1\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT arity-mismatched relation: status %d, want 400", resp.StatusCode)
	}
}

// TestCatalogBulkLoadAndQuery loads a whole database file through
// /catalog and queries it.
func TestCatalogBulkLoadAndQuery(t *testing.T) {
	_, ts := newTestServer(t)
	catalog := "relation S1\nA B\nx 1\ny 2\nend\nrelation S2\nB C\n1 p\n2 q\nend\n"
	resp, err := http.Post(ts.URL+"/v1/tenants/bulk/catalog", "text/plain", strings.NewReader(catalog))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /catalog: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	q := postQuery(t, ts, "bulk", "S1 * S2", "count=1")
	if body := strings.TrimSpace(readBody(t, q)); body != "2" {
		t.Errorf("S1 * S2 count = %q, want 2", body)
	}
}

// TestTenantIsolation checks one tenant's uploads are invisible to
// another, while the shared cache still keys identical content safely:
// two tenants with byte-identical relations may share results, two
// tenants with different content under the same names must not.
func TestTenantIsolation(t *testing.T) {
	_, ts := newTestServer(t)
	putRel := func(tenant, name, body string) {
		t.Helper()
		req, _ := http.NewRequest("PUT", ts.URL+"/v1/tenants/"+tenant+"/relations/"+name, strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT %s/%s: status %d", tenant, name, resp.StatusCode)
		}
	}
	// Same names, different content.
	putRel("t1", "X", "A B\n1 1\n3 3\n")
	putRel("t2", "X", "A B\n2 2\n")
	r1 := postQuery(t, ts, "t1", "X", "count=1")
	r2 := postQuery(t, ts, "t2", "X", "count=1")
	if b1, b2 := strings.TrimSpace(readBody(t, r1)), strings.TrimSpace(readBody(t, r2)); b1 != "2" || b2 != "1" {
		t.Errorf("tenant catalogs leaked: t1 count=%s (want 2), t2 count=%s (want 1)", b1, b2)
	}
	// A tenant that never uploaded sees nothing.
	miss := postQuery(t, ts, "t3", "X", "")
	if miss.StatusCode != http.StatusBadRequest {
		t.Errorf("t3 querying t1's relation: status %d, want 400 (unknown relation)", miss.StatusCode)
	}
}

// TestCacheReset checks /v1/cache/reset drops shared-cache entries and
// reports the count.
func TestCacheReset(t *testing.T) {
	_, ts := newTestServer(t)
	postQuery(t, ts, "acme", chainQuery, "count=1")
	resp, err := http.Post(ts.URL+"/v1/cache/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["dropped"] <= 0 {
		t.Errorf("cache reset dropped %d entries, want > 0 after a cached evaluation", out["dropped"])
	}
}

// TestTenantsEndpoint checks /v1/tenants reports configured limits.
func TestTenantsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readBody(t, resp)
	for _, want := range []string{`"acme"`, `"free"`, `"budget_intermediate_rows": 2000`} {
		if !strings.Contains(body, want) {
			t.Errorf("/v1/tenants body missing %s:\n%s", want, body)
		}
	}
}

// TestParseTenantSpec covers the -tenant flag grammar.
func TestParseTenantSpec(t *testing.T) {
	name, limits, err := ParseTenantSpec("acme:budget=10k,timeout=2s,max-rows=1m,mem=64000000")
	if err != nil {
		t.Fatal(err)
	}
	if name != "acme" || limits.MaxIntermediateRows != 10_000 || limits.Deadline != 2*time.Second ||
		limits.MaxRows != 1_000_000 || limits.MaxMemoryBytes != 64_000_000 {
		t.Errorf("parsed %q / %+v", name, limits)
	}
	if name, limits, err := ParseTenantSpec("bare"); err != nil || name != "bare" || limits.Enabled() {
		t.Errorf("bare spec: %q %+v %v", name, limits, err)
	}
	for _, bad := range []string{"", ":budget=1", "x:budget", "x:nope=1", "x:budget=abc"} {
		if _, _, err := ParseTenantSpec(bad); err == nil {
			t.Errorf("ParseTenantSpec(%q) accepted", bad)
		}
	}
}

// TestStreamedResultRoundTrips checks the default result body is valid
// codec text that reloads through the upload path.
func TestStreamedResultRoundTrips(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postQuery(t, ts, "acme", chainQuery, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	name, rel, err := relation.ReadRelation(strings.NewReader(readBody(t, resp)))
	if err != nil {
		t.Fatalf("result body does not parse as a relation: %v", err)
	}
	if name != "result" || rel.Len() != 12000 {
		t.Errorf("parsed %q with %d rows, want result with 12000", name, rel.Len())
	}
}
