package relation

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// The text format read and written here is line-oriented:
//
//	# comment lines and blank lines are ignored between relations
//	relation T
//	F1 F2 X1 S        <- scheme line: whitespace-separated attributes
//	1  e  0  a        <- one tuple per line, whitespace-separated values
//	e  1  1  a
//	end
//
// A file may contain any number of "relation <name> ... end" blocks; a
// bare relation (scheme line followed by tuples, no header/footer) is also
// accepted by ReadRelation for quick one-relation files. Values and
// attribute names are arbitrary non-whitespace tokens.

// Fingerprint returns a deterministic content hash of the relation: two
// relations fingerprint equal exactly when they hold the same set of
// tuples over the same scheme (column order included). It is the cache
// key ingredient used by the algebra evaluator's subexpression cache —
// an expression evaluated against relations with unchanged fingerprints
// must produce the same result.
//
// The hash is order-independent: each tuple's length-prefixed key is
// hashed separately and the 64-bit digests are combined commutatively,
// so Fingerprint costs one pass over the tuples with no sorting.
//
// The commutative fold is cancellation-resistant: each digest d
// contributes both to a wrapping sum and to an XOR of d rotated by its
// own low bits. A bare XOR fold (the original scheme) let any two tuple
// sets whose digests XOR to the same value — engineerable by Gaussian
// elimination over GF(2), see TestFingerprintXORCancellationRegression —
// collide at equal cardinality, a stale-hit soundness hole for the
// subexpression cache keyed on this value. Defeating the combined fold
// requires simultaneously solving a linear system over Z/2^64 and a
// digest-dependent rotated system over GF(2)^64, which no longer
// factors into independent per-bit equations.
func Fingerprint(r *Relation) string {
	h := fnv.New64a()
	h.Write([]byte(r.scheme.String()))
	schemeSum := h.Sum64()
	var tupleSum, tupleRot uint64
	for _, t := range r.tuples {
		th := fnv.New64a()
		th.Write([]byte(t.Key()))
		d := th.Sum64()
		tupleSum += d
		tupleRot ^= bits.RotateLeft64(d, int(d&63))
	}
	return strconv.FormatUint(schemeSum, 16) + "-" +
		strconv.FormatUint(tupleSum, 16) + "-" +
		strconv.FormatUint(tupleRot, 16) + "-" +
		strconv.Itoa(len(r.tuples))
}

// FingerprintDatabase fingerprints the named relations of db, rendering
// "name=fp" pairs in sorted name order joined by ";". Unknown names
// render as "name=!missing" so the caller's key is still deterministic.
func FingerprintDatabase(db Database, names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	var b strings.Builder
	for i, name := range sorted {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(name)
		b.WriteByte('=')
		if r, ok := db[name]; ok {
			b.WriteString(Fingerprint(r))
		} else {
			b.WriteString("!missing")
		}
	}
	return b.String()
}

// WriteRelation writes r as a single "relation <name> ... end" block.
func WriteRelation(w io.Writer, name string, r *Relation) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "relation %s\n", name)
	fmt.Fprintln(bw, r.Scheme().String())
	for _, t := range r.Sorted() {
		for i, v := range t {
			if i > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(string(v))
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// WriteDatabase writes every relation of db in name order.
func WriteDatabase(w io.Writer, db Database) error {
	for _, name := range db.Names() {
		if err := WriteRelation(w, name, db[name]); err != nil {
			return err
		}
	}
	return nil
}

// ReadDatabase parses all relation blocks from r.
func ReadDatabase(r io.Reader) (Database, error) {
	db := NewDatabase()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineno := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineno++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}
	for {
		line, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if fields[0] != "relation" || len(fields) != 2 {
			return nil, fmt.Errorf("relation: line %d: expected \"relation <name>\", got %q", lineno, line)
		}
		name := fields[1]
		if _, dup := db[name]; dup {
			return nil, fmt.Errorf("relation: line %d: duplicate relation %q", lineno, name)
		}
		schemeLine, ok := next()
		if !ok {
			return nil, fmt.Errorf("relation: line %d: relation %q missing scheme line", lineno, name)
		}
		scheme, err := SchemeOf(schemeLine)
		if err != nil {
			return nil, fmt.Errorf("relation: line %d: %w", lineno, err)
		}
		rel := New(scheme)
		for {
			row, ok := next()
			if !ok {
				return nil, fmt.Errorf("relation: relation %q not terminated by \"end\"", name)
			}
			if row == "end" {
				break
			}
			vals := strings.Fields(row)
			if len(vals) != scheme.Len() {
				return nil, fmt.Errorf("relation: line %d: tuple has %d values, scheme %v has %d attributes", lineno, len(vals), scheme, scheme.Len())
			}
			if _, err := rel.Add(TupleOf(vals...)); err != nil {
				return nil, fmt.Errorf("relation: line %d: %w", lineno, err)
			}
		}
		db.Put(name, rel)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

// ReadRelation parses a single relation. It accepts either a full
// "relation <name> ... end" block (returning that name) or a bare relation:
// a scheme line followed by tuple lines until EOF (returned name is "").
//
// The two forms are disambiguated structurally, not by prefix alone: a
// block header is exactly the two fields "relation <name>", so a bare
// relation whose first attribute happens to be named "relation" with two
// or more further attributes is unambiguous. The genuinely ambiguous
// two-field case ("relation B" is both a valid block header and a valid
// two-attribute scheme) is resolved by trying the block grammar first —
// it is the stricter one, requiring a scheme line and an "end" footer —
// and falling back to the bare form when the block parse fails.
func ReadRelation(r io.Reader) (name string, rel *Relation, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return "", nil, err
	}
	text := string(data)
	// Decide on the first meaningful (non-blank, non-comment) line.
	first := ""
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line != "" && !strings.HasPrefix(line, "#") {
			first = line
			break
		}
	}
	if fields := strings.Fields(first); len(fields) == 2 && fields[0] == "relation" {
		db, blockErr := ReadDatabase(strings.NewReader(text))
		if blockErr == nil {
			names := db.Names()
			if len(names) != 1 {
				return "", nil, fmt.Errorf("relation: expected exactly one relation, found %d", len(names))
			}
			return names[0], db[names[0]], nil
		}
		// Not a well-formed block: re-read as a bare relation whose scheme
		// is the two-field first line. If that fails too, the block error
		// is the more informative one — the input led with "relation".
		if name, rel, bareErr := readBare(text); bareErr == nil {
			return name, rel, nil
		}
		return "", nil, blockErr
	}
	return readBare(text)
}

// readBare parses the bare form: a scheme line followed by tuple lines
// until EOF. The returned name is always "".
func readBare(text string) (name string, rel *Relation, err error) {
	lines := strings.Split(text, "\n")
	var scheme Scheme
	haveScheme := false
	var out *Relation
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !haveScheme {
			scheme, err = SchemeOf(line)
			if err != nil {
				return "", nil, fmt.Errorf("relation: line %d: %w", i+1, err)
			}
			out = New(scheme)
			haveScheme = true
			continue
		}
		vals := strings.Fields(line)
		if len(vals) != scheme.Len() {
			return "", nil, fmt.Errorf("relation: line %d: tuple has %d values, scheme has %d attributes", i+1, len(vals), scheme.Len())
		}
		if _, err := out.Add(TupleOf(vals...)); err != nil {
			return "", nil, fmt.Errorf("relation: line %d: %w", i+1, err)
		}
	}
	if !haveScheme {
		return "", nil, fmt.Errorf("relation: empty input")
	}
	return "", out, nil
}
