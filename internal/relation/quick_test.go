package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomRelation draws a relation over the given scheme with up to maxRows
// tuples over a small per-column alphabet, so that joins hit both matches
// and misses.
func randomRelation(rng *rand.Rand, scheme Scheme, maxRows int) *Relation {
	r := New(scheme)
	rows := rng.Intn(maxRows + 1)
	alphabet := []string{"0", "1", "e", "x"}
	for i := 0; i < rows; i++ {
		t := make(Tuple, scheme.Len())
		for j := range t {
			t[j] = Value(alphabet[rng.Intn(len(alphabet))])
		}
		r.MustAdd(t)
	}
	return r
}

var quickCfg = &quick.Config{MaxCount: 200}

func TestQuickJoinCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, MustScheme("A", "B"), 8)
		o := randomRelation(rng, MustScheme("B", "C"), 8)
		ro, err1 := r.Join(o)
		or, err2 := o.Join(r)
		if err1 != nil || err2 != nil {
			return false
		}
		return ro.Equal(or)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, MustScheme("A", "B"), 6)
		o := randomRelation(rng, MustScheme("B", "C"), 6)
		p := randomRelation(rng, MustScheme("C", "D"), 6)
		ro, err := r.Join(o)
		if err != nil {
			return false
		}
		left, err := ro.Join(p)
		if err != nil {
			return false
		}
		op, err := o.Join(p)
		if err != nil {
			return false
		}
		right, err := r.Join(op)
		if err != nil {
			return false
		}
		return left.Equal(right)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, MustScheme("A", "B", "C"), 10)
		rr, err := r.Join(r)
		if err != nil {
			return false
		}
		return rr.Equal(r)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickProjectionComposes(t *testing.T) {
	// π_X(π_Y(r)) = π_X(r) when X ⊆ Y ⊆ scheme(r).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, MustScheme("A", "B", "C", "D"), 12)
		y := MustScheme("A", "B", "C")
		x := MustScheme("A", "C")
		py, err := r.Project(y)
		if err != nil {
			return false
		}
		pxy, err := py.Project(x)
		if err != nil {
			return false
		}
		px, err := r.Project(x)
		if err != nil {
			return false
		}
		return pxy.Equal(px)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickProjectionDistributesOverUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := MustScheme("A", "B", "C")
		x := MustScheme("A", "B")
		r := randomRelation(rng, s, 10)
		o := randomRelation(rng, s, 10)
		u, err := r.Union(o)
		if err != nil {
			return false
		}
		pu, err := u.Project(x)
		if err != nil {
			return false
		}
		pr, err := r.Project(x)
		if err != nil {
			return false
		}
		po, err := o.Project(x)
		if err != nil {
			return false
		}
		want, err := pr.Union(po)
		if err != nil {
			return false
		}
		return pu.Equal(want)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinProjectionsShrink(t *testing.T) {
	// π_{scheme(r)}(r ∗ o) ⊆ r: every join tuple projects into its operands.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, MustScheme("A", "B"), 10)
		o := randomRelation(rng, MustScheme("B", "C"), 10)
		j, err := r.Join(o)
		if err != nil {
			return false
		}
		pj, err := j.Project(r.Scheme())
		if err != nil {
			return false
		}
		sub, err := pj.SubsetOf(r)
		return err == nil && sub
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSetLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := MustScheme("A", "B")
		r := randomRelation(rng, s, 10)
		o := randomRelation(rng, s, 10)
		u, err := r.Union(o)
		if err != nil {
			return false
		}
		i, err := r.Intersect(o)
		if err != nil {
			return false
		}
		d, err := r.Difference(o)
		if err != nil {
			return false
		}
		// |r ∪ o| = |r| + |o| - |r ∩ o|, and r = (r \ o) ∪ (r ∩ o).
		if u.Len() != r.Len()+o.Len()-i.Len() {
			return false
		}
		back, err := d.Union(i)
		if err != nil {
			return false
		}
		return back.Equal(r)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinSubsetOfProduct(t *testing.T) {
	// |r ∗ o| ≤ |r|·|o| always; equality when schemes are disjoint.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, MustScheme("A"), 6)
		o := randomRelation(rng, MustScheme("B"), 6)
		j, err := r.Join(o)
		if err != nil {
			return false
		}
		return j.Len() == r.Len()*o.Len()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
