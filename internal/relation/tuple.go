package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Tuple is a row of attribute values. A Tuple is positional: its meaning is
// given by the Scheme it is paired with (vals[i] is the value of scheme
// attribute i). Pairing a tuple with a scheme of a different length is an
// arity error that the Relation methods report.
type Tuple []Value

// TupleOf builds a tuple from plain strings, in scheme order.
func TupleOf(vals ...string) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = Value(v)
	}
	return t
}

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports positional equality of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Less orders tuples lexicographically by value; shorter tuples order
// before longer ones when they share a prefix. It gives relations a
// deterministic rendering order.
func (t Tuple) Less(u Tuple) bool {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if t[i] != u[i] {
			return t[i] < u[i]
		}
	}
	return len(t) < len(u)
}

// Key encodes the tuple as a string usable as a map key. The encoding is
// length-prefixed so that values containing arbitrary bytes cannot collide.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(string(v))
	}
	return b.String()
}

// String renders the tuple as a parenthesized value list, e.g. "(1, e, a)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(v))
	}
	b.WriteByte(')')
	return b.String()
}

// NamedTuple is a tuple together with the scheme that names its columns.
// It is the explicit form of the paper's "X-tuple": a mapping from the
// attributes of X to values.
type NamedTuple struct {
	Scheme Scheme
	Vals   Tuple
}

// NewNamedTuple pairs a scheme with values, checking arity.
func NewNamedTuple(s Scheme, vals Tuple) (NamedTuple, error) {
	if len(vals) != s.Len() {
		return NamedTuple{}, fmt.Errorf("relation: tuple arity %d does not match scheme %v (arity %d)", len(vals), s, s.Len())
	}
	return NamedTuple{Scheme: s, Vals: vals}, nil
}

// Get returns the value of attribute a, and whether a is in the scheme.
func (nt NamedTuple) Get(a Attribute) (Value, bool) {
	i, ok := nt.Scheme.Pos(a)
	if !ok {
		return "", false
	}
	return nt.Vals[i], true
}

// Project restricts the named tuple to the attributes of onto (the paper's
// t[Y] for Y ⊆ X).
func (nt NamedTuple) Project(onto Scheme) (NamedTuple, error) {
	p, err := projectionOnto(nt.Scheme, onto)
	if err != nil {
		return NamedTuple{}, err
	}
	return NamedTuple{Scheme: onto, Vals: p.apply(nt.Vals)}, nil
}

// JoinsWith reports whether nt and other agree on every attribute their
// schemes share — the compatibility condition of the natural join.
func (nt NamedTuple) JoinsWith(other NamedTuple) bool {
	small, large := nt, other
	if large.Scheme.Len() < small.Scheme.Len() {
		small, large = large, small
	}
	for i := 0; i < small.Scheme.Len(); i++ {
		a := small.Scheme.Attr(i)
		if j, ok := large.Scheme.Pos(a); ok && large.Vals[j] != small.Vals[i] {
			return false
		}
	}
	return true
}

// String renders the named tuple as "<A=1 B=e>".
func (nt NamedTuple) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i := 0; i < nt.Scheme.Len(); i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", nt.Scheme.Attr(i), nt.Vals[i])
	}
	b.WriteByte('>')
	return b.String()
}
