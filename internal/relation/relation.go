package relation

import (
	"fmt"
	"sort"
	"sync"
)

// Relation is a finite set of tuples over a fixed scheme. Tuples are kept
// in insertion order for stable iteration, with a hash index enforcing set
// semantics (adding a duplicate is a no-op).
//
// Relations built by FromDistinctTuples defer index construction until
// the first operation that needs it (Contains, Add, ...) — the parallel
// join produces provably duplicate-free output, and its intermediates
// are often only ever scanned, never probed. The lazy build is guarded
// by a sync.Once, preserving the contract below.
//
// A Relation is not safe for concurrent mutation; concurrent reads are
// fine.
type Relation struct {
	scheme    Scheme
	tuples    []Tuple
	index     map[string]int // tuple key -> position in tuples; nil until built
	indexOnce sync.Once      // guards the lazy build for FromDistinctTuples relations
}

// New returns an empty relation over the given scheme.
func New(scheme Scheme) *Relation {
	return &Relation{scheme: scheme, index: make(map[string]int)}
}

// ensureIndex returns the tuple-key index, building it on first use for
// relations assembled by FromDistinctTuples. Safe under concurrent
// reads: the once serializes the build, and for eagerly indexed
// relations the guarded closure is a no-op.
func (r *Relation) ensureIndex() map[string]int {
	r.indexOnce.Do(func() {
		if r.index != nil {
			return
		}
		idx := make(map[string]int, len(r.tuples))
		for i, t := range r.tuples {
			idx[t.Key()] = i
		}
		r.index = idx
	})
	return r.index
}

// FromTuples builds a relation over scheme containing the given tuples
// (duplicates collapse). It reports an arity error if any tuple does not
// match the scheme.
func FromTuples(scheme Scheme, tuples []Tuple) (*Relation, error) {
	r := New(scheme)
	for _, t := range tuples {
		if _, err := r.Add(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// FromDistinctTuples assembles a relation from tuple batches that the
// caller guarantees to be pairwise distinct — the merge fast path of the
// parallel join, whose output provably contains no duplicates (an output
// tuple of a natural join determines its source pair). Tuples are not
// cloned and no keys are serialized: the index is built lazily on first
// use, so a result that is only ever scanned never pays for it. The
// relation takes ownership of the given tuples; callers must not modify
// them afterwards. Passing duplicate tuples violates set semantics
// silently — use New/Add when distinctness is not guaranteed.
func FromDistinctTuples(scheme Scheme, parts ...[]Tuple) (*Relation, error) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	r := &Relation{scheme: scheme, tuples: make([]Tuple, 0, total)}
	for _, part := range parts {
		for _, t := range part {
			if len(t) != scheme.Len() {
				return nil, fmt.Errorf("relation: tuple %v has arity %d, scheme %v has arity %d", t, len(t), scheme, scheme.Len())
			}
			r.tuples = append(r.tuples, t)
		}
	}
	return r, nil
}

// FromRows is a convenience constructor taking rows of plain strings.
func FromRows(scheme Scheme, rows ...[]string) (*Relation, error) {
	r := New(scheme)
	for _, row := range rows {
		if _, err := r.Add(TupleOf(row...)); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Scheme returns the relation's scheme.
func (r *Relation) Scheme() Scheme { return r.scheme }

// Len returns the number of tuples (the paper's |R|).
func (r *Relation) Len() int { return len(r.tuples) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.tuples) == 0 }

// Add inserts tuple t, returning true if it was new and false if it was
// already present. It reports an error when the tuple's arity does not
// match the scheme.
func (r *Relation) Add(t Tuple) (bool, error) {
	if len(t) != r.scheme.Len() {
		return false, fmt.Errorf("relation: tuple %v has arity %d, scheme %v has arity %d", t, len(t), r.scheme, r.scheme.Len())
	}
	idx := r.ensureIndex()
	k := t.Key()
	if _, ok := idx[k]; ok {
		return false, nil
	}
	idx[k] = len(r.tuples)
	r.tuples = append(r.tuples, t.Clone())
	return true, nil
}

// MustAdd is Add for statically known tuples; it panics on arity errors.
func (r *Relation) MustAdd(t Tuple) bool {
	ok, err := r.Add(t)
	if err != nil {
		panic(err)
	}
	return ok
}

// Contains reports whether tuple t (positional, in scheme order) is in the
// relation.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.scheme.Len() {
		return false
	}
	_, ok := r.ensureIndex()[t.Key()]
	return ok
}

// ContainsNamed reports whether the named tuple, which may list its
// attributes in any order, is in the relation. It is false when the tuple's
// scheme is not set-equal to the relation's.
func (r *Relation) ContainsNamed(nt NamedTuple) bool {
	if !nt.Scheme.Equal(r.scheme) {
		return false
	}
	p, err := projectionOnto(nt.Scheme, r.scheme)
	if err != nil {
		return false
	}
	return r.Contains(p.apply(nt.Vals))
}

// Tuple returns the i-th tuple in insertion order. The returned slice must
// not be modified.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Each calls fn for every tuple in insertion order until fn returns false.
// The tuple passed to fn must not be modified.
func (r *Relation) Each(fn func(Tuple) bool) {
	for _, t := range r.tuples {
		if !fn(t) {
			return
		}
	}
}

// Tuples returns a copy of the tuple list in insertion order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, len(r.tuples))
	for i, t := range r.tuples {
		out[i] = t.Clone()
	}
	return out
}

// Sorted returns the tuples in deterministic lexicographic order.
func (r *Relation) Sorted() []Tuple {
	out := r.Tuples()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Clone returns an independent copy of the relation.
func (r *Relation) Clone() *Relation {
	c := New(r.scheme)
	for _, t := range r.tuples {
		c.MustAdd(t)
	}
	return c
}

// alignTo returns r's tuples rewritten into the column order of target,
// which must be set-equal to r's scheme.
func (r *Relation) alignTo(target Scheme) (*Relation, error) {
	if !r.scheme.Equal(target) {
		return nil, fmt.Errorf("relation: schemes %v and %v are not set-equal", r.scheme, target)
	}
	if r.scheme.SameOrder(target) {
		return r, nil
	}
	p, err := projectionOnto(r.scheme, target)
	if err != nil {
		return nil, err
	}
	out := New(target)
	for _, t := range r.tuples {
		out.MustAdd(p.apply(t))
	}
	return out, nil
}

// Project computes π_onto(r), the set of restrictions of r's tuples to the
// attributes of onto (which must all belong to r's scheme).
func (r *Relation) Project(onto Scheme) (*Relation, error) {
	p, err := projectionOnto(r.scheme, onto)
	if err != nil {
		return nil, err
	}
	out := New(onto)
	for _, t := range r.tuples {
		if _, err := out.Add(p.apply(t)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Union returns r ∪ o over r's column order. The schemes must be set-equal.
func (r *Relation) Union(o *Relation) (*Relation, error) {
	ao, err := o.alignTo(r.scheme)
	if err != nil {
		return nil, err
	}
	out := r.Clone()
	for _, t := range ao.tuples {
		out.MustAdd(t)
	}
	return out, nil
}

// Intersect returns r ∩ o over r's column order. The schemes must be
// set-equal.
func (r *Relation) Intersect(o *Relation) (*Relation, error) {
	ao, err := o.alignTo(r.scheme)
	if err != nil {
		return nil, err
	}
	out := New(r.scheme)
	for _, t := range r.tuples {
		if ao.Contains(t) {
			out.MustAdd(t)
		}
	}
	return out, nil
}

// Difference returns r \ o over r's column order. The schemes must be
// set-equal.
func (r *Relation) Difference(o *Relation) (*Relation, error) {
	ao, err := o.alignTo(r.scheme)
	if err != nil {
		return nil, err
	}
	out := New(r.scheme)
	for _, t := range r.tuples {
		if !ao.Contains(t) {
			out.MustAdd(t)
		}
	}
	return out, nil
}

// SubsetOf reports whether every tuple of r is in o. The schemes must be
// set-equal.
func (r *Relation) SubsetOf(o *Relation) (bool, error) {
	ar, err := r.alignTo(o.scheme)
	if err != nil {
		return false, err
	}
	for _, t := range ar.tuples {
		if !o.Contains(t) {
			return false, nil
		}
	}
	return true, nil
}

// Equal reports whether r and o hold the same set of tuples over set-equal
// schemes (column order is immaterial). Relations over different attribute
// sets are never equal.
func (r *Relation) Equal(o *Relation) bool {
	if !r.scheme.Equal(o.scheme) || r.Len() != o.Len() {
		return false
	}
	sub, err := r.SubsetOf(o)
	return err == nil && sub
}

// Join computes the natural join r ∗ o:
//
//	r ∗ o = { t over scheme(r) ∪ scheme(o) : t[scheme(r)] ∈ r, t[scheme(o)] ∈ o }
//
// using a hash join on the shared attributes. This is the package's
// canonical join; package join provides alternative algorithms and an
// n-ary planner.
func (r *Relation) Join(o *Relation) (*Relation, error) {
	shared := r.scheme.Intersect(o.scheme)
	outScheme := r.scheme.Union(o.scheme)

	// Probe side column mapping: positions of o's attributes that are not
	// shared, appended after r's columns in outScheme order.
	rest := o.scheme.Minus(r.scheme)
	restPos := make([]int, rest.Len())
	for i := 0; i < rest.Len(); i++ {
		j, _ := o.scheme.Pos(rest.Attr(i))
		restPos[i] = j
	}

	keyR, err := projectionOnto(r.scheme, shared)
	if err != nil {
		return nil, err
	}
	keyO, err := projectionOnto(o.scheme, shared)
	if err != nil {
		return nil, err
	}

	// Build on the smaller input.
	build, probe := r, o
	keyBuild, keyProbe := keyR, keyO
	buildIsLeft := true
	if o.Len() < r.Len() {
		build, probe = o, r
		keyBuild, keyProbe = keyO, keyR
		buildIsLeft = false
	}

	table := make(map[string][]Tuple, build.Len())
	for _, t := range build.tuples {
		k := keyBuild.apply(t).Key()
		table[k] = append(table[k], t)
	}

	out := New(outScheme)
	emit := func(left, right Tuple) error {
		joined := make(Tuple, 0, outScheme.Len())
		joined = append(joined, left...)
		for _, j := range restPos {
			joined = append(joined, right[j])
		}
		_, err := out.Add(joined)
		return err
	}
	for _, t := range probe.tuples {
		k := keyProbe.apply(t).Key()
		for _, m := range table[k] {
			var err error
			if buildIsLeft {
				err = emit(m, t) // m is from r, t from o
			} else {
				err = emit(t, m) // t is from r, m from o
			}
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ActiveDomain returns, for each attribute of the scheme, the set of values
// appearing in that column, in first-appearance order. It is the value
// universe used by the exhaustive deciders.
func (r *Relation) ActiveDomain() map[Attribute][]Value {
	dom := make(map[Attribute][]Value, r.scheme.Len())
	seen := make(map[Attribute]map[Value]bool, r.scheme.Len())
	for i := 0; i < r.scheme.Len(); i++ {
		seen[r.scheme.Attr(i)] = make(map[Value]bool)
	}
	for _, t := range r.tuples {
		for i, v := range t {
			a := r.scheme.Attr(i)
			if !seen[a][v] {
				seen[a][v] = true
				dom[a] = append(dom[a], v)
			}
		}
	}
	return dom
}

// String renders the relation as "scheme{n tuples}".
func (r *Relation) String() string {
	return fmt.Sprintf("%v{%d tuples}", r.scheme, r.Len())
}
