package relation

import (
	"strings"
	"testing"
)

func rel(t *testing.T, scheme string, rows ...string) *Relation {
	t.Helper()
	s, err := SchemeOf(scheme)
	if err != nil {
		t.Fatal(err)
	}
	r := New(s)
	for _, row := range rows {
		if _, err := r.Add(TupleOf(strings.Fields(row)...)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestAddSetSemantics(t *testing.T) {
	r := rel(t, "A B")
	if added := r.MustAdd(TupleOf("1", "2")); !added {
		t.Error("first Add = false")
	}
	if added := r.MustAdd(TupleOf("1", "2")); added {
		t.Error("duplicate Add = true")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if _, err := r.Add(TupleOf("1")); err == nil {
		t.Error("arity error not reported")
	}
}

func TestTupleKeyNoCollision(t *testing.T) {
	// ("ab","c") and ("a","bc") must not collide under Key encoding.
	a := TupleOf("ab", "c")
	b := TupleOf("a", "bc")
	if a.Key() == b.Key() {
		t.Fatal("key collision")
	}
	r := rel(t, "A B")
	r.MustAdd(a)
	if r.Contains(b) {
		t.Fatal("Contains confused distinct tuples")
	}
}

func TestContainsNamedAnyOrder(t *testing.T) {
	r := rel(t, "A B C", "1 2 3")
	nt, err := NewNamedTuple(MustScheme("C", "A", "B"), TupleOf("3", "1", "2"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.ContainsNamed(nt) {
		t.Error("ContainsNamed false for reordered tuple")
	}
	wrong, _ := NewNamedTuple(MustScheme("C", "A", "B"), TupleOf("1", "2", "3"))
	if r.ContainsNamed(wrong) {
		t.Error("ContainsNamed true for wrong tuple")
	}
	other, _ := NewNamedTuple(MustScheme("A", "B"), TupleOf("1", "2"))
	if r.ContainsNamed(other) {
		t.Error("ContainsNamed true for smaller scheme")
	}
}

func TestProject(t *testing.T) {
	r := rel(t, "A B C",
		"1 x p",
		"1 y p",
		"2 x q",
	)
	p, err := r.Project(MustScheme("A", "C"))
	if err != nil {
		t.Fatal(err)
	}
	want := rel(t, "A C", "1 p", "2 q")
	if !p.Equal(want) {
		t.Errorf("Project = %v, want %v", p.Sorted(), want.Sorted())
	}
	// Projection collapses duplicates: 3 rows -> 2 rows.
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
	if _, err := r.Project(MustScheme("Z")); err == nil {
		t.Error("projection onto foreign attribute succeeded")
	}
}

func TestProjectOntoEmptyScheme(t *testing.T) {
	r := rel(t, "A B", "1 2", "3 4")
	p, err := r.Project(MustScheme())
	if err != nil {
		t.Fatal(err)
	}
	// π_∅ of a nonempty relation is one empty tuple.
	if p.Len() != 1 {
		t.Errorf("Len = %d, want 1", p.Len())
	}
	empty := New(MustScheme("A", "B"))
	p2, err := empty.Project(MustScheme())
	if err != nil {
		t.Fatal(err)
	}
	if p2.Len() != 0 {
		t.Errorf("π_∅(∅) Len = %d, want 0", p2.Len())
	}
}

func TestSetOperations(t *testing.T) {
	r := rel(t, "A B", "1 1", "2 2")
	o := rel(t, "B A", "2 2", "3 3") // reordered scheme on purpose

	u, err := r.Union(o)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(rel(t, "A B", "1 1", "2 2", "3 3")) {
		t.Errorf("Union = %v", u.Sorted())
	}
	i, err := r.Intersect(o)
	if err != nil {
		t.Fatal(err)
	}
	if !i.Equal(rel(t, "A B", "2 2")) {
		t.Errorf("Intersect = %v", i.Sorted())
	}
	d, err := r.Difference(o)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(rel(t, "A B", "1 1")) {
		t.Errorf("Difference = %v", d.Sorted())
	}
	sub, err := rel(t, "A B", "2 2").SubsetOf(r)
	if err != nil || !sub {
		t.Errorf("SubsetOf = %v, %v", sub, err)
	}
	sub, err = r.SubsetOf(o)
	if err != nil || sub {
		t.Errorf("SubsetOf = %v, %v (want false)", sub, err)
	}
	if _, err := r.Union(rel(t, "A C", "1 1")); err == nil {
		t.Error("Union across different schemes succeeded")
	}
}

func TestEqualAcrossColumnOrder(t *testing.T) {
	r := rel(t, "A B", "1 2")
	o := rel(t, "B A", "2 1")
	if !r.Equal(o) {
		t.Error("Equal should hold across column orders")
	}
	if r.Equal(rel(t, "B A", "1 2")) {
		t.Error("Equal true for different tuples")
	}
	if r.Equal(rel(t, "A C", "1 2")) {
		t.Error("Equal true for different schemes")
	}
}

func TestJoinSharedAttributes(t *testing.T) {
	r := rel(t, "A B",
		"1 x",
		"2 y",
	)
	o := rel(t, "B C",
		"x p",
		"x q",
		"z r",
	)
	j, err := r.Join(o)
	if err != nil {
		t.Fatal(err)
	}
	want := rel(t, "A B C", "1 x p", "1 x q")
	if !j.Equal(want) {
		t.Errorf("Join = %v, want %v", j.Sorted(), want.Sorted())
	}
	if got := j.Scheme().String(); got != "A B C" {
		t.Errorf("scheme = %q", got)
	}
}

func TestJoinDisjointSchemesIsCartesianProduct(t *testing.T) {
	r := rel(t, "A", "1", "2")
	o := rel(t, "B", "x", "y", "z")
	j, err := r.Join(o)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 6 {
		t.Errorf("Len = %d, want 6", j.Len())
	}
}

func TestJoinSameScheme(t *testing.T) {
	r := rel(t, "A B", "1 1", "2 2")
	o := rel(t, "A B", "2 2", "3 3")
	j, err := r.Join(o)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Equal(rel(t, "A B", "2 2")) {
		t.Errorf("Join over same scheme = %v, want intersection", j.Sorted())
	}
}

func TestJoinWithEmpty(t *testing.T) {
	r := rel(t, "A B", "1 1")
	empty := New(MustScheme("B", "C"))
	j, err := r.Join(empty)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Errorf("Len = %d, want 0", j.Len())
	}
	if got := j.Scheme().String(); got != "A B C" {
		t.Errorf("scheme = %q", got)
	}
}

func TestJoinDefinitionDirect(t *testing.T) {
	// Check against the definitional form: t in r*o iff t[X1] in r and
	// t[X2] in o.
	r := rel(t, "A B", "1 x", "2 y", "2 x")
	o := rel(t, "B C", "x p", "y q")
	j, err := r.Join(o)
	if err != nil {
		t.Fatal(err)
	}
	j.Each(func(tp Tuple) bool {
		nt := NamedTuple{Scheme: j.Scheme(), Vals: tp}
		left, err := nt.Project(r.Scheme())
		if err != nil {
			t.Fatal(err)
		}
		right, err := nt.Project(o.Scheme())
		if err != nil {
			t.Fatal(err)
		}
		if !r.ContainsNamed(left) || !o.ContainsNamed(right) {
			t.Errorf("join tuple %v has missing projection", tp)
		}
		return true
	})
	if j.Len() != 3 {
		t.Errorf("Len = %d, want 3", j.Len())
	}
}

func TestActiveDomain(t *testing.T) {
	r := rel(t, "A B", "1 x", "2 x", "1 y")
	dom := r.ActiveDomain()
	if got := len(dom["A"]); got != 2 {
		t.Errorf("dom[A] = %v", dom["A"])
	}
	if got := len(dom["B"]); got != 2 {
		t.Errorf("dom[B] = %v", dom["B"])
	}
}

func TestCloneIndependence(t *testing.T) {
	r := rel(t, "A", "1")
	c := r.Clone()
	c.MustAdd(TupleOf("2"))
	if r.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: r=%d c=%d", r.Len(), c.Len())
	}
}

func TestEachEarlyStop(t *testing.T) {
	r := rel(t, "A", "1", "2", "3")
	count := 0
	r.Each(func(Tuple) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("Each visited %d tuples, want 2", count)
	}
}

func TestNamedTupleJoinsWith(t *testing.T) {
	a := NamedTuple{Scheme: MustScheme("A", "B"), Vals: TupleOf("1", "x")}
	b := NamedTuple{Scheme: MustScheme("B", "C"), Vals: TupleOf("x", "p")}
	c := NamedTuple{Scheme: MustScheme("B", "C"), Vals: TupleOf("y", "p")}
	if !a.JoinsWith(b) {
		t.Error("compatible tuples reported incompatible")
	}
	if a.JoinsWith(c) {
		t.Error("incompatible tuples reported compatible")
	}
	d := NamedTuple{Scheme: MustScheme("D"), Vals: TupleOf("z")}
	if !a.JoinsWith(d) {
		t.Error("disjoint tuples should always join")
	}
}
