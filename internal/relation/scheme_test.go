package relation

import (
	"strings"
	"testing"
)

func TestNewSchemeRejectsDuplicates(t *testing.T) {
	if _, err := NewScheme("A", "B", "A"); err == nil {
		t.Fatal("expected duplicate-attribute error")
	}
	if _, err := NewScheme("A", ""); err == nil {
		t.Fatal("expected empty-attribute error")
	}
}

func TestSchemeOf(t *testing.T) {
	s, err := SchemeOf("  F1 F2   X1 S ")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "F1 F2 X1 S" {
		t.Fatalf("String() = %q", got)
	}
	if s.Len() != 4 {
		t.Fatalf("Len() = %d", s.Len())
	}
	if i, ok := s.Pos("X1"); !ok || i != 2 {
		t.Fatalf("Pos(X1) = %d, %v", i, ok)
	}
	if s.Has("Z") {
		t.Fatal("Has(Z) = true")
	}
}

func TestSchemeSetSemantics(t *testing.T) {
	ab := MustScheme("A", "B")
	ba := MustScheme("B", "A")
	ac := MustScheme("A", "C")

	if !ab.Equal(ba) {
		t.Error("Equal should ignore order")
	}
	if ab.SameOrder(ba) {
		t.Error("SameOrder should respect order")
	}
	if ab.Equal(ac) {
		t.Error("distinct attribute sets reported equal")
	}
	if !ab.ContainsAll(MustScheme("B")) {
		t.Error("ContainsAll(B) = false")
	}
	if ab.ContainsAll(ac) {
		t.Error("ContainsAll(AC) = true")
	}
	if ab.Disjoint(ba) {
		t.Error("Disjoint with shared attrs")
	}
	if !ab.Disjoint(MustScheme("C", "D")) {
		t.Error("Disjoint(CD) = false")
	}
}

func TestSchemeAlgebra(t *testing.T) {
	ab := MustScheme("A", "B")
	bc := MustScheme("B", "C")

	if got := ab.Union(bc).String(); got != "A B C" {
		t.Errorf("Union = %q, want \"A B C\"", got)
	}
	if got := ab.Intersect(bc).String(); got != "B" {
		t.Errorf("Intersect = %q, want \"B\"", got)
	}
	if got := ab.Minus(bc).String(); got != "A" {
		t.Errorf("Minus = %q, want \"A\"", got)
	}
	if got := bc.Minus(ab).String(); got != "C" {
		t.Errorf("Minus = %q, want \"C\"", got)
	}
	empty := MustScheme()
	if got := empty.Union(ab).String(); got != "A B" {
		t.Errorf("empty.Union = %q", got)
	}
	if n := ab.Intersect(MustScheme("C")).Len(); n != 0 {
		t.Errorf("disjoint Intersect Len = %d", n)
	}
}

func TestSchemeSorted(t *testing.T) {
	s := MustScheme("X2", "F1", "A")
	if got := s.Sorted().String(); got != "A F1 X2" {
		t.Errorf("Sorted = %q", got)
	}
	// Original unchanged (immutability).
	if got := s.String(); got != "X2 F1 A" {
		t.Errorf("original mutated: %q", got)
	}
}

func TestProjectionOntoMissingAttr(t *testing.T) {
	src := MustScheme("A", "B")
	_, err := projectionOnto(src, MustScheme("A", "Z"))
	if err == nil || !strings.Contains(err.Error(), "Z") {
		t.Fatalf("err = %v, want mention of Z", err)
	}
}

func TestSchemeAttrsIsCopy(t *testing.T) {
	s := MustScheme("A", "B")
	attrs := s.Attrs()
	attrs[0] = "Z"
	if s.Attr(0) != "A" {
		t.Fatal("Attrs() exposed internal storage")
	}
}
