// Package relation implements the relational model substrate used by the
// rest of the library: attributes, relation schemes, tuples, and finite
// relations with set semantics, together with the two relational-algebra
// operations the paper studies (projection and natural join), set
// operations, deterministic rendering, and a text serialization format.
//
// The model follows Cosmadakis (1983), Section 2.1: a relation scheme is a
// finite set of attributes; an X-tuple is a mapping from the scheme X into
// attribute values; a relation over X is a finite set of X-tuples. Domains
// of distinct attributes are conceptually disjoint — the same symbol
// appearing in different columns denotes different values. This package
// realizes that convention structurally: values are only ever compared
// within a column, never across columns.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute is the name of a column of a relation, e.g. "X1" or "Y{1,2}".
type Attribute string

// Value is a single attribute value, e.g. "0", "1", "e", "x", "a", "b".
// Values are uninterpreted symbols: the engine only ever tests them for
// equality within one column.
type Value string

// Scheme is a relation scheme: an ordered sequence of distinct attributes.
// The paper treats schemes as sets written down as attribute strings; Scheme
// keeps the writing order (so that the paper's tables render column-for-
// column) but all set-level operations (Equal, ContainsAll, Union, ...)
// treat a Scheme as the set of its attributes.
//
// A Scheme is immutable after construction and safe for concurrent reads.
// The zero Scheme is the empty scheme.
type Scheme struct {
	attrs []Attribute
	pos   map[Attribute]int
}

// NewScheme builds a scheme from the given attributes, preserving order.
// It reports an error if an attribute repeats.
func NewScheme(attrs ...Attribute) (Scheme, error) {
	s := Scheme{
		attrs: make([]Attribute, len(attrs)),
		pos:   make(map[Attribute]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range s.attrs {
		if a == "" {
			return Scheme{}, fmt.Errorf("relation: empty attribute name at position %d", i)
		}
		if j, dup := s.pos[a]; dup {
			return Scheme{}, fmt.Errorf("relation: duplicate attribute %q at positions %d and %d", a, j, i)
		}
		s.pos[a] = i
	}
	return s, nil
}

// MustScheme is like NewScheme but panics on error. It is intended for
// statically known schemes in tests, examples and generated code.
func MustScheme(attrs ...Attribute) Scheme {
	s, err := NewScheme(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// SchemeOf parses a scheme from a whitespace-separated attribute list,
// e.g. "F1 F2 X1 S".
func SchemeOf(spec string) (Scheme, error) {
	fields := strings.Fields(spec)
	attrs := make([]Attribute, len(fields))
	for i, f := range fields {
		attrs[i] = Attribute(f)
	}
	return NewScheme(attrs...)
}

// Len returns the number of attributes in the scheme.
func (s Scheme) Len() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s Scheme) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attributes in scheme order.
func (s Scheme) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Pos returns the position of attribute a in the scheme and whether it is
// present.
func (s Scheme) Pos(a Attribute) (int, bool) {
	i, ok := s.pos[a]
	return i, ok
}

// Has reports whether attribute a belongs to the scheme.
func (s Scheme) Has(a Attribute) bool {
	_, ok := s.pos[a]
	return ok
}

// Equal reports whether s and t contain exactly the same attributes,
// regardless of order (schemes are sets).
func (s Scheme) Equal(t Scheme) bool {
	if len(s.attrs) != len(t.attrs) {
		return false
	}
	for _, a := range s.attrs {
		if !t.Has(a) {
			return false
		}
	}
	return true
}

// SameOrder reports whether s and t list the same attributes in the same
// order (column-for-column identity).
func (s Scheme) SameOrder(t Scheme) bool {
	if len(s.attrs) != len(t.attrs) {
		return false
	}
	for i, a := range s.attrs {
		if t.attrs[i] != a {
			return false
		}
	}
	return true
}

// ContainsAll reports whether every attribute of t belongs to s (t ⊆ s as
// sets).
func (s Scheme) ContainsAll(t Scheme) bool {
	if len(t.attrs) > len(s.attrs) {
		return false
	}
	for _, a := range t.attrs {
		if !s.Has(a) {
			return false
		}
	}
	return true
}

// Disjoint reports whether s and t share no attribute.
func (s Scheme) Disjoint(t Scheme) bool {
	small, large := s, t
	if large.Len() < small.Len() {
		small, large = large, small
	}
	for _, a := range small.attrs {
		if large.Has(a) {
			return false
		}
	}
	return true
}

// Union returns the scheme containing the attributes of s followed by the
// attributes of t that are not already in s. This is the natural-join
// result scheme ordering used throughout the library.
func (s Scheme) Union(t Scheme) Scheme {
	attrs := make([]Attribute, 0, len(s.attrs)+len(t.attrs))
	attrs = append(attrs, s.attrs...)
	for _, a := range t.attrs {
		if !s.Has(a) {
			attrs = append(attrs, a)
		}
	}
	return MustScheme(attrs...)
}

// Intersect returns the attributes common to s and t, in s's order.
func (s Scheme) Intersect(t Scheme) Scheme {
	var attrs []Attribute
	for _, a := range s.attrs {
		if t.Has(a) {
			attrs = append(attrs, a)
		}
	}
	return MustScheme(attrs...)
}

// Minus returns the attributes of s that are not in t, in s's order.
func (s Scheme) Minus(t Scheme) Scheme {
	var attrs []Attribute
	for _, a := range s.attrs {
		if !t.Has(a) {
			attrs = append(attrs, a)
		}
	}
	return MustScheme(attrs...)
}

// Sorted returns a copy of the scheme with attributes in lexicographic
// order. Useful for canonical printing of set-valued schemes.
func (s Scheme) Sorted() Scheme {
	attrs := s.Attrs()
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	return MustScheme(attrs...)
}

// String renders the scheme as a space-separated attribute list, matching
// the paper's convention of writing schemes as attribute strings.
func (s Scheme) String() string {
	var b strings.Builder
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(string(a))
	}
	return b.String()
}

// projection describes how to map tuples over a source scheme onto a target
// scheme: target position i reads source position idx[i].
type projection struct {
	target Scheme
	idx    []int
}

// projectionOnto computes the column mapping for projecting src onto onto.
// Every attribute of onto must occur in src.
func projectionOnto(src, onto Scheme) (projection, error) {
	p := projection{target: onto, idx: make([]int, onto.Len())}
	for i := 0; i < onto.Len(); i++ {
		a := onto.Attr(i)
		j, ok := src.Pos(a)
		if !ok {
			return projection{}, fmt.Errorf("relation: cannot project: attribute %q not in source scheme %v", a, src)
		}
		p.idx[i] = j
	}
	return p, nil
}

// apply projects tuple t (over the source scheme) onto the target scheme.
func (p projection) apply(t Tuple) Tuple {
	out := make(Tuple, len(p.idx))
	for i, j := range p.idx {
		out[i] = t[j]
	}
	return out
}
