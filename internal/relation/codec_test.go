package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	r := rel(t, "A B C", "1 e a", "0 x b", "1 1 a")
	var buf bytes.Buffer
	if err := WriteRelation(&buf, "T", r); err != nil {
		t.Fatal(err)
	}
	name, back, err := ReadRelation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "T" {
		t.Errorf("name = %q", name)
	}
	if !back.Equal(r) {
		t.Errorf("round trip lost tuples:\n%s", RenderSorted(back))
	}
}

func TestReadDatabaseMultiple(t *testing.T) {
	input := `
# two relations
relation R
A B
1 2
3 4
end

relation S
B C
2 x
end
`
	db, err := ReadDatabase(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Names(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Fatalf("Names = %v", got)
	}
	r, err := db.Get("R")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("R.Len = %d", r.Len())
	}
	if _, err := db.Get("Missing"); err == nil {
		t.Error("Get(Missing) succeeded")
	}
}

func TestReadRelationBareForm(t *testing.T) {
	input := `
# bare relation, no header
A B
1 x
2 y
`
	name, r, err := ReadRelation(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if name != "" {
		t.Errorf("name = %q, want empty", name)
	}
	if r.Len() != 2 || r.Scheme().String() != "A B" {
		t.Errorf("parsed %v", r)
	}
}

func TestReadDatabaseErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"bad header", "relational R\nA B\nend\n"},
		{"missing end", "relation R\nA B\n1 2\n"},
		{"arity mismatch", "relation R\nA B\n1\nend\n"},
		{"duplicate name", "relation R\nA\n1\nend\nrelation R\nA\n2\nend\n"},
		{"missing scheme", "relation R\n"},
		{"dup attribute", "relation R\nA A\nend\n"},
	}
	for _, tc := range cases {
		if _, err := ReadDatabase(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, _, err := ReadRelation(strings.NewReader("   \n# only comments\n")); err == nil {
		t.Error("empty input: no error")
	}
}

func TestWriteDatabaseDeterministic(t *testing.T) {
	db := NewDatabase()
	db.Put("B", rel(t, "X", "1"))
	db.Put("A", rel(t, "Y", "2"))
	var buf bytes.Buffer
	if err := WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "relation A") > strings.Index(out, "relation B") {
		t.Error("relations not written in name order")
	}
	back, err := ReadDatabase(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Errorf("round trip lost relations: %v", back.Names())
	}
}

func TestRender(t *testing.T) {
	r := rel(t, "F1 X1 S", "1 0 a", "e 1 b")
	out := Render(r, RenderOptions{SortRows: true})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "F1") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1") { // sorted: "1 0 a" before "e 1 b"
		t.Errorf("first row = %q", lines[1])
	}
	// Columns align: "0" in the first row sits under "X1" in the header.
	if strings.Index(lines[0], "X1") != strings.Index(lines[1], "0") {
		t.Errorf("column misaligned:\n%q\n%q", lines[0], lines[1])
	}
}
