package relation

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/big"
	"math/bits"
	"strconv"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	r := rel(t, "A B C", "1 e a", "0 x b", "1 1 a")
	var buf bytes.Buffer
	if err := WriteRelation(&buf, "T", r); err != nil {
		t.Fatal(err)
	}
	name, back, err := ReadRelation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "T" {
		t.Errorf("name = %q", name)
	}
	if !back.Equal(r) {
		t.Errorf("round trip lost tuples:\n%s", RenderSorted(back))
	}
}

func TestReadDatabaseMultiple(t *testing.T) {
	input := `
# two relations
relation R
A B
1 2
3 4
end

relation S
B C
2 x
end
`
	db, err := ReadDatabase(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Names(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Fatalf("Names = %v", got)
	}
	r, err := db.Get("R")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("R.Len = %d", r.Len())
	}
	if _, err := db.Get("Missing"); err == nil {
		t.Error("Get(Missing) succeeded")
	}
}

func TestReadRelationBareForm(t *testing.T) {
	input := `
# bare relation, no header
A B
1 x
2 y
`
	name, r, err := ReadRelation(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if name != "" {
		t.Errorf("name = %q, want empty", name)
	}
	if r.Len() != 2 || r.Scheme().String() != "A B" {
		t.Errorf("parsed %v", r)
	}
}

func TestReadDatabaseErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"bad header", "relational R\nA B\nend\n"},
		{"missing end", "relation R\nA B\n1 2\n"},
		{"arity mismatch", "relation R\nA B\n1\nend\n"},
		{"duplicate name", "relation R\nA\n1\nend\nrelation R\nA\n2\nend\n"},
		{"missing scheme", "relation R\n"},
		{"dup attribute", "relation R\nA A\nend\n"},
	}
	for _, tc := range cases {
		if _, err := ReadDatabase(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, _, err := ReadRelation(strings.NewReader("   \n# only comments\n")); err == nil {
		t.Error("empty input: no error")
	}
}

func TestWriteDatabaseDeterministic(t *testing.T) {
	db := NewDatabase()
	db.Put("B", rel(t, "X", "1"))
	db.Put("A", rel(t, "Y", "2"))
	var buf bytes.Buffer
	if err := WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "relation A") > strings.Index(out, "relation B") {
		t.Error("relations not written in name order")
	}
	back, err := ReadDatabase(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Errorf("round trip lost relations: %v", back.Names())
	}
}

func TestRender(t *testing.T) {
	r := rel(t, "F1 X1 S", "1 0 a", "e 1 b")
	out := Render(r, RenderOptions{SortRows: true})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "F1") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1") { // sorted: "1 0 a" before "e 1 b"
		t.Errorf("first row = %q", lines[1])
	}
	// Columns align: "0" in the first row sits under "X1" in the header.
	if strings.Index(lines[0], "X1") != strings.Index(lines[1], "0") {
		t.Errorf("column misaligned:\n%q\n%q", lines[0], lines[1])
	}
}

// oldXORFingerprint reproduces the pre-fix combining scheme — a bare XOR
// fold of per-tuple FNV digests — so the regression test below can prove
// the engineered pair collided under it.
func oldXORFingerprint(r *Relation) string {
	h := fnv.New64a()
	h.Write([]byte(r.scheme.String()))
	schemeSum := h.Sum64()
	var tupleSum uint64
	for _, t := range r.tuples {
		th := fnv.New64a()
		th.Write([]byte(t.Key()))
		tupleSum ^= th.Sum64()
	}
	return strconv.FormatUint(schemeSum, 16) + "-" +
		strconv.FormatUint(tupleSum, 16) + "-" +
		strconv.Itoa(len(r.tuples))
}

// TestFingerprintXORCancellationRegression engineers two disjoint
// relations of equal cardinality over the same scheme whose per-tuple
// digests XOR to the same value, so the old bare-XOR fold fingerprinted
// them identically — the stale-hit soundness hole for the subexpression
// cache. The pair is found deterministically, not by luck: 80 tuple
// digests are 64-bit vectors over GF(2), so Gaussian elimination must
// find linearly dependent subsets (any 65 vectors are dependent); a
// dependent subset XORs to zero, and splitting it in half gives two tuple
// sets with equal XOR and equal cardinality. The fixed fingerprint must
// tell them apart.
func TestFingerprintXORCancellationRegression(t *testing.T) {
	scheme := MustScheme("X")
	const n = 80
	vals := make([]string, n)
	digests := make([]uint64, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%03d", i)
		th := fnv.New64a()
		th.Write([]byte(TupleOf(vals[i]).Key()))
		digests[i] = th.Sum64()
	}

	// Gaussian elimination over GF(2), tracking which input digests each
	// reduced row combines; a row that reduces to zero yields a subset
	// mask whose digests XOR-cancel.
	popcount := func(m *big.Int) int {
		c := 0
		for i := 0; i < n; i++ {
			if m.Bit(i) == 1 {
				c++
			}
		}
		return c
	}
	type row struct {
		vec  uint64
		mask *big.Int
	}
	basis := map[int]row{} // pivot bit index -> row
	var cancelling *big.Int
	var oddMask *big.Int
	for i := 0; i < n && cancelling == nil; i++ {
		vec, mask := digests[i], new(big.Int).SetBit(new(big.Int), i, 1)
		for vec != 0 {
			p := bits.Len64(vec) - 1
			b, ok := basis[p]
			if !ok {
				basis[p] = row{vec, mask}
				break
			}
			vec ^= b.vec
			mask = new(big.Int).Xor(mask, b.mask)
		}
		if vec != 0 {
			continue
		}
		// mask's subset XORs to zero. An equal-cardinality split needs an
		// even subset; two odd subsets combine (symmetric difference) to
		// an even one.
		switch pc := popcount(mask); {
		case pc%2 == 0 && pc >= 4:
			cancelling = mask
		case pc%2 == 1 && oddMask == nil:
			oddMask = mask
		case pc%2 == 1:
			if c := new(big.Int).Xor(oddMask, mask); popcount(c)%2 == 0 && popcount(c) >= 4 {
				cancelling = c
			}
		}
	}
	if cancelling == nil {
		t.Fatal("no even-size XOR-cancelling subset among 80 digests; elimination is broken (>=16 dependencies exist)")
	}

	var subset []int
	for i := 0; i < n; i++ {
		if cancelling.Bit(i) == 1 {
			subset = append(subset, i)
		}
	}
	half := len(subset) / 2
	r1, r2 := New(scheme), New(scheme)
	for _, i := range subset[:half] {
		r1.MustAdd(TupleOf(vals[i]))
	}
	for _, i := range subset[half:] {
		r2.MustAdd(TupleOf(vals[i]))
	}
	if r1.Equal(r2) || r1.Len() != r2.Len() {
		t.Fatalf("engineered relations must be different sets of equal cardinality (%d vs %d)", r1.Len(), r2.Len())
	}
	if o1, o2 := oldXORFingerprint(r1), oldXORFingerprint(r2); o1 != o2 {
		t.Fatalf("engineered pair does not collide under the old XOR fold: %s vs %s", o1, o2)
	}
	if f1, f2 := Fingerprint(r1), Fingerprint(r2); f1 == f2 {
		t.Fatalf("different relations still fingerprint-equal after the fix: %s", f1)
	}
}

// TestFingerprintOrderIndependent pins the commutativity contract: the
// fold must not depend on insertion order.
func TestFingerprintOrderIndependent(t *testing.T) {
	a := rel(t, "A B", "1 x", "2 y", "3 z")
	b := rel(t, "A B", "3 z", "1 x", "2 y")
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprint depends on insertion order")
	}
	c := rel(t, "A B", "1 x", "2 y")
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("subset fingerprints equal")
	}
}

// TestReadRelationFirstAttributeNamedRelation covers the misparse fixed
// in ReadRelation: bare relations whose scheme starts with an attribute
// literally named "relation" used to be rejected as malformed block
// headers. Block-form inputs must keep parsing as blocks.
func TestReadRelationFirstAttributeNamedRelation(t *testing.T) {
	// Bare, three attributes: "relation kind count" cannot be a block
	// header (headers have exactly two fields).
	name, r, err := ReadRelation(strings.NewReader("relation kind count\nr1 base 10\nr2 view 20\n"))
	if err != nil {
		t.Fatalf("bare relation with first attribute %q rejected: %v", "relation", err)
	}
	if name != "" || r.Len() != 2 || r.Scheme().Len() != 3 {
		t.Fatalf("bare parse: name=%q len=%d scheme=%v", name, r.Len(), r.Scheme())
	}

	// Bare, two attributes: "relation B" is also a valid block header,
	// but the input has no scheme-plus-end block structure, so the bare
	// grammar must win.
	name, r, err = ReadRelation(strings.NewReader("relation B\nx 1\ny 2\nz 3\n"))
	if err != nil {
		t.Fatalf("ambiguous two-field scheme rejected: %v", err)
	}
	if name != "" || r.Len() != 3 || r.Scheme().Len() != 2 {
		t.Fatalf("ambiguous bare parse: name=%q len=%d scheme=%v", name, r.Len(), r.Scheme())
	}

	// Block form still parses as a block, including when the block's own
	// scheme starts with an attribute named "relation".
	name, r, err = ReadRelation(strings.NewReader("relation T\nrelation B\nx 1\nend\n"))
	if err != nil {
		t.Fatal(err)
	}
	if name != "T" || r.Len() != 1 || r.Scheme().Len() != 2 {
		t.Fatalf("block parse: name=%q len=%d scheme=%v", name, r.Len(), r.Scheme())
	}

	// A malformed block that cannot be read bare either reports the block
	// error (the input led with a header-shaped line).
	_, _, err = ReadRelation(strings.NewReader("relation T\nA B\n1 2 3\n"))
	if err == nil || !strings.Contains(err.Error(), "relation") {
		t.Fatalf("malformed input accepted: %v", err)
	}
}
