package relation

import (
	"strings"
)

// RenderOptions controls table rendering.
type RenderOptions struct {
	// SortRows renders tuples in lexicographic order instead of insertion
	// order. Insertion order matches the paper's example table layout.
	SortRows bool
	// Indent is prefixed to every output line.
	Indent string
}

// Render formats the relation as a column-aligned text table in the style
// of the paper's example (header row of attributes, one line per tuple).
func Render(r *Relation, opts RenderOptions) string {
	widths := make([]int, r.scheme.Len())
	for i := 0; i < r.scheme.Len(); i++ {
		widths[i] = len(r.scheme.Attr(i))
	}
	rows := r.Tuples()
	if opts.SortRows {
		rows = r.Sorted()
	}
	for _, t := range rows {
		for i, v := range t {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}

	var b strings.Builder
	writeRow := func(cells func(i int) string) {
		b.WriteString(opts.Indent)
		for i := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			c := cells(i)
			b.WriteString(c)
			if i < len(widths)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(func(i int) string { return string(r.scheme.Attr(i)) })
	for _, t := range rows {
		t := t
		writeRow(func(i int) string { return string(t[i]) })
	}
	return b.String()
}

// RenderSorted is shorthand for Render with deterministic row order.
func RenderSorted(r *Relation) string {
	return Render(r, RenderOptions{SortRows: true})
}
