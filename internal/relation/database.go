package relation

import (
	"fmt"
	"sort"
)

// Database maps relation names to relations. It is the paper's "database
// over a database scheme": one relation per named relation scheme. The
// paper's hardness results all hold for single-relation databases, and the
// reductions in internal/reduction produce single-relation databases, but
// the evaluator supports any number of operands.
type Database map[string]*Relation

// NewDatabase returns an empty database.
func NewDatabase() Database { return make(Database) }

// Put installs relation r under the given name, replacing any previous
// relation of that name.
func (db Database) Put(name string, r *Relation) { db[name] = r }

// Get returns the named relation, or an error naming the missing operand.
func (db Database) Get(name string) (*Relation, error) {
	r, ok := db[name]
	if !ok {
		return nil, fmt.Errorf("relation: database has no relation named %q", name)
	}
	return r, nil
}

// Names returns the relation names in sorted order.
func (db Database) Names() []string {
	names := make([]string, 0, len(db))
	for n := range db {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Single builds a database holding exactly one relation, the common case
// for the paper's constructions.
func Single(name string, r *Relation) Database {
	return Database{name: r}
}
