package relation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadDatabase checks the codec never panics and accepted databases
// survive a write/read cycle.
func FuzzReadDatabase(f *testing.F) {
	seeds := []string{
		"relation R\nA B\n1 2\nend\n",
		"relation R\nA\nend\nrelation S\nB C\nx y\nend\n",
		"# comment\nrelation T\nA B C\n1 e a\nend\n",
		"relation R\nA B\n1\nend\n",
		"relation R\nA A\nend\n",
		"garbage",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db, err := ReadDatabase(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDatabase(&buf, db); err != nil {
			t.Fatal(err)
		}
		back, err := ReadDatabase(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("rejected own output: %v", err)
		}
		if len(back) != len(db) {
			t.Fatalf("round trip lost relations: %d -> %d", len(db), len(back))
		}
		for name, r := range db {
			br, err := back.Get(name)
			if err != nil || !br.Equal(r) {
				t.Fatalf("relation %q changed in round trip", name)
			}
		}
	})
}
