package join

import (
	"relquery/internal/relation"
)

// α-acyclicity detection for join hypergraphs via the Graham–Yu–Özsoyoğlu
// (GYO) ear-removal reduction. The join hypergraph of an n-ary natural
// join has one hyperedge per joined scheme; the join is α-acyclic exactly
// when repeatedly (1) deleting attributes that occur in a single edge and
// (2) deleting edges contained in another edge reduces the hypergraph to
// one edge. The reduction simultaneously yields a join tree — the data
// structure Yannakakis' algorithm runs over — so detection and planning
// are one pass. This is the machinery behind the acyclic fast path: the
// Durand–Grandjean line of work places α-acyclic joins in the tractable
// (linear, output-bounded) frontier of exactly the evaluation problem the
// paper proves hard in general.

// JoinTree is the output of a successful GYO reduction: Parent[i] is the
// index of edge i's parent (the edge that witnessed its removal as an
// ear), or -1 for the root. Order is the ear-removal order, ending with
// the root; visiting Order[0], Order[1], … therefore performs a
// leaf-to-root semijoin sweep, and the reverse order a root-to-leaf one.
type JoinTree struct {
	Parent []int
	Order  []int
}

// Root returns the index of the tree's root edge, or -1 for the empty
// tree.
func (t *JoinTree) Root() int {
	if t == nil || len(t.Order) == 0 {
		return -1
	}
	return t.Order[len(t.Order)-1]
}

// JoinTreeOf runs the GYO reduction over the join hypergraph with the
// given edges. When the hypergraph is α-acyclic it returns a join tree
// with the running-intersection property (for every attribute, the edges
// containing it form a connected subtree) and true; otherwise nil and
// false. Zero edges reduce to the empty tree; a single edge is its own
// root. The reduction is deterministic: ears are removed in ascending
// edge-index order, so equal inputs always produce equal trees — the
// parity suites lean on that.
func JoinTreeOf(edges []relation.Scheme) (*JoinTree, bool) {
	n := len(edges)
	tree := &JoinTree{Parent: make([]int, n)}
	for i := range tree.Parent {
		tree.Parent[i] = -1
	}
	if n == 0 {
		return tree, true
	}
	// Work on mutable attribute sets.
	sets := make([]map[relation.Attribute]bool, n)
	for i, e := range edges {
		sets[i] = make(map[relation.Attribute]bool, e.Len())
		for _, a := range e.Attrs() {
			sets[i][a] = true
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n

	for aliveCount > 1 {
		progressed := false

		// Rule 1: remove attributes occurring in exactly one live edge.
		count := make(map[relation.Attribute]int)
		for i, e := range sets {
			if !alive[i] {
				continue
			}
			for a := range e {
				count[a]++
			}
		}
		for i, e := range sets {
			if !alive[i] {
				continue
			}
			for a := range e {
				if count[a] == 1 {
					delete(e, a)
					progressed = true
				}
			}
		}

		// Rule 2: remove edges contained in another live edge.
		for i := 0; i < n && aliveCount > 1; i++ {
			if !alive[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j || !alive[j] {
					continue
				}
				if containsAttrSet(sets[j], sets[i]) {
					alive[i] = false
					aliveCount--
					tree.Parent[i] = j
					tree.Order = append(tree.Order, i)
					progressed = true
					break
				}
			}
		}

		if !progressed {
			return nil, false
		}
	}
	// The last live edge is the root.
	for i := range alive {
		if alive[i] {
			tree.Order = append(tree.Order, i)
		}
	}
	return tree, true
}

// Acyclic reports whether the join hypergraph with the given edges is
// α-acyclic, without retaining the join tree.
func Acyclic(edges []relation.Scheme) bool {
	_, ok := JoinTreeOf(edges)
	return ok
}

// SchemesOf collects the schemes of the given relations — the join
// hypergraph's edges, in input order.
func SchemesOf(rels []*relation.Relation) []relation.Scheme {
	edges := make([]relation.Scheme, len(rels))
	for i, r := range rels {
		edges[i] = r.Scheme()
	}
	return edges
}

// containsAttrSet reports whether sub ⊆ super.
func containsAttrSet(super, sub map[relation.Attribute]bool) bool {
	if len(sub) > len(super) {
		return false
	}
	for a := range sub {
		if !super[a] {
			return false
		}
	}
	return true
}
