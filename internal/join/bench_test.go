package join

import (
	"fmt"
	"math/rand"
	"testing"

	"relquery/internal/relation"
)

func benchRelation(rng *rand.Rand, scheme relation.Scheme, rows, keys int) *relation.Relation {
	r := relation.New(scheme)
	for i := 0; i < rows; i++ {
		r.MustAdd(relation.TupleOf(
			fmt.Sprintf("k%d", rng.Intn(keys)),
			fmt.Sprintf("v%d", i),
		))
	}
	return r
}

// BenchmarkBinaryJoin compares the algorithms across input sizes.
// Expected shape: nested-loop quadratic, hash and sort-merge near-linear
// in |input| + |output|.
func BenchmarkBinaryJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, rows := range []int{100, 400} {
		left := benchRelation(rng, relation.MustScheme("K", "A"), rows, rows/10)
		right := benchRelation(rng, relation.MustScheme("K", "B"), rows, rows/10)
		for _, name := range Names() {
			alg, err := ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/rows=%d", name, rows), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := alg.Join(left, right); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMultiOrder compares sequential and greedy n-ary ordering on a
// star join where ordering matters.
func BenchmarkMultiOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	center := benchRelation(rng, relation.MustScheme("K", "A"), 300, 30)
	sat1 := benchRelation(rng, relation.MustScheme("K", "B"), 300, 30)
	sat2 := benchRelation(rng, relation.MustScheme("A", "C"), 300, 300)
	inputs := []*relation.Relation{sat2, sat1, center}
	for _, order := range []Order{Sequential, Greedy} {
		b.Run(order.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Multi(inputs, Hash{}, order, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
