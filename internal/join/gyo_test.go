package join

import (
	"testing"

	"relquery/internal/relation"
)

func schemesOfSpecs(t *testing.T, specs ...string) []relation.Scheme {
	t.Helper()
	out := make([]relation.Scheme, len(specs))
	for i, s := range specs {
		sc, err := relation.SchemeOf(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = sc
	}
	return out
}

func TestJoinTreeOfVerdicts(t *testing.T) {
	cases := []struct {
		name    string
		edges   []string
		acyclic bool
	}{
		{"empty", nil, true},
		{"single", []string{"A B C"}, true},
		{"chain", []string{"A B", "B C", "C D"}, true},
		{"star", []string{"A B", "A C", "A D"}, true},
		{"triangle", []string{"A B", "B C", "A C"}, false},
		{"triangle with cover", []string{"A B", "B C", "A C", "A B C"}, true},
		{"contained duplicate", []string{"A B", "A B"}, true},
		{"self-join", []string{"A B", "A B", "A B"}, true},
		{"disconnected", []string{"A B", "C D"}, true},
		{"disconnected with cycle", []string{"A B", "E F", "F G", "E G"}, false},
		{"snowflake", []string{"A B C", "A D", "B E", "C F"}, true},
		{"cycle of length four", []string{"A B", "B C", "C D", "D A"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			edges := schemesOfSpecs(t, tc.edges...)
			tree, ok := JoinTreeOf(edges)
			if ok != tc.acyclic {
				t.Fatalf("JoinTreeOf acyclic = %v, want %v", ok, tc.acyclic)
			}
			if Acyclic(edges) != tc.acyclic {
				t.Errorf("Acyclic disagrees with JoinTreeOf")
			}
			if !ok {
				if tree != nil {
					t.Errorf("cyclic verdict returned a tree: %+v", tree)
				}
				return
			}
			checkJoinTree(t, edges, tree)
		})
	}
}

// checkJoinTree verifies the structural contract of a GYO join tree:
// Order is a permutation of the edges ending in the root, every non-root
// edge has a live parent removed after it, and the tree has the
// running-intersection property (for every attribute, the edges
// containing it induce a connected subtree).
func checkJoinTree(t *testing.T, edges []relation.Scheme, tree *JoinTree) {
	t.Helper()
	n := len(edges)
	if len(tree.Parent) != n || len(tree.Order) != n {
		t.Fatalf("malformed tree: %d edges, Parent %d, Order %d", n, len(tree.Parent), len(tree.Order))
	}
	pos := make([]int, n) // removal position of each edge
	seen := make([]bool, n)
	for k, i := range tree.Order {
		if i < 0 || i >= n || seen[i] {
			t.Fatalf("Order is not a permutation: %v", tree.Order)
		}
		seen[i] = true
		pos[i] = k
	}
	root := tree.Root()
	if n > 0 && tree.Parent[root] != -1 {
		t.Fatalf("root %d has parent %d", root, tree.Parent[root])
	}
	for i := 0; i < n; i++ {
		p := tree.Parent[i]
		if i == root {
			continue
		}
		if p < 0 || p >= n || p == i {
			t.Fatalf("edge %d has invalid parent %d", i, p)
		}
		if pos[p] <= pos[i] {
			t.Errorf("edge %d removed after its parent %d", i, p)
		}
	}
	if !runningIntersection(edges, tree.Parent) {
		t.Errorf("tree lacks the running-intersection property: parents %v", tree.Parent)
	}
}

func TestJoinTreeOfDeterministic(t *testing.T) {
	edges := schemesOfSpecs(t, "A B C", "A D", "B E", "C F", "F G")
	first, ok := JoinTreeOf(edges)
	if !ok {
		t.Fatal("snowflake chain should be acyclic")
	}
	for i := 0; i < 10; i++ {
		tree, ok := JoinTreeOf(edges)
		if !ok {
			t.Fatal("verdict changed across runs")
		}
		if len(tree.Order) != len(first.Order) {
			t.Fatal("order length changed across runs")
		}
		for k := range tree.Order {
			if tree.Order[k] != first.Order[k] || tree.Parent[k] != first.Parent[k] {
				t.Fatalf("tree changed across runs: %+v vs %+v", tree, first)
			}
		}
	}
}

func TestJoinTreeRootEmpty(t *testing.T) {
	tree, ok := JoinTreeOf(nil)
	if !ok || tree.Root() != -1 {
		t.Errorf("empty hypergraph: ok=%v root=%d", ok, tree.Root())
	}
	var nilTree *JoinTree
	if nilTree.Root() != -1 {
		t.Error("nil tree root should be -1")
	}
}
