package join

import (
	"fmt"

	"relquery/internal/governor"
)

// Governed is implemented by algorithms that accept a resource governor
// (internal/governor). WithGovernor returns a copy of the algorithm whose
// hot loops call the governor's cooperative checkpoints at tuple-batch
// granularity, so a canceled context, an expired deadline or a blown row
// budget aborts the join with a typed sentinel instead of running to
// completion. Mirrors Metered: the algebra evaluator wires its governor
// through this seam without naming concrete algorithm types. All
// algorithms in this package are Governed; a nil governor restores the
// ungoverned zero-overhead path.
type Governed interface {
	Algorithm
	WithGovernor(g *governor.Governor) Algorithm
}

// checkBatch is how many tuples a governed loop processes between
// row-budget checks and fault-injection crossings. Tied to the governor's
// own tick amortization so both checks share the batch boundary.
const checkBatch = governor.CheckEvery

// recoveredError converts a recovered panic value into an error,
// preserving error payloads (like *fault.InjectedPanic) for errors.As.
func recoveredError(what string, rec any) error {
	if err, ok := rec.(error); ok {
		return fmt.Errorf("join: %s panicked: %w", what, err)
	}
	return fmt.Errorf("join: %s panicked: %v", what, rec)
}

var (
	_ Governed = NestedLoop{}
	_ Governed = Hash{}
	_ Governed = SortMerge{}
	_ Governed = Parallel{}
	_ Governed = Generic{}
	_ Governed = Yannakakis{}
)
