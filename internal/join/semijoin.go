package join

import (
	"relquery/internal/fault"
	"relquery/internal/governor"
	"relquery/internal/relation"
)

// Semijoin computes r ⋉ s: the tuples of r that join with at least one
// tuple of s on their shared attributes. When the schemes are disjoint,
// the result is r itself if s is nonempty and empty otherwise.
func Semijoin(r, s *relation.Relation) (*relation.Relation, error) {
	return SemijoinWith(r, s, nil)
}

// SemijoinWith is Semijoin under a governor: both scan loops tick g, so
// a semijoin pass over a large relation aborts at tuple granularity on
// cancel, deadline or budget violation. A nil governor is Semijoin.
func SemijoinWith(r, s *relation.Relation, g *governor.Governor) (*relation.Relation, error) {
	fault.Hit(fault.Semijoin)
	shared := r.Scheme().Intersect(s.Scheme())
	keyR, err := projectionKeys(r.Scheme(), shared)
	if err != nil {
		return nil, err
	}
	keyS, err := projectionKeys(s.Scheme(), shared)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]struct{}, s.Len())
	var loopErr error
	s.Each(func(t relation.Tuple) bool {
		if loopErr = g.Tick(); loopErr != nil {
			return false
		}
		keys[keyS(t)] = struct{}{}
		return true
	})
	if loopErr != nil {
		return nil, loopErr
	}
	out := relation.New(r.Scheme())
	r.Each(func(t relation.Tuple) bool {
		if loopErr = g.Tick(); loopErr != nil {
			return false
		}
		if _, ok := keys[keyR(t)]; ok {
			if _, err := out.Add(t); err != nil {
				loopErr = err
				return false
			}
		}
		return true
	})
	if loopErr != nil {
		return nil, loopErr
	}
	return out, nil
}

// projectionKeys builds a closure mapping a tuple to the encoding of its
// projection onto `onto`.
func projectionKeys(src, onto relation.Scheme) (func(relation.Tuple) string, error) {
	pos := make([]int, onto.Len())
	for i := 0; i < onto.Len(); i++ {
		p, ok := src.Pos(onto.Attr(i))
		if !ok {
			return nil, errAttrMissing(onto.Attr(i), src)
		}
		pos[i] = p
	}
	return func(t relation.Tuple) string {
		sub := make(relation.Tuple, len(pos))
		for i, p := range pos {
			sub[i] = t[p]
		}
		return sub.Key()
	}, nil
}

func errAttrMissing(a relation.Attribute, s relation.Scheme) error {
	return &attrError{attr: a, scheme: s}
}

type attrError struct {
	attr   relation.Attribute
	scheme relation.Scheme
}

func (e *attrError) Error() string {
	return "join: attribute " + string(e.attr) + " not in scheme " + e.scheme.String()
}

// ReduceFixpoint runs pairwise semijoin reduction to fixpoint: every
// relation is repeatedly semijoined against every other until nothing
// shrinks. The reduction is sound for any join (a removed tuple joins with
// nothing on some shared scheme, so it cannot contribute to the result)
// but complete only for acyclic joins — deps.FullReduce is the two-sweep
// version with that guarantee. It returns the reduced relations and the
// number of passes performed.
func ReduceFixpoint(rels []*relation.Relation) ([]*relation.Relation, int, error) {
	out := make([]*relation.Relation, len(rels))
	copy(out, rels)
	passes := 0
	for {
		passes++
		changed := false
		for i := range out {
			for j := range out {
				if i == j || out[i].Scheme().Disjoint(out[j].Scheme()) {
					continue
				}
				reduced, err := Semijoin(out[i], out[j])
				if err != nil {
					return nil, passes, err
				}
				if reduced.Len() < out[i].Len() {
					out[i] = reduced
					changed = true
				}
			}
		}
		if !changed {
			return out, passes, nil
		}
	}
}
