package join

import (
	"hash/fnv"
	"runtime"
	"sync"

	"relquery/internal/fault"
	"relquery/internal/governor"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// Parallel is a parallel hash join with two execution strategies chosen
// by the shape of the key domain:
//
//   - partitioned: both inputs are hash-partitioned on the
//     shared-attribute key into one bucket per worker, bucket pairs are
//     joined by a worker pool, and the per-bucket results are merged in
//     bucket order. Used when the build side has enough distinct keys
//     (≥ PartitionKeyFactor × workers) for the buckets to balance.
//   - broadcast: the build-side hash table is built once and shared
//     read-only by all workers, and the probe side is split into
//     contiguous chunks. Used when the key domain is small or skewed —
//     the regime of the paper's gadget relations, whose shared columns
//     range over a handful of symbols, where key partitioning would
//     funnel everything through one bucket.
//
// Both strategies are deterministic regardless of goroutine scheduling:
// chunk and bucket boundaries are pure functions of the inputs and the
// merge walks them in index order. Under set semantics the result always
// equals the sequential algorithms'; the broadcast path even reproduces
// the sequential hash join's insertion order exactly.
//
// A natural join of sets never produces duplicate tuples (an output
// tuple determines its left and right source tuples), so workers emit
// without deduplicating; the merge still verifies key disjointness.
//
// Joins that cannot benefit — no shared attributes (a cross product has
// a single empty key) or inputs below MinParallelRows — fall back to the
// sequential Hash join.
//
// Failure semantics: workers poll the shared governor per tuple, so the
// first checkpoint violation (cancel, deadline, row budget) is sticky
// and every other worker drains within one batch of it. A panic on a
// worker goroutine is recovered on that goroutine, recorded as the
// evaluation's failure, and surfaces as an error from Join — never a
// crashed process. All workers are joined (wg.Wait) before Join returns,
// so no goroutine outlives the call, even on failure.
type Parallel struct {
	// Workers is the number of partitions and worker goroutines;
	// values < 1 mean runtime.GOMAXPROCS(0).
	Workers int
	// Metrics, when non-nil, receives per-join counters: built and probed
	// count build- and probe-side rows, and the strategy chosen is
	// recorded as a partitioned join (with its bucket count), a broadcast
	// join, or a sequential fallback.
	Metrics *obs.Metrics
	// Gov, when non-nil, is polled by every worker per tuple; its sticky
	// failure is what lets workers drain promptly after a peer trips a
	// checkpoint or panics.
	Gov *governor.Governor
}

// MinParallelRows is the combined input size below which Parallel
// delegates to the sequential Hash join: partitioning overhead dominates
// on tiny inputs.
const MinParallelRows = 256

// PartitionKeyFactor scales the partitioned-vs-broadcast decision: the
// partitioned strategy needs at least this many distinct build-side keys
// per worker to expect balanced buckets.
const PartitionKeyFactor = 8

// Name implements Algorithm.
func (Parallel) Name() string { return "parallel" }

// WithMetrics implements Metered.
func (p Parallel) WithMetrics(m *obs.Metrics) Algorithm {
	p.Metrics = m
	return p
}

// WithGovernor implements Governed.
func (p Parallel) WithGovernor(g *governor.Governor) Algorithm {
	p.Gov = g
	return p
}

func (p Parallel) workers() int {
	if p.Workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Workers
}

// EffectiveWorkers reports the worker count the join will actually use
// (resolving the GOMAXPROCS default), for trace annotation.
func (p Parallel) EffectiveWorkers() int { return p.workers() }

// keyedTuple carries a tuple together with its serialized join key so the
// key is computed exactly once, during partitioning.
type keyedTuple struct {
	key string
	t   relation.Tuple
}

// firstFail collects the first failure across a join's worker pool and,
// when a governor is attached, makes it the evaluation's sticky failure
// so peer workers drain on their next poll.
type firstFail struct {
	gov  *governor.Governor
	once sync.Once
	err  error
}

func (f *firstFail) fail(err error) {
	if err == nil {
		return
	}
	f.gov.Fail(err)
	f.once.Do(func() { f.err = err })
}

// recoverTo converts a worker panic into a recorded failure; deferred on
// every worker goroutine.
func (f *firstFail) recoverTo(what string) {
	if rec := recover(); rec != nil {
		f.fail(recoveredError(what, rec))
	}
}

// Join implements Algorithm.
func (p Parallel) Join(l, r *relation.Relation) (*relation.Relation, error) {
	fault.Hit(fault.JoinStart)
	shared := l.Scheme().Intersect(r.Scheme())
	w := p.workers()
	if w <= 1 || shared.Len() == 0 || l.Len()+r.Len() < MinParallelRows {
		p.Metrics.SequentialFallback()
		return Hash{Metrics: p.Metrics, Gov: p.Gov}.Join(l, r)
	}

	kl := newKeyExtractor(l.Scheme(), shared)
	kr := newKeyExtractor(r.Scheme(), shared)
	c := newCombiner(l.Scheme(), r.Scheme())

	// Build on the smaller input, as the sequential hash join does.
	build, probe := l, r
	keyBuild, keyProbe := kl, kr
	buildIsLeft := true
	if r.Len() < l.Len() {
		build, probe = r, l
		keyBuild, keyProbe = kr, kl
		buildIsLeft = false
	}
	table := make(map[string][]relation.Tuple, build.Len())
	var err error
	build.Each(func(t relation.Tuple) bool {
		if err = p.Gov.Tick(); err != nil {
			return false
		}
		k := keyBuild.key(t)
		table[k] = append(table[k], t)
		return true
	})
	if err != nil {
		return nil, err
	}

	ff := &firstFail{gov: p.Gov}
	var tuples [][]relation.Tuple
	if len(table) >= PartitionKeyFactor*w {
		p.Metrics.Partitioned(w)
		tuples = p.partitioned(table, probe, keyProbe, c, buildIsLeft, w, ff)
	} else {
		p.Metrics.Broadcast()
		tuples = p.broadcast(table, probe, keyProbe, c, buildIsLeft, w, ff)
	}
	if ff.err != nil {
		return nil, ff.err
	}
	// Merge in worker order. Output tuples from different chunks/buckets
	// are necessarily distinct (a natural-join output tuple determines
	// its source pair, and each pair is processed by exactly one
	// worker), so FromDistinctTuples assembles the result without
	// cloning, key serialization or index construction.
	out, err := relation.FromDistinctTuples(c.out, tuples...)
	if err != nil {
		return nil, err
	}
	if err := p.Gov.CheckRows(out.Len()); err != nil {
		return nil, err
	}
	p.Metrics.JoinWork(build.Len(), probe.Len(), out.Len())
	p.Metrics.ObserveJoin(out.Len())
	return out, nil
}

// broadcast shares the build table read-only across workers and splits
// the probe side into w contiguous chunks. Emission order is exactly the
// sequential hash join's probe order.
func (p Parallel) broadcast(table map[string][]relation.Tuple, probe *relation.Relation, keyProbe keyExtractor, c combiner, buildIsLeft bool, w int, ff *firstFail) [][]relation.Tuple {
	total := probe.Len()
	chunk := (total + w - 1) / w
	tuples := make([][]relation.Tuple, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		lo := min(wi*chunk, total)
		hi := min(lo+chunk, total)
		if lo >= hi {
			continue // total < w: trailing workers have no rows
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			defer ff.recoverTo("parallel broadcast worker")
			fault.Hit(fault.ParallelWorker)
			var ts []relation.Tuple
			for i := lo; i < hi; i++ {
				if err := p.Gov.Tick(); err != nil {
					ff.fail(err)
					return
				}
				pt := probe.Tuple(i)
				ts = emitMatches(table[keyProbe.key(pt)], pt, c, buildIsLeft, ts)
			}
			tuples[wi] = ts
		}(wi, lo, hi)
	}
	wg.Wait()
	return tuples
}

// partitioned splits the build table and the probe side into w buckets
// by key hash and joins bucket pairs on the worker pool.
func (p Parallel) partitioned(table map[string][]relation.Tuple, probe *relation.Relation, keyProbe keyExtractor, c combiner, buildIsLeft bool, w int, ff *firstFail) [][]relation.Tuple {
	// Scatter the already-built table into per-bucket mini-tables
	// without re-serializing any key.
	miniTables := make([]map[string][]relation.Tuple, w)
	for b := range miniTables {
		miniTables[b] = make(map[string][]relation.Tuple)
	}
	for k, ts := range table {
		b := bucketOf(k, w)
		miniTables[b][k] = ts
	}
	probeBuckets := partition(probe, keyProbe, w, p.Gov, ff)
	if ff.err != nil {
		return nil
	}

	tuples := make([][]relation.Tuple, w)
	var wg sync.WaitGroup
	for b := 0; b < w; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			defer ff.recoverTo("parallel partitioned worker")
			fault.Hit(fault.ParallelWorker)
			var ts []relation.Tuple
			for _, kt := range probeBuckets[b] {
				if err := p.Gov.Tick(); err != nil {
					ff.fail(err)
					return
				}
				ts = emitMatches(miniTables[b][kt.key], kt.t, c, buildIsLeft, ts)
			}
			tuples[b] = ts
		}(b)
	}
	wg.Wait()
	return tuples
}

// emitMatches combines the probe tuple with every matching build tuple,
// appending the fresh output tuples.
func emitMatches(matches []relation.Tuple, pt relation.Tuple, c combiner, buildIsLeft bool, tuples []relation.Tuple) []relation.Tuple {
	for _, m := range matches {
		if buildIsLeft {
			tuples = append(tuples, c.combine(m, pt))
		} else {
			tuples = append(tuples, c.combine(pt, m))
		}
	}
	return tuples
}

// partition scatters rel into n buckets by hash of the join key,
// computing keys in parallel. Each worker takes a contiguous index range
// and scatters into private sub-buckets; concatenating sub-buckets in
// worker order preserves the relation's tuple order within every bucket,
// which keeps the overall join deterministic.
func partition(rel *relation.Relation, ke keyExtractor, n int, gov *governor.Governor, ff *firstFail) [][]keyedTuple {
	total := rel.Len()
	chunk := (total + n - 1) / n
	sub := make([][][]keyedTuple, n) // sub[worker][bucket]
	var wg sync.WaitGroup
	for wi := 0; wi < n; wi++ {
		lo := min(wi*chunk, total)
		hi := min(lo+chunk, total)
		if lo >= hi {
			continue // total < n: trailing workers have no rows
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			defer ff.recoverTo("parallel partition worker")
			fault.Hit(fault.ParallelWorker)
			mine := make([][]keyedTuple, n)
			for i := lo; i < hi; i++ {
				if err := gov.Tick(); err != nil {
					ff.fail(err)
					return
				}
				t := rel.Tuple(i)
				k := ke.key(t)
				b := bucketOf(k, n)
				mine[b] = append(mine[b], keyedTuple{key: k, t: t})
			}
			sub[wi] = mine
		}(wi, lo, hi)
	}
	wg.Wait()

	buckets := make([][]keyedTuple, n)
	for b := 0; b < n; b++ {
		size := 0
		for wi := 0; wi < n; wi++ {
			if sub[wi] == nil {
				continue // worker wi had an empty chunk
			}
			size += len(sub[wi][b])
		}
		bucket := make([]keyedTuple, 0, size)
		for wi := 0; wi < n; wi++ {
			if sub[wi] == nil {
				continue
			}
			bucket = append(bucket, sub[wi][b]...)
		}
		buckets[b] = bucket
	}
	return buckets
}

func bucketOf(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

var _ Algorithm = Parallel{}
