package join_test

import (
	"fmt"
	"testing"

	"relquery/internal/cnf"
	"relquery/internal/join"
	"relquery/internal/reduction"
	"relquery/internal/relation"
)

// gadgetFold materializes the projection legs of φ_G(R_G) for a
// cnf/families formula. Folding the legs left to right is the paper's
// intermediate-blow-up workload: each successive join multiplies the
// accumulated relation, so the later binary joins are large — exactly
// where partitioned parallelism pays.
func gadgetLegs(b *testing.B, g *cnf.Formula) []*relation.Relation {
	b.Helper()
	c, err := reduction.New(g)
	if err != nil {
		b.Fatal(err)
	}
	legs := []*relation.Relation{}
	f, err := c.R.Project(c.FScheme())
	if err != nil {
		b.Fatal(err)
	}
	legs = append(legs, f)
	for j := 1; j <= c.M(); j++ {
		tj, err := c.TJScheme(j)
		if err != nil {
			b.Fatal(err)
		}
		leg, err := c.R.Project(tj)
		if err != nil {
			b.Fatal(err)
		}
		legs = append(legs, leg)
	}
	return legs
}

func familyWorkloads(b *testing.B) []struct {
	name string
	g    *cnf.Formula
} {
	b.Helper()
	xor2, err := cnf.XorChain(2, true)
	if err != nil {
		b.Fatal(err)
	}
	xor2, _ = cnf.Compact(xor2)
	php1, err := cnf.Pigeonhole(1)
	if err != nil {
		b.Fatal(err)
	}
	php1, _ = cnf.Compact(php1)
	xor3, err := cnf.XorChain(3, true)
	if err != nil {
		b.Fatal(err)
	}
	xor3, _ = cnf.Compact(xor3)
	return []struct {
		name string
		g    *cnf.Formula
	}{
		{"xorchain2", xor2},
		{"pigeonhole1", php1},
		{"xorchain3", xor3}, // the largest workload: the 1.5x criterion is judged here
	}
}

// BenchmarkParallelGadgetFold compares the sequential hash join against
// the partitioned parallel join at 1, 2 and 8 workers on the
// cnf/families gadget folds. Expected shape: parallel/w=1 ≈ hash
// (fallback overhead only); parallel/w=8 well under sequential hash on
// the larger families.
func BenchmarkParallelGadgetFold(b *testing.B) {
	for _, fam := range familyWorkloads(b) {
		legs := gadgetLegs(b, fam.g)
		algs := []struct {
			name string
			alg  join.Algorithm
		}{
			{"hash", join.Hash{}},
			{"parallel-1", join.Parallel{Workers: 1}},
			{"parallel-2", join.Parallel{Workers: 2}},
			{"parallel-8", join.Parallel{Workers: 8}},
		}
		for _, a := range algs {
			b.Run(fmt.Sprintf("%s/%s", fam.name, a.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := join.Multi(legs, a.alg, join.Sequential, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
