package join

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"relquery/internal/relation"
)

func TestAnalyze(t *testing.T) {
	r := rel(t, "A B", "1 x", "2 x", "2 y")
	s := Analyze(r)
	if s.Rows != 3 {
		t.Errorf("Rows = %d", s.Rows)
	}
	if s.Distinct["A"] != 2 || s.Distinct["B"] != 2 {
		t.Errorf("Distinct = %v", s.Distinct)
	}
	empty := Analyze(relation.New(relation.MustScheme("A")))
	if empty.Rows != 0 || empty.Distinct["A"] != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestEstimateJoinSizeExactOnKeys(t *testing.T) {
	// Key-foreign-key join: every left tuple matches exactly one right
	// tuple; the estimate is exact under uniformity.
	l := rel(t, "A K", "1 k1", "2 k2", "3 k1")
	r := rel(t, "K B", "k1 x", "k2 y")
	est := EstimateJoinSize(l.Scheme(), Analyze(l), r.Scheme(), Analyze(r))
	got, err := (Hash{}).Join(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-float64(got.Len())) > 0.01 {
		t.Errorf("estimate %.2f, actual %d", est, got.Len())
	}
	// Cross product estimate: exact.
	dl := rel(t, "A", "1", "2")
	dr := rel(t, "B", "x", "y", "z")
	est = EstimateJoinSize(dl.Scheme(), Analyze(dl), dr.Scheme(), Analyze(dr))
	if est != 6 {
		t.Errorf("cross estimate = %.2f, want 6", est)
	}
}

func TestPlanEstimatedMatchesGreedy(t *testing.T) {
	chain := []*relation.Relation{
		rel(t, "A B", "1 x", "2 y"),
		rel(t, "B C", "x p", "y q"),
		rel(t, "C D", "p 7", "q 8", "q 9"),
	}
	want, err := Multi(chain, Hash{}, Greedy, nil)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	got, err := PlanEstimated(chain, Hash{}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("PlanEstimated result differs from greedy")
	}
	if joins, _, _ := stats.Snapshot(); joins != 2 {
		t.Errorf("Joins = %d", joins)
	}
	if _, err := PlanEstimated(nil, Hash{}, nil); err == nil {
		t.Error("empty input accepted")
	}
	one := []*relation.Relation{rel(t, "A", "1")}
	single, err := PlanEstimated(one, Hash{}, nil)
	if err != nil || single.Len() != 1 {
		t.Errorf("single input: %v %v", single, err)
	}
}

func TestQuickPlanEstimatedCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rels := []*relation.Relation{
			randomRelation(rng, relation.MustScheme("A", "B"), 8),
			randomRelation(rng, relation.MustScheme("B", "C"), 8),
			randomRelation(rng, relation.MustScheme("C", "D"), 8),
			randomRelation(rng, relation.MustScheme("A", "D"), 8),
		}
		want, err := Multi(rels, Hash{}, Greedy, nil)
		if err != nil {
			return false
		}
		got, err := PlanEstimated(rels, Hash{}, nil)
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPlanEstimatedAvoidsSkewTrap(t *testing.T) {
	// The hub workload: size-based greedy sees equal sizes everywhere, but
	// the estimate knows the hub join explodes (1 distinct value) and the
	// selective join doesn't.
	// R1 and R2 meet on a single hub value (their join is N×N); R3 keeps
	// only one C value, so R2 ∗ R3 has one row and the result has N. The
	// size-based greedy planner sees identical size products and walks
	// into the hub; the estimate sees V(B) = 1 vs V(C) = N and starts with
	// the selective pair.
	n := 40
	r1 := relation.New(relation.MustScheme("A", "B"))
	r2 := relation.New(relation.MustScheme("B", "C"))
	r3 := relation.New(relation.MustScheme("C", "D"))
	cval := func(j int) string {
		return string(rune('c')) + string(rune('0'+j%10)) + string(rune('A'+j/10))
	}
	for j := 0; j < n; j++ {
		r1.MustAdd(relation.TupleOf(string(rune('a'))+string(rune('0'+j%10))+string(rune('A'+j/10)), "hub"))
		r2.MustAdd(relation.TupleOf("hub", cval(j)))
	}
	r3.MustAdd(relation.TupleOf(cval(0), "z"))
	var est, greedy Stats
	wantRel, err := Multi([]*relation.Relation{r1, r2, r3}, Hash{}, Greedy, &greedy)
	if err != nil {
		t.Fatal(err)
	}
	gotRel, err := PlanEstimated([]*relation.Relation{r1, r2, r3}, Hash{}, &est)
	if err != nil {
		t.Fatal(err)
	}
	if !gotRel.Equal(wantRel) {
		t.Fatal("results differ")
	}
	// The estimated plan joins R2*R3 first (selective), never building the
	// N*N hub blowup that a wrong order pays.
	_, estMax, _ := est.Snapshot()
	_, greedyMax, _ := greedy.Snapshot()
	if estMax > greedyMax {
		t.Errorf("estimated plan worse than greedy: %d > %d", estMax, greedyMax)
	}
	if estMax >= n*n {
		t.Errorf("estimated plan built the hub blowup: %d", estMax)
	}
}
