package join

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"relquery/internal/fault"
	"relquery/internal/governor"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// leakInputs builds a join pair large enough for the parallel paths
// (combined size ≥ MinParallelRows) whose build side has exactly
// distinctKeys distinct join keys — the knob that selects the
// partitioned strategy (many keys) or the broadcast strategy (few keys).
func leakInputs(t *testing.T, distinctKeys int) (l, r *relation.Relation) {
	t.Helper()
	l = relation.New(relation.MustScheme("K", "A"))
	r = relation.New(relation.MustScheme("K", "B"))
	for i := 0; i < 1024; i++ {
		l.MustAdd(relation.TupleOf(fmt.Sprintf("k%d", i%distinctKeys), fmt.Sprintf("a%d", i)))
	}
	for i := 0; i < 300; i++ {
		r.MustAdd(relation.TupleOf(fmt.Sprintf("k%d", i%distinctKeys), fmt.Sprintf("b%d", i)))
	}
	return l, r
}

// settleGoroutines waits for the process goroutine count to return to the
// pre-join level. Parallel.Join joins all workers (wg.Wait) before
// returning, so the count should already be settled; the loop only
// absorbs unrelated runtime goroutines winding down.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before join, %d after settling", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelCancelDrainsWorkers cancels the evaluation's context from
// inside the first parallel worker, on both the partitioned and the
// broadcast path: Join must return the typed governor.ErrCanceled, and
// no worker goroutine may outlive the call.
func TestParallelCancelDrainsWorkers(t *testing.T) {
	cases := []struct {
		name        string
		distinct    int
		wantChoice  func(s obs.MetricsSnapshot) int64
		choiceLabel string
	}{
		{"partitioned", 300, func(s obs.MetricsSnapshot) int64 { return s.PartitionedJoins }, "partitioned_joins"},
		{"broadcast", 5, func(s obs.MetricsSnapshot) int64 { return s.BroadcastJoins }, "broadcast_joins"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, r := leakInputs(t, tc.distinct)
			// Confirm the workload actually selects the intended strategy.
			var probe obs.Metrics
			if _, err := (Parallel{Workers: 4, Metrics: &probe}).Join(l, r); err != nil {
				t.Fatal(err)
			}
			if n := tc.wantChoice(probe.Snapshot()); n != 1 {
				t.Fatalf("workload did not select the %s strategy (%s=%d)", tc.name, tc.choiceLabel, n)
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			restore := fault.Set(fault.NewScript(fault.Rule{
				Point: fault.ParallelWorker, Act: fault.Call, Func: cancel,
			}))
			defer restore()
			gov := governor.New(ctx, governor.Limits{})
			before := runtime.NumGoroutine()
			_, err := (Parallel{Workers: 4, Gov: gov}).Join(l, r)
			if !errors.Is(err, governor.ErrCanceled) {
				t.Fatalf("want governor.ErrCanceled, got %v", err)
			}
			settleGoroutines(t, before)
		})
	}
}

// TestParallelWorkerPanicDrains panics a worker goroutine on both
// parallel paths: the panic must be recovered on the worker, surface from
// Join as an error carrying the *fault.InjectedPanic payload, and leave
// no goroutine behind.
func TestParallelWorkerPanicDrains(t *testing.T) {
	for _, tc := range []struct {
		name     string
		distinct int
	}{
		{"partitioned", 300},
		{"broadcast", 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, r := leakInputs(t, tc.distinct)
			restore := fault.Set(fault.NewScript(fault.Rule{
				Point: fault.ParallelWorker, Act: fault.Panic,
			}))
			defer restore()
			before := runtime.NumGoroutine()
			_, err := (Parallel{Workers: 4}).Join(l, r)
			if err == nil {
				t.Fatal("worker panic did not surface as an error")
			}
			var ip *fault.InjectedPanic
			if !errors.As(err, &ip) {
				t.Fatalf("worker panic lost its payload: %v", err)
			}
			settleGoroutines(t, before)
		})
	}
}

// TestParallelPeersDrainOnStickyFailure verifies the sticky-failure
// broadcast: when one worker trips a checkpoint, the shared governor
// makes every peer's next poll fail, so the join returns the first error
// rather than hanging on healthy workers — and a subsequent governed run
// under a fresh governor is unaffected.
func TestParallelPeersDrainOnStickyFailure(t *testing.T) {
	l, r := leakInputs(t, 300)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	restore := fault.Set(fault.NewScript(fault.Rule{
		Point: fault.ParallelWorker, N: 2, Act: fault.Call, Func: cancel,
	}))
	gov := governor.New(ctx, governor.Limits{})
	_, err := (Parallel{Workers: 4, Gov: gov}).Join(l, r)
	restore()
	if !errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("want governor.ErrCanceled, got %v", err)
	}
	if gov.Err() == nil {
		t.Fatal("governor did not latch the sticky failure")
	}

	// A fresh governor on a live context runs the same join to completion
	// and matches the sequential hash join exactly.
	gov2 := governor.New(context.Background(), governor.Limits{MaxIntermediateRows: 1 << 20})
	got, err := (Parallel{Workers: 4, Gov: gov2}).Join(l, r)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (Hash{}).Join(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if relation.RenderSorted(got) != relation.RenderSorted(want) {
		t.Fatal("governed parallel join differs from sequential hash join")
	}
}
