package join

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"relquery/internal/obs"
	"relquery/internal/relation"
)

// multiHash is the binary-plan reference the generic join must agree
// with on every input.
func multiHash(t *testing.T, inputs []*relation.Relation) *relation.Relation {
	t.Helper()
	out, err := Multi(inputs, Hash{}, Greedy, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGenericMatchesMultiOnFixedCases(t *testing.T) {
	cases := map[string][]*relation.Relation{
		"triangle": {
			rel(t, "A B", "1 1", "1 2", "2 1", "3 3"),
			rel(t, "B C", "1 1", "2 1", "1 2", "3 3"),
			rel(t, "A C", "1 1", "1 2", "2 2", "3 3"),
		},
		"chain": {
			rel(t, "A B", "1 x", "2 x", "2 y"),
			rel(t, "B C", "x p", "y q"),
			rel(t, "C D", "p 7", "q 8", "q 9"),
		},
		"binary": {
			rel(t, "A B", "1 x", "2 x", "2 y"),
			rel(t, "B C", "x p", "y q", "z r"),
		},
		"cross": {
			rel(t, "A", "1", "2"),
			rel(t, "B", "x", "y", "z"),
		},
		"duplicate schemes": {
			rel(t, "A B", "1 x", "2 y", "3 z"),
			rel(t, "A B", "1 x", "2 y"),
			rel(t, "B A", "x 1"),
		},
		"shared and cross mixed": {
			rel(t, "A B", "1 x", "2 y"),
			rel(t, "B C", "x p", "y q"),
			rel(t, "D", "7", "8"),
		},
		"empty scheme passthrough": {
			rel(t, "A", "1", "2"),
			rel(t, ""),
		},
	}
	// The nullary-scheme relation holding the empty tuple is the join's
	// neutral element.
	cases["empty scheme passthrough"][1].MustAdd(relation.Tuple{})

	for name, inputs := range cases {
		t.Run(name, func(t *testing.T) {
			want := multiHash(t, inputs)
			got, gs, err := Generic{}.JoinAllStats(inputs)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("generic join = %v, want %v", got.Sorted(), want.Sorted())
			}
			if !got.Scheme().Equal(want.Scheme()) {
				t.Fatalf("scheme %v, want set-equal to %v", got.Scheme(), want.Scheme())
			}
			if got.Len() > 0 && (gs.Intersections == 0 || gs.Candidates == 0) {
				t.Errorf("non-empty join reported no search effort: %+v", gs)
			}
		})
	}
}

func TestGenericEdgeCases(t *testing.T) {
	if _, err := (Generic{}).JoinAll(nil); err == nil {
		t.Error("JoinAll(nil) succeeded")
	}
	one := rel(t, "A", "1")
	got, err := Generic{}.JoinAll([]*relation.Relation{one})
	if err != nil || !got.Equal(one) {
		t.Errorf("JoinAll(single) = %v, %v", got, err)
	}
	empty := rel(t, "B C")
	out, err := Generic{}.JoinAll([]*relation.Relation{one, empty, rel(t, "C D", "p 7")})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("join with empty input has %d tuples", out.Len())
	}
	if !out.Scheme().Equal(relation.MustScheme("A", "B", "C", "D")) {
		t.Errorf("empty join scheme = %v", out.Scheme())
	}
}

// TestGenericBinaryAlgorithm exercises Generic through the plain binary
// Algorithm interface the rest of the engine uses.
func TestGenericBinaryAlgorithm(t *testing.T) {
	l := bigRel(11, relation.MustScheme("K", "A"), 300, 17)
	r := bigRel(12, relation.MustScheme("K", "B"), 400, 17)
	want, err := Hash{}.Join(l, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Generic{}.Join(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("generic binary join differs from hash: %d vs %d tuples", got.Len(), want.Len())
	}
}

// TestQuickGenericMatchesMulti cross-checks the generic join against the
// greedy binary plan on random 3-ary joins.
func TestQuickGenericMatchesMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randRel := func(spec string, rows, vals int) *relation.Relation {
		s := relation.MustScheme()
		var err error
		if s, err = relation.SchemeOf(spec); err != nil {
			t.Fatal(err)
		}
		r := relation.New(s)
		for i := 0; i < rows; i++ {
			row := make([]string, s.Len())
			for j := range row {
				row[j] = fmt.Sprintf("v%d", rng.Intn(vals))
			}
			r.MustAdd(relation.TupleOf(row...))
		}
		return r
	}
	for trial := 0; trial < 50; trial++ {
		inputs := []*relation.Relation{
			randRel("A B", 1+rng.Intn(20), 4),
			randRel("B C", 1+rng.Intn(20), 4),
			randRel("C A", 1+rng.Intn(20), 4),
		}
		want := multiHash(t, inputs)
		got, err := Generic{}.JoinAll(inputs)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: generic join differs (%d vs %d tuples)", trial, got.Len(), want.Len())
		}
	}
}

// TestGenericNeverExceedsAGM is the worst-case-optimality contract at the
// unit level: the generic join materializes only its output, which the
// AGM bound dominates.
func TestGenericNeverExceedsAGM(t *testing.T) {
	inputs := []*relation.Relation{
		bigRel(21, relation.MustScheme("A", "B"), 200, 13),
		bigRel(22, relation.MustScheme("B", "C"), 200, 13),
		bigRel(23, relation.MustScheme("A", "C"), 200, 13),
	}
	out, err := Generic{}.JoinAll(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if bound := AGMBoundOf(inputs); float64(out.Len()) > bound+1e-6 {
		t.Errorf("output %d exceeds AGM bound %g", out.Len(), bound)
	}
}

func TestGenericMetrics(t *testing.T) {
	var m obs.Metrics
	alg, ok := Generic{}.WithMetrics(&m).(Generic)
	if !ok {
		t.Fatal("WithMetrics changed the concrete type")
	}
	inputs := []*relation.Relation{
		rel(t, "A B", "1 x", "2 y"),
		rel(t, "B C", "x p", "y q"),
		rel(t, "A C", "1 p", "2 q"),
	}
	out, err := alg.JoinAll(inputs)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.WCOJJoins != 1 || snap.WCOJCandidates == 0 || snap.WCOJIntersections == 0 {
		t.Errorf("wcoj counters not recorded: %+v", snap)
	}
	if snap.Joins != 1 || int(snap.MaxIntermediate) != out.Len() {
		t.Errorf("join counters: joins=%d max_intermediate=%d, output=%d",
			snap.Joins, snap.MaxIntermediate, out.Len())
	}
}

// TestFractionalCover checks the LP's witness: the returned weights form
// a feasible fractional edge cover whose objective reproduces the bound.
func TestFractionalCover(t *testing.T) {
	cases := []struct {
		specs []string
		sizes []int
		bound float64
	}{
		{[]string{"A B", "B C"}, []int{3, 4}, 12},                    // chain: product
		{[]string{"A B", "B C", "A C"}, []int{4, 4, 4}, 8},           // triangle: n^{3/2}
		{[]string{"A", "A"}, []int{5, 7}, 5},                         // duplicate-ish: min side covers
		{[]string{"A B", "A B", "A B"}, []int{6, 3, 9}, 3},           // duplicate schemes: smallest
		{[]string{"A", "B"}, []int{2, 3}, 6},                         // cross product
		{[]string{"A B C"}, []int{11}, 11},                           // single relation
		{[]string{"A B", "B C", "C D", "D A"}, []int{2, 2, 2, 2}, 4}, // 4-cycle
	}
	for _, tc := range cases {
		x, bound := FractionalCover(schemes(t, tc.specs...), tc.sizes)
		if math.Abs(bound-tc.bound) > 1e-6*tc.bound {
			t.Errorf("%v %v: bound = %g, want %g", tc.specs, tc.sizes, bound, tc.bound)
			continue
		}
		if len(x) != len(tc.sizes) {
			t.Fatalf("%v: cover has %d weights for %d relations", tc.specs, len(x), len(tc.sizes))
		}
		scs := schemes(t, tc.specs...)
		// Feasibility: every attribute covered with total weight ≥ 1.
		attrs := relation.MustScheme()
		for _, sc := range scs {
			attrs = attrs.Union(sc)
		}
		for _, a := range attrs.Attrs() {
			total := 0.0
			for i, sc := range scs {
				if sc.Has(a) {
					total += x[i]
				}
			}
			if total < 1-1e-6 {
				t.Errorf("%v: attribute %s covered with weight %g < 1 by %v", tc.specs, a, total, x)
			}
		}
		// Objective: ∏ |R_i|^{x_i} equals the bound.
		obj := 0.0
		for i, s := range tc.sizes {
			obj += x[i] * math.Log2(float64(s))
		}
		if math.Abs(math.Exp2(obj)-bound) > 1e-6*bound {
			t.Errorf("%v: cover objective %g, bound %g", tc.specs, math.Exp2(obj), bound)
		}
	}
}

func TestFractionalCoverDegenerate(t *testing.T) {
	if x, b := FractionalCover(nil, nil); x != nil || b != 0 {
		t.Errorf("FractionalCover(nil, nil) = %v, %g", x, b)
	}
	if x, b := FractionalCover(schemes(t, "", ""), []int{1, 1}); b != 1 || len(x) != 2 || x[0] != 0 || x[1] != 0 {
		t.Errorf("all-empty schemes: cover %v bound %g, want zero cover and bound 1", x, b)
	}
}

// TestPredictedPeakGreedy sanity-checks the auto-selector's input: the
// prediction is finite, non-negative, and large exactly on a
// blow-up-shaped workload.
func TestPredictedPeakGreedy(t *testing.T) {
	if p := PredictedPeakGreedy(nil); p != 0 {
		t.Errorf("no inputs: predicted %g", p)
	}
	if p := PredictedPeakGreedy([]*relation.Relation{rel(t, "A B", "1 x")}); p != 0 {
		t.Errorf("single input: predicted %g", p)
	}
	// Key-joined chain: every intermediate stays near the input sizes.
	tame := []*relation.Relation{
		bigRel(31, relation.MustScheme("K", "A"), 300, 300),
		bigRel(32, relation.MustScheme("K", "B"), 300, 300),
	}
	tamePeak := PredictedPeakGreedy(tame)
	if math.IsInf(tamePeak, 0) || math.IsNaN(tamePeak) || tamePeak < 0 {
		t.Fatalf("tame peak = %g", tamePeak)
	}
	// Recombination blow-up: few shared values, wide cross sections.
	blow := []*relation.Relation{
		bigRel(33, relation.MustScheme("K", "A"), 300, 2),
		bigRel(34, relation.MustScheme("K", "B"), 300, 2),
	}
	if blowPeak := PredictedPeakGreedy(blow); blowPeak <= tamePeak {
		t.Errorf("blow-up workload predicted %g, tame %g", blowPeak, tamePeak)
	}
}

// TestWorstCasePeakGreedy checks the data-independent side of the auto
// selector: the AGM bound of the greedy plan's intermediate accumulators.
func TestWorstCasePeakGreedy(t *testing.T) {
	if p := WorstCasePeakGreedy([]*relation.Relation{rel(t, "A B", "1 x")}); p != 0 {
		t.Errorf("single input: worst-case peak %g", p)
	}
	// Binary joins have no intermediate accumulator: the only merge is the
	// final one, so the worst case is 0 and auto selection never fires.
	two := []*relation.Relation{
		bigRel(41, relation.MustScheme("K", "A"), 300, 20),
		bigRel(42, relation.MustScheme("K", "B"), 300, 20),
	}
	if p := WorstCasePeakGreedy(two); p != 0 {
		t.Errorf("binary join: worst-case peak %g, want 0", p)
	}
	// Triangle: whichever pair greedy merges first has AGM bound N², above
	// the n-ary bound N^{3/2} — the canonical case where a binary plan can
	// be forced past what the generic join guarantees.
	tri := []*relation.Relation{
		bigRel(43, relation.MustScheme("A", "B"), 64, 8),
		bigRel(44, relation.MustScheme("B", "C"), 64, 8),
		bigRel(45, relation.MustScheme("A", "C"), 64, 8),
	}
	worst, bound := WorstCasePeakGreedy(tri), AGMBoundOf(tri)
	if worst <= bound {
		t.Errorf("triangle: worst-case peak %g not above n-ary bound %g", worst, bound)
	}
	// Key-joined chain: every accumulator's bound equals the final bound,
	// so the worst case never exceeds it and auto selection stays off.
	chain := []*relation.Relation{
		bigRel(46, relation.MustScheme("K", "A"), 300, 300),
		bigRel(47, relation.MustScheme("K", "B"), 300, 300),
		bigRel(48, relation.MustScheme("A", "C"), 300, 300),
	}
	if worst, bound := WorstCasePeakGreedy(chain), AGMBoundOf(chain); worst > bound {
		t.Errorf("chain: worst-case peak %g above n-ary bound %g", worst, bound)
	}
}
