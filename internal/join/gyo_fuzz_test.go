package join

import (
	"math/rand"
	"testing"

	"relquery/internal/relation"
)

// fuzzAttrs is the attribute pool for fuzzed hypergraphs: up to 6
// attributes, so a hyperedge is a 6-bit mask and the brute-force oracle
// (all labeled trees over ≤5 edges, 5³ = 125 candidates) stays cheap.
var fuzzAttrs = []relation.Attribute{"A", "B", "C", "D", "E", "F"}

// maskEdge decodes a nonzero 6-bit mask into a scheme over fuzzAttrs.
func maskEdge(t *testing.T, mask byte) relation.Scheme {
	t.Helper()
	var attrs []relation.Attribute
	for i, a := range fuzzAttrs {
		if mask&(1<<i) != 0 {
			attrs = append(attrs, a)
		}
	}
	s, err := relation.NewScheme(attrs...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runningIntersection reports whether the tree given by parent pointers
// has the running-intersection property over the hyperedges: for every
// attribute, the tree nodes whose edge contains it induce a connected
// subtree. By the Beeri–Fagin–Maier–Yannakakis theorem a hypergraph has
// such a tree iff it is α-acyclic.
func runningIntersection(edges []relation.Scheme, parent []int) bool {
	n := len(edges)
	adj := make([][]int, n)
	for i, p := range parent {
		if p >= 0 {
			adj[i] = append(adj[i], p)
			adj[p] = append(adj[p], i)
		}
	}
	attrs := map[relation.Attribute][]int{}
	for i, e := range edges {
		for _, a := range e.Attrs() {
			attrs[a] = append(attrs[a], i)
		}
	}
	for _, nodes := range attrs {
		in := make(map[int]bool, len(nodes))
		for _, i := range nodes {
			in[i] = true
		}
		// BFS within the induced subgraph from the first node.
		seen := map[int]bool{nodes[0]: true}
		queue := []int{nodes[0]}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if in[w] && !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if len(seen) != len(nodes) {
			return false
		}
	}
	return true
}

// pruferTree decodes a Prüfer sequence over n labeled nodes into parent
// pointers rooted at node n-1. Iterating all n^(n-2) sequences iterates
// all labeled trees exactly once (Cayley's formula).
func pruferTree(n int, seq []int) []int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	if n < 2 {
		return parent
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range seq {
		degree[v]++
	}
	type pair struct{ a, b int }
	var links []pair
	for _, v := range seq {
		for u := 0; u < n; u++ {
			if degree[u] == 1 {
				links = append(links, pair{u, v})
				degree[u]--
				degree[v]--
				break
			}
		}
	}
	u, v := -1, -1
	for i := 0; i < n; i++ {
		if degree[i] == 1 {
			if u < 0 {
				u = i
			} else {
				v = i
			}
		}
	}
	links = append(links, pair{u, v})
	// Orient every link toward the root n-1.
	adj := make([][]int, n)
	for _, l := range links {
		adj[l.a] = append(adj[l.a], l.b)
		adj[l.b] = append(adj[l.b], l.a)
	}
	seen := make([]bool, n)
	seen[n-1] = true
	queue := []int{n - 1}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range adj[x] {
			if !seen[y] {
				seen[y] = true
				parent[y] = x
				queue = append(queue, y)
			}
		}
	}
	return parent
}

// acyclicOracle brute-forces α-acyclicity: the hypergraph is acyclic iff
// some labeled tree over its edges has the running-intersection property.
func acyclicOracle(edges []relation.Scheme) bool {
	n := len(edges)
	if n <= 1 {
		return true
	}
	seq := make([]int, n-2)
	for {
		if runningIntersection(edges, pruferTree(n, seq)) {
			return true
		}
		// Increment the sequence in base n.
		i := 0
		for ; i < len(seq); i++ {
			seq[i]++
			if seq[i] < n {
				break
			}
			seq[i] = 0
		}
		if i == len(seq) {
			return false
		}
	}
}

// FuzzGYO cross-checks the GYO reduction and the Yannakakis strategy on
// random hypergraphs: the verdict must agree with the brute-force
// spanning-tree oracle, a returned join tree must itself witness
// acyclicity, the strategy's JoinAll must equal the greedy hash plan, and
// on acyclic inputs the full reducer must leave exactly the projections
// of the join (global consistency).
func FuzzGYO(f *testing.F) {
	f.Add(byte(0b000011), byte(0b000110), byte(0b001100), byte(0), byte(0), int64(1)) // chain
	f.Add(byte(0b000011), byte(0b000110), byte(0b000101), byte(0), byte(0), int64(2)) // triangle
	f.Add(byte(0b000111), byte(0b001001), byte(0b010010), byte(0b100100), byte(0), int64(3))
	f.Add(byte(0b000011), byte(0b000011), byte(0b000011), byte(0b001100), byte(0b110000), int64(4))
	f.Fuzz(func(t *testing.T, m1, m2, m3, m4, m5 byte, seed int64) {
		var edges []relation.Scheme
		for _, m := range []byte{m1, m2, m3, m4, m5} {
			if m &= 0b111111; m != 0 {
				edges = append(edges, maskEdge(t, m))
			}
		}
		tree, got := JoinTreeOf(edges)
		if want := acyclicOracle(edges); got != want {
			t.Fatalf("GYO says acyclic=%v, oracle says %v for %v", got, want, edges)
		}
		if got && len(edges) > 0 {
			if !runningIntersection(edges, tree.Parent) {
				t.Fatalf("GYO tree %v lacks running intersection for %v", tree.Parent, edges)
			}
		}
		if len(edges) == 0 {
			return
		}

		// Data parity: Yannakakis (full reducer on acyclic inputs, binary
		// fallback on cyclic ones) must agree with the greedy hash plan.
		rng := rand.New(rand.NewSource(seed))
		rels := make([]*relation.Relation, len(edges))
		for i, e := range edges {
			rels[i] = randomRelation(rng, e, 4)
		}
		want, err := Multi(rels, Hash{}, Greedy, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotRel, stats, err := Yannakakis{}.JoinAllStats(rels, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !gotRel.Equal(want) {
			t.Fatalf("Yannakakis join differs from greedy hash plan: %v vs %v",
				gotRel.Sorted(), want.Sorted())
		}
		if len(edges) > 1 && stats.Acyclic != got {
			t.Fatalf("JoinAllStats acyclic=%v, GYO said %v", stats.Acyclic, got)
		}

		if got {
			// Global consistency: the full reducer leaves each relation
			// equal to the join projected onto its scheme.
			reduced, _, err := FullReduce(rels)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range reduced {
				proj, err := want.Project(edges[i])
				if err != nil {
					t.Fatal(err)
				}
				if !r.Equal(proj) {
					t.Fatalf("reduced[%d] = %v, want projection %v", i, r.Sorted(), proj.Sorted())
				}
				if r.Len() > rels[i].Len() {
					t.Fatalf("full reducer grew relation %d", i)
				}
			}
		} else if _, _, err := FullReduce(rels); err == nil {
			t.Fatal("FullReduce accepted a cyclic hypergraph")
		}
	})
}

// TestAcyclicOracleSelfCheck pins the oracle on known shapes so FuzzGYO
// is not testing GYO against a broken referee.
func TestAcyclicOracleSelfCheck(t *testing.T) {
	cases := []struct {
		edges   []string
		acyclic bool
	}{
		{[]string{"A B", "B C", "C D"}, true},
		{[]string{"A B", "B C", "A C"}, false},
		{[]string{"A B", "B C", "A C", "A B C"}, true},
		{[]string{"A B", "B C", "C D", "D A"}, false},
		{[]string{"A B", "C D"}, true},
	}
	for _, tc := range cases {
		edges := schemesOfSpecs(t, tc.edges...)
		if got := acyclicOracle(edges); got != tc.acyclic {
			t.Errorf("oracle(%v) = %v, want %v", tc.edges, got, tc.acyclic)
		}
	}
}
