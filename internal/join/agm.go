package join

import (
	"math"

	"relquery/internal/relation"
)

// AGM worst-case size bound for natural joins ("Size bounds and query
// plans for relational joins", Atserias–Grohe–Marx, FOCS 2008): for any
// fractional edge cover (x_i) of the join's attribute hypergraph —
// x_i ≥ 0 with Σ_{i: a ∈ scheme_i} x_i ≥ 1 for every attribute a — the
// join satisfies |R₁ ∗ … ∗ R_k| ≤ ∏ |R_i|^{x_i}, and the minimum over
// fractional covers is tight in the worst case over instances with the
// given sizes. The minimizing cover is a linear program, solved here
// exactly in log space with a small dense two-phase simplex.
//
// The bound is the natural yardstick for the paper's blow-up phenomenon:
// Cosmadakis' gadgets drive intermediate joins toward this worst case
// while input and output stay linear, and EXPLAIN ANALYZE prints the
// bound next to each join node's observed cardinality.

// AGMBound returns the AGM worst-case cardinality bound for the natural
// join of relations with the given schemes and sizes. It returns 0 when
// any input is empty (the join is empty) or the slices are empty or
// mismatched, and 1 when every scheme is empty (the join holds at most
// the empty tuple).
func AGMBound(schemes []relation.Scheme, sizes []int) float64 {
	_, bound := FractionalCover(schemes, sizes)
	return bound
}

// FractionalCover returns a minimizing fractional edge cover x — one
// weight per relation, with Σ_{i: a ∈ scheme_i} x_i ≥ 1 for every
// attribute a — together with the resulting AGM bound ∏ |R_i|^{x_i}. The
// cover is what the worst-case-optimal join's attribute order consults:
// attributes covered by heavily weighted relations are the ones the bound
// charges. Degenerate inputs follow AGMBound: a nil cover with bound 0
// for empty/mismatched slices or any empty relation, an all-zero cover
// with bound 1 when every scheme is empty.
func FractionalCover(schemes []relation.Scheme, sizes []int) ([]float64, float64) {
	if len(schemes) == 0 || len(schemes) != len(sizes) {
		return nil, 0
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, 0
		}
	}
	var attrs []relation.Attribute
	seen := make(map[relation.Attribute]bool)
	for _, sc := range schemes {
		for _, a := range sc.Attrs() {
			if !seen[a] {
				seen[a] = true
				attrs = append(attrs, a)
			}
		}
	}
	if len(attrs) == 0 {
		return make([]float64, len(schemes)), 1
	}
	cover := make([][]bool, len(attrs))
	for r, a := range attrs {
		cover[r] = make([]bool, len(schemes))
		for i, sc := range schemes {
			cover[r][i] = sc.Has(a)
		}
	}
	w := make([]float64, len(sizes))
	for i, s := range sizes {
		w[i] = math.Log2(float64(s))
	}
	opt, x := solveCovering(cover, w)
	return x, math.Exp2(opt)
}

// AGMBoundOf is AGMBound over materialized relations.
func AGMBoundOf(rels []*relation.Relation) float64 {
	schemes := make([]relation.Scheme, len(rels))
	sizes := make([]int, len(rels))
	for i, r := range rels {
		schemes[i] = r.Scheme()
		sizes[i] = r.Len()
	}
	return AGMBound(schemes, sizes)
}

const lpEps = 1e-9

// solveCovering solves the fractional covering LP
//
//	min w·x   subject to   cover·x ≥ 1,  x ≥ 0
//
// where cover is a 0/1 incidence matrix (one row per constraint, one
// column per variable) and w ≥ 0, returning the optimal objective value
// and an optimal x. Every row must have at least one true entry (x = 1 is
// then feasible). The solver is a dense two-phase primal simplex with
// Bland's rule, ample for the tiny instances a join node produces (k
// relations × a few dozen attributes).
func solveCovering(cover [][]bool, w []float64) (float64, []float64) {
	m := len(cover) // constraints
	k := len(w)     // structural variables
	n := k + m + m  // x, surplus, artificial
	// Tableau rows: cover·x − s + t = 1; initial basis = artificials.
	tab := make([][]float64, m)
	basis := make([]int, m)
	for r := 0; r < m; r++ {
		tab[r] = make([]float64, n+1)
		for j := 0; j < k; j++ {
			if cover[r][j] {
				tab[r][j] = 1
			}
		}
		tab[r][k+r] = -1  // surplus
		tab[r][k+m+r] = 1 // artificial
		tab[r][n] = 1     // rhs
		basis[r] = k + m + r
	}

	// Phase 1: drive the artificials to zero.
	phase1 := make([]float64, n)
	for j := k + m; j < n; j++ {
		phase1[j] = 1
	}
	simplexMin(tab, basis, phase1, func(int) bool { return false })

	// Pivot any basic artificial (necessarily at value 0 — the LP is
	// feasible) out of the basis, or drop its row as redundant.
	for r := 0; r < m; r++ {
		if basis[r] < k+m {
			continue
		}
		pivoted := false
		for j := 0; j < k+m; j++ {
			if math.Abs(tab[r][j]) > lpEps {
				pivot(tab, basis, r, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint: zero the row so it never pivots.
			for j := range tab[r] {
				tab[r][j] = 0
			}
		}
	}

	// Phase 2: optimize the real objective, artificials barred.
	phase2 := make([]float64, n)
	copy(phase2, w)
	simplexMin(tab, basis, phase2, func(j int) bool { return j >= k+m })

	opt := 0.0
	x := make([]float64, k)
	for r := 0; r < m; r++ {
		opt += phase2[basis[r]] * tab[r][n]
		if basis[r] < k {
			x[basis[r]] = tab[r][n]
		}
	}
	return opt, x
}

// simplexMin runs primal simplex iterations minimizing c over the current
// tableau until no reduced cost is negative. barred columns never enter
// the basis. Bland's rule (lowest eligible index) guarantees termination.
func simplexMin(tab [][]float64, basis []int, c []float64, barred func(int) bool) {
	m := len(tab)
	if m == 0 {
		return
	}
	n := len(tab[0]) - 1
	inBasis := make([]bool, n)
	for _, b := range basis {
		inBasis[b] = true
	}
	for iter := 0; iter < 10_000; iter++ {
		enter := -1
		for j := 0; j < n; j++ {
			if inBasis[j] || barred(j) {
				continue
			}
			rc := c[j]
			for r := 0; r < m; r++ {
				rc -= c[basis[r]] * tab[r][j]
			}
			if rc < -lpEps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return // optimal
		}
		leave := -1
		best := math.Inf(1)
		for r := 0; r < m; r++ {
			if tab[r][enter] > lpEps {
				ratio := tab[r][n] / tab[r][enter]
				if ratio < best-lpEps || (ratio < best+lpEps && (leave < 0 || basis[r] < basis[leave])) {
					best, leave = ratio, r
				}
			}
		}
		if leave < 0 {
			return // unbounded direction; cannot lower a w ≥ 0 covering objective
		}
		inBasis[basis[leave]] = false
		inBasis[enter] = true
		pivot(tab, basis, leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func pivot(tab [][]float64, basis []int, leave, enter int) {
	row := tab[leave]
	p := row[enter]
	for j := range row {
		row[j] /= p
	}
	for r := range tab {
		if r == leave {
			continue
		}
		f := tab[r][enter]
		if f == 0 {
			continue
		}
		for j := range tab[r] {
			tab[r][j] -= f * row[j]
		}
	}
	basis[leave] = enter
}
