package join

import (
	"fmt"

	"relquery/internal/obs"
	"relquery/internal/relation"
)

// Stats accumulates execution statistics across a (possibly n-ary) join.
// Because the paper's hardness proofs all work by making intermediate
// results explode, MaxIntermediate is the headline number.
//
// Stats is now a thin shim over obs.Metrics: every counter lives in the
// atomic Metrics underneath, so a Stats shared across the parallel
// evaluator's workers is race-free even when snapshotted mid-run.
//
// Deprecated: new code should attach an obs.Collector to the evaluator
// (or pass an obs.Metrics to a Metered algorithm) instead. obs.Metrics
// carries the same counters and more (per-algorithm tuple traffic,
// partition/fallback counts, cache counters). Stats is kept only so
// pre-obs callers compile unchanged; DESIGN.md ("Machine-checked
// invariants") schedules its removal, and the deprecatedban analyzer
// keeps it from gaining new callers in the meantime.
type Stats struct {
	m obs.Metrics
}

func (s *Stats) observe(r *relation.Relation) {
	if s == nil {
		return
	}
	s.m.ObserveJoin(r.Len())
}

// Observe records an externally produced intermediate relation (used by the
// algebra evaluator for projection nodes).
func (s *Stats) Observe(r *relation.Relation) {
	if s == nil {
		return
	}
	s.m.ObserveIntermediate(r.Len())
}

// Snapshot returns a consistent copy of the counters: the number of binary
// joins performed, the largest cardinality of any relation produced while
// executing (including the final result), and the total number of tuples
// across all intermediate results.
func (s *Stats) Snapshot() (joins, maxIntermediate, intermediateTuples int) {
	snap := s.m.Snapshot()
	return int(snap.Joins), int(snap.MaxIntermediate), int(snap.IntermediateTuples)
}

// String renders the statistics compactly.
func (s *Stats) String() string {
	joins, maxI, total := s.Snapshot()
	return fmt.Sprintf("joins=%d max_intermediate=%d intermediate_tuples=%d",
		joins, maxI, total)
}

// Order decides the sequence in which an n-ary join combines its inputs.
type Order int

const (
	// Sequential joins the inputs left to right as written — the paper's
	// literal reading of R₁ ∗ R₂ ∗ … ∗ R_k. Used by experiment E7 to expose
	// the inherent intermediate blow-up.
	Sequential Order = iota
	// Greedy repeatedly joins the pair whose schemes share attributes and
	// whose size product is smallest, falling back to the globally smallest
	// product when only cross products remain. A simple but effective
	// heuristic planner.
	Greedy
)

// String returns the order's flag name.
func (o Order) String() string {
	switch o {
	case Sequential:
		return "sequential"
	case Greedy:
		return "greedy"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// OrderByName parses an Order from its flag name.
func OrderByName(name string) (Order, error) {
	switch name {
	case "sequential":
		return Sequential, nil
	case "greedy":
		return Greedy, nil
	default:
		return 0, fmt.Errorf("join: unknown order %q (want sequential or greedy)", name)
	}
}

// Multi computes the natural join of all inputs using alg for each binary
// join, combining in the given order. Stats, when non-nil, accumulates
// execution statistics. Joining zero relations is an error (the neutral
// element — the relation over the empty scheme holding the empty tuple —
// is almost never what a caller wants); joining one relation returns it
// unchanged.
func Multi(inputs []*relation.Relation, alg Algorithm, order Order, stats *Stats) (*relation.Relation, error) {
	switch len(inputs) {
	case 0:
		return nil, fmt.Errorf("join: Multi requires at least one input")
	case 1:
		stats.Observe(inputs[0])
		return inputs[0], nil
	}
	switch order {
	case Sequential:
		return multiSequential(inputs, alg, stats)
	case Greedy:
		return multiGreedy(inputs, alg, stats)
	default:
		return nil, fmt.Errorf("join: unknown order %v", order)
	}
}

func multiSequential(inputs []*relation.Relation, alg Algorithm, stats *Stats) (*relation.Relation, error) {
	acc := inputs[0]
	for _, next := range inputs[1:] {
		var err error
		acc, err = alg.Join(acc, next)
		if err != nil {
			return nil, err
		}
		stats.observe(acc)
	}
	return acc, nil
}

func multiGreedy(inputs []*relation.Relation, alg Algorithm, stats *Stats) (*relation.Relation, error) {
	pending := make([]*relation.Relation, len(inputs))
	copy(pending, inputs)

	for len(pending) > 1 {
		bi, bj := pickPair(pending)
		joined, err := alg.Join(pending[bi], pending[bj])
		if err != nil {
			return nil, err
		}
		stats.observe(joined)
		// Remove bj first (bj > bi), then replace bi.
		pending = append(pending[:bj], pending[bj+1:]...)
		pending[bi] = joined
	}
	return pending[0], nil
}

// pickPair chooses the next pair to join: among pairs whose schemes share
// at least one attribute, the one with the smallest size product; if no
// pair shares attributes, the overall smallest product (an unavoidable
// cross product). Returns indices with i < j.
func pickPair(rels []*relation.Relation) (int, int) {
	bestI, bestJ := 0, 1
	bestShared := false
	bestCost := -1
	for i := 0; i < len(rels); i++ {
		for j := i + 1; j < len(rels); j++ {
			shared := !rels[i].Scheme().Disjoint(rels[j].Scheme())
			cost := rels[i].Len() * rels[j].Len()
			better := false
			switch {
			case shared && !bestShared:
				better = true
			case shared == bestShared && (bestCost < 0 || cost < bestCost):
				better = true
			}
			if better {
				bestI, bestJ, bestShared, bestCost = i, j, shared, cost
			}
		}
	}
	return bestI, bestJ
}
