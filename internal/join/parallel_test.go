package join

import (
	"fmt"
	"math/rand"
	"testing"

	"relquery/internal/obs"
	"relquery/internal/relation"
)

// bigRel builds a relation large enough to clear MinParallelRows, with a
// controllable number of distinct join keys.
func bigRel(seed int64, scheme relation.Scheme, rows, keys int) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(scheme)
	for i := 0; i < rows; i++ {
		r.MustAdd(relation.TupleOf(
			fmt.Sprintf("k%d", rng.Intn(keys)),
			fmt.Sprintf("v%d", i),
		))
	}
	return r
}

// TestParallelMatchesHashLarge exercises the real partitioned path
// (inputs above MinParallelRows) across worker counts and checks the
// result is set-equal to the sequential hash join AND byte-identical
// under sorted rendering.
func TestParallelMatchesHashLarge(t *testing.T) {
	left := bigRel(1, relation.MustScheme("K", "A"), 600, 37)
	right := bigRel(2, relation.MustScheme("K", "B"), 800, 37)
	want, err := Hash{}.Join(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() < MinParallelRows {
		t.Fatalf("workload too small to be meaningful: %d output tuples", want.Len())
	}
	for _, workers := range []int{1, 2, 3, 8, 16} {
		got, err := Parallel{Workers: workers}.Join(left, right)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: parallel join differs from hash join (%d vs %d tuples)", workers, got.Len(), want.Len())
		}
		if gr, wr := relation.RenderSorted(got), relation.RenderSorted(want); gr != wr {
			t.Fatalf("workers=%d: sorted rendering differs", workers)
		}
	}
}

// TestParallelDeterministicOrder checks the stronger property the
// parallel engine promises: the result's insertion order — not just its
// set of tuples — is independent of goroutine scheduling.
func TestParallelDeterministicOrder(t *testing.T) {
	left := bigRel(3, relation.MustScheme("K", "A"), 700, 23)
	right := bigRel(4, relation.MustScheme("K", "B"), 700, 23)
	alg := Parallel{Workers: 8}
	first, err := alg.Join(left, right)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		again, err := alg.Join(left, right)
		if err != nil {
			t.Fatal(err)
		}
		if again.Len() != first.Len() {
			t.Fatalf("run %d: %d tuples, want %d", run, again.Len(), first.Len())
		}
		for i := 0; i < first.Len(); i++ {
			if !first.Tuple(i).Equal(again.Tuple(i)) {
				t.Fatalf("run %d: insertion order diverged at tuple %d", run, i)
			}
		}
	}
}

// TestParallelCrossProductFallback: with no shared attributes every tuple
// has the same (empty) key, so Parallel must fall back to the sequential
// hash join rather than serializing through one bucket.
func TestParallelCrossProductFallback(t *testing.T) {
	left := bigRel(5, relation.MustScheme("A", "B"), 300, 300)
	right := bigRel(6, relation.MustScheme("C", "D"), 30, 30)
	want, err := Hash{}.Join(left, right)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parallel{Workers: 4}.Join(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("cross product differs: %d vs %d tuples", got.Len(), want.Len())
	}
}

// TestParallelDuplicateCollapse joins projections that produce duplicate
// output tuples within a key group; set semantics must collapse them
// exactly as the sequential join does.
func TestParallelDuplicateCollapse(t *testing.T) {
	// Many (key, value) pairs mapping to few distinct outputs after the
	// join: both sides repeat values so combine() yields duplicates.
	s := relation.MustScheme("K", "V")
	left := relation.New(s)
	right := relation.New(relation.MustScheme("K", "W"))
	for i := 0; i < 400; i++ {
		left.MustAdd(relation.TupleOf(fmt.Sprintf("k%d", i%10), fmt.Sprintf("v%d", i%3)))
		right.MustAdd(relation.TupleOf(fmt.Sprintf("k%d", i%10), fmt.Sprintf("w%d", i%3)))
	}
	want, err := Hash{}.Join(left, right)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parallel{Workers: 8}.Join(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("duplicate collapse differs: %d vs %d tuples", got.Len(), want.Len())
	}
}

// TestParallelDefaultWorkers checks the zero value is usable (workers
// default to GOMAXPROCS) and registered with the algorithm registry.
func TestParallelDefaultWorkers(t *testing.T) {
	alg, err := ByName("parallel")
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "parallel" {
		t.Fatalf("Name() = %q", alg.Name())
	}
	left := bigRel(7, relation.MustScheme("K", "A"), 500, 20)
	right := bigRel(8, relation.MustScheme("K", "B"), 500, 20)
	want, err := Hash{}.Join(left, right)
	if err != nil {
		t.Fatal(err)
	}
	got, err := alg.Join(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("default-worker parallel join differs from hash join")
	}
}

// TestParallelMulti runs the n-ary planner with the parallel algorithm,
// sharing one Stats across concurrent observation.
func TestParallelMulti(t *testing.T) {
	r1 := bigRel(9, relation.MustScheme("K", "A"), 600, 25)
	r2 := bigRel(10, relation.MustScheme("K", "B"), 600, 25)
	r3 := bigRel(11, relation.MustScheme("A", "C"), 600, 600)
	inputs := []*relation.Relation{r1, r2, r3}
	want, err := Multi(inputs, Hash{}, Greedy, nil)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	got, err := Multi(inputs, Parallel{Workers: 8}, Greedy, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("parallel Multi differs from sequential")
	}
	if joins, _, _ := stats.Snapshot(); joins != 2 {
		t.Fatalf("joins = %d, want 2", joins)
	}
}

// TestParallelFewerProbeRowsThanWorkers covers the broadcast chunking
// boundary: a tiny probe side against more workers than rows. Below
// MinParallelRows the join must take the sequential fallback (no
// spurious Partitioned/Broadcast counts); above it, the broadcast path
// must skip the workers whose chunk is empty and still reproduce the
// sequential result exactly.
func TestParallelFewerProbeRowsThanWorkers(t *testing.T) {
	probe := rel(t, "K A", "k0 a0", "k1 a1", "k2 a2") // 3 rows, 8 workers

	t.Run("sequential fallback", func(t *testing.T) {
		build := rel(t, "K B", "k0 b0", "k1 b1", "k2 b2", "k3 b3")
		want, err := Hash{}.Join(build, probe)
		if err != nil {
			t.Fatal(err)
		}
		var m obs.Metrics
		got, err := Parallel{Workers: 8, Metrics: &m}.Join(build, probe)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("fallback join differs: %d vs %d tuples", got.Len(), want.Len())
		}
		snap := m.Snapshot()
		if snap.PartitionedJoins != 0 || snap.BroadcastJoins != 0 {
			t.Errorf("tiny join counted partitioned=%d broadcast=%d", snap.PartitionedJoins, snap.BroadcastJoins)
		}
		if snap.SequentialFallbacks != 1 {
			t.Errorf("sequential fallbacks = %d, want 1", snap.SequentialFallbacks)
		}
	})

	t.Run("broadcast with empty chunks", func(t *testing.T) {
		// The parallel join builds on the smaller side, so the 3-row
		// relation becomes the build table (broadcast: 3 keys is far
		// below PartitionKeyFactor×workers) and the 400-row side is
		// probed. With more workers than probe rows the chunk math
		// assigns trailing workers empty ranges, which must be skipped,
		// not merged as empty slots.
		build := bigRel(13, relation.MustScheme("K", "B"), 400, 3)
		want, err := Hash{}.Join(build, probe)
		if err != nil {
			t.Fatal(err)
		}
		var m obs.Metrics
		got, err := Parallel{Workers: 512, Metrics: &m}.Join(build, probe)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("broadcast join differs: %d vs %d tuples", got.Len(), want.Len())
		}
		if gr, wr := relation.RenderSorted(got), relation.RenderSorted(want); gr != wr {
			t.Fatal("sorted rendering differs")
		}
		snap := m.Snapshot()
		if snap.BroadcastJoins != 1 || snap.PartitionedJoins != 0 || snap.SequentialFallbacks != 0 {
			t.Errorf("strategy counts: broadcast=%d partitioned=%d fallback=%d, want 1/0/0",
				snap.BroadcastJoins, snap.PartitionedJoins, snap.SequentialFallbacks)
		}
	})
}
