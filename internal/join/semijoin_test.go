package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relquery/internal/relation"
)

func TestSemijoinBasics(t *testing.T) {
	r := rel(t, "A B", "1 x", "2 y", "3 z")
	s := rel(t, "B C", "x p", "y q")
	out, err := Semijoin(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(rel(t, "A B", "1 x", "2 y")) {
		t.Errorf("Semijoin = %v", out.Sorted())
	}
	// Disjoint schemes: keep all iff s nonempty.
	out, err = Semijoin(r, rel(t, "D", "1"))
	if err != nil || out.Len() != 3 {
		t.Errorf("disjoint semijoin = %v, %v", out, err)
	}
	out, err = Semijoin(r, relation.New(relation.MustScheme("D")))
	if err != nil || out.Len() != 0 {
		t.Errorf("empty-side semijoin = %v, %v", out, err)
	}
}

func TestReduceFixpointChain(t *testing.T) {
	// A broken chain: the middle relation's values never reach the last.
	r1 := rel(t, "A B", "1 x", "2 y")
	r2 := rel(t, "B C", "x p", "y q")
	r3 := rel(t, "C D") // empty: everything must reduce away
	reduced, passes, err := ReduceFixpoint([]*relation.Relation{r1, r2, r3})
	if err != nil {
		t.Fatal(err)
	}
	if passes < 1 {
		t.Errorf("passes = %d", passes)
	}
	for i, r := range reduced {
		if r.Len() != 0 {
			t.Errorf("relation %d not fully reduced: %d tuples", i, r.Len())
		}
	}
	// Inputs untouched.
	if r1.Len() != 2 || r2.Len() != 2 {
		t.Error("ReduceFixpoint mutated its inputs")
	}
}

func TestQuickReduceFixpointPreservesJoin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1 := randomRelation(rng, relation.MustScheme("A", "B"), 10)
		r2 := randomRelation(rng, relation.MustScheme("B", "C"), 10)
		r3 := randomRelation(rng, relation.MustScheme("A", "C"), 10) // cyclic!
		rels := []*relation.Relation{r1, r2, r3}
		want, err := Multi(rels, Hash{}, Greedy, nil)
		if err != nil {
			return false
		}
		reduced, _, err := ReduceFixpoint(rels)
		if err != nil {
			return false
		}
		got, err := Multi(reduced, Hash{}, Greedy, nil)
		if err != nil {
			return false
		}
		// Reduction must never grow a relation and must preserve the join.
		for i := range rels {
			if reduced[i].Len() > rels[i].Len() {
				return false
			}
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
