package join

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"relquery/internal/relation"
)

func schemes(t *testing.T, specs ...string) []relation.Scheme {
	t.Helper()
	out := make([]relation.Scheme, len(specs))
	for i, spec := range specs {
		s, err := relation.SchemeOf(spec)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

func TestAGMBoundClosedForms(t *testing.T) {
	cases := []struct {
		name    string
		schemes []string
		sizes   []int
		want    float64
	}{
		// Triangle query R(A,B) ∗ S(B,C) ∗ T(A,C): optimal cover is
		// x = (1/2, 1/2, 1/2), bound N^{3/2}.
		{"triangle", []string{"A B", "B C", "A C"}, []int{16, 16, 16}, 64},
		{"triangle-uneven", []string{"A B", "B C", "A C"}, []int{4, 16, 16}, 32},
		// Chain R(A,B) ∗ S(B,C): both relations must be fully covered
		// (A and C each appear once), so the bound is the product.
		{"chain", []string{"A B", "B C"}, []int{3, 5}, 15},
		// Cross product: no shared attributes, bound = product.
		{"cross", []string{"A", "B"}, []int{7, 11}, 77},
		// Single relation: the join is the relation itself.
		{"single", []string{"A B"}, []int{42}, 42},
		// 4-cycle R(A,B) ∗ S(B,C) ∗ T(C,D) ∗ U(D,A): optimal cover picks
		// two opposite edges, bound N².
		{"four-cycle", []string{"A B", "B C", "C D", "D A"}, []int{10, 10, 10, 10}, 100},
		// A relation containing another's scheme covers it for free.
		{"subsumed", []string{"A B C", "A B"}, []int{8, 3}, 8},
		// Empty input ⇒ empty join.
		{"empty-input", []string{"A B", "B C"}, []int{0, 5}, 0},
		// All-empty schemes: at most the empty tuple.
		{"empty-schemes", []string{"", ""}, []int{3, 4}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := AGMBound(schemes(t, tc.schemes...), tc.sizes)
			if math.Abs(got-tc.want) > 1e-6*math.Max(1, tc.want) {
				t.Errorf("AGMBound(%v, %v) = %g, want %g", tc.schemes, tc.sizes, got, tc.want)
			}
		})
	}
}

func TestAGMBoundDegenerate(t *testing.T) {
	if got := AGMBound(nil, nil); got != 0 {
		t.Errorf("AGMBound(nil, nil) = %g, want 0", got)
	}
	if got := AGMBound(schemes(t, "A B"), []int{3, 4}); got != 0 {
		t.Errorf("mismatched slices: AGMBound = %g, want 0", got)
	}
	// The degenerate shapes the WCOJ planner feeds the bound: each must
	// come back finite and exactly right — never NaN or Inf.
	cases := []struct {
		name  string
		specs []string
		sizes []int
		want  float64
	}{
		{"single relation", []string{"A B C"}, []int{7}, 7},
		{"disjoint schemes (cross product)", []string{"A B", "C D"}, []int{3, 5}, 15},
		{"duplicate schemes", []string{"A B", "A B", "A B"}, []int{6, 3, 9}, 3},
		{"empty relation", []string{"A B", "B C"}, []int{4, 0}, 0},
		{"all relations empty", []string{"A B", "B C"}, []int{0, 0}, 0},
		{"empty scheme among inputs", []string{"A B", ""}, []int{4, 1}, 4},
		{"all schemes empty", []string{"", ""}, []int{1, 1}, 1},
	}
	for _, tc := range cases {
		got := AGMBound(schemes(t, tc.specs...), tc.sizes)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: AGMBound = %g", tc.name, got)
			continue
		}
		if math.Abs(got-tc.want) > 1e-6 {
			t.Errorf("%s: AGMBound(%v, %v) = %g, want %g", tc.name, tc.specs, tc.sizes, got, tc.want)
		}
	}
}

// TestAGMBoundDominatesActualJoin property-checks the theorem itself: the
// observed size of a random natural join never exceeds the bound.
func TestAGMBoundDominatesActualJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(2008)) // the AGM paper's year
	shapes := [][]string{
		{"A B", "B C"},
		{"A B", "B C", "A C"},
		{"A B", "B C", "C D", "D A"},
		{"A B C", "B C D", "A D"},
	}
	for trial := 0; trial < 40; trial++ {
		shape := shapes[trial%len(shapes)]
		rels := make([]*relation.Relation, len(shape))
		for i, spec := range shape {
			s, err := relation.SchemeOf(spec)
			if err != nil {
				t.Fatal(err)
			}
			r := relation.New(s)
			domain := 2 + rng.Intn(4)
			for n := rng.Intn(30); n > 0; n-- {
				vals := make([]string, s.Len())
				for j := range vals {
					vals[j] = fmt.Sprintf("v%d", rng.Intn(domain))
				}
				r.MustAdd(relation.TupleOf(vals...))
			}
			rels[i] = r
		}
		out, err := Multi(rels, Hash{}, Greedy, nil)
		if err != nil {
			t.Fatal(err)
		}
		bound := AGMBoundOf(rels)
		anyEmpty := false
		for _, r := range rels {
			if r.Len() == 0 {
				anyEmpty = true
			}
		}
		if anyEmpty {
			if bound != 0 {
				t.Errorf("trial %d: empty input but bound = %g", trial, bound)
			}
			continue
		}
		if float64(out.Len()) > bound+1e-6 {
			t.Errorf("trial %d (%v): |join| = %d exceeds AGM bound %g", trial, shape, out.Len(), bound)
		}
	}
}
