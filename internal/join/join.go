// Package join provides natural-join algorithms (nested-loop, hash,
// sort-merge) and an n-ary join executor with a greedy planner, together
// with execution statistics.
//
// The statistics exist because the paper's central phenomenon is that the
// *intermediate* results of a project–join expression can be inherently,
// exponentially larger than both the input relation and the final result
// (Cosmadakis 1983, Introduction). Stats.MaxIntermediate makes that
// blow-up measurable; experiment E7 plots it.
package join

import (
	"fmt"
	"sort"

	"relquery/internal/fault"
	"relquery/internal/governor"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// Algorithm computes the natural join of two relations.
type Algorithm interface {
	// Name identifies the algorithm in stats and CLI flags.
	Name() string
	// Join returns l ∗ r.
	Join(l, r *relation.Relation) (*relation.Relation, error)
}

// Metered is implemented by algorithms that can report per-evaluation
// counters (tuples built/probed/emitted, partitions, fallbacks) into an
// obs.Metrics. WithMetrics returns a copy of the algorithm wired to m;
// the algebra evaluator uses it to attach its collector without the
// caller naming a concrete algorithm type. All algorithms in this
// package are Metered.
type Metered interface {
	Algorithm
	WithMetrics(m *obs.Metrics) Algorithm
}

// MultiAlgorithm is implemented by algorithms that join all inputs of an
// n-ary join node in one pass instead of as a tree of binary joins. The
// algebra evaluator routes join nodes through JoinAll when the selected
// algorithm provides it, bypassing the greedy binary planner — the seam
// the worst-case-optimal Generic join plugs into.
type MultiAlgorithm interface {
	Algorithm
	// JoinAll returns the natural join of all inputs. Zero inputs is an
	// error; one input passes through unchanged, like Multi.
	JoinAll(inputs []*relation.Relation) (*relation.Relation, error)
}

// ByName returns the algorithm with the given name ("hash", "sortmerge",
// "nestedloop", "parallel", "wcoj", "yannakakis").
func ByName(name string) (Algorithm, error) {
	switch name {
	case "hash":
		return Hash{}, nil
	case "sortmerge":
		return SortMerge{}, nil
	case "nestedloop":
		return NestedLoop{}, nil
	case "parallel":
		return Parallel{}, nil
	case "wcoj":
		return Generic{}, nil
	case "yannakakis":
		return Yannakakis{}, nil
	default:
		return nil, fmt.Errorf("join: unknown algorithm %q (want hash, sortmerge, nestedloop, parallel, wcoj or yannakakis)", name)
	}
}

// Names lists the available algorithm names.
func Names() []string {
	return []string{"hash", "sortmerge", "nestedloop", "parallel", "wcoj", "yannakakis"}
}

// StrategyNames lists every value the CLIs accept for -join: the concrete
// algorithms plus the "auto" selector (acyclic → yannakakis, cyclic with
// predicted blow-up → wcoj, else the binary default).
func StrategyNames() []string { return append(Names(), "auto") }

// combiner precomputes how to stitch a matching (left, right) tuple pair
// into a tuple over the join's output scheme: all of left's columns, then
// right's columns that are not shared.
type combiner struct {
	out     relation.Scheme
	restPos []int // positions in the right scheme
}

func newCombiner(l, r relation.Scheme) combiner {
	out := l.Union(r)
	rest := r.Minus(l)
	pos := make([]int, rest.Len())
	for i := 0; i < rest.Len(); i++ {
		j, _ := r.Pos(rest.Attr(i))
		pos[i] = j
	}
	return combiner{out: out, restPos: pos}
}

func (c combiner) combine(left, right relation.Tuple) relation.Tuple {
	t := make(relation.Tuple, 0, c.out.Len())
	t = append(t, left...)
	for _, j := range c.restPos {
		t = append(t, right[j])
	}
	return t
}

// keyExtractor pulls the shared-attribute key out of a tuple.
type keyExtractor struct {
	pos []int
}

func newKeyExtractor(s, shared relation.Scheme) keyExtractor {
	pos := make([]int, shared.Len())
	for i := 0; i < shared.Len(); i++ {
		j, _ := s.Pos(shared.Attr(i))
		pos[i] = j
	}
	return keyExtractor{pos: pos}
}

func (k keyExtractor) key(t relation.Tuple) string {
	sub := make(relation.Tuple, len(k.pos))
	for i, j := range k.pos {
		sub[i] = t[j]
	}
	return sub.Key()
}

func (k keyExtractor) values(t relation.Tuple) relation.Tuple {
	sub := make(relation.Tuple, len(k.pos))
	for i, j := range k.pos {
		sub[i] = t[j]
	}
	return sub
}

// NestedLoop is the textbook O(|l|·|r|) join. It is the reference
// implementation the other algorithms are tested against.
type NestedLoop struct {
	// Metrics, when non-nil, receives per-join counters: probed counts
	// the |l|·|r| pairs examined, built is 0 (no build structure).
	Metrics *obs.Metrics
	// Gov, when non-nil, is ticked once per examined pair, so a canceled
	// or over-budget evaluation aborts mid-scan.
	Gov *governor.Governor
}

// Name implements Algorithm.
func (NestedLoop) Name() string { return "nestedloop" }

// WithMetrics implements Metered.
func (nl NestedLoop) WithMetrics(m *obs.Metrics) Algorithm {
	nl.Metrics = m
	return nl
}

// WithGovernor implements Governed.
func (nl NestedLoop) WithGovernor(g *governor.Governor) Algorithm {
	nl.Gov = g
	return nl
}

// Join implements Algorithm.
func (nl NestedLoop) Join(l, r *relation.Relation) (*relation.Relation, error) {
	fault.Hit(fault.JoinStart)
	shared := l.Scheme().Intersect(r.Scheme())
	kl := newKeyExtractor(l.Scheme(), shared)
	kr := newKeyExtractor(r.Scheme(), shared)
	c := newCombiner(l.Scheme(), r.Scheme())
	out := relation.New(c.out)
	var err error
	n := 0
	l.Each(func(lt relation.Tuple) bool {
		lk := kl.key(lt)
		r.Each(func(rt relation.Tuple) bool {
			if n%checkBatch == 0 {
				fault.Hit(fault.JoinBatch)
				if err = nl.Gov.CheckRows(out.Len()); err != nil {
					return false
				}
			}
			n++
			if err = nl.Gov.Tick(); err != nil {
				return false
			}
			if kr.key(rt) == lk {
				if _, err = out.Add(c.combine(lt, rt)); err != nil {
					return false
				}
			}
			return true
		})
		return err == nil
	})
	if err != nil {
		return nil, err
	}
	nl.Metrics.JoinWork(0, l.Len()*r.Len(), out.Len())
	nl.Metrics.ObserveJoin(out.Len())
	return out, nil
}

// Hash is a classic build/probe hash join on the shared attributes,
// building on the smaller input.
type Hash struct {
	// Metrics, when non-nil, receives per-join counters: built counts
	// build-side rows, probed counts probe-side rows.
	Metrics *obs.Metrics
	// Gov, when non-nil, is ticked once per build and probe tuple, with a
	// row-budget check per probe batch, so one oversized hash join dies
	// mid-probe instead of after materializing.
	Gov *governor.Governor
}

// Name implements Algorithm.
func (Hash) Name() string { return "hash" }

// WithMetrics implements Metered.
func (h Hash) WithMetrics(m *obs.Metrics) Algorithm {
	h.Metrics = m
	return h
}

// WithGovernor implements Governed.
func (h Hash) WithGovernor(g *governor.Governor) Algorithm {
	h.Gov = g
	return h
}

// Join implements Algorithm.
func (h Hash) Join(l, r *relation.Relation) (*relation.Relation, error) {
	fault.Hit(fault.JoinStart)
	out, err := h.join(l, r)
	if err != nil {
		return nil, err
	}
	built, probed := l.Len(), r.Len()
	if built > probed {
		built, probed = probed, built
	}
	h.Metrics.JoinWork(built, probed, out.Len())
	h.Metrics.ObserveJoin(out.Len())
	return out, nil
}

func (h Hash) join(l, r *relation.Relation) (*relation.Relation, error) {
	shared := l.Scheme().Intersect(r.Scheme())
	kl := newKeyExtractor(l.Scheme(), shared)
	kr := newKeyExtractor(r.Scheme(), shared)
	c := newCombiner(l.Scheme(), r.Scheme())
	out := relation.New(c.out)

	// Build on the smaller input (ties build left), probe the other.
	build, probe := l, r
	keyBuild, keyProbe := kl, kr
	buildIsLeft := true
	if r.Len() < l.Len() {
		build, probe = r, l
		keyBuild, keyProbe = kr, kl
		buildIsLeft = false
	}
	table := make(map[string][]relation.Tuple, build.Len())
	var err error
	build.Each(func(t relation.Tuple) bool {
		if err = h.Gov.Tick(); err != nil {
			return false
		}
		k := keyBuild.key(t)
		table[k] = append(table[k], t)
		return true
	})
	if err != nil {
		return nil, err
	}
	n := 0
	probe.Each(func(pt relation.Tuple) bool {
		if n%checkBatch == 0 {
			fault.Hit(fault.JoinBatch)
			if err = h.Gov.CheckRows(out.Len()); err != nil {
				return false
			}
		}
		n++
		if err = h.Gov.Tick(); err != nil {
			return false
		}
		// One probe tuple can match the entire build side under key
		// skew, so the emit loop ticks per output tuple: the per-probe
		// Tick above bounds nothing once a single bucket dominates.
		for _, bt := range table[keyProbe.key(pt)] {
			if err = h.Gov.Tick(); err != nil {
				return false
			}
			var ot relation.Tuple
			if buildIsLeft {
				ot = c.combine(bt, pt)
			} else {
				ot = c.combine(pt, bt)
			}
			if _, err = out.Add(ot); err != nil {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SortMerge sorts both inputs on the shared-attribute key and merges
// matching groups.
type SortMerge struct {
	// Metrics, when non-nil, receives per-join counters: built counts the
	// rows sorted (both sides), probed counts the rows consumed by the
	// merge.
	Metrics *obs.Metrics
	// Gov, when non-nil, is ticked once per collected row and per emitted
	// pair, with a row-budget check per output batch.
	Gov *governor.Governor
}

// Name implements Algorithm.
func (SortMerge) Name() string { return "sortmerge" }

// WithMetrics implements Metered.
func (sm SortMerge) WithMetrics(m *obs.Metrics) Algorithm {
	sm.Metrics = m
	return sm
}

// WithGovernor implements Governed.
func (sm SortMerge) WithGovernor(g *governor.Governor) Algorithm {
	sm.Gov = g
	return sm
}

// Join implements Algorithm.
func (sm SortMerge) Join(l, r *relation.Relation) (*relation.Relation, error) {
	fault.Hit(fault.JoinStart)
	shared := l.Scheme().Intersect(r.Scheme())
	kl := newKeyExtractor(l.Scheme(), shared)
	kr := newKeyExtractor(r.Scheme(), shared)
	c := newCombiner(l.Scheme(), r.Scheme())
	out := relation.New(c.out)

	type keyed struct {
		key relation.Tuple
		t   relation.Tuple
	}
	collect := func(rel *relation.Relation, ke keyExtractor) ([]keyed, error) {
		rows := make([]keyed, 0, rel.Len())
		var err error
		rel.Each(func(t relation.Tuple) bool {
			if err = sm.Gov.Tick(); err != nil {
				return false
			}
			rows = append(rows, keyed{key: ke.values(t), t: t})
			return true
		})
		if err != nil {
			return nil, err
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].key.Less(rows[j].key) })
		return rows, nil
	}
	ls, err := collect(l, kl)
	if err != nil {
		return nil, err
	}
	rs, err := collect(r, kr)
	if err != nil {
		return nil, err
	}

	i, j, n := 0, 0, 0
	for i < len(ls) && j < len(rs) {
		switch {
		case ls[i].key.Less(rs[j].key):
			i++
		case rs[j].key.Less(ls[i].key):
			j++
		default:
			// Find the extent of the equal-key groups on both sides.
			i2 := i
			for i2 < len(ls) && ls[i2].key.Equal(ls[i].key) {
				i2++
			}
			j2 := j
			for j2 < len(rs) && rs[j2].key.Equal(rs[j].key) {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					if n%checkBatch == 0 {
						fault.Hit(fault.JoinBatch)
						if err := sm.Gov.CheckRows(out.Len()); err != nil {
							return nil, err
						}
					}
					n++
					if err := sm.Gov.Tick(); err != nil {
						return nil, err
					}
					if _, err := out.Add(c.combine(ls[a].t, rs[b].t)); err != nil {
						return nil, err
					}
				}
			}
			i, j = i2, j2
		}
	}
	sm.Metrics.JoinWork(l.Len()+r.Len(), l.Len()+r.Len(), out.Len())
	sm.Metrics.ObserveJoin(out.Len())
	return out, nil
}
