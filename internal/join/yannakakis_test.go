package join

import (
	"errors"
	"testing"

	"relquery/internal/obs"
	"relquery/internal/relation"
)

func TestYannakakisChainWithDanglingTuples(t *testing.T) {
	// A chain with dangling tuples on both ends: the full reducer must
	// delete them before any join materializes a combination.
	r1 := rel(t, "A B", "1 x", "9 dead")
	r2 := rel(t, "B C", "x p", "dead2 q")
	r3 := rel(t, "C D", "p 7", "q 8")
	m := &obs.Metrics{}
	out, stats, err := Yannakakis{Metrics: m}.JoinAllStats([]*relation.Relation{r1, r2, r3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(rel(t, "A B C D", "1 x p 7")) {
		t.Errorf("join = %v", out.Sorted())
	}
	if !stats.Acyclic {
		t.Error("chain reported cyclic")
	}
	if stats.Semijoins != 4 { // 2·(edges−1)
		t.Errorf("semijoins = %d, want 4", stats.Semijoins)
	}
	if stats.InputRows != 6 || stats.ReducedRows != 3 {
		t.Errorf("rows = %d→%d, want 6→3", stats.InputRows, stats.ReducedRows)
	}
	snap := m.Snapshot()
	if snap.YannakakisJoins != 1 || snap.Semijoins != 4 {
		t.Errorf("metrics: yannakakis=%d semijoins=%d", snap.YannakakisJoins, snap.Semijoins)
	}
	// Inputs untouched.
	if r1.Len() != 2 || r2.Len() != 2 || r3.Len() != 2 {
		t.Error("JoinAllStats mutated its inputs")
	}
}

func TestYannakakisCyclicFallback(t *testing.T) {
	r1 := rel(t, "A B", "1 2", "2 3")
	r2 := rel(t, "B C", "2 3", "3 1")
	r3 := rel(t, "A C", "1 3", "2 1")
	want, err := Multi([]*relation.Relation{r1, r2, r3}, Hash{}, Greedy, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := Yannakakis{}.JoinAllStats([]*relation.Relation{r1, r2, r3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Acyclic {
		t.Error("triangle reported acyclic")
	}
	if !out.Equal(want) {
		t.Errorf("cyclic fallback = %v, want %v", out.Sorted(), want.Sorted())
	}
}

func TestYannakakisBinaryAndSingle(t *testing.T) {
	r1 := rel(t, "A B", "1 x", "2 y")
	r2 := rel(t, "B C", "x p")
	out, err := Yannakakis{}.Join(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(rel(t, "A B C", "1 x p")) {
		t.Errorf("binary join = %v", out.Sorted())
	}
	single, stats, err := Yannakakis{}.JoinAllStats([]*relation.Relation{r1}, nil)
	if err != nil || single != r1 {
		t.Errorf("single input: %v, %v", single, err)
	}
	if !stats.Acyclic || stats.InputRows != 2 || stats.ReducedRows != 2 {
		t.Errorf("single-input stats = %+v", stats)
	}
	if _, err := (Yannakakis{}).JoinAll(nil); err == nil {
		t.Error("zero inputs accepted")
	}
}

func TestYannakakisDisconnectedComponents(t *testing.T) {
	// Two components: a cartesian product of a reduced chain and a lone
	// relation. GYO links components through empty-intersection
	// containment, and the tree joins produce the cross product.
	r1 := rel(t, "A B", "1 x", "2 dead")
	r2 := rel(t, "B C", "x p")
	r3 := rel(t, "D", "d1", "d2")
	want, err := Multi([]*relation.Relation{r1, r2, r3}, Hash{}, Greedy, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := Yannakakis{}.JoinAllStats([]*relation.Relation{r1, r2, r3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Acyclic {
		t.Error("disconnected acyclic components reported cyclic")
	}
	if !out.Equal(want) {
		t.Errorf("disconnected join = %v, want %v", out.Sorted(), want.Sorted())
	}
	if out.Len() != 2 { // (1 x p) × {d1, d2}
		t.Errorf("cross product has %d tuples, want 2", out.Len())
	}
}

func TestYannakakisEmptyRelationEmptiesJoin(t *testing.T) {
	r1 := rel(t, "A B", "1 x")
	r2 := rel(t, "B C") // empty
	r3 := rel(t, "C D", "p 7")
	out, stats, err := Yannakakis{}.JoinAllStats([]*relation.Relation{r1, r2, r3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("join with empty input = %v", out.Sorted())
	}
	if stats.ReducedRows != 0 {
		t.Errorf("reduced rows = %d, want 0", stats.ReducedRows)
	}
}

func TestYannakakisObserveAborts(t *testing.T) {
	r1 := rel(t, "A B", "1 x", "2 y")
	r2 := rel(t, "B C", "x p", "y q")
	r3 := rel(t, "C D", "p 7", "q 8")
	boom := errors.New("budget")
	_, _, err := Yannakakis{}.JoinAllStats([]*relation.Relation{r1, r2, r3}, func(*relation.Relation) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("observe error not propagated: %v", err)
	}
}

func TestFullReduceRejectsCyclic(t *testing.T) {
	r1 := rel(t, "A B", "1 1")
	r2 := rel(t, "B C", "1 1")
	r3 := rel(t, "A C", "1 1")
	if _, _, err := FullReduce([]*relation.Relation{r1, r2, r3}); err == nil {
		t.Error("cyclic full reduction accepted")
	}
	out, n, err := FullReduce(nil)
	if err != nil || len(out) != 0 || n != 0 {
		t.Errorf("FullReduce(nil) = %v, %d, %v", out, n, err)
	}
}
