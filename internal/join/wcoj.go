package join

import (
	"fmt"
	"sort"

	"relquery/internal/fault"
	"relquery/internal/governor"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// Generic is a worst-case-optimal n-ary natural join in the
// NPRR/LeapFrog-TrieJoin family ("Worst-case optimal join algorithms",
// Ngo–Porat–Ré–Rudra; "Leapfrog Triejoin", Veldhuizen): instead of
// combining relations pairwise, it fixes one global attribute order and
// extends a partial binding one attribute at a time, intersecting the
// candidate values of every relation containing that attribute. A binding
// survives only while every relation still has matching tuples, so the
// algorithm never materializes anything larger than the final output —
// its running time is O(AGM bound) up to log factors, which is exactly
// the ceiling internal/join/agm.go computes.
//
// This is the antidote to the paper's Lemma 1 phenomenon: Cosmadakis'
// gadget queries force every binary join tree through an intermediate
// exponentially larger than input and output, but the n-ary output itself
// stays small, so the attribute-at-a-time join side-steps the blow-up
// entirely (experiment E7, BENCH_wcoj.txt).
//
// Each relation is indexed as a sorted trie: its tuples, with columns
// permuted into the global attribute order, sorted lexicographically. A
// partial binding then corresponds to a contiguous row range per
// relation, and intersecting a new attribute is a walk over the distinct
// values of the smallest range with binary-search narrowing in the
// others.
type Generic struct {
	// Metrics, when non-nil, receives per-join counters: built counts the
	// rows indexed into sorted tries, probed counts candidate values
	// examined, and the wcoj-specific candidate/intersection counters.
	Metrics *obs.Metrics
	// Gov, when non-nil, is ticked during trie construction and once per
	// candidate value of the binding search, with a row-budget check as
	// output bindings accumulate, so even a search that stays under the
	// AGM bound dies promptly on cancel or budget violation.
	Gov *governor.Governor
}

// GenericStats reports one generic join's search effort.
type GenericStats struct {
	// Candidates counts the distinct candidate values enumerated across
	// all attribute intersections (each was tested against every other
	// relation containing the attribute).
	Candidates int
	// Intersections counts the attribute-level intersection passes — one
	// per node of the binding search tree.
	Intersections int
}

// Name implements Algorithm.
func (Generic) Name() string { return "wcoj" }

// WithMetrics implements Metered.
func (g Generic) WithMetrics(m *obs.Metrics) Algorithm {
	g.Metrics = m
	return g
}

// WithGovernor implements Governed.
func (g Generic) WithGovernor(gov *governor.Governor) Algorithm {
	g.Gov = gov
	return g
}

// Join implements Algorithm; a binary generic join is simply the two-input
// case of JoinAll.
func (g Generic) Join(l, r *relation.Relation) (*relation.Relation, error) {
	return g.JoinAll([]*relation.Relation{l, r})
}

// JoinAll implements MultiAlgorithm.
func (g Generic) JoinAll(inputs []*relation.Relation) (*relation.Relation, error) {
	out, _, err := g.JoinAllStats(inputs)
	return out, err
}

// JoinAllStats is JoinAll returning the search-effort counters, for trace
// spans. Like Multi, joining zero relations is an error and a single
// relation passes through unchanged.
func (g Generic) JoinAllStats(inputs []*relation.Relation) (*relation.Relation, GenericStats, error) {
	fault.Hit(fault.JoinStart)
	switch len(inputs) {
	case 0:
		return nil, GenericStats{}, fmt.Errorf("join: JoinAll requires at least one input")
	case 1:
		return inputs[0], GenericStats{}, nil
	}
	// Output scheme: left-to-right union, matching the binary combiners.
	outScheme := inputs[0].Scheme()
	for _, r := range inputs[1:] {
		outScheme = outScheme.Union(r.Scheme())
	}
	for _, r := range inputs {
		if r.Empty() {
			empty, err := relation.FromDistinctTuples(outScheme)
			if err != nil {
				return nil, GenericStats{}, err
			}
			g.Metrics.ObserveJoin(0)
			return empty, GenericStats{}, nil
		}
	}

	order := attributeOrder(inputs, outScheme)
	tries := make([]*sortedTrie, len(inputs))
	indexed := 0
	for i, r := range inputs {
		t, err := newSortedTrie(r, order, g.Gov)
		if err != nil {
			return nil, GenericStats{}, err
		}
		tries[i] = t
		indexed += r.Len()
	}
	j := newGenericJoin(outScheme, order, tries)
	j.gov = g.Gov
	j.search(0)
	if j.err != nil {
		return nil, GenericStats{}, j.err
	}

	// Distinct bindings yield distinct output tuples, so the result
	// assembles without re-deduplication.
	out, err := relation.FromDistinctTuples(outScheme, j.tuples)
	if err != nil {
		return nil, GenericStats{}, err
	}
	gs := GenericStats{Candidates: j.candidates, Intersections: j.intersections}
	g.Metrics.JoinWork(indexed, j.candidates, out.Len())
	g.Metrics.ObserveJoin(out.Len())
	g.Metrics.WCOJ(gs.Candidates, gs.Intersections)
	return out, gs, nil
}

// attributeOrder fixes the global attribute order the tries and the
// binding search share: attributes shared by more relations come first
// (they constrain the search most), ties broken by the total fractional
// edge-cover weight of the relations containing the attribute (heavier
// cover mass = the attribute sits in the relations the AGM bound charges,
// so binding it early prunes against the bound), then by union-scheme
// position for determinism.
func attributeOrder(inputs []*relation.Relation, union relation.Scheme) []relation.Attribute {
	schemes := make([]relation.Scheme, len(inputs))
	sizes := make([]int, len(inputs))
	for i, r := range inputs {
		schemes[i] = r.Scheme()
		sizes[i] = r.Len()
	}
	cover, _ := FractionalCover(schemes, sizes)

	attrs := union.Attrs()
	count := make([]int, len(attrs))
	mass := make([]float64, len(attrs))
	for p, a := range attrs {
		for i, sc := range schemes {
			if sc.Has(a) {
				count[p]++
				if cover != nil {
					mass[p] += cover[i]
				}
			}
		}
	}
	pos := make([]int, len(attrs))
	for i := range pos {
		pos[i] = i
	}
	sort.SliceStable(pos, func(x, y int) bool {
		i, j := pos[x], pos[y]
		if count[i] != count[j] {
			return count[i] > count[j]
		}
		if mass[i] != mass[j] {
			return mass[i] > mass[j]
		}
		return i < j
	})
	order := make([]relation.Attribute, len(attrs))
	for x, i := range pos {
		order[x] = attrs[i]
	}
	return order
}

// sortedTrie is one relation's trie view: tuples with columns permuted
// into the global attribute order (restricted to the relation's scheme)
// and sorted lexicographically, so every partial binding corresponds to a
// contiguous row range and each trie level is a sorted value column.
type sortedTrie struct {
	depthOf map[relation.Attribute]int
	rows    [][]relation.Value
}

func newSortedTrie(r *relation.Relation, order []relation.Attribute, gov *governor.Governor) (*sortedTrie, error) {
	sc := r.Scheme()
	depthOf := make(map[relation.Attribute]int, sc.Len())
	cols := make([]int, 0, sc.Len())
	for _, a := range order {
		if j, ok := sc.Pos(a); ok {
			depthOf[a] = len(cols)
			cols = append(cols, j)
		}
	}
	rows := make([][]relation.Value, 0, r.Len())
	var err error
	r.Each(func(t relation.Tuple) bool {
		if err = gov.Tick(); err != nil {
			return false
		}
		row := make([]relation.Value, len(cols))
		for d, j := range cols {
			row[d] = t[j]
		}
		rows = append(rows, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return &sortedTrie{depthOf: depthOf, rows: rows}, nil
}

// trieRange is a half-open row range [lo, hi) of one trie — the tuples
// compatible with the current partial binding.
type trieRange struct{ lo, hi int }

// genericJoin is the state of one attribute-at-a-time binding search.
type genericJoin struct {
	order  []relation.Attribute
	tries  []*sortedTrie
	parts  [][]int     // parts[k]: tries whose scheme contains order[k]
	ranges []trieRange // current range per trie
	bind   []relation.Value
	outPos []int // output column -> order index
	tuples []relation.Tuple

	candidates    int
	intersections int

	// gov is the search's cooperative checkpoint; err is the abort
	// latch — once set, every recursion level unwinds immediately.
	gov *governor.Governor
	err error
}

func newGenericJoin(out relation.Scheme, order []relation.Attribute, tries []*sortedTrie) *genericJoin {
	rank := make(map[relation.Attribute]int, len(order))
	for k, a := range order {
		rank[a] = k
	}
	parts := make([][]int, len(order))
	for k, a := range order {
		for i, tr := range tries {
			if _, ok := tr.depthOf[a]; ok {
				parts[k] = append(parts[k], i)
			}
		}
	}
	ranges := make([]trieRange, len(tries))
	for i, tr := range tries {
		ranges[i] = trieRange{0, len(tr.rows)}
	}
	outPos := make([]int, out.Len())
	for i := 0; i < out.Len(); i++ {
		outPos[i] = rank[out.Attr(i)]
	}
	return &genericJoin{
		order:  order,
		tries:  tries,
		parts:  parts,
		ranges: ranges,
		bind:   make([]relation.Value, len(order)),
		outPos: outPos,
	}
}

// search extends the binding with the k-th attribute: it walks the
// distinct candidate values of the relation with the smallest compatible
// range and narrows every other relation containing the attribute by
// binary search, recursing only while all of them stay non-empty. A
// governor violation latches j.err and unwinds the whole recursion.
func (j *genericJoin) search(k int) {
	if j.err != nil {
		return
	}
	if k == len(j.order) {
		t := make(relation.Tuple, len(j.outPos))
		for i, oi := range j.outPos {
			t[i] = j.bind[oi]
		}
		j.tuples = append(j.tuples, t)
		if len(j.tuples)%checkBatch == 0 {
			j.err = j.gov.CheckRows(len(j.tuples))
		}
		return
	}
	attr := j.order[k]
	parts := j.parts[k]
	fault.Hit(fault.WCOJSearch)

	saved := make([]trieRange, len(parts))
	seedIdx := 0
	for i, p := range parts {
		saved[i] = j.ranges[p]
		if w, best := saved[i].hi-saved[i].lo, saved[seedIdx].hi-saved[seedIdx].lo; w < best {
			seedIdx = i
		}
	}
	seed := parts[seedIdx]
	st := j.tries[seed]
	d := st.depthOf[attr]
	j.intersections++

	lo, hi := saved[seedIdx].lo, saved[seedIdx].hi
	for lo < hi {
		if j.err = j.gov.Tick(); j.err != nil {
			return
		}
		v := st.rows[lo][d]
		vhi := upperBound(st.rows, lo, hi, d, v)
		j.candidates++

		ok := true
		for i, p := range parts {
			if p == seed {
				j.ranges[p] = trieRange{lo, vhi}
				continue
			}
			tp := j.tries[p]
			dp := tp.depthOf[attr]
			nlo := lowerBound(tp.rows, saved[i].lo, saved[i].hi, dp, v)
			nhi := upperBound(tp.rows, nlo, saved[i].hi, dp, v)
			if nlo == nhi {
				ok = false
				break
			}
			j.ranges[p] = trieRange{nlo, nhi}
		}
		if ok {
			j.bind[k] = v
			j.search(k + 1)
			if j.err != nil {
				return
			}
		}
		lo = vhi
	}
	for i, p := range parts {
		j.ranges[p] = saved[i]
	}
}

// lowerBound returns the first index in [lo, hi) whose column-d value is
// ≥ v (hi when none).
func lowerBound(rows [][]relation.Value, lo, hi, d int, v relation.Value) int {
	return lo + sort.Search(hi-lo, func(i int) bool { return rows[lo+i][d] >= v })
}

// upperBound returns the first index in [lo, hi) whose column-d value is
// > v (hi when none).
func upperBound(rows [][]relation.Value, lo, hi, d int, v relation.Value) int {
	return lo + sort.Search(hi-lo, func(i int) bool { return rows[lo+i][d] > v })
}

var (
	_ Algorithm      = Generic{}
	_ Metered        = Generic{}
	_ MultiAlgorithm = Generic{}
)
