package join

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"relquery/internal/relation"
)

func rel(t *testing.T, scheme string, rows ...string) *relation.Relation {
	t.Helper()
	s, err := relation.SchemeOf(scheme)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	for _, row := range rows {
		if _, err := r.Add(relation.TupleOf(strings.Fields(row)...)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func allAlgorithms(t *testing.T) []Algorithm {
	t.Helper()
	var algs []Algorithm
	for _, n := range Names() {
		a, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		algs = append(algs, a)
	}
	return algs
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		a, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if a.Name() != n {
			t.Errorf("ByName(%q).Name() = %q", n, a.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) succeeded")
	}
}

func TestAlgorithmsAgreeOnFixedCases(t *testing.T) {
	cases := []struct {
		name string
		l, r *relation.Relation
		want *relation.Relation
	}{
		{
			"shared attribute",
			rel(t, "A B", "1 x", "2 y"),
			rel(t, "B C", "x p", "x q", "z r"),
			rel(t, "A B C", "1 x p", "1 x q"),
		},
		{
			"disjoint (cross product)",
			rel(t, "A", "1", "2"),
			rel(t, "B", "u", "v"),
			rel(t, "A B", "1 u", "1 v", "2 u", "2 v"),
		},
		{
			"identical schemes (intersection)",
			rel(t, "A B", "1 1", "2 2"),
			rel(t, "A B", "2 2", "3 3"),
			rel(t, "A B", "2 2"),
		},
		{
			"empty side",
			rel(t, "A B", "1 1"),
			rel(t, "B C"),
			rel(t, "A B C"),
		},
		{
			"containment",
			rel(t, "A B C", "1 x p", "2 y q"),
			rel(t, "B", "x"),
			rel(t, "A B C", "1 x p"),
		},
	}
	for _, alg := range allAlgorithms(t) {
		for _, tc := range cases {
			got, err := alg.Join(tc.l, tc.r)
			if err != nil {
				t.Fatalf("%s/%s: %v", alg.Name(), tc.name, err)
			}
			if !got.Equal(tc.want) {
				t.Errorf("%s/%s: got %v want %v", alg.Name(), tc.name, got.Sorted(), tc.want.Sorted())
			}
		}
	}
}

func randomRelation(rng *rand.Rand, scheme relation.Scheme, maxRows int) *relation.Relation {
	r := relation.New(scheme)
	alphabet := []string{"0", "1", "e"}
	for i, n := 0, rng.Intn(maxRows+1); i < n; i++ {
		t := make(relation.Tuple, scheme.Len())
		for j := range t {
			t[j] = relation.Value(alphabet[rng.Intn(len(alphabet))])
		}
		r.MustAdd(t)
	}
	return r
}

func TestQuickAlgorithmsAgreeWithNestedLoop(t *testing.T) {
	schemes := []struct{ l, r relation.Scheme }{
		{relation.MustScheme("A", "B"), relation.MustScheme("B", "C")},
		{relation.MustScheme("A", "B", "C"), relation.MustScheme("B", "C", "D")},
		{relation.MustScheme("A"), relation.MustScheme("B")},
		{relation.MustScheme("A", "B"), relation.MustScheme("A", "B")},
	}
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := schemes[int(pick)%len(schemes)]
		l := randomRelation(rng, sc.l, 12)
		r := randomRelation(rng, sc.r, 12)
		ref, err := NestedLoop{}.Join(l, r)
		if err != nil {
			return false
		}
		for _, alg := range []Algorithm{Hash{}, SortMerge{}} {
			got, err := alg.Join(l, r)
			if err != nil || !got.Equal(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMultiSequentialMatchesGreedy(t *testing.T) {
	chain := []*relation.Relation{
		rel(t, "A B", "1 x", "2 y"),
		rel(t, "B C", "x p", "y q"),
		rel(t, "C D", "p 7", "q 8", "q 9"),
	}
	seq, err := Multi(chain, Hash{}, Sequential, nil)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Multi(chain, Hash{}, Greedy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(greedy) {
		t.Errorf("orders disagree:\nseq %v\ngreedy %v", seq.Sorted(), greedy.Sorted())
	}
	want := rel(t, "A B C D", "1 x p 7", "2 y q 8", "2 y q 9")
	if !seq.Equal(want) {
		t.Errorf("Multi = %v, want %v", seq.Sorted(), want.Sorted())
	}
}

func TestMultiEdgeCases(t *testing.T) {
	if _, err := Multi(nil, Hash{}, Greedy, nil); err == nil {
		t.Error("Multi(nil) succeeded")
	}
	one := rel(t, "A", "1")
	got, err := Multi([]*relation.Relation{one}, Hash{}, Greedy, nil)
	if err != nil || !got.Equal(one) {
		t.Errorf("Multi(single) = %v, %v", got, err)
	}
}

func TestMultiStats(t *testing.T) {
	// Star join: center C(A,B,X) with two big satellites; greedy should
	// avoid the cross product that sequential order performs.
	center := rel(t, "A B", "1 1", "2 2")
	satA := rel(t, "A", "1")
	satB := rel(t, "B", "2")
	var seqStats, greedyStats Stats
	// Sequential order satA * satB first: cross product of satellites.
	inputs := []*relation.Relation{satA, satB, center}
	if _, err := Multi(inputs, Hash{}, Sequential, &seqStats); err != nil {
		t.Fatal(err)
	}
	if _, err := Multi(inputs, Hash{}, Greedy, &greedyStats); err != nil {
		t.Fatal(err)
	}
	seqJoins, seqMax, _ := seqStats.Snapshot()
	greedyJoins, greedyMax, _ := greedyStats.Snapshot()
	if seqJoins != 2 || greedyJoins != 2 {
		t.Errorf("joins: seq=%d greedy=%d", seqJoins, greedyJoins)
	}
	if greedyMax > seqMax {
		t.Errorf("greedy max %d > sequential max %d", greedyMax, seqMax)
	}
	if !strings.Contains(seqStats.String(), "max_intermediate=") {
		t.Errorf("Stats.String = %q", seqStats.String())
	}
}

func TestGreedyPrefersSharedAttributes(t *testing.T) {
	// Three relations where the two smallest share no attributes; greedy
	// must still prefer a shared-attribute pair over the cross product.
	a := rel(t, "A X", "1 u") // size 1
	b := rel(t, "B Y", "2 v") // size 1, disjoint from a
	c := rel(t, "A B", "1 2", "1 3", "9 9")
	var stats Stats
	got, err := Multi([]*relation.Relation{a, b, c}, Hash{}, Greedy, &stats)
	if err != nil {
		t.Fatal(err)
	}
	want := rel(t, "A X B Y", "1 u 2 v")
	if !got.Equal(want) {
		t.Errorf("got %v want %v", got.Sorted(), want.Sorted())
	}
	// The first join must have been a*c or b*c (shared), both of size <= 2,
	// so no intermediate exceeds 2.
	if _, maxI, _ := stats.Snapshot(); maxI > 2 {
		t.Errorf("greedy performed a cross product first: %v", stats.String())
	}
}

func TestOrderByName(t *testing.T) {
	for _, o := range []Order{Sequential, Greedy} {
		got, err := OrderByName(o.String())
		if err != nil || got != o {
			t.Errorf("OrderByName(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := OrderByName("bogus"); err == nil {
		t.Error("OrderByName(bogus) succeeded")
	}
}
