package join

import (
	"relquery/internal/relation"
)

// Cardinality estimation in the classic System R style: the estimated size
// of a natural join is the product of the input sizes divided, for each
// shared attribute, by the larger of the two distinct-value counts —
// assuming uniformity and inclusion, the textbook selectivity model.

// ColumnStats holds per-attribute distinct-value counts for one relation.
type ColumnStats struct {
	// Rows is the relation's cardinality.
	Rows int
	// Distinct maps each attribute to its number of distinct values.
	Distinct map[relation.Attribute]int
}

// Analyze computes column statistics for a relation in one pass.
func Analyze(r *relation.Relation) ColumnStats {
	s := ColumnStats{
		Rows:     r.Len(),
		Distinct: make(map[relation.Attribute]int, r.Scheme().Len()),
	}
	scheme := r.Scheme()
	sets := make([]map[relation.Value]struct{}, scheme.Len())
	for i := range sets {
		sets[i] = make(map[relation.Value]struct{})
	}
	r.Each(func(t relation.Tuple) bool {
		for i, v := range t {
			sets[i][v] = struct{}{}
		}
		return true
	})
	for i := 0; i < scheme.Len(); i++ {
		s.Distinct[scheme.Attr(i)] = len(sets[i])
	}
	return s
}

// EstimateJoinSize predicts |l ∗ r| from the two relations' statistics and
// schemes: |l|·|r| / ∏_{a shared} max(V(a,l), V(a,r)).
func EstimateJoinSize(lScheme relation.Scheme, l ColumnStats, rScheme relation.Scheme, r ColumnStats) float64 {
	est := float64(l.Rows) * float64(r.Rows)
	shared := lScheme.Intersect(rScheme)
	for _, a := range shared.Attrs() {
		vl, vr := l.Distinct[a], r.Distinct[a]
		if vl < vr {
			vl = vr
		}
		if vl > 1 {
			est /= float64(vl)
		}
	}
	return est
}

// PredictedPeakGreedy simulates the greedy binary planner purely over
// System R estimates — no joins are executed — and returns the largest
// intermediate result a binary plan over these inputs is predicted to
// materialize. The worst-case-optimal auto-selector compares it against
// the n-ary AGM bound: a predicted peak above the bound means every
// binary combination step is expected to build more tuples than the
// n-ary output can justify, the regime of the paper's Lemma 1 gadgets.
// Inputs with fewer than two relations predict no intermediates (0).
func PredictedPeakGreedy(inputs []*relation.Relation) float64 {
	est, _ := greedyPeaks(inputs)
	return est
}

// WorstCasePeakGreedy simulates the same greedy pairing but scores each
// intermediate accumulator by the AGM bound of the base relations merged
// into it — the largest result a binary plan could be FORCED to
// materialize at that step, independent of the data's correlations. The
// estimate-based peak misses the Lemma 1 gadgets precisely because their
// correlations break System R's independence assumption; the worst-case
// peak does not. The final accumulator (the full input set) is excluded:
// its bound is the n-ary AGM bound itself, which no plan can avoid.
func WorstCasePeakGreedy(inputs []*relation.Relation) float64 {
	_, worst := greedyPeaks(inputs)
	return worst
}

// greedyPeaks runs the shared greedy-plan simulation and returns both the
// System R estimated peak and the worst-case (AGM) peak over intermediate
// accumulators.
func greedyPeaks(inputs []*relation.Relation) (estPeak, worstPeak float64) {
	if len(inputs) < 2 {
		return 0, 0
	}
	type estRel struct {
		scheme   relation.Scheme
		rows     float64
		distinct map[relation.Attribute]float64
	}
	estimate := func(l, r estRel) float64 {
		est := l.rows * r.rows
		for _, a := range l.scheme.Intersect(r.scheme).Attrs() {
			if v := max(l.distinct[a], r.distinct[a]); v > 1 {
				est /= v
			}
		}
		return est
	}
	pending := make([]estRel, len(inputs))
	base := make([][]int, len(inputs))
	for i, r := range inputs {
		s := Analyze(r)
		d := make(map[relation.Attribute]float64, len(s.Distinct))
		for a, v := range s.Distinct {
			d[a] = float64(v)
		}
		pending[i] = estRel{scheme: r.Scheme(), rows: float64(s.Rows), distinct: d}
		base[i] = []int{i}
	}
	// subsetBound is the AGM bound of the base relations an accumulator
	// holds.
	subsetBound := func(idx []int) float64 {
		schemes := make([]relation.Scheme, len(idx))
		sizes := make([]int, len(idx))
		for k, i := range idx {
			schemes[k] = inputs[i].Scheme()
			sizes[k] = inputs[i].Len()
		}
		return AGMBound(schemes, sizes)
	}
	peak := 0.0
	for len(pending) > 1 {
		// Mirror pickPairEstimated: prefer shared-attribute pairs, then
		// the smallest estimated join size.
		bestI, bestJ := 0, 1
		bestShared := false
		bestCost := -1.0
		for i := 0; i < len(pending); i++ {
			for j := i + 1; j < len(pending); j++ {
				shared := !pending[i].scheme.Disjoint(pending[j].scheme)
				cost := estimate(pending[i], pending[j])
				switch {
				case shared && !bestShared,
					shared == bestShared && (bestCost < 0 || cost < bestCost):
					bestI, bestJ, bestShared, bestCost = i, j, shared, cost
				}
			}
		}
		l, r := pending[bestI], pending[bestJ]
		est := estimate(l, r)
		if est > peak {
			peak = est
		}
		merged := estRel{
			scheme:   l.scheme.Union(r.scheme),
			rows:     est,
			distinct: make(map[relation.Attribute]float64, l.scheme.Len()+r.scheme.Len()),
		}
		for _, a := range merged.scheme.Attrs() {
			v := 0.0
			switch {
			case l.scheme.Has(a) && r.scheme.Has(a):
				v = min(l.distinct[a], r.distinct[a])
			case l.scheme.Has(a):
				v = l.distinct[a]
			default:
				v = r.distinct[a]
			}
			merged.distinct[a] = min(v, max(est, 1))
		}
		mergedBase := append(append([]int{}, base[bestI]...), base[bestJ]...)
		if len(pending) > 2 { // intermediate, not the final full-set result
			if wc := subsetBound(mergedBase); wc > worstPeak {
				worstPeak = wc
			}
		}
		pending = append(pending[:bestJ], pending[bestJ+1:]...)
		base = append(base[:bestJ], base[bestJ+1:]...)
		pending[bestI] = merged
		base[bestI] = mergedBase
	}
	return peak, worstPeak
}

// PlanEstimated orders an n-ary join greedily by ESTIMATED intermediate
// size (instead of Greedy's actual-size product): repeatedly join the pair
// with the smallest estimate, preferring pairs that share attributes. It
// returns the join result; stats (optional) records actual intermediate
// sizes so callers can compare prediction against reality.
func PlanEstimated(inputs []*relation.Relation, alg Algorithm, stats *Stats) (*relation.Relation, error) {
	if len(inputs) == 0 {
		return Multi(inputs, alg, Greedy, stats) // delegate the error
	}
	pending := make([]*relation.Relation, len(inputs))
	copy(pending, inputs)
	pstats := make([]ColumnStats, len(inputs))
	for i, r := range pending {
		pstats[i] = Analyze(r)
	}
	for len(pending) > 1 {
		bi, bj := pickPairEstimated(pending, pstats)
		joined, err := alg.Join(pending[bi], pending[bj])
		if err != nil {
			return nil, err
		}
		stats.observe(joined)
		pending = append(pending[:bj], pending[bj+1:]...)
		pstats = append(pstats[:bj], pstats[bj+1:]...)
		pending[bi] = joined
		pstats[bi] = Analyze(joined)
	}
	return pending[0], nil
}

// pickPairEstimated chooses the pair with the smallest estimated join
// size, preferring shared-attribute pairs over cross products.
func pickPairEstimated(rels []*relation.Relation, stats []ColumnStats) (int, int) {
	bestI, bestJ := 0, 1
	bestShared := false
	bestCost := -1.0
	for i := 0; i < len(rels); i++ {
		for j := i + 1; j < len(rels); j++ {
			shared := !rels[i].Scheme().Disjoint(rels[j].Scheme())
			cost := EstimateJoinSize(rels[i].Scheme(), stats[i], rels[j].Scheme(), stats[j])
			better := false
			switch {
			case shared && !bestShared:
				better = true
			case shared == bestShared && (bestCost < 0 || cost < bestCost):
				better = true
			}
			if better {
				bestI, bestJ, bestShared, bestCost = i, j, shared, cost
			}
		}
	}
	return bestI, bestJ
}
