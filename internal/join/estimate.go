package join

import (
	"relquery/internal/relation"
)

// Cardinality estimation in the classic System R style: the estimated size
// of a natural join is the product of the input sizes divided, for each
// shared attribute, by the larger of the two distinct-value counts —
// assuming uniformity and inclusion, the textbook selectivity model.

// ColumnStats holds per-attribute distinct-value counts for one relation.
type ColumnStats struct {
	// Rows is the relation's cardinality.
	Rows int
	// Distinct maps each attribute to its number of distinct values.
	Distinct map[relation.Attribute]int
}

// Analyze computes column statistics for a relation in one pass.
func Analyze(r *relation.Relation) ColumnStats {
	s := ColumnStats{
		Rows:     r.Len(),
		Distinct: make(map[relation.Attribute]int, r.Scheme().Len()),
	}
	scheme := r.Scheme()
	sets := make([]map[relation.Value]struct{}, scheme.Len())
	for i := range sets {
		sets[i] = make(map[relation.Value]struct{})
	}
	r.Each(func(t relation.Tuple) bool {
		for i, v := range t {
			sets[i][v] = struct{}{}
		}
		return true
	})
	for i := 0; i < scheme.Len(); i++ {
		s.Distinct[scheme.Attr(i)] = len(sets[i])
	}
	return s
}

// EstimateJoinSize predicts |l ∗ r| from the two relations' statistics and
// schemes: |l|·|r| / ∏_{a shared} max(V(a,l), V(a,r)).
func EstimateJoinSize(lScheme relation.Scheme, l ColumnStats, rScheme relation.Scheme, r ColumnStats) float64 {
	est := float64(l.Rows) * float64(r.Rows)
	shared := lScheme.Intersect(rScheme)
	for _, a := range shared.Attrs() {
		vl, vr := l.Distinct[a], r.Distinct[a]
		if vl < vr {
			vl = vr
		}
		if vl > 1 {
			est /= float64(vl)
		}
	}
	return est
}

// PlanEstimated orders an n-ary join greedily by ESTIMATED intermediate
// size (instead of Greedy's actual-size product): repeatedly join the pair
// with the smallest estimate, preferring pairs that share attributes. It
// returns the join result; stats (optional) records actual intermediate
// sizes so callers can compare prediction against reality.
func PlanEstimated(inputs []*relation.Relation, alg Algorithm, stats *Stats) (*relation.Relation, error) {
	if len(inputs) == 0 {
		return Multi(inputs, alg, Greedy, stats) // delegate the error
	}
	pending := make([]*relation.Relation, len(inputs))
	copy(pending, inputs)
	pstats := make([]ColumnStats, len(inputs))
	for i, r := range pending {
		pstats[i] = Analyze(r)
	}
	for len(pending) > 1 {
		bi, bj := pickPairEstimated(pending, pstats)
		joined, err := alg.Join(pending[bi], pending[bj])
		if err != nil {
			return nil, err
		}
		stats.observe(joined)
		pending = append(pending[:bj], pending[bj+1:]...)
		pstats = append(pstats[:bj], pstats[bj+1:]...)
		pending[bi] = joined
		pstats[bi] = Analyze(joined)
	}
	return pending[0], nil
}

// pickPairEstimated chooses the pair with the smallest estimated join
// size, preferring shared-attribute pairs over cross products.
func pickPairEstimated(rels []*relation.Relation, stats []ColumnStats) (int, int) {
	bestI, bestJ := 0, 1
	bestShared := false
	bestCost := -1.0
	for i := 0; i < len(rels); i++ {
		for j := i + 1; j < len(rels); j++ {
			shared := !rels[i].Scheme().Disjoint(rels[j].Scheme())
			cost := EstimateJoinSize(rels[i].Scheme(), stats[i], rels[j].Scheme(), stats[j])
			better := false
			switch {
			case shared && !bestShared:
				better = true
			case shared == bestShared && (bestCost < 0 || cost < bestCost):
				better = true
			}
			if better {
				bestI, bestJ, bestShared, bestCost = i, j, shared, cost
			}
		}
	}
	return bestI, bestJ
}
