package join

import (
	"fmt"

	"relquery/internal/fault"
	"relquery/internal/governor"
	"relquery/internal/obs"
	"relquery/internal/relation"
)

// Yannakakis evaluates α-acyclic n-ary natural joins with Yannakakis'
// algorithm: GYO ear removal yields a join tree, a leaf-to-root plus
// root-to-leaf semijoin sweep (the "full reducer") deletes every dangling
// tuple, and the reduced relations are then joined along the tree. After
// full reduction every tuple of every relation extends to at least one
// output tuple, so each intermediate join along the tree is bounded by
// the output projected onto its subtree — evaluation is linear in input
// plus output, the Durand–Grandjean tractable frontier of exactly the
// problem the paper proves hard for general (cyclic) queries.
//
// The contrast with the other strategies: the greedy binary planner can
// be forced to materialize dangling combinations exponentially larger
// than the output, and the worst-case-optimal Generic join, while never
// exceeding the AGM bound, still sorts every input into a trie up front.
// On acyclic inputs Yannakakis does neither — semijoins only shrink, and
// the tree joins never outgrow the output.
//
// On a cyclic hypergraph the algorithm does not apply; JoinAll then
// falls back to the greedy binary plan over semijoin-reduced pairwise
// joins (sound for any join), so the type is safe to force on arbitrary
// queries via -join=yannakakis. The algebra evaluator detects the cyclic
// case up front and routes it through its normal binary path instead, so
// budgets and span accounting stay uniform.
type Yannakakis struct {
	// Metrics, when non-nil, receives per-join counters: each semijoin
	// pass's output cardinality, the tree joins' tuple traffic (via the
	// inner hash join), and the per-evaluation yannakakis counters.
	Metrics *obs.Metrics
	// Gov, when non-nil, is ticked inside every semijoin sweep and every
	// tree join (via the governed inner hash join), so both full-reducer
	// passes and the final joins abort at tuple granularity.
	Gov *governor.Governor
}

// YannakakisStats reports one acyclic join's full-reducer effort.
type YannakakisStats struct {
	// Acyclic records the GYO verdict: false means the hypergraph was
	// cyclic and the greedy-binary fallback produced the result.
	Acyclic bool
	// Semijoins counts the semijoin passes executed by the full reducer
	// (bottom-up plus top-down; 2·(edges−1) on acyclic inputs).
	Semijoins int
	// InputRows totals the input cardinalities before reduction.
	InputRows int
	// ReducedRows totals the cardinalities surviving the full reducer —
	// the "semijoin-pass cardinality" EXPLAIN ANALYZE reports. Dangling
	// tuples are exactly InputRows − ReducedRows.
	ReducedRows int
}

// Name implements Algorithm.
func (Yannakakis) Name() string { return "yannakakis" }

// WithMetrics implements Metered.
func (y Yannakakis) WithMetrics(m *obs.Metrics) Algorithm {
	y.Metrics = m
	return y
}

// WithGovernor implements Governed.
func (y Yannakakis) WithGovernor(g *governor.Governor) Algorithm {
	y.Gov = g
	return y
}

// Join implements Algorithm; two relations are always α-acyclic, so a
// binary Yannakakis join is a pairwise full reduction (one semijoin each
// way) followed by a hash join of the reduced sides.
func (y Yannakakis) Join(l, r *relation.Relation) (*relation.Relation, error) {
	return y.JoinAll([]*relation.Relation{l, r})
}

// JoinAll implements MultiAlgorithm.
func (y Yannakakis) JoinAll(inputs []*relation.Relation) (*relation.Relation, error) {
	out, _, err := y.JoinAllStats(inputs, nil)
	return out, err
}

// JoinAllStats is JoinAll returning the full-reducer counters for trace
// spans. observe, when non-nil, is called with every relation the
// algorithm materializes — each semijoin result and each join along the
// tree — and a non-nil return aborts evaluation (the evaluator's budget
// and peak-tracking hook). Like Multi, joining zero relations is an
// error and a single relation passes through unchanged.
func (y Yannakakis) JoinAllStats(inputs []*relation.Relation, observe func(*relation.Relation) error) (*relation.Relation, YannakakisStats, error) {
	fault.Hit(fault.JoinStart)
	if err := y.Gov.Check(); err != nil {
		return nil, YannakakisStats{}, err
	}
	switch len(inputs) {
	case 0:
		return nil, YannakakisStats{}, fmt.Errorf("join: JoinAll requires at least one input")
	case 1:
		return inputs[0], YannakakisStats{Acyclic: true, InputRows: inputs[0].Len(), ReducedRows: inputs[0].Len()}, nil
	}
	stats := YannakakisStats{}
	for _, r := range inputs {
		stats.InputRows += r.Len()
	}
	tree, ok := JoinTreeOf(SchemesOf(inputs))
	if !ok {
		// Cyclic: no join tree exists. Fall back to the greedy binary
		// plan with pairwise-reduced joins — sound for any join, just
		// without the acyclic output-boundedness guarantee.
		var alg Algorithm = Hash{Metrics: y.Metrics, Gov: y.Gov}
		if observe != nil {
			alg = observedAlgorithm{inner: alg, observe: observe}
		}
		out, err := Multi(inputs, alg, Greedy, nil)
		return out, stats, err
	}
	stats.Acyclic = true

	reduced, semijoins, err := y.fullReduce(inputs, tree, observe)
	if err != nil {
		return nil, stats, err
	}
	stats.Semijoins = semijoins
	for _, r := range reduced {
		stats.ReducedRows += r.Len()
	}

	// Join children into parents along the tree, leaves first: with the
	// relations fully reduced, every intermediate tuple extends to an
	// output tuple, so no step outgrows the output.
	alg := Hash{Metrics: y.Metrics, Gov: y.Gov}
	acc := make([]*relation.Relation, len(reduced))
	copy(acc, reduced)
	for _, i := range tree.Order {
		p := tree.Parent[i]
		if p < 0 {
			continue
		}
		joined, err := alg.Join(acc[p], acc[i])
		if err != nil {
			return nil, stats, err
		}
		if observe != nil {
			if err := observe(joined); err != nil {
				return nil, stats, err
			}
		}
		acc[p] = joined
	}
	root := tree.Root()
	if root < 0 {
		return nil, stats, fmt.Errorf("join: internal error: join tree has no root")
	}
	y.Metrics.Yannakakis()
	return acc[root], stats, nil
}

// fullReduce runs the two semijoin sweeps over the join tree: leaf to
// root (parent ⋉ child, in ear-removal order), then root to leaf (child
// ⋉ parent, reversed). After both sweeps the relations are globally
// consistent: every remaining tuple participates in at least one output
// tuple. observe (optional) sees every semijoin result.
func (y Yannakakis) fullReduce(rels []*relation.Relation, tree *JoinTree, observe func(*relation.Relation) error) ([]*relation.Relation, int, error) {
	out := make([]*relation.Relation, len(rels))
	copy(out, rels)
	semijoins := 0
	reduce := func(dst, src int) error {
		reduced, err := SemijoinWith(out[dst], out[src], y.Gov)
		if err != nil {
			return err
		}
		semijoins++
		y.Metrics.Semijoin(reduced.Len())
		if observe != nil {
			if err := observe(reduced); err != nil {
				return err
			}
		}
		out[dst] = reduced
		return nil
	}
	for _, i := range tree.Order {
		if p := tree.Parent[i]; p >= 0 {
			if err := reduce(p, i); err != nil {
				return nil, semijoins, err
			}
		}
	}
	for k := len(tree.Order) - 1; k >= 0; k-- {
		i := tree.Order[k]
		if p := tree.Parent[i]; p >= 0 {
			if err := reduce(i, p); err != nil {
				return nil, semijoins, err
			}
		}
	}
	return out, semijoins, nil
}

// FullReduce runs Yannakakis' full reducer over an acyclic join and
// returns the reduced relations together with the number of semijoins
// performed. It reports an error when the relations' scheme hypergraph
// is cyclic — pairwise reduction to fixpoint (ReduceFixpoint) is the
// sound-but-incomplete alternative there.
func FullReduce(rels []*relation.Relation) ([]*relation.Relation, int, error) {
	edges := SchemesOf(rels)
	tree, ok := JoinTreeOf(edges)
	if !ok {
		return nil, 0, fmt.Errorf("join: full reduction requires an acyclic join (schemes %v)", edges)
	}
	return Yannakakis{}.fullReduce(rels, tree, nil)
}

// observedAlgorithm wraps an Algorithm and reports every join output to
// an observe hook, aborting when the hook errors.
type observedAlgorithm struct {
	inner   Algorithm
	observe func(*relation.Relation) error
}

func (o observedAlgorithm) Name() string { return o.inner.Name() }

func (o observedAlgorithm) Join(l, r *relation.Relation) (*relation.Relation, error) {
	out, err := o.inner.Join(l, r)
	if err != nil {
		return nil, err
	}
	if err := o.observe(out); err != nil {
		return nil, err
	}
	return out, nil
}

var (
	_ Algorithm      = Yannakakis{}
	_ Metered        = Yannakakis{}
	_ MultiAlgorithm = Yannakakis{}
)
