package qbf

import (
	"fmt"

	"relquery/internal/cnf"
)

// Proposition 4 of the paper shows Q-3SAT stays Π₂ᵖ-complete under two
// technical restrictions needed by the Theorem 4/5 reductions:
//
//	(R1) X is not contained in V_j for any clause F_j
//	     (V_j is the variable set of F_j), and
//	(R2) X contains no V_j.
//
// R1 is enforced by adding two fresh clauses (v₁+v₂+v₃)(v₄+v₅+v₆) and
// extending X with {v₁, v₄}: no single clause contains both. If R2 fails
// — some clause's variables are all universal — the instance is trivially
// false, because the universal player can falsify that clause outright
// (clause variables are distinct, so the all-literals-false assignment
// exists).

// CheckRestrictions reports whether the instance satisfies R1 and R2.
func CheckRestrictions(inst *Instance) (r1, r2 bool, err error) {
	if err := inst.Validate(); err != nil {
		return false, false, err
	}
	uni := make(map[int]bool, len(inst.Universal))
	for _, v := range inst.Universal {
		uni[v] = true
	}
	r1, r2 = true, true
	for _, c := range inst.G.Clauses {
		vars := c.Vars()
		inClause := make(map[int]bool, len(vars))
		allUniversal := true
		for _, v := range vars {
			inClause[v] = true
			if !uni[v] {
				allUniversal = false
			}
		}
		if allUniversal && len(vars) > 0 {
			r2 = false
		}
		containsX := len(inst.Universal) > 0
		for _, v := range inst.Universal {
			if !inClause[v] {
				containsX = false
				break
			}
		}
		if containsX {
			r1 = false
		}
	}
	return r1, r2, nil
}

// EnforceResult is the outcome of Proposition 4 preprocessing.
type EnforceResult struct {
	// Instance is the transformed, restriction-satisfying instance. Nil
	// when Decided is true.
	Instance *Instance
	// Decided reports that preprocessing already determined the answer
	// (R2 violation makes the instance trivially false).
	Decided bool
	// Holds is the answer when Decided.
	Holds bool
}

// Enforce applies Proposition 4: it returns either an equivalent instance
// satisfying both restrictions, or the instance's (trivial) answer. The
// transformation preserves the value of ∀X ∃X' G: the added clauses are
// over fresh variables, each satisfiable under every assignment to
// {v₁, v₄} by choosing the remaining fresh variables appropriately.
func Enforce(inst *Instance) (EnforceResult, error) {
	if err := inst.Validate(); err != nil {
		return EnforceResult{}, err
	}
	_, r2, err := CheckRestrictions(inst)
	if err != nil {
		return EnforceResult{}, err
	}
	if !r2 {
		// Some clause is entirely universal: the universal player
		// falsifies it, so the ∀∃ sentence is false.
		return EnforceResult{Decided: true, Holds: false}, nil
	}
	g := inst.G.Clone()
	base := g.NumVars
	g.NumVars += 6
	g.Clauses = append(g.Clauses,
		cnf.Clause{cnf.Lit(base + 1), cnf.Lit(base + 2), cnf.Lit(base + 3)},
		cnf.Clause{cnf.Lit(base + 4), cnf.Lit(base + 5), cnf.Lit(base + 6)},
	)
	out := &Instance{
		G:         g,
		Universal: append(append([]int(nil), inst.Universal...), base+1, base+4),
	}
	r1, r2, err := CheckRestrictions(out)
	if err != nil {
		return EnforceResult{}, err
	}
	if !r1 || !r2 {
		return EnforceResult{}, fmt.Errorf("qbf: internal error: Enforce failed to establish restrictions (r1=%v r2=%v)", r1, r2)
	}
	return EnforceResult{Instance: out}, nil
}
